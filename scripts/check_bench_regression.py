#!/usr/bin/env python3
"""Perf-regression guard over the BENCH_*.json documents.

Compares freshly emitted bench JSON against the committed baselines in
bench/baselines/ and fails (exit 1) when a critical-path metric regresses
beyond the tolerance. Rows are matched by (metric, config) — the config
dict pins placement, exchange mode, trace level, verify mode, observe
mode and rep, so A/B variants never cross-compare.

Only critical-path metrics gate: time-unit ("s") metrics whose name marks
them as busy/wall/latency work, and higher-is-better ratio metrics
("x"-unit speedups). Share/fraction metrics (overheads, attribution
errors) are asserted by the benches themselves with absolute slack and
are too noisy to diff across CI hosts, so they are reported but never
gate. Rows missing from the baseline (new metrics) are skipped — the
baseline refresh picks them up.

CI hosts are noisy; each comparison carries an absolute slack floor on
top of the relative tolerance (seconds-unit: 0.3 s) so quick-mode runs
only trip on genuine order-of-magnitude regressions, not scheduler
jitter.

Usage:
  python3 scripts/check_bench_regression.py \
      --baseline-dir bench/baselines --tolerance 0.15 BENCH_*.json
"""

import argparse
import json
import os
import sys

# Substrings that mark a metric as critical-path when its unit is "s".
TIME_CRITICAL = ("busy", "wall", "latency")
# Substrings that mark a higher-is-better metric (unit "x" or ratio).
HIGHER_BETTER = ("speedup", "throughput")

ABS_SLACK_SECONDS = 0.3


def row_key(row):
    config = row.get("config", {}) or {}
    return (row.get("metric", ""), tuple(sorted(config.items())))


def classify(row):
    """Return 'lower', 'higher', or None (not gated)."""
    metric = row.get("metric", "")
    unit = row.get("unit", "")
    if any(s in metric for s in HIGHER_BETTER) or unit == "x":
        return "higher"
    if unit == "s" and any(s in metric for s in TIME_CRITICAL):
        return "lower"
    return None


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("results", [])
    out = {}
    for row in rows:
        out[row_key(row)] = row
    return out


def describe(row):
    config = row.get("config", {}) or {}
    bits = ", ".join(f"{k}={v}" for k, v in sorted(config.items()))
    return f"{row.get('metric', '?')} [{bits}]"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="relative regression tolerance (0.15 = 15%%)")
    ap.add_argument("files", nargs="+", help="freshly emitted BENCH_*.json")
    args = ap.parse_args()

    regressions = []
    compared = skipped = 0
    for path in args.files:
        base_path = os.path.join(args.baseline_dir, os.path.basename(path))
        if not os.path.exists(base_path):
            print(f"-- no baseline for {os.path.basename(path)}, skipping")
            continue
        current = load_rows(path)
        baseline = load_rows(base_path)
        for key, row in sorted(current.items()):
            direction = classify(row)
            if direction is None:
                continue
            base = baseline.get(key)
            if base is None:
                skipped += 1
                continue
            cur_v = float(row.get("value", 0.0))
            base_v = float(base.get("value", 0.0))
            compared += 1
            if direction == "lower":
                limit = base_v * (1.0 + args.tolerance) + ABS_SLACK_SECONDS
                bad = cur_v > limit
                delta = (cur_v - base_v) / base_v if base_v > 0 else 0.0
            else:
                limit = base_v * (1.0 - args.tolerance)
                # Ratio floor: a speedup below ~1 already fails its own
                # bench gate; the guard only needs the relative drop.
                bad = base_v > 0 and cur_v < limit
                delta = (cur_v - base_v) / base_v if base_v > 0 else 0.0
            mark = "REGRESSION" if bad else "ok"
            print(f"{mark:>10}  {describe(row)}: {cur_v:.4g} vs baseline "
                  f"{base_v:.4g} ({delta:+.1%}, {direction} is better)")
            if bad:
                regressions.append((describe(row), cur_v, base_v))

    print(f"\ncompared {compared} critical-path metric(s), "
          f"{skipped} not in baseline, {len(regressions)} regression(s) "
          f"at {args.tolerance:.0%} tolerance")
    if regressions:
        for desc, cur_v, base_v in regressions:
            print(f"  FAIL {desc}: {cur_v:.4g} vs {base_v:.4g}",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
