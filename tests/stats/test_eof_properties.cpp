// Property sweep: EOF reconstruction accuracy must improve monotonically
// with retained modes, and retained variance must match reconstruction
// quality.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "stats/eof.hpp"

namespace foam::stats {
namespace {

struct NoisyField {
  int ntime = 120;
  int npoint = 30;
  std::vector<double> data;
  explicit NoisyField(unsigned seed) {
    std::mt19937 rng(seed);
    std::normal_distribution<double> amp(0.0, 1.0);
    data.resize(static_cast<std::size_t>(ntime) * npoint);
    // Three planted modes with decaying amplitudes plus white noise.
    std::vector<std::vector<double>> patterns(3,
                                              std::vector<double>(npoint));
    for (int p = 0; p < npoint; ++p) {
      patterns[0][p] = std::sin(0.21 * p);
      patterns[1][p] = std::cos(0.43 * p);
      patterns[2][p] = std::sin(0.77 * p + 1.0);
    }
    for (int t = 0; t < ntime; ++t) {
      const double a0 = 3.0 * std::sin(0.07 * t);
      const double a1 = 1.5 * std::cos(0.19 * t);
      const double a2 = 0.8 * std::sin(0.31 * t + 0.5);
      for (int p = 0; p < npoint; ++p)
        data[static_cast<std::size_t>(t) * npoint + p] =
            a0 * patterns[0][p] + a1 * patterns[1][p] +
            a2 * patterns[2][p] + 0.05 * amp(rng);
    }
    compute_anomalies(data, ntime, npoint);
  }

  double reconstruction_error(const EofResult& eof, int nmodes) const {
    double num = 0.0, den = 0.0;
    for (int t = 0; t < ntime; ++t)
      for (int p = 0; p < npoint; ++p) {
        double recon = 0.0;
        for (int k = 0; k < nmodes; ++k)
          recon += eof.patterns[k][p] * eof.pcs[k][t];
        const double truth = data[static_cast<std::size_t>(t) * npoint + p];
        num += (recon - truth) * (recon - truth);
        den += truth * truth;
      }
    return num / den;
  }
};

class EofModeSweep : public ::testing::TestWithParam<int> {};

TEST_P(EofModeSweep, ReconstructionErrorMatchesUnexplainedVariance) {
  const int nmodes = GetParam();
  NoisyField f(42);
  const auto eof = eof_analysis(f.data, f.ntime, f.npoint, {}, nmodes);
  double explained = 0.0;
  for (int k = 0; k < nmodes; ++k) explained += eof.variance_fraction[k];
  const double err = f.reconstruction_error(eof, nmodes);
  EXPECT_NEAR(err, 1.0 - explained, 0.02)
      << "unexplained variance must equal reconstruction error";
}

INSTANTIATE_TEST_SUITE_P(ModeCounts, EofModeSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(EofProperties, ErrorDecreasesWithModes) {
  NoisyField f(7);
  const auto eof = eof_analysis(f.data, f.ntime, f.npoint, {}, 8);
  double prev = 1e9;
  for (int nmodes = 1; nmodes <= 8; ++nmodes) {
    const double err = f.reconstruction_error(eof, nmodes);
    EXPECT_LE(err, prev + 1e-12) << "modes " << nmodes;
    prev = err;
  }
  // Three planted modes: the first three carry nearly everything.
  EXPECT_LT(f.reconstruction_error(eof, 3), 0.01);
}

TEST(EofProperties, VarianceFractionsDescending) {
  NoisyField f(99);
  const auto eof = eof_analysis(f.data, f.ntime, f.npoint, {}, 6);
  for (std::size_t k = 1; k < eof.variance_fraction.size(); ++k)
    EXPECT_LE(eof.variance_fraction[k],
              eof.variance_fraction[k - 1] + 1e-12);
}

}  // namespace
}  // namespace foam::stats
