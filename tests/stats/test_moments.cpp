#include "stats/moments.hpp"

#include <gtest/gtest.h>

#include <random>

namespace foam::stats {
namespace {

TEST(RunningMoments, MatchesBatchStatistics) {
  std::mt19937 rng(3);
  std::normal_distribution<double> dist(5.0, 2.0);
  RunningMoments rm;
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) {
    const double x = dist(rng);
    xs.push_back(x);
    rm.add(x);
  }
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= xs.size();
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(rm.mean(), mean, 1e-10);
  EXPECT_NEAR(rm.variance(), var, 1e-8);
  EXPECT_EQ(rm.count(), 10000);
}

TEST(RunningMoments, DegenerateCases) {
  RunningMoments rm;
  EXPECT_DOUBLE_EQ(rm.variance(), 0.0);
  rm.add(4.0);
  EXPECT_DOUBLE_EQ(rm.mean(), 4.0);
  EXPECT_DOUBLE_EQ(rm.variance(), 0.0);
}

TEST(RunningFieldMean, AveragesFields) {
  RunningFieldMean rfm;
  EXPECT_TRUE(rfm.empty());
  Field2Dd a(2, 2, 1.0), b(2, 2, 3.0);
  rfm.add(a);
  rfm.add(b);
  const Field2Dd m = rfm.mean();
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);
  EXPECT_EQ(rfm.count(), 2);
  rfm.reset();
  EXPECT_TRUE(rfm.empty());
}

TEST(RunningFieldMean, MeanOfEmptyThrows) {
  RunningFieldMean rfm;
  EXPECT_THROW(rfm.mean(), Error);
}

TEST(AreaWeightedMean, UsesWeightsAndMask) {
  Field2Dd f(2, 2);
  f(0, 0) = 1.0;
  f(1, 0) = 2.0;
  f(0, 1) = 10.0;
  f(1, 1) = 20.0;
  Field2D<int> mask(2, 2, 1);
  mask(1, 1) = 0;
  const std::vector<double> area = {1.0, 3.0};
  // mean = (1*1 + 1*2 + 3*10) / (1+1+3)
  EXPECT_NEAR(area_weighted_mean(f, mask, area), 33.0 / 5.0, 1e-12);
}

TEST(AreaWeightedRmse, ZeroForIdenticalFields) {
  Field2Dd a(3, 2, 2.0), b(3, 2, 2.0);
  Field2D<int> mask(3, 2, 1);
  const std::vector<double> area = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(area_weighted_rmse(a, b, mask, area), 0.0);
  b(0, 0) = 4.0;
  EXPECT_GT(area_weighted_rmse(a, b, mask, area), 0.0);
}

TEST(AreaWeightedMean, EmptyMaskThrows) {
  Field2Dd f(2, 2, 1.0);
  Field2D<int> mask(2, 2, 0);
  const std::vector<double> area = {1.0, 1.0};
  EXPECT_THROW(area_weighted_mean(f, mask, area), Error);
}

}  // namespace
}  // namespace foam::stats
