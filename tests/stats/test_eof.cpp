#include "stats/eof.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "base/constants.hpp"
#include "base/error.hpp"

namespace foam::stats {
namespace {

using constants::two_pi;

/// Build a two-mode synthetic dataset: two orthogonal spatial patterns with
/// prescribed amplitude time series plus small noise.
struct TwoModeData {
  int ntime = 240;
  int npoint = 50;
  std::vector<double> data;
  std::vector<double> pattern1, pattern2;
  std::vector<double> pc1, pc2;

  explicit TwoModeData(double noise = 0.01) {
    pattern1.resize(npoint);
    pattern2.resize(npoint);
    for (int p = 0; p < npoint; ++p) {
      pattern1[p] = std::sin(two_pi * (p + 0.5) / npoint);
      pattern2[p] = std::cos(two_pi * 2.0 * (p + 0.5) / npoint);
    }
    pc1.resize(ntime);
    pc2.resize(ntime);
    std::mt19937 rng(5);
    std::normal_distribution<double> eps(0.0, noise);
    data.resize(static_cast<std::size_t>(ntime) * npoint);
    for (int t = 0; t < ntime; ++t) {
      pc1[t] = 3.0 * std::sin(two_pi * t / 80.0);
      pc2[t] = 1.0 * std::cos(two_pi * t / 13.0);
      for (int p = 0; p < npoint; ++p)
        data[static_cast<std::size_t>(t) * npoint + p] =
            pc1[t] * pattern1[p] + pc2[t] * pattern2[p] + eps(rng);
    }
    compute_anomalies(data, ntime, npoint);
  }
};

double abs_correlation(const std::vector<double>& a,
                       const std::vector<double>& b) {
  return std::abs(correlation(a, b));
}

TEST(ComputeAnomalies, RemovesTimeMeanPerPoint) {
  std::vector<double> d = {1, 10, 3, 20, 5, 30};  // 3 times x 2 points
  compute_anomalies(d, 3, 2);
  EXPECT_NEAR(d[0] + d[2] + d[4], 0.0, 1e-12);
  EXPECT_NEAR(d[1] + d[3] + d[5], 0.0, 1e-12);
}

TEST(Eof, RecoversLeadingModeOfTwoModeData) {
  TwoModeData td;
  const auto r = eof_analysis(td.data, td.ntime, td.npoint, {}, 3);
  ASSERT_GE(r.patterns.size(), 2u);
  // Mode 1 carries variance ~ (3^2/2)*|p1|^2 vs mode 2 ~ (1^2/2)*|p2|^2.
  EXPECT_GT(r.variance_fraction[0], r.variance_fraction[1]);
  EXPECT_GT(r.variance_fraction[0], 0.7);
  // The pattern correlates with the planted one (sign-free).
  EXPECT_GT(abs_correlation(r.patterns[0], td.pattern1), 0.99);
  EXPECT_GT(abs_correlation(r.patterns[1], td.pattern2), 0.99);
  // And the PCs track the planted amplitudes.
  EXPECT_GT(abs_correlation(r.pcs[0], td.pc1), 0.99);
  EXPECT_GT(abs_correlation(r.pcs[1], td.pc2), 0.99);
}

TEST(Eof, VarianceFractionsSumBelowOne) {
  TwoModeData td(0.3);
  const auto r = eof_analysis(td.data, td.ntime, td.npoint, {}, 5);
  double sum = 0.0;
  for (const double v : r.variance_fraction) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_LE(sum, 1.0 + 1e-9);
  EXPECT_GT(sum, 0.9);  // two planted modes + weak noise
}

TEST(Eof, PatternsAreUnitNormAndOrthogonal) {
  TwoModeData td;
  const auto r = eof_analysis(td.data, td.ntime, td.npoint, {}, 2);
  for (int k = 0; k < 2; ++k) {
    double norm = 0.0;
    for (const double v : r.patterns[k]) norm += v * v;
    EXPECT_NEAR(norm, 1.0, 1e-9);
  }
  double dot = 0.0;
  for (int p = 0; p < td.npoint; ++p)
    dot += r.patterns[0][p] * r.patterns[1][p];
  EXPECT_NEAR(dot, 0.0, 1e-6);
}

TEST(Eof, SpatialPathMatchesTemporalPath) {
  // Small problem exercised both ways: ntime > npoint triggers the spatial
  // covariance branch; results must agree with the temporal branch applied
  // to the transposed problem in explained variance.
  TwoModeData td;
  // Subsample points so npoint < ntime (spatial branch).
  const int np = 20;
  std::vector<double> small(static_cast<std::size_t>(td.ntime) * np);
  for (int t = 0; t < td.ntime; ++t)
    for (int p = 0; p < np; ++p)
      small[static_cast<std::size_t>(t) * np + p] =
          td.data[static_cast<std::size_t>(t) * td.npoint + p];
  const auto r = eof_analysis(small, td.ntime, np, {}, 2);
  EXPECT_GT(r.variance_fraction[0], 0.5);
  // Reconstruction check: mode-sum approximates the data.
  double num = 0.0, den = 0.0;
  for (int t = 0; t < td.ntime; ++t)
    for (int p = 0; p < np; ++p) {
      const double recon = r.patterns[0][p] * r.pcs[0][t] +
                           r.patterns[1][p] * r.pcs[1][t];
      const double truth = small[static_cast<std::size_t>(t) * np + p];
      num += (recon - truth) * (recon - truth);
      den += truth * truth;
    }
  EXPECT_LT(num / den, 0.02);
}

TEST(Eof, WeightsChangeModeRanking) {
  // Weight the mode-2 region strongly: with enough weighting mode 2's
  // share of the weighted variance must increase.
  TwoModeData td;
  std::vector<double> w(td.npoint, 1.0);
  const auto base = eof_analysis(td.data, td.ntime, td.npoint, w, 2);
  for (int p = 0; p < td.npoint; ++p)
    w[p] = 1.0 + 9.0 * std::abs(td.pattern2[p]);
  const auto weighted = eof_analysis(td.data, td.ntime, td.npoint, w, 2);
  EXPECT_LT(weighted.variance_fraction[0] - weighted.variance_fraction[1],
            base.variance_fraction[0] - base.variance_fraction[1]);
}

TEST(Varimax, SeparatesMixedLocalizedPatterns) {
  // Two disjoint "basins" oscillating independently: raw EOFs of equal-
  // variance basins mix them (any rotation of the eigenvector pair is
  // degenerate); VARIMAX must localize each factor onto one basin. This is
  // the Figure 4 methodology in miniature.
  const int ntime = 300, npoint = 40;
  std::mt19937 rng(11);
  std::normal_distribution<double> amp(0.0, 1.0), eps(0.0, 0.05);
  std::vector<double> data(static_cast<std::size_t>(ntime) * npoint);
  // AR(1) amplitudes so the series have structure.
  double a1 = 0.0, a2 = 0.0;
  std::vector<double> s1(ntime), s2(ntime);
  for (int t = 0; t < ntime; ++t) {
    a1 = 0.9 * a1 + amp(rng);
    a2 = 0.9 * a2 + amp(rng);
    s1[t] = a1;
    s2[t] = a2;
    for (int p = 0; p < npoint; ++p) {
      double v = eps(rng);
      if (p < 15) v += a1 * std::sin(constants::pi * (p + 0.5) / 15.0);
      if (p >= 25) v += a2 * std::sin(constants::pi * (p - 24.5) / 15.0);
      data[static_cast<std::size_t>(t) * npoint + p] = v;
    }
  }
  compute_anomalies(data, ntime, npoint);
  const auto eof = eof_analysis(data, ntime, npoint, {}, 4);
  const auto rot = varimax(eof, 2);
  ASSERT_EQ(rot.loadings.size(), 2u);
  // Each rotated factor concentrates on one basin: energy ratio inside
  // vs outside its dominant basin must be large.
  for (int k = 0; k < 2; ++k) {
    double e_basin1 = 0.0, e_basin2 = 0.0;
    for (int p = 0; p < 15; ++p)
      e_basin1 += rot.loadings[k][p] * rot.loadings[k][p];
    for (int p = 25; p < npoint; ++p)
      e_basin2 += rot.loadings[k][p] * rot.loadings[k][p];
    const double ratio = std::max(e_basin1, e_basin2) /
                         std::max(1e-12, std::min(e_basin1, e_basin2));
    EXPECT_GT(ratio, 8.0) << "factor " << k << " not localized";
  }
  // Rotated scores recover the planted basin amplitudes.
  const double c0 = std::max(abs_correlation(rot.scores[0], s1),
                             abs_correlation(rot.scores[0], s2));
  const double c1 = std::max(abs_correlation(rot.scores[1], s1),
                             abs_correlation(rot.scores[1], s2));
  EXPECT_GT(c0, 0.95);
  EXPECT_GT(c1, 0.95);
}

TEST(Varimax, PreservesTotalExplainedVariance) {
  TwoModeData td(0.2);
  const auto eof = eof_analysis(td.data, td.ntime, td.npoint, {}, 3);
  const auto rot = varimax(eof, 3);
  const double before = eof.variance_fraction[0] +
                        eof.variance_fraction[1] + eof.variance_fraction[2];
  const double after = rot.variance_fraction[0] + rot.variance_fraction[1] +
                       rot.variance_fraction[2];
  EXPECT_NEAR(after, before, 1e-6);
}

TEST(Varimax, ReconstructionUnchangedByRotation) {
  TwoModeData td(0.05);
  const auto eof = eof_analysis(td.data, td.ntime, td.npoint, {}, 2);
  const auto rot = varimax(eof, 2);
  // loadings * scores must reconstruct as well as patterns * pcs.
  double err = 0.0, den = 0.0;
  for (int t = 0; t < td.ntime; ++t)
    for (int p = 0; p < td.npoint; ++p) {
      const double eof_recon = eof.patterns[0][p] * eof.pcs[0][t] +
                               eof.patterns[1][p] * eof.pcs[1][t];
      const double rot_recon = rot.loadings[0][p] * rot.scores[0][t] +
                               rot.loadings[1][p] * rot.scores[1][t];
      err += (eof_recon - rot_recon) * (eof_recon - rot_recon);
      den += eof_recon * eof_recon;
    }
  EXPECT_LT(err / den, 1e-9);
}

TEST(Correlation, BasicProperties) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {2, 4, 6, 8, 10};
  std::vector<double> c = {5, 4, 3, 2, 1};
  EXPECT_NEAR(correlation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(correlation(a, c), -1.0, 1e-12);
  const std::vector<double> flat = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(correlation(a, flat), 0.0);
}

TEST(Eof, RejectsBadArguments) {
  std::vector<double> d(10, 1.0);
  EXPECT_THROW(eof_analysis(d, 5, 2, {}, 5), Error);   // too many modes
  EXPECT_THROW(eof_analysis(d, 5, 3, {}, 1), Error);   // size mismatch
  EXPECT_THROW(eof_analysis(d, 5, 2, {1.0}, 1), Error);  // weight size
}

}  // namespace
}  // namespace foam::stats
