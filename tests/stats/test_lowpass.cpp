#include "stats/lowpass.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "base/constants.hpp"
#include "base/error.hpp"

namespace foam::stats {
namespace {

using constants::two_pi;

TEST(Lanczos, WeightsNormalizedAndSymmetric) {
  const auto w = lanczos_lowpass_weights(60.0, 60);
  ASSERT_EQ(w.size(), 121u);
  double sum = 0.0;
  for (const double v : w) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (int k = 0; k < 60; ++k) EXPECT_NEAR(w[k], w[120 - k], 1e-14);
  // Center tap is the largest.
  for (const double v : w) EXPECT_LE(v, w[60] + 1e-15);
}

TEST(Lanczos, PassesConstant) {
  std::vector<double> x(400, 2.5);
  const auto y = lanczos_lowpass(x, 60.0);
  ASSERT_FALSE(y.empty());
  for (const double v : y) EXPECT_NEAR(v, 2.5, 1e-12);
}

TEST(Lanczos, PassesSlowOscillationDampsFast) {
  // 240-sample period passes a 60-sample cutoff; 6-sample period dies.
  const int n = 1000;
  std::vector<double> slow(n), fast(n);
  for (int t = 0; t < n; ++t) {
    slow[t] = std::sin(two_pi * t / 240.0);
    fast[t] = std::sin(two_pi * t / 6.0);
  }
  const auto ys = lanczos_lowpass(slow, 60.0);
  const auto yf = lanczos_lowpass(fast, 60.0);
  double amp_slow = 0.0, amp_fast = 0.0;
  for (const double v : ys) amp_slow = std::max(amp_slow, std::abs(v));
  for (const double v : yf) amp_fast = std::max(amp_fast, std::abs(v));
  EXPECT_GT(amp_slow, 0.85);
  EXPECT_LT(amp_fast, 0.05);
}

TEST(Lanczos, SixtyMonthFilterOnMonthlyData) {
  // The Fig. 4 configuration: monthly samples, 60-month cutoff. A decadal
  // (120-month) oscillation must survive, the annual cycle must not.
  const int n = 12 * 80;  // 80 years monthly
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t)
    x[t] = std::sin(two_pi * t / 120.0) + 2.0 * std::sin(two_pi * t / 12.0);
  const auto y = lanczos_lowpass(x, 60.0);
  // Correlate the output with the decadal component alone.
  const int half = (static_cast<int>(x.size()) - static_cast<int>(y.size())) / 2;
  double err = 0.0;
  for (std::size_t t = 0; t < y.size(); ++t) {
    const double want = std::sin(two_pi * (t + half) / 120.0);
    err = std::max(err, std::abs(y[t] - want));
  }
  EXPECT_LT(err, 0.12);
}

TEST(ApplySymmetricFilter, OutputLengthShrinksByStencil) {
  std::vector<double> x(100, 1.0);
  const std::vector<double> w = {0.25, 0.5, 0.25};
  const auto y = apply_symmetric_filter(x, w);
  EXPECT_EQ(y.size(), 98u);
}

TEST(ApplySymmetricFilter, TooShortInputGivesEmpty) {
  std::vector<double> x(5, 1.0);
  const auto w = lanczos_lowpass_weights(10.0, 10);
  EXPECT_TRUE(apply_symmetric_filter(x, w).empty());
}

TEST(ApplySymmetricFilter, EvenLengthFilterThrows) {
  std::vector<double> x(10, 1.0);
  EXPECT_THROW(apply_symmetric_filter(x, {0.5, 0.5}), Error);
}

TEST(Lanczos, RejectsSubNyquistCutoff) {
  EXPECT_THROW(lanczos_lowpass_weights(1.5, 10), Error);
  EXPECT_THROW(lanczos_lowpass_weights(60.0, 0), Error);
}

}  // namespace
}  // namespace foam::stats

namespace foam::stats {
namespace {

TEST(Detrend, RemovesLineExactly) {
  std::vector<double> x(50);
  for (int t = 0; t < 50; ++t) x[t] = 3.0 + 0.25 * t;
  detrend(x);
  for (const double v : x) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(Detrend, PreservesOscillationAmplitude) {
  std::vector<double> x(240);
  for (int t = 0; t < 240; ++t)
    x[t] = 5.0 - 0.1 * t + std::sin(constants::two_pi * t / 40.0);
  detrend(x);
  double amp = 0.0;
  for (const double v : x) amp = std::max(amp, std::abs(v));
  EXPECT_NEAR(amp, 1.0, 0.2);  // slight leakage from the finite record
}

TEST(DetrendColumns, IndependentPerColumn) {
  // Two columns with different trends.
  std::vector<double> d(10 * 2);
  for (int t = 0; t < 10; ++t) {
    d[t * 2 + 0] = 1.0 * t;
    d[t * 2 + 1] = -2.0 * t + 7.0;
  }
  detrend_columns(d, 10, 2);
  for (int t = 0; t < 10; ++t) {
    EXPECT_NEAR(d[t * 2 + 0], 0.0, 1e-10);
    EXPECT_NEAR(d[t * 2 + 1], 0.0, 1e-10);
  }
}

}  // namespace
}  // namespace foam::stats
