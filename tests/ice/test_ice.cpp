#include "ice/sea_ice.hpp"

#include <gtest/gtest.h>

#include "base/constants.hpp"

namespace foam::ice {
namespace {

namespace c = foam::constants;

struct IceWorld {
  IceWorld()
      : grid(16, 16, 70.0),
        mask(16, 16, 1),
        model(grid, mask),
        sst(16, 16, c::sea_ice_freeze_c),
        frazil(16, 16, 0.0),
        flux(16, 16, 0.0) {}
  numerics::MercatorGrid grid;
  Field2D<int> mask;
  SeaIceModel model;
  Field2Dd sst, frazil, flux;
};

TEST(SeaIce, StartsIceFree) {
  IceWorld w;
  EXPECT_DOUBLE_EQ(w.model.fraction().max_abs(), 0.0);
  EXPECT_DOUBLE_EQ(w.model.thickness().max_abs(), 0.0);
}

TEST(SeaIce, FrazilHeatGrowsIceWithFormationFlux) {
  IceWorld w;
  w.frazil(5, 5) = 5.0e7;  // strong freeze-clamp deficit
  w.model.step(w.sst, w.frazil, w.flux, 21600.0);
  EXPECT_GT(w.model.thickness()(5, 5), 0.0);
  EXPECT_GT(w.model.fraction()(5, 5), 0.0);
  // The paper's 2 m formation flux leaves the ocean.
  const Field2Dd fw = w.model.drain_freshwater_flux();
  EXPECT_LT(fw(5, 5), -c::ice_formation_flux_m + 0.5);
  // No ice where no frazil and no freezing flux.
  EXPECT_DOUBLE_EQ(w.model.thickness()(1, 1), 0.0);
}

TEST(SeaIce, PositiveFluxMeltsIce) {
  IceWorld w;
  w.frazil.fill(5.0e7);
  w.model.step(w.sst, w.frazil, w.flux, 21600.0);
  const double h0 = w.model.thickness()(5, 5);
  ASSERT_GT(h0, 0.0);
  w.frazil.fill(0.0);
  w.flux.fill(250.0);  // summer melt
  for (int s = 0; s < 200; ++s)
    w.model.step(w.sst, w.frazil, w.flux, 21600.0);
  EXPECT_LT(w.model.thickness()(5, 5), h0);
}

TEST(SeaIce, FullMeltReturnsFormationWater) {
  IceWorld w;
  w.frazil(3, 3) = 1.0e7;
  w.model.step(w.sst, w.frazil, w.flux, 21600.0);
  w.model.drain_freshwater_flux();
  w.frazil.fill(0.0);
  w.flux.fill(400.0);
  double total_fw = 0.0;
  for (int s = 0; s < 400 && w.model.thickness()(3, 3) > 0.0; ++s) {
    w.model.step(w.sst, w.frazil, w.flux, 21600.0);
    total_fw += w.model.drain_freshwater_flux()(3, 3);
  }
  EXPECT_DOUBLE_EQ(w.model.thickness()(3, 3), 0.0);
  EXPECT_GT(total_fw, c::ice_formation_flux_m);  // melt + returned 2 m
}

TEST(SeaIce, SurfaceTemperatureBelowMeltUnderCooling) {
  IceWorld w;
  w.frazil(5, 5) = 1.0e8;
  w.flux.fill(-150.0);  // polar-night cooling
  w.model.step(w.sst, w.frazil, w.flux, 21600.0);
  EXPECT_LT(w.model.tsurf()(5, 5), c::t_melt);
  // Never above melting.
  w.flux.fill(500.0);
  w.model.step(w.sst, w.frazil, w.flux, 21600.0);
  EXPECT_LE(w.model.tsurf()(5, 5), c::t_melt + 1e-9);
}

TEST(SeaIce, FractionBounded) {
  IceWorld w;
  w.frazil.fill(1.0e9);
  for (int s = 0; s < 50; ++s)
    w.model.step(w.sst, w.frazil, w.flux, 21600.0);
  EXPECT_LE(w.model.fraction().max(), 1.0);
  EXPECT_LE(w.model.thickness().max(), w.model.config().h_max + 1e-9);
}

TEST(SeaIce, SpontaneousFreezingInWinterConditions) {
  IceWorld w;
  // At the freeze point with strong surface cooling, floes form even
  // without frazil bookkeeping.
  w.flux.fill(-100.0);
  w.model.step(w.sst, w.frazil, w.flux, 21600.0);
  EXPECT_GT(w.model.fraction().max(), 0.0);
}

TEST(SeaIce, LandCellsIgnored) {
  numerics::MercatorGrid grid(16, 16, 70.0);
  Field2D<int> mask(16, 16, 0);  // all land
  SeaIceModel m(grid, mask);
  Field2Dd sst(16, 16, -2.0), frazil(16, 16, 1e9), flux(16, 16, -500.0);
  m.step(sst, frazil, flux, 21600.0);
  EXPECT_DOUBLE_EQ(m.thickness().max_abs(), 0.0);
}

}  // namespace
}  // namespace foam::ice
