#include "land/soil.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "base/constants.hpp"
#include "data/earth.hpp"

namespace foam::land {
namespace {

namespace c = foam::constants;

struct LandWorld {
  LandWorld()
      : grid(24, 20),
        mask(data::land_mask(grid)),
        types(data::soil_types(grid)),
        model(grid, mask, types) {}

  /// Uniform forcing helper.
  struct Fields {
    Field2Dd sw, lwd, sens, lat, evap, rain, snow;
    Fields(int nx, int ny)
        : sw(nx, ny, 0.0), lwd(nx, ny, 0.0), sens(nx, ny, 0.0),
          lat(nx, ny, 0.0), evap(nx, ny, 0.0), rain(nx, ny, 0.0),
          snow(nx, ny, 0.0) {}
    LandModel::Forcing forcing() const {
      return {sw, lwd, sens, lat, evap, rain, snow};
    }
  };

  std::pair<int, int> a_land_cell() const {
    for (int j = 0; j < grid.nlat(); ++j)
      for (int i = 0; i < grid.nlon(); ++i)
        if (mask(i, j) != 0 &&
            types(i, j) != static_cast<int>(data::SoilType::kIceSheet))
          return {i, j};
    return {-1, -1};
  }

  numerics::GaussianGrid grid;
  Field2D<int> mask;
  Field2D<int> types;
  LandModel model;
};

TEST(LandModel, BucketOverflowBecomesRunoff) {
  LandWorld w;
  auto [i, j] = w.a_land_cell();
  ASSERT_GE(i, 0);
  LandWorld::Fields f(24, 20);
  // Balanced radiation so temperature stays put; heavy warm rain.
  f.lwd.fill(340.0);
  f.rain.fill(5.0e-3);  // ~430 mm/day deluge
  for (int s = 0; s < 48; ++s) w.model.step(f.forcing(), 1800.0);
  EXPECT_NEAR(w.model.bucket()(i, j), c::bucket_capacity_m, 1e-9);
  EXPECT_GT(w.model.pending_runoff()(i, j), 0.0);
  // Draining resets.
  const Field2Dd r = w.model.drain_runoff();
  EXPECT_GT(r(i, j), 0.0);
  EXPECT_DOUBLE_EQ(w.model.pending_runoff()(i, j), 0.0);
}

TEST(LandModel, SnowCapFeedsRivers) {
  LandWorld w;
  auto [i, j] = w.a_land_cell();
  LandWorld::Fields f(24, 20);
  f.lwd.fill(150.0);       // cold sky: surface freezes
  f.snow.fill(2.0e-3);     // heavy snowfall
  for (int s = 0; s < 48 * 20; ++s) w.model.step(f.forcing(), 1800.0);
  EXPECT_LE(w.model.snow_depth()(i, j), c::snow_cap_lwe_m + 1e-9);
  EXPECT_GT(w.model.drain_runoff()(i, j), 0.0)
      << "excess snow must drain to the river model";
}

TEST(LandModel, WetnessTracksBucket) {
  LandWorld w;
  auto [i, j] = w.a_land_cell();
  LandWorld::Fields f(24, 20);
  f.lwd.fill(340.0);
  f.evap.fill(5.0e-5);  // strong drying
  for (int s = 0; s < 48 * 2; ++s) w.model.step(f.forcing(), 1800.0);
  const Field2Dd wet = w.model.wetness();
  EXPECT_NEAR(wet(i, j), w.model.bucket()(i, j) / c::bucket_capacity_m,
              1e-9);
  EXPECT_LT(wet(i, j), 0.5);
}

TEST(LandModel, SnowRaisesAlbedo) {
  LandWorld w;
  auto [i, j] = w.a_land_cell();
  const double bare = w.model.albedo()(i, j);
  LandWorld::Fields f(24, 20);
  f.lwd.fill(150.0);
  f.snow.fill(2.0e-3);
  for (int s = 0; s < 48; ++s) w.model.step(f.forcing(), 1800.0);
  EXPECT_GT(w.model.albedo()(i, j), bare + 0.2);
}

TEST(LandModel, SurfaceWarmsUnderStrongSun) {
  LandWorld w;
  auto [i, j] = w.a_land_cell();
  const double t0 = w.model.tsurf()(i, j);
  LandWorld::Fields f(24, 20);
  f.sw.fill(250.0);
  f.lwd.fill(330.0);
  for (int s = 0; s < 48; ++s) w.model.step(f.forcing(), 1800.0);
  EXPECT_GT(w.model.tsurf()(i, j), t0);
  EXPECT_LE(w.model.tsurf()(i, j), 340.0);  // guarded
}

TEST(LandModel, DeepLayerLagsSurface) {
  LandWorld w;
  auto [i, j] = w.a_land_cell();
  LandWorld::Fields f(24, 20);
  f.sw.fill(250.0);
  f.lwd.fill(330.0);
  for (int s = 0; s < 48; ++s) w.model.step(f.forcing(), 1800.0);
  // One day of heating: the top layer leads the deep layer.
  EXPECT_GT(w.model.soil_temperature(i, j, 0),
            w.model.soil_temperature(i, j, 3));
}

TEST(LandModel, IceSheetWetnessIsOne) {
  LandWorld w;
  // Find an ice-sheet cell (Antarctica rows).
  int ii = -1, jj = -1;
  for (int j = 0; j < 20 && ii < 0; ++j)
    for (int i = 0; i < 24 && ii < 0; ++i)
      if (w.mask(i, j) != 0 &&
          w.types(i, j) == static_cast<int>(data::SoilType::kIceSheet)) {
        ii = i;
        jj = j;
      }
  ASSERT_GE(ii, 0);
  EXPECT_DOUBLE_EQ(w.model.wetness()(ii, jj), 1.0);
}

TEST(SoilProperties, FiveDistinctTypes) {
  const auto& ice = soil_properties(data::SoilType::kIceSheet);
  const auto& desert = soil_properties(data::SoilType::kDesert);
  const auto& forest = soil_properties(data::SoilType::kForest);
  EXPECT_GT(ice.albedo, desert.albedo);
  EXPECT_GT(desert.albedo, forest.albedo);
  EXPECT_GT(forest.roughness, desert.roughness);
}

}  // namespace
}  // namespace foam::land
