// Live-observability drills for the parallel coupled driver.
//
// The contract under test (ISSUE 8 acceptance): an injected FOAM_FAULT
// kill and a Comm::stall deadlock each leave behind a validated merged
// postmortem trace naming the failing rank's open span plus an "aborted"
// status.json, with no torn temporaries; the watchdog fires (and dumps)
// before the deadlock detector's abort; a clean observed run finishes
// with a "finished" status feed and, under FOAM_TELEMETRY=profile
// semantics, a span-attributed sample histogram; and span-ring drops are
// surfaced as the telemetry.dropped_spans counter instead of silently
// truncating traces.

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "foam/coupled.hpp"
#include "par/fault.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/observe.hpp"

namespace foam {
namespace {

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

/// Driver options with the environment-driven pieces cleared and the
/// observability layer explicit per drill.
ParallelRunOptions mk_opts(const telemetry::ObservabilityOptions& observe) {
  ParallelRunOptions o;
  o.n_atm = 2;
  o.capture_timelines = false;
  o.verify = {};
  o.fault = {};
  o.observe = observe;
  return o;
}

/// The postmortem + status pair every abort drill must leave behind.
void expect_postmortem(const std::string& dir, const std::string& reason_bit,
                       const std::string& span_bit) {
  const std::string path = telemetry::RunObserver::last_postmortem_path();
  ASSERT_FALSE(path.empty()) << "no postmortem was written";
  const std::string doc = slurp(path);
  std::string err;
  EXPECT_TRUE(telemetry::json_validate(doc, &err)) << path << ": " << err;
  EXPECT_NE(doc.find("\"foamPostmortem\""), std::string::npos) << path;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos) << path;
  EXPECT_NE(doc.find(reason_bit), std::string::npos)
      << path << " reason does not mention '" << reason_bit << "'";
  EXPECT_NE(doc.find(span_bit), std::string::npos)
      << path << " does not name the failing span '" << span_bit << "'";
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::string cpath = path;
  cpath.replace(cpath.find(".trace.json"), std::string::npos,
                ".counters.json");
  EXPECT_TRUE(file_exists(cpath)) << cpath;
  EXPECT_TRUE(telemetry::json_validate(slurp(cpath), &err)) << err;
  const std::string status = slurp(dir + "/status.json");
  EXPECT_TRUE(telemetry::json_validate(status, &err)) << err;
  EXPECT_NE(status.find("\"state\": \"aborted\""), std::string::npos)
      << status;
  EXPECT_FALSE(file_exists(dir + "/status.json.tmp"));
}

TEST(Observe, KillDrillWritesMergedPostmortem) {
  const FoamConfig cfg = FoamConfig::testing();
  const std::string dir = fresh_dir("obs_kill");
  telemetry::ObservabilityOptions ob;
  ob.flight_recorder = true;
  ob.heartbeat = true;
  ob.status = true;
  ob.dir = dir;
  try {
    par::run(3, [&](par::Comm& world) {
      ParallelRunOptions o = mk_opts(ob);
      o.fault = par::FaultPlan::parse("kill:rank=2,day=1");
      run_coupled_parallel(world, o, cfg, 2.0);
    });
    FAIL() << "killed rank did not abort the run";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("fault injection"),
              std::string::npos)
        << e.what();
  }
  // The dump reason is the kill itself (recorded before the throw), and
  // the killed rank's open span is the injected fault marker.
  expect_postmortem(dir, "rank 2 killed at simulated day 1",
                    "fault.kill (injected)");
}

TEST(Observe, StallWatchdogDumpsBeforeDeadlockAbort) {
  const FoamConfig cfg = FoamConfig::testing();
  const std::string dir = fresh_dir("obs_stall");
  telemetry::ObservabilityOptions ob;
  ob.flight_recorder = true;
  ob.heartbeat = true;
  ob.status = true;
  ob.watchdog_seconds = 0.3;
  ob.dir = dir;
  try {
    par::run(3, [&](par::Comm& world) {
      ParallelRunOptions o = mk_opts(ob);
      // The watchdog deadline (0.3s) is well inside the deadlock
      // detector's stall timeout (1.2s): the dump must come from the
      // watchdog, not from the abort hook on the detector's throw.
      o.verify.mode = par::VerifyMode::kAudit;
      o.verify.stall_timeout_seconds = 1.2;
      o.fault = par::FaultPlan::parse("stall:rank=1,day=1,seconds=30");
      run_coupled_parallel(world, o, cfg, 2.0);
    });
    FAIL() << "stalled rank did not trip the deadlock detector";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock detected"),
              std::string::npos)
        << e.what();
  }
  expect_postmortem(dir, "watchdog: rank 1 stalled",
                    "fault.stall (injected)");
}

TEST(Observe, CleanRunFinishesStatusFeedAndProfiles) {
  const FoamConfig cfg = FoamConfig::testing();
  const std::string dir = fresh_dir("obs_clean");
  telemetry::ObservabilityOptions ob;
  ob.heartbeat = true;
  ob.status = true;
  ob.status_interval_seconds = 0.05;
  ob.profile = true;
  ob.profile_interval_seconds = 5e-4;
  ob.dir = dir;
  par::run(3, [&](par::Comm& world) {
    const ParallelRunResult res =
        run_coupled_parallel(world, mk_opts(ob), cfg, 2.0);
    // Every rank gets the same profiler histogram; the ocean rank's
    // integration must dominate its samples.
    EXPECT_GT(res.profile_interval_seconds, 0.0);
    ASSERT_FALSE(res.profile.empty());
    EXPECT_GT(res.profile_seconds(2, par::Region::kOcean), 0.0);
  });
  std::string err;
  const std::string status = slurp(dir + "/status.json");
  EXPECT_TRUE(telemetry::json_validate(status, &err)) << err;
  EXPECT_NE(status.find("\"state\": \"finished\""), std::string::npos)
      << status;
  EXPECT_NE(status.find("\"simulated_day\": 2"), std::string::npos)
      << status;
  EXPECT_EQ(telemetry::RunObserver::last_postmortem_path().find(dir),
            std::string::npos)
      << "clean run must not dump a postmortem into " << dir;
}

TEST(Observe, SpanRingDropsSurfaceAsCounter) {
  const FoamConfig cfg = FoamConfig::testing();
  ParallelRunOptions o = mk_opts({});
  // A 16-slot ring at kFull overflows within the first exchange; the run
  // must surface the loss instead of silently truncating the trace.
  o.telemetry.level = telemetry::TraceLevel::kFull;
  o.telemetry.max_spans = 16;
  par::run(3, [&](par::Comm& world) {
    const ParallelRunResult res = run_coupled_parallel(world, o, cfg, 1.0);
    ASSERT_EQ(static_cast<int>(res.metrics.size()), world.size());
    for (int r = 0; r < world.size(); ++r) {
      double dropped = -1.0;
      for (const auto& [name, value] : res.metrics[r])
        if (name == "telemetry.dropped_spans") dropped = value;
      EXPECT_GT(dropped, 0.0)
          << "rank " << r << " did not surface its span-ring drops";
    }
  });
}

}  // namespace
}  // namespace foam
