#include "foam/coupled.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "telemetry/chrome_trace.hpp"

namespace foam {
namespace {

TEST(CoupledFoam, TwoDaysStableAndPhysical) {
  FoamConfig cfg = FoamConfig::testing();
  CoupledFoam model(cfg);
  model.run_days(2.0);
  EXPECT_FALSE(has_non_finite(model.ocean_model().temperature()));
  EXPECT_FALSE(has_non_finite(model.atmosphere().temperature()));
  const auto d = model.ocean_model().diagnostics();
  EXPECT_GT(d.mean_sst, 0.0);
  EXPECT_LT(d.mean_sst, 25.0);
  const double tb = model.atmosphere().mean_t_sfc_level();
  EXPECT_GT(tb, 250.0);
  EXPECT_LT(tb, 310.0);
  EXPECT_EQ(model.now().seconds(), 2 * 86400);
}

TEST(CoupledFoam, ExchangeScheduleMatchesPaper) {
  // 48 atmosphere steps and 4 ocean calls per day (paper §5 / Fig. 2).
  FoamConfig cfg = FoamConfig::testing();
  CoupledFoam model(cfg);
  const auto steps0 = model.ocean_model().step_count();
  model.run_days(1.0);
  const auto osteps = model.ocean_model().step_count() - steps0;
  const auto expected = static_cast<std::int64_t>(
      4 * (21600.0 / cfg.ocean.dt_mom));
  EXPECT_EQ(osteps, expected);
}

TEST(CoupledFoam, OceanAccelerationMultipliesOceanTime) {
  FoamConfig cfg = FoamConfig::testing();
  cfg.ocean_accel = 3.0;
  CoupledFoam model(cfg);
  model.run_days(1.0);
  EXPECT_NEAR(model.ocean_model().time_seconds(), 3.0 * 86400.0,
              cfg.ocean.dt_mom);
}

TEST(CoupledFoam, SstRespondsToCoupling) {
  // With coupling active the tropical-polar SST contrast is maintained by
  // the atmosphere's fluxes.
  FoamConfig cfg = FoamConfig::testing();
  CoupledFoam model(cfg);
  model.run_days(3.0);
  const Field2Dd sst = model.sst();
  const auto& grid = model.ocean_grid();
  double trop = 0.0, polar = 0.0;
  int nt = 0, np = 0;
  for (int j = 0; j < grid.nlat(); ++j) {
    const double lat = grid.lat(j) * 57.2958;
    for (int i = 0; i < grid.nlon(); ++i) {
      if (model.ocean_mask()(i, j) == 0) continue;
      if (std::abs(lat) < 15.0) {
        trop += sst(i, j);
        ++nt;
      } else if (std::abs(lat) > 55.0) {
        polar += sst(i, j);
        ++np;
      }
    }
  }
  ASSERT_GT(nt, 0);
  ASSERT_GT(np, 0);
  EXPECT_GT(trop / nt, polar / np + 8.0)
      << "tropics must stay much warmer than the polar ocean";
}

TEST(CoupledFoam, WorkCounterAdvances) {
  FoamConfig cfg = FoamConfig::testing();
  CoupledFoam model(cfg);
  const double w0 = model.work_points();
  model.run_days(0.5);
  EXPECT_GT(model.work_points(), w0);
}

TEST(ParallelCoupled, RunsAndProducesTimelines) {
  FoamConfig cfg = FoamConfig::testing();
  par::run(3, [&](par::Comm& world) {  // 2 atm + 1 ocean
    ParallelRunOptions opts;
    opts.n_atm = 2;
    const auto res = run_coupled_parallel(world, opts, cfg, 0.5);
    EXPECT_GT(res.speedup(), 0.0);
    EXPECT_NEAR(res.simulated_seconds, 0.5 * 86400.0, 1.0);
    ASSERT_EQ(res.timelines.size(), 3u);
    // Atmosphere ranks recorded atmosphere work; the ocean rank ocean work.
    double atm_time = 0.0, ocean_time = 0.0;
    for (const auto& seg : res.timelines[0])
      if (seg.region == par::Region::kAtmosphere) atm_time += seg.t1 - seg.t0;
    for (const auto& seg : res.timelines[2])
      if (seg.region == par::Region::kOcean) ocean_time += seg.t1 - seg.t0;
    EXPECT_GT(atm_time, 0.0);
    EXPECT_GT(ocean_time, 0.0);
    // Every rank's result agrees (the gather is broadcast back).
    EXPECT_EQ(res.timelines[1].empty(), false);
  });
}

TEST(ParallelCoupled, SixteenPlusOnePlacementWorks) {
  // The paper's production shape in miniature: many atmosphere ranks, one
  // ocean rank.
  FoamConfig cfg = FoamConfig::testing();
  par::run(5, [&](par::Comm& world) {
    ParallelRunOptions opts;
    opts.n_atm = 4;
    const auto res = run_coupled_parallel(world, opts, cfg, 0.25);
    EXPECT_GT(res.speedup(), 0.0);
  });
}

TEST(ParallelCoupled, BlockingExchangeRecordsCommWait) {
  // The paper's Fig. 2 idle band: with the blocking exchange, the lead
  // atmosphere rank sits in comm-wait while the ocean integrates.
  FoamConfig cfg = FoamConfig::testing();
  par::run(2, [&](par::Comm& world) {
    ParallelRunOptions opts;
    opts.n_atm = 1;
    opts.overlap = false;
    const auto res = run_coupled_parallel(world, opts, cfg, 0.5);
    EXPECT_GT(res.region_seconds(0, par::Region::kCommWait), 0.0);
  });
}

TEST(ParallelCoupled, OverlapExchangeRunsAndShrinksCommWait) {
  // With overlap on, the SST reply rides under the next atmosphere
  // interval: rank 0's comm-wait must not exceed the blocking run's.
  FoamConfig cfg = FoamConfig::testing();
  double wait_blocking = 0.0, wait_overlap = 0.0;
  par::run(2, [&](par::Comm& world) {
    ParallelRunOptions opts;
    opts.n_atm = 1;
    opts.overlap = false;
    auto res = run_coupled_parallel(world, opts, cfg, 0.5);
    if (world.rank() == 0)
      wait_blocking = res.region_seconds(0, par::Region::kCommWait);
    opts.overlap = true;
    res = run_coupled_parallel(world, opts, cfg, 0.5);
    EXPECT_GT(res.speedup(), 0.0);
    EXPECT_NEAR(res.simulated_seconds, 0.5 * 86400.0, 1.0);
    if (world.rank() == 0)
      wait_overlap = res.region_seconds(0, par::Region::kCommWait);
  });
  EXPECT_GT(wait_blocking, 0.0);
  EXPECT_LT(wait_overlap, wait_blocking);
}

TEST(ParallelCoupled, OverlapWorksWithManyAtmRanks) {
  FoamConfig cfg = FoamConfig::testing();
  par::run(4, [&](par::Comm& world) {  // 3 atm + 1 ocean
    ParallelRunOptions opts;
    opts.n_atm = 3;
    opts.overlap = true;
    const auto res = run_coupled_parallel(world, opts, cfg, 0.25);
    EXPECT_GT(res.speedup(), 0.0);
    // Ocean work still lands on the ocean rank.
    EXPECT_GT(res.region_seconds(3, par::Region::kOcean), 0.0);
  });
}

TEST(ParallelCoupled, CaptureTimelinesOffSkipsGather) {
  FoamConfig cfg = FoamConfig::testing();
  par::run(2, [&](par::Comm& world) {
    ParallelRunOptions opts;
    opts.n_atm = 1;
    opts.capture_timelines = false;
    const auto res = run_coupled_parallel(world, opts, cfg, 0.25);
    EXPECT_GT(res.speedup(), 0.0);
    EXPECT_TRUE(res.timelines.empty());
    EXPECT_DOUBLE_EQ(res.region_seconds(0, par::Region::kAtmosphere), 0.0);
  });
}

TEST(ParallelCoupled, FullTracingGathersNestedSpansAndMetrics) {
  FoamConfig cfg = FoamConfig::testing();
  par::run(3, [&](par::Comm& world) {  // 2 atm + 1 ocean
    ParallelRunOptions opts;
    opts.n_atm = 2;
    opts.telemetry.level = telemetry::TraceLevel::kFull;
    const auto res = run_coupled_parallel(world, opts, cfg, 0.25);
    ASSERT_EQ(res.traces.size(), 3u);
    ASSERT_EQ(res.metrics.size(), 3u);
    for (int r = 0; r < 3; ++r) {
      EXPECT_FALSE(res.traces[r].spans.empty()) << "rank " << r;
      EXPECT_TRUE(res.traces[r].has_nested()) << "rank " << r;
    }
    // The span-derived region totals agree with the flat timelines (same
    // begin/end events, clock jitter only).
    for (int r = 0; r < 3; ++r) {
      for (int reg = 0; reg < par::kRegionCount; ++reg) {
        const auto region = static_cast<par::Region>(reg);
        const double flat = res.region_seconds(r, region);
        if (flat < 0.05) continue;
        EXPECT_NEAR(res.span_region_seconds(r, region), flat,
                    0.01 * flat + 1e-3)
            << "rank " << r << " region " << par::region_name(region);
      }
    }
    // The comm counters saw the exchange traffic on every rank.
    for (int r = 0; r < 3; ++r) {
      double waited = -1.0;
      for (const auto& [name, value] : res.metrics[r])
        if (name == "comm.requests_waited") waited = value;
      EXPECT_GT(waited, 0.0) << "rank " << r;
    }
    // The gathered traces export as one valid Chrome trace document.
    std::string err;
    EXPECT_TRUE(telemetry::json_validate(
        telemetry::chrome_trace_json(res.traces), &err))
        << err;
  });
}

TEST(ParallelCoupled, TelemetryOffSkipsTraceAndMetricsGather) {
  FoamConfig cfg = FoamConfig::testing();
  par::run(2, [&](par::Comm& world) {
    ParallelRunOptions opts;
    opts.n_atm = 1;
    opts.telemetry.level = telemetry::TraceLevel::kOff;
    const auto res = run_coupled_parallel(world, opts, cfg, 0.25);
    EXPECT_TRUE(res.traces.empty());
    EXPECT_TRUE(res.metrics.empty());
    // The flat timelines still work: they are the pre-telemetry contract.
    ASSERT_EQ(res.timelines.size(), 2u);
    EXPECT_GT(res.region_seconds(0, par::Region::kAtmosphere), 0.0);
  });
}

TEST(ParallelCoupled, DeprecatedPositionalOverloadStillForwards) {
  FoamConfig cfg = FoamConfig::testing();
  par::run(2, [&](par::Comm& world) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    const auto res = run_coupled_parallel(world, 1, cfg, 0.25);
#pragma GCC diagnostic pop
    EXPECT_GT(res.speedup(), 0.0);
    ASSERT_EQ(res.timelines.size(), 2u);  // historic default: capture on
  });
}

TEST(FoamConfigValidate, AcceptsDefaultsAndTestingConfigs) {
  EXPECT_NO_THROW(FoamConfig::paper_default().validate());
  EXPECT_NO_THROW(FoamConfig::testing().validate());
}

TEST(FoamConfigValidate, RejectsInconsistentCoupling) {
  FoamConfig cfg = FoamConfig::testing();
  cfg.exchange_seconds = 0.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.exchange_seconds = -3600.0;
  EXPECT_THROW(cfg.validate(), Error);

  cfg = FoamConfig::testing();
  cfg.ocean_accel = 0.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.ocean_accel = -2.0;
  EXPECT_THROW(cfg.validate(), Error);

  cfg = FoamConfig::testing();
  cfg.exchange_seconds = 1.5 * cfg.atm.dt;  // not a whole step multiple
  EXPECT_THROW(cfg.validate(), Error);
  cfg.exchange_seconds = 0.5 * cfg.atm.dt;  // shorter than one step
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(FoamConfigValidate, DriversRejectBadConfigs) {
  FoamConfig cfg = FoamConfig::testing();
  cfg.exchange_seconds = 1.5 * cfg.atm.dt;
  EXPECT_THROW(CoupledFoam model(cfg), Error);
  par::run(2, [&](par::Comm& world) {
    ParallelRunOptions opts;
    opts.n_atm = 1;
    EXPECT_THROW(run_coupled_parallel(world, opts, cfg, 0.25), Error);
  });
}

}  // namespace
}  // namespace foam

namespace foam {
namespace {

std::vector<char> read_file_bytes(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<char> bytes;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return bytes;
}

TEST(Checkpoint, RestartContinuesBitwise) {
  const std::string path = testing::TempDir() + "/foam_restart.foam";
  FoamConfig cfg = FoamConfig::testing();

  // Reference: run 1.0 day, checkpoint, run 0.5 more.
  CoupledFoam a(cfg);
  a.run_days(1.0);
  a.checkpoint(path);
  a.run_days(0.5);

  // Restored twin: same config, restore, run the same 0.5 day.
  CoupledFoam b(cfg);
  b.restore(path);
  EXPECT_EQ(b.now().seconds(), 86400);
  b.run_days(0.5);

  EXPECT_EQ(a.now().seconds(), b.now().seconds());
  const Field2Dd sa = a.sst();
  const Field2Dd sb = b.sst();
  double max_diff = 0.0;
  for (std::size_t n = 0; n < sa.size(); ++n)
    max_diff = std::max(max_diff,
                        std::abs(sa.data()[n] - sb.data()[n]));
  EXPECT_EQ(max_diff, 0.0) << "restart must continue bitwise-identically";
  // Atmosphere too (includes the stochastic stirring state).
  const auto& ta = a.atmosphere().temperature();
  const auto& tb = b.atmosphere().temperature();
  for (std::size_t n = 0; n < ta.size(); ++n)
    ASSERT_EQ(ta.data()[n], tb.data()[n]) << "atm state diverged at " << n;

  // The strongest form: re-checkpointing both runs must give files that
  // are equal byte for byte — every record of every component, not just
  // the fields sampled above.
  const std::string pa = testing::TempDir() + "/foam_restart_a.foam";
  const std::string pb = testing::TempDir() + "/foam_restart_b.foam";
  a.checkpoint(pa);
  b.checkpoint(pb);
  EXPECT_EQ(read_file_bytes(pa), read_file_bytes(pb))
      << "checkpoints of the original and the restored run differ";
}

TEST(Checkpoint, RestoreRejectsWrongFile) {
  const std::string path = testing::TempDir() + "/foam_bad_restart.foam";
  {
    HistoryWriter w(path);
    w.write_scalar("not_a_restart", 1.0);
  }
  FoamConfig cfg = FoamConfig::testing();
  CoupledFoam m(cfg);
  EXPECT_THROW(m.restore(path), Error);
}

TEST(Checkpoint, RestoreRejectsMismatchedConfigWithDiff) {
  const std::string path = testing::TempDir() + "/foam_fpr.foam";
  FoamConfig cfg = FoamConfig::testing();
  CoupledFoam m(cfg);
  m.checkpoint(path);

  // Same field sizes, different coupling parameters: before the config
  // fingerprint this loaded silently and continued with the wrong physics.
  FoamConfig other = cfg;
  other.exchange_seconds = cfg.exchange_seconds / 2.0;
  other.ocean_accel = 4.0;
  CoupledFoam w(other);
  try {
    w.restore(path);
    FAIL() << "restore accepted a checkpoint from a different config";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("exchange_seconds"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ocean_accel"), std::string::npos) << msg;
  }
}

TEST(Checkpoint, TruncatedCheckpointRejected) {
  const std::string path = testing::TempDir() + "/foam_trunc_ckpt.foam";
  FoamConfig cfg = FoamConfig::testing();
  CoupledFoam m(cfg);
  m.checkpoint(path);

  // Chop the footer and tail off, as a crash mid-copy would: the loader
  // must refuse rather than restore partial state.
  std::vector<char> bytes = read_file_bytes(path);
  bytes.resize(bytes.size() - 64);
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  CoupledFoam w(cfg);
  EXPECT_THROW(w.restore(path), Error);

  // Garbage appended after an intact footer is corruption too.
  m.checkpoint(path);
  f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("trailing garbage", f);
  std::fclose(f);
  EXPECT_THROW(w.restore(path), Error);
}

}  // namespace
}  // namespace foam

#include "foam/diagnostics.hpp"

namespace foam {
namespace {

TEST(Diagnostics, OverturningAndHeatTransportFinite) {
  FoamConfig cfg = FoamConfig::testing();
  CoupledFoam model(cfg);
  model.run_days(1.0);
  const auto psi =
      diag::meridional_overturning_sv(model.ocean_model(),
                                      model.ocean_grid());
  EXPECT_FALSE(has_non_finite(psi));
  double max_any = 0.0;
  for (int j = 0; j < psi.nx(); ++j)
    for (int k = 0; k < psi.ny(); ++k)
      max_any = std::max(max_any, std::abs(psi(j, k)));
  EXPECT_GT(max_any, 0.0);

  const auto pht =
      diag::poleward_heat_transport_pw(model.ocean_model(),
                                       model.ocean_grid());
  for (const double v : pht) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::abs(v), 500.0);  // bounded (day-1 adjustment state)
  }
}

TEST(Diagnostics, ZonalMeanSstHasTropicalMaximum) {
  FoamConfig cfg = FoamConfig::testing();
  CoupledFoam model(cfg);
  model.run_days(1.0);
  const auto zm = diag::zonal_mean_sst(model.ocean_model(), -99.0);
  const auto& grid = model.ocean_grid();
  double t_trop = -1e9, t_pole = 1e9;
  for (int j = 0; j < grid.nlat(); ++j) {
    if (zm[j] == -99.0) continue;
    const double lat = std::abs(grid.lat(j)) * 57.2958;
    if (lat < 10.0) t_trop = std::max(t_trop, zm[j]);
    if (lat > 60.0) t_pole = std::min(t_pole, zm[j]);
  }
  EXPECT_GT(t_trop, t_pole + 10.0);
}

}  // namespace
}  // namespace foam

#include "foam/run_config.hpp"

namespace foam {
namespace {

TEST(RunConfig, DefaultsMatchPaperConfiguration) {
  const FoamConfig c = foam_config_from(Config::from_string(""));
  EXPECT_EQ(c.atm.nlon, 48);
  EXPECT_EQ(c.atm.nlat, 40);
  EXPECT_EQ(c.atm.mmax, 15);
  EXPECT_EQ(c.atm.nlev, 18);
  EXPECT_DOUBLE_EQ(c.atm.dt, 1800.0);
  EXPECT_EQ(c.ocean.nx, 128);
  EXPECT_EQ(c.ocean.nz, 16);
  EXPECT_DOUBLE_EQ(c.exchange_seconds, 6.0 * 3600.0);
  EXPECT_EQ(c.atm.physics, atm::PhysicsVersion::kCcm3);
}

TEST(RunConfig, ParsesOverrides) {
  const FoamConfig c = foam_config_from(Config::from_string(
      "atm.physics = ccm2\n"
      "atm.co2_factor = 2.0\n"
      "ocean.tracer_every = 4\n"
      "coupling.ocean_accel = 6\n"));
  EXPECT_EQ(c.atm.physics, atm::PhysicsVersion::kCcm2);
  EXPECT_DOUBLE_EQ(c.atm.co2_factor, 2.0);
  EXPECT_EQ(c.ocean.tracer_every, 4);
  EXPECT_DOUBLE_EQ(c.ocean_accel, 6.0);
}

TEST(RunConfig, RejectsUnknownAndInvalidKeys) {
  EXPECT_THROW(foam_config_from(Config::from_string("atm.nlevels = 18\n")),
               Error);
  EXPECT_THROW(foam_config_from(Config::from_string("atm.physics = ccm9\n")),
               Error);
  EXPECT_THROW(foam_config_from(Config::from_string(
                   "coupling.exchange_seconds = 60\n")),
               Error);
}

TEST(RunConfig, RunPlanFields) {
  const RunPlan plan = run_plan_from(Config::from_string(
      "run.days = 5\nrun.history_path = out.foam\n"));
  EXPECT_DOUBLE_EQ(plan.days, 5.0);
  EXPECT_EQ(plan.history_path, "out.foam");
  EXPECT_TRUE(plan.restart_path.empty());
  EXPECT_THROW(run_plan_from(Config::from_string("run.days = -1\n")), Error);
}

}  // namespace
}  // namespace foam

namespace foam {
namespace {

TEST(ParallelCoupled, MultiRankOceanPlacement) {
  // The paper's 34-node shape in miniature: the ocean on two ranks.
  FoamConfig cfg = FoamConfig::testing();
  par::run(4, [&](par::Comm& world) {  // 2 atm + 2 ocean
    ParallelRunOptions opts;
    opts.n_atm = 2;
    const auto res = run_coupled_parallel(world, opts, cfg, 0.25);
    EXPECT_GT(res.speedup(), 0.0);
    // Both ocean ranks must have recorded ocean work.
    for (int r = 2; r < 4; ++r) {
      double ocean_time = 0.0;
      for (const auto& seg : res.timelines[r])
        if (seg.region == par::Region::kOcean)
          ocean_time += seg.t1 - seg.t0;
      EXPECT_GT(ocean_time, 0.0) << "ocean rank " << r;
    }
  });
}

TEST(RankLayout, DescribeAndFactories) {
  EXPECT_EQ(RankLayout::rows(8, 2).describe(), "8+1x2");
  EXPECT_EQ(RankLayout::grid(4, 2, 4).describe(), "4+2x4");
  EXPECT_EQ(RankLayout::grid(4, 2, 4).ocean_ranks(), 8);
  EXPECT_EQ(RankLayout::grid(4, 2, 4).world_size(), 12);
  EXPECT_EQ(RankLayout::rows(3, 2), RankLayout::grid(3, 1, 2));
}

TEST(RankLayout, ValidateCatchesBadLayouts) {
  const ocean::OceanConfig ocn = ocean::OceanConfig::testing(48, 48, 8);
  EXPECT_NO_THROW(RankLayout::grid(2, 2, 2).validate(6, ocn));
  // World-size mismatch names both sizes.
  try {
    RankLayout::grid(2, 2, 2).validate(4, ocn);
    FAIL() << "accepted a layout that does not cover the world";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("needs 6 ranks"), std::string::npos) << msg;
    EXPECT_NE(msg.find("world has 4"), std::string::npos) << msg;
  }
  // A rank grid wider than the ocean grid cannot give every rank cells.
  EXPECT_THROW(RankLayout::grid(1, 64, 1).validate(65, ocn), Error);
  EXPECT_THROW((RankLayout{0, 1, 1}.validate(1, ocn)), Error);
}

TEST(RankLayout, DriverRejectsAllAtmWorldWithPointedDiagnostic) {
  // The old positional API silently accepted n_atm == world.size() and
  // left the ocean with zero ranks; the layout validation must name the
  // problem instead of deadlocking or worse.
  FoamConfig cfg = FoamConfig::testing();
  par::run(2, [&](par::Comm& world) {
    ParallelRunOptions opts;
    opts.n_atm = 2;  // both ranks atmosphere, nothing left for the ocean
    try {
      run_coupled_parallel(world, opts, cfg, 0.25);
      FAIL() << "driver accepted a world with no ocean ranks";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("leaves the ocean without"),
                std::string::npos)
          << e.what();
    }
  });
}

TEST(ParallelCoupled, TransportsProduceBitwiseIdenticalDay) {
  // The messaging transport must be invisible to the science: a coupled
  // day on the lock-free SPSC runtime and on the legacy mutex mailboxes
  // lands on the same SST bit for bit, in both exchange modes.
  FoamConfig cfg = FoamConfig::testing();
  for (const bool overlap : {false, true}) {
    Field2Dd sst[2];
    for (const par::CommTransport t :
         {par::CommTransport::kSpsc, par::CommTransport::kMutex}) {
      par::set_comm_transport(t);
      par::run(3, [&](par::Comm& world) {
        ParallelRunOptions opts;
        opts.layout = RankLayout::rows(2, 1);
        opts.overlap = overlap;
        opts.capture_timelines = false;
        const auto res = run_coupled_parallel(world, opts, cfg, 1.0);
        if (world.rank() == 2) sst[static_cast<int>(t)] = res.final_sst;
      });
    }
    par::set_comm_transport(par::CommTransport::kSpsc);
    ASSERT_GT(sst[0].size(), 0u);
    ASSERT_EQ(sst[0].size(), sst[1].size());
    for (std::size_t n = 0; n < sst[0].size(); ++n)
      ASSERT_EQ(sst[0].data()[n], sst[1].data()[n])
          << (overlap ? "overlap" : "blocking")
          << " SST diverged across transports at cell " << n;
  }
}

TEST(ParallelCoupled, MultiRankOceanDayMatchesSingleOceanBitwise) {
  // The decomposition-independence contract of the 2-D ocean: a coupled
  // day on any ocean rank grid gathers to the same SST, bit for bit, as
  // the single-ocean-rank run — in both exchange modes, with the
  // MPI-semantics auditor reporting zero findings throughout.
  FoamConfig cfg = FoamConfig::testing();
  for (const bool overlap : {false, true}) {
    Field2Dd ref;
    par::run(3, [&](par::Comm& world) {  // 2 atm + 1 ocean reference
      ParallelRunOptions opts;
      opts.layout = RankLayout::rows(2, 1);
      opts.overlap = overlap;
      opts.capture_timelines = false;
      opts.verify = {};
      opts.verify.mode = par::VerifyMode::kAudit;
      opts.fault = {};
      const auto res = run_coupled_parallel(world, opts, cfg, 1.0);
      if (world.rank() == 0) {
        EXPECT_EQ(res.verify_findings, 0);
      }
      if (world.rank() == 2) ref = res.final_sst;
    });
    ASSERT_GT(ref.size(), 0u);
    for (const RankLayout layout :
         {RankLayout::grid(2, 2, 2), RankLayout::rows(2, 3)}) {
      Field2Dd got;
      par::run(layout.world_size(), [&](par::Comm& world) {
        ParallelRunOptions opts;
        opts.layout = layout;
        opts.overlap = overlap;
        opts.capture_timelines = false;
        opts.verify = {};
        opts.verify.mode = par::VerifyMode::kAudit;
        opts.fault = {};
        const auto res = run_coupled_parallel(world, opts, cfg, 1.0);
        if (world.rank() == 0) {
        EXPECT_EQ(res.verify_findings, 0);
      }
        if (world.rank() == layout.atm_ranks) got = res.final_sst;
      });
      ASSERT_EQ(got.size(), ref.size()) << layout.describe();
      for (std::size_t n = 0; n < ref.size(); ++n)
        ASSERT_EQ(got.data()[n], ref.data()[n])
            << layout.describe() << (overlap ? " overlap" : " blocking")
            << " SST diverged at cell " << n;
    }
  }
}

}  // namespace
}  // namespace foam
