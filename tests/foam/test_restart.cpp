// Distributed checkpoint/restart and fault-injection drills for the
// parallel coupled driver.
//
// The contract under test: a run resumed from the latest checkpoint is
// bitwise identical to the uninterrupted run (both overlap modes), shards
// are crash-safe, a killed rank produces a clean abort diagnostic naming
// it, and a stalled rank trips the PR-4 deadlock detector.
//
// The small cases (2+1 ranks, 2 simulated days of the testing config) run
// in the regular suite; the paper-shaped acceptance drills (8+1 ranks /
// 4 days / kill at day 3, and 8+2x4 ranks / 2 days / ocean-rank kill at
// day 2) are gated behind FOAM_RESTART_ACCEPTANCE=1 and exercised by the
// restart-resilience CI job.

#include "foam/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "foam/coupled.hpp"
#include "par/fault.hpp"

namespace foam {
namespace {

std::vector<char> read_file_bytes(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<char> bytes;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return bytes;
}

/// Driver options with everything explicit: no env-driven fault plans and
/// no timeline capture (the tests compare state, not telemetry).
ParallelRunOptions mk_opts(int n_atm, bool overlap,
                           const std::string& prefix, double every_days,
                           bool resume) {
  ParallelRunOptions o;
  o.n_atm = n_atm;
  o.overlap = overlap;
  o.capture_timelines = false;
  o.verify = {};
  o.fault = {};
  o.checkpoint.path_prefix = prefix;
  o.checkpoint.every_days = every_days;
  o.checkpoint.resume = resume;
  return o;
}

TEST(FaultPlan, ParsesSpecs) {
  const par::FaultPlan kill = par::FaultPlan::parse("kill:rank=3,day=2");
  EXPECT_EQ(kill.action, par::FaultPlan::Action::kKill);
  EXPECT_EQ(kill.rank, 3);
  EXPECT_DOUBLE_EQ(kill.at_day, 2.0);
  EXPECT_TRUE(kill.armed());
  EXPECT_TRUE(kill.due(3, 2.0));
  EXPECT_FALSE(kill.due(2, 2.0));
  EXPECT_FALSE(kill.due(3, 1.0));

  const par::FaultPlan stall =
      par::FaultPlan::parse("stall:rank=1,day=2,seconds=30");
  EXPECT_EQ(stall.action, par::FaultPlan::Action::kStall);
  EXPECT_EQ(stall.rank, 1);
  EXPECT_DOUBLE_EQ(stall.at_day, 2.0);
  EXPECT_DOUBLE_EQ(stall.stall_seconds, 30.0);

  EXPECT_THROW(par::FaultPlan::parse("explode:rank=1,day=1"), Error);
  EXPECT_THROW(par::FaultPlan::parse("kill:rank=1"), Error);       // no day
  EXPECT_THROW(par::FaultPlan::parse("kill:day=1"), Error);        // no rank
  EXPECT_THROW(par::FaultPlan::parse("kill:rank=x,day=1"), Error);
  EXPECT_THROW(par::FaultPlan::parse("kill:rank=1,day=1,x=2"), Error);
  EXPECT_FALSE(par::FaultPlan{}.armed());
}

/// Uninterrupted vs checkpoint-and-resume, compared through the strongest
/// observable: the final-day shard files must be equal byte for byte on
/// every rank.
void resume_bitwise_case(bool overlap) {
  const FoamConfig cfg = FoamConfig::testing();
  const std::string tag = overlap ? "ov" : "bl";
  const std::string pa = testing::TempDir() + "/rsA_" + tag;
  const std::string pb = testing::TempDir() + "/rsB_" + tag;
  const int nranks = 3, n_atm = 2;

  // Reference: 2 uninterrupted days, checkpoint every day.
  par::run(nranks, [&](par::Comm& world) {
    run_coupled_parallel(world, mk_opts(n_atm, overlap, pa, 1.0, false),
                         cfg, 2.0);
  });
  // Interrupted twin: 1 day, then resume-from-latest for the full span.
  par::run(nranks, [&](par::Comm& world) {
    run_coupled_parallel(world, mk_opts(n_atm, overlap, pb, 1.0, false),
                         cfg, 1.0);
  });
  ASSERT_EQ(ckpt_latest_day(pb), 1);
  par::run(nranks, [&](par::Comm& world) {
    run_coupled_parallel(world, mk_opts(n_atm, overlap, pb, 1.0, true),
                         cfg, 2.0);
  });
  ASSERT_EQ(ckpt_latest_day(pb), 2);
  for (int r = 0; r < nranks; ++r)
    EXPECT_EQ(read_file_bytes(ckpt_shard_path(pa, 2, r)),
              read_file_bytes(ckpt_shard_path(pb, 2, r)))
        << "day-2 state of rank " << r << " diverged after resume ("
        << (overlap ? "overlap" : "blocking") << " exchange)";
}

TEST(Restart, ResumeBitwiseBlockingExchange) { resume_bitwise_case(false); }

TEST(Restart, ResumeBitwiseOverlapExchange) { resume_bitwise_case(true); }

TEST(Restart, ResumeBitwiseTwoDOceanLayout) {
  // Same contract on a 2-D ocean rank grid: every shard (per-rank box
  // state, not row blocks) must land bitwise after a resume.
  const FoamConfig cfg = FoamConfig::testing();
  const RankLayout layout = RankLayout::grid(2, 2, 2);
  const std::string pa = testing::TempDir() + "/rs2dA";
  const std::string pb = testing::TempDir() + "/rs2dB";
  const auto opts_for = [&](const std::string& prefix, bool resume) {
    ParallelRunOptions o = mk_opts(2, true, prefix, 1.0, resume);
    o.layout = layout;
    return o;
  };
  par::run(layout.world_size(), [&](par::Comm& world) {
    run_coupled_parallel(world, opts_for(pa, false), cfg, 2.0);
  });
  par::run(layout.world_size(), [&](par::Comm& world) {
    run_coupled_parallel(world, opts_for(pb, false), cfg, 1.0);
  });
  ASSERT_EQ(ckpt_latest_day(pb), 1);
  par::run(layout.world_size(), [&](par::Comm& world) {
    run_coupled_parallel(world, opts_for(pb, true), cfg, 2.0);
  });
  ASSERT_EQ(ckpt_latest_day(pb), 2);
  for (int r = 0; r < layout.world_size(); ++r)
    EXPECT_EQ(read_file_bytes(ckpt_shard_path(pa, 2, r)),
              read_file_bytes(ckpt_shard_path(pb, 2, r)))
        << "day-2 state of rank " << r << " diverged after a 2-D resume";
}

TEST(Restart, KillAbortsWithDiagnosticAndResumeMatchesFaultFreeRun) {
  const FoamConfig cfg = FoamConfig::testing();
  const std::string pa = testing::TempDir() + "/klA";
  const std::string pb = testing::TempDir() + "/klB";
  const int nranks = 3, n_atm = 2;

  // Fault-free reference.
  par::run(nranks, [&](par::Comm& world) {
    run_coupled_parallel(world, mk_opts(n_atm, true, pa, 1.0, false), cfg,
                         2.0);
  });

  // Kill world rank 2 (the ocean rank) at day 2: the run must abort with a
  // diagnostic naming the rank, leaving day 1 as the latest checkpoint.
  try {
    par::run(nranks, [&](par::Comm& world) {
      ParallelRunOptions o = mk_opts(n_atm, true, pb, 1.0, false);
      o.fault = par::FaultPlan::parse("kill:rank=2,day=2");
      run_coupled_parallel(world, o, cfg, 2.0);
    });
    FAIL() << "injected kill did not abort the run";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fault injection"), std::string::npos) << msg;
  }
  ASSERT_EQ(ckpt_latest_day(pb), 1);

  // Relaunch from the latest checkpoint, with the MPI-semantics checker
  // auditing the resumed run; it must finish clean and land bitwise on the
  // fault-free reference.
  std::int64_t findings = -1;
  par::run(nranks, [&](par::Comm& world) {
    ParallelRunOptions o = mk_opts(n_atm, true, pb, 1.0, true);
    o.verify.mode = par::VerifyMode::kAudit;
    const auto res = run_coupled_parallel(world, o, cfg, 2.0);
    if (world.rank() == 0) findings = res.verify_findings;
  });
  EXPECT_EQ(findings, 0);
  for (int r = 0; r < nranks; ++r)
    EXPECT_EQ(read_file_bytes(ckpt_shard_path(pa, 2, r)),
              read_file_bytes(ckpt_shard_path(pb, 2, r)))
        << "resumed run diverged from the fault-free run on rank " << r;
}

TEST(Restart, StallTripsDeadlockDetector) {
  const FoamConfig cfg = FoamConfig::testing();
  const int nranks = 3;
  try {
    par::run(nranks, [&](par::Comm& world) {
      ParallelRunOptions o = mk_opts(2, false, "", 1.0, false);
      o.verify.mode = par::VerifyMode::kAudit;
      o.verify.stall_timeout_seconds = 0.4;
      o.fault = par::FaultPlan::parse("stall:rank=1,day=1,seconds=30");
      run_coupled_parallel(world, o, cfg, 1.0);
    });
    FAIL() << "stalled rank did not trip the deadlock detector";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock detected"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fault.stall"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  }
}

TEST(Restart, ResumeRejectsMismatchedRunShape) {
  const FoamConfig cfg = FoamConfig::testing();
  const std::string pf = testing::TempDir() + "/shape";
  const int nranks = 3;
  par::run(nranks, [&](par::Comm& world) {
    run_coupled_parallel(world, mk_opts(2, false, pf, 1.0, false), cfg,
                         1.0);
  });
  try {
    par::run(nranks, [&](par::Comm& world) {
      run_coupled_parallel(world, mk_opts(1, false, pf, 1.0, true), cfg,
                           2.0);
    });
    FAIL() << "resume accepted a checkpoint from a different placement";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("-rank run"), std::string::npos)
        << e.what();
  }
  // Overlap-mode mismatch is rejected too (the lag bookkeeping differs).
  try {
    par::run(nranks, [&](par::Comm& world) {
      run_coupled_parallel(world, mk_opts(2, true, pf, 1.0, true), cfg,
                           2.0);
    });
    FAIL() << "resume accepted a checkpoint from the other overlap mode";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("overlap"), std::string::npos)
        << e.what();
  }
}

TEST(Restart, ResumeRejectsMismatchedOceanGridShape) {
  // Same world size, different ocean rank grid: the manifest carries the
  // full RankLayout, so 2+1x3 shards cannot seed a 2+3x1 run (the per-rank
  // boxes differ even though the rank count does not).
  const FoamConfig cfg = FoamConfig::testing();
  const std::string pf = testing::TempDir() + "/shape2d";
  const RankLayout written = RankLayout::rows(2, 3);
  par::run(written.world_size(), [&](par::Comm& world) {
    ParallelRunOptions o = mk_opts(2, false, pf, 1.0, false);
    o.layout = written;
    run_coupled_parallel(world, o, cfg, 1.0);
  });
  try {
    par::run(written.world_size(), [&](par::Comm& world) {
      ParallelRunOptions o = mk_opts(2, false, pf, 1.0, true);
      o.layout = RankLayout::grid(2, 3, 1);
      run_coupled_parallel(world, o, cfg, 2.0);
    });
    FAIL() << "resume accepted shards from a different ocean rank grid";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2+1x3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("-rank run"), std::string::npos) << msg;
  }
}

/// Paper-shaped acceptance drill (ISSUE 5): 8 atmosphere ranks + 1 ocean
/// rank, 4 simulated days, checkpoint cadence 2 days, rank kill at day 3,
/// resume-from-latest lands bitwise on the fault-free run — in both
/// exchange modes. ~10x the cost of the small cases, so gated for CI.
TEST(RestartAcceptance, EightPlusOneKillAtDayThreeResumesBitwise) {
  if (std::getenv("FOAM_RESTART_ACCEPTANCE") == nullptr)
    GTEST_SKIP() << "set FOAM_RESTART_ACCEPTANCE=1 to run the 8+1 drill";
  const FoamConfig cfg = FoamConfig::testing();
  const int nranks = 9, n_atm = 8;
  for (const bool overlap : {false, true}) {
    const std::string tag = overlap ? "ov" : "bl";
    const std::string pa = testing::TempDir() + "/accA_" + tag;
    const std::string pb = testing::TempDir() + "/accB_" + tag;

    par::run(nranks, [&](par::Comm& world) {
      run_coupled_parallel(world, mk_opts(n_atm, overlap, pa, 2.0, false),
                           cfg, 4.0);
    });
    try {
      par::run(nranks, [&](par::Comm& world) {
        ParallelRunOptions o = mk_opts(n_atm, overlap, pb, 2.0, false);
        o.fault = par::FaultPlan::parse("kill:rank=3,day=3");
        run_coupled_parallel(world, o, cfg, 4.0);
      });
      FAIL() << "injected kill did not abort the run";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("rank 3"), std::string::npos) << msg;
    }
    ASSERT_EQ(ckpt_latest_day(pb), 2) << "kill at day 3 must leave day 2";

    std::int64_t findings = -1;
    par::run(nranks, [&](par::Comm& world) {
      ParallelRunOptions o = mk_opts(n_atm, overlap, pb, 2.0, true);
      o.verify.mode = par::VerifyMode::kAudit;
      const auto res = run_coupled_parallel(world, o, cfg, 4.0);
      if (world.rank() == 0) findings = res.verify_findings;
    });
    EXPECT_EQ(findings, 0);
    for (int r = 0; r < nranks; ++r)
      EXPECT_EQ(read_file_bytes(ckpt_shard_path(pa, 4, r)),
                read_file_bytes(ckpt_shard_path(pb, 4, r)))
          << "acceptance drill diverged on rank " << r << " (" << tag
          << ")";
  }
}

/// 8+8 drill for the restart-resilience CI job: the paper-shaped balanced
/// placement with the ocean on a 2x4 rank grid, an ocean-interior rank
/// killed at day 2, resume-from-latest audited and bitwise. Gated like the
/// 8+1 drill above.
TEST(RestartAcceptance, EightPlusEightOceanRankKillResumesBitwise) {
  if (std::getenv("FOAM_RESTART_ACCEPTANCE") == nullptr)
    GTEST_SKIP() << "set FOAM_RESTART_ACCEPTANCE=1 to run the 8+8 drill";
  const FoamConfig cfg = FoamConfig::testing();
  const RankLayout layout = RankLayout::grid(8, 2, 4);
  const std::string pa = testing::TempDir() + "/acc88A";
  const std::string pb = testing::TempDir() + "/acc88B";
  const auto opts_for = [&](const std::string& prefix, bool resume) {
    ParallelRunOptions o = mk_opts(8, true, prefix, 1.0, resume);
    o.layout = layout;
    return o;
  };

  par::run(layout.world_size(), [&](par::Comm& world) {
    run_coupled_parallel(world, opts_for(pa, false), cfg, 2.0);
  });
  try {
    par::run(layout.world_size(), [&](par::Comm& world) {
      ParallelRunOptions o = opts_for(pb, false);
      o.fault = par::FaultPlan::parse("kill:rank=11,day=2");
      run_coupled_parallel(world, o, cfg, 2.0);
    });
    FAIL() << "injected kill did not abort the run";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 11"), std::string::npos)
        << e.what();
  }
  ASSERT_EQ(ckpt_latest_day(pb), 1) << "kill at day 2 must leave day 1";

  std::int64_t findings = -1;
  par::run(layout.world_size(), [&](par::Comm& world) {
    ParallelRunOptions o = opts_for(pb, true);
    o.verify.mode = par::VerifyMode::kAudit;
    const auto res = run_coupled_parallel(world, o, cfg, 2.0);
    if (world.rank() == 0) findings = res.verify_findings;
  });
  EXPECT_EQ(findings, 0);
  for (int r = 0; r < layout.world_size(); ++r)
    EXPECT_EQ(read_file_bytes(ckpt_shard_path(pa, 2, r)),
              read_file_bytes(ckpt_shard_path(pb, 2, r)))
        << "8+8 drill diverged on rank " << r;
}

}  // namespace
}  // namespace foam
