#include "data/earth.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "base/constants.hpp"
#include "numerics/grid.hpp"

namespace foam::data {
namespace {

TEST(Earth, BasinTopology) {
  // The properties the experiments rely on (DESIGN.md): separated northern
  // basins, closed Panama, open Drake Passage, polar continents.
  EXPECT_FALSE(is_land(45.0, 320.0)) << "North Atlantic must be ocean";
  EXPECT_FALSE(is_land(40.0, 180.0)) << "North Pacific must be ocean";
  EXPECT_TRUE(is_land(10.0, 272.0)) << "Panama isthmus must be closed";
  EXPECT_FALSE(is_land(-58.0, 295.0)) << "Drake Passage must be open";
  EXPECT_TRUE(is_land(-80.0, 100.0)) << "Antarctica";
  EXPECT_TRUE(is_land(70.0, 315.0)) << "Greenland";
  EXPECT_TRUE(is_land(50.0, 100.0)) << "Eurasia";
  EXPECT_FALSE(is_land(0.0, 200.0)) << "equatorial Pacific";
  EXPECT_FALSE(is_land(-30.0, 75.0)) << "Indian Ocean";
}

TEST(Earth, NorthernBasinsAreDistinct) {
  // A zonal walk at 45 N must alternate ocean-land-ocean-land: the Fig. 4
  // two-basin analysis needs the Atlantic and Pacific separated.
  int transitions = 0;
  bool last = is_land(45.0, 0.0);
  for (int lon = 1; lon < 360; ++lon) {
    const bool now = is_land(45.0, static_cast<double>(lon));
    if (now != last) ++transitions;
    last = now;
  }
  EXPECT_GE(transitions, 4) << "expected at least two separate basins";
}

TEST(Earth, LandFractionPlausible) {
  numerics::GaussianGrid grid(48, 40);
  const auto mask = land_mask(grid);
  double land_area = 0.0, total = 0.0;
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i) {
      total += grid.cell_area(j);
      if (mask(i, j) != 0) land_area += grid.cell_area(j);
    }
  const double frac = land_area / total;
  EXPECT_GT(frac, 0.2);
  EXPECT_LT(frac, 0.45);
}

TEST(Earth, OceanMaskIsComplement) {
  numerics::GaussianGrid grid(48, 40);
  const auto lm = land_mask(grid);
  const auto om = ocean_mask(grid);
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i) EXPECT_EQ(lm(i, j) + om(i, j), 1);
}

TEST(Earth, ElevationPositiveOnLandZeroOnOcean) {
  EXPECT_GT(elevation(45.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(elevation(0.0, 200.0), 0.0);
  // Mountain ranges rise above their surroundings.
  EXPECT_GT(elevation(32.0, 85.0), elevation(50.0, 60.0));  // Himalaya
}

TEST(Earth, BathymetryDeepBasinsShallowShelves) {
  EXPECT_DOUBLE_EQ(ocean_depth(45.0, 100.0), 0.0);  // land
  const double open = ocean_depth(-30.0, 200.0);    // South Pacific
  EXPECT_GT(open, 3000.0);
  // Near-coast water is shallower than the open ocean.
  const double coastal = ocean_depth(42.0, 308.0);  // just off N. America
  EXPECT_LT(coastal, open);
}

TEST(Earth, SmoothedBathymetryHasNoSingleCellCliffs) {
  numerics::MercatorGrid grid(128, 128, 70.0);
  const auto bathy = bathymetry(grid);
  // Adjacent wet cells differ by less than ~2.5 km after smoothing.
  for (int j = 1; j < 127; ++j)
    for (int i = 0; i < 128; ++i) {
      if (bathy(i, j) <= 0.0) continue;
      const double e = bathy.wrap_x(i + 1, j);
      if (e > 0.0) {
        EXPECT_LT(std::abs(bathy(i, j) - e), 2600.0)
            << "cliff at " << i << "," << j;
      }
    }
}

TEST(Earth, SstClimatologyStructure) {
  // Warm pool warmer than the cold tongue; tropics warmer than poles;
  // freeze clamp at high latitude.
  EXPECT_GT(sst_annual_mean(5.0, 140.0), sst_annual_mean(0.0, 255.0) + 2.0);
  EXPECT_GT(sst_annual_mean(0.0, 180.0), 25.0);
  EXPECT_LT(sst_annual_mean(65.0, 180.0), 8.0);
  EXPECT_DOUBLE_EQ(sst_annual_mean(80.0, 0.0), constants::sea_ice_freeze_c);
  // Gulf Stream warm anomaly off the N. American east coast.
  EXPECT_GT(sst_annual_mean(38.0, 300.0), sst_annual_mean(38.0, 340.0));
}

TEST(Earth, SstSeasonalCycle) {
  // Northern-hemisphere mid-latitudes: warmer in August than February,
  // southern hemisphere opposite.
  EXPECT_GT(sst_climatology(40.0, 180.0, 7), sst_climatology(40.0, 180.0, 1));
  EXPECT_LT(sst_climatology(-40.0, 180.0, 7),
            sst_climatology(-40.0, 180.0, 1));
  // The annual mean of the monthly cycle matches the annual field.
  double mean = 0.0;
  for (int m = 0; m < 12; ++m) mean += sst_climatology(40.0, 180.0, m);
  mean /= 12.0;
  EXPECT_NEAR(mean, sst_annual_mean(40.0, 180.0), 0.6);
}

TEST(Earth, SolarGeometry) {
  using constants::deg2rad;
  // Declination peaks near the June solstice and is antisymmetric winter.
  EXPECT_NEAR(solar_declination(172.0), 23.45 * deg2rad, 1e-6);
  EXPECT_NEAR(solar_declination(172.0 + 182.5), -23.45 * deg2rad, 1e-3);
  // Zenith cosine: overhead sun at the subsolar latitude at noon.
  EXPECT_NEAR(cos_zenith(23.45 * deg2rad, 23.45 * deg2rad, 0.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(cos_zenith(-60.0 * deg2rad, 23.45 * deg2rad, 0.0),
                   cos_zenith(-60.0 * deg2rad, 23.45 * deg2rad, 0.0));
  // Below horizon clamps at zero (polar night).
  EXPECT_DOUBLE_EQ(
      cos_zenith(-80.0 * deg2rad, 23.45 * deg2rad, constants::pi), 0.0);
}

TEST(Earth, DailyInsolation) {
  using constants::deg2rad;
  // Equator, equinox: Q = S0/pi.
  const double q_eq = daily_mean_insolation(0.0, 81.0);
  EXPECT_NEAR(q_eq, constants::solar_constant / constants::pi, 12.0);
  // Polar night in the southern winter.
  EXPECT_DOUBLE_EQ(daily_mean_insolation(-80.0 * deg2rad, 172.0), 0.0);
  // Polar day exceeds the equator at the summer solstice.
  EXPECT_GT(daily_mean_insolation(85.0 * deg2rad, 172.0),
            daily_mean_insolation(0.0, 172.0));
}

TEST(Earth, SoilTypesSensible) {
  EXPECT_EQ(soil_type(-80.0, 0.0), SoilType::kIceSheet);
  EXPECT_EQ(soil_type(72.0, 320.0), SoilType::kIceSheet);  // Greenland
  EXPECT_EQ(soil_type(25.0, 10.0), SoilType::kDesert);     // Sahara band
  EXPECT_EQ(soil_type(5.0, 300.0), SoilType::kForest);     // tropics
  EXPECT_EQ(soil_type(40.0, 255.0), SoilType::kGrassland); // plains
}

}  // namespace
}  // namespace foam::data
