// Parameterized sweeps of the column physics: every level count and every
// surface type the coupler can hand over must produce bounded, physical
// behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "atm/column.hpp"
#include "base/constants.hpp"

namespace foam::atm {
namespace {

namespace c = foam::constants;

Column standard_column(int nlev, double tsfc) {
  Column col;
  col.t.resize(nlev);
  col.q.resize(nlev);
  const auto sig = sigma_levels(nlev);
  for (int k = 0; k < nlev; ++k) {
    const double z = -7500.0 * std::log(sig[k]);
    col.t[k] = std::max(205.0, tsfc - 6.5e-3 * z);
    col.q[k] = 0.7 * saturation_q(col.t[k], sig[k] * c::p_ref);
  }
  return col;
}

class LevelCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(LevelCountSweep, TenDaysOfPhysicsBounded) {
  const int nlev = GetParam();
  AtmConfig cfg;
  cfg.nlev = nlev;
  Column col = standard_column(nlev, 295.0);
  Surface sfc;
  sfc.tsurf = 293.0;
  ColumnFluxes rad_fluxes;
  for (int step = 0; step < 480; ++step) {  // 10 days of 30-min steps
    std::vector<double> heat;
    if (step % 24 == 0)
      heat = radiation_heating(cfg, col, sfc, 0.35, rad_fluxes);
    static std::vector<double> cached;
    if (!heat.empty()) cached = heat;
    if (static_cast<int>(cached.size()) != nlev)
      cached.assign(nlev, 0.0);
    step_column_physics(cfg, col, sfc, cached, 5.0, 1.0, 1800.0);
  }
  for (int k = 0; k < nlev; ++k) {
    EXPECT_GT(col.t[k], 150.0) << "nlev=" << nlev << " k=" << k;
    EXPECT_LT(col.t[k], 340.0) << "nlev=" << nlev << " k=" << k;
    EXPECT_GE(col.q[k], 0.0);
    EXPECT_LT(col.q[k], 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(LevelCounts, LevelCountSweep,
                         ::testing::Values(6, 10, 14, 18, 26));

/// (tsurf, albedo, wetness, is_ocean, is_ice)
using SurfaceCase = std::tuple<double, double, double, bool, bool>;

class SurfaceTypeSweep : public ::testing::TestWithParam<SurfaceCase> {};

TEST_P(SurfaceTypeSweep, FluxesPhysicalForEverySurface) {
  const auto [tsurf, albedo, wetness, is_ocean, is_ice] = GetParam();
  AtmConfig cfg;
  Column col = standard_column(18, std::min(300.0, tsurf + 3.0));
  Surface sfc;
  sfc.tsurf = tsurf;
  sfc.albedo = albedo;
  sfc.wetness = wetness;
  sfc.is_ocean = is_ocean;
  sfc.is_ice = is_ice;
  sfc.roughness = is_ice ? 5e-4 : (is_ocean ? 1e-4 : 0.05);
  std::vector<double> rad(18, 0.0);
  const ColumnFluxes f =
      step_column_physics(cfg, col, sfc, rad, 5.0, -2.0, 1800.0);
  EXPECT_TRUE(std::isfinite(f.sensible));
  EXPECT_TRUE(std::isfinite(f.latent));
  EXPECT_GE(f.evaporation, 0.0);
  EXPECT_LT(std::abs(f.sensible), 800.0);
  EXPECT_LT(f.latent, 1200.0);
  EXPECT_GE(f.precip_rain + f.precip_snow, 0.0);
  // Stress opposes... acts along the wind (u=5, v=-2).
  EXPECT_GT(f.taux, 0.0);
  EXPECT_LT(f.tauy, 0.0);
  // Ice surfaces sublimate (latent heat of sublimation > vaporization).
  if (is_ice && f.evaporation > 0.0) {
    EXPECT_NEAR(f.latent / f.evaporation, c::latent_sub, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SurfaceTypes, SurfaceTypeSweep,
    ::testing::Values(SurfaceCase{302.0, 0.07, 1.0, true, false},   // warm ocean
                      SurfaceCase{271.3, 0.65, 1.0, true, true},    // sea ice
                      SurfaceCase{310.0, 0.32, 0.05, false, false}, // desert
                      SurfaceCase{288.0, 0.13, 0.8, false, false},  // forest
                      SurfaceCase{255.0, 0.75, 1.0, false, false},  // snow/ice sheet
                      SurfaceCase{275.0, 0.20, 0.5, false, false})); // cool plains

class Co2Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Co2Sweep, GreenhouseMonotone) {
  // Downward longwave grows monotonically with CO2 at fixed state.
  const double co2 = GetParam();
  AtmConfig lo_cfg, hi_cfg;
  lo_cfg.co2_factor = co2;
  hi_cfg.co2_factor = co2 * 2.0;
  const Column col = standard_column(18, 290.0);
  Surface sfc;
  sfc.tsurf = 289.0;
  ColumnFluxes f_lo, f_hi;
  Column a = col, b = col;
  radiation_heating(lo_cfg, a, sfc, 0.3, f_lo);
  radiation_heating(hi_cfg, b, sfc, 0.3, f_hi);
  EXPECT_GT(f_hi.lw_down_sfc, f_lo.lw_down_sfc);
  EXPECT_LT(f_hi.olr, f_lo.olr + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Concentrations, Co2Sweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace foam::atm
