#include "atm/column.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "base/constants.hpp"

namespace foam::atm {
namespace {

namespace c = foam::constants;

Column tropical_column(int nlev = 18) {
  Column col;
  col.t.resize(nlev);
  col.q.resize(nlev);
  const auto sig = sigma_levels(nlev);
  for (int k = 0; k < nlev; ++k) {
    const double z = -7500.0 * std::log(sig[k]);
    col.t[k] = std::max(205.0, 300.0 - 6.5e-3 * z);
    col.q[k] = 0.8 * saturation_q(col.t[k], sig[k] * c::p_ref);
  }
  return col;
}

TEST(SigmaLevels, MonotoneTopToSurface) {
  const auto sig = sigma_levels(18);
  ASSERT_EQ(sig.size(), 18u);
  EXPECT_LT(sig.front(), 0.05);
  EXPECT_GT(sig.back(), 0.9);
  for (std::size_t k = 1; k < sig.size(); ++k) EXPECT_GT(sig[k], sig[k - 1]);
}

TEST(SaturationQ, KnownValuesAndMonotonicity) {
  // ~288 K at the surface: qsat ~ 10-12 g/kg.
  const double q288 = saturation_q(288.0, 1.0e5);
  EXPECT_GT(q288, 0.008);
  EXPECT_LT(q288, 0.014);
  // Increases with T, decreases with p.
  EXPECT_GT(saturation_q(298.0, 1.0e5), q288);
  EXPECT_GT(saturation_q(288.0, 8.0e4), q288);
}

TEST(BulkTransfer, StabilityDependence) {
  const double neutral = bulk_transfer_coefficient(70.0, 1e-4, 0.0);
  const double unstable = bulk_transfer_coefficient(70.0, 1e-4, -0.5);
  const double stable = bulk_transfer_coefficient(70.0, 1e-4, 0.5);
  EXPECT_GT(unstable, neutral);
  EXPECT_LT(stable, neutral);
  EXPECT_GT(stable, 0.0);
  // Rougher surfaces exchange more.
  EXPECT_GT(bulk_transfer_coefficient(70.0, 1e-2, 0.0), neutral);
}

TEST(OceanRoughness, Ccm3GrowsWithWind) {
  const double calm = ocean_roughness_ccm3(2.0);
  const double gale = ocean_roughness_ccm3(20.0);
  EXPECT_GT(gale, calm);
  EXPECT_GE(calm, 1.5e-5);  // smooth-flow floor
}

TEST(Radiation, GreenhouseResponseToCo2) {
  AtmConfig cfg;
  Column col = tropical_column();
  Surface sfc;
  sfc.tsurf = 300.0;
  ColumnFluxes f1, f4;
  cfg.co2_factor = 1.0;
  radiation_heating(cfg, col, sfc, 0.4, f1);
  cfg.co2_factor = 4.0;
  radiation_heating(cfg, col, sfc, 0.4, f4);
  // More CO2: more downward longwave, less OLR (greenhouse).
  EXPECT_GT(f4.lw_down_sfc, f1.lw_down_sfc);
  EXPECT_LT(f4.olr, f1.olr);
}

TEST(Radiation, EnergeticallyPlausible) {
  AtmConfig cfg;
  Column col = tropical_column();
  Surface sfc;
  sfc.tsurf = 300.0;
  sfc.albedo = 0.07;
  ColumnFluxes f;
  radiation_heating(cfg, col, sfc, 0.4, f);
  EXPECT_GT(f.sw_absorbed_sfc, 100.0);
  EXPECT_LT(f.sw_absorbed_sfc, 450.0);
  EXPECT_GT(f.lw_down_sfc, 200.0);
  EXPECT_LT(f.lw_down_sfc, 480.0);
  EXPECT_GT(f.olr, 120.0);
  EXPECT_LT(f.olr, 380.0);
  // Dark surface absorbs more than a bright one.
  Surface icy = sfc;
  icy.albedo = 0.65;
  ColumnFluxes fi;
  radiation_heating(cfg, col, icy, 0.4, fi);
  EXPECT_LT(fi.sw_absorbed_sfc, f.sw_absorbed_sfc);
}

TEST(Radiation, NightHasNoShortwave) {
  AtmConfig cfg;
  Column col = tropical_column();
  Surface sfc;
  ColumnFluxes f;
  radiation_heating(cfg, col, sfc, 0.0, f);
  EXPECT_DOUBLE_EQ(f.sw_absorbed_sfc, 0.0);
  EXPECT_GT(f.lw_down_sfc, 0.0);  // longwave continues
}

TEST(Convection, Ccm3DeepConvectionRainsMoreInWarmPoolConditions) {
  // The paper's §6 mechanism in one column: over a very warm, moist
  // surface the CCM3 deep convection produces substantially more rain
  // than the CCM2 adjustment alone.
  AtmConfig ccm2;
  ccm2.physics = PhysicsVersion::kCcm2;
  AtmConfig ccm3;
  ccm3.physics = PhysicsVersion::kCcm3;
  double rain2 = 0.0, rain3 = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    Column a = tropical_column();
    Column b = tropical_column();
    // Load the boundary layer with moisture (post-evaporation state).
    a.q.back() = 0.9 * saturation_q(a.t.back(), 0.97e5);
    b.q.back() = a.q.back();
    rain2 += moist_convection(ccm2, a, 1800.0);
    rain3 += moist_convection(ccm3, b, 1800.0);
  }
  EXPECT_GT(rain3, rain2 * 1.2);
}

TEST(Convection, StabilizesAnUnstableColumn) {
  AtmConfig cfg;
  Column col = tropical_column();
  // Make the boundary layer explosively buoyant.
  col.t.back() += 8.0;
  col.q.back() = saturation_q(col.t.back(), 0.97e5);
  const double rain = moist_convection(cfg, col, 1800.0);
  EXPECT_GE(rain, 0.0);
  for (const double qv : col.q) EXPECT_GE(qv, -1e-12);
  for (const double tv : col.t) {
    EXPECT_GT(tv, 150.0);
    EXPECT_LT(tv, 350.0);
  }
}

TEST(Condensation, RemovesSupersaturationAndWarms) {
  AtmConfig cfg;
  Column col = tropical_column();
  const int k = 12;
  const auto sig = sigma_levels(18);
  col.q[k] = 1.4 * saturation_q(col.t[k], sig[k] * col.ps);
  const double t_before = col.t[k];
  const double rain = large_scale_condensation(cfg, col, 1800.0);
  EXPECT_GT(rain, 0.0);
  EXPECT_GT(col.t[k], t_before);  // latent heating
  EXPECT_LE(col.q[k],
            saturation_q(col.t[k], sig[k] * col.ps) * 1.0001);
}

TEST(Condensation, Ccm3EvaporatesFallingRain) {
  // With dry layers below, CCM3 re-evaporates part of the stratiform rain:
  // less rain reaches the ground than under CCM2.
  AtmConfig ccm2;
  ccm2.physics = PhysicsVersion::kCcm2;
  AtmConfig ccm3;
  ccm3.physics = PhysicsVersion::kCcm3;
  auto make = []() {
    Column col = tropical_column();
    const auto sig = sigma_levels(18);
    col.q[6] = 1.5 * saturation_q(col.t[6], sig[6] * col.ps);
    for (int k = 7; k < 18; ++k) col.q[k] *= 0.3;  // dry below
    return col;
  };
  Column a = make();
  Column b = make();
  const double r2 = large_scale_condensation(ccm2, a, 1800.0);
  const double r3 = large_scale_condensation(ccm3, b, 1800.0);
  EXPECT_LT(r3, r2);
  // The evaporated water moistens the sub-cloud layers.
  EXPECT_GT(b.q[8], a.q[8]);
}

TEST(ColumnStep, FluxesPhysicalOverWarmOcean) {
  AtmConfig cfg;
  Column col = tropical_column();
  Surface sfc;
  sfc.tsurf = 302.0;
  sfc.is_ocean = true;
  std::vector<double> rad(18, 0.0);
  const ColumnFluxes f =
      step_column_physics(cfg, col, sfc, rad, 6.0, 1.0, 1800.0);
  EXPECT_GT(f.latent, 0.0);
  EXPECT_LT(f.latent, 600.0);
  EXPECT_GT(f.evaporation, 0.0);
  // Stress aligned with the wind.
  EXPECT_GT(f.taux, 0.0);
  EXPECT_GT(f.taux, f.tauy * 0.9);
  EXPECT_FALSE(std::isnan(f.sensible));
}

TEST(ColumnStep, WetnessLimitsEvaporation) {
  AtmConfig cfg;
  Column a = tropical_column();
  Column b = tropical_column();
  Surface wet;
  wet.tsurf = 300.0;
  wet.is_ocean = false;
  wet.wetness = 1.0;
  Surface dry = wet;
  dry.wetness = 0.1;
  std::vector<double> rad(18, 0.0);
  const auto fw = step_column_physics(cfg, a, wet, rad, 5.0, 0.0, 1800.0);
  const auto fd = step_column_physics(cfg, b, dry, rad, 5.0, 0.0, 1800.0);
  EXPECT_NEAR(fd.evaporation, 0.1 * fw.evaporation,
              0.05 * fw.evaporation + 1e-9);
}

TEST(ColumnStep, SnowWhenCold) {
  AtmConfig cfg;
  Column col = tropical_column();
  for (auto& t : col.t) t -= 45.0;  // polar column
  for (std::size_t k = 0; k < col.q.size(); ++k)
    col.q[k] = 1.2 * saturation_q(col.t[k],
                                  sigma_levels(18)[k] * col.ps);
  Surface sfc;
  sfc.tsurf = 255.0;
  std::vector<double> rad(18, 0.0);
  const auto f = step_column_physics(cfg, col, sfc, rad, 4.0, 0.0, 1800.0);
  EXPECT_GT(f.precip_snow, 0.0);
  EXPECT_DOUBLE_EQ(f.precip_rain, 0.0);
}

}  // namespace
}  // namespace foam::atm
