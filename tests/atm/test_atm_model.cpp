#include "atm/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "atm/dynamics.hpp"
#include "numerics/spectral.hpp"
#include "par/comm.hpp"

namespace foam::atm {
namespace {

SurfaceFields warm_ocean_surface(const numerics::GaussianGrid& grid) {
  SurfaceFields sfc(grid.nlon(), grid.nlat());
  for (int j = 0; j < grid.nlat(); ++j) {
    const double lat = grid.lat(j) * 57.2958;
    for (int i = 0; i < grid.nlon(); ++i) {
      sfc.tsurf(i, j) =
          273.15 +
          std::max(-1.9, -2.0 + 30.0 * std::exp(-lat * lat / 1024.0));
      sfc.albedo(i, j) = 0.08;
    }
  }
  return sfc;
}

TEST(SpectralDynamics, JetsAndBoundedEnstrophy) {
  AtmConfig cfg = AtmConfig::testing();
  numerics::GaussianGrid grid(cfg.nlon, cfg.nlat);
  numerics::SpectralTransform st(grid, cfg.mmax);
  std::vector<int> all;
  for (int j = 0; j < cfg.nlat; ++j) all.push_back(j);
  SpectralDynamics dyn(cfg, st, all);
  dyn.init();
  const double e0 = dyn.total_enstrophy();
  EXPECT_GT(e0, 0.0);
  for (int s = 0; s < 48 * 5; ++s) dyn.step(nullptr);
  const double e1 = dyn.total_enstrophy();
  EXPECT_GT(e1, 0.0);
  EXPECT_LT(e1, 100.0 * e0);  // bounded by relaxation + del^4
  // Midlatitude westerlies at the upper level (zonal mean).
  int j_mid = 3 * cfg.nlat / 4;  // ~+45 deg
  double ubar = 0.0;
  for (int i = 0; i < cfg.nlon; ++i) ubar += dyn.u(0)(i, j_mid);
  ubar /= cfg.nlon;
  EXPECT_GT(ubar, 3.0);
  EXPECT_LT(ubar, 80.0);
}

TEST(SpectralDynamics, EddiesDevelop) {
  // The stochastic baroclinic stirring must generate deviations from the
  // zonal mean ("weather") within a few days.
  AtmConfig cfg = AtmConfig::testing();
  numerics::GaussianGrid grid(cfg.nlon, cfg.nlat);
  numerics::SpectralTransform st(grid, cfg.mmax);
  std::vector<int> all;
  for (int j = 0; j < cfg.nlat; ++j) all.push_back(j);
  SpectralDynamics dyn(cfg, st, all);
  dyn.init();
  for (int s = 0; s < 48 * 10; ++s) dyn.step(nullptr);
  double eddy = 0.0;
  for (int j = cfg.nlat / 4; j < 3 * cfg.nlat / 4; ++j) {
    double zbar = 0.0;
    for (int i = 0; i < cfg.nlon; ++i) zbar += dyn.u(0)(i, j);
    zbar /= cfg.nlon;
    for (int i = 0; i < cfg.nlon; ++i)
      eddy = std::max(eddy, std::abs(dyn.u(0)(i, j) - zbar));
  }
  EXPECT_GT(eddy, 0.5);
}

TEST(SpectralDynamics, ThermalJetRespondsToGradient) {
  AtmConfig cfg = AtmConfig::testing();
  numerics::GaussianGrid grid(cfg.nlon, cfg.nlat);
  numerics::SpectralTransform st(grid, cfg.mmax);
  std::vector<int> all;
  for (int j = 0; j < cfg.nlat; ++j) all.push_back(j);
  SpectralDynamics dyn(cfg, st, all);
  dyn.init();
  std::vector<double> target(cfg.nlat, 12.0);
  dyn.set_thermal_jet(target);
  for (int s = 0; s < 48 * 20; ++s) dyn.step(nullptr);
  // The lowest level relaxes toward the prescribed westerly target.
  double ubar = 0.0;
  int n = 0;
  for (int j = cfg.nlat / 4; j < 3 * cfg.nlat / 4; ++j)
    for (int i = 0; i < cfg.nlon; ++i) {
      ubar += dyn.u(cfg.ndyn - 1)(i, j);
      ++n;
    }
  ubar /= n;
  EXPECT_GT(ubar, 2.0);
}

TEST(AtmosphereModel, FiveDaysStablePhysicalState) {
  AtmConfig cfg = AtmConfig::testing();
  AtmosphereModel m(cfg);
  m.init_default();
  m.set_surface(warm_ocean_surface(m.grid()));
  ModelTime now;
  for (int s = 0; s < 48 * 5; ++s) {
    m.step(now);
    now.advance(1800);
  }
  EXPECT_FALSE(has_non_finite(m.temperature()));
  EXPECT_FALSE(has_non_finite(m.moisture()));
  const double tb = m.mean_t_sfc_level();
  EXPECT_GT(tb, 255.0);
  EXPECT_LT(tb, 305.0);
  const double p = m.mean_precip() * 86400.0;  // mm/day
  EXPECT_GT(p, 0.2);
  EXPECT_LT(p, 12.0);
  // Moisture within physical limits everywhere.
  EXPECT_LE(m.moisture().max(), 0.04 + 1e-12);
  EXPECT_GE(m.moisture().min(), 0.0);
}

TEST(AtmosphereModel, FluxAccumulationAndReset) {
  AtmConfig cfg = AtmConfig::testing();
  AtmosphereModel m(cfg);
  m.init_default();
  m.set_surface(warm_ocean_surface(m.grid()));
  ModelTime now;
  for (int s = 0; s < 12; ++s) {
    m.step(now);
    now.advance(1800);
  }
  EXPECT_EQ(m.accumulated_steps(), 12);
  EXPECT_GT(m.accumulated_fluxes().sw_sfc.max(), 0.0);
  m.reset_flux_accumulation();
  EXPECT_EQ(m.accumulated_steps(), 0);
  EXPECT_DOUBLE_EQ(m.accumulated_fluxes().sw_sfc.max_abs(), 0.0);
}

TEST(AtmosphereModel, Ccm3WetterTropicsThanCcm2) {
  // §6: the CCM3 moist physics changes the tropical precipitation.
  auto tropics_rain = [](PhysicsVersion phys) {
    AtmConfig cfg = AtmConfig::testing();
    cfg.physics = phys;
    AtmosphereModel m(cfg);
    m.init_default();
    m.set_surface(warm_ocean_surface(m.grid()));
    ModelTime now;
    for (int s = 0; s < 48 * 4; ++s) {
      m.step(now);
      now.advance(1800);
    }
    double rain = 0.0;
    int n = 0;
    const auto& f = m.accumulated_fluxes();
    for (int j = 2 * cfg.nlat / 5; j < 3 * cfg.nlat / 5; ++j)
      for (int i = 0; i < cfg.nlon; ++i) {
        rain += f.rain(i, j);
        ++n;
      }
    return rain / n;
  };
  const double r2 = tropics_rain(PhysicsVersion::kCcm2);
  const double r3 = tropics_rain(PhysicsVersion::kCcm3);
  EXPECT_GT(r3, 0.0);
  EXPECT_NE(r2, r3);  // the physics switch must matter
}

TEST(AtmosphereModel, ParallelMatchesSerialMeans) {
  AtmConfig cfg = AtmConfig::testing();
  AtmosphereModel serial(cfg);
  serial.init_default();
  serial.set_surface(warm_ocean_surface(serial.grid()));
  ModelTime now;
  for (int s = 0; s < 24; ++s) {
    serial.step(now);
    now.advance(1800);
  }
  const double t_ref = serial.mean_t_sfc_level();

  par::run(2, [&](par::Comm& comm) {
    AtmosphereModel m(cfg, &comm);
    m.init_default();
    m.set_surface(warm_ocean_surface(m.grid()));
    ModelTime t;
    for (int s = 0; s < 24; ++s) {
      m.step(t);
      t.advance(1800);
    }
    EXPECT_NEAR(m.mean_t_sfc_level(), t_ref, 0.2);
  });
}

TEST(AtmosphereModel, CostEmulationIncreasesWork) {
  AtmConfig cheap = AtmConfig::testing();
  AtmConfig full = cheap;
  full.emulate_full_core_cost = true;
  AtmosphereModel a(cheap), b(full);
  a.init_default();
  b.init_default();
  ModelTime now;
  for (int s = 0; s < 12; ++s) {
    a.step(now);
    b.step(now);
    now.advance(1800);
  }
  EXPECT_GT(b.work_points(), 2.0 * a.work_points());
}

}  // namespace
}  // namespace foam::atm
