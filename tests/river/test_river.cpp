#include "river/river.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/earth.hpp"

namespace foam::river {
namespace {

struct RiverWorld {
  RiverWorld()
      : grid(48, 40),
        mask(data::land_mask(grid)),
        oro(data::orography(grid)),
        model(grid, mask, oro) {}
  numerics::GaussianGrid grid;
  Field2D<int> mask;
  Field2Dd oro;
  RiverModel model;
};

TEST(RiverModel, EveryLandCellHasADirection) {
  RiverWorld w;
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i) {
      if (w.mask(i, j) != 0) {
        EXPECT_GE(w.model.direction(i, j), 0);
        int ii, jj;
        w.model.downstream(i, j, ii, jj);
        EXPECT_TRUE(ii != i || jj != j);
      } else {
        EXPECT_EQ(w.model.direction(i, j), -1);
      }
    }
}

TEST(RiverModel, DirectionsPreferDownhill) {
  RiverWorld w;
  int downhill = 0, total = 0;
  for (int j = 1; j < 39; ++j)
    for (int i = 0; i < 48; ++i) {
      if (w.mask(i, j) == 0) continue;
      int ii, jj;
      w.model.downstream(i, j, ii, jj);
      const double h_here = w.oro(i, j);
      const double h_down = w.mask(ii, jj) == 0 ? 0.0 : w.oro(ii, jj);
      ++total;
      if (h_down <= h_here + 1e-9) ++downhill;
    }
  EXPECT_GT(static_cast<double>(downhill) / total, 0.95);
}

TEST(RiverModel, AllRunoffEventuallyReachesTheOcean) {
  RiverWorld w;
  Field2Dd runoff(48, 40, 0.0);
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i)
      if (w.mask(i, j) != 0) runoff(i, j) = 0.01;  // 1 cm everywhere
  w.model.add_runoff(runoff);
  const double v0 = w.model.total_volume();
  EXPECT_GT(v0, 0.0);
  // Route for up to two simulated years of daily steps; with u=0.35 m/s a
  // continental-scale path of ~10^7 m takes ~1 year.
  double discharged = 0.0;
  for (int day = 0; day < 730; ++day) {
    w.model.step(86400.0);
    discharged += w.model.drain_discharge(86400.0).sum() * 86400.0;
    if (w.model.total_volume() < 1e-4 * v0) break;
  }
  // Volume conservation: storage + discharge = input.
  EXPECT_NEAR((w.model.total_volume() + discharged) / v0, 1.0, 1e-9);
  EXPECT_LT(w.model.total_volume() / v0, 0.05)
      << "most water should have reached the sea";
}

TEST(RiverModel, FlowRateMatchesFormula) {
  // F = V u / d: a single loaded cell drains at the paper's rate.
  RiverWorld w;
  int li = -1, lj = -1;
  for (int j = 10; j < 30 && li < 0; ++j)
    for (int i = 0; i < 48 && li < 0; ++i)
      if (w.mask(i, j) != 0) {
        li = i;
        lj = j;
      }
  ASSERT_GE(li, 0);
  Field2Dd runoff(48, 40, 0.0);
  runoff(li, lj) = 0.02;
  w.model.add_runoff(runoff);
  const double v0 = w.model.total_volume();
  const double dt = 3600.0;
  w.model.step(dt);
  const double drained = v0 - w.model.total_volume() -
                         0.0;  // may include the mouth accumulator
  // Expect an outflow of roughly V*u/d*dt with d ~ one grid cell
  // (hundreds of km): a small fraction of V in an hour.
  EXPECT_GT(drained, 0.0);
  EXPECT_LT(drained, 0.05 * v0);
}

TEST(RiverModel, ManualOverridesRespected) {
  numerics::GaussianGrid grid(48, 40);
  const auto mask = foam::data::land_mask(grid);
  const auto oro = foam::data::orography(grid);
  // Find a land cell and force it to flow due north.
  int li = -1, lj = -1;
  for (int j = 10; j < 30 && li < 0; ++j)
    for (int i = 0; i < 48 && li < 0; ++i)
      if (mask(i, j) != 0) {
        li = i;
        lj = j;
      }
  ASSERT_GE(li, 0);
  RiverModel m(grid, mask, oro, {{li, lj, 0, 1}});
  int ii, jj;
  m.downstream(li, lj, ii, jj);
  EXPECT_EQ(ii, li);
  EXPECT_EQ(jj, lj + 1);
}

TEST(RiverModel, BasinCountPlausible) {
  RiverWorld w;
  const int basins = w.model.count_basins();
  // Continental-scale drainage: dozens to a few hundred distinct basins.
  EXPECT_GT(basins, 10);
  EXPECT_LT(basins, 500);
}

TEST(RiverModel, DrainDischargeResets) {
  RiverWorld w;
  Field2Dd runoff(48, 40, 0.0);
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i)
      if (w.mask(i, j) != 0) runoff(i, j) = 0.05;
  w.model.add_runoff(runoff);
  for (int s = 0; s < 200; ++s) w.model.step(86400.0);
  const Field2Dd d1 = w.model.drain_discharge(86400.0);
  EXPECT_GT(d1.sum(), 0.0);
  const Field2Dd d2 = w.model.drain_discharge(86400.0);
  EXPECT_DOUBLE_EQ(d2.sum(), 0.0);
  // Discharge lands on ocean cells only.
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i)
      if (w.mask(i, j) != 0) {
        EXPECT_DOUBLE_EQ(d1(i, j), 0.0);
      }
}

}  // namespace
}  // namespace foam::river
