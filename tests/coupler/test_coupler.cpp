#include "coupler/coupler.hpp"
#include "coupler/overlap.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "base/constants.hpp"
#include "data/earth.hpp"

namespace foam::coupler {
namespace {

namespace c = foam::constants;

TEST(OverlapGrid, TotalAreaEqualsSharedBand) {
  numerics::GaussianGrid agrid(48, 40);
  numerics::MercatorGrid ogrid(128, 128, 70.0);
  OverlapGrid ov(agrid, ogrid);
  // The intersection of the grids is the ocean grid's latitude band.
  const double band = 2.0 * c::pi * c::earth_radius * c::earth_radius *
                      2.0 * std::sin(70.0 * c::deg2rad);
  EXPECT_NEAR(ov.total_area() / band, 1.0, 1e-9);
  EXPECT_GT(static_cast<int>(ov.cells().size()), 128 * 128);
}

TEST(OverlapGrid, ConstantFieldRemapsExactly) {
  numerics::GaussianGrid agrid(48, 40);
  numerics::MercatorGrid ogrid(64, 64, 70.0);
  OverlapGrid ov(agrid, ogrid);
  Field2Dd atm(48, 40, 3.75);
  const Field2Dd ocn = ov.to_ocean(atm);
  for (int j = 0; j < 64; ++j)
    for (int i = 0; i < 64; ++i) EXPECT_NEAR(ocn(i, j), 3.75, 1e-12);
  // And back.
  Field2D<int> valid(64, 64, 1);
  const Field2Dd back = ov.to_atm(ocn, valid, -1.0);
  for (int j = 0; j < 40; ++j) {
    const double lat = agrid.lat(j) * c::rad2deg;
    for (int i = 0; i < 48; ++i) {
      if (std::abs(lat) < 65.0) {
        EXPECT_NEAR(back(i, j), 3.75, 1e-12);
      }
    }
  }
}

TEST(OverlapGrid, FluxIntegralConservedAtmToOcean) {
  // The defining property of the overlap-grid exchange (Fig. 1): the
  // area-integrated flux over the shared band is identical on both grids.
  numerics::GaussianGrid agrid(48, 40);
  numerics::MercatorGrid ogrid(128, 128, 70.0);
  OverlapGrid ov(agrid, ogrid);
  Field2Dd atm(48, 40);
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i)
      atm(i, j) = 100.0 + 30.0 * std::sin(0.3 * i) * std::cos(0.5 * j);
  const Field2Dd ocn = ov.to_ocean(atm);
  // Integral over the overlap cells computed from each side.
  double int_atm = 0.0, int_ocn = 0.0;
  for (const auto& cell : ov.cells()) {
    int_atm += cell.area * atm(cell.ia, cell.ja);
  }
  for (int j = 0; j < 128; ++j)
    for (int i = 0; i < 128; ++i) int_ocn += ogrid.cell_area(j) * ocn(i, j);
  EXPECT_NEAR(int_ocn / int_atm, 1.0, 1e-9);
}

TEST(OverlapGrid, MaskedOceanToAtmCoverage) {
  numerics::GaussianGrid agrid(48, 40);
  numerics::MercatorGrid ogrid(64, 64, 70.0);
  OverlapGrid ov(agrid, ogrid);
  // Valid only in the eastern hemisphere of the ocean grid.
  Field2D<int> valid(64, 64, 0);
  for (int j = 0; j < 64; ++j)
    for (int i = 0; i < 32; ++i) valid(i, j) = 1;
  Field2Dd f(64, 64, 7.0);
  Field2Dd cov;
  const Field2Dd out = ov.to_atm(f, valid, -5.0, &cov);
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i) {
      EXPECT_GE(cov(i, j), 0.0);
      EXPECT_LE(cov(i, j), 1.0 + 1e-9);
      if (cov(i, j) > 0.0) {
        EXPECT_NEAR(out(i, j), 7.0, 1e-12);
      } else {
        EXPECT_DOUBLE_EQ(out(i, j), -5.0);  // fill value kept
      }
    }
}

struct CouplerWorld {
  CouplerWorld()
      : agrid(48, 40),
        ogrid(64, 64, 70.0),
        omask(data::ocean_mask(ogrid)),
        coup(agrid, ogrid, omask) {}
  numerics::GaussianGrid agrid;
  numerics::MercatorGrid ogrid;
  Field2D<int> omask;
  Coupler coup;
};

atm::FluxFields plausible_fluxes(int nx, int ny) {
  atm::FluxFields f(nx, ny);
  f.sw_sfc.fill(180.0);
  f.lw_down.fill(330.0);
  f.sensible.fill(15.0);
  f.latent.fill(80.0);
  f.evaporation.fill(80.0 / c::latent_vap);
  f.rain.fill(3.0e-5);
  f.taux.fill(0.05);
  return f;
}

TEST(Coupler, LandFractionConsistentWithMasks) {
  CouplerWorld w;
  const auto& fl = w.coup.land_fraction_a();
  const auto lmask = data::land_mask(w.agrid);
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i) {
      EXPECT_GE(fl(i, j), 0.0);
      EXPECT_LE(fl(i, j), 1.0);
      if (lmask(i, j) != 0) {
        EXPECT_DOUBLE_EQ(fl(i, j), 1.0);
      }
    }
}

TEST(Coupler, OceanForcingPlausible) {
  CouplerWorld w;
  const auto fluxes = plausible_fluxes(48, 40);
  Field2Dd sst(64, 64, 15.0);
  Field2Dd frazil(64, 64, 0.0);
  const auto forcing =
      w.coup.make_ocean_forcing(fluxes, sst, frazil, 21600.0);
  // qnet = 180 + 330 - lw_up(15C ~ 390) - 15 - 80 ~ +25 W/m^2.
  double qsum = 0.0;
  int n = 0;
  for (int j = 0; j < 64; ++j)
    for (int i = 0; i < 64; ++i)
      if (w.omask(i, j) != 0) {
        qsum += forcing.qnet(i, j);
        ++n;
      }
  EXPECT_NEAR(qsum / n, 25.0, 30.0);
  EXPECT_NEAR(forcing.taux.max(), 0.05, 1e-9);
  EXPECT_FALSE(has_non_finite(forcing.fw));
}

TEST(Coupler, AtmSurfaceBlendsSstOverOcean) {
  CouplerWorld w;
  Field2Dd sst(64, 64, 20.0);
  const auto sfc = w.coup.make_atm_surface(sst);
  // A deep-ocean atmosphere cell reports ~293 K.
  int found = 0;
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i) {
      if (w.coup.land_fraction_a()(i, j) < 0.05 &&
          std::abs(w.agrid.lat(j) * c::rad2deg) < 40.0) {
        EXPECT_NEAR(sfc.tsurf(i, j), 293.15, 1.0);
        EXPECT_EQ(sfc.is_ocean(i, j), 1);
        EXPECT_NEAR(sfc.wetness(i, j), 1.0, 1e-9);
        ++found;
      }
    }
  EXPECT_GT(found, 50);
}

TEST(Coupler, PolarCapsTreatedAsIce) {
  CouplerWorld w;
  Field2Dd sst(64, 64, 10.0);
  const auto sfc = w.coup.make_atm_surface(sst);
  // Atmosphere rows poleward of the ocean grid over water: prescribed ice
  // (cold and bright).
  int checked = 0;
  const auto lmask = data::land_mask(w.agrid);
  for (int j = 0; j < 40; ++j) {
    const double lat = w.agrid.lat(j) * c::rad2deg;
    if (std::abs(lat) < 75.0) continue;
    for (int i = 0; i < 48; ++i) {
      if (lmask(i, j) != 0) continue;
      EXPECT_GT(sfc.albedo(i, j), 0.5) << "polar cap should be icy";
      EXPECT_LT(sfc.tsurf(i, j), 275.0);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(Coupler, HydrologicalCycleDeliversRiverWater) {
  CouplerWorld w;
  auto fluxes = plausible_fluxes(48, 40);
  fluxes.rain.fill(4.0e-4);  // very wet world so buckets overflow fast
  Field2Dd sst(64, 64, 15.0);
  Field2Dd frazil(64, 64, 0.0);
  double discharge = 0.0;
  for (int ex = 0; ex < 40; ++ex) {
    w.coup.step_land(fluxes, 21600.0);
    const auto forcing =
        w.coup.make_ocean_forcing(fluxes, sst, frazil, 21600.0);
    for (int j = 0; j < 64; ++j)
      for (int i = 0; i < 64; ++i)
        if (w.omask(i, j) != 0)
          discharge += std::max(0.0, forcing.fw(i, j));
  }
  EXPECT_GT(discharge, 0.0);
  EXPECT_GT(w.coup.river().total_volume(), 0.0);
}

}  // namespace
}  // namespace foam::coupler
