// Parameterized conservation sweep of the overlap grid over resolution
// pairs: the Figure-1 construction must conserve at every combination.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "base/constants.hpp"
#include "coupler/overlap.hpp"

namespace foam::coupler {
namespace {

namespace c = foam::constants;

/// (atm nlon, atm nlat, ocn nlon, ocn nlat, ocn lat_max)
using GridPair = std::tuple<int, int, int, int, double>;

class OverlapSweep : public ::testing::TestWithParam<GridPair> {};

TEST_P(OverlapSweep, AreaAndFluxConservation) {
  const auto [anlon, anlat, onlon, onlat, latmax] = GetParam();
  numerics::GaussianGrid agrid(anlon, anlat);
  numerics::MercatorGrid ogrid(onlon, onlat, latmax);
  OverlapGrid ov(agrid, ogrid);
  const double band = 2.0 * c::pi * c::earth_radius * c::earth_radius *
                      2.0 * std::sin(latmax * c::deg2rad);
  EXPECT_NEAR(ov.total_area() / band, 1.0, 1e-9);

  Field2Dd flux(anlon, anlat);
  for (int j = 0; j < anlat; ++j)
    for (int i = 0; i < anlon; ++i)
      flux(i, j) = 50.0 + 25.0 * std::sin(0.7 * i + 0.2 * j);
  const Field2Dd on_ocean = ov.to_ocean(flux);
  double int_a = 0.0, int_o = 0.0;
  for (const auto& cell : ov.cells())
    int_a += cell.area * flux(cell.ia, cell.ja);
  for (int j = 0; j < onlat; ++j)
    for (int i = 0; i < onlon; ++i)
      int_o += ogrid.cell_area(j) * on_ocean(i, j);
  EXPECT_NEAR(int_o / int_a, 1.0, 1e-9);
}

TEST_P(OverlapSweep, EveryOceanCellFullyCovered) {
  const auto [anlon, anlat, onlon, onlat, latmax] = GetParam();
  numerics::GaussianGrid agrid(anlon, anlat);
  numerics::MercatorGrid ogrid(onlon, onlat, latmax);
  OverlapGrid ov(agrid, ogrid);
  // Sum of overlap areas per ocean cell equals the ocean cell's area: the
  // atmosphere grid tiles the sphere, so no ocean cell is orphaned.
  Field2Dd covered(onlon, onlat, 0.0);
  for (const auto& cell : ov.cells())
    covered(cell.io, cell.jo) += cell.area;
  for (int j = 0; j < onlat; ++j)
    for (int i = 0; i < onlon; ++i)
      EXPECT_NEAR(covered(i, j) / ogrid.cell_area(j), 1.0, 1e-9)
          << i << "," << j;
}

INSTANTIATE_TEST_SUITE_P(
    GridPairs, OverlapSweep,
    ::testing::Values(GridPair{48, 40, 128, 128, 70.0},
                      GridPair{48, 40, 64, 64, 70.0},
                      GridPair{24, 20, 64, 64, 60.0},
                      GridPair{24, 20, 48, 48, 75.0},
                      GridPair{96, 80, 64, 64, 65.0}));

}  // namespace
}  // namespace foam::coupler
