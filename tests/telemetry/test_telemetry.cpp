#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "par/comm.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/observe.hpp"

namespace foam::telemetry {
namespace {

TelemetryOptions full_opts() {
  TelemetryOptions o;
  o.level = TraceLevel::kFull;
  return o;
}

// ---------------------------------------------------------------------------
// Tracer: nesting, region inheritance, flat downgrade
// ---------------------------------------------------------------------------

TEST(Tracer, RecordsNestedSpansWithDepthsAndRegions) {
  Tracer tr(full_opts());
  tr.begin_region(par::Region::kAtmosphere);
  tr.begin_span("outer");
  tr.begin_span("inner");
  tr.end_span();
  tr.end_span();
  tr.end_region();
  const auto spans = tr.spans();  // completion order: inner, outer, region
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(tr.names()[spans[0].name_id], "inner");
  EXPECT_EQ(spans[0].depth, 2);
  EXPECT_EQ(tr.names()[spans[1].name_id], "outer");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(tr.names()[spans[2].name_id], "atmosphere");
  EXPECT_EQ(spans[2].depth, 0);
  // Named spans inherit the innermost enclosing region class.
  for (const auto& s : spans) EXPECT_EQ(s.region, par::Region::kAtmosphere);
  // Parent intervals contain child intervals.
  EXPECT_LE(spans[2].t0, spans[1].t0);
  EXPECT_LE(spans[1].t0, spans[0].t0);
  EXPECT_LE(spans[0].t1, spans[1].t1);
  EXPECT_LE(spans[1].t1, spans[2].t1);
  EXPECT_EQ(tr.open_depth(), 0);
}

TEST(Tracer, NestedRegionResumesParentInFlatView) {
  Tracer tr(full_opts());
  tr.begin_region(par::Region::kAtmosphere);
  tr.begin_region(par::Region::kCoupler);
  tr.end_region();
  tr.end_region();
  // Flat downgrade: atmosphere, coupler, atmosphere-resumed.
  const auto& segs = tr.flat().segments();
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].region, par::Region::kAtmosphere);
  EXPECT_EQ(segs[1].region, par::Region::kCoupler);
  EXPECT_EQ(segs[2].region, par::Region::kAtmosphere);
  // The nested coupler span covers the same interval as the flat coupler
  // segment (same begin/end events, separate clock reads). region_total
  // deliberately counts depth-0 spans only — the driver never nests
  // region spans inside region spans — so sum over all depths here.
  const RankTrace t = tr.trace();
  double coupler_spans = 0.0;
  for (const SpanRec& s : t.spans)
    if (s.region == par::Region::kCoupler) coupler_spans += s.t1 - s.t0;
  EXPECT_NEAR(coupler_spans, tr.flat().total(par::Region::kCoupler), 1e-3);
  EXPECT_DOUBLE_EQ(t.region_total(par::Region::kCoupler), 0.0);
}

TEST(Tracer, NamedSpansNotRecordedBelowFull) {
  TelemetryOptions o;
  o.level = TraceLevel::kRegions;
  Tracer tr(o);
  tr.begin_region(par::Region::kOcean);
  tr.begin_span("hidden");
  tr.end_span();
  tr.end_region();
  const auto spans = tr.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(tr.names()[spans[0].name_id], "ocean");
}

TEST(Tracer, CurrentRegionTracksInnermostRegionSpan) {
  Tracer tr(full_opts());
  EXPECT_EQ(tr.current_region(), par::Region::kOther);
  tr.begin_region(par::Region::kOcean);
  tr.begin_span("named");  // named spans do not change the region class
  EXPECT_EQ(tr.current_region(), par::Region::kOcean);
  tr.begin_region(par::Region::kCommWait);
  EXPECT_EQ(tr.current_region(), par::Region::kCommWait);
  tr.end_region();
  tr.end_span();
  tr.end_region();
  EXPECT_EQ(tr.current_region(), par::Region::kOther);
}

TEST(Tracer, RingBufferDropsOldestAndCounts) {
  TelemetryOptions o;
  o.level = TraceLevel::kFull;
  o.max_spans = 4;  // clamped up to the minimum of 16
  Tracer tr(o);
  for (int i = 0; i < 20; ++i) {
    // Built with += rather than "s" + to_string(i): the rvalue operator+
    // overload trips a GCC 12 libstdc++ -Wrestrict false positive (PR
    // 105329) that -Werror would turn fatal.
    std::string name = "s";
    name += std::to_string(i);
    tr.begin_span(name.c_str());
    tr.end_span();
  }
  const auto spans = tr.spans();
  EXPECT_EQ(spans.size(), 16u);
  EXPECT_EQ(tr.dropped(), 4u);
  // Chronological order preserved: the 4 oldest were overwritten.
  EXPECT_EQ(tr.names()[spans.front().name_id], "s4");
  EXPECT_EQ(tr.names()[spans.back().name_id], "s19");
}

// ---------------------------------------------------------------------------
// ScopedSession / ScopedSpan: RAII and exception unwind
// ---------------------------------------------------------------------------

void traced_throw() {
  FOAM_TRACE_SCOPE("throws");
  throw std::runtime_error("unwind");
}

TEST(ScopedSpan, ClosesOnExceptionUnwind) {
  Telemetry tel(full_opts());
  ScopedSession session(tel);
  Tracer& tr = tel.tracer();
  tr.begin_region(par::Region::kAtmosphere);
  EXPECT_THROW(traced_throw(), std::runtime_error);
  // The span destructor ran during unwind: the stack is back to just the
  // region, and the span was recorded.
  EXPECT_EQ(tr.open_depth(), 1);
  tr.end_region();
  const auto spans = tr.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(tr.names()[spans[0].name_id], "throws");
  EXPECT_EQ(spans[0].depth, 1);
}

TEST(ScopedSpan, NoOpWithoutSessionOrBelowFull) {
  {
    FOAM_TRACE_SCOPE("no session");  // must not crash
  }
  Telemetry tel;  // default level: kRegions
  ScopedSession session(tel);
  {
    FOAM_TRACE_SCOPE("below full");
  }
  EXPECT_TRUE(tel.tracer().spans().empty());
}

TEST(ScopedSession, RestoresPreviousSession) {
  EXPECT_EQ(current(), nullptr);
  Telemetry outer;
  {
    ScopedSession a(outer);
    EXPECT_EQ(current(), &outer);
    Telemetry inner;
    {
      ScopedSession b(inner);
      EXPECT_EQ(current(), &inner);
    }
    EXPECT_EQ(current(), &outer);
  }
  EXPECT_EQ(current(), nullptr);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Bucket b covers [2^(b-32), 2^(b-31)): 1.0 starts bucket 32, 0.5 is the
  // top of bucket 31.
  EXPECT_EQ(Histogram::bucket_of(1.0), 32);
  EXPECT_EQ(Histogram::bucket_of(0.5), 31);
  EXPECT_EQ(Histogram::bucket_of(1.5), 32);
  EXPECT_EQ(Histogram::bucket_of(2.0), 33);
  EXPECT_EQ(Histogram::bucket_of(std::nextafter(2.0, 0.0)), 32);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower(32), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower(31), 0.5);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower(33), 2.0);
  // Values land at or above their bucket's lower bound.
  for (const double v : {1e-6, 0.3, 1.0, 7.0, 1e5}) {
    const int b = Histogram::bucket_of(v);
    EXPECT_GE(v, Histogram::bucket_lower(b)) << v;
    EXPECT_LT(v, Histogram::bucket_lower(b + 1)) << v;
  }
}

TEST(Histogram, EdgeValuesGoToSentinelBuckets) {
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(-3.0), 0);
  EXPECT_EQ(Histogram::bucket_of(std::nan("")), 0);
  EXPECT_EQ(Histogram::bucket_of(1e-30), 0);  // below 2^-31: underflow
  EXPECT_EQ(Histogram::bucket_of(1e30), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::infinity()),
            Histogram::kBuckets - 1);
}

TEST(Histogram, RecordAccumulates) {
  Histogram h;
  h.record(1.0);
  h.record(1.5);
  h.record(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.5);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_EQ(h.buckets()[32], 2u);
  EXPECT_EQ(h.buckets()[34], 1u);
}

TEST(MetricsHelpers, WriteThroughCurrentSession) {
  Telemetry tel;
  {
    ScopedSession session(tel);
    count("events", 2);
    count("events");
    observe("sizes", 3.0);
    gauge_max("hwm", 5.0);
    gauge_max("hwm", 2.0);  // lower: keeps the high-water mark
  }
  count("events", 100);  // outside the session: dropped
  EXPECT_EQ(tel.metrics().counter("events").value(), 3u);
  EXPECT_EQ(tel.metrics().histogram("sizes").count(), 1u);
  EXPECT_DOUBLE_EQ(tel.metrics().gauge("hwm").value(), 5.0);
  const auto samples = tel.snapshot();
  auto find = [&](const std::string& name) {
    for (const auto& [n, v] : samples)
      if (n == name) return v;
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(find("events"), 3.0);
  EXPECT_DOUBLE_EQ(find("sizes.count"), 1.0);
  EXPECT_DOUBLE_EQ(find("trace.spans_dropped"), 0.0);
}

TEST(CommStats, TracksPeersByTagClass) {
  CommStats cs;
  cs.on_send(3, /*internal=*/false, 100, /*dest_depth=*/2);
  cs.on_send(3, /*internal=*/false, 50, /*dest_depth=*/7);
  cs.on_send(1, /*internal=*/true, 8, /*dest_depth=*/0);
  cs.on_recv(3, /*internal=*/false, 100);
  cs.on_mailbox_depth(4);
  cs.on_mailbox_depth(1);
  EXPECT_EQ(cs.peers[0][3].msgs_sent, 2u);
  EXPECT_EQ(cs.peers[0][3].bytes_sent, 150u);
  EXPECT_EQ(cs.peers[1][1].msgs_sent, 1u);
  EXPECT_EQ(cs.peers[0][3].msgs_recv, 1u);
  EXPECT_EQ(cs.dest_mailbox_hwm, 7u);
  EXPECT_EQ(cs.mailbox_hwm, 4u);
  std::vector<std::pair<std::string, double>> out;
  cs.snapshot(out);
  bool found = false;
  for (const auto& [n, v] : out)
    if (n == "comm.sent.bytes.user.peer3") {
      found = true;
      EXPECT_DOUBLE_EQ(v, 150.0);
    }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(TraceStream, RoundTrips) {
  Tracer tr(full_opts());
  tr.begin_region(par::Region::kOcean);
  tr.begin_span("solve");
  tr.end_span();
  tr.end_region();
  const RankTrace t = tr.trace();
  const auto buf = serialize_trace(t);
  const RankTrace back = deserialize_trace(buf.data(), buf.size());
  ASSERT_EQ(back.names.size(), t.names.size());
  EXPECT_EQ(back.names, t.names);
  ASSERT_EQ(back.spans.size(), t.spans.size());
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    EXPECT_EQ(back.spans[i].name_id, t.spans[i].name_id);
    EXPECT_EQ(back.spans[i].region, t.spans[i].region);
    EXPECT_EQ(back.spans[i].depth, t.spans[i].depth);
    EXPECT_DOUBLE_EQ(back.spans[i].t0, t.spans[i].t0);
    EXPECT_DOUBLE_EQ(back.spans[i].t1, t.spans[i].t1);
  }
  EXPECT_EQ(back.dropped, t.dropped);
}

TEST(TraceStream, RejectsMalformedInput) {
  // Empty stream: missing the name count.
  EXPECT_THROW(deserialize_trace(nullptr, 0), foam::Error);
  {
    const double buf[] = {1.0, 3.0, 'a', 'b'};  // truncated name chars
    EXPECT_THROW(deserialize_trace(buf, 4), foam::Error);
  }
  {
    const double buf[] = {-1.0};  // negative name count
    EXPECT_THROW(deserialize_trace(buf, 1), foam::Error);
  }
  {
    // One span with an out-of-range name id.
    const double buf[] = {0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0};
    EXPECT_THROW(deserialize_trace(buf, 8), foam::Error);
  }
  {
    // One name, one span, t1 < t0.
    const double buf[] = {1.0, 1.0, 'x', 0.0, 1.0,
                          0.0, 0.0, 0.0, 2.0, 1.0};
    EXPECT_THROW(deserialize_trace(buf, 10), foam::Error);
  }
  {
    // Valid empty trace followed by trailing garbage.
    const double buf[] = {0.0, 0.0, 0.0, 42.0};
    EXPECT_THROW(deserialize_trace(buf, 4), foam::Error);
  }
}

TEST(SampleStream, RoundTripsAndValidates) {
  const std::vector<std::pair<std::string, double>> samples = {
      {"a.count", 3.0}, {"b", -1.5}};
  const auto buf = serialize_samples(samples);
  EXPECT_EQ(deserialize_samples(buf.data(), buf.size()), samples);
  EXPECT_THROW(deserialize_samples(nullptr, 0), foam::Error);
  const double bad[] = {2.0, 1.0, 'a', 0.5};  // second sample missing
  EXPECT_THROW(deserialize_samples(bad, 4), foam::Error);
}

// ---------------------------------------------------------------------------
// Gather and merge across ranks
// ---------------------------------------------------------------------------

TEST(TraceGather, SerializeGatherMergeAcrossEightRanks) {
  par::run(8, [](par::Comm& comm) {
    Telemetry tel(full_opts());
    ScopedSession session(tel);
    Tracer& tr = tel.tracer();
    tr.begin_region(comm.rank() % 2 == 0 ? par::Region::kAtmosphere
                                         : par::Region::kOcean);
    {
      FOAM_TRACE_SCOPE("work");
      volatile double sink = 0.0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    }
    tr.end_region();

    const std::vector<double> mine = serialize_trace(tr.trace());
    std::vector<double> lens = {static_cast<double>(mine.size())};
    std::vector<double> all_lens(8);
    comm.allgather(lens.data(), 1, all_lens.data());
    std::vector<int> counts(8);
    for (int r = 0; r < 8; ++r) counts[r] = static_cast<int>(all_lens[r]);
    std::vector<double> gathered;
    comm.gatherv(mine, gathered, counts, 0);
    if (comm.rank() != 0) return;

    std::size_t off = 0;
    std::vector<RankTrace> ranks;
    for (int r = 0; r < 8; ++r) {
      ranks.push_back(deserialize_trace(gathered.data() + off,
                                        static_cast<std::size_t>(counts[r])));
      off += static_cast<std::size_t>(counts[r]);
    }
    for (int r = 0; r < 8; ++r) {
      ASSERT_EQ(ranks[r].spans.size(), 2u) << "rank " << r;
      EXPECT_TRUE(ranks[r].has_nested()) << "rank " << r;
      const par::Region want = r % 2 == 0 ? par::Region::kAtmosphere
                                          : par::Region::kOcean;
      EXPECT_GT(ranks[r].region_total(want), 0.0) << "rank " << r;
      bool has_work = false;
      for (const auto& n : ranks[r].names) has_work |= n == "work";
      EXPECT_TRUE(has_work) << "rank " << r;
    }
    // The merged export covers all 8 ranks.
    const std::string doc = chrome_trace_json(ranks);
    EXPECT_TRUE(json_validate(doc));
    for (int r = 0; r < 8; ++r)
      EXPECT_NE(doc.find("\"rank " + std::to_string(r) + "\""),
                std::string::npos);
  });
}

// ---------------------------------------------------------------------------
// Chrome trace export + JSON validator
// ---------------------------------------------------------------------------

TEST(ChromeTrace, EmitsValidNestedDocument) {
  RankTrace t;
  t.names = {"atmosphere", "legendre \"fold\"\n"};  // needs escaping
  t.spans = {{1, par::Region::kAtmosphere, 1, 0.0010, 0.0020},
             {0, par::Region::kAtmosphere, 0, 0.0, 0.0100}};
  const std::string doc = chrome_trace_json({t});
  std::string err;
  EXPECT_TRUE(json_validate(doc, &err)) << err;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
  // Control characters take the \uXXXX form, quotes a backslash prefix.
  EXPECT_NE(doc.find("legendre \\\"fold\\\"\\u000a"), std::string::npos);
  // Microsecond timestamps: the 10 ms region span has dur 10000.
  EXPECT_NE(doc.find("\"dur\": 10000"), std::string::npos);
}

TEST(JsonValidate, AcceptsValidDocuments) {
  for (const char* ok :
       {"{}", "[]", "null", "true", "-1.5e-3", "\"a\\u00e9b\"",
        R"({"a": [1, 2.5, {"b": "\n"}], "c": false})"}) {
    std::string err;
    EXPECT_TRUE(json_validate(ok, &err)) << ok << ": " << err;
  }
}

TEST(JsonValidate, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{]", "[1] extra", "{'a': 1}",
        "[01]", "\"\\x\"", "\"unterminated", "nul", "+1", "[1 2]",
        "{\"a\" 1}"}) {
    EXPECT_FALSE(json_validate(bad)) << bad;
  }
}

// ---------------------------------------------------------------------------
// Crash-safe trace file writer
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

TEST(ChromeTrace, FileWriterIsAtomicAndMatchesStringExport) {
  RankTrace t;
  t.names = {"atmosphere", "work"};
  t.spans = {{1, par::Region::kAtmosphere, 1, 0.001, 0.002},
             {0, par::Region::kAtmosphere, 0, 0.0, 0.01}};
  const std::string path = testing::TempDir() + "/atomic_trace.json";
  ASSERT_TRUE(write_chrome_trace(path, {t}));
  const std::string doc = slurp(path);
  std::string err;
  EXPECT_TRUE(json_validate(doc, &err)) << err;
  // The streamed file is byte-identical to the string exporter and the
  // temporary is gone after the atomic rename.
  EXPECT_EQ(doc, chrome_trace_json({t}));
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST(ChromeTrace, AbandonedAtomicFileLeavesNothingBehind) {
  const std::string path = testing::TempDir() + "/abandoned.json";
  {
    AtomicJsonFile out(path);
    ASSERT_TRUE(out.ok());
    out.stream() << "{ torn";  // never committed
  }
  EXPECT_FALSE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

// ---------------------------------------------------------------------------
// Profiler leaf word + open-span capture
// ---------------------------------------------------------------------------

TEST(Tracer, PublishesPackedInnermostOpenSpan) {
  Tracer tr(full_opts());
  EXPECT_FALSE(leaf_open(tr.profile_leaf().load()));
  tr.begin_region(par::Region::kOcean);
  {
    const std::uint64_t v = tr.profile_leaf().load();
    ASSERT_TRUE(leaf_open(v));
    EXPECT_EQ(leaf_region(v), par::Region::kOcean);
  }
  tr.begin_span("barotropic");
  {
    const std::uint64_t v = tr.profile_leaf().load();
    ASSERT_TRUE(leaf_open(v));
    EXPECT_EQ(leaf_region(v), par::Region::kOcean);
    EXPECT_EQ(tr.names()[static_cast<std::size_t>(leaf_name_id(v))],
              "barotropic");
  }
  tr.end_span();
  tr.end_region();
  EXPECT_FALSE(leaf_open(tr.profile_leaf().load()));
}

TEST(Tracer, TraceCanIncludeOpenSpans) {
  Tracer tr(full_opts());
  tr.begin_region(par::Region::kAtmosphere);
  tr.begin_span("in_flight");
  const RankTrace closed = tr.trace();
  EXPECT_TRUE(closed.spans.empty());
  const RankTrace live = tr.trace(/*include_open=*/true);
  ASSERT_EQ(live.spans.size(), 2u);
  EXPECT_EQ(live.names[static_cast<std::size_t>(live.spans[1].name_id)],
            "in_flight");
  EXPECT_GE(live.spans[1].t1, live.spans[1].t0);
  const auto open = tr.open_span_names();
  ASSERT_EQ(open.size(), 2u);
  EXPECT_EQ(open[0], "atmosphere");
  EXPECT_EQ(open[1], "in_flight");
  tr.end_span();
  tr.end_region();
}

// ---------------------------------------------------------------------------
// RunObserver: status feed, flight recorder, sampling profiler
// ---------------------------------------------------------------------------

ObservabilityOptions status_opts(const std::string& dir) {
  ObservabilityOptions o;
  o.status = true;
  o.status_interval_seconds = 0.02;
  o.dir = dir;
  return o;
}

TEST(RunObserver, StatusFeedTracksRunLifecycle) {
  const std::string dir = testing::TempDir();
  Telemetry tel(full_opts());
  ScopedSession session(tel);
  {
    ScopedRankObserver obs(status_opts(dir), 0, 1, "1+0 test", 10.0);
    ASSERT_TRUE(static_cast<bool>(obs));
    obs->beat(2.5);
    obs->publish_self();
    // The monitor rewrites status.json on its own cadence; wait for a
    // "running" snapshot that has seen the beat.
    std::string doc;
    for (int i = 0; i < 200; ++i) {
      if (file_exists(obs->status_path())) {
        doc = slurp(obs->status_path());
        if (doc.find("\"running\"") != std::string::npos &&
            doc.find("\"beats\": 1") != std::string::npos)
          break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::string err;
    EXPECT_TRUE(json_validate(doc, &err)) << err << "\n" << doc;
    EXPECT_NE(doc.find("\"state\": \"running\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"run\": \"1+0 test\""), std::string::npos) << doc;
    obs->finish_rank();
    obs->finish_run(10.0);
    doc = slurp(obs->status_path());
    EXPECT_TRUE(json_validate(doc, &err)) << err;
    EXPECT_NE(doc.find("\"state\": \"finished\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"simulated_day\": 10"), std::string::npos) << doc;
  }
}

TEST(RunObserver, FlightRecorderDumpsOnceWithOpenSpans) {
  const std::string dir = testing::TempDir();
  Telemetry tel(full_opts());
  ScopedSession session(tel);
  ObservabilityOptions o;
  o.flight_recorder = true;
  o.status = true;
  o.dir = dir;
  {
    ScopedRankObserver obs(o, 0, 1, "dump test", 1.0);
    ASSERT_TRUE(static_cast<bool>(obs));
    tel.tracer().begin_region(par::Region::kOcean);
    tel.tracer().begin_span("stuck_here");
    obs->beat(0.5);
    EXPECT_TRUE(observe_abort("synthetic failure for the dump test"));
    EXPECT_FALSE(observe_abort("second abort must not re-dump"));
    tel.tracer().end_span();
    tel.tracer().end_region();

    const std::string path = RunObserver::last_postmortem_path();
    ASSERT_FALSE(path.empty());
    const std::string doc = slurp(path);
    std::string err;
    EXPECT_TRUE(json_validate(doc, &err)) << err;
    // The postmortem names the abort reason and the aborting rank's open
    // span, is Perfetto-loadable, and left no temporary behind.
    EXPECT_NE(doc.find("synthetic failure for the dump test"),
              std::string::npos);
    EXPECT_NE(doc.find("stuck_here"), std::string::npos);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_FALSE(file_exists(path + ".tmp"));
    // The sibling counters file validates too.
    std::string cpath = path;
    cpath.replace(cpath.find(".trace.json"), std::string::npos,
                  ".counters.json");
    EXPECT_TRUE(json_validate(slurp(cpath), &err)) << err;
    // The final status snapshot records the abort.
    const std::string status = slurp(obs->status_path());
    EXPECT_TRUE(json_validate(status, &err)) << err;
    EXPECT_NE(status.find("\"state\": \"aborted\""), std::string::npos)
        << status;
  }
}

TEST(RunObserver, ProfilerSamplesInnermostOpenSpan) {
  Telemetry tel(full_opts());
  ScopedSession session(tel);
  ObservabilityOptions o;
  o.profile = true;
  o.profile_interval_seconds = 2e-4;
  {
    ScopedRankObserver obs(o, 0, 1, "profile test", 1.0);
    ASSERT_TRUE(static_cast<bool>(obs));
    tel.tracer().begin_region(par::Region::kOcean);
    // Busy-spin long enough for hundreds of samples to land.
    volatile double sink = 0.0;
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(120);
    while (std::chrono::steady_clock::now() < until) sink = sink + 1.0;
    tel.tracer().end_region();
    obs->publish_self();

    const auto prof = obs->profile_snapshot();
    ASSERT_FALSE(prof.empty());
    std::uint64_t ocean_samples = 0;
    for (const ProfileEntry& e : prof) {
      EXPECT_EQ(e.rank, 0);
      if (e.region == par::Region::kOcean && e.name == "ocean")
        ocean_samples += e.samples;
    }
    EXPECT_GT(ocean_samples, 50u);
    // The measured interval is close to (never much below) the nominal.
    EXPECT_GT(obs->profile_effective_interval(), 1e-4);
    EXPECT_LT(obs->profile_effective_interval(), 1e-2);
  }
}

}  // namespace
}  // namespace foam::telemetry
