#include "base/field.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace foam {
namespace {

TEST(Field2D, ConstructsWithInit) {
  Field2Dd f(4, 3, 2.5);
  EXPECT_EQ(f.nx(), 4);
  EXPECT_EQ(f.ny(), 3);
  EXPECT_EQ(f.size(), 12u);
  EXPECT_DOUBLE_EQ(f(3, 2), 2.5);
}

TEST(Field2D, LayoutIsXFastest) {
  Field2Dd f(4, 3);
  f(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(f.data()[2 * 4 + 1], 7.0);
}

TEST(Field2D, WrapXIsPeriodic) {
  Field2Dd f(4, 2);
  f(0, 1) = 5.0;
  f(3, 1) = 9.0;
  EXPECT_DOUBLE_EQ(f.wrap_x(4, 1), 5.0);
  EXPECT_DOUBLE_EQ(f.wrap_x(-1, 1), 9.0);
  EXPECT_DOUBLE_EQ(f.wrap_x(-5, 1), 9.0);
}

TEST(Field2D, Arithmetic) {
  Field2Dd a(2, 2, 1.0);
  Field2Dd b(2, 2, 3.0);
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 0), 4.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0);
  a *= 5.0;
  EXPECT_DOUBLE_EQ(a(0, 1), 5.0);
}

TEST(Field2D, Reductions) {
  Field2Dd f(2, 2);
  f(0, 0) = -4.0;
  f(1, 0) = 2.0;
  f(0, 1) = 1.0;
  f(1, 1) = 3.0;
  EXPECT_DOUBLE_EQ(f.min(), -4.0);
  EXPECT_DOUBLE_EQ(f.max(), 3.0);
  EXPECT_DOUBLE_EQ(f.sum(), 2.0);
  EXPECT_DOUBLE_EQ(f.mean(), 0.5);
  EXPECT_DOUBLE_EQ(f.max_abs(), 4.0);
}

TEST(Field2D, ShapeMismatchThrows) {
  Field2Dd a(2, 2);
  Field2Dd b(3, 2);
  EXPECT_THROW(a += b, Error);
}

TEST(Field2D, RejectsBadDims) {
  EXPECT_THROW(Field2Dd(0, 3), Error);
  EXPECT_THROW(Field2Dd(3, -1), Error);
}

TEST(Field3D, LayoutAndLevelPointer) {
  Field3Dd f(3, 2, 4);
  f(1, 1, 2) = 11.0;
  EXPECT_DOUBLE_EQ(f.data()[(2 * 2 + 1) * 3 + 1], 11.0);
  EXPECT_DOUBLE_EQ(f.level(2)[1 * 3 + 1], 11.0);
}

TEST(Field3D, WrapX) {
  Field3Dd f(4, 2, 2);
  f(0, 0, 1) = 3.0;
  EXPECT_DOUBLE_EQ(f.wrap_x(4, 0, 1), 3.0);
}

TEST(HasNonFinite, DetectsNanAndInf) {
  Field2Dd f(2, 2, 1.0);
  EXPECT_FALSE(has_non_finite(f));
  f(1, 0) = std::nan("");
  EXPECT_TRUE(has_non_finite(f));
  f(1, 0) = INFINITY;
  EXPECT_TRUE(has_non_finite(f));
}

}  // namespace
}  // namespace foam
