#include "base/config.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"

namespace foam {
namespace {

TEST(Config, ParsesKeyValueLines) {
  const Config cfg = Config::from_string(
      "atm.nlon = 48\n"
      "atm.dt_seconds = 1800\n"
      "physics = ccm3   # upgraded moist physics\n"
      "\n"
      "# full-line comment\n"
      "coupled = true\n");
  EXPECT_EQ(cfg.get_int("atm.nlon"), 48);
  EXPECT_DOUBLE_EQ(cfg.get_double("atm.dt_seconds"), 1800.0);
  EXPECT_EQ(cfg.get_string("physics"), "ccm3");
  EXPECT_TRUE(cfg.get_bool("coupled"));
}

TEST(Config, LastDuplicateWins) {
  const Config cfg = Config::from_string("a = 1\na = 2\n");
  EXPECT_EQ(cfg.get_int("a"), 2);
}

TEST(Config, MissingKeyThrows) {
  const Config cfg = Config::from_string("a = 1\n");
  EXPECT_THROW(cfg.get_int("b"), Error);
}

TEST(Config, DefaultedGetters) {
  const Config cfg = Config::from_string("a = 1\n");
  EXPECT_EQ(cfg.get_int("b", 7), 7);
  EXPECT_EQ(cfg.get_int("a", 7), 1);
  EXPECT_EQ(cfg.get_string("name", "foam"), "foam");
  EXPECT_TRUE(cfg.get_bool("flag", true));
}

TEST(Config, TypeMismatchThrows) {
  const Config cfg = Config::from_string("a = hello\n");
  EXPECT_THROW(cfg.get_int("a"), Error);
  EXPECT_THROW(cfg.get_double("a"), Error);
  EXPECT_THROW(cfg.get_bool("a"), Error);
}

TEST(Config, BoolSpellings) {
  const Config cfg = Config::from_string(
      "a = TRUE\nb = off\nc = 1\nd = No\n");
  EXPECT_TRUE(cfg.get_bool("a"));
  EXPECT_FALSE(cfg.get_bool("b"));
  EXPECT_TRUE(cfg.get_bool("c"));
  EXPECT_FALSE(cfg.get_bool("d"));
}

TEST(Config, BadSyntaxThrows) {
  EXPECT_THROW(Config::from_string("just words\n"), Error);
  EXPECT_THROW(Config::from_string("= value\n"), Error);
}

TEST(Config, MergeOverlays) {
  Config base = Config::from_string("a = 1\nb = 2\n");
  const Config overlay = Config::from_string("b = 3\nc = 4\n");
  base.merge(overlay);
  EXPECT_EQ(base.get_int("a"), 1);
  EXPECT_EQ(base.get_int("b"), 3);
  EXPECT_EQ(base.get_int("c"), 4);
}

TEST(Config, SetRoundTrips) {
  Config cfg;
  cfg.set("pi", 3.14159);
  cfg.set("n", 42);
  cfg.set("flag", false);
  cfg.set("name", std::string("ocean"));
  EXPECT_DOUBLE_EQ(cfg.get_double("pi"), 3.14159);
  EXPECT_EQ(cfg.get_int("n"), 42);
  EXPECT_FALSE(cfg.get_bool("flag"));
  EXPECT_EQ(cfg.get_string("name"), "ocean");
}

TEST(Config, KeysSorted) {
  const Config cfg = Config::from_string("zz = 1\naa = 2\nmm = 3\n");
  const auto keys = cfg.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "aa");
  EXPECT_EQ(keys[1], "mm");
  EXPECT_EQ(keys[2], "zz");
}

}  // namespace
}  // namespace foam
