#include "base/logging.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace foam {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, MacrosCompileAndStream) {
  set_log_level(LogLevel::kError);  // silence output during the test
  FOAM_LOG_DEBUG << "debug " << 1;
  FOAM_LOG_INFO << "info " << 2.5;
  FOAM_LOG_WARN << "warn " << "text";
  SUCCEED();
}

TEST_F(LoggingTest, ThreadSafeUnderConcurrentLogging) {
  set_log_level(LogLevel::kError);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([t]() {
      for (int i = 0; i < 100; ++i) FOAM_LOG_WARN << "t" << t << " i" << i;
    });
  for (auto& th : threads) th.join();
  SUCCEED();  // no crash/data race (run under TSan to verify deeply)
}

}  // namespace
}  // namespace foam
