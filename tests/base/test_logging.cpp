#include "base/logging.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace foam {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, MacrosCompileAndStream) {
  set_log_level(LogLevel::kError);  // silence output during the test
  FOAM_LOG_DEBUG << "debug " << 1;
  FOAM_LOG_INFO << "info " << 2.5;
  FOAM_LOG_WARN << "warn " << "text";
  SUCCEED();
}

TEST_F(LoggingTest, ParseLogLevelNamesAndDigits) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::kError), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kDebug), LogLevel::kError);
  EXPECT_EQ(parse_log_level("0", LogLevel::kError), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("3", LogLevel::kDebug), LogLevel::kError);
}

TEST_F(LoggingTest, ParseLogLevelFallsBackOnJunk) {
  EXPECT_EQ(parse_log_level(nullptr, LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("loud", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("7", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("-1", LogLevel::kInfo), LogLevel::kInfo);
}

TEST_F(LoggingTest, LogRankIsPerThread) {
  set_log_rank(3);
  EXPECT_EQ(log_rank(), 3);
  int other = 0;
  std::thread t([&]() { other = log_rank(); });
  t.join();
  EXPECT_EQ(other, -1);  // fresh thread has no rank tag
  set_log_rank(-1);
  EXPECT_EQ(log_rank(), -1);
}

TEST_F(LoggingTest, ThreadSafeUnderConcurrentLogging) {
  set_log_level(LogLevel::kError);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([t]() {
      for (int i = 0; i < 100; ++i) FOAM_LOG_WARN << "t" << t << " i" << i;
    });
  for (auto& th : threads) th.join();
  SUCCEED();  // no crash/data race (run under TSan to verify deeply)
}

}  // namespace
}  // namespace foam
