#include "base/calendar.hpp"

#include <gtest/gtest.h>

namespace foam {
namespace {

TEST(ModelTime, StartsAtZero) {
  ModelTime t;
  EXPECT_EQ(t.seconds(), 0);
  EXPECT_EQ(t.year(), 0);
  EXPECT_EQ(t.month(), 0);
  EXPECT_EQ(t.day_of_month(), 0);
  EXPECT_EQ(t.second_of_day(), 0);
}

TEST(ModelTime, FromYmdRoundTrips) {
  const ModelTime t = ModelTime::from_ymd(3, 6, 14, 6 * 3600.0);
  EXPECT_EQ(t.year(), 3);
  EXPECT_EQ(t.month(), 6);
  EXPECT_EQ(t.day_of_month(), 14);
  EXPECT_EQ(t.second_of_day(), 6 * 3600);
}

TEST(ModelTime, DayOfYearAccumulatesMonths) {
  // March 1 = 31 + 28 days into the year.
  const ModelTime t = ModelTime::from_ymd(0, 2, 0);
  EXPECT_EQ(t.day_of_year(), 59);
}

TEST(ModelTime, YearBoundary) {
  ModelTime t = ModelTime::from_ymd(0, 11, 30, 86399.0);
  EXPECT_EQ(t.year(), 0);
  t.advance(1);
  EXPECT_EQ(t.year(), 1);
  EXPECT_EQ(t.day_of_year(), 0);
  EXPECT_EQ(t.month(), 0);
}

TEST(ModelTime, NoLeapYears) {
  // Feb 29 does not exist: advancing from Feb 28 lands on Mar 1 every year.
  for (int year : {0, 3, 4, 100}) {
    ModelTime t = ModelTime::from_ymd(year, 1, 27);
    t.advance(86400);
    EXPECT_EQ(t.month(), 2) << "year " << year;
    EXPECT_EQ(t.day_of_month(), 0) << "year " << year;
  }
}

TEST(ModelTime, ToStringFormat) {
  const ModelTime t = ModelTime::from_ymd(12, 0, 1, 3661.0);
  EXPECT_EQ(t.to_string(), "Y0012-01-02 01:01:01");
}

TEST(ModelTime, CenturyRunDoesNotOverflow) {
  ModelTime t;
  t.advance(500LL * ModelTime::kSecondsPerYear);
  EXPECT_EQ(t.year(), 500);
  EXPECT_NEAR(t.years(), 500.0, 1e-9);
}

TEST(ModelTime, RejectsInvalidConstruction) {
  EXPECT_THROW(ModelTime(-1), Error);
  EXPECT_THROW(ModelTime::from_ymd(0, 12, 0), Error);
  EXPECT_THROW(ModelTime::from_ymd(0, 1, 28), Error);
}

TEST(SteppedClock, CountsExactSteps) {
  SteppedClock clock(ModelTime(0), 1800);
  for (int s = 0; s < 48; ++s) clock.tick();
  EXPECT_EQ(clock.step_count(), 48);
  EXPECT_EQ(clock.now().seconds(), 86400);
}

TEST(SteppedClock, AlignmentMatchesCouplingSchedule) {
  // The FOAM schedule: atm dt=30 min; ocean every 6 h; radiation every 12 h.
  SteppedClock clock(ModelTime(0), 1800);
  int ocean_calls = 0;
  int radiation_calls = 0;
  for (int s = 0; s < 48; ++s) {
    if (clock.aligned(6 * 3600)) ++ocean_calls;
    if (clock.aligned(12 * 3600)) ++radiation_calls;
    clock.tick();
  }
  EXPECT_EQ(ocean_calls, 4);
  EXPECT_EQ(radiation_calls, 2);
}

TEST(SteppedClock, NoFloatingPointDrift) {
  SteppedClock clock(ModelTime(0), 1800);
  for (int s = 0; s < 365 * 48; ++s) clock.tick();
  EXPECT_EQ(clock.now().seconds(), ModelTime::kSecondsPerYear);
  EXPECT_TRUE(clock.aligned(86400));
}

}  // namespace
}  // namespace foam
