#include "base/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace foam {
namespace {

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(FOAM_REQUIRE(1 + 1 == 2, "arithmetic"));
}

TEST(Error, RequireThrowsWithContext) {
  const int n = -3;
  try {
    FOAM_REQUIRE(n > 0, "n=" << n << " must be positive");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("n > 0"), std::string::npos);
    EXPECT_NE(what.find("n=-3"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, IsARuntimeError) {
  try {
    FOAM_REQUIRE(false, "boom");
  } catch (const std::runtime_error&) {
    SUCCEED();
    return;
  }
  FAIL();
}

TEST(Error, StreamedMessageEvaluatedLazily) {
  // The message expression must not be evaluated when the condition holds.
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 7;
  };
  FOAM_REQUIRE(true, "value " << count());
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace foam
