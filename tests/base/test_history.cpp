#include "base/history.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "base/error.hpp"

namespace foam {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(History, RoundTripsFieldsScalarsAndSeries) {
  const std::string path = temp_path("hist1.foam");
  Field2Dd sst(6, 4);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 6; ++i) sst(i, j) = i + 10.0 * j;
  Field3Dd temp(3, 2, 5, 1.5);
  {
    HistoryWriter w(path);
    w.write("sst", sst);
    w.write("temp", temp);
    w.write_scalar("speedup", 6000.0);
    w.write_series("nino", {1.0, -0.5, 2.25});
  }
  HistoryReader r(path);
  ASSERT_EQ(r.records().size(), 4u);
  const auto& rec = r.find("sst");
  ASSERT_EQ(rec.dims.size(), 2u);
  EXPECT_EQ(rec.dims[0], 6);
  EXPECT_EQ(rec.dims[1], 4);
  EXPECT_DOUBLE_EQ(rec.data[2 * 6 + 3], 3.0 + 20.0);
  EXPECT_EQ(r.find("temp").dims.size(), 3u);
  EXPECT_DOUBLE_EQ(r.find("speedup").data[0], 6000.0);
  const auto& series = r.find("nino");
  ASSERT_EQ(series.data.size(), 3u);
  EXPECT_DOUBLE_EQ(series.data[2], 2.25);
}

TEST(History, HasAndMissing) {
  const std::string path = temp_path("hist2.foam");
  {
    HistoryWriter w(path);
    w.write_scalar("x", 1.0);
  }
  HistoryReader r(path);
  EXPECT_TRUE(r.has("x"));
  EXPECT_FALSE(r.has("y"));
  EXPECT_THROW(r.find("y"), Error);
}

TEST(History, RepeatedNamesKeepOrder) {
  const std::string path = temp_path("hist3.foam");
  {
    HistoryWriter w(path);
    w.write_scalar("t", 1.0);
    w.write_scalar("t", 2.0);
  }
  HistoryReader r(path);
  ASSERT_EQ(r.records().size(), 2u);
  // find returns the first record; both are present in file order.
  EXPECT_DOUBLE_EQ(r.find("t").data[0], 1.0);
  EXPECT_DOUBLE_EQ(r.records()[1].data[0], 2.0);
}

TEST(History, RejectsNonHistoryFile) {
  const std::string path = temp_path("not_hist.bin");
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage garbage garbage", f);
  std::fclose(f);
  EXPECT_THROW(HistoryReader r(path), Error);
}

TEST(History, MissingFileThrows) {
  EXPECT_THROW(HistoryReader r(temp_path("does_not_exist.foam")), Error);
}

}  // namespace
}  // namespace foam
