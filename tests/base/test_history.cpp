#include "base/history.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "base/error.hpp"

namespace foam {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(History, RoundTripsFieldsScalarsAndSeries) {
  const std::string path = temp_path("hist1.foam");
  Field2Dd sst(6, 4);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 6; ++i) sst(i, j) = i + 10.0 * j;
  Field3Dd temp(3, 2, 5, 1.5);
  {
    HistoryWriter w(path);
    w.write("sst", sst);
    w.write("temp", temp);
    w.write_scalar("speedup", 6000.0);
    w.write_series("nino", {1.0, -0.5, 2.25});
  }
  HistoryReader r(path);
  ASSERT_EQ(r.records().size(), 4u);
  const auto& rec = r.find("sst");
  ASSERT_EQ(rec.dims.size(), 2u);
  EXPECT_EQ(rec.dims[0], 6);
  EXPECT_EQ(rec.dims[1], 4);
  EXPECT_DOUBLE_EQ(rec.data[2 * 6 + 3], 3.0 + 20.0);
  EXPECT_EQ(r.find("temp").dims.size(), 3u);
  EXPECT_DOUBLE_EQ(r.find("speedup").data[0], 6000.0);
  const auto& series = r.find("nino");
  ASSERT_EQ(series.data.size(), 3u);
  EXPECT_DOUBLE_EQ(series.data[2], 2.25);
}

TEST(History, HasAndMissing) {
  const std::string path = temp_path("hist2.foam");
  {
    HistoryWriter w(path);
    w.write_scalar("x", 1.0);
  }
  HistoryReader r(path);
  EXPECT_TRUE(r.has("x"));
  EXPECT_FALSE(r.has("y"));
  EXPECT_THROW(r.find("y"), Error);
}

TEST(History, RepeatedNamesKeepOrder) {
  const std::string path = temp_path("hist3.foam");
  {
    HistoryWriter w(path);
    w.write_scalar("t", 1.0);
    w.write_scalar("t", 2.0);
  }
  HistoryReader r(path);
  ASSERT_EQ(r.records().size(), 2u);
  // find returns the first record; both are present in file order.
  EXPECT_DOUBLE_EQ(r.find("t").data[0], 1.0);
  EXPECT_DOUBLE_EQ(r.records()[1].data[0], 2.0);
}

TEST(History, RejectsNonHistoryFile) {
  const std::string path = temp_path("not_hist.bin");
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage garbage garbage", f);
  std::fclose(f);
  EXPECT_THROW(HistoryReader r(path), Error);
}

TEST(History, MissingFileThrows) {
  EXPECT_THROW(HistoryReader r(temp_path("does_not_exist.foam")), Error);
}

TEST(History, EmptySeriesRoundTrips) {
  const std::string path = temp_path("hist_empty.foam");
  {
    HistoryWriter w(path);
    w.write_series("empty", {});
    w.write_scalar("after", 7.0);
  }
  HistoryReader r(path);
  const auto& rec = r.find("empty");
  ASSERT_EQ(rec.dims.size(), 1u);
  EXPECT_EQ(rec.dims[0], 0);
  EXPECT_TRUE(rec.data.empty());
  EXPECT_DOUBLE_EQ(r.find("after").data[0], 7.0);
}

TEST(History, LongRecordNameRejectedAtWriteTime) {
  HistoryWriter w(temp_path("hist_longname.foam"));
  const std::string name(5000, 'n');
  EXPECT_THROW(w.write_scalar(name, 1.0), Error);
  // The longest legal name still round-trips.
  const std::string edge(4095, 'e');
  w.write_scalar(edge, 2.0);
}

TEST(History, FileAppearsOnlyAfterClose) {
  const std::string path = temp_path("hist_atomic.foam");
  std::remove(path.c_str());
  {
    HistoryWriter w(path);
    w.write_scalar("x", 1.0);
    // Still streaming into path.tmp: the final path must not exist yet, so
    // a crash here can never leave a partial file where a reader looks.
    FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_EQ(f, nullptr);
    w.close();
    f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  // The temporary is gone after the rename.
  FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  EXPECT_DOUBLE_EQ(HistoryReader(path).find("x").data[0], 1.0);
}

TEST(History, ExplicitCloseThenDestructorIsClean) {
  const std::string path = temp_path("hist_double_close.foam");
  HistoryWriter w(path);
  w.write_scalar("x", 3.0);
  w.close();
  EXPECT_THROW(w.write_scalar("y", 4.0), Error);  // closed writer refuses
}

/// Drop the last \p n bytes of \p path in place.
void truncate_tail(const std::string& path, long n) {
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::vector<char> bytes(static_cast<std::size_t>(len));
  std::fseek(f, 0, SEEK_SET);
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, static_cast<std::size_t>(len - n), f);
  std::fclose(f);
}

TEST(History, TruncatedFileRejected) {
  const std::string path = temp_path("hist_trunc.foam");
  {
    HistoryWriter w(path);
    w.write_series("series", {1.0, 2.0, 3.0});
  }
  // Losing the tail removes the footer (and possibly record bytes): the
  // reader must refuse rather than silently load partial state.
  truncate_tail(path, 24);
  EXPECT_THROW(HistoryReader r(path), Error);
}

TEST(History, MissingFooterRejected) {
  const std::string path = temp_path("hist_nofooter.foam");
  {
    HistoryWriter w(path);
    w.write_scalar("x", 1.0);
  }
  // Exactly the footer (u32 marker + u64 count + u64 hash = 20 bytes):
  // every record intact, but no proof the writer finished.
  truncate_tail(path, 20);
  EXPECT_THROW(HistoryReader r(path), Error);
}

TEST(History, GarbageTailRejected) {
  const std::string path = temp_path("hist_tail.foam");
  {
    HistoryWriter w(path);
    w.write_scalar("x", 1.0);
  }
  FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("junk", f);
  std::fclose(f);
  EXPECT_THROW(HistoryReader r(path), Error);
}

TEST(History, CorruptedRecordByteRejected) {
  const std::string path = temp_path("hist_flip.foam");
  {
    HistoryWriter w(path);
    w.write_series("series", {1.0, 2.0, 3.0});
  }
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  // Flip one payload byte mid-file; the footer checksum must catch it.
  std::fseek(f, 8 + 4 + 6 + 4 + 8 + 3, SEEK_SET);
  std::fputc(0x5A, f);
  std::fclose(f);
  EXPECT_THROW(HistoryReader r(path), Error);
}

}  // namespace
}  // namespace foam
