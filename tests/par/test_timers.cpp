#include "par/timers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

namespace foam::par {
namespace {

void spin_for_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(ActivityRecorder, RecordsSequentialRegions) {
  ActivityRecorder rec;
  rec.begin(Region::kAtmosphere);
  spin_for_ms(5);
  rec.begin(Region::kCoupler);  // implicitly closes atmosphere
  spin_for_ms(5);
  rec.end();
  ASSERT_EQ(rec.segments().size(), 2u);
  EXPECT_EQ(rec.segments()[0].region, Region::kAtmosphere);
  EXPECT_EQ(rec.segments()[1].region, Region::kCoupler);
  EXPECT_GT(rec.total(Region::kAtmosphere), 0.0);
  EXPECT_GT(rec.total(Region::kCoupler), 0.0);
  EXPECT_DOUBLE_EQ(rec.total(Region::kOcean), 0.0);
}

TEST(ActivityRecorder, SegmentsAreContiguousAndOrdered) {
  ActivityRecorder rec;
  rec.begin(Region::kAtmosphere);
  rec.begin(Region::kIdle);
  rec.begin(Region::kOcean);
  rec.end();
  const auto& segs = rec.segments();
  ASSERT_EQ(segs.size(), 3u);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_LE(segs[i].t0, segs[i].t1);
    if (i > 0) {
      EXPECT_DOUBLE_EQ(segs[i - 1].t1, segs[i].t0);
    }
  }
}

TEST(ActivityRecorder, EndWithoutBeginIsNoop) {
  ActivityRecorder rec;
  rec.end();
  EXPECT_TRUE(rec.segments().empty());
}

TEST(ActivityRecorder, ResetClears) {
  ActivityRecorder rec;
  rec.begin(Region::kOcean);
  rec.end();
  rec.reset();
  EXPECT_TRUE(rec.segments().empty());
  EXPECT_DOUBLE_EQ(rec.total_recorded(), 0.0);
}

TEST(ActivityRecorder, SerializeRoundTrips) {
  ActivityRecorder rec;
  rec.begin(Region::kAtmosphere);
  rec.begin(Region::kCoupler);
  rec.begin(Region::kIdle);
  rec.end();
  const auto buf = rec.serialize();
  ASSERT_EQ(buf.size(), 9u);
  const auto segs = ActivityRecorder::deserialize(buf.data(), buf.size());
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].region, Region::kAtmosphere);
  EXPECT_EQ(segs[1].region, Region::kCoupler);
  EXPECT_EQ(segs[2].region, Region::kIdle);
  EXPECT_DOUBLE_EQ(segs[1].t0, rec.segments()[1].t0);
}

TEST(ActivityRecorder, DeserializeRejectsBadLength) {
  const double buf[] = {0.0, 0.0, 1.0, 2.0};  // 4 doubles: not a multiple of 3
  EXPECT_THROW(ActivityRecorder::deserialize(buf, 4), foam::Error);
}

TEST(ActivityRecorder, DeserializeRejectsBadRegion) {
  {
    const double buf[] = {7.5, 0.0, 1.0};  // non-integral region code
    EXPECT_THROW(ActivityRecorder::deserialize(buf, 3), foam::Error);
  }
  {
    const double buf[] = {-1.0, 0.0, 1.0};
    EXPECT_THROW(ActivityRecorder::deserialize(buf, 3), foam::Error);
  }
  {
    const double buf[] = {99.0, 0.0, 1.0};  // out of [0, kRegionCount)
    EXPECT_THROW(ActivityRecorder::deserialize(buf, 3), foam::Error);
  }
}

TEST(ActivityRecorder, DeserializeRejectsBadTimes) {
  {
    const double buf[] = {0.0, 2.0, 1.0};  // t1 < t0
    EXPECT_THROW(ActivityRecorder::deserialize(buf, 3), foam::Error);
  }
  {
    const double nan = std::nan("");
    const double buf[] = {0.0, nan, 1.0};
    EXPECT_THROW(ActivityRecorder::deserialize(buf, 3), foam::Error);
  }
}

TEST(ActivityRecorder, DeserializeAcceptsEmpty) {
  EXPECT_TRUE(ActivityRecorder::deserialize(nullptr, 0).empty());
}

TEST(ScopedRegion, BeginsAndEnds) {
  ActivityRecorder rec;
  {
    ScopedRegion s(rec, Region::kOcean);
    spin_for_ms(2);
  }
  ASSERT_EQ(rec.segments().size(), 1u);
  EXPECT_EQ(rec.segments()[0].region, Region::kOcean);
  EXPECT_GT(rec.total(Region::kOcean), 0.0);
}

TEST(RegionName, CoversAll) {
  EXPECT_STREQ(region_name(Region::kAtmosphere), "atmosphere");
  EXPECT_STREQ(region_name(Region::kCoupler), "coupler");
  EXPECT_STREQ(region_name(Region::kOcean), "ocean");
  EXPECT_STREQ(region_name(Region::kIdle), "idle");
  EXPECT_STREQ(region_name(Region::kOther), "other");
  EXPECT_STREQ(region_name(Region::kCommWait), "comm-wait");
  // kRegionCount must cover every enumerator (benches size arrays with it).
  EXPECT_EQ(static_cast<int>(Region::kCommWait) + 1, kRegionCount);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  spin_for_ms(10);
  const double t = sw.seconds();
  EXPECT_GE(t, 0.005);
  sw.restart();
  EXPECT_LT(sw.seconds(), t);
}

}  // namespace
}  // namespace foam::par
