#include "par/decomp.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "base/error.hpp"

namespace foam::par {
namespace {

TEST(BlockRange, CoversAllItemsExactlyOnce) {
  for (int n : {1, 7, 40, 128}) {
    for (int p : {1, 2, 3, 8, 16}) {
      std::vector<int> hits(n, 0);
      for (int r = 0; r < p; ++r) {
        const Range rg = block_range(n, p, r);
        for (int i = rg.lo; i < rg.hi; ++i) ++hits[i];
      }
      for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "n=" << n << " p=" << p << " i=" << i;
    }
  }
}

TEST(BlockRange, BalancedWithinOne) {
  const int n = 40, p = 7;
  int lo = n, hi = 0;
  for (int r = 0; r < p; ++r) {
    const int c = block_range(n, p, r).count();
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(BlockRange, MorePanksThanItems) {
  // With 3 items on 5 ranks, two ranks get nothing.
  int empty = 0;
  for (int r = 0; r < 5; ++r)
    if (block_range(3, 5, r).count() == 0) ++empty;
  EXPECT_EQ(empty, 2);
}

TEST(BlockOwner, MatchesRanges) {
  const int n = 29, p = 4;
  for (int i = 0; i < n; ++i) {
    const int r = block_owner(n, p, i);
    EXPECT_TRUE(block_range(n, p, r).contains(i));
  }
}

TEST(BlockCounts, SumsToN) {
  const auto counts = block_counts(40, 16);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 40);
}

TEST(PairedLatitudes, EveryLatOwnedOnce) {
  const int ny = 40;
  for (int p : {1, 2, 4, 5, 10, 20}) {
    const auto owned = paired_latitudes(ny, p);
    std::set<int> seen;
    for (const auto& lats : owned)
      for (const int j : lats) EXPECT_TRUE(seen.insert(j).second);
    EXPECT_EQ(static_cast<int>(seen.size()), ny);
  }
}

TEST(PairedLatitudes, MirrorPairsStayTogether) {
  const int ny = 40;
  const auto owned = paired_latitudes(ny, 4);
  for (const auto& lats : owned) {
    const std::set<int> mine(lats.begin(), lats.end());
    for (const int j : lats)
      EXPECT_TRUE(mine.count(ny - 1 - j))
          << "lat " << j << " without its mirror";
  }
}

TEST(PairedLatitudes, BalancedWithinOnePair) {
  // The paper's production counts: 8, 16 and 32 atmosphere ranks on the
  // 40-latitude R15 grid.
  for (int p : {8, 16, 3, 7}) {
    const auto owned = paired_latitudes(40, p);
    std::size_t lo = 40, hi = 0;
    for (const auto& lats : owned) {
      lo = std::min(lo, lats.size());
      hi = std::max(hi, lats.size());
    }
    EXPECT_LE(hi - lo, 2u) << "p=" << p;  // one pair = two latitudes
  }
}

TEST(PairedLatitudes, RejectsBadInputs) {
  EXPECT_THROW(paired_latitudes(39, 1), Error);   // odd nlat
  EXPECT_THROW(paired_latitudes(40, 21), Error);  // more ranks than pairs
  EXPECT_THROW(paired_latitudes(40, 0), Error);
}

TEST(Decomp2D, CoordinateRoundTrip) {
  const Decomp2D d(48, 40, 3, 4);
  EXPECT_EQ(d.size(), 12);
  for (int r = 0; r < d.size(); ++r) {
    const int pi = d.pi_of(r);
    const int pj = d.pj_of(r);
    EXPECT_GE(pi, 0);
    EXPECT_LT(pi, 3);
    EXPECT_GE(pj, 0);
    EXPECT_LT(pj, 4);
    EXPECT_EQ(d.rank_of(pi, pj), r);
  }
  // x-major numbering: rank 1 is one step east of rank 0.
  EXPECT_EQ(d.pi_of(1), 1);
  EXPECT_EQ(d.pj_of(1), 0);
  EXPECT_EQ(d.pi_of(3), 0);
  EXPECT_EQ(d.pj_of(3), 1);
}

TEST(Decomp2D, OwnedBoxesTileTheDomain) {
  const Decomp2D d(37, 29, 4, 3);
  std::vector<int> hits(37 * 29, 0);
  for (int r = 0; r < d.size(); ++r) {
    const Range xr = d.x_range_of_rank(r);
    const Range yr = d.y_range_of_rank(r);
    for (int j = yr.lo; j < yr.hi; ++j)
      for (int i = xr.lo; i < xr.hi; ++i) ++hits[j * 37 + i];
  }
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Decomp2D, HaloNeighborsAtEdges) {
  const Decomp2D d(48, 48, 3, 2);
  // Interior-ish rank 1 = (1, 0): periodic x, wall to the south.
  EXPECT_EQ(d.west_of(1), 0);
  EXPECT_EQ(d.east_of(1), 2);
  EXPECT_EQ(d.south_of(1), -1);
  EXPECT_EQ(d.north_of(1), 4);
  // Corner rank 0 = (0, 0): x wraps around the dateline.
  EXPECT_EQ(d.west_of(0), 2);
  EXPECT_EQ(d.east_of(0), 1);
  // Top row rank 5 = (2, 1): wall to the north.
  EXPECT_EQ(d.north_of(5), -1);
  EXPECT_EQ(d.south_of(5), 2);
}

TEST(Decomp2D, SingleColumnHasNoXExchange) {
  const Decomp2D d(48, 48, 1, 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(d.west_of(r), -1);
    EXPECT_EQ(d.east_of(r), -1);
  }
}

TEST(Decomp2D, DegenerateLayoutsMatchRowDecomposition) {
  // 1 x N must reproduce the historic row decomposition rank-for-rank.
  const int ny = 41, n = 5;
  const Decomp2D rows(48, ny, 1, n);
  for (int r = 0; r < n; ++r) {
    const Range want = block_range(ny, n, r);
    const Range got = rows.y_range_of_rank(r);
    EXPECT_EQ(got.lo, want.lo);
    EXPECT_EQ(got.hi, want.hi);
    EXPECT_EQ(rows.x_range_of_rank(r).lo, 0);
    EXPECT_EQ(rows.x_range_of_rank(r).hi, 48);
  }
  // N x 1 splits columns with the same block formula.
  const Decomp2D cols(48, ny, n, 1);
  for (int r = 0; r < n; ++r) {
    const Range want = block_range(48, n, r);
    EXPECT_EQ(cols.x_range_of_rank(r).lo, want.lo);
    EXPECT_EQ(cols.x_range_of_rank(r).hi, want.hi);
    EXPECT_EQ(cols.y_range_of_rank(r).count(), ny);
  }
}

TEST(Decomp2D, RejectsBadInputs) {
  EXPECT_THROW(Decomp2D(48, 48, 0, 1), Error);
  EXPECT_THROW(Decomp2D(48, 48, 49, 1), Error);   // px > nx
  EXPECT_THROW(Decomp2D(48, 48, 1, 49), Error);   // py > ny
  const Decomp2D d(48, 48, 2, 2);
  EXPECT_THROW(d.pi_of(4), Error);
  EXPECT_THROW(d.rank_of(2, 0), Error);
}

}  // namespace
}  // namespace foam::par
