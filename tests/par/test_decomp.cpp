#include "par/decomp.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "base/error.hpp"

namespace foam::par {
namespace {

TEST(BlockRange, CoversAllItemsExactlyOnce) {
  for (int n : {1, 7, 40, 128}) {
    for (int p : {1, 2, 3, 8, 16}) {
      std::vector<int> hits(n, 0);
      for (int r = 0; r < p; ++r) {
        const Range rg = block_range(n, p, r);
        for (int i = rg.lo; i < rg.hi; ++i) ++hits[i];
      }
      for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "n=" << n << " p=" << p << " i=" << i;
    }
  }
}

TEST(BlockRange, BalancedWithinOne) {
  const int n = 40, p = 7;
  int lo = n, hi = 0;
  for (int r = 0; r < p; ++r) {
    const int c = block_range(n, p, r).count();
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(BlockRange, MorePanksThanItems) {
  // With 3 items on 5 ranks, two ranks get nothing.
  int empty = 0;
  for (int r = 0; r < 5; ++r)
    if (block_range(3, 5, r).count() == 0) ++empty;
  EXPECT_EQ(empty, 2);
}

TEST(BlockOwner, MatchesRanges) {
  const int n = 29, p = 4;
  for (int i = 0; i < n; ++i) {
    const int r = block_owner(n, p, i);
    EXPECT_TRUE(block_range(n, p, r).contains(i));
  }
}

TEST(BlockCounts, SumsToN) {
  const auto counts = block_counts(40, 16);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 40);
}

TEST(PairedLatitudes, EveryLatOwnedOnce) {
  const int ny = 40;
  for (int p : {1, 2, 4, 5, 10, 20}) {
    const auto owned = paired_latitudes(ny, p);
    std::set<int> seen;
    for (const auto& lats : owned)
      for (const int j : lats) EXPECT_TRUE(seen.insert(j).second);
    EXPECT_EQ(static_cast<int>(seen.size()), ny);
  }
}

TEST(PairedLatitudes, MirrorPairsStayTogether) {
  const int ny = 40;
  const auto owned = paired_latitudes(ny, 4);
  for (const auto& lats : owned) {
    const std::set<int> mine(lats.begin(), lats.end());
    for (const int j : lats)
      EXPECT_TRUE(mine.count(ny - 1 - j))
          << "lat " << j << " without its mirror";
  }
}

TEST(PairedLatitudes, BalancedWithinOnePair) {
  // The paper's production counts: 8, 16 and 32 atmosphere ranks on the
  // 40-latitude R15 grid.
  for (int p : {8, 16, 3, 7}) {
    const auto owned = paired_latitudes(40, p);
    std::size_t lo = 40, hi = 0;
    for (const auto& lats : owned) {
      lo = std::min(lo, lats.size());
      hi = std::max(hi, lats.size());
    }
    EXPECT_LE(hi - lo, 2u) << "p=" << p;  // one pair = two latitudes
  }
}

TEST(PairedLatitudes, RejectsBadInputs) {
  EXPECT_THROW(paired_latitudes(39, 1), Error);   // odd nlat
  EXPECT_THROW(paired_latitudes(40, 21), Error);  // more ranks than pairs
  EXPECT_THROW(paired_latitudes(40, 0), Error);
}

}  // namespace
}  // namespace foam::par
