/// Deliberately-buggy fixtures proving each par-verify detector fires with
/// a diagnostic naming the ranks and (comm, src, tag) involved — plus
/// clean-run negatives showing the detectors stay quiet on correct code.
///
/// Note on the "send/send deadlock" fixture: foam::par sends are buffered
/// (MPI_Bsend semantics — they always complete locally), so the classic
/// eager-limit send/send deadlock cannot be expressed; its reachable
/// analogue here is the head-to-head recv/recv cycle, which exercises the
/// same wait-for-graph machinery.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "par/comm.hpp"

namespace foam::par {
namespace {

CommVerifyOptions quiet(VerifyMode mode, double timeout = 10.0) {
  CommVerifyOptions o;
  o.mode = mode;
  o.stall_timeout_seconds = timeout;
  o.log_findings = false;
  return o;
}

/// Runs \p fn expecting a foam::Error whose message contains every one of
/// \p needles; returns the message for further checks.
template <typename Fn>
std::string expect_run_error(int nranks, Fn fn,
                             const std::vector<std::string>& needles) {
  std::string msg;
  try {
    run(nranks, fn);
    ADD_FAILURE() << "run() was expected to throw";
  } catch (const Error& e) {
    msg = e.what();
  }
  for (const std::string& n : needles)
    EXPECT_NE(msg.find(n), std::string::npos)
        << "diagnostic missing \"" << n << "\": " << msg;
  return msg;
}

// ---------------------------------------------------------------------------
// Deadlock detector
// ---------------------------------------------------------------------------

TEST(ParVerify, RecvRecvDeadlockDetectedWithCycleDiagnostic) {
  CommVerifyOptions o = quiet(VerifyMode::kAudit, /*timeout=*/0.5);
  o.log_findings = true;  // the one fixture whose diagnostic we also print
  expect_run_error(
      2,
      [o](Comm& comm) {
        comm.set_verify(o);
        // Head-to-head blocking receives: each rank waits for a message
        // the other will only send after its own receive returns.
        double v = 0.0;
        comm.recv(1 - comm.rank(), /*tag=*/3, v);
        comm.send(1 - comm.rank(), /*tag=*/3, v);
      },
      {"deadlock detected", "rank 0", "rank 1", "(comm 0, src", "tag 3",
       "blocked in recv"});
}

TEST(ParVerify, WildcardWaitDeadlockDetected) {
  // Wildcard receives contribute wait-for edges to every possible sender;
  // with every rank blocked on kAnySource the set is closed and proven.
  expect_run_error(
      3,
      [](Comm& comm) {
        comm.set_verify(quiet(VerifyMode::kStrict, /*timeout=*/0.5));
        double v = 0.0;
        comm.recv(kAnySource, kAnyTag, v);
      },
      {"deadlock detected", "src any", "tag any"});
}

// ---------------------------------------------------------------------------
// Message audit (orphaned sends, abandoned requests, quiescence)
// ---------------------------------------------------------------------------

TEST(ParVerify, OrphanedIsendFoundOnceByQuiescentAudit) {
  run(2, [](Comm& comm) {
    comm.set_verify(quiet(VerifyMode::kAudit));
    if (comm.rank() == 0) {
      const double v = 1.5;
      Request s = comm.isend(1, /*tag=*/5, v);
      comm.wait(s);
    }
    // Rank 1 never receives: the audit on rank 1 reports the orphan and
    // the allreduced total reaches every rank.
    EXPECT_EQ(comm.verify_quiescent(), 1u);
    // Exactly-once: a second audit finds nothing new.
    EXPECT_EQ(comm.verify_quiescent(), 0u);
    const auto& v = comm.verifier();
    EXPECT_EQ(v.finding_count(verify::FindingKind::kUnmatchedSend), 1u);
    if (comm.rank() == 1) {
      bool described = false;
      for (const verify::Finding& f : v.findings())
        if (f.kind == verify::FindingKind::kUnmatchedSend)
          described = f.detail.find("from rank 0") != std::string::npos &&
                      f.detail.find("tag 5") != std::string::npos;
      EXPECT_TRUE(described);
    }
  });
}

TEST(ParVerify, StrictQuiescentThrowsOnOrphan) {
  expect_run_error(
      2,
      [](Comm& comm) {
        comm.set_verify(quiet(VerifyMode::kStrict));
        if (comm.rank() == 0) {
          const double v = 2.5;
          Request s = comm.isend(1, /*tag=*/6, v);
          comm.wait(s);
        }
        comm.verify_quiescent();
      },
      {"verify_quiescent", "1 finding(s)"});
}

TEST(ParVerify, AbandonedPendingIrecvDetected) {
  run(2, [](Comm& comm) {
    comm.set_verify(quiet(VerifyMode::kAudit));
    if (comm.rank() == 1) {
      double sink = 0.0;
      {
        Request r = comm.irecv(0, /*tag=*/4, sink);
        // Dropping the last handle of a still-pending receive: nobody can
        // complete it, and the buffer's lifetime promise is broken.
      }
    }
    comm.barrier();
    const auto& v = comm.verifier();
    EXPECT_EQ(v.finding_count(verify::FindingKind::kAbandonedRequest), 1u);
    if (comm.rank() == 1) {
      bool described = false;
      for (const verify::Finding& f : v.findings())
        if (f.kind == verify::FindingKind::kAbandonedRequest)
          described = f.detail.find("rank 1") != std::string::npos &&
                      f.detail.find("tag 4") != std::string::npos;
      EXPECT_TRUE(described);
    }
  });
}

TEST(ParVerify, CompletedAndCopiedRequestsAreNotAbandoned) {
  run(2, [](Comm& comm) {
    comm.set_verify(quiet(VerifyMode::kAudit));
    if (comm.rank() == 0) {
      const double v = 3.0;
      comm.send(1, 7, v);
    } else {
      double v = 0.0;
      {
        Request r = comm.irecv(0, 7, v);
        Request copy = r;  // extra handles must not trip the detector
        comm.wait(r);
        EXPECT_TRUE(copy.valid());  // copy still holds the completed state
      }
      EXPECT_DOUBLE_EQ(v, 3.0);
    }
    comm.barrier();
    EXPECT_EQ(comm.verifier().finding_count(
                  verify::FindingKind::kAbandonedRequest),
              0u);
    EXPECT_EQ(comm.verify_quiescent(), 0u);
  });
}

// ---------------------------------------------------------------------------
// Wildcard-race detector (vector clocks)
// ---------------------------------------------------------------------------

TEST(ParVerify, ConcurrentWildcardMatchFlaggedInAuditMode) {
  run(3, [](Comm& comm) {
    comm.set_verify(quiet(VerifyMode::kAudit));
    constexpr int kPayload = 7, kReady = 8;
    if (comm.rank() == 0) {
      // Ready-token protocol makes the race deterministic to *observe*:
      // both payloads are in the mailbox before the wildcard receive, yet
      // which one matches is an arbitrary arbitration — the bug class the
      // detector exists for.
      double tok = 0.0, v = 0.0;
      comm.recv(1, kReady, tok);
      comm.recv(2, kReady, tok);
      comm.recv(kAnySource, kPayload, v);  // races: both queued, concurrent
      comm.recv(kAnySource, kPayload, v);  // one left: no race
    } else {
      const double payload = 10.0 * comm.rank(), token = 1.0;
      comm.send(0, kPayload, payload);
      comm.send(0, kReady, token);
    }
    comm.barrier();
    const auto& v = comm.verifier();
    EXPECT_EQ(v.finding_count(verify::FindingKind::kWildcardRace), 1u);
    if (comm.rank() == 0) {
      bool described = false;
      for (const verify::Finding& f : v.findings())
        if (f.kind == verify::FindingKind::kWildcardRace)
          described = f.detail.find("src any") != std::string::npos &&
                      f.detail.find("tag 7") != std::string::npos &&
                      f.detail.find("rank 1") != std::string::npos &&
                      f.detail.find("rank 2") != std::string::npos;
      EXPECT_TRUE(described);
    }
  });
}

TEST(ParVerify, ConcurrentWildcardMatchThrowsInStrictMode) {
  expect_run_error(
      3,
      [](Comm& comm) {
        comm.set_verify(quiet(VerifyMode::kStrict));
        constexpr int kPayload = 7, kReady = 8;
        if (comm.rank() == 0) {
          double tok = 0.0, v = 0.0;
          comm.recv(1, kReady, tok);
          comm.recv(2, kReady, tok);
          comm.recv(kAnySource, kPayload, v);
        } else {
          const double payload = 1.0, token = 1.0;
          comm.send(0, kPayload, payload);
          comm.send(0, kReady, token);
        }
      },
      {"wildcard race on rank 0", "src any", "tag 7"});
}

TEST(ParVerify, HappensBeforeOrderedWildcardNotFlagged) {
  // Same shape, but rank 2 only sends after a token from rank 1, so the
  // two candidate sends are ordered under the vector clocks: the match is
  // deterministic and strict mode must stay silent.
  run(3, [](Comm& comm) {
    comm.set_verify(quiet(VerifyMode::kStrict));
    constexpr int kPayload = 7, kReady = 8, kChain = 9;
    if (comm.rank() == 0) {
      double tok = 0.0, v = 0.0;
      comm.recv(2, kReady, tok);
      comm.recv(kAnySource, kPayload, v);
      EXPECT_DOUBLE_EQ(v, 10.0);  // posting-order FIFO: rank 1's message
      comm.recv(kAnySource, kPayload, v);
      EXPECT_DOUBLE_EQ(v, 20.0);
    } else if (comm.rank() == 1) {
      const double payload = 10.0, chain = 1.0;
      comm.send(0, kPayload, payload);
      comm.send(2, kChain, chain);
    } else {
      double chain = 0.0;
      comm.recv(1, kChain, chain);  // orders rank 2's send after rank 1's
      const double payload = 20.0, token = 1.0;
      comm.send(0, kPayload, payload);
      comm.send(0, kReady, token);
    }
    comm.barrier();
    EXPECT_EQ(
        comm.verifier().finding_count(verify::FindingKind::kWildcardRace),
        0u);
  });
}

// ---------------------------------------------------------------------------
// Collective-consistency check
// ---------------------------------------------------------------------------

TEST(ParVerify, MismatchedAllreduceLengthDetected) {
  expect_run_error(
      2,
      [](Comm& comm) {
        comm.set_verify(quiet(VerifyMode::kStrict));
        // Rank 1 enters the allreduce with a different element count: a
        // silent corruption without the checker, an immediate diagnostic
        // naming both entries with it.
        const std::size_t n = comm.rank() == 0 ? 4 : 5;
        std::vector<double> in(n, 1.0), out(n, 0.0);
        comm.allreduce(in.data(), out.data(), n, ReduceOp::kSum);
      },
      {"collective mismatch", "rank 0", "rank 1", "reduce", "count 4",
       "count 5"});
}

TEST(ParVerify, MismatchedReduceOpDetected) {
  expect_run_error(
      2,
      [](Comm& comm) {
        comm.set_verify(quiet(VerifyMode::kStrict));
        std::vector<double> in(3, 1.0), out(3, 0.0);
        comm.allreduce(in.data(), out.data(), 3,
                       comm.rank() == 0 ? ReduceOp::kSum : ReduceOp::kMax);
      },
      {"collective mismatch", "op sum", "op max"});
}

TEST(ParVerify, ConsistentCollectivesProduceNoFindings) {
  run(4, [](Comm& comm) {
    comm.set_verify(quiet(VerifyMode::kStrict));
    const int n = comm.size();
    double x = comm.rank() + 1.0;
    comm.bcast(x, 0);
    double sum = comm.allreduce_scalar(1.0, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, n);
    std::vector<double> block(2, comm.rank()), all(2 * n, 0.0);
    comm.allgather(block.data(), 2, all.data());
    std::vector<double> scat(n, 0.0);
    double mine = 0.0;
    comm.scatter(scat.data(), 1, &mine, 0);
    std::vector<int> counts(n, 1);
    std::vector<double> gv_in(1, comm.rank()), gv_out;
    comm.gatherv(gv_in, gv_out, counts, 0);
    std::vector<double> a2a_in(n, comm.rank()), a2a_out(n, 0.0);
    comm.alltoall(a2a_in.data(), a2a_out.data(), 1);
    auto sub = comm.split(comm.rank() % 2, comm.rank());
    ASSERT_NE(sub, nullptr);
    sub->barrier();
    comm.barrier();
    EXPECT_EQ(comm.verifier().finding_count(), 0u);
    EXPECT_EQ(comm.verify_quiescent(), 0u);
  });
}

// ---------------------------------------------------------------------------
// verify_quiescent under the many-rank stress harnesses
// ---------------------------------------------------------------------------

/// One all-to-all round of nonblocking traffic (the test_comm_nonblocking
/// stress shape): every rank exchanges one double with every other rank.
void stress_round(Comm& comm, int round) {
  const int n = comm.size();
  std::vector<double> in(n, -1.0), out(n, 0.0);
  std::vector<Request> reqs;
  for (int peer = 0; peer < n; ++peer) {
    if (peer == comm.rank()) continue;
    reqs.push_back(comm.irecv(peer, 10 + round, in[peer]));
  }
  for (int peer = 0; peer < n; ++peer) {
    if (peer == comm.rank()) continue;
    out[peer] = comm.rank() * 1000.0 + peer + round;
    reqs.push_back(comm.isend(peer, 10 + round, out[peer]));
  }
  comm.waitall(reqs);
  for (int peer = 0; peer < n; ++peer) {
    if (peer == comm.rank()) continue;
    EXPECT_DOUBLE_EQ(in[peer], peer * 1000.0 + comm.rank() + round);
  }
}

TEST(ParVerify, QuiescentCleanUnderEightRankStress) {
  run(8, [](Comm& comm) {
    comm.set_verify(quiet(VerifyMode::kStrict));
    for (int round = 0; round < 3; ++round) {
      stress_round(comm, round);
      EXPECT_EQ(comm.verify_quiescent(), 0u);  // strict: would throw too
    }
    EXPECT_EQ(comm.verifier().finding_count(), 0u);
  });
}

TEST(ParVerify, QuiescentFindsExactlyInjectedOrphanUnderTwelveRankStress) {
  run(12, [](Comm& comm) {
    comm.set_verify(quiet(VerifyMode::kAudit));
    for (int round = 0; round < 2; ++round) {
      stress_round(comm, round);
      EXPECT_EQ(comm.verify_quiescent(), 0u);
    }
    if (comm.rank() == 3) {
      const double stray = 9.9;
      Request s = comm.isend(7, /*tag=*/99, stray);
      comm.wait(s);
    }
    stress_round(comm, 2);
    EXPECT_EQ(comm.verify_quiescent(), 1u);  // the orphan, nothing else
    EXPECT_EQ(comm.verifier().finding_count(), 1u);
  });
}

// ---------------------------------------------------------------------------
// Options plumbing
// ---------------------------------------------------------------------------

TEST(ParVerify, OptionsFromEnvironment) {
  ASSERT_EQ(setenv("FOAM_PAR_VERIFY", "audit", 1), 0);
  ASSERT_EQ(setenv("FOAM_PAR_VERIFY_TIMEOUT", "2.5", 1), 0);
  CommVerifyOptions o = CommVerifyOptions::from_env();
  EXPECT_EQ(o.mode, VerifyMode::kAudit);
  EXPECT_DOUBLE_EQ(o.stall_timeout_seconds, 2.5);

  ASSERT_EQ(setenv("FOAM_PAR_VERIFY", "strict", 1), 0);
  EXPECT_EQ(CommVerifyOptions::from_env().mode, VerifyMode::kStrict);

  ASSERT_EQ(setenv("FOAM_PAR_VERIFY", "nonsense", 1), 0);
  ASSERT_EQ(setenv("FOAM_PAR_VERIFY_TIMEOUT", "-3", 1), 0);
  o = CommVerifyOptions::from_env();
  EXPECT_EQ(o.mode, VerifyMode::kOff);
  EXPECT_DOUBLE_EQ(o.stall_timeout_seconds, 10.0);

  ASSERT_EQ(unsetenv("FOAM_PAR_VERIFY"), 0);
  ASSERT_EQ(unsetenv("FOAM_PAR_VERIFY_TIMEOUT"), 0);
  EXPECT_EQ(CommVerifyOptions::from_env().mode, VerifyMode::kOff);
}

TEST(ParVerify, OffModeRecordsNothing) {
  run(2, [](Comm& comm) {
    // No set_verify: the default is off; hooks must stay pure branches.
    if (comm.rank() == 0) {
      const double v = 4.0;
      Request s = comm.isend(1, 5, v);  // orphan — but nobody is looking
      comm.wait(s);
    }
    EXPECT_FALSE(comm.verifier().enabled());
    EXPECT_EQ(comm.verify_quiescent(), 0u);
    EXPECT_EQ(comm.verifier().finding_count(), 0u);
  });
}

}  // namespace
}  // namespace foam::par
