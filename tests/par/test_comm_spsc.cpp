/// Stress and semantics tests for the lock-free SPSC messaging transport:
/// ring-overflow spill FIFO, wildcard matching and posting-order under the
/// new queues, out-of-order waitall, 16-rank churn, transport A/B
/// equivalence, and the FaultPlan stall -> deadlock-detector regression.
///
/// CI runs this suite twice: under ThreadSanitizer, and with
/// FOAM_PAR_VERIFY=audit scoped to `--gtest_filter='SpscStress*'` so the
/// MPI-semantics checker audits the lock-free paths without altering the
/// rest of the test environment.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "par/comm.hpp"
#include "par/fault.hpp"

namespace foam::par {
namespace {

/// Pin the transport for one test, restoring the previously resolved
/// choice (explicit or environment) on exit so a suite-wide
/// FOAM_PAR_TRANSPORT A/B run keeps meaning for the other tests.
class ScopedTransport {
 public:
  explicit ScopedTransport(CommTransport t) : prev_(comm_transport()) {
    set_comm_transport(t);
  }
  ~ScopedTransport() { set_comm_transport(prev_); }
  ScopedTransport(const ScopedTransport&) = delete;
  ScopedTransport& operator=(const ScopedTransport&) = delete;

 private:
  CommTransport prev_;
};

// ---------------------------------------------------------------------------
// Ring overflow: bursts larger than the per-channel ring must spill to the
// unbounded lane without blocking the sender or reordering the channel.
// ---------------------------------------------------------------------------

TEST(SpscStress, RingOverflowSpillsWithoutReordering) {
  ScopedTransport t(CommTransport::kSpsc);
  // 5x the ring capacity, mixing inline (<= 256 B) and heap payloads so
  // both slot shapes ride through ring and spill lanes.
  const int n_msgs = static_cast<int>(detail::kChannelRingSlots) * 5;
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < n_msgs; ++i) {
        if (i % 3 == 0) {
          std::vector<double> big(64, static_cast<double>(i));  // 512 B
          comm.isend_move(1, 4, std::move(big));
        } else {
          comm.send(1, 4, static_cast<double>(i));
        }
      }
      comm.barrier();  // sends are buffered: all complete locally first
    } else {
      comm.barrier();  // every message is queued before the first recv
      for (int i = 0; i < n_msgs; ++i) {
        if (i % 3 == 0) {
          std::vector<double> big;
          comm.recv_vec(0, 4, big);
          ASSERT_EQ(big.size(), 64u);
          EXPECT_EQ(big[0], static_cast<double>(i)) << "reordered at " << i;
        } else {
          double v = -1.0;
          comm.recv(0, 4, v);
          EXPECT_EQ(v, static_cast<double>(i)) << "reordered at " << i;
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Wildcard receives and posting-order FIFO on the lock-free path.
// ---------------------------------------------------------------------------

TEST(SpscStress, WildcardRecvMatchesArrivalOrder) {
  ScopedTransport t(CommTransport::kSpsc);
  run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      // Per-source FIFO with wildcard receives: messages from one source
      // must complete in the order they were sent, whatever the tag.
      std::vector<double> got;
      for (int i = 0; i < 6; ++i) {
        double v = -1.0;
        comm.recv(kAnySource, kAnyTag, v);
        got.push_back(v);
      }
      int last1 = -1, last2 = -1;
      for (double v : got) {
        const int src = static_cast<int>(v) / 100;
        const int seq = static_cast<int>(v) % 100;
        int& last = src == 1 ? last1 : last2;
        EXPECT_GT(seq, last) << "per-source FIFO violated";
        last = seq;
      }
    } else {
      for (int i = 0; i < 3; ++i)
        comm.send(0, /*tag=*/i + 1,
                  static_cast<double>(comm.rank() * 100 + i));
    }
  });
}

TEST(SpscStress, PostingOrderBreaksWildcardTies) {
  ScopedTransport t(CommTransport::kSpsc);
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      // Two wildcard irecvs posted before any message exists: the first
      // posted must take the first arrival.
      double a = -1.0, b = -1.0;
      Request ra = comm.irecv(kAnySource, kAnyTag, a);
      Request rb = comm.irecv(kAnySource, kAnyTag, b);
      comm.barrier();
      comm.wait(ra);
      comm.wait(rb);
      EXPECT_EQ(a, 1.0);
      EXPECT_EQ(b, 2.0);
    } else {
      comm.barrier();
      comm.send(0, 9, 1.0);
      comm.send(0, 9, 2.0);
    }
  });
}

// ---------------------------------------------------------------------------
// Out-of-order completion: irecvs posted in reverse tag order, waitall
// completes all of them against in-order sends.
// ---------------------------------------------------------------------------

TEST(SpscStress, OutOfOrderWaitall) {
  ScopedTransport t(CommTransport::kSpsc);
  constexpr int kN = 8;
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int tag = 1; tag <= kN; ++tag)
        comm.send(1, tag, static_cast<double>(tag * 11));
    } else {
      double got[kN] = {};
      std::vector<Request> rs;
      for (int tag = kN; tag >= 1; --tag)
        rs.push_back(comm.irecv(0, tag, got[tag - 1]));
      comm.waitall(rs);
      for (int tag = 1; tag <= kN; ++tag)
        EXPECT_EQ(got[tag - 1], static_cast<double>(tag * 11));
    }
  });
}

// ---------------------------------------------------------------------------
// 16-rank churn: every rank streams to every other rank while draining
// with wildcards; totals verified with a collective. Runs clean under
// TSan and under FOAM_PAR_VERIFY=audit (CI wires both).
// ---------------------------------------------------------------------------

TEST(SpscStress, SixteenRankChurn) {
  ScopedTransport t(CommTransport::kSpsc);
  const int nranks = 16;
  const int rounds = 8;
  run(nranks, [&](Comm& comm) {
    const int n = comm.size();
    double sum_in = 0.0, sum_out = 0.0;
    for (int round = 0; round < rounds; ++round) {
      for (int dst = 0; dst < n; ++dst) {
        if (dst == comm.rank()) continue;
        const double v = comm.rank() * 1000.0 + round;
        if (round % 2 == 0) {
          comm.send(dst, /*tag=*/round + 1, v);
        } else {
          std::vector<double> big(48, v);  // 384 B: heap payload path
          comm.isend_move(dst, round + 1, std::move(big));
        }
        sum_out += v;
      }
      for (int i = 0; i < n - 1; ++i) {
        if (round % 2 == 0) {
          double v = 0.0;
          comm.recv(kAnySource, round + 1, v);
          sum_in += v;
        } else {
          std::vector<double> big;
          comm.recv_vec(kAnySource, round + 1, big);
          ASSERT_EQ(big.size(), 48u);
          sum_in += big[0];
        }
      }
    }
    const double total_in = comm.allreduce_scalar(sum_in, ReduceOp::kSum);
    const double total_out = comm.allreduce_scalar(sum_out, ReduceOp::kSum);
    EXPECT_EQ(total_in, total_out);
  });
}

// ---------------------------------------------------------------------------
// Transport A/B equivalence: the same program must produce bitwise
// identical results on the lock-free and mutex transports.
// ---------------------------------------------------------------------------

namespace {
std::vector<double> exchange_program(CommTransport t) {
  ScopedTransport scoped(t);
  std::vector<double> out;
  run(4, [&](Comm& comm) {
    const int n = comm.size();
    std::vector<double> mine(n);
    for (int i = 0; i < n; ++i)
      mine[i] = 0.25 * comm.rank() + 1.0 / (i + 1);
    std::vector<double> swapped(n);
    comm.alltoall(mine.data(), swapped.data(), 1);
    double acc = 0.0;
    for (double v : swapped) acc += v * 1.000000119;
    std::vector<double> all(n, 0.0);
    comm.gather(&acc, 1, all.data(), 0);
    if (comm.rank() == 0) out = all;
  });
  return out;
}
}  // namespace

TEST(SpscStress, TransportsBitwiseEquivalent) {
  const std::vector<double> spsc = exchange_program(CommTransport::kSpsc);
  const std::vector<double> mutex = exchange_program(CommTransport::kMutex);
  ASSERT_EQ(spsc.size(), mutex.size());
  for (std::size_t i = 0; i < spsc.size(); ++i)
    EXPECT_EQ(std::memcmp(&spsc[i], &mutex[i], sizeof(double)), 0)
        << "rank " << i << " diverged across transports";
}

// ---------------------------------------------------------------------------
// FaultPlan stall regression (satellite of the transport change): a rank
// stalled via the FOAM_FAULT spec must still be *named* by the PR-4
// deadlock detector now that waits register against the lock-free queues.
// ---------------------------------------------------------------------------

TEST(SpscStress, StalledRankStillNamedByDeadlockDetector) {
  ScopedTransport t(CommTransport::kSpsc);
  const FaultPlan plan = FaultPlan::parse("stall:rank=1,day=1,seconds=30");
  ASSERT_EQ(plan.action, FaultPlan::Action::kStall);
  std::string msg;
  try {
    run(3, [&](Comm& comm) {
      CommVerifyOptions o;
      o.mode = VerifyMode::kAudit;
      o.stall_timeout_seconds = 0.5;
      o.log_findings = false;
      comm.set_verify(o);
      if (comm.rank() == plan.rank) {
        comm.stall(plan.stall_seconds, "fault.stall");
        comm.send(2, 3, 1.0);  // never reached: the stall outlives the run
      } else if (comm.rank() == 2) {
        double v = 0.0;
        comm.recv(1, 3, v);  // waits forever on the stalled rank
      }
      comm.barrier();
    });
    FAIL() << "stalled rank did not trip the deadlock detector";
  } catch (const Error& e) {
    msg = e.what();
  }
  EXPECT_NE(msg.find("deadlock detected"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("fault.stall"), std::string::npos) << msg;
}

}  // namespace
}  // namespace foam::par
