#include "par/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace foam::par {
namespace {

TEST(Comm, RunLaunchesAllRanks) {
  std::atomic<int> count{0};
  run(5, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 5);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 5);
    ++count;
  });
  EXPECT_EQ(count.load(), 5);
}

TEST(Comm, PointToPointDelivers) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const double x = 42.5;
      comm.send(1, 7, x);
    } else {
      double x = 0.0;
      const RecvStatus st = comm.recv(0, 7, x);
      EXPECT_DOUBLE_EQ(x, 42.5);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, sizeof(double));
    }
  });
}

TEST(Comm, TagMatchingIsSelective) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      int a = 1, b = 2;
      comm.send(1, 10, a);
      comm.send(1, 20, b);
    } else {
      int v = 0;
      // Receive the later tag first: matching must skip the tag-10 message.
      comm.recv(0, 20, v);
      EXPECT_EQ(v, 2);
      comm.recv(0, 10, v);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(Comm, FifoOrderWithinTag) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send(1, 3, i);
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        comm.recv(0, 3, v);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(Comm, AnySourceAndAnyTag) {
  run(4, [](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send(0, comm.rank(), comm.rank());
    } else {
      int sum = 0;
      for (int n = 0; n < 3; ++n) {
        int v = 0;
        const RecvStatus st = comm.recv(kAnySource, kAnyTag, v);
        EXPECT_EQ(st.source, v);
        EXPECT_EQ(st.tag, v);
        sum += v;
      }
      EXPECT_EQ(sum, 1 + 2 + 3);
    }
  });
}

TEST(Comm, VectorRoundTrip) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> v(1000);
      std::iota(v.begin(), v.end(), 0.0);
      comm.send_vec(1, 0, v);
    } else {
      std::vector<double> v;
      comm.recv_vec(0, 0, v);
      ASSERT_EQ(v.size(), 1000u);
      EXPECT_DOUBLE_EQ(v[999], 999.0);
    }
  });
}

TEST(Comm, BarrierSynchronizes) {
  // After the barrier, every rank must observe every other rank's
  // pre-barrier increment.
  std::atomic<int> before{0};
  run(6, [&](Comm& comm) {
    ++before;
    comm.barrier();
    EXPECT_EQ(before.load(), 6);
  });
}

TEST(Comm, BcastFromEveryRoot) {
  run(3, [](Comm& comm) {
    for (int root = 0; root < 3; ++root) {
      double v = (comm.rank() == root) ? 100.0 + root : -1.0;
      comm.bcast(v, root);
      EXPECT_DOUBLE_EQ(v, 100.0 + root);
    }
  });
}

TEST(Comm, BcastVectorResizes) {
  run(2, [](Comm& comm) {
    std::vector<double> v;
    if (comm.rank() == 0) v = {1.0, 2.0, 3.0};
    comm.bcast_vec(v, 0);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[2], 3.0);
  });
}

TEST(Comm, AllreduceSumMinMax) {
  run(4, [](Comm& comm) {
    const double r = comm.rank();
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(r, ReduceOp::kSum), 6.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(r, ReduceOp::kMin), 0.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(r, ReduceOp::kMax), 3.0);
  });
}

TEST(Comm, AllreduceVector) {
  run(3, [](Comm& comm) {
    std::vector<double> in = {1.0 * comm.rank(), 10.0};
    std::vector<double> out(2);
    comm.allreduce(in.data(), out.data(), 2, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(out[0], 3.0);
    EXPECT_DOUBLE_EQ(out[1], 30.0);
  });
}

TEST(Comm, GatherAndAllgather) {
  run(4, [](Comm& comm) {
    const double mine[2] = {comm.rank() * 1.0, comm.rank() * 10.0};
    std::vector<double> all(8, -1.0);
    comm.gather(mine, 2, all.data(), 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < 4; ++r) {
        EXPECT_DOUBLE_EQ(all[2 * r], r);
        EXPECT_DOUBLE_EQ(all[2 * r + 1], 10.0 * r);
      }
    }
    std::vector<double> everywhere(8, -1.0);
    comm.allgather(mine, 2, everywhere.data());
    for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(everywhere[2 * r], r);
  });
}

TEST(Comm, GathervVariableBlocks) {
  run(3, [](Comm& comm) {
    std::vector<double> mine(comm.rank() + 1, 1.0 * comm.rank());
    const std::vector<int> counts = {1, 2, 3};
    std::vector<double> out;
    comm.gatherv(mine, out, counts, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(out.size(), 6u);
      EXPECT_DOUBLE_EQ(out[0], 0.0);
      EXPECT_DOUBLE_EQ(out[1], 1.0);
      EXPECT_DOUBLE_EQ(out[2], 1.0);
      EXPECT_DOUBLE_EQ(out[5], 2.0);
    }
  });
}

TEST(Comm, AlltoallTransposes) {
  run(4, [](Comm& comm) {
    // Rank r sends value 100*r + s to rank s.
    std::vector<double> in(4), out(4);
    for (int s = 0; s < 4; ++s) in[s] = 100.0 * comm.rank() + s;
    comm.alltoall(in.data(), out.data(), 1);
    for (int s = 0; s < 4; ++s)
      EXPECT_DOUBLE_EQ(out[s], 100.0 * s + comm.rank());
  });
}

TEST(Comm, SplitByColor) {
  run(6, [](Comm& comm) {
    // Even ranks form one group, odd ranks the other — the FOAM pattern of
    // carving atmosphere and ocean communicators out of the world.
    const int color = comm.rank() % 2;
    auto sub = comm.split(color, comm.rank());
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->size(), 3);
    EXPECT_EQ(sub->rank(), comm.rank() / 2);
    // Sub-communicator collectives see only the group.
    const double sum =
        sub->allreduce_scalar(static_cast<double>(comm.rank()),
                              ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, color == 0 ? 0.0 + 2.0 + 4.0 : 1.0 + 3.0 + 5.0);
  });
}

TEST(Comm, SplitNegativeColorExcluded) {
  run(4, [](Comm& comm) {
    const int color = (comm.rank() == 3) ? -1 : 0;
    auto sub = comm.split(color, 0);
    if (comm.rank() == 3) {
      EXPECT_EQ(sub, nullptr);
    } else {
      ASSERT_NE(sub, nullptr);
      EXPECT_EQ(sub->size(), 3);
    }
  });
}

TEST(Comm, SplitKeyControlsOrdering) {
  run(3, [](Comm& comm) {
    // Reverse the rank order within the sub-communicator via the key.
    auto sub = comm.split(0, -comm.rank());
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->rank(), 2 - comm.rank());
  });
}

TEST(Comm, MessagesInParentAndChildDoNotMix) {
  run(2, [](Comm& comm) {
    auto sub = comm.split(0, comm.rank());
    ASSERT_NE(sub, nullptr);
    if (comm.rank() == 0) {
      int a = 1, b = 2;
      comm.send(1, 5, a);
      sub->send(1, 5, b);
    } else {
      int v = 0;
      sub->recv(0, 5, v);
      EXPECT_EQ(v, 2);
      comm.recv(0, 5, v);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(Comm, ExceptionOnOneRankPropagatesWithoutDeadlock) {
  EXPECT_THROW(run(3,
                   [](Comm& comm) {
                     if (comm.rank() == 1) throw Error("rank 1 failed");
                     // Other ranks block in a receive that will never be
                     // satisfied; the abort must wake them.
                     double v;
                     comm.recv(1, 0, v);
                   }),
               Error);
}

TEST(Comm, OversizeMessageThrows) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) {
                       const double big[4] = {1, 2, 3, 4};
                       comm.send_bytes(1, 0, big, sizeof(big));
                       // Keep rank 0 alive until rank 1 fails.
                       comm.barrier();
                     } else {
                       double small = 0.0;
                       comm.recv_bytes(0, 0, &small, sizeof(small));
                       comm.barrier();
                     }
                   }),
               Error);
}

TEST(Comm, SingleRankDegenerateCollectives) {
  run(1, [](Comm& comm) {
    comm.barrier();
    double v = 5.0;
    comm.bcast(v, 0);
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(v, ReduceOp::kSum), 5.0);
    std::vector<double> in = {1.0}, out(1);
    comm.alltoall(in.data(), out.data(), 1);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
  });
}

TEST(Comm, ManyRanksStress) {
  // Ring pass-around: each rank sends to the next, result returns home.
  run(16, [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    int token = comm.rank();
    for (int hop = 0; hop < comm.size(); ++hop) {
      comm.send(next, 1, token);
      comm.recv(prev, 1, token);
    }
    EXPECT_EQ(token, comm.rank());
  });
}

}  // namespace
}  // namespace foam::par

namespace foam::par {
namespace {

TEST(Comm, ScatterDistributesBlocks) {
  run(4, [](Comm& comm) {
    std::vector<double> all;
    if (comm.rank() == 1) {  // non-zero root
      all.resize(8);
      for (int r = 0; r < 4; ++r) {
        all[2 * r] = 10.0 * r;
        all[2 * r + 1] = 10.0 * r + 1.0;
      }
    }
    double mine[2] = {-1.0, -1.0};
    comm.scatter(all.data(), 2, mine, 1);
    EXPECT_DOUBLE_EQ(mine[0], 10.0 * comm.rank());
    EXPECT_DOUBLE_EQ(mine[1], 10.0 * comm.rank() + 1.0);
  });
}

TEST(Comm, ScatterGatherRoundTrip) {
  run(3, [](Comm& comm) {
    std::vector<double> all(6);
    if (comm.rank() == 0) {
      for (int n = 0; n < 6; ++n) all[n] = n * n;
    }
    double mine[2];
    comm.scatter(all.data(), 2, mine, 0);
    std::vector<double> back(6, -1.0);
    comm.gather(mine, 2, back.data(), 0);
    if (comm.rank() == 0) {
      for (int n = 0; n < 6; ++n) EXPECT_DOUBLE_EQ(back[n], n * n);
    }
  });
}

}  // namespace
}  // namespace foam::par
