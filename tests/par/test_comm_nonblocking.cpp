#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "par/comm.hpp"

namespace foam::par {
namespace {

TEST(CommNonblocking, IsendIrecvRoundTrip) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const double v = 42.5;
      Request s = comm.isend(1, 7, v);
      comm.wait(s);
      EXPECT_FALSE(s.valid());
    } else {
      double v = 0.0;
      Request r = comm.irecv(0, 7, v);
      EXPECT_TRUE(r.valid());
      const RecvStatus st = comm.wait(r);
      EXPECT_DOUBLE_EQ(v, 42.5);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, sizeof(double));
      EXPECT_FALSE(r.valid());
    }
  });
}

TEST(CommNonblocking, SendRequestIsBornCompleteAndBufferReusable) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      // Buffered semantics: the payload is copied out at post time, so the
      // same buffer can be reused for back-to-back isends.
      std::vector<double> buf(8);
      for (int i = 0; i < 3; ++i) {
        std::fill(buf.begin(), buf.end(), static_cast<double>(i));
        Request s = comm.isend_vec(1, 5, buf);
        EXPECT_TRUE(comm.test(s));  // born complete
      }
    } else {
      for (int i = 0; i < 3; ++i) {
        std::vector<double> got;
        comm.recv_vec(0, 5, got);
        ASSERT_EQ(got.size(), 8u);
        for (const double v : got) EXPECT_DOUBLE_EQ(v, i);
      }
    }
  });
}

TEST(CommNonblocking, NullRequestIsBenign) {
  run(1, [](Comm& comm) {
    Request r;
    EXPECT_FALSE(r.valid());
    EXPECT_TRUE(comm.test(r));
    const RecvStatus st = comm.wait(r);
    EXPECT_EQ(st.bytes, 0u);
    std::vector<Request> rs(3);
    comm.waitall(rs);
    EXPECT_EQ(comm.waitany(rs), -1);
  });
}

TEST(CommNonblocking, WildcardSourceAndTagMatch) {
  run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      int a = 0, b = 0;
      Request ra = comm.irecv(kAnySource, kAnyTag, a);
      Request rb = comm.irecv(kAnySource, kAnyTag, b);
      RecvStatus sa = comm.wait(ra);
      RecvStatus sb = comm.wait(rb);
      // One message from each peer, in some order; status reports the
      // actual source and tag.
      EXPECT_NE(sa.source, sb.source);
      EXPECT_EQ(a, sa.source * 100 + sa.tag);
      EXPECT_EQ(b, sb.source * 100 + sb.tag);
    } else {
      const int tag = comm.rank() + 10;
      comm.send(0, tag, comm.rank() * 100 + tag);
    }
  });
}

TEST(CommNonblocking, FifoWithinMatchClass) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 16; ++i) comm.send(1, 3, i);
    } else {
      // Pre-post all receives: posting order must pair with send order.
      std::vector<int> got(16, -1);
      std::vector<Request> rs(16);
      for (int i = 0; i < 16; ++i) rs[i] = comm.irecv(0, 3, got[i]);
      comm.waitall(rs);
      for (int i = 0; i < 16; ++i) EXPECT_EQ(got[i], i);
    }
  });
}

TEST(CommNonblocking, PostingOrderDecidesWildcardPairing) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 4, 111);
      comm.send(1, 4, 222);
    } else {
      // An earlier wildcard receive takes the earlier message even when the
      // later (specific) receive also matches it.
      int a = 0, b = 0;
      Request ra = comm.irecv(kAnySource, kAnyTag, a);
      Request rb = comm.irecv(0, 4, b);
      comm.wait(ra);
      comm.wait(rb);
      EXPECT_EQ(a, 111);
      EXPECT_EQ(b, 222);
    }
  });
}

TEST(CommNonblocking, BlockingRecvQueuesBehindPendingIrecv) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 9, 1);
      comm.send(1, 9, 2);
    } else {
      int first = 0, second = 0;
      Request r = comm.irecv(0, 9, first);
      // The blocking receive is posted after the pending irecv, so it must
      // take the *second* message even though it runs first.
      comm.recv(0, 9, second);
      comm.wait(r);
      EXPECT_EQ(first, 1);
      EXPECT_EQ(second, 2);
    }
  });
}

TEST(CommNonblocking, WaitallCompletesOutOfOrderArrivals) {
  run(4, [](Comm& comm) {
    if (comm.rank() == 0) {
      // Receives posted in rank order; peers send in reverse arrival bias
      // (rank 3 sends immediately, rank 1 last — arrival order is
      // arbitrary, which is the point).
      std::vector<double> v(3, 0.0);
      std::vector<Request> rs(3);
      for (int src = 1; src <= 3; ++src)
        rs[src - 1] = comm.irecv(src, 2, v[src - 1]);
      comm.waitall(rs);
      for (int src = 1; src <= 3; ++src) {
        EXPECT_FALSE(rs[src - 1].valid());
        EXPECT_DOUBLE_EQ(v[src - 1], src * 1.5);
      }
    } else {
      comm.send(0, 2, comm.rank() * 1.5);
    }
  });
}

TEST(CommNonblocking, WaitanyReturnsCompletionsUntilExhausted) {
  run(4, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> v(3, 0);
      std::vector<Request> rs(3);
      for (int src = 1; src <= 3; ++src)
        rs[src - 1] = comm.irecv(src, 6, v[src - 1]);
      std::vector<bool> seen(3, false);
      RecvStatus st;
      for (int k = 0; k < 3; ++k) {
        const int idx = comm.waitany(rs, &st);
        ASSERT_GE(idx, 0);
        ASSERT_LT(idx, 3);
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
        EXPECT_EQ(st.source, idx + 1);
        EXPECT_EQ(v[idx], (idx + 1) * 7);
      }
      EXPECT_EQ(comm.waitany(rs), -1);  // all handles consumed
    } else {
      comm.send(0, 6, comm.rank() * 7);
    }
  });
}

TEST(CommNonblocking, TestPollsWithoutBlocking) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      int go = 0;
      comm.recv(1, 1, go);  // rank 1 has verified "not yet delivered"
      comm.send(1, 2, 3.25);
    } else {
      double v = 0.0;
      Request r = comm.irecv(0, 2, v);
      EXPECT_FALSE(comm.test(r));  // nothing sent yet — must not block
      EXPECT_TRUE(r.valid());
      comm.send(0, 1, 1);  // release the sender
      RecvStatus st;
      while (!comm.test(r, &st)) {
      }
      EXPECT_DOUBLE_EQ(v, 3.25);
      EXPECT_EQ(st.bytes, sizeof(double));
    }
  });
}

TEST(CommNonblocking, IrecvVecResizesToIncomingLength) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> payload(17);
      std::iota(payload.begin(), payload.end(), 0.0);
      comm.send_vec(1, 8, payload);
    } else {
      std::vector<double> v;  // delivery resizes
      Request r = comm.irecv_vec(0, 8, v);
      const RecvStatus st = comm.wait(r);
      ASSERT_EQ(v.size(), 17u);
      EXPECT_EQ(st.bytes, 17 * sizeof(double));
      for (int i = 0; i < 17; ++i) EXPECT_DOUBLE_EQ(v[i], i);
    }
  });
}

TEST(CommNonblocking, OverflowThrowsAtCompletion) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const double big[4] = {1, 2, 3, 4};
      comm.send_bytes(1, 1, big, sizeof(big));
    } else {
      double small[2];
      Request r = comm.irecv_bytes(0, 1, small, sizeof(small));
      EXPECT_THROW(comm.wait(r), Error);
    }
  });
}

TEST(CommNonblocking, WildcardDoesNotStealCollectiveTraffic) {
  run(3, [](Comm& comm) {
    // A pending any-source/any-tag receive sits open across collectives;
    // the collectives' internal messages must not match it.
    double v = 0.0;
    Request r;
    if (comm.rank() == 0) r = comm.irecv(kAnySource, kAnyTag, v);
    comm.barrier();
    const double sum = comm.allreduce_scalar(1.0, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, 3.0);
    int root_val = comm.rank() == 1 ? 99 : 0;
    comm.bcast(root_val, 1);
    EXPECT_EQ(root_val, 99);
    if (comm.rank() == 2) comm.send(0, 0, 2.75);
    if (comm.rank() == 0) {
      const RecvStatus st = comm.wait(r);
      EXPECT_DOUBLE_EQ(v, 2.75);  // the user message, not collective bytes
      EXPECT_EQ(st.source, 2);
    }
  });
}

TEST(CommNonblocking, SplitCommsKeepPendingReceivesSeparate) {
  run(4, [](Comm& comm) {
    // Two sub-communicators exchange on the same tag concurrently; pending
    // receives must match only their own communicator's messages.
    auto sub = comm.split(comm.rank() % 2, comm.rank());
    ASSERT_NE(sub, nullptr);
    const int peer = 1 - sub->rank();
    int got = 0;
    Request r = sub->irecv(peer, 5, got);
    sub->send(peer, 5, 1000 + comm.rank());
    sub->wait(r);
    // My peer in my color group is the other rank with the same parity.
    const int expect_global = (comm.rank() + 2) % 4;
    EXPECT_EQ(got, 1000 + expect_global);
  });
}

TEST(CommNonblocking, ManyRankStressCompletesWithoutDeadlock) {
  // Ring + all-pairs stress: every rank pre-posts receives from every other
  // rank, then sends to every other rank, then waits. Any matching or
  // completion bug (lost wakeup, wrong pairing, missed arrival) deadlocks
  // or corrupts the checksums.
  constexpr int kRanks = 12;
  constexpr int kRounds = 8;
  run(kRanks, [](Comm& comm) {
    const int me = comm.rank();
    const int n = comm.size();
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::vector<double>> inbox(n);
      std::vector<Request> rs;
      rs.reserve(n - 1);
      for (int src = 0; src < n; ++src) {
        if (src == me) continue;
        rs.push_back(comm.irecv_vec(src, round, inbox[src]));
      }
      // Send one message to every peer, in an order rotated per round so
      // arrival order varies across rounds and ranks.
      for (int i = 0; i < n - 1; ++i) {
        const int dst = (me + 1 + (i + round * 3) % (n - 1)) % n;
        std::vector<double> payload(1 + (me + dst + round) % 5);
        std::fill(payload.begin(), payload.end(),
                  me * 1000.0 + dst + round * 0.25);
        comm.isend_vec(dst, round, payload);
      }
      comm.waitall(rs);
      for (int src = 0; src < n; ++src) {
        if (src == me) continue;
        ASSERT_EQ(inbox[src].size(), 1u + (src + me + round) % 5)
            << "round " << round << " src " << src;
        for (const double v : inbox[src])
          ASSERT_DOUBLE_EQ(v, src * 1000.0 + me + round * 0.25);
      }
    }
  });
}

}  // namespace
}  // namespace foam::par
