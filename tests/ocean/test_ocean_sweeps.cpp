// Parameterized property sweeps over the ocean configuration space: every
// combination of the paper's three speed techniques must run stably and
// conserve what it should.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "data/earth.hpp"
#include "ocean/model.hpp"

namespace foam::ocean {
namespace {

struct SweepWorld {
  SweepWorld() : grid(36, 36, 60.0), bathy(data::bathymetry(grid)) {}
  numerics::MercatorGrid grid;
  Field2Dd bathy;
};

SweepWorld& world() {
  static SweepWorld w;
  return w;
}

/// (slow_factor, split, tracer_every)
using TechniqueCombo = std::tuple<double, bool, int>;

class OceanTechniqueSweep
    : public ::testing::TestWithParam<TechniqueCombo> {};

TEST_P(OceanTechniqueSweep, StableAndBounded) {
  const auto [slow, split, tracer_every] = GetParam();
  OceanConfig cfg = OceanConfig::testing(36, 36, 6);
  cfg.slow_factor = slow;
  cfg.split_barotropic = split;
  cfg.tracer_every = tracer_every;
  if (!split) {
    // Unsplit: the whole model must satisfy the external-wave CFL.
    cfg.dt_mom = slow >= 100.0 ? 450.0 : 60.0;
  } else if (slow < 100.0) {
    cfg.nsub_baro = 64;  // faster waves need more subcycles
  }
  OceanModel m(cfg, world().grid, world().bathy);
  m.init_climatology();
  Field2Dd taux(36, 36), tauy(36, 36, 0.0);
  for (int j = 0; j < 36; ++j)
    for (int i = 0; i < 36; ++i)
      taux(i, j) = analytic_zonal_stress(world().grid.lat(j));
  OceanForcing wind;
  wind.wind_x = &taux;
  wind.wind_y = &tauy;
  m.set_forcing(wind);
  m.run_days(2.0);
  EXPECT_FALSE(has_non_finite(m.temperature()));
  EXPECT_FALSE(has_non_finite(m.salinity()));
  EXPECT_FALSE(has_non_finite(m.eta()));
  const auto d = m.diagnostics();
  EXPECT_LT(d.max_speed, 3.0);
  EXPECT_GT(d.mean_sst, -2.0);
  EXPECT_LT(d.mean_sst, 30.0);
}

INSTANTIATE_TEST_SUITE_P(
    TechniqueMatrix, OceanTechniqueSweep,
    ::testing::Combine(::testing::Values(1.0, 100.0),
                       ::testing::Bool(),
                       ::testing::Values(1, 2, 4)));

class OceanRiExponent : public ::testing::TestWithParam<double> {};

TEST_P(OceanRiExponent, MixingSweepStable) {
  // PP81 (exponent 2) vs the paper's steepened dependency (3) and beyond.
  OceanConfig cfg = OceanConfig::testing(36, 36, 6);
  cfg.ri_exponent = GetParam();
  OceanModel m(cfg, world().grid, world().bathy);
  m.init_climatology();
  m.run_days(2.0);
  EXPECT_FALSE(has_non_finite(m.temperature()));
}

INSTANTIATE_TEST_SUITE_P(Exponents, OceanRiExponent,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0));

TEST(OceanConservation, SaltConservedWithoutSurfaceFluxes) {
  // No freshwater forcing: total salt content must be conserved through
  // advection, diffusion, convection and filtering.
  OceanConfig cfg = OceanConfig::testing(36, 36, 6);
  OceanModel m(cfg, world().grid, world().bathy);
  m.init_climatology();
  const auto& vg = m.vgrid();
  auto total_salt = [&]() {
    double s = 0.0;
    for (int j = 0; j < 36; ++j)
      for (int i = 0; i < 36; ++i)
        for (int k = 0; k < m.levels()(i, j); ++k)
          s += m.salinity()(i, j, k) * world().grid.cell_area(j) * vg.dz(k);
    return s;
  };
  const double s0 = total_salt();
  m.run_days(3.0);
  const double s1 = total_salt();
  // Advection at coastlines and the polar filter are not exactly
  // conservative; the drift must still be tiny.
  EXPECT_NEAR(s1 / s0, 1.0, 5e-3);
}

TEST(OceanConservation, HeatDriftSmallUnforced) {
  OceanConfig cfg = OceanConfig::testing(36, 36, 6);
  OceanModel m(cfg, world().grid, world().bathy);
  m.init_climatology();
  const double t0 = m.diagnostics().mean_temp_3d;
  m.run_days(3.0);
  const double t1 = m.diagnostics().mean_temp_3d;
  EXPECT_NEAR(t1 - t0, 0.0, 0.3);
}

}  // namespace
}  // namespace foam::ocean
