#include "ocean/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/earth.hpp"
#include "base/constants.hpp"
#include "ocean/vgrid.hpp"

namespace foam::ocean {
namespace {

/// Shared small-world fixture: 48x48 conformal-clipped grid, 8 levels.
struct SmallOcean {
  SmallOcean()
      : grid(48, 48, 60.0),
        bathy(data::bathymetry(grid)),
        cfg(OceanConfig::testing(48, 48, 8)) {}
  numerics::MercatorGrid grid;
  Field2Dd bathy;
  OceanConfig cfg;
};

TEST(VerticalGrid, StretchedLevelsSumToDepth) {
  VerticalGrid v(16, 25.0, 4800.0);
  EXPECT_EQ(v.nz(), 16);
  EXPECT_NEAR(v.z_bottom(15), 4800.0, 1e-6);
  EXPECT_NEAR(v.dz(0), 25.0, 1e-9);
  // Monotonically thickening with depth.
  for (int k = 1; k < 16; ++k) EXPECT_GT(v.dz(k), v.dz(k - 1));
  // Centers inside their layers.
  for (int k = 0; k < 16; ++k) {
    EXPECT_LT(v.z_center(k), v.z_bottom(k));
    if (k > 0) {
      EXPECT_GT(v.z_center(k), v.z_bottom(k - 1));
    }
  }
}

TEST(VerticalGrid, WetLayers) {
  VerticalGrid v(16, 25.0, 4800.0);
  EXPECT_EQ(v.wet_layers(0.0), 0);
  EXPECT_EQ(v.wet_layers(10.0), 1);  // any water gets a surface layer
  EXPECT_EQ(v.wet_layers(4800.0), 16);
  EXPECT_EQ(v.wet_layers(1.0e9), 16);
  // Monotone in depth.
  int prev = 0;
  for (double d = 0.0; d < 6000.0; d += 50.0) {
    const int n = v.wet_layers(d);
    EXPECT_GE(n, prev);
    prev = n;
  }
}

TEST(OceanModel, ConstructAndInit) {
  SmallOcean w;
  OceanModel m(w.cfg, w.grid, w.bathy);
  m.init_climatology();
  EXPECT_FALSE(has_non_finite(m.temperature()));
  EXPECT_FALSE(has_non_finite(m.salinity()));
  const auto d = m.diagnostics();
  // Initial SST follows the analytic climatology: warm global mean.
  EXPECT_GT(d.mean_sst, 5.0);
  EXPECT_LT(d.mean_sst, 25.0);
  // Thermal-wind init gives gentle currents, not a shock.
  EXPECT_LT(d.max_speed, 1.0);
}

TEST(OceanModel, CflGuardRejectsBadConfigs) {
  SmallOcean w;
  OceanConfig bad = w.cfg;
  bad.split_barotropic = false;
  bad.slow_factor = 1.0;  // full-speed waves with a 1-hour step
  EXPECT_THROW(OceanModel(bad, w.grid, w.bathy), Error);
}

TEST(OceanModel, TenDaysStableUnforced) {
  SmallOcean w;
  OceanModel m(w.cfg, w.grid, w.bathy);
  m.init_climatology();
  m.run_days(10.0);
  EXPECT_FALSE(has_non_finite(m.temperature()));
  EXPECT_FALSE(has_non_finite(m.eta()));
  const auto d = m.diagnostics();
  EXPECT_LT(d.max_speed, 3.0);
  EXPECT_LT(d.max_eta, 20.0);
  // Volume-mean temperature moves little without surface forcing.
  EXPECT_NEAR(d.mean_temp_3d, 4.0, 3.0);
}

TEST(OceanModel, WindDrivesCirculation) {
  SmallOcean w;
  OceanModel m(w.cfg, w.grid, w.bathy);
  m.init_climatology();
  Field2Dd taux(48, 48, 0.3), tauy(48, 48, 0.0);  // strong westerly
  OceanForcing wind;
  wind.wind_x = &taux;
  wind.wind_y = &tauy;
  m.set_forcing(wind);
  m.run_days(5.0);
  // Twin run without wind: the westerly must push the mean surface flow
  // eastward relative to the calm twin.
  OceanModel calm(w.cfg, w.grid, w.bathy);
  calm.init_climatology();
  calm.run_days(5.0);
  double du = 0.0;
  int n = 0;
  for (int j = 0; j < 48; ++j)
    for (int i = 0; i < 48; ++i)
      if (m.levels()(i, j) > 0) {
        du += m.u_total(i, j, 0) - calm.u_total(i, j, 0);
        ++n;
      }
  EXPECT_GT(du / n, 0.005);
  EXPECT_FALSE(has_non_finite(m.temperature()));
}

TEST(OceanModel, HeatFluxWarmsSurface) {
  SmallOcean w;
  OceanModel m(w.cfg, w.grid, w.bathy);
  m.init_climatology();
  Field2Dd q(48, 48, 100.0);  // uniform 100 W/m^2 in
  OceanForcing heating;
  heating.heat = &q;
  m.set_forcing(heating);
  m.run_days(5.0);
  // Twin run without heating isolates the flux response from the model's
  // internal adjustment drift: 100 W/m^2 into a 25 m layer over 5 days is
  // ~0.42 K.
  OceanModel twin(w.cfg, w.grid, w.bathy);
  twin.init_climatology();
  twin.run_days(5.0);
  const double dt_flux =
      m.diagnostics().mean_sst - twin.diagnostics().mean_sst;
  EXPECT_GT(dt_flux, 0.2);
  EXPECT_LT(dt_flux, 0.8);
}

TEST(OceanModel, FreezeClampProducesFrazil) {
  SmallOcean w;
  OceanModel m(w.cfg, w.grid, w.bathy);
  m.init_climatology();
  Field2Dd q(48, 48, -600.0);  // strong cooling everywhere
  OceanForcing cooling;
  cooling.heat = &q;
  m.set_forcing(cooling);
  m.run_days(5.0);
  const auto d = m.diagnostics();
  EXPECT_GT(d.frazil_heat, 0.0);
  // SST never falls below the clamp.
  const Field2Dd sst = m.sst();
  for (int j = 0; j < 48; ++j)
    for (int i = 0; i < 48; ++i)
      if (m.levels()(i, j) > 0) {
        EXPECT_GE(sst(i, j), foam::constants::sea_ice_freeze_c - 1e-9);
      }
  Field2Dd frazil = m.drain_frazil();
  EXPECT_GT(frazil.max(), 0.0);
  // Draining resets the accumulator.
  frazil = m.drain_frazil();
  EXPECT_DOUBLE_EQ(frazil.max_abs(), 0.0);
}

TEST(OceanModel, FreshwaterRaisesEtaAndFreshens) {
  SmallOcean w;
  OceanModel m(w.cfg, w.grid, w.bathy);
  m.init_climatology();
  const double s0 = m.salinity()(24, 24, 0);
  Field2Dd fw(48, 48, 1.0e-7);  // ~8.6 mm/day everywhere
  OceanForcing rain;
  rain.freshwater = &fw;
  m.set_forcing(rain);
  m.run_days(5.0);
  EXPECT_LT(m.salinity()(24, 24, 0), s0);
  EXPECT_GT(m.eta().mean(), 0.0);
}

TEST(OceanModel, WorkCounterTracksConfiguration) {
  SmallOcean w;
  OceanModel full(w.cfg, w.grid, w.bathy);
  full.init_climatology();
  full.run_days(1.0);

  OceanConfig cheap = w.cfg;
  cheap.tracer_every = 4;  // fewer tracer steps -> less work
  OceanModel lazy(cheap, w.grid, w.bathy);
  lazy.init_climatology();
  lazy.run_days(1.0);
  EXPECT_GT(full.work_points(), lazy.work_points());
}

TEST(OceanModel, SplitFoamOceanCheaperThanConventional) {
  // The ~10x formulation claim, in miniature: per simulated day the FOAM
  // configuration performs far fewer grid-point updates than the
  // conventional explicit free-surface configuration.
  SmallOcean w;
  OceanModel foam_ocean(w.cfg, w.grid, w.bathy);
  foam_ocean.init_climatology();
  foam_ocean.run_days(0.5);
  const double foam_work = foam_ocean.work_points();

  OceanConfig conv = OceanConfig::testing(48, 48, 8);
  conv.split_barotropic = false;
  conv.slow_factor = 1.0;
  conv.tracer_every = 1;
  conv.dt_mom = 60.0;
  OceanModel baseline(conv, w.grid, w.bathy);
  baseline.init_climatology();
  baseline.run_days(0.5);
  const double conv_work = baseline.work_points();
  EXPECT_GT(conv_work / foam_work, 5.0)
      << "conventional formulation should cost several times more";
}

TEST(OceanModel, ParallelMatchesSerialClosely) {
  SmallOcean w;
  OceanModel serial(w.cfg, w.grid, w.bathy);
  serial.init_climatology();
  for (int s = 0; s < 12; ++s) serial.step();
  const auto ds = serial.diagnostics();

  par::run(3, [&](par::Comm& comm) {
    OceanModel m(w.cfg, w.grid, w.bathy, &comm);
    m.init_climatology();
    for (int s = 0; s < 12; ++s) m.step();
    const auto dp = m.diagnostics();
    // State evolution is halo-exchange only: decomposition must not change
    // the answer beyond reduction rounding in the diagnostics.
    EXPECT_NEAR(dp.mean_sst, ds.mean_sst, 1e-9);
    EXPECT_NEAR(dp.mean_temp_3d, ds.mean_temp_3d, 1e-9);
    EXPECT_NEAR(dp.mean_kinetic, ds.mean_kinetic,
                1e-9 * std::max(1e-12, ds.mean_kinetic));
    // Gathered SST matches the serial field.
    const Field2Dd sst = m.gather(m.sst());
    const Field2Dd ref = serial.sst();
    double max_diff = 0.0;
    for (int j = 0; j < 48; ++j)
      for (int i = 0; i < 48; ++i)
        max_diff = std::max(max_diff, std::abs(sst(i, j) - ref(i, j)));
    EXPECT_LT(max_diff, 1e-12);
  });
}

TEST(OceanModel, IceFractionScalesStress) {
  SmallOcean w;
  OceanModel no_ice(w.cfg, w.grid, w.bathy);
  no_ice.init_climatology();
  OceanModel iced(w.cfg, w.grid, w.bathy);
  iced.init_climatology();
  Field2Dd taux(48, 48, 0.1), tauy(48, 48, 0.0);
  OceanForcing wind;
  wind.wind_x = &taux;
  wind.wind_y = &tauy;
  no_ice.set_forcing(wind);
  Field2Dd ice(48, 48, 1.0);
  OceanForcing windy_ice = wind;
  windy_ice.ice = &ice;
  iced.set_forcing(windy_ice);
  no_ice.run_days(2.0);
  iced.run_days(2.0);
  // Full ice cover divides the stress by 15: less wind-driven energy.
  EXPECT_LT(iced.diagnostics().mean_kinetic,
            no_ice.diagnostics().mean_kinetic);
}

TEST(OceanModel, SetForcingIsAtomic) {
  SmallOcean w;
  OceanModel m(w.cfg, w.grid, w.bathy);
  m.init_climatology();
  Field2Dd good(48, 48, 0.1), bad(24, 24, 1.0);
  // A bundle with one malformed field must be rejected whole: the valid
  // wind components must not have been applied.
  OceanForcing f;
  f.wind_x = &good;
  f.wind_y = &good;
  f.heat = &bad;
  EXPECT_THROW(m.set_forcing(f), Error);
  OceanModel calm(w.cfg, w.grid, w.bathy);
  calm.init_climatology();
  m.run_days(2.0);
  calm.run_days(2.0);
  // Same evolution as the never-forced twin: the wind was not applied.
  EXPECT_DOUBLE_EQ(m.diagnostics().mean_kinetic,
                   calm.diagnostics().mean_kinetic);
  // Wind components must come as a pair.
  OceanForcing lonely;
  lonely.wind_x = &good;
  EXPECT_THROW(m.set_forcing(lonely), Error);
}

TEST(OceanModel, DeprecatedSettersStillForward) {
  SmallOcean w;
  OceanModel via_shim(w.cfg, w.grid, w.bathy);
  via_shim.init_climatology();
  OceanModel via_bundle(w.cfg, w.grid, w.bathy);
  via_bundle.init_climatology();
  Field2Dd taux(48, 48, 0.2), tauy(48, 48, 0.05), q(48, 48, 50.0);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  via_shim.set_wind_stress(taux, tauy);
  via_shim.set_heat_flux(q);
#pragma GCC diagnostic pop
  OceanForcing f;
  f.wind_x = &taux;
  f.wind_y = &tauy;
  f.heat = &q;
  via_bundle.set_forcing(f);
  via_shim.run_days(2.0);
  via_bundle.run_days(2.0);
  EXPECT_DOUBLE_EQ(via_shim.diagnostics().mean_kinetic,
                   via_bundle.diagnostics().mean_kinetic);
  EXPECT_DOUBLE_EQ(via_shim.diagnostics().mean_sst,
                   via_bundle.diagnostics().mean_sst);
}

/// Run `steps` forced steps serially and under the given rank grid, then
/// require the gathered SST and free surface to match the serial fields
/// bitwise: decomposition must not change a single bit of the state.
void expect_layout_bitwise(int nranks, int px, int steps) {
  SmallOcean w;
  Field2Dd taux(48, 48, 0.0), tauy(48, 48, 0.02);
  for (int j = 0; j < 48; ++j)
    for (int i = 0; i < 48; ++i)
      taux(i, j) = analytic_zonal_stress(w.grid.lat(j));
  OceanForcing wind;
  wind.wind_x = &taux;
  wind.wind_y = &tauy;

  OceanModel serial(w.cfg, w.grid, w.bathy);
  serial.init_climatology();
  serial.set_forcing(wind);
  for (int s = 0; s < steps; ++s) serial.step();
  const Field2Dd ref_sst = serial.sst();
  const Field2Dd& ref_eta = serial.eta();

  par::run(nranks, [&](par::Comm& comm) {
    OceanModel m(w.cfg, w.grid, w.bathy, &comm, px);
    m.init_climatology();
    m.set_forcing(wind);
    for (int s = 0; s < steps; ++s) m.step();
    const Field2Dd sst = m.gather(m.sst());
    const Field2Dd eta = m.gather(m.eta());
    for (int j = 0; j < 48; ++j) {
      for (int i = 0; i < 48; ++i) {
        ASSERT_EQ(sst(i, j), ref_sst(i, j))
            << "sst differs at (" << i << "," << j << ") px=" << px;
        ASSERT_EQ(eta(i, j), ref_eta(i, j))
            << "eta differs at (" << i << "," << j << ") px=" << px;
      }
    }
  });
}

TEST(OceanModel, TwoByTwoMatchesSerialBitwise) {
  expect_layout_bitwise(4, 2, 12);
}

TEST(OceanModel, FourByOneMatchesSerialBitwise) {
  expect_layout_bitwise(4, 4, 12);
}

TEST(OceanModel, TwoByThreeMatchesSerialBitwise) {
  expect_layout_bitwise(6, 2, 8);
}

TEST(OceanModel, RejectsIndivisibleRankGrid) {
  SmallOcean w;
  par::run(3, [&](par::Comm& comm) {
    EXPECT_THROW(OceanModel(w.cfg, w.grid, w.bathy, &comm, 2), Error);
  });
}

TEST(OceanModel, AblationSwitchesRun) {
  SmallOcean w;
  for (auto mod : {0, 1, 2, 3}) {
    OceanConfig c = w.cfg;
    if (mod == 1) c.enable_horiz_adv = false;
    if (mod == 2) c.enable_vert_adv = false;
    if (mod == 3) c.enable_baroclinic_pg = false;
    OceanModel m(c, w.grid, w.bathy);
    m.init_climatology();
    m.run_days(1.0);
    EXPECT_FALSE(has_non_finite(m.temperature())) << "mod " << mod;
  }
}

}  // namespace
}  // namespace foam::ocean
