// Parameterized sweeps over truncation/grid combinations: the spectral
// transform's defining properties must hold at every resolution the code
// accepts, not just R15.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>

#include "numerics/spectral.hpp"

namespace foam::numerics {
namespace {

using cplx = std::complex<double>;

/// (mmax, nlon, nlat)
using Truncation = std::tuple<int, int, int>;

class SpectralTruncationSweep
    : public ::testing::TestWithParam<Truncation> {};

TEST_P(SpectralTruncationSweep, RoundTripIdentity) {
  const auto [mmax, nlon, nlat] = GetParam();
  GaussianGrid grid(nlon, nlat);
  SpectralTransform st(grid, mmax);
  std::mt19937 rng(mmax * 100 + nlon);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  SpectralField s(mmax, mmax + 1);
  for (int m = 0; m <= mmax; ++m)
    for (int k = 0; k < mmax + 1; ++k)
      s.at(m, k) =
          (m == 0) ? cplx(dist(rng), 0.0) : cplx(dist(rng), dist(rng));
  const Field2Dd g = st.synthesize(s);
  const SpectralField back = st.analyze(g);
  for (int m = 0; m <= mmax; ++m)
    for (int k = 0; k < mmax + 1; ++k)
      EXPECT_NEAR(std::abs(back.at(m, k) - s.at(m, k)), 0.0, 1e-10)
          << "R" << mmax << " m=" << m << " k=" << k;
}

TEST_P(SpectralTruncationSweep, ParsevalPower) {
  const auto [mmax, nlon, nlat] = GetParam();
  GaussianGrid grid(nlon, nlat);
  SpectralTransform st(grid, mmax);
  std::mt19937 rng(mmax * 17 + nlat);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  SpectralField s(mmax, mmax + 1);
  for (int m = 0; m <= mmax; ++m)
    for (int k = 0; k < mmax + 1; ++k)
      s.at(m, k) =
          (m == 0) ? cplx(dist(rng), 0.0) : cplx(dist(rng), dist(rng));
  const Field2Dd g = st.synthesize(s);
  double ms = 0.0;
  for (int j = 0; j < nlat; ++j) {
    double row = 0.0;
    for (int i = 0; i < nlon; ++i) row += g(i, j) * g(i, j);
    ms += 0.5 * grid.gauss_weight(j) * row / nlon;
  }
  EXPECT_NEAR(s.power(), ms, 1e-9 * std::max(1.0, ms));
}

TEST_P(SpectralTruncationSweep, VorticityIdentity) {
  const auto [mmax, nlon, nlat] = GetParam();
  GaussianGrid grid(nlon, nlat);
  SpectralTransform st(grid, mmax);
  std::mt19937 rng(mmax * 31 + 7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  SpectralField psi(mmax, mmax + 1);
  for (int m = 0; m <= mmax; ++m)
    for (int k = 0; k < mmax; ++k)  // leave degree headroom
      psi.at(m, k) = 1e7 * ((m == 0) ? cplx(dist(rng), 0.0)
                                     : cplx(dist(rng), dist(rng)));
  SpectralField chi(mmax, mmax + 1);
  Field2Dd U, V;
  st.uv_from_psi_chi(psi, chi, U, V);
  const SpectralField zeta = st.analyze_curl(U, V);
  SpectralField expect(psi);
  st.laplacian(expect);
  for (int m = 0; m <= mmax; ++m)
    for (int k = 0; k < mmax; ++k)
      EXPECT_NEAR(std::abs(zeta.at(m, k) - expect.at(m, k)), 0.0, 1e-8)
          << "R" << mmax;
}

INSTANTIATE_TEST_SUITE_P(Truncations, SpectralTruncationSweep,
                         ::testing::Values(Truncation{7, 24, 20},
                                           Truncation{10, 32, 28},
                                           Truncation{15, 48, 40},
                                           Truncation{15, 64, 54},
                                           Truncation{21, 72, 56}));

}  // namespace
}  // namespace foam::numerics
