// Tests for the plan-based FFT (FftPlan) and the engine/reference agreement
// of the spectral transform's batched entry points.

#include <cmath>
#include <complex>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "numerics/fft.hpp"
#include "numerics/fft_plan.hpp"
#include "numerics/spectral.hpp"

namespace fn = foam::numerics;
using cplx = std::complex<double>;
using Field2Dd = foam::Field2Dd;

namespace {

std::vector<cplx> random_complex(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> v(n);
  for (auto& z : v) z = cplx(dist(rng), dist(rng));
  return v;
}

std::vector<double> random_real(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

}  // namespace

TEST(FftPlan, MatchesReferenceAcrossSizes) {
  // Mixed radix {2,3,5,7}, powers of two, primes (11, 101 take the direct
  // fallback), and the grid sizes the model actually uses (48, 96, 128).
  for (const int n : {1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 30, 35, 48, 96, 101,
                      105, 128}) {
    const fn::Fft ref(n);
    const fn::FftPlan plan(n);
    std::vector<cplx> a = random_complex(n, 1234u + n);
    std::vector<cplx> b = a;
    std::vector<cplx> work(plan.workspace_size());
    ref.forward(a);
    plan.forward(b.data(), work.data());
    for (int i = 0; i < n; ++i) {
      // The iterative plan replicates the recursion's butterflies, so the
      // complex path is bitwise identical to the reference.
      EXPECT_EQ(a[i].real(), b[i].real()) << "n=" << n << " i=" << i;
      EXPECT_EQ(a[i].imag(), b[i].imag()) << "n=" << n << " i=" << i;
    }
    ref.inverse(a);
    plan.inverse(b.data(), work.data());
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(a[i], b[i]) << "n=" << n << " i=" << i;
  }
}

TEST(FftPlan, RealRoundTripEvenAndOdd) {
  for (const int n : {2, 4, 6, 7, 9, 15, 48, 63, 96}) {
    const fn::FftPlan plan(n);
    const std::vector<double> x = random_real(n, 99u + n);
    std::vector<cplx> spec(n / 2 + 1);
    std::vector<cplx> work(plan.workspace_size());
    plan.forward_real(x.data(), spec.data(), work.data());
    std::vector<double> back(n);
    plan.inverse_real(spec.data(), back.data(), work.data());
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(back[i], x[i], 1e-13) << "n=" << n << " i=" << i;
  }
}

TEST(FftPlan, RealMatchesReference) {
  for (const int n : {2, 5, 12, 48, 96, 128}) {
    const fn::Fft ref(n);
    const fn::FftPlan plan(n);
    const std::vector<double> x = random_real(n, 7u * n + 3u);
    const std::vector<cplx> sref = ref.forward_real(x);
    std::vector<cplx> s(n / 2 + 1);
    std::vector<cplx> work(plan.workspace_size());
    plan.forward_real(x.data(), s.data(), work.data());
    double scale = 0.0;
    for (const cplx& z : sref) scale = std::max(scale, std::abs(z));
    for (int k = 0; k <= n / 2; ++k)
      EXPECT_NEAR(std::abs(s[k] - sref[k]), 0.0, 1e-14 * scale)
          << "n=" << n << " k=" << k;
  }
}

TEST(FftPlan, Parseval) {
  const int n = 48;
  const fn::FftPlan plan(n);
  const std::vector<double> x = random_real(n, 42u);
  std::vector<cplx> spec(n / 2 + 1);
  std::vector<cplx> work(plan.workspace_size());
  plan.forward_real(x.data(), spec.data(), work.data());
  double grid_power = 0.0;
  for (const double v : x) grid_power += v * v;
  // sum |X_k|^2 over the full spectrum = N * sum x_j^2; the one-sided
  // coefficients count twice except DC and (even n) Nyquist.
  double spec_power = std::norm(spec[0]) + std::norm(spec[n / 2]);
  for (int k = 1; k < n / 2; ++k) spec_power += 2.0 * std::norm(spec[k]);
  EXPECT_NEAR(spec_power, n * grid_power, 1e-10 * n * grid_power);
}

TEST(FftPlan, PrimeDirectFallback) {
  // 101 is prime > 7: the plan must fall back to the O(p^2) direct combine
  // and still agree with a brute-force DFT.
  const int n = 101;
  const fn::FftPlan plan(n);
  std::vector<cplx> a = random_complex(n, 5u);
  const std::vector<cplx> x = a;
  std::vector<cplx> work(plan.workspace_size());
  plan.forward(a.data(), work.data());
  for (int k = 0; k < n; k += 17) {  // spot-check a few bins
    cplx ref(0.0, 0.0);
    for (int j = 0; j < n; ++j) {
      const double ang = -2.0 * M_PI * j * k / n;
      ref += x[j] * cplx(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(std::abs(a[k] - ref), 0.0, 1e-11) << "k=" << k;
  }
}

// ---------------------------------------------------------------------------
// Engine vs reference over the batched spectral entry points.

namespace {

class EngineAgreement : public ::testing::TestWithParam<std::pair<int, int>> {
};

Field2Dd wavy(const fn::GaussianGrid& grid, int which) {
  Field2Dd f(grid.nlon(), grid.nlat());
  for (int j = 0; j < grid.nlat(); ++j) {
    const double mu = grid.mu(j);
    for (int i = 0; i < grid.nlon(); ++i) {
      const double lam = 2.0 * M_PI * i / grid.nlon();
      f(i, j) = std::sin((1 + which % 3) * lam) * (1.0 - mu * mu) +
                0.3 * std::cos(2.0 * lam + which) * mu + 0.05 * which;
    }
  }
  return f;
}

void expect_spec_near(const fn::SpectralField& a, const fn::SpectralField& b,
                      double tol) {
  double scale = 1e-30;
  for (int m = 0; m <= a.mmax(); ++m)
    for (int k = 0; k < a.kmax(); ++k)
      scale = std::max(scale, std::abs(a.at(m, k)));
  for (int m = 0; m <= a.mmax(); ++m)
    for (int k = 0; k < a.kmax(); ++k)
      EXPECT_NEAR(std::abs(a.at(m, k) - b.at(m, k)), 0.0, tol * scale)
          << "m=" << m << " k=" << k;
}

void expect_grid_near(const Field2Dd& a, const Field2Dd& b, double tol) {
  double scale = 1e-30;
  for (std::size_t i = 0; i < a.size(); ++i)
    scale = std::max(scale, std::abs(a.vec()[i]));
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a.vec()[i], b.vec()[i], tol * scale) << "i=" << i;
}

}  // namespace

// Even nlat (all rows mirror-paired) and odd nlat (unpaired equator row).
INSTANTIATE_TEST_SUITE_P(Grids, EngineAgreement,
                         ::testing::Values(std::pair<int, int>{24, 20},
                                           std::pair<int, int>{24, 11}));

TEST_P(EngineAgreement, AllBatchEntryPoints) {
  const auto [nlon, nlat] = GetParam();
  const int mmax = 7;
  const fn::GaussianGrid grid(nlon, nlat);
  fn::SpectralTransform st(grid, mmax, fn::SpectralMode::kReference);
  fn::SpectralWorkspace ws;
  const double tol = 1e-12;

  const int batch = 3;
  std::vector<Field2Dd> As, Bs;
  std::vector<const Field2Dd*> a_ptrs, b_ptrs;
  for (int f = 0; f < batch; ++f) {
    As.push_back(wavy(grid, f));
    Bs.push_back(wavy(grid, f + batch));
  }
  for (int f = 0; f < batch; ++f) {
    a_ptrs.push_back(&As[f]);
    b_ptrs.push_back(&Bs[f]);
  }

  // Reference results (batch under kReference loops the reference paths).
  const auto s_ref = st.analyze_batch(a_ptrs, ws);
  const auto d_ref = st.analyze_div_batch(a_ptrs, b_ptrs, ws);
  const auto c_ref = st.analyze_curl_batch(a_ptrs, b_ptrs, ws);
  std::vector<const fn::SpectralField*> s_ptrs;
  for (const auto& s : s_ref) s_ptrs.push_back(&s);
  std::vector<Field2Dd> g_ref(batch, Field2Dd(nlon, nlat));
  std::vector<Field2Dd*> gr_ptrs;
  for (auto& g : g_ref) gr_ptrs.push_back(&g);
  st.synthesize_batch(s_ptrs, gr_ptrs, ws);
  std::vector<Field2Dd> u_ref(batch, Field2Dd(nlon, nlat)),
      v_ref(batch, Field2Dd(nlon, nlat));
  std::vector<Field2Dd*> ur_ptrs, vr_ptrs;
  for (int f = 0; f < batch; ++f) {
    ur_ptrs.push_back(&u_ref[f]);
    vr_ptrs.push_back(&v_ref[f]);
  }
  // psi/chi from the analyzed fields (d_ref as chi exercise both terms).
  std::vector<const fn::SpectralField*> psi_ptrs, chi_ptrs;
  for (int f = 0; f < batch; ++f) {
    psi_ptrs.push_back(&s_ref[f]);
    chi_ptrs.push_back(&c_ref[f]);
  }
  st.uv_from_psi_chi_batch(psi_ptrs, chi_ptrs, ur_ptrs, vr_ptrs, ws);

  // Engine results.
  st.set_mode(fn::SpectralMode::kEngine);
  const auto s_eng = st.analyze_batch(a_ptrs, ws);
  const auto d_eng = st.analyze_div_batch(a_ptrs, b_ptrs, ws);
  const auto c_eng = st.analyze_curl_batch(a_ptrs, b_ptrs, ws);
  std::vector<Field2Dd> g_eng(batch, Field2Dd(nlon, nlat));
  std::vector<Field2Dd*> ge_ptrs;
  for (auto& g : g_eng) ge_ptrs.push_back(&g);
  st.synthesize_batch(s_ptrs, ge_ptrs, ws);
  std::vector<Field2Dd> u_eng(batch, Field2Dd(nlon, nlat)),
      v_eng(batch, Field2Dd(nlon, nlat));
  std::vector<Field2Dd*> ue_ptrs, ve_ptrs;
  for (int f = 0; f < batch; ++f) {
    ue_ptrs.push_back(&u_eng[f]);
    ve_ptrs.push_back(&v_eng[f]);
  }
  st.uv_from_psi_chi_batch(psi_ptrs, chi_ptrs, ue_ptrs, ve_ptrs, ws);

  for (int f = 0; f < batch; ++f) {
    expect_spec_near(s_ref[f], s_eng[f], tol);
    expect_spec_near(d_ref[f], d_eng[f], tol);
    expect_spec_near(c_ref[f], c_eng[f], tol);
    expect_grid_near(g_ref[f], g_eng[f], tol);
    expect_grid_near(u_ref[f], u_eng[f], tol);
    expect_grid_near(v_ref[f], v_eng[f], tol);
  }

  // Single-field entry points agree with their batch-of-one selves.
  const fn::SpectralField s1 = st.analyze(As[0], ws);
  expect_spec_near(s1, s_eng[0], 0.0);
}
