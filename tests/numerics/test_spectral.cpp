#include "numerics/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "base/constants.hpp"
#include "par/decomp.hpp"

namespace foam::numerics {
namespace {

using constants::earth_radius;
using cplx = std::complex<double>;

/// R15 configuration used by the FOAM atmosphere.
struct R15 {
  R15() : grid(48, 40), st(grid, 15) {}
  GaussianGrid grid;
  SpectralTransform st;
};

SpectralField random_spectral(int mmax, int kmax, unsigned seed) {
  SpectralField s(mmax, kmax);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int m = 0; m <= mmax; ++m)
    for (int k = 0; k < kmax; ++k)
      s.at(m, k) = (m == 0) ? cplx(dist(rng), 0.0)
                            : cplx(dist(rng), dist(rng));
  return s;
}

TEST(Spectral, SynthesizeAnalyzeIsIdentityOnTruncatedFields) {
  R15 r;
  const SpectralField s = random_spectral(15, 16, 11);
  const Field2Dd g = r.st.synthesize(s);
  const SpectralField back = r.st.analyze(g);
  for (int m = 0; m <= 15; ++m)
    for (int k = 0; k < 16; ++k) {
      EXPECT_NEAR(back.at(m, k).real(), s.at(m, k).real(), 1e-10)
          << "m=" << m << " k=" << k;
      EXPECT_NEAR(back.at(m, k).imag(), s.at(m, k).imag(), 1e-10)
          << "m=" << m << " k=" << k;
    }
}

TEST(Spectral, ConstantFieldMapsToMeanCoefficient) {
  R15 r;
  Field2Dd g(48, 40, 3.25);
  const SpectralField s = r.st.analyze(g);
  EXPECT_NEAR(s.at(0, 0).real(), 3.25, 1e-12);
  for (int m = 0; m <= 15; ++m)
    for (int k = 0; k < 16; ++k)
      if (!(m == 0 && k == 0)) {
        EXPECT_NEAR(std::abs(s.at(m, k)), 0.0, 1e-12);
      }
}

TEST(Spectral, SphericalHarmonicIsLaplacianEigenfunction) {
  R15 r;
  // Y_n^m with (m, n) = (3, 7): put a single coefficient, synthesize,
  // analyze the Laplacian and compare with the eigenvalue.
  SpectralField s(15, 16);
  s.at(3, 4) = cplx(1.0, 0.5);  // n = 3 + 4 = 7
  SpectralField lap(s);
  r.st.laplacian(lap);
  const double expected = -7.0 * 8.0 / (earth_radius * earth_radius);
  EXPECT_NEAR(lap.at(3, 4).real(), expected * 1.0, std::abs(expected) * 1e-12);
  EXPECT_NEAR(lap.at(3, 4).imag(), expected * 0.5, std::abs(expected) * 1e-12);
}

TEST(Spectral, InverseLaplacianInvertsAwayFromN0) {
  R15 r;
  SpectralField s = random_spectral(15, 16, 21);
  SpectralField t(s);
  r.st.laplacian(t);
  r.st.inverse_laplacian(t);
  for (int m = 0; m <= 15; ++m)
    for (int k = 0; k < 16; ++k) {
      if (m == 0 && k == 0) {
        EXPECT_NEAR(std::abs(t.at(0, 0)), 0.0, 1e-14);
      } else {
        EXPECT_NEAR(t.at(m, k).real(), s.at(m, k).real(), 1e-11);
        EXPECT_NEAR(t.at(m, k).imag(), s.at(m, k).imag(), 1e-11);
      }
    }
}

TEST(Spectral, PowerMatchesAreaWeightedMeanSquare) {
  R15 r;
  const SpectralField s = random_spectral(15, 16, 31);
  const Field2Dd g = r.st.synthesize(s);
  // Area-weighted mean square over the Gaussian grid.
  double ms = 0.0;
  for (int j = 0; j < 40; ++j) {
    double row = 0.0;
    for (int i = 0; i < 48; ++i) row += g(i, j) * g(i, j);
    ms += 0.5 * r.grid.gauss_weight(j) * row / 48.0;
  }
  EXPECT_NEAR(s.power(), ms, 1e-10 * std::max(1.0, ms));
}

TEST(Spectral, CurlOfPsiWindsRecoversVorticity) {
  // U, V from a pure streamfunction psi: analyze_curl(U, V) must equal
  // laplacian(psi) — the core identity of the vorticity-divergence dycore.
  R15 r;
  SpectralField psi = random_spectral(15, 16, 41);
  psi *= 1.0e7;  // physical streamfunction magnitude [m^2/s]
  // Zero the last total wavenumber rows to leave headroom: the winds of a
  // degree-n streamfunction have degree n+1 content.
  for (int m = 0; m <= 15; ++m) psi.at(m, 15) = cplx(0.0, 0.0);
  SpectralField chi(15, 16);  // zero
  Field2Dd U, V;
  r.st.uv_from_psi_chi(psi, chi, U, V);
  const SpectralField zeta = r.st.analyze_curl(U, V);
  SpectralField expected(psi);
  r.st.laplacian(expected);
  for (int m = 0; m <= 15; ++m)
    for (int k = 0; k < 15; ++k) {
      EXPECT_NEAR(zeta.at(m, k).real(), expected.at(m, k).real(), 1e-9)
          << "m=" << m << " k=" << k;
      EXPECT_NEAR(zeta.at(m, k).imag(), expected.at(m, k).imag(), 1e-9)
          << "m=" << m << " k=" << k;
    }
}

TEST(Spectral, DivOfChiWindsRecoversDivergence) {
  R15 r;
  SpectralField chi = random_spectral(15, 16, 43);
  chi *= 1.0e7;  // physical velocity-potential magnitude [m^2/s]
  for (int m = 0; m <= 15; ++m) chi.at(m, 15) = cplx(0.0, 0.0);
  SpectralField psi(15, 16);
  Field2Dd U, V;
  r.st.uv_from_psi_chi(psi, chi, U, V);
  const SpectralField div = r.st.analyze_div(U, V);
  SpectralField expected(chi);
  r.st.laplacian(expected);
  for (int m = 0; m <= 15; ++m)
    for (int k = 0; k < 15; ++k) {
      EXPECT_NEAR(div.at(m, k).real(), expected.at(m, k).real(), 1e-9);
      EXPECT_NEAR(div.at(m, k).imag(), expected.at(m, k).imag(), 1e-9);
    }
}

TEST(Spectral, PsiWindsAreNonDivergent) {
  R15 r;
  SpectralField psi = random_spectral(15, 16, 47);
  psi *= 1.0e7;
  for (int m = 0; m <= 15; ++m) psi.at(m, 15) = cplx(0.0, 0.0);
  SpectralField chi(15, 16);
  Field2Dd U, V;
  r.st.uv_from_psi_chi(psi, chi, U, V);
  const SpectralField div = r.st.analyze_div(U, V);
  for (int m = 0; m <= 15; ++m)
    for (int k = 0; k < 15; ++k)
      EXPECT_NEAR(std::abs(div.at(m, k)), 0.0, 1e-9)
          << "m=" << m << " k=" << k;
}

TEST(Spectral, DdlonMultipliesByIm) {
  R15 r;
  SpectralField s = random_spectral(15, 16, 53);
  const SpectralField d = r.st.d_dlon(s);
  for (int m = 0; m <= 15; ++m)
    for (int k = 0; k < 16; ++k) {
      const cplx expected = cplx(0.0, static_cast<double>(m)) * s.at(m, k);
      EXPECT_NEAR(d.at(m, k).real(), expected.real(), 1e-14);
      EXPECT_NEAR(d.at(m, k).imag(), expected.imag(), 1e-14);
    }
}

TEST(Spectral, RejectsTooCoarseGrids) {
  GaussianGrid tiny(32, 20);
  EXPECT_THROW(SpectralTransform(tiny, 15), Error);  // nlon < 3*15+1
}

class ParSpectralRanks : public ::testing::TestWithParam<int> {};

TEST_P(ParSpectralRanks, MatchesSerialTransform) {
  const int nranks = GetParam();
  R15 r;
  const SpectralField s_in = random_spectral(15, 16, 61);
  const Field2Dd g_ref = r.st.synthesize(s_in);
  const SpectralField spec_ref = r.st.analyze(g_ref);

  par::run(nranks, [&](par::Comm& comm) {
    const auto owned = par::paired_latitudes(40, comm.size());
    ParSpectralTransform pst(r.st, owned[comm.rank()]);
    // Parallel analysis of the full grid field (each rank reads only its
    // own latitude rows).
    const SpectralField spec = pst.analyze(comm, g_ref);
    for (int m = 0; m <= 15; ++m)
      for (int k = 0; k < 16; ++k)
        EXPECT_NEAR(std::abs(spec.at(m, k) - spec_ref.at(m, k)), 0.0, 1e-11);
    // Parallel synthesis fills only owned rows; assemble and compare.
    Field2Dd local(48, 40, 0.0);
    pst.synthesize(spec, local);
    for (const int j : owned[comm.rank()])
      for (int i = 0; i < 48; ++i)
        EXPECT_NEAR(local(i, j), g_ref(i, j), 1e-10);
  });
}

TEST_P(ParSpectralRanks, ParallelCurlMatchesSerial) {
  const int nranks = GetParam();
  R15 r;
  SpectralField psi = random_spectral(15, 16, 67);
  psi *= 1.0e7;
  for (int m = 0; m <= 15; ++m) psi.at(m, 15) = cplx(0.0, 0.0);
  SpectralField chi(15, 16);
  Field2Dd U, V;
  r.st.uv_from_psi_chi(psi, chi, U, V);
  const SpectralField ref = r.st.analyze_curl(U, V);

  par::run(nranks, [&](par::Comm& comm) {
    const auto owned = par::paired_latitudes(40, comm.size());
    ParSpectralTransform pst(r.st, owned[comm.rank()]);
    const SpectralField curl = pst.analyze_curl(comm, U, V);
    for (int m = 0; m <= 15; ++m)
      for (int k = 0; k < 16; ++k)
        EXPECT_NEAR(std::abs(curl.at(m, k) - ref.at(m, k)), 0.0, 1e-11);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParSpectralRanks,
                         ::testing::Values(1, 2, 4, 5));

}  // namespace
}  // namespace foam::numerics
