#include "numerics/eig.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "base/error.hpp"

namespace foam::numerics {
namespace {

TEST(Jacobi, DiagonalMatrix) {
  const std::vector<double> m = {3, 0, 0, 0, 1, 0, 0, 0, 2};
  const auto r = jacobi_eigensolver(m, 3);
  EXPECT_NEAR(r.values[0], 3.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
  EXPECT_NEAR(r.values[2], 1.0, 1e-12);
}

TEST(Jacobi, Known2x2) {
  // [[2,1],[1,2]] -> eigenvalues 3 and 1.
  const std::vector<double> m = {2, 1, 1, 2};
  const auto r = jacobi_eigensolver(m, 2);
  EXPECT_NEAR(r.values[0], 3.0, 1e-12);
  EXPECT_NEAR(r.values[1], 1.0, 1e-12);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(r.vectors[0][0]), 1.0 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(r.vectors[0][0], r.vectors[0][1], 1e-10);
}

TEST(Jacobi, RandomSymmetricSatisfiesAvEqualsLambdaV) {
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const int n = 12;
  std::vector<double> m(n * n);
  for (int i = 0; i < n; ++i)
    for (int j = i; j < n; ++j) {
      const double v = dist(rng);
      m[i * n + j] = v;
      m[j * n + i] = v;
    }
  const auto r = jacobi_eigensolver(m, n);
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      double av = 0.0;
      for (int j = 0; j < n; ++j) av += m[i * n + j] * r.vectors[k][j];
      EXPECT_NEAR(av, r.values[k] * r.vectors[k][i], 1e-9)
          << "mode " << k << " row " << i;
    }
  }
}

TEST(Jacobi, EigenvectorsOrthonormal) {
  std::mt19937 rng(29);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const int n = 10;
  std::vector<double> m(n * n);
  for (int i = 0; i < n; ++i)
    for (int j = i; j < n; ++j) {
      const double v = dist(rng);
      m[i * n + j] = v;
      m[j * n + i] = v;
    }
  const auto r = jacobi_eigensolver(m, n);
  for (int k1 = 0; k1 < n; ++k1)
    for (int k2 = 0; k2 < n; ++k2) {
      double dot = 0.0;
      for (int i = 0; i < n; ++i) dot += r.vectors[k1][i] * r.vectors[k2][i];
      EXPECT_NEAR(dot, k1 == k2 ? 1.0 : 0.0, 1e-10);
    }
}

TEST(Jacobi, TraceAndSumOfEigenvalues) {
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  const int n = 8;
  std::vector<double> m(n * n);
  double trace = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = dist(rng);
      m[i * n + j] = v;
      m[j * n + i] = v;
    }
    trace += m[i * n + i];
  }
  const auto r = jacobi_eigensolver(m, n);
  double sum = 0.0;
  for (const double v : r.values) sum += v;
  EXPECT_NEAR(sum, trace, 1e-10);
  for (int k = 1; k < n; ++k) EXPECT_LE(r.values[k], r.values[k - 1] + 1e-12);
}

TEST(Jacobi, ToleratesSlightAsymmetry) {
  std::vector<double> m = {2, 1.0 + 1e-13, 1.0 - 1e-13, 2};
  const auto r = jacobi_eigensolver(m, 2);
  EXPECT_NEAR(r.values[0], 3.0, 1e-10);
}

TEST(Jacobi, RankOneCovariance) {
  // Covariance of a single pattern: one positive eigenvalue, rest ~0.
  const int n = 6;
  std::vector<double> u = {1, -2, 3, 0.5, -1, 2};
  std::vector<double> m(n * n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m[i * n + j] = u[i] * u[j];
  const auto r = jacobi_eigensolver(m, n);
  double norm2 = 0.0;
  for (const double v : u) norm2 += v * v;
  EXPECT_NEAR(r.values[0], norm2, 1e-9);
  for (int k = 1; k < n; ++k) EXPECT_NEAR(r.values[k], 0.0, 1e-9);
}

TEST(Jacobi, RejectsBadSize) {
  EXPECT_THROW(jacobi_eigensolver({1, 2, 3}, 2), Error);
  EXPECT_THROW(jacobi_eigensolver({}, 0), Error);
}

}  // namespace
}  // namespace foam::numerics
