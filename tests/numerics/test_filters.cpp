#include "numerics/filters.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "base/constants.hpp"

namespace foam::numerics {
namespace {

using constants::pi;

Field2D<int> all_ocean(int nx, int ny) { return Field2D<int>(nx, ny, 1); }

TEST(PolarFilter, IdentityEquatorwardOfCriticalLatitude) {
  MercatorGrid grid(64, 64, 78.0);
  PolarFourierFilter filter(grid, 60.0);
  Field2Dd f(64, 64);
  for (int j = 0; j < 64; ++j)
    for (int i = 0; i < 64; ++i) f(i, j) = std::sin(0.7 * i) + 0.1 * j;
  Field2Dd orig(f);
  filter.apply(f);
  for (int j = 0; j < 64; ++j) {
    if (std::abs(grid.lat(j)) * 180.0 / pi < 59.0) {
      for (int i = 0; i < 64; ++i)
        EXPECT_NEAR(f(i, j), orig(i, j), 1e-12) << "j=" << j;
    }
  }
}

TEST(PolarFilter, PreservesZonalMean) {
  MercatorGrid grid(64, 64, 78.0);
  PolarFourierFilter filter(grid, 60.0);
  Field2Dd f(64, 64);
  for (int j = 0; j < 64; ++j)
    for (int i = 0; i < 64; ++i) f(i, j) = 3.0 + std::cos(2.0 * pi * 13.0 * i / 64.0);
  std::vector<double> mean_before(64, 0.0);
  for (int j = 0; j < 64; ++j)
    for (int i = 0; i < 64; ++i) mean_before[j] += f(i, j) / 64.0;
  filter.apply(f);
  for (int j = 0; j < 64; ++j) {
    double mean = 0.0;
    for (int i = 0; i < 64; ++i) mean += f(i, j) / 64.0;
    EXPECT_NEAR(mean, mean_before[j], 1e-12) << "j=" << j;
  }
}

TEST(PolarFilter, DampsHighWavenumbersNearPole) {
  MercatorGrid grid(64, 64, 78.0);
  PolarFourierFilter filter(grid, 60.0);
  const int j_polar = 63;  // northernmost row
  ASSERT_GT(std::abs(grid.lat(j_polar)) * 180.0 / pi, 70.0);
  Field2Dd f(64, 64, 0.0);
  const int m = 30;  // near-Nyquist zonal wave
  for (int i = 0; i < 64; ++i)
    f(i, j_polar) = std::cos(2.0 * pi * m * i / 64.0);
  filter.apply(f);
  double amp = 0.0;
  for (int i = 0; i < 64; ++i) amp = std::max(amp, std::abs(f(i, j_polar)));
  EXPECT_LT(amp, 0.5);  // strongly attenuated
  EXPECT_GT(amp, 0.0);
}

TEST(PolarFilter, FactorProperties) {
  MercatorGrid grid(128, 128, 78.0);
  PolarFourierFilter filter(grid, 60.0);
  for (int j = 0; j < 128; ++j) {
    EXPECT_DOUBLE_EQ(filter.factor(0, j), 1.0);
    double prev = 2.0;
    for (int m = 1; m <= 64; ++m) {
      const double fac = filter.factor(m, j);
      EXPECT_LE(fac, 1.0);
      EXPECT_GE(fac, 0.0);
      EXPECT_LE(fac, prev + 1e-15);  // monotone non-increasing in m
      prev = fac;
    }
  }
}

TEST(PolarFilter, NeverAmplifies) {
  MercatorGrid grid(64, 64, 78.0);
  PolarFourierFilter filter(grid, 55.0);
  Field2Dd f(64, 64);
  for (int j = 0; j < 64; ++j)
    for (int i = 0; i < 64; ++i)
      f(i, j) = std::sin(1.3 * i + 0.2 * j) + std::cos(2.9 * i);
  const double max_before = f.max_abs();
  filter.apply(f);
  EXPECT_LE(f.max_abs(), max_before * (1.0 + 1e-12));
}

TEST(PolarFilter, MaskedApplyLeavesLandUntouched) {
  MercatorGrid grid(64, 64, 78.0);
  PolarFourierFilter filter(grid, 60.0);
  Field2Dd f(64, 64);
  Field2D<int> mask = all_ocean(64, 64);
  for (int i = 20; i < 40; ++i) mask(i, 62) = 0;  // land strip near pole
  for (int j = 0; j < 64; ++j)
    for (int i = 0; i < 64; ++i) f(i, j) = std::sin(2.1 * i) + j;
  Field2Dd orig(f);
  filter.apply(f, mask);
  for (int i = 20; i < 40; ++i)
    EXPECT_DOUBLE_EQ(f(i, 62), orig(i, 62)) << "land i=" << i;
}

TEST(LaplacianMasked, ZeroForConstantField) {
  MercatorGrid grid(32, 32, 70.0);
  Field2Dd f(32, 32, 5.0);
  Field2D<int> mask = all_ocean(32, 32);
  Field2Dd lap;
  laplacian_masked(grid, f, mask, lap);
  EXPECT_NEAR(lap.max_abs(), 0.0, 1e-18);
}

TEST(LaplacianMasked, SignOfCurvature) {
  MercatorGrid grid(32, 32, 70.0);
  Field2Dd f(32, 32, 0.0);
  Field2D<int> mask = all_ocean(32, 32);
  f(16, 16) = 1.0;  // local maximum
  Field2Dd lap;
  laplacian_masked(grid, f, mask, lap);
  EXPECT_LT(lap(16, 16), 0.0);
  EXPECT_GT(lap(15, 16), 0.0);
  EXPECT_GT(lap(16, 15), 0.0);
}

TEST(LaplacianMasked, NoFluxThroughLand) {
  // Two meridional land walls split the periodic domain into two basins,
  // each holding a different constant: with the no-flux closure the
  // Laplacian must vanish everywhere — no diffusion through land.
  MercatorGrid grid(16, 16, 70.0);
  Field2D<int> mask = all_ocean(16, 16);
  for (int j = 0; j < 16; ++j) {
    mask(0, j) = 0;
    mask(8, j) = 0;
  }
  Field2Dd f(16, 16);
  for (int j = 0; j < 16; ++j)
    for (int i = 0; i < 16; ++i) f(i, j) = (i < 8) ? 1.0 : 2.0;
  Field2Dd lap;
  laplacian_masked(grid, f, mask, lap);
  EXPECT_NEAR(lap.max_abs(), 0.0, 1e-18);
  for (int j = 0; j < 16; ++j) EXPECT_DOUBLE_EQ(lap(8, j), 0.0);
}

TEST(LaplacianMasked, PeriodicInLongitude) {
  MercatorGrid grid(16, 8, 70.0);
  Field2D<int> mask = all_ocean(16, 8);
  Field2Dd f(16, 8, 0.0);
  f(0, 4) = 1.0;
  Field2Dd lap;
  laplacian_masked(grid, f, mask, lap);
  // The cell west of i=0 wraps to i=15: it must feel the bump.
  EXPECT_GT(lap(15, 4), 0.0);
  EXPECT_GT(lap(1, 4), 0.0);
}

TEST(Biharmonic, DampsExtremaOfNoise) {
  MercatorGrid grid(32, 32, 70.0);
  Field2D<int> mask = all_ocean(32, 32);
  Field2Dd f(32, 32, 0.0);
  // Checkerboard — the grid-scale mode del^4 dissipation exists to kill.
  for (int j = 0; j < 32; ++j)
    for (int i = 0; i < 32; ++i) f(i, j) = ((i + j) % 2 == 0) ? 1.0 : -1.0;
  Field2Dd tend;
  biharmonic_tendency(grid, f, mask, 1.0e15, tend);
  // Tendency must oppose the checkerboard everywhere.
  for (int j = 2; j < 30; ++j)
    for (int i = 0; i < 32; ++i)
      EXPECT_LT(tend(i, j) * f(i, j), 0.0) << i << "," << j;
}

TEST(Biharmonic, ZeroCoefficientGivesZeroTendency) {
  MercatorGrid grid(16, 16, 70.0);
  Field2D<int> mask = all_ocean(16, 16);
  Field2Dd f(16, 16);
  for (int j = 0; j < 16; ++j)
    for (int i = 0; i < 16; ++i) f(i, j) = std::sin(0.5 * i * j);
  Field2Dd tend;
  biharmonic_tendency(grid, f, mask, 0.0, tend);
  EXPECT_DOUBLE_EQ(tend.max_abs(), 0.0);
}

}  // namespace
}  // namespace foam::numerics
