#include "numerics/gauss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "base/error.hpp"
#include "numerics/legendre.hpp"

namespace foam::numerics {
namespace {

class GaussOrders : public ::testing::TestWithParam<int> {};

TEST_P(GaussOrders, WeightsSumToTwo) {
  const auto g = gauss_legendre(GetParam());
  double sum = 0.0;
  for (const double w : g.weight) sum += w;
  EXPECT_NEAR(sum, 2.0, 1e-13);
}

TEST_P(GaussOrders, NodesAscendingAndSymmetric) {
  const int n = GetParam();
  const auto g = gauss_legendre(n);
  for (int i = 1; i < n; ++i) EXPECT_GT(g.mu[i], g.mu[i - 1]);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(g.mu[i], -g.mu[n - 1 - i], 1e-13);
    EXPECT_NEAR(g.weight[i], g.weight[n - 1 - i], 1e-13);
  }
}

TEST_P(GaussOrders, ExactForPolynomialsUpTo2nMinus1) {
  const int n = GetParam();
  const auto g = gauss_legendre(n);
  // integral of x^p over [-1,1] = 0 (odd p) or 2/(p+1) (even p).
  for (int p = 0; p <= 2 * n - 1; ++p) {
    double quad = 0.0;
    for (int i = 0; i < n; ++i) quad += g.weight[i] * std::pow(g.mu[i], p);
    const double exact = (p % 2 == 0) ? 2.0 / (p + 1) : 0.0;
    EXPECT_NEAR(quad, exact, 1e-11) << "n=" << n << " p=" << p;
  }
}

TEST_P(GaussOrders, NodesAreLegendreRoots) {
  const int n = GetParam();
  const auto g = gauss_legendre(n);
  for (const double x : g.mu) {
    // Evaluate P_n by recurrence; should vanish at each node.
    double p0 = 1.0, p1 = x;
    for (int k = 2; k <= n; ++k) {
      const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
      p0 = p1;
      p1 = p2;
    }
    const double pn = (n == 0) ? 1.0 : (n == 1 ? x : p1);
    EXPECT_NEAR(pn, 0.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussOrders,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 40, 64, 128));

TEST(Gauss, R15LatitudeCount) {
  // FOAM's atmosphere uses 40 Gaussian latitudes; spot-check the
  // outermost node against the known value of the Legendre root.
  const auto g = gauss_legendre(40);
  EXPECT_EQ(g.mu.size(), 40u);
  EXPECT_LT(g.mu.back(), 1.0);
  EXPECT_GT(g.mu.back(), 0.99);  // ~87.X degrees
}

TEST(Gauss, RejectsNonPositive) {
  EXPECT_THROW(gauss_legendre(0), Error);
  EXPECT_THROW(gauss_legendre(-3), Error);
}

}  // namespace
}  // namespace foam::numerics
