#include "numerics/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "base/constants.hpp"
#include "base/error.hpp"

namespace foam::numerics {
namespace {

using constants::two_pi;
using cplx = std::complex<double>;

class FftSizes : public ::testing::TestWithParam<int> {};

TEST_P(FftSizes, RoundTripIsIdentity) {
  const int n = GetParam();
  Fft fft(n);
  std::mt19937 rng(7 * n);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx(dist(rng), dist(rng));
  std::vector<cplx> y(x);
  fft.forward(y);
  fft.inverse(y);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-11) << "n=" << n;
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-11) << "n=" << n;
  }
}

TEST_P(FftSizes, MatchesDirectDft) {
  const int n = GetParam();
  Fft fft(n);
  std::mt19937 rng(13 * n + 1);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx(dist(rng), dist(rng));
  std::vector<cplx> fast(x);
  fft.forward(fast);
  for (int k = 0; k < n; ++k) {
    cplx direct(0.0, 0.0);
    for (int j = 0; j < n; ++j) {
      const double ang = -two_pi * j * k / n;
      direct += x[j] * cplx(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(fast[k].real(), direct.real(), 1e-9 * n) << "k=" << k;
    EXPECT_NEAR(fast[k].imag(), direct.imag(), 1e-9 * n) << "k=" << k;
  }
}

// 48 and 128 are the lengths FOAM actually uses (R15 atmosphere longitudes,
// ocean grid longitudes); the rest probe every radix path including the
// direct fallback (11, 13) and mixed factorizations.
INSTANTIATE_TEST_SUITE_P(AllRadixPaths, FftSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 13,
                                           15, 16, 20, 21, 30, 35, 48, 60, 64,
                                           100, 128));

TEST(Fft, SingleModeLandsInRightBin) {
  const int n = 48;
  Fft fft(n);
  const int m = 5;
  std::vector<double> x(n);
  for (int j = 0; j < n; ++j) x[j] = std::cos(two_pi * m * j / n);
  const auto spec = fft.forward_real(x);
  for (int k = 0; k <= n / 2; ++k) {
    const double expected = (k == m) ? n / 2.0 : 0.0;
    EXPECT_NEAR(spec[k].real(), expected, 1e-9) << "k=" << k;
    EXPECT_NEAR(spec[k].imag(), 0.0, 1e-9) << "k=" << k;
  }
}

TEST(Fft, RealRoundTrip) {
  const int n = 128;
  Fft fft(n);
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);
  const auto spec = fft.forward_real(x);
  EXPECT_EQ(spec.size(), static_cast<std::size_t>(n / 2 + 1));
  const auto back = fft.inverse_real(spec);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-11);
}

TEST(Fft, ParsevalHolds) {
  const int n = 60;
  Fft fft(n);
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx(dist(rng), dist(rng));
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  std::vector<cplx> y(x);
  fft.forward(y);
  double freq_energy = 0.0;
  for (const auto& v : y) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-9 * time_energy);
}

TEST(Fft, DcBinIsSum) {
  Fft fft(5);
  std::vector<cplx> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  fft.forward(x);
  EXPECT_NEAR(x[0].real(), 15.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), 0.0, 1e-12);
}

TEST(Fft, RejectsBadInputs) {
  EXPECT_THROW(Fft(0), Error);
  Fft fft(8);
  std::vector<cplx> wrong(7);
  EXPECT_THROW(fft.forward(wrong), Error);
  std::vector<double> wrong_real(7);
  EXPECT_THROW(fft.forward_real(wrong_real), Error);
}

}  // namespace
}  // namespace foam::numerics
