#include "numerics/legendre.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/gauss.hpp"

namespace foam::numerics {
namespace {

TEST(Legendre, LowOrderClosedForms) {
  // Pbar normalized so that (1/2) * int Pbar^2 dmu = 1.
  for (double mu : {-0.9, -0.3, 0.0, 0.5, 0.8}) {
    EXPECT_NEAR(legendre_pbar(0, 0, mu), 1.0, 1e-14);
    EXPECT_NEAR(legendre_pbar(1, 0, mu), std::sqrt(3.0) * mu, 1e-13);
    EXPECT_NEAR(legendre_pbar(2, 0, mu),
                std::sqrt(5.0) * 0.5 * (3.0 * mu * mu - 1.0), 1e-13);
    EXPECT_NEAR(legendre_pbar(1, 1, mu),
                std::sqrt(1.5) * std::sqrt(1.0 - mu * mu), 1e-13);
  }
}

TEST(Legendre, OrthonormalUnderGaussianQuadrature) {
  // (1/2) sum_j w_j Pbar_n^m Pbar_n'^m = delta_{nn'} exactly for Gaussian
  // quadrature of sufficient order — the property the spectral transform
  // relies on.
  const int nlat = 40;
  const auto g = gauss_legendre(nlat);
  const int mmax = 15;
  const int kmax = 16;
  LegendreTable table(mmax, kmax, g.mu);
  for (int m : {0, 1, 7, 15}) {
    for (int k1 = 0; k1 < kmax; k1 += 3) {
      for (int k2 = 0; k2 < kmax; k2 += 3) {
        double acc = 0.0;
        for (int j = 0; j < nlat; ++j)
          acc += 0.5 * g.weight[j] * table.p(m, k1, j) * table.p(m, k2, j);
        const double expected = (k1 == k2) ? 1.0 : 0.0;
        EXPECT_NEAR(acc, expected, 1e-11)
            << "m=" << m << " k1=" << k1 << " k2=" << k2;
      }
    }
  }
}

TEST(Legendre, TableMatchesPointEvaluation) {
  const auto g = gauss_legendre(12);
  LegendreTable table(5, 6, g.mu);
  for (int j = 0; j < 12; ++j)
    for (int m = 0; m <= 5; ++m)
      for (int k = 0; k < 6; ++k)
        EXPECT_NEAR(table.p(m, k, j), legendre_pbar(m + k, m, g.mu[j]), 1e-12);
}

TEST(Legendre, DerivativeMatchesFiniteDifference) {
  // h(m,k,j) = (1-mu^2) dPbar/dmu; check against central differences.
  const std::vector<double> mus = {-0.7, -0.2, 0.1, 0.6, 0.85};
  LegendreTable table(6, 7, mus);
  const double eps = 1e-6;
  for (std::size_t j = 0; j < mus.size(); ++j) {
    const double mu = mus[j];
    for (int m = 0; m <= 6; ++m) {
      for (int k = 0; k < 7; ++k) {
        const int n = m + k;
        const double fd = (legendre_pbar(n, m, mu + eps) -
                           legendre_pbar(n, m, mu - eps)) /
                          (2.0 * eps);
        const double expected = (1.0 - mu * mu) * fd;
        EXPECT_NEAR(table.h(m, k, j), expected, 1e-6)
            << "n=" << n << " m=" << m << " mu=" << mu;
      }
    }
  }
}

TEST(Legendre, SectoralDecaysTowardPoles) {
  // Pbar_m^m ~ (1-mu^2)^{m/2}: tiny near the poles for large m — the reason
  // high zonal wavenumbers carry no polar weight and the transform stays
  // stable without polar filtering on the Gaussian grid.
  const double near_pole = legendre_pbar(15, 15, 0.995);
  const double mid_lat = legendre_pbar(15, 15, 0.5);
  EXPECT_LT(std::abs(near_pole), 1e-10);
  EXPECT_GT(std::abs(mid_lat), 1e-4);
}

TEST(Legendre, ParityInMu) {
  // Pbar_n^m(-mu) = (-1)^{n-m} Pbar_n^m(mu).
  for (int m : {0, 2, 5}) {
    for (int k : {0, 1, 2, 3}) {
      const int n = m + k;
      const double plus = legendre_pbar(n, m, 0.37);
      const double minus = legendre_pbar(n, m, -0.37);
      const double sign = ((n - m) % 2 == 0) ? 1.0 : -1.0;
      EXPECT_NEAR(minus, sign * plus, 1e-13) << "n=" << n << " m=" << m;
    }
  }
}

}  // namespace
}  // namespace foam::numerics
