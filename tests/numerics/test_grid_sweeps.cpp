// Parameterized grid sweeps: the geometric invariants must hold at every
// resolution, not just the FOAM production sizes.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "base/constants.hpp"
#include "numerics/grid.hpp"

namespace foam::numerics {
namespace {

namespace c = foam::constants;

class GaussianGridSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GaussianGridSweep, SphereAreaClosure) {
  const auto [nlon, nlat] = GetParam();
  GaussianGrid g(nlon, nlat);
  const double sphere = 4.0 * c::pi * c::earth_radius * c::earth_radius;
  EXPECT_NEAR(g.total_area() / sphere, 1.0, 1e-12);
}

TEST_P(GaussianGridSweep, WeightsPartitionOfUnity) {
  const auto [nlon, nlat] = GetParam();
  GaussianGrid g(nlon, nlat);
  double sum = 0.0;
  for (int j = 0; j < nlat; ++j) sum += g.gauss_weight(j);
  EXPECT_NEAR(sum, 2.0, 1e-12);
  // Edges are strictly increasing and bracket centers.
  for (int j = 0; j < nlat; ++j) {
    EXPECT_LT(g.lat_edge(j), g.lat(j));
    EXPECT_LT(g.lat(j), g.lat_edge(j + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, GaussianGridSweep,
                         ::testing::Values(std::pair{24, 20},
                                           std::pair{48, 40},
                                           std::pair{96, 80},
                                           std::pair{128, 64}));

/// (nlon, nlat, lat_max or <=0 for conformal)
using MercCase = std::tuple<int, int, double>;

class MercatorGridSweep : public ::testing::TestWithParam<MercCase> {};

TEST_P(MercatorGridSweep, BandAreaClosure) {
  const auto [nlon, nlat, latmax] = GetParam();
  MercatorGrid g(nlon, nlat, latmax);
  const double top = g.lat_edge(nlat);
  const double bot = g.lat_edge(0);
  const double band = 2.0 * c::pi * c::earth_radius * c::earth_radius *
                      (std::sin(top) - std::sin(bot));
  EXPECT_NEAR(g.total_area() / band, 1.0, 1e-9);
  EXPECT_NEAR(top, -bot, 1e-12);  // symmetric about the equator
}

TEST_P(MercatorGridSweep, MetricConsistency) {
  const auto [nlon, nlat, latmax] = GetParam();
  MercatorGrid g(nlon, nlat, latmax);
  for (int j = 0; j < nlat; ++j) {
    // dx = R cos(lat) dlon and the cell area ~ dx * dy at the centre
    // (first-order in the cell size).
    EXPECT_NEAR(g.dx(j),
                c::earth_radius * std::cos(g.lat(j)) * c::two_pi / nlon,
                1e-9);
    EXPECT_NEAR(g.cell_area(j) / (g.dx(j) * g.dy(j)), 1.0, 0.02)
        << "j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, MercatorGridSweep,
                         ::testing::Values(MercCase{128, 128, 70.0},
                                           MercCase{64, 64, 70.0},
                                           MercCase{64, 64, 0.0},
                                           MercCase{48, 48, 60.0},
                                           MercCase{96, 48, 45.0}));

}  // namespace
}  // namespace foam::numerics
