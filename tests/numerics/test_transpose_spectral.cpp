#include "numerics/transpose_spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "par/decomp.hpp"

namespace foam::numerics {
namespace {

using cplx = std::complex<double>;

SpectralField random_spec(int mmax, int kmax, unsigned seed) {
  SpectralField s(mmax, kmax);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int m = 0; m <= mmax; ++m)
    for (int k = 0; k < kmax; ++k)
      s.at(m, k) =
          (m == 0) ? cplx(dist(rng), 0.0) : cplx(dist(rng), dist(rng));
  return s;
}

std::vector<int> block_rows(int n, int nranks, int rank) {
  const par::Range r = par::block_range(n, nranks, rank);
  std::vector<int> rows;
  for (int j = r.lo; j < r.hi; ++j) rows.push_back(j);
  return rows;
}

class TransposeRanks : public ::testing::TestWithParam<int> {};

TEST_P(TransposeRanks, AnalyzeMatchesSerial) {
  const int nranks = GetParam();
  GaussianGrid grid(48, 40);
  SpectralTransform st(grid, 15);
  const SpectralField s_in = random_spec(15, 16, 3);
  const Field2Dd g = st.synthesize(s_in);
  const SpectralField ref = st.analyze(g);

  par::run(nranks, [&](par::Comm& comm) {
    TransposeSpectralTransform tst(st, block_rows(40, nranks, comm.rank()),
                                   comm);
    const SpectralField got = tst.analyze(comm, g);
    for (int m = 0; m <= 15; ++m)
      for (int k = 0; k < 16; ++k)
        EXPECT_NEAR(std::abs(got.at(m, k) - ref.at(m, k)), 0.0, 1e-12)
            << "m=" << m << " k=" << k;
  });
}

TEST_P(TransposeRanks, SynthesizeMatchesSerial) {
  const int nranks = GetParam();
  GaussianGrid grid(48, 40);
  SpectralTransform st(grid, 15);
  const SpectralField s = random_spec(15, 16, 11);
  const Field2Dd ref = st.synthesize(s);

  par::run(nranks, [&](par::Comm& comm) {
    const auto rows = block_rows(40, nranks, comm.rank());
    TransposeSpectralTransform tst(st, rows, comm);
    Field2Dd out(48, 40, 0.0);
    tst.synthesize(comm, s, out);
    for (const int j : rows)
      for (int i = 0; i < 48; ++i)
        EXPECT_NEAR(out(i, j), ref(i, j), 1e-12) << i << "," << j;
  });
}

TEST_P(TransposeRanks, AgreesWithDistributedSumVariant) {
  // The paper's two parallel-transform strategies must be interchangeable.
  const int nranks = GetParam();
  GaussianGrid grid(48, 40);
  SpectralTransform st(grid, 15);
  const Field2Dd g = st.synthesize(random_spec(15, 16, 17));

  par::run(nranks, [&](par::Comm& comm) {
    const auto rows = block_rows(40, nranks, comm.rank());
    TransposeSpectralTransform tst(st, rows, comm);
    ParSpectralTransform pst(st, rows);
    const SpectralField a = tst.analyze(comm, g);
    const SpectralField b = pst.analyze(comm, g);
    for (int m = 0; m <= 15; ++m)
      for (int k = 0; k < 16; ++k)
        EXPECT_NEAR(std::abs(a.at(m, k) - b.at(m, k)), 0.0, 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TransposeRanks,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Transpose, RoundTripThroughTransposePair) {
  // forward_transpose output covers every (m, lat) exactly once.
  GaussianGrid grid(24, 20);
  SpectralTransform st(grid, 7);
  par::run(4, [&](par::Comm& comm) {
    const auto rows = block_rows(20, 4, comm.rank());
    TransposeSpectralTransform tst(st, rows, comm);
    // Fourier rows with a recognizable encoding: value = j + i*m/100.
    std::vector<std::vector<cplx>> fm(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      fm[r].resize(8);
      for (int m = 0; m <= 7; ++m)
        fm[r][m] = cplx(rows[r], m / 100.0);
    }
    const auto cols = tst.forward_transpose(comm, fm);
    ASSERT_EQ(static_cast<int>(cols.size()), tst.m_hi() - tst.m_lo());
    for (int m = tst.m_lo(); m < tst.m_hi(); ++m)
      for (int j = 0; j < 20; ++j) {
        EXPECT_DOUBLE_EQ(cols[m - tst.m_lo()][j].real(), j);
        EXPECT_DOUBLE_EQ(cols[m - tst.m_lo()][j].imag(), m / 100.0);
      }
  });
}

class TransposeExchangeModes : public ::testing::TestWithParam<int> {};

TEST_P(TransposeExchangeModes, OverlapMatchesBlockingBitwise) {
  // The overlap exchange is a pure data-movement reorganization: both modes
  // must produce bit-identical transforms.
  const int nranks = GetParam();
  GaussianGrid grid(48, 40);
  SpectralTransform st(grid, 15);
  const SpectralField s_in = random_spec(15, 16, 23);
  const Field2Dd g = st.synthesize(s_in);

  par::run(nranks, [&](par::Comm& comm) {
    const auto rows = block_rows(40, nranks, comm.rank());
    TransposeSpectralTransform blocking(st, rows, comm, /*overlap=*/false);
    TransposeSpectralTransform overlap(st, rows, comm, /*overlap=*/true);
    EXPECT_FALSE(blocking.overlap());
    EXPECT_TRUE(overlap.overlap());

    const SpectralField a = blocking.analyze(comm, g);
    const SpectralField b = overlap.analyze(comm, g);
    for (int m = 0; m <= 15; ++m)
      for (int k = 0; k < 16; ++k)
        EXPECT_EQ(a.at(m, k), b.at(m, k)) << "m=" << m << " k=" << k;

    Field2Dd fa(48, 40, 0.0), fb(48, 40, 0.0);
    blocking.synthesize(comm, s_in, fa);
    overlap.synthesize(comm, s_in, fb);
    for (const int j : rows)
      for (int i = 0; i < 48; ++i) EXPECT_EQ(fa(i, j), fb(i, j));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TransposeExchangeModes,
                         ::testing::Values(1, 2, 4, 8));

TEST(Transpose, OverlapToggleSwitchesPath) {
  GaussianGrid grid(24, 20);
  SpectralTransform st(grid, 7);
  const SpectralField s = random_spec(7, 8, 5);
  const Field2Dd ref = st.synthesize(s);
  par::run(4, [&](par::Comm& comm) {
    const auto rows = block_rows(20, 4, comm.rank());
    TransposeSpectralTransform tst(st, rows, comm);
    Field2Dd out(24, 20, 0.0);
    tst.synthesize(comm, s, out);
    tst.set_overlap(false);
    Field2Dd out2(24, 20, 0.0);
    tst.synthesize(comm, s, out2);
    for (const int j : rows)
      for (int i = 0; i < 24; ++i) {
        EXPECT_NEAR(out(i, j), ref(i, j), 1e-12);
        EXPECT_EQ(out(i, j), out2(i, j));
      }
  });
}

TEST(Transpose, RejectsMoreRanksThanWavenumbers) {
  GaussianGrid grid(24, 20);
  SpectralTransform st(grid, 7);  // 8 wavenumbers
  par::run(10, [&](par::Comm& comm) {
    EXPECT_THROW(TransposeSpectralTransform(
                     st, block_rows(20, 10, comm.rank()), comm),
                 Error);
  });
}

}  // namespace
}  // namespace foam::numerics
