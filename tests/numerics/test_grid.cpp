#include "numerics/grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "base/constants.hpp"

namespace foam::numerics {
namespace {

using constants::earth_radius;
using constants::pi;

TEST(GaussianGrid, R15Dimensions) {
  GaussianGrid g(48, 40);
  EXPECT_EQ(g.nlon(), 48);
  EXPECT_EQ(g.nlat(), 40);
  // Average spacing quoted in the paper: ~4.5 deg lat x 7.5 deg lon.
  EXPECT_NEAR(360.0 / g.nlon(), 7.5, 1e-12);
  EXPECT_NEAR(180.0 / g.nlat(), 4.5, 1e-12);
}

TEST(GaussianGrid, AreasSumToSphere) {
  GaussianGrid g(48, 40);
  const double sphere = 4.0 * pi * earth_radius * earth_radius;
  EXPECT_NEAR(g.total_area() / sphere, 1.0, 1e-12);
}

TEST(GaussianGrid, CellAreaMatchesGaussWeight) {
  // The Gaussian-weight partition makes cell area proportional to weight.
  GaussianGrid g(48, 40);
  const double dlon = 2.0 * pi / 48;
  for (int j = 0; j < 40; ++j) {
    const double expected =
        earth_radius * earth_radius * dlon * g.gauss_weight(j);
    EXPECT_NEAR(g.cell_area(j), expected, expected * 1e-9) << "j=" << j;
  }
}

TEST(GaussianGrid, LatitudesAscendSymmetric) {
  GaussianGrid g(48, 40);
  for (int j = 1; j < 40; ++j) EXPECT_GT(g.lat(j), g.lat(j - 1));
  for (int j = 0; j < 40; ++j)
    EXPECT_NEAR(g.lat(j), -g.lat(39 - j), 1e-13);
}

TEST(GaussianGrid, EdgesBracketCenters) {
  GaussianGrid g(48, 40);
  for (int j = 0; j < 40; ++j) {
    EXPECT_LT(g.lat_edge(j), g.lat(j));
    EXPECT_GT(g.lat_edge(j + 1), g.lat(j));
  }
  EXPECT_DOUBLE_EQ(g.lat_edge(0), -pi / 2.0);
  EXPECT_DOUBLE_EQ(g.lat_edge(40), pi / 2.0);
}

TEST(MercatorGrid, FoamResolution) {
  MercatorGrid g(128, 128);
  EXPECT_NEAR(360.0 / g.nlon(), 2.8, 0.02);
  // Mean latitude spacing ~1.4 degrees (paper: "approximately 1.4 degrees
  // latitude by 2.8 degrees longitude") over the conformal extent.
  const double mean_dlat_deg =
      (g.lat_edge(128) - g.lat_edge(0)) * 180.0 / pi / 128.0;
  EXPECT_NEAR(mean_dlat_deg, 1.4, 0.15);
  // Conformal extent reaches high latitudes so the Arctic exists (the polar
  // filter keeps it stable).
  EXPECT_GT(g.lat_edge(128) * 180.0 / pi, 80.0);
}

TEST(MercatorGrid, IsotropicCells) {
  // The conformal default makes cells square: dx(j) ~ dy(j) at every row.
  MercatorGrid g(128, 128);
  for (int j = 0; j < 128; ++j)
    EXPECT_NEAR(g.dx(j) / g.dy(j), 1.0, 0.01) << "j=" << j;
}

TEST(MercatorGrid, LatitudeRangeClipped) {
  MercatorGrid g(128, 128, 78.0);
  EXPECT_NEAR(g.lat_edge(0) * 180.0 / pi, -78.0, 1e-9);
  EXPECT_NEAR(g.lat_edge(128) * 180.0 / pi, 78.0, 1e-9);
  EXPECT_GT(g.lat(127), g.lat(0));
}

TEST(MercatorGrid, AreasMatchAnalyticBand) {
  MercatorGrid g(128, 128, 78.0);
  const double band = 2.0 * pi * earth_radius * earth_radius *
                      (std::sin(78.0 * pi / 180.0) * 2.0);
  EXPECT_NEAR(g.total_area() / band, 1.0, 1e-9);
}

TEST(MercatorGrid, SecLatConsistent) {
  MercatorGrid g(64, 64);
  for (int j = 0; j < 64; ++j)
    EXPECT_NEAR(g.sec_lat(j) * std::cos(g.lat(j)), 1.0, 1e-12);
}

TEST(LatLonGrid, LongitudesUniformPeriodic) {
  GaussianGrid g(48, 40);
  EXPECT_DOUBLE_EQ(g.lon(0), 0.0);
  const double dlon = 2.0 * pi / 48;
  for (int i = 1; i < 48; ++i) EXPECT_NEAR(g.lon(i) - g.lon(i - 1), dlon, 1e-13);
  EXPECT_NEAR(g.lon_edge(48) - g.lon_edge(0), 2.0 * pi, 1e-12);
}

TEST(Grids, RejectBadArguments) {
  EXPECT_THROW(GaussianGrid(0, 40), Error);
  EXPECT_THROW(GaussianGrid(48, 1), Error);
  EXPECT_THROW(MercatorGrid(128, 128, 95.0), Error);
  EXPECT_THROW(MercatorGrid(128, 0), Error);
}

TEST(Grids, OddNlatHasEquatorNode) {
  // Odd nlat is legal: the Gaussian quadrature gains a mu = 0 node and the
  // weights still sum to 2 (full area).
  GaussianGrid g(48, 39);
  EXPECT_NEAR(g.mu(19), 0.0, 1e-14);
  double wsum = 0.0;
  for (int j = 0; j < 39; ++j) wsum += g.gauss_weight(j);
  EXPECT_NEAR(wsum, 2.0, 1e-12);
}

}  // namespace
}  // namespace foam::numerics
