#include "numerics/tridiag.hpp"

#include <gtest/gtest.h>

#include <random>

#include "base/error.hpp"

namespace foam::numerics {
namespace {

TEST(Tridiag, SolvesIdentity) {
  std::vector<double> a = {0, 0, 0};
  std::vector<double> b = {1, 1, 1};
  std::vector<double> c = {0, 0, 0};
  std::vector<double> d = {4, 5, 6};
  solve_tridiag(a, b, c, d);
  EXPECT_DOUBLE_EQ(d[0], 4);
  EXPECT_DOUBLE_EQ(d[1], 5);
  EXPECT_DOUBLE_EQ(d[2], 6);
}

TEST(Tridiag, SolvesKnownSystem) {
  // [2 1 0][x0]   [4]
  // [1 2 1][x1] = [8]   -> x = (1, 2, 3)
  // [0 1 2][x2]   [8]
  std::vector<double> a = {0, 1, 1};
  std::vector<double> b = {2, 2, 2};
  std::vector<double> c = {1, 1, 0};
  std::vector<double> d = {4, 8, 8};
  solve_tridiag(a, b, c, d);
  EXPECT_NEAR(d[0], 1.0, 1e-14);
  EXPECT_NEAR(d[1], 2.0, 1e-14);
  EXPECT_NEAR(d[2], 3.0, 1e-14);
}

TEST(Tridiag, RandomDiagonallyDominantResidual) {
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 30);
    std::vector<double> a(n), b(n), c(n), d(n), x;
    for (int i = 0; i < n; ++i) {
      a[i] = (i > 0) ? dist(rng) : 0.0;
      c[i] = (i < n - 1) ? dist(rng) : 0.0;
      b[i] = 3.0 + std::abs(dist(rng));  // dominant
      d[i] = dist(rng);
    }
    x = d;
    solve_tridiag(a, b, c, x);
    for (int i = 0; i < n; ++i) {
      double r = b[i] * x[i] - d[i];
      if (i > 0) r += a[i] * x[i - 1];
      if (i < n - 1) r += c[i] * x[i + 1];
      EXPECT_NEAR(r, 0.0, 1e-12) << "trial " << trial << " row " << i;
    }
  }
}

TEST(Tridiag, ImplicitDiffusionIsConservativeAndStable) {
  // Backward-Euler diffusion matrix: (I - r*L) x_new = x_old with L the
  // 1-D no-flux Laplacian. The solve must conserve the sum and contract
  // the max — the property the ocean/atm vertical mixing relies on.
  const int n = 16;
  const double r = 5.0;  // strongly implicit
  std::vector<double> a(n), b(n), c(n), d(n);
  for (int i = 0; i < n; ++i) {
    const double up = (i > 0) ? r : 0.0;
    const double dn = (i < n - 1) ? r : 0.0;
    a[i] = -up;
    c[i] = -dn;
    b[i] = 1.0 + up + dn;
    d[i] = (i == 7) ? 10.0 : 0.0;
  }
  double sum_before = 0.0;
  for (const double v : d) sum_before += v;
  solve_tridiag(a, b, c, d);
  double sum_after = 0.0, maxv = 0.0;
  for (const double v : d) {
    sum_after += v;
    maxv = std::max(maxv, std::abs(v));
    EXPECT_GE(v, -1e-12);  // no undershoot
  }
  EXPECT_NEAR(sum_after, sum_before, 1e-10);
  EXPECT_LT(maxv, 10.0);
}

TEST(Tridiag, SizeMismatchThrows) {
  std::vector<double> a = {0, 1};
  std::vector<double> b = {1, 1, 1};
  std::vector<double> c = {0, 0, 0};
  std::vector<double> d = {1, 1, 1};
  EXPECT_THROW(solve_tridiag(a, b, c, d), Error);
}

}  // namespace
}  // namespace foam::numerics
