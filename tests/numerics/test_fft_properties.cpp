// Property tests of the FFT beyond round trips: linearity and the shift
// theorem, over the sizes FOAM uses.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "base/constants.hpp"
#include "numerics/fft.hpp"

namespace foam::numerics {
namespace {

using constants::two_pi;
using cplx = std::complex<double>;

class FftProperties : public ::testing::TestWithParam<int> {};

TEST_P(FftProperties, Linearity) {
  const int n = GetParam();
  Fft fft(n);
  std::mt19937 rng(n * 3 + 1);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> x(n), y(n), z(n);
  for (int i = 0; i < n; ++i) {
    x[i] = cplx(dist(rng), dist(rng));
    y[i] = cplx(dist(rng), dist(rng));
    z[i] = 2.5 * x[i] - 0.75 * y[i];
  }
  auto fx = x, fy = y, fz = z;
  fft.forward(fx);
  fft.forward(fy);
  fft.forward(fz);
  for (int k = 0; k < n; ++k) {
    const cplx expect = 2.5 * fx[k] - 0.75 * fy[k];
    EXPECT_NEAR(std::abs(fz[k] - expect), 0.0, 1e-10 * n);
  }
}

TEST_P(FftProperties, ShiftTheorem) {
  // Circularly shifting the input multiplies bin k by exp(-2 pi i k s / n).
  const int n = GetParam();
  if (n < 2) return;
  Fft fft(n);
  std::mt19937 rng(n * 7 + 5);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> x(n), shifted(n);
  for (int i = 0; i < n; ++i) x[i] = cplx(dist(rng), dist(rng));
  const int s = n / 3 + 1;
  for (int i = 0; i < n; ++i) shifted[i] = x[(i + s) % n];
  auto fx = x, fs = shifted;
  fft.forward(fx);
  fft.forward(fs);
  for (int k = 0; k < n; ++k) {
    const double ang = two_pi * k * s / n;
    const cplx expect = fx[k] * cplx(std::cos(ang), std::sin(ang));
    EXPECT_NEAR(std::abs(fs[k] - expect), 0.0, 1e-9 * n) << "k=" << k;
  }
}

TEST_P(FftProperties, RealSpectrumConjugateSymmetry) {
  const int n = GetParam();
  if (n % 2 != 0) return;  // symmetry check for even sizes
  Fft fft(n);
  std::mt19937 rng(n + 17);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> x(n);
  for (int i = 0; i < n; ++i) x[i] = cplx(dist(rng), 0.0);
  auto fx = x;
  fft.forward(fx);
  for (int k = 1; k < n / 2; ++k)
    EXPECT_NEAR(std::abs(fx[k] - std::conj(fx[n - k])), 0.0, 1e-10 * n);
  EXPECT_NEAR(fx[0].imag(), 0.0, 1e-10 * n);
  EXPECT_NEAR(fx[n / 2].imag(), 0.0, 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(FoamSizes, FftProperties,
                         ::testing::Values(4, 12, 20, 48, 64, 128));

}  // namespace
}  // namespace foam::numerics
