# Empty dependencies file for bench_sst_climatology.
# This may be replaced when dependencies are built.
