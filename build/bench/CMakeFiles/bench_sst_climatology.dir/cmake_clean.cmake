file(REMOVE_RECURSE
  "CMakeFiles/bench_sst_climatology.dir/bench_sst_climatology.cpp.o"
  "CMakeFiles/bench_sst_climatology.dir/bench_sst_climatology.cpp.o.d"
  "bench_sst_climatology"
  "bench_sst_climatology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sst_climatology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
