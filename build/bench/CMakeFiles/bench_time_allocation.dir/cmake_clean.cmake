file(REMOVE_RECURSE
  "CMakeFiles/bench_time_allocation.dir/bench_time_allocation.cpp.o"
  "CMakeFiles/bench_time_allocation.dir/bench_time_allocation.cpp.o.d"
  "bench_time_allocation"
  "bench_time_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_time_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
