# Empty compiler generated dependencies file for bench_time_allocation.
# This may be replaced when dependencies are built.
