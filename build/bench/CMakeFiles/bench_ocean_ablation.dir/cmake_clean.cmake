file(REMOVE_RECURSE
  "CMakeFiles/bench_ocean_ablation.dir/bench_ocean_ablation.cpp.o"
  "CMakeFiles/bench_ocean_ablation.dir/bench_ocean_ablation.cpp.o.d"
  "bench_ocean_ablation"
  "bench_ocean_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ocean_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
