# Empty dependencies file for bench_ocean_ablation.
# This may be replaced when dependencies are built.
