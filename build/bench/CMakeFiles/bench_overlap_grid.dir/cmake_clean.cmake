file(REMOVE_RECURSE
  "CMakeFiles/bench_overlap_grid.dir/bench_overlap_grid.cpp.o"
  "CMakeFiles/bench_overlap_grid.dir/bench_overlap_grid.cpp.o.d"
  "bench_overlap_grid"
  "bench_overlap_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overlap_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
