# Empty dependencies file for bench_overlap_grid.
# This may be replaced when dependencies are built.
