# Empty compiler generated dependencies file for bench_vs_csm_baseline.
# This may be replaced when dependencies are built.
