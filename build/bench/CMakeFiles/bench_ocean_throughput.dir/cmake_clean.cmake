file(REMOVE_RECURSE
  "CMakeFiles/bench_ocean_throughput.dir/bench_ocean_throughput.cpp.o"
  "CMakeFiles/bench_ocean_throughput.dir/bench_ocean_throughput.cpp.o.d"
  "bench_ocean_throughput"
  "bench_ocean_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ocean_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
