# Empty dependencies file for bench_ocean_throughput.
# This may be replaced when dependencies are built.
