# Empty dependencies file for bench_ccm2_vs_ccm3.
# This may be replaced when dependencies are built.
