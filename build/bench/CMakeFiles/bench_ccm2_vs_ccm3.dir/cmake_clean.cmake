file(REMOVE_RECURSE
  "CMakeFiles/bench_ccm2_vs_ccm3.dir/bench_ccm2_vs_ccm3.cpp.o"
  "CMakeFiles/bench_ccm2_vs_ccm3.dir/bench_ccm2_vs_ccm3.cpp.o.d"
  "bench_ccm2_vs_ccm3"
  "bench_ccm2_vs_ccm3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ccm2_vs_ccm3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
