file(REMOVE_RECURSE
  "CMakeFiles/bench_two_basin_eof.dir/bench_two_basin_eof.cpp.o"
  "CMakeFiles/bench_two_basin_eof.dir/bench_two_basin_eof.cpp.o.d"
  "bench_two_basin_eof"
  "bench_two_basin_eof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_two_basin_eof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
