# Empty dependencies file for bench_two_basin_eof.
# This may be replaced when dependencies are built.
