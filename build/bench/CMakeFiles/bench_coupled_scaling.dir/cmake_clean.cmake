file(REMOVE_RECURSE
  "CMakeFiles/bench_coupled_scaling.dir/bench_coupled_scaling.cpp.o"
  "CMakeFiles/bench_coupled_scaling.dir/bench_coupled_scaling.cpp.o.d"
  "bench_coupled_scaling"
  "bench_coupled_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coupled_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
