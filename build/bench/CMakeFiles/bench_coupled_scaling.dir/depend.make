# Empty dependencies file for bench_coupled_scaling.
# This may be replaced when dependencies are built.
