# CMake generated Testfile for 
# Source directory: /root/repo/tests/foam
# Build directory: /root/repo/build/tests/foam
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/foam/test_foam[1]_include.cmake")
