# Empty compiler generated dependencies file for test_foam.
# This may be replaced when dependencies are built.
