file(REMOVE_RECURSE
  "CMakeFiles/test_foam.dir/test_coupled.cpp.o"
  "CMakeFiles/test_foam.dir/test_coupled.cpp.o.d"
  "test_foam"
  "test_foam.pdb"
  "test_foam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_foam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
