file(REMOVE_RECURSE
  "CMakeFiles/test_numerics.dir/test_eig.cpp.o"
  "CMakeFiles/test_numerics.dir/test_eig.cpp.o.d"
  "CMakeFiles/test_numerics.dir/test_fft.cpp.o"
  "CMakeFiles/test_numerics.dir/test_fft.cpp.o.d"
  "CMakeFiles/test_numerics.dir/test_fft_properties.cpp.o"
  "CMakeFiles/test_numerics.dir/test_fft_properties.cpp.o.d"
  "CMakeFiles/test_numerics.dir/test_filters.cpp.o"
  "CMakeFiles/test_numerics.dir/test_filters.cpp.o.d"
  "CMakeFiles/test_numerics.dir/test_gauss.cpp.o"
  "CMakeFiles/test_numerics.dir/test_gauss.cpp.o.d"
  "CMakeFiles/test_numerics.dir/test_grid.cpp.o"
  "CMakeFiles/test_numerics.dir/test_grid.cpp.o.d"
  "CMakeFiles/test_numerics.dir/test_grid_sweeps.cpp.o"
  "CMakeFiles/test_numerics.dir/test_grid_sweeps.cpp.o.d"
  "CMakeFiles/test_numerics.dir/test_legendre.cpp.o"
  "CMakeFiles/test_numerics.dir/test_legendre.cpp.o.d"
  "CMakeFiles/test_numerics.dir/test_spectral.cpp.o"
  "CMakeFiles/test_numerics.dir/test_spectral.cpp.o.d"
  "CMakeFiles/test_numerics.dir/test_spectral_sweeps.cpp.o"
  "CMakeFiles/test_numerics.dir/test_spectral_sweeps.cpp.o.d"
  "CMakeFiles/test_numerics.dir/test_transpose_spectral.cpp.o"
  "CMakeFiles/test_numerics.dir/test_transpose_spectral.cpp.o.d"
  "CMakeFiles/test_numerics.dir/test_tridiag.cpp.o"
  "CMakeFiles/test_numerics.dir/test_tridiag.cpp.o.d"
  "test_numerics"
  "test_numerics.pdb"
  "test_numerics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
