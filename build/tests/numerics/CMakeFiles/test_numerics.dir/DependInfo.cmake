
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/numerics/test_eig.cpp" "tests/numerics/CMakeFiles/test_numerics.dir/test_eig.cpp.o" "gcc" "tests/numerics/CMakeFiles/test_numerics.dir/test_eig.cpp.o.d"
  "/root/repo/tests/numerics/test_fft.cpp" "tests/numerics/CMakeFiles/test_numerics.dir/test_fft.cpp.o" "gcc" "tests/numerics/CMakeFiles/test_numerics.dir/test_fft.cpp.o.d"
  "/root/repo/tests/numerics/test_fft_properties.cpp" "tests/numerics/CMakeFiles/test_numerics.dir/test_fft_properties.cpp.o" "gcc" "tests/numerics/CMakeFiles/test_numerics.dir/test_fft_properties.cpp.o.d"
  "/root/repo/tests/numerics/test_filters.cpp" "tests/numerics/CMakeFiles/test_numerics.dir/test_filters.cpp.o" "gcc" "tests/numerics/CMakeFiles/test_numerics.dir/test_filters.cpp.o.d"
  "/root/repo/tests/numerics/test_gauss.cpp" "tests/numerics/CMakeFiles/test_numerics.dir/test_gauss.cpp.o" "gcc" "tests/numerics/CMakeFiles/test_numerics.dir/test_gauss.cpp.o.d"
  "/root/repo/tests/numerics/test_grid.cpp" "tests/numerics/CMakeFiles/test_numerics.dir/test_grid.cpp.o" "gcc" "tests/numerics/CMakeFiles/test_numerics.dir/test_grid.cpp.o.d"
  "/root/repo/tests/numerics/test_grid_sweeps.cpp" "tests/numerics/CMakeFiles/test_numerics.dir/test_grid_sweeps.cpp.o" "gcc" "tests/numerics/CMakeFiles/test_numerics.dir/test_grid_sweeps.cpp.o.d"
  "/root/repo/tests/numerics/test_legendre.cpp" "tests/numerics/CMakeFiles/test_numerics.dir/test_legendre.cpp.o" "gcc" "tests/numerics/CMakeFiles/test_numerics.dir/test_legendre.cpp.o.d"
  "/root/repo/tests/numerics/test_spectral.cpp" "tests/numerics/CMakeFiles/test_numerics.dir/test_spectral.cpp.o" "gcc" "tests/numerics/CMakeFiles/test_numerics.dir/test_spectral.cpp.o.d"
  "/root/repo/tests/numerics/test_spectral_sweeps.cpp" "tests/numerics/CMakeFiles/test_numerics.dir/test_spectral_sweeps.cpp.o" "gcc" "tests/numerics/CMakeFiles/test_numerics.dir/test_spectral_sweeps.cpp.o.d"
  "/root/repo/tests/numerics/test_transpose_spectral.cpp" "tests/numerics/CMakeFiles/test_numerics.dir/test_transpose_spectral.cpp.o" "gcc" "tests/numerics/CMakeFiles/test_numerics.dir/test_transpose_spectral.cpp.o.d"
  "/root/repo/tests/numerics/test_tridiag.cpp" "tests/numerics/CMakeFiles/test_numerics.dir/test_tridiag.cpp.o" "gcc" "tests/numerics/CMakeFiles/test_numerics.dir/test_tridiag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/foam_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/foam_par.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/foam_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
