# CMake generated Testfile for 
# Source directory: /root/repo/tests/numerics
# Build directory: /root/repo/build/tests/numerics
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/numerics/test_numerics[1]_include.cmake")
