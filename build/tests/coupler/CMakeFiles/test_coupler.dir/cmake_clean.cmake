file(REMOVE_RECURSE
  "CMakeFiles/test_coupler.dir/test_coupler.cpp.o"
  "CMakeFiles/test_coupler.dir/test_coupler.cpp.o.d"
  "CMakeFiles/test_coupler.dir/test_overlap_sweeps.cpp.o"
  "CMakeFiles/test_coupler.dir/test_overlap_sweeps.cpp.o.d"
  "test_coupler"
  "test_coupler.pdb"
  "test_coupler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coupler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
