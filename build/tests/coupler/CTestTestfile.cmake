# CMake generated Testfile for 
# Source directory: /root/repo/tests/coupler
# Build directory: /root/repo/build/tests/coupler
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/coupler/test_coupler[1]_include.cmake")
