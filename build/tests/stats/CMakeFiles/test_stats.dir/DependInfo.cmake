
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_eof.cpp" "tests/stats/CMakeFiles/test_stats.dir/test_eof.cpp.o" "gcc" "tests/stats/CMakeFiles/test_stats.dir/test_eof.cpp.o.d"
  "/root/repo/tests/stats/test_eof_properties.cpp" "tests/stats/CMakeFiles/test_stats.dir/test_eof_properties.cpp.o" "gcc" "tests/stats/CMakeFiles/test_stats.dir/test_eof_properties.cpp.o.d"
  "/root/repo/tests/stats/test_lowpass.cpp" "tests/stats/CMakeFiles/test_stats.dir/test_lowpass.cpp.o" "gcc" "tests/stats/CMakeFiles/test_stats.dir/test_lowpass.cpp.o.d"
  "/root/repo/tests/stats/test_moments.cpp" "tests/stats/CMakeFiles/test_stats.dir/test_moments.cpp.o" "gcc" "tests/stats/CMakeFiles/test_stats.dir/test_moments.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/foam_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/foam_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/foam_par.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/foam_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
