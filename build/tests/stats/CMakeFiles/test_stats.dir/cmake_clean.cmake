file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/test_eof.cpp.o"
  "CMakeFiles/test_stats.dir/test_eof.cpp.o.d"
  "CMakeFiles/test_stats.dir/test_eof_properties.cpp.o"
  "CMakeFiles/test_stats.dir/test_eof_properties.cpp.o.d"
  "CMakeFiles/test_stats.dir/test_lowpass.cpp.o"
  "CMakeFiles/test_stats.dir/test_lowpass.cpp.o.d"
  "CMakeFiles/test_stats.dir/test_moments.cpp.o"
  "CMakeFiles/test_stats.dir/test_moments.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
