# CMake generated Testfile for 
# Source directory: /root/repo/tests/par
# Build directory: /root/repo/build/tests/par
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/par/test_par[1]_include.cmake")
