# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("par")
subdirs("numerics")
subdirs("stats")
subdirs("data")
subdirs("ocean")
subdirs("atm")
subdirs("land")
subdirs("river")
subdirs("ice")
subdirs("coupler")
subdirs("foam")
