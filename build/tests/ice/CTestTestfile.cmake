# CMake generated Testfile for 
# Source directory: /root/repo/tests/ice
# Build directory: /root/repo/build/tests/ice
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ice/test_ice[1]_include.cmake")
