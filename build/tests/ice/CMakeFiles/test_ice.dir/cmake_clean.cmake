file(REMOVE_RECURSE
  "CMakeFiles/test_ice.dir/test_ice.cpp.o"
  "CMakeFiles/test_ice.dir/test_ice.cpp.o.d"
  "test_ice"
  "test_ice.pdb"
  "test_ice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
