# Empty dependencies file for test_land.
# This may be replaced when dependencies are built.
