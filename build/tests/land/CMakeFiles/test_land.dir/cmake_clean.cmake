file(REMOVE_RECURSE
  "CMakeFiles/test_land.dir/test_land.cpp.o"
  "CMakeFiles/test_land.dir/test_land.cpp.o.d"
  "test_land"
  "test_land.pdb"
  "test_land[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_land.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
