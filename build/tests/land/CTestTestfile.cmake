# CMake generated Testfile for 
# Source directory: /root/repo/tests/land
# Build directory: /root/repo/build/tests/land
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/land/test_land[1]_include.cmake")
