# CMake generated Testfile for 
# Source directory: /root/repo/tests/atm
# Build directory: /root/repo/build/tests/atm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/atm/test_atm[1]_include.cmake")
