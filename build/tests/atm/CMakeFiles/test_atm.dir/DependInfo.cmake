
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/atm/test_atm_model.cpp" "tests/atm/CMakeFiles/test_atm.dir/test_atm_model.cpp.o" "gcc" "tests/atm/CMakeFiles/test_atm.dir/test_atm_model.cpp.o.d"
  "/root/repo/tests/atm/test_atm_sweeps.cpp" "tests/atm/CMakeFiles/test_atm.dir/test_atm_sweeps.cpp.o" "gcc" "tests/atm/CMakeFiles/test_atm.dir/test_atm_sweeps.cpp.o.d"
  "/root/repo/tests/atm/test_column.cpp" "tests/atm/CMakeFiles/test_atm.dir/test_column.cpp.o" "gcc" "tests/atm/CMakeFiles/test_atm.dir/test_column.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/atm/CMakeFiles/foam_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/foam_data.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/foam_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/foam_par.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/foam_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
