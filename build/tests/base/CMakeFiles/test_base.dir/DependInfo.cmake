
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/base/test_calendar.cpp" "tests/base/CMakeFiles/test_base.dir/test_calendar.cpp.o" "gcc" "tests/base/CMakeFiles/test_base.dir/test_calendar.cpp.o.d"
  "/root/repo/tests/base/test_config.cpp" "tests/base/CMakeFiles/test_base.dir/test_config.cpp.o" "gcc" "tests/base/CMakeFiles/test_base.dir/test_config.cpp.o.d"
  "/root/repo/tests/base/test_error.cpp" "tests/base/CMakeFiles/test_base.dir/test_error.cpp.o" "gcc" "tests/base/CMakeFiles/test_base.dir/test_error.cpp.o.d"
  "/root/repo/tests/base/test_field.cpp" "tests/base/CMakeFiles/test_base.dir/test_field.cpp.o" "gcc" "tests/base/CMakeFiles/test_base.dir/test_field.cpp.o.d"
  "/root/repo/tests/base/test_history.cpp" "tests/base/CMakeFiles/test_base.dir/test_history.cpp.o" "gcc" "tests/base/CMakeFiles/test_base.dir/test_history.cpp.o.d"
  "/root/repo/tests/base/test_logging.cpp" "tests/base/CMakeFiles/test_base.dir/test_logging.cpp.o" "gcc" "tests/base/CMakeFiles/test_base.dir/test_logging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/foam_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
