file(REMOVE_RECURSE
  "CMakeFiles/test_base.dir/test_calendar.cpp.o"
  "CMakeFiles/test_base.dir/test_calendar.cpp.o.d"
  "CMakeFiles/test_base.dir/test_config.cpp.o"
  "CMakeFiles/test_base.dir/test_config.cpp.o.d"
  "CMakeFiles/test_base.dir/test_error.cpp.o"
  "CMakeFiles/test_base.dir/test_error.cpp.o.d"
  "CMakeFiles/test_base.dir/test_field.cpp.o"
  "CMakeFiles/test_base.dir/test_field.cpp.o.d"
  "CMakeFiles/test_base.dir/test_history.cpp.o"
  "CMakeFiles/test_base.dir/test_history.cpp.o.d"
  "CMakeFiles/test_base.dir/test_logging.cpp.o"
  "CMakeFiles/test_base.dir/test_logging.cpp.o.d"
  "test_base"
  "test_base.pdb"
  "test_base[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
