# CMake generated Testfile for 
# Source directory: /root/repo/tests/base
# Build directory: /root/repo/build/tests/base
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base/test_base[1]_include.cmake")
