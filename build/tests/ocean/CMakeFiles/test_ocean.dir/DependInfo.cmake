
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ocean/test_ocean.cpp" "tests/ocean/CMakeFiles/test_ocean.dir/test_ocean.cpp.o" "gcc" "tests/ocean/CMakeFiles/test_ocean.dir/test_ocean.cpp.o.d"
  "/root/repo/tests/ocean/test_ocean_sweeps.cpp" "tests/ocean/CMakeFiles/test_ocean.dir/test_ocean_sweeps.cpp.o" "gcc" "tests/ocean/CMakeFiles/test_ocean.dir/test_ocean_sweeps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ocean/CMakeFiles/foam_ocean.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/foam_data.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/foam_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/foam_par.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/foam_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
