# CMake generated Testfile for 
# Source directory: /root/repo/tests/ocean
# Build directory: /root/repo/build/tests/ocean
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ocean/test_ocean[1]_include.cmake")
