# Empty compiler generated dependencies file for test_river.
# This may be replaced when dependencies are built.
