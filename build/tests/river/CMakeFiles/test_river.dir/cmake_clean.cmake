file(REMOVE_RECURSE
  "CMakeFiles/test_river.dir/test_river.cpp.o"
  "CMakeFiles/test_river.dir/test_river.cpp.o.d"
  "test_river"
  "test_river.pdb"
  "test_river[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_river.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
