# CMake generated Testfile for 
# Source directory: /root/repo/tests/river
# Build directory: /root/repo/build/tests/river
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/river/test_river[1]_include.cmake")
