file(REMOVE_RECURSE
  "CMakeFiles/greenhouse_transient.dir/greenhouse_transient.cpp.o"
  "CMakeFiles/greenhouse_transient.dir/greenhouse_transient.cpp.o.d"
  "greenhouse_transient"
  "greenhouse_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greenhouse_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
