# Empty dependencies file for greenhouse_transient.
# This may be replaced when dependencies are built.
