# Empty compiler generated dependencies file for ocean_spinup.
# This may be replaced when dependencies are built.
