file(REMOVE_RECURSE
  "CMakeFiles/river_basins.dir/river_basins.cpp.o"
  "CMakeFiles/river_basins.dir/river_basins.cpp.o.d"
  "river_basins"
  "river_basins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/river_basins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
