# Empty compiler generated dependencies file for river_basins.
# This may be replaced when dependencies are built.
