file(REMOVE_RECURSE
  "CMakeFiles/foam_run.dir/foam_run.cpp.o"
  "CMakeFiles/foam_run.dir/foam_run.cpp.o.d"
  "foam_run"
  "foam_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foam_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
