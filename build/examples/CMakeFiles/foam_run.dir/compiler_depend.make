# Empty compiler generated dependencies file for foam_run.
# This may be replaced when dependencies are built.
