file(REMOVE_RECURSE
  "CMakeFiles/history_tool.dir/history_tool.cpp.o"
  "CMakeFiles/history_tool.dir/history_tool.cpp.o.d"
  "history_tool"
  "history_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
