# Empty dependencies file for history_tool.
# This may be replaced when dependencies are built.
