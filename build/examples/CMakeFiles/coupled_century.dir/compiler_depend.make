# Empty compiler generated dependencies file for coupled_century.
# This may be replaced when dependencies are built.
