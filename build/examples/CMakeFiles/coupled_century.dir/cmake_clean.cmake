file(REMOVE_RECURSE
  "CMakeFiles/coupled_century.dir/coupled_century.cpp.o"
  "CMakeFiles/coupled_century.dir/coupled_century.cpp.o.d"
  "coupled_century"
  "coupled_century.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupled_century.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
