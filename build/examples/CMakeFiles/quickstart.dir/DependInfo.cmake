
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/foam/CMakeFiles/foam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/coupler/CMakeFiles/foam_coupler.dir/DependInfo.cmake"
  "/root/repo/build/src/land/CMakeFiles/foam_land.dir/DependInfo.cmake"
  "/root/repo/build/src/river/CMakeFiles/foam_river.dir/DependInfo.cmake"
  "/root/repo/build/src/ice/CMakeFiles/foam_ice.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/foam_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/ocean/CMakeFiles/foam_ocean.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/foam_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/foam_data.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/foam_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/foam_par.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/foam_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
