file(REMOVE_RECURSE
  "CMakeFiles/foam_stats.dir/eof.cpp.o"
  "CMakeFiles/foam_stats.dir/eof.cpp.o.d"
  "CMakeFiles/foam_stats.dir/lowpass.cpp.o"
  "CMakeFiles/foam_stats.dir/lowpass.cpp.o.d"
  "CMakeFiles/foam_stats.dir/moments.cpp.o"
  "CMakeFiles/foam_stats.dir/moments.cpp.o.d"
  "libfoam_stats.a"
  "libfoam_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foam_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
