file(REMOVE_RECURSE
  "libfoam_stats.a"
)
