# Empty compiler generated dependencies file for foam_stats.
# This may be replaced when dependencies are built.
