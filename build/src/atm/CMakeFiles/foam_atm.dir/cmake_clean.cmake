file(REMOVE_RECURSE
  "CMakeFiles/foam_atm.dir/column.cpp.o"
  "CMakeFiles/foam_atm.dir/column.cpp.o.d"
  "CMakeFiles/foam_atm.dir/dynamics.cpp.o"
  "CMakeFiles/foam_atm.dir/dynamics.cpp.o.d"
  "CMakeFiles/foam_atm.dir/model.cpp.o"
  "CMakeFiles/foam_atm.dir/model.cpp.o.d"
  "libfoam_atm.a"
  "libfoam_atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foam_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
