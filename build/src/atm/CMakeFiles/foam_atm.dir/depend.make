# Empty dependencies file for foam_atm.
# This may be replaced when dependencies are built.
