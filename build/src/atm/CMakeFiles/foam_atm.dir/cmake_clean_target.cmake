file(REMOVE_RECURSE
  "libfoam_atm.a"
)
