file(REMOVE_RECURSE
  "libfoam_ice.a"
)
