# Empty dependencies file for foam_ice.
# This may be replaced when dependencies are built.
