file(REMOVE_RECURSE
  "CMakeFiles/foam_ice.dir/sea_ice.cpp.o"
  "CMakeFiles/foam_ice.dir/sea_ice.cpp.o.d"
  "libfoam_ice.a"
  "libfoam_ice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foam_ice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
