
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/par/comm.cpp" "src/par/CMakeFiles/foam_par.dir/comm.cpp.o" "gcc" "src/par/CMakeFiles/foam_par.dir/comm.cpp.o.d"
  "/root/repo/src/par/decomp.cpp" "src/par/CMakeFiles/foam_par.dir/decomp.cpp.o" "gcc" "src/par/CMakeFiles/foam_par.dir/decomp.cpp.o.d"
  "/root/repo/src/par/timers.cpp" "src/par/CMakeFiles/foam_par.dir/timers.cpp.o" "gcc" "src/par/CMakeFiles/foam_par.dir/timers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/foam_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
