file(REMOVE_RECURSE
  "CMakeFiles/foam_par.dir/comm.cpp.o"
  "CMakeFiles/foam_par.dir/comm.cpp.o.d"
  "CMakeFiles/foam_par.dir/decomp.cpp.o"
  "CMakeFiles/foam_par.dir/decomp.cpp.o.d"
  "CMakeFiles/foam_par.dir/timers.cpp.o"
  "CMakeFiles/foam_par.dir/timers.cpp.o.d"
  "libfoam_par.a"
  "libfoam_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foam_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
