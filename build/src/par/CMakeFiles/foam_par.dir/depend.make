# Empty dependencies file for foam_par.
# This may be replaced when dependencies are built.
