file(REMOVE_RECURSE
  "libfoam_par.a"
)
