file(REMOVE_RECURSE
  "CMakeFiles/foam_base.dir/calendar.cpp.o"
  "CMakeFiles/foam_base.dir/calendar.cpp.o.d"
  "CMakeFiles/foam_base.dir/config.cpp.o"
  "CMakeFiles/foam_base.dir/config.cpp.o.d"
  "CMakeFiles/foam_base.dir/history.cpp.o"
  "CMakeFiles/foam_base.dir/history.cpp.o.d"
  "CMakeFiles/foam_base.dir/logging.cpp.o"
  "CMakeFiles/foam_base.dir/logging.cpp.o.d"
  "libfoam_base.a"
  "libfoam_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foam_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
