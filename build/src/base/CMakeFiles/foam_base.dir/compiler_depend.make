# Empty compiler generated dependencies file for foam_base.
# This may be replaced when dependencies are built.
