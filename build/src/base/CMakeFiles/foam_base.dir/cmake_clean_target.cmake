file(REMOVE_RECURSE
  "libfoam_base.a"
)
