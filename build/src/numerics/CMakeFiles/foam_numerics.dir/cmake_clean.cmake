file(REMOVE_RECURSE
  "CMakeFiles/foam_numerics.dir/eig.cpp.o"
  "CMakeFiles/foam_numerics.dir/eig.cpp.o.d"
  "CMakeFiles/foam_numerics.dir/fft.cpp.o"
  "CMakeFiles/foam_numerics.dir/fft.cpp.o.d"
  "CMakeFiles/foam_numerics.dir/filters.cpp.o"
  "CMakeFiles/foam_numerics.dir/filters.cpp.o.d"
  "CMakeFiles/foam_numerics.dir/gauss.cpp.o"
  "CMakeFiles/foam_numerics.dir/gauss.cpp.o.d"
  "CMakeFiles/foam_numerics.dir/grid.cpp.o"
  "CMakeFiles/foam_numerics.dir/grid.cpp.o.d"
  "CMakeFiles/foam_numerics.dir/legendre.cpp.o"
  "CMakeFiles/foam_numerics.dir/legendre.cpp.o.d"
  "CMakeFiles/foam_numerics.dir/spectral.cpp.o"
  "CMakeFiles/foam_numerics.dir/spectral.cpp.o.d"
  "CMakeFiles/foam_numerics.dir/transpose_spectral.cpp.o"
  "CMakeFiles/foam_numerics.dir/transpose_spectral.cpp.o.d"
  "libfoam_numerics.a"
  "libfoam_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foam_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
