# Empty dependencies file for foam_numerics.
# This may be replaced when dependencies are built.
