file(REMOVE_RECURSE
  "libfoam_numerics.a"
)
