
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/eig.cpp" "src/numerics/CMakeFiles/foam_numerics.dir/eig.cpp.o" "gcc" "src/numerics/CMakeFiles/foam_numerics.dir/eig.cpp.o.d"
  "/root/repo/src/numerics/fft.cpp" "src/numerics/CMakeFiles/foam_numerics.dir/fft.cpp.o" "gcc" "src/numerics/CMakeFiles/foam_numerics.dir/fft.cpp.o.d"
  "/root/repo/src/numerics/filters.cpp" "src/numerics/CMakeFiles/foam_numerics.dir/filters.cpp.o" "gcc" "src/numerics/CMakeFiles/foam_numerics.dir/filters.cpp.o.d"
  "/root/repo/src/numerics/gauss.cpp" "src/numerics/CMakeFiles/foam_numerics.dir/gauss.cpp.o" "gcc" "src/numerics/CMakeFiles/foam_numerics.dir/gauss.cpp.o.d"
  "/root/repo/src/numerics/grid.cpp" "src/numerics/CMakeFiles/foam_numerics.dir/grid.cpp.o" "gcc" "src/numerics/CMakeFiles/foam_numerics.dir/grid.cpp.o.d"
  "/root/repo/src/numerics/legendre.cpp" "src/numerics/CMakeFiles/foam_numerics.dir/legendre.cpp.o" "gcc" "src/numerics/CMakeFiles/foam_numerics.dir/legendre.cpp.o.d"
  "/root/repo/src/numerics/spectral.cpp" "src/numerics/CMakeFiles/foam_numerics.dir/spectral.cpp.o" "gcc" "src/numerics/CMakeFiles/foam_numerics.dir/spectral.cpp.o.d"
  "/root/repo/src/numerics/transpose_spectral.cpp" "src/numerics/CMakeFiles/foam_numerics.dir/transpose_spectral.cpp.o" "gcc" "src/numerics/CMakeFiles/foam_numerics.dir/transpose_spectral.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/foam_base.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/foam_par.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
