file(REMOVE_RECURSE
  "libfoam_river.a"
)
