file(REMOVE_RECURSE
  "CMakeFiles/foam_river.dir/river.cpp.o"
  "CMakeFiles/foam_river.dir/river.cpp.o.d"
  "libfoam_river.a"
  "libfoam_river.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foam_river.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
