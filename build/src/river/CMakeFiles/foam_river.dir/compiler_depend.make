# Empty compiler generated dependencies file for foam_river.
# This may be replaced when dependencies are built.
