file(REMOVE_RECURSE
  "libfoam_ocean.a"
)
