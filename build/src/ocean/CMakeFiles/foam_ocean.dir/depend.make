# Empty dependencies file for foam_ocean.
# This may be replaced when dependencies are built.
