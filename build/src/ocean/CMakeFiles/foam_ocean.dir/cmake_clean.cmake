file(REMOVE_RECURSE
  "CMakeFiles/foam_ocean.dir/model.cpp.o"
  "CMakeFiles/foam_ocean.dir/model.cpp.o.d"
  "CMakeFiles/foam_ocean.dir/vgrid.cpp.o"
  "CMakeFiles/foam_ocean.dir/vgrid.cpp.o.d"
  "libfoam_ocean.a"
  "libfoam_ocean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foam_ocean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
