# Empty compiler generated dependencies file for foam_core.
# This may be replaced when dependencies are built.
