file(REMOVE_RECURSE
  "libfoam_core.a"
)
