file(REMOVE_RECURSE
  "CMakeFiles/foam_core.dir/coupled.cpp.o"
  "CMakeFiles/foam_core.dir/coupled.cpp.o.d"
  "CMakeFiles/foam_core.dir/diagnostics.cpp.o"
  "CMakeFiles/foam_core.dir/diagnostics.cpp.o.d"
  "CMakeFiles/foam_core.dir/run_config.cpp.o"
  "CMakeFiles/foam_core.dir/run_config.cpp.o.d"
  "libfoam_core.a"
  "libfoam_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foam_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
