file(REMOVE_RECURSE
  "libfoam_data.a"
)
