file(REMOVE_RECURSE
  "CMakeFiles/foam_data.dir/earth.cpp.o"
  "CMakeFiles/foam_data.dir/earth.cpp.o.d"
  "libfoam_data.a"
  "libfoam_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foam_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
