# Empty dependencies file for foam_data.
# This may be replaced when dependencies are built.
