# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("par")
subdirs("numerics")
subdirs("stats")
subdirs("data")
subdirs("atm")
subdirs("ocean")
subdirs("land")
subdirs("river")
subdirs("ice")
subdirs("coupler")
subdirs("foam")
