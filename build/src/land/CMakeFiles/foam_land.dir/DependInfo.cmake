
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/land/soil.cpp" "src/land/CMakeFiles/foam_land.dir/soil.cpp.o" "gcc" "src/land/CMakeFiles/foam_land.dir/soil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/foam_base.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/foam_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/foam_data.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/foam_par.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
