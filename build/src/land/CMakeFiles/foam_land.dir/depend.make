# Empty dependencies file for foam_land.
# This may be replaced when dependencies are built.
