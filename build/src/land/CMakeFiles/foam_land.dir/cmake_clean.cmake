file(REMOVE_RECURSE
  "CMakeFiles/foam_land.dir/soil.cpp.o"
  "CMakeFiles/foam_land.dir/soil.cpp.o.d"
  "libfoam_land.a"
  "libfoam_land.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foam_land.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
