file(REMOVE_RECURSE
  "libfoam_land.a"
)
