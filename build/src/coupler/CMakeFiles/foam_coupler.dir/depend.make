# Empty dependencies file for foam_coupler.
# This may be replaced when dependencies are built.
