file(REMOVE_RECURSE
  "CMakeFiles/foam_coupler.dir/coupler.cpp.o"
  "CMakeFiles/foam_coupler.dir/coupler.cpp.o.d"
  "CMakeFiles/foam_coupler.dir/overlap.cpp.o"
  "CMakeFiles/foam_coupler.dir/overlap.cpp.o.d"
  "libfoam_coupler.a"
  "libfoam_coupler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foam_coupler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
