file(REMOVE_RECURSE
  "libfoam_coupler.a"
)
