#pragma once

/// \file river.hpp
/// Explicit river routing closing the hydrological cycle (paper §4.3,
/// after Miller, Russell & Caliri 1994).
///
/// Each land cell is assigned a flow direction toward its lowest of the
/// eight neighbours; the flow out of a cell is F = V * u / d with total
/// river volume V, effective velocity u = 0.35 m/s and downstream distance
/// d. Runoff reaching a coastal cell is discharged into the adjacent ocean
/// cell (the river mouth) as a freshwater point source — "a finite fresh
/// water delay and a set of point sources (river mouths) for continental
/// runoff."

#include <vector>

#include "base/field.hpp"
#include "base/history.hpp"
#include "numerics/grid.hpp"

namespace foam::river {

class RiverModel {
 public:
  /// Directions are derived from the orography by steepest descent, with
  /// optional hand-tuned overrides (the paper set many directions by hand;
  /// overrides is a list of (i, j, di, dj)).
  struct Override {
    int i, j, di, dj;
  };
  RiverModel(const numerics::GaussianGrid& grid,
             const Field2D<int>& land_mask, const Field2Dd& orography,
             const std::vector<Override>& overrides = {});

  /// Add runoff [m of liquid water per cell] produced by the land model.
  void add_runoff(const Field2Dd& runoff_m);

  /// Advance the routing by dt; discharge reaching the coast accumulates
  /// in the mouth flux field.
  void step(double dt);

  /// River volume currently in transit [m^3].
  double total_volume() const;

  /// Freshwater discharge at ocean cells [m^3/s], averaged since the last
  /// drain; calling drain resets the accumulator.
  Field2Dd drain_discharge(double interval_seconds);

  /// Flow direction of cell (i, j): packed as di + 2 + 4*(dj + 2); cells
  /// flowing to the ocean point at their coastal neighbour. -1 over ocean.
  int direction(int i, int j) const { return dir_(i, j); }
  /// Downstream neighbour of a land cell.
  void downstream(int i, int j, int& i_next, int& j_next) const;

  /// Checkpoint support.
  void save_state(HistoryWriter& out, const std::string& prefix) const;
  void load_state(const HistoryReader& in, const std::string& prefix);

  /// Number of distinct drainage basins (connected regions draining to a
  /// common mouth); diagnostic for the basin-topology tests.
  int count_basins() const;

 private:
  const numerics::GaussianGrid& grid_;
  Field2D<int> mask_;
  Field2D<int> dir_;        // packed direction
  Field2Dd volume_;         // [m^3] in-cell river storage
  Field2Dd mouth_accum_;    // [m^3] accumulated discharge at ocean cells
};

}  // namespace foam::river
