#include "river/river.hpp"

#include <algorithm>
#include <cmath>

#include "base/constants.hpp"
#include "telemetry/telemetry.hpp"

namespace foam::river {

namespace c = foam::constants;

namespace {
int pack(int di, int dj) { return (di + 2) + 4 * (dj + 2); }
void unpack(int d, int& di, int& dj) {
  di = d % 4 - 2;
  dj = d / 4 - 2;
}
}  // namespace

RiverModel::RiverModel(const numerics::GaussianGrid& grid,
                       const Field2D<int>& land_mask,
                       const Field2Dd& orography,
                       const std::vector<Override>& overrides)
    : grid_(grid),
      mask_(land_mask),
      dir_(grid.nlon(), grid.nlat(), -1),
      volume_(grid.nlon(), grid.nlat(), 0.0),
      mouth_accum_(grid.nlon(), grid.nlat(), 0.0) {
  const int nx = grid.nlon();
  const int ny = grid.nlat();
  FOAM_REQUIRE(land_mask.nx() == nx && land_mask.ny() == ny, "mask shape");
  FOAM_REQUIRE(orography.nx() == nx && orography.ny() == ny, "orography");
  // Steepest descent among the 8 neighbours; an ocean neighbour counts as
  // elevation 0 and is always preferred (rivers reach the sea).
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (mask_(i, j) == 0) continue;
      double best = orography(i, j);
      int bdi = 0, bdj = 0;
      bool found = false;
      for (int dj = -1; dj <= 1; ++dj) {
        for (int di = -1; di <= 1; ++di) {
          if (di == 0 && dj == 0) continue;
          const int jj = j + dj;
          if (jj < 0 || jj >= ny) continue;
          const int ii = (i + di + nx) % nx;
          const double h = mask_(ii, jj) == 0 ? -1.0 : orography(ii, jj);
          if (h < best) {
            best = h;
            bdi = di;
            bdj = dj;
            found = true;
          }
        }
      }
      if (!found) {
        // Local pit: route eastward so water keeps moving (the hand-tuning
        // fallback; real FOAM fixed such cells manually).
        bdi = 1;
        bdj = 0;
      }
      dir_(i, j) = pack(bdi, bdj);
    }
  }
  for (const Override& o : overrides) {
    FOAM_REQUIRE(mask_(o.i, o.j) != 0, "override on ocean cell");
    FOAM_REQUIRE((o.di != 0 || o.dj != 0) && std::abs(o.di) <= 1 &&
                     std::abs(o.dj) <= 1,
                 "override direction");
    dir_(o.i, o.j) = pack(o.di, o.dj);
  }
}

void RiverModel::downstream(int i, int j, int& i_next, int& j_next) const {
  FOAM_REQUIRE(mask_(i, j) != 0, "downstream of ocean cell");
  int di, dj;
  unpack(dir_(i, j), di, dj);
  i_next = (i + di + grid_.nlon()) % grid_.nlon();
  j_next = std::clamp(j + dj, 0, grid_.nlat() - 1);
}

void RiverModel::add_runoff(const Field2Dd& runoff_m) {
  FOAM_REQUIRE(runoff_m.nx() == grid_.nlon() && runoff_m.ny() == grid_.nlat(),
               "runoff shape");
  for (int j = 0; j < grid_.nlat(); ++j)
    for (int i = 0; i < grid_.nlon(); ++i)
      if (mask_(i, j) != 0 && runoff_m(i, j) > 0.0)
        volume_(i, j) += runoff_m(i, j) * grid_.cell_area(j);
}

void RiverModel::step(double dt) {
  FOAM_TRACE_SCOPE("river.route");
  telemetry::count("river.steps");
  Field2Dd outflow(grid_.nlon(), grid_.nlat(), 0.0);
  for (int j = 0; j < grid_.nlat(); ++j) {
    for (int i = 0; i < grid_.nlon(); ++i) {
      if (mask_(i, j) == 0 || volume_(i, j) <= 0.0) continue;
      int di, dj;
      unpack(dir_(i, j), di, dj);
      // Downstream distance from the grid spacing along the flow.
      const double dx = grid_.cell_area(j) / (c::pi * c::earth_radius /
                                              grid_.nlat());
      const double dy = c::pi * c::earth_radius / grid_.nlat();
      const double d = std::sqrt((di * dx) * (di * dx) +
                                 (dj * dy) * (dj * dy));
      // F = V u / d (paper; u = 0.35 m/s), limited so a step cannot drain
      // more than the stored volume.
      const double f = volume_(i, j) * c::river_flow_velocity /
                       std::max(d, 1.0);
      outflow(i, j) = std::min(volume_(i, j), f * dt);
    }
  }
  for (int j = 0; j < grid_.nlat(); ++j) {
    for (int i = 0; i < grid_.nlon(); ++i) {
      const double out = outflow(i, j);
      if (out <= 0.0) continue;
      volume_(i, j) -= out;
      int ii, jj;
      downstream(i, j, ii, jj);
      if (mask_(ii, jj) == 0) {
        mouth_accum_(ii, jj) += out;  // discharged to the ocean
      } else {
        volume_(ii, jj) += out;
      }
    }
  }
}

double RiverModel::total_volume() const { return volume_.sum(); }

Field2Dd RiverModel::drain_discharge(double interval_seconds) {
  FOAM_REQUIRE(interval_seconds > 0.0, "interval " << interval_seconds);
  Field2Dd out(mouth_accum_);
  out *= 1.0 / interval_seconds;
  mouth_accum_.fill(0.0);
  return out;
}

void RiverModel::save_state(HistoryWriter& out,
                            const std::string& prefix) const {
  out.write(prefix + ".volume", volume_);
  out.write(prefix + ".mouth", mouth_accum_);
}

void RiverModel::load_state(const HistoryReader& in,
                            const std::string& prefix) {
  auto load = [&](const std::string& name, Field2Dd& f) {
    const auto& rec = in.find(name);
    FOAM_REQUIRE(rec.data.size() == f.size(), "checkpoint size " << name);
    std::copy(rec.data.begin(), rec.data.end(), f.vec().begin());
  };
  load(prefix + ".volume", volume_);
  load(prefix + ".mouth", mouth_accum_);
}

int RiverModel::count_basins() const {
  // Union-find over land cells following flow directions; basins are the
  // distinct coastal outlets.
  const int nx = grid_.nlon();
  const int ny = grid_.nlat();
  Field2D<int> outlet(nx, ny, -1);
  int nbasins = 0;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (mask_(i, j) == 0 || outlet(i, j) >= 0) continue;
      // Follow the flow until ocean, a known outlet, or a loop guard.
      std::vector<std::pair<int, int>> path;
      int ci = i, cj = j;
      int id = -1;
      for (int hops = 0; hops < nx * ny; ++hops) {
        if (outlet(ci, cj) >= 0) {
          id = outlet(ci, cj);
          break;
        }
        path.push_back({ci, cj});
        int ni, nj;
        downstream(ci, cj, ni, nj);
        if (mask_(ni, nj) == 0) {
          id = nj * nx + ni;  // outlet identified by its mouth cell
          break;
        }
        if (ni == ci && nj == cj) {  // stuck (clamped at the pole rows)
          id = cj * nx + ci;
          break;
        }
        ci = ni;
        cj = nj;
      }
      if (id < 0) id = cj * nx + ci;
      for (const auto& [pi, pj] : path) outlet(pi, pj) = id;
    }
  }
  // Count distinct outlets.
  std::vector<int> ids;
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      if (outlet(i, j) >= 0) ids.push_back(outlet(i, j));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  nbasins = static_cast<int>(ids.size());
  return nbasins;
}

}  // namespace foam::river
