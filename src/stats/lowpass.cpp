#include "stats/lowpass.hpp"

#include <cmath>

#include "base/constants.hpp"
#include "base/error.hpp"

namespace foam::stats {

using constants::pi;

std::vector<double> lanczos_lowpass_weights(double cutoff_steps,
                                            int half_width) {
  FOAM_REQUIRE(cutoff_steps > 2.0, "cutoff " << cutoff_steps
                                             << " must exceed Nyquist (2)");
  FOAM_REQUIRE(half_width >= 1, "half_width=" << half_width);
  const double fc = 1.0 / cutoff_steps;
  std::vector<double> w(2 * half_width + 1);
  auto sinc = [](double x) {
    if (x == 0.0) return 1.0;
    return std::sin(pi * x) / (pi * x);
  };
  double sum = 0.0;
  for (int k = -half_width; k <= half_width; ++k) {
    const double sigma = sinc(static_cast<double>(k) / (half_width + 1));
    const double val = 2.0 * fc * sinc(2.0 * fc * k) * sigma;
    w[k + half_width] = val;
    sum += val;
  }
  for (auto& v : w) v /= sum;
  return w;
}

std::vector<double> apply_symmetric_filter(const std::vector<double>& x,
                                           const std::vector<double>& w) {
  FOAM_REQUIRE(w.size() % 2 == 1, "filter length must be odd");
  const int half = static_cast<int>(w.size()) / 2;
  const int n = static_cast<int>(x.size());
  if (n < 2 * half + 1) return {};
  std::vector<double> out(n - 2 * half);
  for (int t = half; t < n - half; ++t) {
    double acc = 0.0;
    for (int k = -half; k <= half; ++k) acc += w[k + half] * x[t + k];
    out[t - half] = acc;
  }
  return out;
}

std::vector<double> lanczos_lowpass(const std::vector<double>& x,
                                    double cutoff_steps, int half_width) {
  if (half_width < 0) half_width = static_cast<int>(cutoff_steps);
  return apply_symmetric_filter(
      x, lanczos_lowpass_weights(cutoff_steps, half_width));
}

void detrend(std::vector<double>& x) {
  const int n = static_cast<int>(x.size());
  FOAM_REQUIRE(n >= 2, "detrend needs >= 2 samples");
  // Least squares about the centered time axis t - (n-1)/2.
  const double t0 = 0.5 * (n - 1);
  double sum = 0.0, stx = 0.0, stt = 0.0;
  for (int t = 0; t < n; ++t) {
    sum += x[t];
    stx += (t - t0) * x[t];
    stt += (t - t0) * (t - t0);
  }
  const double mean = sum / n;
  const double slope = stt > 0.0 ? stx / stt : 0.0;
  for (int t = 0; t < n; ++t) x[t] -= mean + slope * (t - t0);
}

void detrend_columns(std::vector<double>& data, int ntime, int npoint) {
  FOAM_REQUIRE(data.size() == static_cast<std::size_t>(ntime) * npoint,
               "detrend matrix size");
  std::vector<double> col(ntime);
  for (int p = 0; p < npoint; ++p) {
    for (int t = 0; t < ntime; ++t)
      col[t] = data[static_cast<std::size_t>(t) * npoint + p];
    detrend(col);
    for (int t = 0; t < ntime; ++t)
      data[static_cast<std::size_t>(t) * npoint + p] = col[t];
  }
}

}  // namespace foam::stats
