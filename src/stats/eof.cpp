#include "stats/eof.hpp"

#include <cmath>

#include "base/error.hpp"
#include "numerics/eig.hpp"

namespace foam::stats {

void compute_anomalies(std::vector<double>& data, int ntime, int npoint) {
  FOAM_REQUIRE(data.size() == static_cast<std::size_t>(ntime) * npoint,
               "anomaly matrix size");
  for (int p = 0; p < npoint; ++p) {
    double mean = 0.0;
    for (int t = 0; t < ntime; ++t) mean += data[static_cast<std::size_t>(t) * npoint + p];
    mean /= ntime;
    for (int t = 0; t < ntime; ++t) data[static_cast<std::size_t>(t) * npoint + p] -= mean;
  }
}

EofResult eof_analysis(const std::vector<double>& data, int ntime, int npoint,
                       const std::vector<double>& weight, int nmodes) {
  FOAM_REQUIRE(ntime > 1 && npoint > 0, "eof dims " << ntime << "x" << npoint);
  FOAM_REQUIRE(data.size() == static_cast<std::size_t>(ntime) * npoint,
               "eof data size");
  FOAM_REQUIRE(weight.empty() ||
                   weight.size() == static_cast<std::size_t>(npoint),
               "eof weight size");
  const int max_modes = std::min(ntime - 1, npoint);
  FOAM_REQUIRE(nmodes >= 1 && nmodes <= max_modes,
               "nmodes=" << nmodes << " (max " << max_modes << ")");

  // Weighted data matrix X (ntime x npoint).
  std::vector<double> x(data);
  if (!weight.empty()) {
    for (int t = 0; t < ntime; ++t)
      for (int p = 0; p < npoint; ++p)
        x[static_cast<std::size_t>(t) * npoint + p] *= weight[p];
  }

  EofResult out;
  out.ntime = ntime;
  out.npoint = npoint;

  double total = 0.0;
  for (const double v : x) total += v * v;
  total /= (ntime - 1);
  out.total_variance = total;
  FOAM_REQUIRE(total > 0.0, "eof input has zero variance");

  const bool temporal = ntime <= npoint;
  if (temporal) {
    // C_t = X X^T / (ntime-1): ntime x ntime.
    std::vector<double> c(static_cast<std::size_t>(ntime) * ntime, 0.0);
    for (int s = 0; s < ntime; ++s) {
      for (int t = s; t < ntime; ++t) {
        double acc = 0.0;
        const double* xs = &x[static_cast<std::size_t>(s) * npoint];
        const double* xt = &x[static_cast<std::size_t>(t) * npoint];
        for (int p = 0; p < npoint; ++p) acc += xs[p] * xt[p];
        acc /= (ntime - 1);
        c[static_cast<std::size_t>(s) * ntime + t] = acc;
        c[static_cast<std::size_t>(t) * ntime + s] = acc;
      }
    }
    const auto eig = numerics::jacobi_eigensolver(c, ntime);
    for (int k = 0; k < nmodes; ++k) {
      const double lambda = std::max(0.0, eig.values[k]);
      out.variance_fraction.push_back(lambda / total);
      // Pattern = X^T u_k, normalized to unit norm; PC = sqrt(...) * u_k.
      std::vector<double> pattern(npoint, 0.0);
      for (int t = 0; t < ntime; ++t) {
        const double u = eig.vectors[k][t];
        const double* xt = &x[static_cast<std::size_t>(t) * npoint];
        for (int p = 0; p < npoint; ++p) pattern[p] += u * xt[p];
      }
      double norm = 0.0;
      for (const double v : pattern) norm += v * v;
      norm = std::sqrt(norm);
      std::vector<double> pc(ntime);
      if (norm > 0.0) {
        for (auto& v : pattern) v /= norm;
        // pc_k(t) = x_t . pattern_k (projection onto the unit pattern).
        for (int t = 0; t < ntime; ++t) {
          double acc = 0.0;
          const double* xt = &x[static_cast<std::size_t>(t) * npoint];
          for (int p = 0; p < npoint; ++p) acc += xt[p] * pattern[p];
          pc[t] = acc;
        }
      }
      out.patterns.push_back(std::move(pattern));
      out.pcs.push_back(std::move(pc));
    }
  } else {
    // Spatial covariance: npoint x npoint.
    std::vector<double> c(static_cast<std::size_t>(npoint) * npoint, 0.0);
    for (int p = 0; p < npoint; ++p) {
      for (int q = p; q < npoint; ++q) {
        double acc = 0.0;
        for (int t = 0; t < ntime; ++t)
          acc += x[static_cast<std::size_t>(t) * npoint + p] *
                 x[static_cast<std::size_t>(t) * npoint + q];
        acc /= (ntime - 1);
        c[static_cast<std::size_t>(p) * npoint + q] = acc;
        c[static_cast<std::size_t>(q) * npoint + p] = acc;
      }
    }
    const auto eig = numerics::jacobi_eigensolver(c, npoint);
    for (int k = 0; k < nmodes; ++k) {
      const double lambda = std::max(0.0, eig.values[k]);
      out.variance_fraction.push_back(lambda / total);
      std::vector<double> pattern = eig.vectors[k];
      std::vector<double> pc(ntime);
      for (int t = 0; t < ntime; ++t) {
        double acc = 0.0;
        for (int p = 0; p < npoint; ++p)
          acc += x[static_cast<std::size_t>(t) * npoint + p] * pattern[p];
        pc[t] = acc;
      }
      out.patterns.push_back(std::move(pattern));
      out.pcs.push_back(std::move(pc));
    }
  }
  return out;
}

VarimaxResult varimax(const EofResult& eof, int nfactors, int max_iter,
                      double tol) {
  FOAM_REQUIRE(nfactors >= 1 &&
                   nfactors <= static_cast<int>(eof.patterns.size()),
               "nfactors=" << nfactors << " of " << eof.patterns.size());
  const int npoint = eof.npoint;
  const int ntime = eof.ntime;

  // Loadings L (npoint x nfactors): pattern_k scaled by the std of its PC,
  // so L L^T approximates the covariance of the retained modes.
  std::vector<double> sdev(nfactors);
  std::vector<double> L(static_cast<std::size_t>(npoint) * nfactors);
  for (int k = 0; k < nfactors; ++k) {
    double var = 0.0;
    for (const double v : eof.pcs[k]) var += v * v;
    var /= (ntime - 1);
    sdev[k] = std::sqrt(std::max(0.0, var));
    for (int p = 0; p < npoint; ++p)
      L[static_cast<std::size_t>(p) * nfactors + k] =
          eof.patterns[k][p] * sdev[k];
  }

  // Cumulative rotation R (nfactors x nfactors), starts as identity.
  std::vector<double> R(static_cast<std::size_t>(nfactors) * nfactors, 0.0);
  for (int k = 0; k < nfactors; ++k)
    R[static_cast<std::size_t>(k) * nfactors + k] = 1.0;

  auto criterion = [&]() {
    // Sum over factors of the variance of squared loadings.
    double total = 0.0;
    for (int k = 0; k < nfactors; ++k) {
      double s1 = 0.0, s2 = 0.0;
      for (int p = 0; p < npoint; ++p) {
        const double l2 =
            L[static_cast<std::size_t>(p) * nfactors + k] *
            L[static_cast<std::size_t>(p) * nfactors + k];
        s1 += l2 * l2;
        s2 += l2;
      }
      total += s1 / npoint - (s2 / npoint) * (s2 / npoint);
    }
    return total;
  };

  double prev = criterion();
  for (int iter = 0; iter < max_iter; ++iter) {
    for (int i = 0; i < nfactors - 1; ++i) {
      for (int j = i + 1; j < nfactors; ++j) {
        // Optimal pairwise rotation angle (Kaiser's formulas).
        double a = 0.0, b = 0.0, c = 0.0, d = 0.0;
        for (int p = 0; p < npoint; ++p) {
          const double x = L[static_cast<std::size_t>(p) * nfactors + i];
          const double y = L[static_cast<std::size_t>(p) * nfactors + j];
          const double u = x * x - y * y;
          const double v = 2.0 * x * y;
          a += u;
          b += v;
          c += u * u - v * v;
          d += 2.0 * u * v;
        }
        const double num = d - 2.0 * a * b / npoint;
        const double den = c - (a * a - b * b) / npoint;
        const double phi = 0.25 * std::atan2(num, den);
        if (std::abs(phi) < 1e-14) continue;
        const double cs = std::cos(phi);
        const double sn = std::sin(phi);
        for (int p = 0; p < npoint; ++p) {
          double& x = L[static_cast<std::size_t>(p) * nfactors + i];
          double& y = L[static_cast<std::size_t>(p) * nfactors + j];
          const double nx = cs * x + sn * y;
          const double ny = -sn * x + cs * y;
          x = nx;
          y = ny;
        }
        for (int k = 0; k < nfactors; ++k) {
          double& x = R[static_cast<std::size_t>(k) * nfactors + i];
          double& y = R[static_cast<std::size_t>(k) * nfactors + j];
          const double nx = cs * x + sn * y;
          const double ny = -sn * x + cs * y;
          x = nx;
          y = ny;
        }
      }
    }
    const double now = criterion();
    if (std::abs(now - prev) <= tol * std::max(1.0, std::abs(now))) break;
    prev = now;
  }

  VarimaxResult out;
  out.loadings.assign(nfactors, std::vector<double>(npoint));
  for (int k = 0; k < nfactors; ++k)
    for (int p = 0; p < npoint; ++p)
      out.loadings[k][p] = L[static_cast<std::size_t>(p) * nfactors + k];

  // Rotated scores: normalized PCs rotated by the same orthogonal matrix.
  // With unit-variance scores z_k = pc_k / sdev_k, the rotated scores are
  // z R (orthogonal rotation preserves the factor model L z^T).
  out.scores.assign(nfactors, std::vector<double>(ntime, 0.0));
  for (int t = 0; t < ntime; ++t) {
    for (int k = 0; k < nfactors; ++k) {
      double acc = 0.0;
      for (int m = 0; m < nfactors; ++m) {
        const double z =
            sdev[m] > 0.0 ? eof.pcs[m][t] / sdev[m] : 0.0;
        acc += z * R[static_cast<std::size_t>(m) * nfactors + k];
      }
      out.scores[k][t] = acc;
    }
  }

  // Rotated explained variance: ||column k of L||^2 / total.
  out.variance_fraction.resize(nfactors);
  for (int k = 0; k < nfactors; ++k) {
    double s = 0.0;
    for (int p = 0; p < npoint; ++p)
      s += out.loadings[k][p] * out.loadings[k][p];
    out.variance_fraction[k] =
        eof.total_variance > 0.0 ? s / eof.total_variance : 0.0;
  }
  return out;
}

double correlation(const std::vector<double>& a,
                   const std::vector<double>& b) {
  FOAM_REQUIRE(a.size() == b.size() && a.size() > 1, "correlation inputs");
  const int n = static_cast<int>(a.size());
  double ma = 0.0, mb = 0.0;
  for (int i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (int i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace foam::stats
