#pragma once

/// \file moments.hpp
/// Streaming statistics for long model runs.
///
/// Century-scale runs cannot hold every sample; RunningMoments (Welford) and
/// RunningFieldMean accumulate means/variances online, as the model's
/// monthly/annual averaging does.

#include <cmath>
#include <cstdint>

#include "base/field.hpp"

namespace foam::stats {

/// Welford online mean/variance accumulator.
class RunningMoments {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::int64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Online mean of a 2-D field (e.g. monthly-mean SST accumulation).
class RunningFieldMean {
 public:
  void add(const Field2Dd& f) {
    if (count_ == 0) {
      sum_ = f;
    } else {
      sum_ += f;
    }
    ++count_;
  }

  std::int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  Field2Dd mean() const {
    FOAM_REQUIRE(count_ > 0, "mean of empty accumulator");
    Field2Dd out(sum_);
    out *= 1.0 / static_cast<double>(count_);
    return out;
  }

  void reset() {
    count_ = 0;
    sum_ = Field2Dd();
  }

 private:
  std::int64_t count_ = 0;
  Field2Dd sum_;
};

/// Area-weighted mean of a field over cells where mask != 0.
double area_weighted_mean(const Field2Dd& f, const Field2D<int>& mask,
                          const std::vector<double>& cell_area_per_row);

/// Area-weighted RMS difference between two fields over mask != 0 cells.
double area_weighted_rmse(const Field2Dd& a, const Field2Dd& b,
                          const Field2D<int>& mask,
                          const std::vector<double>& cell_area_per_row);

}  // namespace foam::stats
