#pragma once

/// \file lowpass.hpp
/// Lanczos low-pass filtering of time series.
///
/// Figure 4 of the paper analyzes "60 month low-pass filtered variance in
/// sea surface temperature"; this is the standard symmetric Lanczos filter
/// used for that kind of smoothing in climate diagnostics.

#include <vector>

namespace foam::stats {

/// Symmetric Lanczos low-pass weights for cutoff period \p cutoff_steps
/// (samples per cycle) and half-width \p half_width taps each side.
/// Weights are normalized to sum to one.
std::vector<double> lanczos_lowpass_weights(double cutoff_steps,
                                            int half_width);

/// Apply a symmetric filter (2*half_width+1 weights) to a series. Only the
/// interior where the full stencil fits is returned:
/// output.size() == input.size() - 2*half_width (empty if too short).
std::vector<double> apply_symmetric_filter(const std::vector<double>& x,
                                           const std::vector<double>& w);

/// Convenience: Lanczos low-pass of \p x with the given cutoff; half-width
/// defaults to the cutoff length (a common choice balancing roll-off
/// sharpness against lost end points).
std::vector<double> lanczos_lowpass(const std::vector<double>& x,
                                    double cutoff_steps,
                                    int half_width = -1);

/// Remove the least-squares linear trend from a series in place (mean and
/// slope both removed). Climate variability analyses of runs still
/// drifting toward equilibrium require this before EOF decomposition.
void detrend(std::vector<double>& x);

/// Detrend every column of a (ntime x npoint) row-major matrix in place.
void detrend_columns(std::vector<double>& data, int ntime, int npoint);

}  // namespace foam::stats
