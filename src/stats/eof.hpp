#pragma once

/// \file eof.hpp
/// Empirical orthogonal function (EOF) analysis and VARIMAX rotation.
///
/// Figure 4 of the paper is "a pattern (obtained by VARIMAX rotation of
/// empirical orthogonal function decomposition) that accounts for fully 15
/// percent of 60 month low-pass filtered variance in sea surface
/// temperature", with the spatial pattern and its time series shown
/// separately. EofAnalysis reproduces that pipeline: anomalies ->
/// (area-weighted) covariance -> eigen decomposition -> leading modes ->
/// VARIMAX rotation of the loadings.

#include <vector>

namespace foam::stats {

/// Result of an EOF decomposition of a (ntime x npoint) anomaly matrix.
struct EofResult {
  int ntime = 0;
  int npoint = 0;
  /// Explained-variance fraction per mode, descending; sums to <= 1.
  std::vector<double> variance_fraction;
  /// patterns[k] is the unit-norm spatial pattern of mode k (npoint values,
  /// in the weighted space if weights were supplied — see unweight()).
  std::vector<std::vector<double>> patterns;
  /// pcs[k] is the time series (ntime values) of mode k; pattern_k *
  /// pc_k(t) reconstructs mode k's contribution to the weighted anomalies.
  std::vector<std::vector<double>> pcs;
  /// Total variance of the input (sum over points and times / (ntime-1)).
  double total_variance = 0.0;
};

/// EOF decomposition of anomalies.
///   data   — ntime rows of npoint values (row-major), already de-meaned in
///            time (compute_anomalies helps with that).
///   weight — optional per-point weights (e.g. sqrt(cell area)); empty
///            means uniform. Weights multiply the data before analysis, the
///            standard area weighting for lat-lon fields.
///   nmodes — number of modes to retain (<= min(ntime, npoint)).
/// Uses the temporal-covariance trick when ntime < npoint so the eigen
/// problem is always the smaller dimension.
EofResult eof_analysis(const std::vector<double>& data, int ntime, int npoint,
                       const std::vector<double>& weight, int nmodes);

/// Subtract the time mean of every column in place.
void compute_anomalies(std::vector<double>& data, int ntime, int npoint);

/// Result of a VARIMAX rotation of EOF loadings.
struct VarimaxResult {
  /// Rotated loadings: loadings[k] has npoint values; mode k's anomaly
  /// contribution is loadings[k] * scores[k][t].
  std::vector<std::vector<double>> loadings;
  /// Rotated time series (ntime values per mode).
  std::vector<std::vector<double>> scores;
  /// Explained-variance fraction of each rotated factor (same total as the
  /// unrotated modes that entered the rotation).
  std::vector<double> variance_fraction;
};

/// VARIMAX rotation of the first \p nfactors modes of \p eof. Loadings are
/// the eigenvalue-scaled patterns (the convention under which VARIMAX is
/// meaningful); the orthogonal rotation maximizes the variance of squared
/// loadings, concentrating each factor on one region — exactly how the
/// paper isolates the North Atlantic / North Pacific two-basin mode.
VarimaxResult varimax(const EofResult& eof, int nfactors,
                      int max_iter = 200, double tol = 1e-10);

/// Pearson correlation of two equal-length series.
double correlation(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace foam::stats
