#include "stats/moments.hpp"

namespace foam::stats {

double area_weighted_mean(const Field2Dd& f, const Field2D<int>& mask,
                          const std::vector<double>& cell_area_per_row) {
  FOAM_REQUIRE(f.nx() == mask.nx() && f.ny() == mask.ny(), "shape mismatch");
  FOAM_REQUIRE(cell_area_per_row.size() == static_cast<std::size_t>(f.ny()),
               "area rows");
  double num = 0.0;
  double den = 0.0;
  for (int j = 0; j < f.ny(); ++j) {
    const double a = cell_area_per_row[j];
    for (int i = 0; i < f.nx(); ++i) {
      if (mask(i, j) == 0) continue;
      num += a * f(i, j);
      den += a;
    }
  }
  FOAM_REQUIRE(den > 0.0, "area_weighted_mean over empty mask");
  return num / den;
}

double area_weighted_rmse(const Field2Dd& a, const Field2Dd& b,
                          const Field2D<int>& mask,
                          const std::vector<double>& cell_area_per_row) {
  FOAM_REQUIRE(a.same_shape(b), "shape mismatch");
  double num = 0.0;
  double den = 0.0;
  for (int j = 0; j < a.ny(); ++j) {
    const double w = cell_area_per_row[j];
    for (int i = 0; i < a.nx(); ++i) {
      if (mask(i, j) == 0) continue;
      const double d = a(i, j) - b(i, j);
      num += w * d * d;
      den += w;
    }
  }
  FOAM_REQUIRE(den > 0.0, "area_weighted_rmse over empty mask");
  return std::sqrt(num / den);
}

}  // namespace foam::stats
