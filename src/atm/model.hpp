#pragma once

/// \file model.hpp
/// The FOAM atmosphere: R15 spectral dynamics + 18-level column physics.
///
/// Assembly of the pieces in this directory into the component the coupler
/// drives: spectral vorticity dynamics provide the winds (and the
/// PCCM2-style transform data flow); thermodynamics (temperature, moisture)
/// live on the Gaussian grid with upwind advection by the dynamical winds;
/// column physics supplies radiation, convection, precipitation, PBL mixing
/// and the surface fluxes exchanged with the coupler.
///
/// Parallelization: latitude rows in balanced blocks (physics and grid
/// advection local + one halo row; spectral transforms complete partial
/// sums with an allreduce). With comm == nullptr the model is serial.

#include <cstdint>
#include <memory>
#include <vector>

#include "atm/column.hpp"
#include "atm/config.hpp"
#include "atm/dynamics.hpp"
#include "base/calendar.hpp"
#include "base/history.hpp"
#include "base/field.hpp"
#include "numerics/grid.hpp"
#include "numerics/spectral.hpp"
#include "par/comm.hpp"

namespace foam::atm {

/// Surface boundary condition, per atmosphere grid cell (provided by the
/// coupler each coupling interval).
struct SurfaceFields {
  SurfaceFields() = default;
  SurfaceFields(int nlon, int nlat)
      : tsurf(nlon, nlat, 288.0),
        albedo(nlon, nlat, 0.1),
        roughness(nlon, nlat, 1e-4),
        wetness(nlon, nlat, 1.0),
        is_ocean(nlon, nlat, 1),
        is_ice(nlon, nlat, 0) {}
  Field2Dd tsurf;     ///< [K]
  Field2Dd albedo;
  Field2Dd roughness; ///< [m]
  Field2Dd wetness;   ///< D_w
  Field2D<int> is_ocean;
  Field2D<int> is_ice;
};

/// Fluxes handed to the coupler, per atmosphere grid cell, averaged over
/// the steps since the last exchange.
struct FluxFields {
  FluxFields() = default;
  FluxFields(int nlon, int nlat)
      : sw_sfc(nlon, nlat, 0.0), lw_down(nlon, nlat, 0.0),
        sensible(nlon, nlat, 0.0), latent(nlon, nlat, 0.0),
        evaporation(nlon, nlat, 0.0), rain(nlon, nlat, 0.0),
        snow(nlon, nlat, 0.0), taux(nlon, nlat, 0.0),
        tauy(nlon, nlat, 0.0) {}
  Field2Dd sw_sfc;       ///< net solar absorbed by the surface [W/m^2]
  Field2Dd lw_down;      ///< downward longwave [W/m^2]
  Field2Dd sensible;     ///< positive upward [W/m^2]
  Field2Dd latent;       ///< positive upward [W/m^2]
  Field2Dd evaporation;  ///< [kg/m^2/s]
  Field2Dd rain;         ///< [kg/m^2/s]
  Field2Dd snow;         ///< [kg/m^2/s]
  Field2Dd taux;         ///< stress on the surface [N/m^2]
  Field2Dd tauy;
};

class AtmosphereModel {
 public:
  explicit AtmosphereModel(const AtmConfig& cfg, par::Comm* comm = nullptr);

  /// Initialize temperature/moisture to a zonal climatology and spin the
  /// dynamics up from its climatological jets.
  void init_default(unsigned seed = 7u);

  /// Set the surface boundary condition (full-size fields; only owned rows
  /// are read).
  void set_surface(const SurfaceFields& sfc);
  /// The currently installed surface boundary condition. The parallel
  /// driver checkpoints this directly: with overlapped coupling the
  /// installed surface lags the newest delivered SST by one exchange, so it
  /// cannot be rebuilt from the ocean state alone.
  const SurfaceFields& surface() const { return sfc_; }

  /// One 30-minute step at model time \p now. Collective.
  void step(const ModelTime& now);

  /// Flux accumulators since the last reset (divide by steps for means).
  const FluxFields& accumulated_fluxes() const { return flux_accum_; }
  /// Fluxes of the most recent step (for the per-step land update).
  const FluxFields& last_fluxes() const { return flux_last_; }
  int accumulated_steps() const { return flux_steps_; }
  void reset_flux_accumulation();

  // --- state access -------------------------------------------------------
  const numerics::GaussianGrid& grid() const { return grid_; }
  const AtmConfig& config() const { return cfg_; }
  const SpectralDynamics& dynamics() const { return dyn_; }
  /// Temperature [K] / specific humidity of level k (k = 0 top).
  const Field3Dd& temperature() const { return t3_; }
  const Field3Dd& moisture() const { return q3_; }
  /// Near-surface winds [m/s] (lowest dynamical level).
  const Field2Dd& u_sfc() const { return dyn_.u(cfg_.ndyn - 1); }
  const Field2Dd& v_sfc() const { return dyn_.v(cfg_.ndyn - 1); }

  /// Area-weighted global means over owned rows (collective when parallel).
  double mean_t_sfc_level() const;
  double mean_precip() const;

  /// Owned latitude rows.
  const std::vector<int>& my_lats() const { return my_lats_; }

  /// Abstract cost counter (grid-point updates + spectral work).
  double work_points() const { return work_points_; }

  /// Checkpoint the prognostic state (serial use).
  void save_state(HistoryWriter& out, const std::string& prefix) const;
  void load_state(const HistoryReader& in, const std::string& prefix);

 private:
  void exchange_halo(Field3Dd& f);
  void advect_tracers();
  void run_physics(const ModelTime& now);
  void update_radiation_cache(const ModelTime& now);
  void update_thermal_jet(par::Comm* comm);
  double cos_zenith_at(int i, int j, const ModelTime& now) const;

  AtmConfig cfg_;
  par::Comm* comm_;
  numerics::GaussianGrid grid_;
  numerics::SpectralTransform st_;
  std::vector<int> my_lats_;
  /// Persistent distributed transform for the emulated full-core transform
  /// work (constructed once, not per step).
  numerics::ParSpectralTransform pst_;
  numerics::SpectralWorkspace ws_;
  int j0_ = 0, j1_ = 0;  // contiguous owned range
  SpectralDynamics dyn_;

  Field3Dd t3_, q3_;        // temperature [K], moisture [kg/kg]
  Field3Dd rad_heat_;       // cached radiative heating [K/s]
  SurfaceFields sfc_;
  FluxFields flux_accum_;
  FluxFields flux_last_;
  int flux_steps_ = 0;
  std::int64_t steps_ = 0;
  std::int64_t last_radiation_step_ = -1000000;
  double work_points_ = 0.0;
};

}  // namespace foam::atm
