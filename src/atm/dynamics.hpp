#pragma once

/// \file dynamics.hpp
/// Spectral-transform dynamical core of the FOAM atmosphere.
///
/// PCCM2's defining computational structure is the spectral transform:
/// FFTs along latitude rows, Legendre transforms across latitudes, and the
/// inter-processor redistribution between them (paper §4.1). This core
/// reproduces that structure with a multi-level barotropic vorticity
/// system at rhomboidal R15:
///
///   d(zeta_l)/dt = -div[(u,v)(zeta_l + f)] - del^4 damping
///                  + relaxation toward a climatological jet
///                  + baroclinic stirring at synoptic wavenumbers,
///
/// stepped by filtered leapfrog in spectral space. The jet climatology of
/// the lowest dynamical level is continually re-derived from the
/// atmosphere's zonal-mean meridional temperature gradient, closing the
/// SST -> wind feedback loop the coupled variability (Fig. 4) rides on.
/// See DESIGN.md for the substitution note relative to the full
/// primitive-equation CCM2 core.

#include <memory>
#include <string>
#include <vector>

#include "atm/config.hpp"
#include "base/field.hpp"
#include "base/history.hpp"
#include "numerics/spectral.hpp"
#include "par/comm.hpp"

namespace foam::atm {

class SpectralDynamics {
 public:
  /// \p my_lats are the latitude rows this rank owns (all rows when
  /// serial). The grid/transform are owned by the caller and must outlive
  /// the dynamics.
  SpectralDynamics(const AtmConfig& cfg,
                   const numerics::SpectralTransform& st,
                   std::vector<int> my_lats);

  /// Initialize each level's vorticity to its climatological jet plus a
  /// small deterministic perturbation seeding the eddies.
  void init(unsigned seed = 7u);

  /// One leapfrog step; collective when \p comm is non-null.
  void step(par::Comm* comm);

  /// Winds of dynamical level l on the Gaussian grid (filled rows: owned
  /// latitudes only). U and V are true winds [m/s] (the cos(lat) image is
  /// divided out).
  const Field2Dd& u(int l) const { return u_[check(l)]; }
  const Field2Dd& v(int l) const { return v_[check(l)]; }

  /// Spectral vorticity of level l (for tests/diagnostics).
  const numerics::SpectralField& zeta(int l) const { return zeta_[check(l)]; }

  /// Update the lowest-level jet target from the zonal-mean meridional
  /// temperature gradient (thermal-wind closure of the reduced core).
  void set_thermal_jet(const std::vector<double>& u_target_per_lat);

  /// Kinetic-energy-like diagnostic: total spectral power of the vorticity.
  double total_enstrophy() const;

  int nlevels() const { return static_cast<int>(zeta_.size()); }

  /// Checkpoint support: the spectral states and the stirring RNG state
  /// (required for bitwise-reproducible restarts).
  void save_state(HistoryWriter& out, const std::string& prefix) const;
  void load_state(const HistoryReader& in, const std::string& prefix);

 private:
  int check(int l) const {
    FOAM_REQUIRE(l >= 0 && l < nlevels(), "dyn level " << l);
    return l;
  }
  numerics::SpectralField jet_climatology(int l) const;
  void synthesize_winds();

  const AtmConfig& cfg_;
  const numerics::SpectralTransform& st_;
  numerics::ParSpectralTransform pst_;
  std::vector<int> my_lats_;
  /// Scratch for the serial batched transforms (one instance per rank).
  mutable numerics::SpectralWorkspace ws_;

  std::vector<numerics::SpectralField> zeta_;
  std::vector<numerics::SpectralField> zeta_prev_;
  std::vector<numerics::SpectralField> jet_;  // relaxation targets
  std::vector<Field2Dd> u_, v_;
  numerics::SpectralField planetary_;  // spectral f (m=0, n=1)
  bool have_prev_ = false;
  unsigned noise_state_ = 1u;
  std::vector<double> thermal_jet_;  // per-latitude u target, lowest level
};

}  // namespace foam::atm
