#pragma once

/// \file column.hpp
/// Column physics of the FOAM atmosphere.
///
/// The paper's strategy was "to use established representations of system
/// physics" — CCM2 parameterizations with selected CCM3 upgrades. This
/// module implements simplified members of the same parameterization
/// families, with the CCM2/CCM3 differences the paper highlights:
///   * moist convection: CCM2 uses a Hack-style moist adjustment only;
///     CCM3 adds a Zhang-McFarlane-style CAPE-consuming deep convection
///     scheme and evaporation of stratiform precipitation — the changes
///     that "vastly improved" the tropical Pacific (paper §6);
///   * surface fluxes: stability-dependent bulk transfer in both; CCM3
///     replaces the constant ocean roughness with a wind-speed-dependent
///     (Charnock) diagnosed roughness;
///   * radiation: two-band solar with cloud albedo and a gray longwave
///     with water-vapour + CO2 emissivity (delta-Eddington / 15-um-band
///     family stand-ins).
///
/// All functions operate on one vertical column; columns never exchange
/// information (the property that makes CCM physics embarrassingly
/// parallel, paper §4.1).

#include <vector>

#include "atm/config.hpp"

namespace foam::atm {

/// Sigma coordinate: level k = 0 is the model top. Midpoint values.
std::vector<double> sigma_levels(int nlev);

/// State of one atmospheric column (SI units; temperature in K, specific
/// humidity in kg/kg). Winds are supplied for flux computations only.
struct Column {
  std::vector<double> t;  ///< temperature per level [K]
  std::vector<double> q;  ///< specific humidity per level [kg/kg]
  double ps = 1.0e5;      ///< surface pressure [Pa]
};

/// Properties of the underlying surface, provided by the coupler.
struct Surface {
  double tsurf = 288.0;     ///< surface (skin) temperature [K]
  double albedo = 0.1;
  double roughness = 1e-4;  ///< [m]; ignored for ocean under CCM3
  double wetness = 1.0;     ///< D_w evaporation factor (1 over ocean/ice/snow)
  bool is_ocean = true;
  bool is_ice = false;
};

/// Fluxes returned to the coupler (positive upward unless noted).
struct ColumnFluxes {
  double sw_absorbed_sfc = 0.0;  ///< net solar absorbed by the surface [W/m^2]
  double lw_down_sfc = 0.0;      ///< downward longwave at the surface [W/m^2]
  double lw_up_sfc = 0.0;        ///< upward longwave at the surface [W/m^2]
  double sensible = 0.0;         ///< sensible heat flux [W/m^2]
  double latent = 0.0;           ///< latent heat flux [W/m^2]
  double evaporation = 0.0;      ///< [kg/m^2/s]
  double precip_rain = 0.0;      ///< [kg/m^2/s]
  double precip_snow = 0.0;      ///< [kg/m^2/s]
  double taux = 0.0;             ///< surface stress on the surface [N/m^2]
  double tauy = 0.0;
  double olr = 0.0;              ///< outgoing longwave at TOA [W/m^2]
  double sw_toa = 0.0;           ///< absorbed solar, whole column+sfc [W/m^2]
};

/// Saturation specific humidity over water [kg/kg] at temperature [K] and
/// pressure [Pa] (Tetens).
double saturation_q(double t_k, double p_pa);

/// Bulk transfer coefficient with stability dependence (Louis-type form):
/// neutral coefficient from roughness, increased in unstable and strongly
/// reduced in stable conditions.
double bulk_transfer_coefficient(double z_ref, double z0, double ri_bulk);

/// CCM3 diagnosed ocean roughness from the wind speed (Charnock relation
/// with a smooth-flow floor); CCM2 uses a constant.
double ocean_roughness_ccm3(double wind_speed);

/// One physics step for one column. Updates t and q in place and returns
/// the surface/TOA fluxes. \p rad_heat is the cached radiative heating
/// rate [K/s per level] (recomputed by the model on the radiation period,
/// applied every step — the CCM practice behind the twice-daily "long
/// steps" of Fig. 2); \p cos_zenith the current solar zenith cosine and
/// \p u_sfc / v_sfc the near-surface winds.
ColumnFluxes step_column_physics(const AtmConfig& cfg, Column& col,
                                 const Surface& sfc,
                                 const std::vector<double>& rad_heat,
                                 double u_sfc, double v_sfc, double dt);

/// Radiation only (called on the radiation period): computes heating rates
/// and returns them [K/s per level] plus the surface/TOA radiative terms in
/// the flux struct. Exposed separately for tests.
std::vector<double> radiation_heating(const AtmConfig& cfg, const Column& col,
                                      const Surface& sfc, double cos_zenith,
                                      ColumnFluxes& fluxes);

/// Moist convection: CCM2-style moist adjustment, optionally (CCM3) with
/// deep CAPE-consuming convection and stratiform-precip evaporation.
/// Returns rain rate [kg/m^2/s]. Exposed for tests.
double moist_convection(const AtmConfig& cfg, Column& col, double dt);

/// Large-scale (stratiform) condensation with CCM3 evaporation of falling
/// precipitation. Returns rain rate [kg/m^2/s].
double large_scale_condensation(const AtmConfig& cfg, Column& col, double dt);

}  // namespace foam::atm
