#include "atm/dynamics.hpp"

#include <cmath>

#include "base/constants.hpp"

namespace foam::atm {

namespace c = foam::constants;
using numerics::SpectralField;

namespace {

/// Climatological zonal-mean zonal wind [m/s] for dynamical level l
/// (0 = upper troposphere ... ndyn-1 = near surface).
double u_climatology(double lat, int l, int ndyn) {
  const double s2 = std::sin(2.0 * lat);
  const double envelope = std::exp(-std::pow(lat / (75.0 * c::deg2rad), 8.0));
  if (l == ndyn - 1) {
    // Surface level: trades / westerlies / polar easterlies.
    return -7.0 * std::cos(3.0 * lat) * envelope;
  }
  const double amp = (l == 0) ? 35.0 : 18.0;
  return (amp * s2 * s2 - 3.0) * envelope;
}

/// Deterministic uniform noise in [-1, 1] (LCG); identical sequence on
/// every rank so the stirring needs no communication.
double lcg_noise(unsigned& state) {
  state = state * 1664525u + 1013904223u;
  return 2.0 * (static_cast<double>(state >> 8) /
                static_cast<double>(1u << 24)) -
         1.0;
}

}  // namespace

SpectralDynamics::SpectralDynamics(const AtmConfig& cfg,
                                   const numerics::SpectralTransform& st,
                                   std::vector<int> my_lats)
    : cfg_(cfg),
      st_(st),
      pst_(st, my_lats),
      my_lats_(std::move(my_lats)),
      planetary_(st.mmax(), st.kmax()) {
  const int nd = cfg_.ndyn;
  FOAM_REQUIRE(nd >= 1, "ndyn=" << nd);
  zeta_.assign(nd, SpectralField(st.mmax(), st.kmax()));
  zeta_prev_.assign(nd, SpectralField(st.mmax(), st.kmax()));
  jet_.assign(nd, SpectralField(st.mmax(), st.kmax()));
  u_.assign(nd, Field2Dd(st.grid().nlon(), st.grid().nlat(), 0.0));
  v_.assign(nd, Field2Dd(st.grid().nlon(), st.grid().nlat(), 0.0));
  // Planetary vorticity f = 2 Omega mu: spectral (m=0, n=1) coefficient.
  // f = 2*Omega*mu = 2*Omega/sqrt(3) * Pbar_1^0(mu).
  planetary_.at(0, 1) = 2.0 * c::earth_omega / std::sqrt(3.0);
}

SpectralField SpectralDynamics::jet_climatology(int l) const {
  // Relative vorticity of the zonal climatological flow via the curl
  // analysis of its wind images.
  const auto& grid = st_.grid();
  Field2Dd uimg(grid.nlon(), grid.nlat());
  Field2Dd vimg(grid.nlon(), grid.nlat(), 0.0);
  for (int j = 0; j < grid.nlat(); ++j) {
    const double lat = grid.lat(j);
    double uu = u_climatology(lat, l, cfg_.ndyn);
    if (l == cfg_.ndyn - 1 &&
        static_cast<int>(thermal_jet_.size()) == grid.nlat())
      uu = thermal_jet_[j];
    const double img = uu * std::cos(lat);
    for (int i = 0; i < grid.nlon(); ++i) uimg(i, j) = img;
  }
  return st_.analyze_curl(uimg, vimg);
}

void SpectralDynamics::init(unsigned seed) {
  noise_state_ = seed;
  for (int l = 0; l < cfg_.ndyn; ++l) {
    jet_[l] = jet_climatology(l);
    zeta_[l] = jet_[l];
    // Small deterministic perturbation on synoptic wavenumbers.
    for (int m = 3; m <= std::min(8, st_.mmax()); ++m)
      for (int k = 0; k < 4 && k < st_.kmax(); ++k)
        zeta_[l].at(m, k) += std::complex<double>(
            2.0e-6 * lcg_noise(noise_state_),
            2.0e-6 * lcg_noise(noise_state_));
    zeta_prev_[l] = zeta_[l];
  }
  have_prev_ = false;
  synthesize_winds();
}

void SpectralDynamics::set_thermal_jet(
    const std::vector<double>& u_target_per_lat) {
  FOAM_REQUIRE(static_cast<int>(u_target_per_lat.size()) ==
                   st_.grid().nlat(),
               "thermal jet size " << u_target_per_lat.size());
  thermal_jet_ = u_target_per_lat;
  jet_[cfg_.ndyn - 1] = jet_climatology(cfg_.ndyn - 1);
}

void SpectralDynamics::synthesize_winds() {
  const auto& grid = st_.grid();
  const int nd = cfg_.ndyn;
  // All levels through one batched inverse transform: the Legendre panels
  // are loaded once per latitude pair for the whole level stack.
  std::vector<SpectralField> psis(nd, SpectralField(st_.mmax(), st_.kmax()));
  const SpectralField chi(st_.mmax(), st_.kmax());  // nondivergent core
  std::vector<const SpectralField*> psi_ptrs(nd), chi_ptrs(nd);
  std::vector<Field2Dd*> u_ptrs(nd), v_ptrs(nd);
  for (int l = 0; l < nd; ++l) {
    psis[l] = zeta_[l];
    st_.inverse_laplacian(psis[l]);
    psi_ptrs[l] = &psis[l];
    chi_ptrs[l] = &chi;
    u_ptrs[l] = &u_[l];
    v_ptrs[l] = &v_[l];
  }
  pst_.uv_from_psi_chi_batch(psi_ptrs, chi_ptrs, u_ptrs, v_ptrs);
  // Divide out the cos(lat) image on owned rows.
  for (int l = 0; l < nd; ++l) {
    for (const int j : my_lats_) {
      const double inv_cos = 1.0 / std::cos(grid.lat(j));
      for (int i = 0; i < grid.nlon(); ++i) {
        u_[l](i, j) *= inv_cos;
        v_[l](i, j) *= inv_cos;
      }
    }
  }
}

void SpectralDynamics::step(par::Comm* comm) {
  const double dt = cfg_.dt;
  const double dt2 = have_prev_ ? 2.0 * dt : dt;
  const auto& grid = st_.grid();
  const int nlon = grid.nlon();
  const double nn_max =
      static_cast<double>(st_.mmax() + st_.kmax() - 1) *
      (st_.mmax() + st_.kmax());

  const int nd = cfg_.ndyn;
  // Batched synthesis of all levels' absolute vorticity, then batched flux
  // divergence analysis (with one fused allreduce in the parallel case).
  std::vector<SpectralField> abs_zeta(nd, SpectralField(zeta_[0]));
  std::vector<Field2Dd> zg(nd, Field2Dd(nlon, grid.nlat(), 0.0));
  std::vector<const SpectralField*> az_ptrs(nd);
  std::vector<Field2Dd*> zg_ptrs(nd);
  for (int l = 0; l < nd; ++l) {
    abs_zeta[l] = zeta_[l];
    abs_zeta[l] += planetary_;
    az_ptrs[l] = &abs_zeta[l];
    zg_ptrs[l] = &zg[l];
  }
  pst_.synthesize_batch(az_ptrs, zg_ptrs);
  // Flux images A = U * zeta_a, B = V * zeta_a (winds are true winds;
  // the transform expects cos(lat) images, so multiply back).
  std::vector<Field2Dd> A(nd, Field2Dd(nlon, grid.nlat(), 0.0));
  std::vector<Field2Dd> B(nd, Field2Dd(nlon, grid.nlat(), 0.0));
  std::vector<const Field2Dd*> a_ptrs(nd), b_ptrs(nd);
  for (int l = 0; l < nd; ++l) {
    for (const int j : my_lats_) {
      const double cl = std::cos(grid.lat(j));
      for (int i = 0; i < nlon; ++i) {
        A[l](i, j) = u_[l](i, j) * cl * zg[l](i, j);
        B[l](i, j) = v_[l](i, j) * cl * zg[l](i, j);
      }
    }
    a_ptrs[l] = &A[l];
    b_ptrs[l] = &B[l];
  }
  std::vector<SpectralField> advs =
      (comm != nullptr) ? pst_.analyze_div_batch(*comm, a_ptrs, b_ptrs)
                        : st_.analyze_div_batch(a_ptrs, b_ptrs, ws_);

  for (int l = 0; l < nd; ++l) {
    const SpectralField& adv = advs[l];
    // Leapfrog with lagged del^4 damping and jet relaxation.
    const double tau_relax = 8.0 * 86400.0;
    SpectralField znew(st_.mmax(), st_.kmax());
    for (int m = 0; m <= st_.mmax(); ++m) {
      for (int k = 0; k < st_.kmax(); ++k) {
        const int n = m + k;
        const double sel = static_cast<double>(n) * (n + 1) / nn_max;
        const double damp = sel * sel / cfg_.tau_del4;
        const std::complex<double> tend =
            -adv.at(m, k) +
            (jet_[l].at(m, k) - zeta_[l].at(m, k)) / tau_relax -
            damp * zeta_prev_[l].at(m, k);
        znew.at(m, k) = zeta_prev_[l].at(m, k) + dt2 * tend;
      }
    }
    // Baroclinic stirring: stochastic forcing at synoptic wavenumbers
    // stands in for the baroclinic eddy generation the reduced core lacks.
    const double stir = 2.0e-11 * std::sqrt(dt2);
    for (int m = 4; m <= std::min(7, st_.mmax()); ++m)
      for (int k = 0; k < 4 && k < st_.kmax(); ++k)
        znew.at(m, k) += std::complex<double>(stir * lcg_noise(noise_state_),
                                              stir * lcg_noise(noise_state_));

    // Robert-Asselin filter, rotate time levels.
    const double eps = cfg_.asselin;
    for (int m = 0; m <= st_.mmax(); ++m)
      for (int k = 0; k < st_.kmax(); ++k) {
        zeta_prev_[l].at(m, k) =
            zeta_[l].at(m, k) +
            eps * (znew.at(m, k) - 2.0 * zeta_[l].at(m, k) +
                   zeta_prev_[l].at(m, k));
        zeta_[l].at(m, k) = znew.at(m, k);
      }
  }
  have_prev_ = true;
  synthesize_winds();
}

namespace {

std::vector<double> spec_to_vec(const SpectralField& s) {
  std::vector<double> v(s.size() * 2);
  const double* raw = reinterpret_cast<const double*>(s.data());
  std::copy(raw, raw + v.size(), v.begin());
  return v;
}

void vec_to_spec(const std::vector<double>& v, SpectralField& s) {
  FOAM_REQUIRE(v.size() == s.size() * 2, "spectral checkpoint size");
  double* raw = reinterpret_cast<double*>(s.data());
  std::copy(v.begin(), v.end(), raw);
}

}  // namespace

void SpectralDynamics::save_state(HistoryWriter& out,
                                  const std::string& prefix) const {
  for (int l = 0; l < nlevels(); ++l) {
    out.write_series(prefix + ".zeta" + std::to_string(l),
                     spec_to_vec(zeta_[l]));
    out.write_series(prefix + ".zeta_prev" + std::to_string(l),
                     spec_to_vec(zeta_prev_[l]));
    out.write_series(prefix + ".jet" + std::to_string(l),
                     spec_to_vec(jet_[l]));
  }
  out.write_scalar(prefix + ".noise_state",
                   static_cast<double>(noise_state_));
  out.write_scalar(prefix + ".have_prev", have_prev_ ? 1.0 : 0.0);
  out.write_series(prefix + ".thermal_jet", thermal_jet_);
}

void SpectralDynamics::load_state(const HistoryReader& in,
                                  const std::string& prefix) {
  for (int l = 0; l < nlevels(); ++l) {
    vec_to_spec(in.find(prefix + ".zeta" + std::to_string(l)).data,
                zeta_[l]);
    vec_to_spec(in.find(prefix + ".zeta_prev" + std::to_string(l)).data,
                zeta_prev_[l]);
    vec_to_spec(in.find(prefix + ".jet" + std::to_string(l)).data, jet_[l]);
  }
  noise_state_ = static_cast<unsigned>(
      in.find(prefix + ".noise_state").data[0]);
  have_prev_ = in.find(prefix + ".have_prev").data[0] != 0.0;
  const auto& tj = in.find(prefix + ".thermal_jet");
  thermal_jet_.assign(tj.data.begin(), tj.data.end());
  synthesize_winds();
}

double SpectralDynamics::total_enstrophy() const {
  double sum = 0.0;
  for (const auto& z : zeta_) sum += z.power();
  return sum;
}

}  // namespace foam::atm
