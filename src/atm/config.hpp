#pragma once

/// \file config.hpp
/// Configuration of the FOAM atmosphere (PCCM2-derived, R15).

namespace foam::atm {

/// Physics generation switch: the paper began from CCM2 physics and found
/// the tropical Pacific "vastly improved" after adopting the CCM3 moist
/// physics, surface fluxes and radiation refinements (paper §6).
enum class PhysicsVersion { kCcm2, kCcm3 };

struct AtmConfig {
  /// R15 rhomboidal truncation on a 48 x 40 Gaussian grid (paper §4.1).
  int nlon = 48;
  int nlat = 40;
  int mmax = 15;
  /// Column-physics levels (paper: 18 hybrid levels).
  int nlev = 18;
  /// Spectral dynamics levels (upper, middle, lower troposphere); the
  /// reduced dynamical core advects with these barotropic-layer winds while
  /// the 18-level columns carry the thermodynamics — see DESIGN.md for the
  /// substitution note.
  int ndyn = 3;

  /// Model time step [s]: 30 minutes (paper §4.1).
  double dt = 1800.0;
  /// Radiation recomputed twice per simulated day (paper §5 / Fig. 2).
  double radiation_period = 43200.0;

  PhysicsVersion physics = PhysicsVersion::kCcm3;

  /// Spectral transform implementation: true selects the plan-based engine
  /// (allocation-free real FFT, parity-folded Legendre panels, batched
  /// multi-field passes); false selects the reference scalar loops. The two
  /// agree to <= 1e-12 relative — the toggle exists for A/B timing and
  /// regression hunting.
  bool spectral_engine = true;

  /// del^4 spectral dissipation e-folding time on the smallest scale [s]
  /// ("recommended values for the diffusion coefficient" for R15 CCM2).
  double tau_del4 = 8.0 * 3600.0;
  /// Robert-Asselin filter for the leapfrog spectral dynamics.
  double asselin = 0.05;

  /// Thermal relaxation time of the radiative-convective column [s].
  double tau_newtonian = 20.0 * 86400.0;

  /// CO2 scaling relative to the modern value (sensitivity experiments).
  double co2_factor = 1.0;

  /// Timing-fidelity mode: perform the spectral-transform work of the full
  /// 18-level PCCM2 dynamical core (one synthesis + analysis per missing
  /// level per step) so that benches reproduce the paper's cost structure
  /// (atmosphere ~16x the ocean, transform-dominated). Results are
  /// unaffected; only work/time change.
  bool emulate_full_core_cost = false;
  /// Spectral transforms performed per emulated level per step (a full
  /// primitive-equation core moves ~8-10 fields through the transform each
  /// step). Tune so that the atmosphere:ocean cost ratio matches the
  /// paper's ~16:1 on equal ranks.
  int emulate_transforms_per_level = 8;

  static AtmConfig r15_default() { return AtmConfig{}; }

  /// Reduced-size configuration for fast tests (R7 on 24 x 20).
  static AtmConfig testing() {
    AtmConfig c;
    c.nlon = 24;
    c.nlat = 20;
    c.mmax = 7;
    c.nlev = 10;
    return c;
  }
};

}  // namespace foam::atm
