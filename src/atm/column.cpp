#include "atm/column.hpp"

#include <algorithm>
#include <cmath>

#include "base/constants.hpp"
#include "base/error.hpp"

namespace foam::atm {

namespace c = foam::constants;

std::vector<double> sigma_levels(int nlev) {
  FOAM_REQUIRE(nlev >= 2, "nlev=" << nlev);
  // Quadratic stretching: finer resolution near the surface, like the
  // hybrid 18-level CCM2 grid.
  std::vector<double> sig(nlev);
  for (int k = 0; k < nlev; ++k) {
    const double x = (k + 0.5) / nlev;  // 0 at top, 1 at surface
    sig[k] = 0.01 + 0.99 * x * (0.4 + 0.6 * x);
  }
  return sig;
}

double saturation_q(double t_k, double p_pa) {
  const double t_c = t_k - 273.15;
  const double es = 610.78 * std::exp(17.27 * t_c / (t_c + 237.3));
  const double e = std::min(es, 0.5 * p_pa);
  return 0.622 * e / (p_pa - 0.378 * e);
}

double bulk_transfer_coefficient(double z_ref, double z0, double ri_bulk) {
  FOAM_REQUIRE(z_ref > z0 && z0 > 0.0, "z_ref=" << z_ref << " z0=" << z0);
  const double log_ratio = std::log(z_ref / z0);
  const double cn = c::von_karman * c::von_karman / (log_ratio * log_ratio);
  // Louis (1979)-type stability functions.
  if (ri_bulk < 0.0) {
    return cn * (1.0 - 10.0 * ri_bulk / (1.0 + 50.0 * cn *
                                             std::sqrt(-ri_bulk)));
  }
  const double denom = 1.0 + 10.0 * ri_bulk * (1.0 + 8.0 * ri_bulk);
  return cn / denom;
}

double ocean_roughness_ccm3(double wind_speed) {
  // Charnock with a smooth-flow floor: z0 = a u*^2 / g, u* ~ sqrt(Cd) U.
  const double cd_guess = 1.3e-3;
  const double ustar2 = cd_guess * wind_speed * wind_speed;
  return std::max(1.5e-5, 0.018 * ustar2 / c::gravity);
}

std::vector<double> radiation_heating(const AtmConfig& cfg, const Column& col,
                                      const Surface& sfc, double cos_zenith,
                                      ColumnFluxes& fluxes) {
  const int nlev = static_cast<int>(col.t.size());
  const auto sig = sigma_levels(nlev);
  std::vector<double> heat(nlev, 0.0);

  // --- shortwave -------------------------------------------------------
  const double s0 = c::solar_constant * std::max(0.0, cos_zenith);
  // Cloud fraction from column relative humidity (simple diagnostic).
  double rh_mid = 0.0;
  int nmid = 0;
  for (int k = nlev / 3; k < nlev; ++k) {
    const double p = sig[k] * col.ps;
    rh_mid += std::min(1.2, col.q[k] / std::max(1e-9, saturation_q(col.t[k], p)));
    ++nmid;
  }
  rh_mid /= std::max(1, nmid);
  const double cloud = std::clamp(1.6 * (rh_mid - 0.55), 0.0, 0.85);
  const double cloud_albedo = 0.45 * cloud;
  // Atmospheric SW absorption (water vapour), surface absorption.
  const double atm_abs = 0.18;
  const double sw_after_cloud = s0 * (1.0 - cloud_albedo);
  const double sw_sfc_incident = sw_after_cloud * (1.0 - atm_abs);
  fluxes.sw_absorbed_sfc = sw_sfc_incident * (1.0 - sfc.albedo);
  fluxes.sw_toa = fluxes.sw_absorbed_sfc + sw_after_cloud * atm_abs;
  // Distribute the atmospheric SW absorption by mass.
  for (int k = 0; k < nlev; ++k) {
    const double dsig = 1.0 / nlev;
    const double mass = col.ps * dsig / c::gravity;
    heat[k] += sw_after_cloud * atm_abs * dsig / (mass * c::cp_dry);
  }

  // --- longwave ---------------------------------------------------------
  // Gray emissivity from precipitable water + CO2 (15-um band stand-in) +
  // cloud longwave effect.
  double pwat = 0.0;
  for (int k = 0; k < nlev; ++k)
    pwat += col.q[k] * col.ps / (nlev * c::gravity);
  // Independent overlapping absorbers combine through their transmissions
  // (1 - eps_total = product of individual transmissions), so the CO2 band
  // retains its effect under a moist atmosphere instead of saturating.
  const double eps_h2o =
      1.0 - std::exp(-0.35 * std::sqrt(std::max(0.0, pwat)));
  const double eps_co2 = 0.18 * std::log(1.0 + 2.0 * cfg.co2_factor) /
                         std::log(3.0);
  const double eps_cloud = 0.10 * cloud;
  const double eps_atm = std::clamp(
      1.0 - (1.0 - eps_h2o) * (1.0 - eps_co2) * (1.0 - eps_cloud), 0.05,
      0.995);
  // Effective radiating temperatures: lower troposphere for downwelling,
  // upper troposphere for OLR's atmospheric part.
  const double t_low = col.t[nlev - 2];
  const double t_up = col.t[nlev / 3];
  fluxes.lw_down_sfc = eps_atm * c::stefan_boltzmann * std::pow(t_low, 4);
  fluxes.lw_up_sfc = c::stefan_boltzmann * std::pow(sfc.tsurf, 4);
  fluxes.olr = (1.0 - eps_atm) * fluxes.lw_up_sfc +
               eps_atm * c::stefan_boltzmann * std::pow(t_up, 4);
  // Column longwave heating: net divergence distributed with a cooling
  // profile (clear-sky cooling ~2 K/day in the troposphere), closed so
  // that column LW heating equals absorbed-at-surface minus emitted.
  const double lw_net_column =
      (fluxes.lw_up_sfc - fluxes.lw_down_sfc) - fluxes.olr +
      fluxes.lw_down_sfc - fluxes.lw_up_sfc + 0.0;  // = -olr (net to space)
  (void)lw_net_column;
  for (int k = 0; k < nlev; ++k) {
    // Radiative cooling toward a gray equilibrium profile.
    const double cool = 2.2 / 86400.0;  // K/s scale
    heat[k] -= cool * std::clamp((col.t[k] - 200.0) / 90.0, 0.2, 1.4);
  }
  return heat;
}

double moist_convection(const AtmConfig& cfg, Column& col, double dt) {
  const int nlev = static_cast<int>(col.t.size());
  const auto sig = sigma_levels(nlev);
  double rain = 0.0;

  // --- Hack-style shallow/middle moist adjustment (CCM2 and CCM3) ------
  // Sweep adjacent level pairs: when a lifted lower level is buoyant and
  // saturated, mix and rain out the excess moisture.
  for (int k = nlev - 1; k > 0; --k) {
    const double p_lo = sig[k] * col.ps;
    const double p_up = sig[k - 1] * col.ps;
    // Dry static energy check with moisture contribution.
    const double theta_lo =
        col.t[k] * std::pow(c::p_ref / p_lo, c::kappa);
    const double theta_up =
        col.t[k - 1] * std::pow(c::p_ref / p_up, c::kappa);
    const double qsat_lo = saturation_q(col.t[k], p_lo);
    const double buoyant =
        theta_lo + (c::latent_vap / c::cp_dry) * col.q[k] * 0.35 -
        (theta_up + (c::latent_vap / c::cp_dry) * col.q[k - 1] * 0.35);
    if (buoyant > 0.3 && col.q[k] > 0.85 * qsat_lo) {
      // Mix the pair and condense the supersaturation produced.
      const double tm = 0.5 * (theta_lo + theta_up);
      col.t[k] = tm * std::pow(p_lo / c::p_ref, c::kappa);
      col.t[k - 1] = tm * std::pow(p_up / c::p_ref, c::kappa);
      const double qm = 0.5 * (col.q[k] + col.q[k - 1]);
      col.q[k] = qm;
      col.q[k - 1] = qm;
      const double qex =
          std::max(0.0, col.q[k] - 0.9 * saturation_q(col.t[k], p_lo));
      col.q[k] -= qex;
      col.t[k] += qex * c::latent_vap / c::cp_dry;
      rain += qex * col.ps / (nlev * c::gravity) / dt;
    }
  }

  // --- Zhang-McFarlane-style deep convection (CCM3 only) ---------------
  if (cfg.physics == PhysicsVersion::kCcm3) {
    // CAPE proxy: boundary-layer moist static energy vs mid-troposphere
    // saturation moist static energy.
    const int kb = nlev - 1;
    const int km = nlev / 2;
    const double p_b = sig[kb] * col.ps;
    const double p_m = sig[km] * col.ps;
    const double h_b = c::cp_dry * col.t[kb] + c::latent_vap * col.q[kb] +
                       c::r_dry * col.t[kb] * std::log(c::p_ref / p_b);
    const double h_m_sat = c::cp_dry * col.t[km] +
                           c::latent_vap * saturation_q(col.t[km], p_m) +
                           c::r_dry * col.t[km] * std::log(c::p_ref / p_m);
    const double cape_proxy = (h_b - h_m_sat) / c::cp_dry;  // [K]
    if (cape_proxy > 1.0) {
      // Consume CAPE over a fixed adjustment time: move moisture from the
      // boundary layer upward, heat the mid troposphere, rain the excess.
      const double tau_adj = 2.0 * 3600.0;
      const double frac = std::min(0.5, dt / tau_adj);
      const double dq = frac * 0.5 * col.q[kb];
      col.q[kb] -= dq;
      const double condensed = 0.7 * dq;
      const double detrained = dq - condensed;
      for (int k = km; k < kb; ++k) {
        col.t[k] += condensed * c::latent_vap /
                    (c::cp_dry * (kb - km));
        col.q[k] += detrained / (kb - km);
      }
      rain += condensed * col.ps / (nlev * c::gravity) / dt;
    }
  }
  return rain;
}

double large_scale_condensation(const AtmConfig& cfg, Column& col,
                                double dt) {
  const int nlev = static_cast<int>(col.t.size());
  const auto sig = sigma_levels(nlev);
  double rain = 0.0;
  for (int k = 0; k < nlev; ++k) {
    const double p = sig[k] * col.ps;
    const double qsat = saturation_q(col.t[k], p);
    if (col.q[k] > qsat) {
      const double dq = col.q[k] - qsat;
      col.q[k] = qsat;
      col.t[k] += dq * c::latent_vap / c::cp_dry;
      double flux = dq * col.ps / (nlev * c::gravity) / dt;
      // CCM3: evaporate part of the falling stratiform precipitation into
      // the subsaturated layers below.
      if (cfg.physics == PhysicsVersion::kCcm3) {
        for (int kk = k + 1; kk < nlev && flux > 0.0; ++kk) {
          const double pk = sig[kk] * col.ps;
          const double deficit =
              std::max(0.0, 0.8 * saturation_q(col.t[kk], pk) - col.q[kk]);
          const double evap =
              std::min(flux * 0.25,
                       deficit * col.ps / (nlev * c::gravity) / dt);
          flux -= evap;
          const double dqe = evap * dt * nlev * c::gravity / col.ps;
          col.q[kk] += dqe;
          col.t[kk] -= dqe * c::latent_vap / c::cp_dry;
        }
      }
      rain += flux;
    }
  }
  return rain;
}

ColumnFluxes step_column_physics(const AtmConfig& cfg, Column& col,
                                 const Surface& sfc,
                                 const std::vector<double>& rad_heat,
                                 double u_sfc, double v_sfc, double dt) {
  const int nlev = static_cast<int>(col.t.size());
  const auto sig = sigma_levels(nlev);
  ColumnFluxes fluxes;

  // Apply the cached radiative heating rates every step.
  FOAM_REQUIRE(static_cast<int>(rad_heat.size()) == nlev,
               "rad_heat size " << rad_heat.size());
  for (int k = 0; k < nlev; ++k) col.t[k] += rad_heat[k] * dt;

  // --- surface fluxes ----------------------------------------------------
  const int kb = nlev - 1;
  const double p_b = sig[kb] * col.ps;
  const double rho = p_b / (c::r_dry * col.t[kb]);
  const double wind =
      std::max(1.0, std::sqrt(u_sfc * u_sfc + v_sfc * v_sfc));
  double z0 = sfc.roughness;
  if (sfc.is_ocean && !sfc.is_ice) {
    z0 = (cfg.physics == PhysicsVersion::kCcm3)
             ? ocean_roughness_ccm3(wind)
             : 1.0e-4;  // CCM2: constant ocean roughness
  }
  const double z_ref = 70.0;  // lowest-level height proxy [m]
  // Bulk Richardson number of the surface layer.
  const double dtheta = col.t[kb] - sfc.tsurf;
  const double ri = c::gravity * z_ref * dtheta /
                    (col.t[kb] * wind * wind);
  const double ch = bulk_transfer_coefficient(z_ref, z0, ri);
  const double cd = bulk_transfer_coefficient(z_ref, 10.0 * z0, ri);
  fluxes.sensible = rho * c::cp_dry * ch * wind * (sfc.tsurf - col.t[kb]);
  const double qsat_s = saturation_q(sfc.tsurf, col.ps);
  const double evap_potential = rho * ch * wind * (qsat_s - col.q[kb]);
  fluxes.evaporation = std::max(0.0, sfc.wetness * evap_potential);
  const double lheat =
      (sfc.is_ice || sfc.tsurf < c::t_melt) ? c::latent_sub : c::latent_vap;
  fluxes.latent = fluxes.evaporation * lheat;
  fluxes.taux = rho * cd * wind * u_sfc;
  fluxes.tauy = rho * cd * wind * v_sfc;

  // Apply surface fluxes to the lowest layer.
  const double mass_b = col.ps / (nlev * c::gravity);
  col.t[kb] += fluxes.sensible * dt / (mass_b * c::cp_dry);
  col.q[kb] += fluxes.evaporation * dt / mass_b;

  // --- boundary layer: implicit vertical diffusion of t (as potential
  // temperature) and q with a PBL-depth-limited K profile ---------------
  {
    const double k_pbl = 12.0 * std::clamp(1.0 - 4.0 * std::max(0.0, ri),
                                           0.05, 2.0);
    std::vector<double> theta(nlev);
    for (int k = 0; k < nlev; ++k)
      theta[k] = col.t[k] * std::pow(c::p_ref / (sig[k] * col.ps), c::kappa);
    const double dz_proxy = 800.0;  // layer thickness proxy [m]
    const double r = k_pbl * dt / (dz_proxy * dz_proxy);
    // Simple implicit tri-diagonal over the lowest third of the column.
    const int k_top = 2 * nlev / 3;
    for (int it = 0; it < 2; ++it) {
      for (int k = nlev - 1; k > k_top; --k) {
        const double mix = r / (1.0 + 2.0 * r);
        const double dth = theta[k - 1] - theta[k];
        theta[k] += mix * dth;
        theta[k - 1] -= mix * dth;
        const double dq = col.q[k - 1] - col.q[k];
        col.q[k] += mix * dq;
        col.q[k - 1] -= mix * dq;
      }
    }
    for (int k = 0; k < nlev; ++k)
      col.t[k] = theta[k] * std::pow(sig[k] * col.ps / c::p_ref, c::kappa);
  }

  // --- moist processes ----------------------------------------------------
  double rain = moist_convection(cfg, col, dt);
  rain += large_scale_condensation(cfg, col, dt);
  // Snow when the lower troposphere is below freezing.
  if (col.t[nlev - 2] < c::t_melt) {
    fluxes.precip_snow = rain;
  } else {
    fluxes.precip_rain = rain;
  }

  // Moisture cannot go negative (round-off from the schemes above).
  for (auto& qv : col.q) qv = std::max(0.0, qv);
  return fluxes;
}

}  // namespace foam::atm
