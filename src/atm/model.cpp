#include "atm/model.hpp"

#include <algorithm>
#include <cmath>

#include "base/constants.hpp"
#include "data/earth.hpp"
#include "par/decomp.hpp"
#include "telemetry/telemetry.hpp"

namespace foam::atm {

namespace c = foam::constants;

namespace {
constexpr int kTagSouth = 210;
constexpr int kTagNorth = 211;

std::vector<int> contiguous_rows(int lo, int hi) {
  std::vector<int> rows;
  rows.reserve(hi - lo);
  for (int j = lo; j < hi; ++j) rows.push_back(j);
  return rows;
}
}  // namespace

AtmosphereModel::AtmosphereModel(const AtmConfig& cfg, par::Comm* comm)
    : cfg_(cfg),
      comm_(comm),
      grid_(cfg.nlon, cfg.nlat),
      st_(grid_, cfg.mmax,
          cfg.spectral_engine ? numerics::SpectralMode::kEngine
                              : numerics::SpectralMode::kReference),
      my_lats_((comm != nullptr)
                   ? contiguous_rows(
                         par::block_range(cfg.nlat, comm->size(),
                                          comm->rank())
                             .lo,
                         par::block_range(cfg.nlat, comm->size(),
                                          comm->rank())
                             .hi)
                   : contiguous_rows(0, cfg.nlat)),
      pst_(st_, my_lats_),
      dyn_(cfg_, st_, my_lats_),
      t3_(cfg.nlon, cfg.nlat, cfg.nlev, 260.0),
      q3_(cfg.nlon, cfg.nlat, cfg.nlev, 1e-3),
      rad_heat_(cfg.nlon, cfg.nlat, cfg.nlev, 0.0),
      sfc_(cfg.nlon, cfg.nlat),
      flux_accum_(cfg.nlon, cfg.nlat),
      flux_last_(cfg.nlon, cfg.nlat) {
  j0_ = my_lats_.front();
  j1_ = my_lats_.back() + 1;
  FOAM_REQUIRE(static_cast<int>(my_lats_.size()) == j1_ - j0_,
               "rows not contiguous");
}

void AtmosphereModel::init_default(unsigned seed) {
  const auto sig = sigma_levels(cfg_.nlev);
  for (int j = 0; j < cfg_.nlat; ++j) {
    const double lat = grid_.lat(j);
    const double tsfc =
        259.0 + 38.0 * std::exp(-std::pow(lat / (35.0 * c::deg2rad), 2.0));
    for (int i = 0; i < cfg_.nlon; ++i) {
      for (int k = 0; k < cfg_.nlev; ++k) {
        const double z = -7500.0 * std::log(sig[k]);
        const double t = std::max(208.0, tsfc - 6.5e-3 * z);
        t3_(i, j, k) = t;
        q3_(i, j, k) = std::min(
            0.02, 0.75 * saturation_q(t, sig[k] * c::p_ref));
      }
    }
  }
  dyn_.init(seed);
  steps_ = 0;
  last_radiation_step_ = -1000000;
  reset_flux_accumulation();
}

void AtmosphereModel::set_surface(const SurfaceFields& sfc) { sfc_ = sfc; }

void AtmosphereModel::reset_flux_accumulation() {
  flux_accum_ = FluxFields(cfg_.nlon, cfg_.nlat);
  flux_steps_ = 0;
}

void AtmosphereModel::exchange_halo(Field3Dd& f) {
  if (comm_ == nullptr || comm_->size() == 1) return;
  const int r = comm_->rank();
  const int nx = cfg_.nlon;
  const int nz = cfg_.nlev;
  std::vector<double> row(static_cast<std::size_t>(nx) * nz);
  auto pack = [&](int j) {
    for (int k = 0; k < nz; ++k)
      for (int i = 0; i < nx; ++i)
        row[static_cast<std::size_t>(k) * nx + i] = f(i, j, k);
  };
  auto unpack = [&](int j) {
    for (int k = 0; k < nz; ++k)
      for (int i = 0; i < nx; ++i)
        f(i, j, k) = row[static_cast<std::size_t>(k) * nx + i];
  };
  if (r > 0) {
    pack(j0_);
    comm_->send_vec(r - 1, kTagSouth, row);
  }
  if (r < comm_->size() - 1) {
    pack(j1_ - 1);
    comm_->send_vec(r + 1, kTagNorth, row);
  }
  if (r < comm_->size() - 1) {
    comm_->recv_vec(r + 1, kTagSouth, row);
    unpack(j1_);
  }
  if (r > 0) {
    comm_->recv_vec(r - 1, kTagNorth, row);
    unpack(j0_ - 1);
  }
}

void AtmosphereModel::advect_tracers() {
  const double dt = cfg_.dt;
  const int nx = cfg_.nlon;
  exchange_halo(t3_);
  exchange_halo(q3_);
  Field3Dd tn(t3_), qn(q3_);
  for (int k = 0; k < cfg_.nlev; ++k) {
    // Dynamical level carrying this physics level.
    const int l = std::min(cfg_.ndyn - 1, k * cfg_.ndyn / cfg_.nlev);
    const auto& uu = dyn_.u(l);
    const auto& vv = dyn_.v(l);
    for (int j = j0_; j < j1_; ++j) {
      const double dxj =
          c::earth_radius * std::cos(grid_.lat(j)) * c::two_pi / nx;
      const double dyj = c::pi * c::earth_radius / cfg_.nlat;
      // CFL clamp for the polar rows (effective zonal resolution shrinks;
      // the wind used for transport is capped — the grid analogue of the
      // spectral model's polar treatment).
      const double umax = 0.8 * dxj / dt;
      const double vmax = 0.8 * dyj / dt;
      for (int i = 0; i < nx; ++i) {
        const double ua = std::clamp(uu(i, j), -umax, umax);
        const double va = std::clamp(vv(i, j), -vmax, vmax);
        for (Field3Dd* fp : {&t3_, &q3_}) {
          Field3Dd& f = *fp;
          Field3Dd& out = (fp == &t3_) ? tn : qn;
          double tend = 0.0;
          // Upwind in both directions.
          if (ua > 0.0) {
            tend -= ua * (f(i, j, k) - f.wrap_x(i - 1, j, k)) / dxj;
          } else {
            tend -= ua * (f.wrap_x(i + 1, j, k) - f(i, j, k)) / dxj;
          }
          if (va > 0.0 && j - 1 >= 0) {
            tend -= va * (f(i, j, k) - f(i, j - 1, k)) / dyj;
          } else if (va < 0.0 && j + 1 < cfg_.nlat) {
            tend -= va * (f(i, j + 1, k) - f(i, j, k)) / dyj;
          }
          out(i, j, k) = f(i, j, k) + dt * tend;
        }
      }
    }
  }
  t3_ = std::move(tn);
  q3_ = std::move(qn);
}

double AtmosphereModel::cos_zenith_at(int i, int j,
                                      const ModelTime& now) const {
  // Daily-mean effective zenith: radiation is recomputed twice daily from
  // the daily-mean insolation (the reduced core carries no diurnal cycle).
  (void)i;
  const double q =
      data::daily_mean_insolation(grid_.lat(j), now.fractional_day_of_year());
  return q / c::solar_constant;
}

void AtmosphereModel::update_radiation_cache(const ModelTime& now) {
  Column col;
  col.t.resize(cfg_.nlev);
  col.q.resize(cfg_.nlev);
  for (int j = j0_; j < j1_; ++j) {
    for (int i = 0; i < cfg_.nlon; ++i) {
      for (int k = 0; k < cfg_.nlev; ++k) {
        col.t[k] = t3_(i, j, k);
        col.q[k] = q3_(i, j, k);
      }
      Surface s;
      s.tsurf = sfc_.tsurf(i, j);
      s.albedo = sfc_.albedo(i, j);
      s.roughness = sfc_.roughness(i, j);
      s.wetness = sfc_.wetness(i, j);
      s.is_ocean = sfc_.is_ocean(i, j) != 0;
      s.is_ice = sfc_.is_ice(i, j) != 0;
      ColumnFluxes rf;
      const auto heat =
          radiation_heating(cfg_, col, s, cos_zenith_at(i, j, now), rf);
      for (int k = 0; k < cfg_.nlev; ++k) rad_heat_(i, j, k) = heat[k];
      // Cache the radiative surface fluxes in flux_last_ (per-step flux
      // accumulation adds them below).
      flux_last_.sw_sfc(i, j) = rf.sw_absorbed_sfc;
      flux_last_.lw_down(i, j) = rf.lw_down_sfc;
    }
  }
  // Extra cost of a radiation step (the "particularly long atmosphere
  // steps" of Fig. 2).
  work_points_ += 6.0 * static_cast<double>(j1_ - j0_) * cfg_.nlon *
                  cfg_.nlev;
}

void AtmosphereModel::update_thermal_jet(par::Comm* comm) {
  // Zonal-mean lower-tropospheric temperature -> surface jet target.
  const int k_low = 5 * cfg_.nlev / 6;
  std::vector<double> tbar(cfg_.nlat, 0.0);
  for (int j = j0_; j < j1_; ++j) {
    double sum = 0.0;
    for (int i = 0; i < cfg_.nlon; ++i) sum += t3_(i, j, k_low);
    tbar[j] = sum / cfg_.nlon;
  }
  if (comm != nullptr && comm->size() > 1) {
    std::vector<double> out(cfg_.nlat, 0.0);
    comm->allreduce(std::span<const double>(tbar),
                    std::span<double>(out), par::ReduceOp::kSum);
    tbar.swap(out);
  }
  std::vector<double> ujet(cfg_.nlat);
  for (int j = 0; j < cfg_.nlat; ++j) {
    const double lat = grid_.lat(j);
    const double envelope =
        std::exp(-std::pow(lat / (75.0 * c::deg2rad), 8.0));
    double base = -7.0 * std::cos(3.0 * lat) * envelope;
    // Thermal-wind increment from the meridional temperature gradient.
    const int jm = std::max(0, j - 1);
    const int jp = std::min(cfg_.nlat - 1, j + 1);
    const double dtdy = (tbar[jp] - tbar[jm]) / std::max(1, jp - jm);
    base += -1.2 * dtdy * std::sin(lat);
    ujet[j] = std::clamp(base, -25.0, 25.0);
  }
  dyn_.set_thermal_jet(ujet);
}

void AtmosphereModel::run_physics(const ModelTime& now) {
  (void)now;
  Column col;
  col.t.resize(cfg_.nlev);
  col.q.resize(cfg_.nlev);
  std::vector<double> heat(cfg_.nlev);
  const auto& us = u_sfc();
  const auto& vs = v_sfc();
  for (int j = j0_; j < j1_; ++j) {
    for (int i = 0; i < cfg_.nlon; ++i) {
      for (int k = 0; k < cfg_.nlev; ++k) {
        col.t[k] = t3_(i, j, k);
        col.q[k] = q3_(i, j, k);
        heat[k] = rad_heat_(i, j, k);
      }
      Surface s;
      s.tsurf = sfc_.tsurf(i, j);
      s.albedo = sfc_.albedo(i, j);
      s.roughness = sfc_.roughness(i, j);
      s.wetness = sfc_.wetness(i, j);
      s.is_ocean = sfc_.is_ocean(i, j) != 0;
      s.is_ice = sfc_.is_ice(i, j) != 0;
      const ColumnFluxes f = step_column_physics(cfg_, col, s, heat,
                                                 us(i, j), vs(i, j), cfg_.dt);
      for (int k = 0; k < cfg_.nlev; ++k) {
        // Physical-range guards: excursions beyond these are numerical.
        t3_(i, j, k) = std::clamp(col.t[k], 170.0, 330.0);
        q3_(i, j, k) = std::clamp(col.q[k], 0.0, 0.04);
      }
      flux_last_.sensible(i, j) = f.sensible;
      flux_last_.latent(i, j) = f.latent;
      flux_last_.evaporation(i, j) = f.evaporation;
      flux_last_.rain(i, j) = f.precip_rain;
      flux_last_.snow(i, j) = f.precip_snow;
      flux_last_.taux(i, j) = f.taux;
      flux_last_.tauy(i, j) = f.tauy;
      // Accumulate for the coupler.
      flux_accum_.sw_sfc(i, j) += flux_last_.sw_sfc(i, j);
      flux_accum_.lw_down(i, j) += flux_last_.lw_down(i, j);
      flux_accum_.sensible(i, j) += f.sensible;
      flux_accum_.latent(i, j) += f.latent;
      flux_accum_.evaporation(i, j) += f.evaporation;
      flux_accum_.rain(i, j) += f.precip_rain;
      flux_accum_.snow(i, j) += f.precip_snow;
      flux_accum_.taux(i, j) += f.taux;
      flux_accum_.tauy(i, j) += f.tauy;
    }
  }
  ++flux_steps_;
  work_points_ += 2.0 * static_cast<double>(j1_ - j0_) * cfg_.nlon *
                  cfg_.nlev;
}

void AtmosphereModel::step(const ModelTime& now) {
  FOAM_TRACE_SCOPE("atm.step");
  // Radiation on its period (twice daily by default).
  const auto period_steps =
      static_cast<std::int64_t>(cfg_.radiation_period / cfg_.dt);
  if (steps_ - last_radiation_step_ >= period_steps) {
    FOAM_TRACE_SCOPE("atm.radiation");
    update_radiation_cache(now);
    update_thermal_jet(comm_);
    last_radiation_step_ = steps_;
  }
  {
    FOAM_TRACE_SCOPE("atm.dynamics");
    dyn_.step(comm_);
  }
  if (cfg_.emulate_full_core_cost) {
    FOAM_TRACE_SCOPE("atm.emulate_core");
    // One synthesis + analysis per physics level beyond the reduced core:
    // the transform work the full 18-level PCCM2 core would perform. The
    // levels are independent, so each rep moves the whole level stack
    // through one batched analysis (a single fused allreduce when
    // parallel) and one batched synthesis.
    const int nem = cfg_.nlev - cfg_.ndyn;
    std::vector<Field2Dd> scratch(nem, Field2Dd(cfg_.nlon, cfg_.nlat, 0.0));
    std::vector<const Field2Dd*> in_ptrs(nem);
    std::vector<Field2Dd*> out_ptrs(nem);
    for (int k = cfg_.ndyn; k < cfg_.nlev; ++k) {
      Field2Dd& sc = scratch[k - cfg_.ndyn];
      for (int j = j0_; j < j1_; ++j)
        for (int i = 0; i < cfg_.nlon; ++i) sc(i, j) = t3_(i, j, k);
      in_ptrs[k - cfg_.ndyn] = &sc;
      out_ptrs[k - cfg_.ndyn] = &sc;
    }
    for (int rep = 0; rep < cfg_.emulate_transforms_per_level; ++rep) {
      std::vector<numerics::SpectralField> sps =
          (comm_ != nullptr) ? pst_.analyze_batch(*comm_, in_ptrs)
                             : st_.analyze_batch(in_ptrs, ws_);
      std::vector<const numerics::SpectralField*> sp_ptrs(nem);
      for (int n = 0; n < nem; ++n) sp_ptrs[n] = &sps[n];
      pst_.synthesize_batch(sp_ptrs, out_ptrs);
      work_points_ +=
          static_cast<double>(nem) * (j1_ - j0_) * cfg_.nlon;
    }
  }
  {
    FOAM_TRACE_SCOPE("atm.advect");
    advect_tracers();
  }
  {
    FOAM_TRACE_SCOPE("atm.physics");
    run_physics(now);
  }
  ++steps_;
}

void AtmosphereModel::save_state(HistoryWriter& out,
                                 const std::string& prefix) const {
  out.write(prefix + ".t3", t3_);
  out.write(prefix + ".q3", q3_);
  out.write(prefix + ".rad_heat", rad_heat_);
  out.write(prefix + ".sw_cache", flux_last_.sw_sfc);
  out.write(prefix + ".lwd_cache", flux_last_.lw_down);
  out.write_scalar(prefix + ".steps", static_cast<double>(steps_));
  out.write_scalar(prefix + ".last_rad",
                   static_cast<double>(last_radiation_step_));
  dyn_.save_state(out, prefix + ".dyn");
}

void AtmosphereModel::load_state(const HistoryReader& in,
                                 const std::string& prefix) {
  auto load3 = [&](const std::string& name, Field3Dd& f) {
    const auto& rec = in.find(name);
    FOAM_REQUIRE(rec.data.size() == f.size(), "checkpoint size " << name);
    std::copy(rec.data.begin(), rec.data.end(), f.vec().begin());
  };
  auto load2 = [&](const std::string& name, Field2Dd& f) {
    const auto& rec = in.find(name);
    FOAM_REQUIRE(rec.data.size() == f.size(), "checkpoint size " << name);
    std::copy(rec.data.begin(), rec.data.end(), f.vec().begin());
  };
  load3(prefix + ".t3", t3_);
  load3(prefix + ".q3", q3_);
  load3(prefix + ".rad_heat", rad_heat_);
  load2(prefix + ".sw_cache", flux_last_.sw_sfc);
  load2(prefix + ".lwd_cache", flux_last_.lw_down);
  steps_ = static_cast<std::int64_t>(in.find(prefix + ".steps").data[0]);
  last_radiation_step_ =
      static_cast<std::int64_t>(in.find(prefix + ".last_rad").data[0]);
  dyn_.load_state(in, prefix + ".dyn");
  reset_flux_accumulation();
}

double AtmosphereModel::mean_t_sfc_level() const {
  double num = 0.0, den = 0.0;
  const int kb = cfg_.nlev - 1;
  for (int j = j0_; j < j1_; ++j) {
    const double w = grid_.gauss_weight(j);
    for (int i = 0; i < cfg_.nlon; ++i) {
      num += w * t3_(i, j, kb);
      den += w;
    }
  }
  if (comm_ != nullptr && comm_->size() > 1) {
    num = comm_->allreduce_scalar(num, par::ReduceOp::kSum);
    den = comm_->allreduce_scalar(den, par::ReduceOp::kSum);
  }
  return num / den;
}

double AtmosphereModel::mean_precip() const {
  double num = 0.0, den = 0.0;
  for (int j = j0_; j < j1_; ++j) {
    const double w = grid_.gauss_weight(j);
    for (int i = 0; i < cfg_.nlon; ++i) {
      num += w * (flux_last_.rain(i, j) + flux_last_.snow(i, j));
      den += w;
    }
  }
  if (comm_ != nullptr && comm_->size() > 1) {
    num = comm_->allreduce_scalar(num, par::ReduceOp::kSum);
    den = comm_->allreduce_scalar(den, par::ReduceOp::kSum);
  }
  return num / den;
}

}  // namespace foam::atm
