#pragma once

/// \file earth.hpp
/// Procedural Earth-like boundary datasets.
///
/// The paper used observed topography (hand-tuned "to preserve basin
/// topology at the represented resolution"), the Matthews vegetation data
/// and the Shea-Trenberth-Reynolds SST climatology. None of those files are
/// available here, so this module builds analytic equivalents that preserve
/// what the experiments actually consume:
///   * basin topology — Atlantic / Pacific / Indian / Arctic / Southern
///     oceans separated by the Americas, Eurasia-Africa, Australia and
///     Antarctica, with an open Drake Passage and a closed Panama isthmus
///     (the Fig. 4 two-basin analysis needs distinct N. Atlantic and
///     N. Pacific);
///   * coastal drainage — continents slope toward their coasts so river
///     routing produces basins that drain to the sea;
///   * the observed broad SST structure — warm pool, equatorial Pacific
///     cold tongue, western-boundary warm currents, polar freeze clamp —
///     which is the "observations" panel of Fig. 3.
///
/// Longitudes are degrees east in [0, 360), latitudes degrees north.

#include "base/field.hpp"
#include "numerics/grid.hpp"

namespace foam::data {

/// Soil types of the FOAM land model (5 types derived from vegetation data
/// in the paper, plus ocean/sea-ice handled by the coupler).
enum class SoilType : int {
  kIceSheet = 0,   // Greenland / Antarctica
  kTundra = 1,
  kGrassland = 2,
  kForest = 3,
  kDesert = 4,
};

/// True where the point is on one of the procedural continents.
bool is_land(double lat_deg, double lon_deg);

/// Land elevation [m]; 0 over ocean. Smooth ranges standing in for the
/// Rockies, Andes, Himalaya and the ice sheets.
double elevation(double lat_deg, double lon_deg);

/// Ocean depth [m], positive downward; 0 over land. Deep interior basins
/// (~4500 m) shoaling toward coasts, a mid-Atlantic ridge and shallow
/// shelves.
double ocean_depth(double lat_deg, double lon_deg);

/// Soil type for a land point (meaningless over ocean).
SoilType soil_type(double lat_deg, double lon_deg);

/// Monthly SST climatology [deg C]; month in [0, 12). This is the analytic
/// stand-in for the Shea et al. observations of Fig. 3(b).
double sst_climatology(double lat_deg, double lon_deg, int month);

/// Annual-mean SST climatology [deg C].
double sst_annual_mean(double lat_deg, double lon_deg);

/// Solar declination [radians] for a fractional day of the 365-day year.
double solar_declination(double day_of_year);

/// Cosine of the solar zenith angle for latitude [rad], declination [rad]
/// and hour angle [rad from local noon]; clamped at 0 below the horizon.
double cos_zenith(double lat_rad, double declination, double hour_angle);

/// Daily-mean top-of-atmosphere insolation [W/m^2] at a latitude for a
/// given day of year (used by the radiation scheme and tests).
double daily_mean_insolation(double lat_rad, double day_of_year);

// --- rasterizers ---------------------------------------------------------

/// Land mask on a grid: 1 = land, 0 = ocean.
Field2D<int> land_mask(const numerics::LatLonGrid& grid);

/// Ocean mask: 1 = ocean, 0 = land (complement of land_mask).
Field2D<int> ocean_mask(const numerics::LatLonGrid& grid);

/// Elevation [m] on a grid (0 over ocean).
Field2Dd orography(const numerics::LatLonGrid& grid);

/// Ocean depth [m] on a grid (0 over land).
Field2Dd bathymetry(const numerics::LatLonGrid& grid);

/// Soil types on a grid (value meaningful only where land_mask == 1).
Field2D<int> soil_types(const numerics::LatLonGrid& grid);

/// Monthly SST climatology rasterized on a grid (land cells get the
/// coastal value; mask separately).
Field2Dd sst_climatology_field(const numerics::LatLonGrid& grid, int month);

/// Annual-mean SST on a grid.
Field2Dd sst_annual_mean_field(const numerics::LatLonGrid& grid);

}  // namespace foam::data
