#include "data/earth.hpp"

#include <algorithm>
#include <cmath>

#include "base/constants.hpp"

namespace foam::data {

using constants::deg2rad;
using constants::pi;
using constants::sea_ice_freeze_c;
using constants::solar_constant;
using constants::two_pi;

namespace {

double wrap_lon(double lon) {
  double l = std::fmod(lon, 360.0);
  if (l < 0.0) l += 360.0;
  return l;
}

/// True if lon (wrapped) lies in [lo, hi], where the interval may cross 0.
bool lon_in(double lon, double lo, double hi) {
  lon = wrap_lon(lon);
  lo = wrap_lon(lo);
  hi = wrap_lon(hi);
  if (lo <= hi) return lon >= lo && lon <= hi;
  return lon >= lo || lon <= hi;
}

/// Fraction through [a, b] clamped to [0, 1].
double ramp(double x, double a, double b) {
  return std::clamp((x - a) / (b - a), 0.0, 1.0);
}

struct Continent {
  bool contains(double lat, double lon) const {
    if (lat < lat_lo || lat > lat_hi) return false;
    if (lon_hi - lon_lo >= 360.0) return true;  // polar cap spans all lons
    // Taper the longitudinal extent toward the latitude ends.
    const double t = 4.0 * ramp(lat, lat_lo, lat_hi) *
                     (1.0 - ramp(lat, lat_lo, lat_hi));
    const double shrink = 0.5 * (1.0 - taper * t - (1.0 - taper));
    const double width = wrap_lon(lon_hi - lon_lo);
    const double lo = lon_lo + shrink * width + skew * (lat - lat_lo);
    const double hi = lon_hi - shrink * width + skew * (lat - lat_lo);
    return lon_in(lon, lo, hi);
  }
  double lat_lo, lat_hi;
  double lon_lo, lon_hi;
  double taper = 1.0;  // 1 = full width at mid-latitude band, <1 = blockier
  double skew = 0.0;   // deg lon per deg lat tilt
};

// The continental inventory. Shapes are deliberately simple; what matters
// (and is tested) is the basin topology described in the header.
// clang-format off
const Continent kContinents[] = {
    // South America: tapering wedge, Andes along its west side.
    {-54.0,  12.0, 278.0, 326.0, 0.85,  -0.35},
    // Central America land bridge: closes the Panama seaway.
    { 6.0,   20.0, 258.0, 282.0, 0.0,   -0.9},
    // North America.
    { 18.0,  72.0, 235.0, 300.0, 0.55,   0.0},
    // Greenland.
    { 60.0,  82.0, 300.0, 335.0, 0.5,    0.0},
    // Africa (crosses the prime meridian).
    {-34.0,  36.0, 343.0,  50.0, 0.75,   0.0},
    // Eurasia.
    { 36.0,  76.0, 350.0, 178.0, 0.3,    0.0},
    // India + Southeast Asia peninsula.
    {  6.0,  36.0,  68.0, 105.0, 0.7,    0.0},
    // Maritime continent block (Indonesia, coarse-grid equivalent).
    {-9.0,    8.0,  98.0, 122.0, 0.4,    0.0},
    // Australia.
    {-38.0, -12.0, 114.0, 153.0, 0.6,    0.0},
    // Antarctica: full polar cap.
    {-90.0, -67.0,   0.0, 360.0, 0.0,    0.0},
};
// clang-format on

/// Distance-to-coast proxy: smallest margin (deg) by which (lat,lon) stays
/// inside some continent; 0 when not on land. Cheap probe-based estimate.
double interior_margin(double lat, double lon) {
  if (!is_land(lat, lon)) return 0.0;
  for (double d = 1.0; d <= 20.0; d += 1.0) {
    const bool edge =
        !is_land(lat + d, lon) || !is_land(lat - d, lon) ||
        !is_land(lat, lon + d / std::max(0.2, std::cos(lat * deg2rad))) ||
        !is_land(lat, lon - d / std::max(0.2, std::cos(lat * deg2rad)));
    if (edge) return d;
  }
  return 20.0;
}

double gaussian_bump(double lat, double lon, double clat, double clon,
                     double slat, double slon, double height) {
  double dlon = wrap_lon(lon - clon);
  if (dlon > 180.0) dlon -= 360.0;
  const double dlat = lat - clat;
  return height * std::exp(-(dlat * dlat) / (2.0 * slat * slat) -
                           (dlon * dlon) / (2.0 * slon * slon));
}

}  // namespace

bool is_land(double lat_deg, double lon_deg) {
  for (const Continent& c : kContinents)
    if (c.contains(lat_deg, lon_deg)) return true;
  return false;
}

double elevation(double lat_deg, double lon_deg) {
  if (!is_land(lat_deg, lon_deg)) return 0.0;
  // Base elevation rises with distance from the coast so runoff drains
  // seaward (the property river routing needs).
  double h = 60.0 * interior_margin(lat_deg, lon_deg);
  // Mountain ranges.
  h += gaussian_bump(lat_deg, lon_deg, 42.0, 248.0, 12.0, 8.0, 1800.0);   // Rockies
  h += gaussian_bump(lat_deg, lon_deg, -20.0, 290.0, 20.0, 4.0, 2500.0);  // Andes
  h += gaussian_bump(lat_deg, lon_deg, 32.0, 85.0, 7.0, 16.0, 3500.0);    // Himalaya
  h += gaussian_bump(lat_deg, lon_deg, 46.0, 10.0, 4.0, 8.0, 1200.0);     // Alps
  // Ice sheets are high plateaus.
  if (lat_deg < -70.0) h += 2200.0;
  if (lat_deg > 64.0 && lon_in(lon_deg, 302.0, 333.0)) h += 1800.0;  // Greenland
  return h;
}

double ocean_depth(double lat_deg, double lon_deg) {
  if (is_land(lat_deg, lon_deg)) return 0.0;
  // Deep basin shoaling toward the nearest coast.
  double min_edge = 12.0;
  for (double d = 1.0; d < 12.0; d += 1.0) {
    const double stretch = 1.0 / std::max(0.2, std::cos(lat_deg * deg2rad));
    if (is_land(lat_deg + d, lon_deg) || is_land(lat_deg - d, lon_deg) ||
        is_land(lat_deg, lon_deg + d * stretch) ||
        is_land(lat_deg, lon_deg - d * stretch)) {
      min_edge = d;
      break;
    }
  }
  double depth = 4500.0 * ramp(min_edge, 0.0, 9.0);
  depth = std::max(depth, 120.0);  // continental shelf floor
  // Mid-Atlantic ridge.
  depth -= gaussian_bump(lat_deg, lon_deg, 0.0, 330.0, 60.0, 6.0, 1800.0);
  return std::max(depth, 100.0);
}

SoilType soil_type(double lat_deg, double lon_deg) {
  if (lat_deg < -66.0) return SoilType::kIceSheet;
  if (lat_deg > 64.0 && lon_in(lon_deg, 300.0, 335.0))
    return SoilType::kIceSheet;  // Greenland
  const double alat = std::abs(lat_deg);
  if (alat > 62.0) return SoilType::kTundra;
  // Subtropical deserts (Sahara / Australia / SW North America bands).
  if (alat > 15.0 && alat < 32.0) {
    if (lon_in(lon_deg, 350.0, 35.0) && lat_deg > 0.0) return SoilType::kDesert;
    if (lon_in(lon_deg, 118.0, 140.0) && lat_deg < 0.0) return SoilType::kDesert;
    if (lon_in(lon_deg, 245.0, 260.0) && lat_deg > 0.0) return SoilType::kDesert;
  }
  if (alat < 25.0) return SoilType::kForest;     // tropical forest belt
  if (alat < 50.0) return SoilType::kGrassland;  // mid-latitude plains
  return SoilType::kForest;                      // boreal forest
}

double sst_annual_mean(double lat_deg, double lon_deg) {
  // Broad meridional structure.
  double t = -2.0 + 30.0 * std::exp(-std::pow(lat_deg / 32.0, 2.0));
  // Western Pacific warm pool.
  t += gaussian_bump(lat_deg, lon_deg, 5.0, 140.0, 12.0, 25.0, 1.8);
  // Equatorial east-Pacific cold tongue.
  t -= gaussian_bump(lat_deg, lon_deg, -1.0, 255.0, 5.0, 25.0, 3.0);
  // Western boundary currents: warm tongues off the east coasts.
  t += gaussian_bump(lat_deg, lon_deg, 38.0, 300.0, 6.0, 12.0, 2.5);  // Gulf Stream
  t += gaussian_bump(lat_deg, lon_deg, 37.0, 145.0, 6.0, 12.0, 2.0);  // Kuroshio
  // Eastern boundary upwelling: cool strips off the west coasts.
  t -= gaussian_bump(lat_deg, lon_deg, -15.0, 283.0, 12.0, 5.0, 2.0);  // Peru
  t -= gaussian_bump(lat_deg, lon_deg, -15.0, 10.0, 12.0, 5.0, 1.5);   // Benguela
  return std::max(t, sea_ice_freeze_c);
}

double sst_climatology(double lat_deg, double lon_deg, int month) {
  // Seasonal cycle: amplitude grows with latitude, peaks ~2 months after
  // solstice, hemispheres out of phase.
  const double phase = two_pi * (month - 1.5) / 12.0;  // max around Aug (NH)
  const double amp = 4.0 * std::tanh(std::abs(lat_deg) / 35.0);
  const double sign = (lat_deg >= 0.0) ? 1.0 : -1.0;
  const double t = sst_annual_mean(lat_deg, lon_deg) -
                   sign * amp * std::cos(phase);
  return std::max(t, sea_ice_freeze_c);
}

double solar_declination(double day_of_year) {
  // Max declination 23.45 deg ~ day 172 (June 21) of the 365-day year.
  return 23.45 * deg2rad *
         std::cos(two_pi * (day_of_year - 172.0) / 365.0);
}

double cos_zenith(double lat_rad, double declination, double hour_angle) {
  const double mu = std::sin(lat_rad) * std::sin(declination) +
                    std::cos(lat_rad) * std::cos(declination) *
                        std::cos(hour_angle);
  return std::max(0.0, mu);
}

double daily_mean_insolation(double lat_rad, double day_of_year) {
  const double dec = solar_declination(day_of_year);
  // Hour angle of sunset.
  const double cos_h0 = -std::tan(lat_rad) * std::tan(dec);
  double h0 = 0.0;
  if (cos_h0 <= -1.0) {
    h0 = pi;  // polar day
  } else if (cos_h0 >= 1.0) {
    h0 = 0.0;  // polar night
  } else {
    h0 = std::acos(cos_h0);
  }
  const double q = (solar_constant / pi) *
                   (h0 * std::sin(lat_rad) * std::sin(dec) +
                    std::cos(lat_rad) * std::cos(dec) * std::sin(h0));
  return std::max(0.0, q);
}

namespace {

template <typename F>
Field2Dd rasterize(const numerics::LatLonGrid& grid, F&& f) {
  Field2Dd out(grid.nlon(), grid.nlat());
  for (int j = 0; j < grid.nlat(); ++j) {
    const double lat = grid.lat(j) / deg2rad;
    for (int i = 0; i < grid.nlon(); ++i)
      out(i, j) = f(lat, grid.lon(i) / deg2rad);
  }
  return out;
}

}  // namespace

Field2D<int> land_mask(const numerics::LatLonGrid& grid) {
  Field2D<int> out(grid.nlon(), grid.nlat());
  for (int j = 0; j < grid.nlat(); ++j) {
    const double lat = grid.lat(j) / deg2rad;
    for (int i = 0; i < grid.nlon(); ++i)
      out(i, j) = is_land(lat, grid.lon(i) / deg2rad) ? 1 : 0;
  }
  return out;
}

Field2D<int> ocean_mask(const numerics::LatLonGrid& grid) {
  Field2D<int> out = land_mask(grid);
  for (int j = 0; j < grid.nlat(); ++j)
    for (int i = 0; i < grid.nlon(); ++i) out(i, j) = 1 - out(i, j);
  return out;
}

Field2Dd orography(const numerics::LatLonGrid& grid) {
  return rasterize(grid, [](double lat, double lon) {
    return elevation(lat, lon);
  });
}

Field2Dd bathymetry(const numerics::LatLonGrid& grid) {
  Field2Dd raw = rasterize(grid, [](double lat, double lon) {
    return ocean_depth(lat, lon);
  });
  // Smooth ocean depths (land stays land) so adjacent water columns never
  // differ by kilometre-scale cliffs. The paper tuned its topography by
  // hand at the represented resolution; this is the procedural equivalent.
  for (int pass = 0; pass < 2; ++pass) {
    Field2Dd next(raw);
    for (int j = 0; j < grid.nlat(); ++j) {
      for (int i = 0; i < grid.nlon(); ++i) {
        if (raw(i, j) <= 0.0) continue;
        double sum = 4.0 * raw(i, j);
        double wsum = 4.0;
        auto tap = [&](double v) {
          if (v > 0.0) {
            sum += v;
            wsum += 1.0;
          }
        };
        tap(raw.wrap_x(i + 1, j));
        tap(raw.wrap_x(i - 1, j));
        if (j + 1 < grid.nlat()) tap(raw(i, j + 1));
        if (j > 0) tap(raw(i, j - 1));
        next(i, j) = sum / wsum;
      }
    }
    raw = std::move(next);
  }
  return raw;
}

Field2D<int> soil_types(const numerics::LatLonGrid& grid) {
  Field2D<int> out(grid.nlon(), grid.nlat());
  for (int j = 0; j < grid.nlat(); ++j) {
    const double lat = grid.lat(j) / deg2rad;
    for (int i = 0; i < grid.nlon(); ++i)
      out(i, j) =
          static_cast<int>(soil_type(lat, grid.lon(i) / deg2rad));
  }
  return out;
}

Field2Dd sst_climatology_field(const numerics::LatLonGrid& grid, int month) {
  return rasterize(grid, [month](double lat, double lon) {
    return sst_climatology(lat, lon, month);
  });
}

Field2Dd sst_annual_mean_field(const numerics::LatLonGrid& grid) {
  return rasterize(grid, [](double lat, double lon) {
    return sst_annual_mean(lat, lon);
  });
}

}  // namespace foam::data
