#include "numerics/grid.hpp"

#include <cmath>

#include "base/constants.hpp"
#include "numerics/gauss.hpp"

namespace foam::numerics {

using constants::deg2rad;
using constants::earth_radius;
using constants::pi;
using constants::two_pi;

double LatLonGrid::total_area() const {
  double sum = 0.0;
  for (int j = 0; j < nlat(); ++j) sum += area_[j] * nlon_;
  return sum;
}

void LatLonGrid::finalize() {
  FOAM_REQUIRE(nlon_ > 0, "grid nlon=" << nlon_);
  FOAM_REQUIRE(lat_edge_.size() == lat_.size() + 1, "lat edges incomplete");
  const double dlon = two_pi / nlon_;
  lon_.resize(nlon_);
  lon_edge_.resize(nlon_ + 1);
  for (int i = 0; i < nlon_; ++i) lon_[i] = i * dlon;
  for (int i = 0; i <= nlon_; ++i) lon_edge_[i] = (i - 0.5) * dlon;
  area_.resize(lat_.size());
  for (std::size_t j = 0; j < lat_.size(); ++j) {
    // Exact area of a spherical rectangle: R^2 dlon (sin(top) - sin(bot)).
    area_[j] = earth_radius * earth_radius * dlon *
               (std::sin(lat_edge_[j + 1]) - std::sin(lat_edge_[j]));
    FOAM_REQUIRE(area_[j] > 0.0, "non-positive cell area at j=" << j);
  }
}

GaussianGrid::GaussianGrid(int nlon, int nlat) {
  // Odd nlat is legal: the quadrature then has an equator node (mu = 0),
  // which the spectral engine treats as an unpaired row.
  FOAM_REQUIRE(nlon > 0 && nlat > 1,
               "GaussianGrid(" << nlon << "," << nlat << ")");
  nlon_ = nlon;
  const GaussNodes nodes = gauss_legendre(nlat);
  mu_ = nodes.mu;
  weight_ = nodes.weight;
  lat_.resize(nlat);
  for (int j = 0; j < nlat; ++j) lat_[j] = std::asin(mu_[j]);
  // Latitude edges from cumulative Gaussian weights: sin(edge) partitions
  // [-1, 1] so each cell's area equals its quadrature weight share.
  lat_edge_.resize(nlat + 1);
  double s = -1.0;
  lat_edge_[0] = -pi / 2.0;
  for (int j = 0; j < nlat; ++j) {
    s += weight_[j];
    lat_edge_[j + 1] = std::asin(std::min(1.0, std::max(-1.0, s)));
  }
  lat_edge_[nlat] = pi / 2.0;
  finalize();
}

MercatorGrid::MercatorGrid(int nlon, int nlat, double lat_max_deg) {
  FOAM_REQUIRE(nlon > 0 && nlat > 1,
               "MercatorGrid(" << nlon << "," << nlat << ")");
  FOAM_REQUIRE(lat_max_deg < 90.0, "lat_max_deg=" << lat_max_deg);
  nlon_ = nlon;
  auto to_merc = [](double lat) {
    return std::log(std::tan(pi / 4.0 + lat / 2.0));
  };
  auto from_merc = [](double y) {
    return 2.0 * (std::atan(std::exp(y)) - pi / 4.0);
  };
  // Conformal default: Mercator spacing equal to the longitude spacing
  // (square cells); otherwise clip at the requested latitude.
  const double y_max = (lat_max_deg <= 0.0)
                           ? (nlat / 2.0) * (two_pi / nlon)
                           : to_merc(lat_max_deg * deg2rad);
  const double dy_merc = 2.0 * y_max / nlat;
  lat_.resize(nlat);
  lat_edge_.resize(nlat + 1);
  for (int j = 0; j <= nlat; ++j)
    lat_edge_[j] = from_merc(-y_max + j * dy_merc);
  for (int j = 0; j < nlat; ++j)
    lat_[j] = from_merc(-y_max + (j + 0.5) * dy_merc);
  finalize();
  cos_lat_.resize(nlat);
  dx_.resize(nlat);
  dy_.resize(nlat);
  const double dlon = two_pi / nlon;
  for (int j = 0; j < nlat; ++j) {
    cos_lat_[j] = std::cos(lat_[j]);
    dx_[j] = earth_radius * cos_lat_[j] * dlon;
    dy_[j] = earth_radius * (lat_edge_[j + 1] - lat_edge_[j]);
  }
}

}  // namespace foam::numerics
