#pragma once

/// \file transpose_spectral.hpp
/// Transpose-based parallel spectral transform.
///
/// PCCM2 incorporated "parallel spectral transform algorithms developed at
/// Argonne and Oak Ridge" (Foster & Worley): the two principal strategies
/// are the *distributed* Legendre transform (partial sums completed by a
/// reduction — ParSpectralTransform in spectral.hpp) and the *transpose*
/// algorithm implemented here: after the latitude-local FFTs, an
/// all-to-all redistributes the Fourier coefficients so each rank owns a
/// subset of zonal wavenumbers over *all* latitudes, computes those m's
/// full Legendre sums locally with no further communication, and an
/// all-gather (or the inverse transpose on synthesis) restores the
/// latitude decomposition.
///
/// The two variants produce identical results; they trade collective
/// bandwidth (transpose) against reduction latency (distributed sum) — the
/// choice that mattered on the paper's SP2.
///
/// The transpose itself runs in one of two modes (toggleable per instance,
/// identical results):
///  * blocking — a plain Comm::alltoall: every block is packed before any
///    is sent, and nothing unpacks until every block has arrived;
///  * overlap (default) — all receives are pre-posted (Comm::irecv), each
///    outgoing block is launched (Comm::isend) as soon as it is packed so
///    packing overlaps transmission, and arrived blocks are unpacked in
///    completion order (Comm::waitany) while the rest are still in flight.

#include <functional>
#include <vector>

#include "numerics/spectral.hpp"

namespace foam::numerics {

class TransposeSpectralTransform {
 public:
  /// \p my_lats must be the rows owned by this rank under the same
  /// decomposition on every rank of \p comm (sizes may differ by one).
  /// Wavenumbers m in [0, mmax] are block-distributed over ranks.
  /// \p overlap selects the nonblocking comm/compute-overlap exchange
  /// (results are identical either way; see the file comment).
  TransposeSpectralTransform(const SpectralTransform& serial,
                             std::vector<int> my_lats, par::Comm& comm,
                             bool overlap = true);

  /// Zonal wavenumbers owned by this rank, [m_lo, m_hi).
  int m_lo() const { return m_lo_; }
  int m_hi() const { return m_hi_; }

  /// Toggle the overlap exchange (for A/B timing; results are identical).
  void set_overlap(bool overlap) { overlap_ = overlap; }
  bool overlap() const { return overlap_; }

  /// Grid -> spectral with the transpose data flow; every rank returns the
  /// full spectral field (the trailing allgather; a production dycore
  /// would keep the m-decomposition, which the m-local entry points below
  /// expose).
  SpectralField analyze(par::Comm& comm, const Field2Dd& f) const;

  /// Spectral -> grid: inverse Legendre on owned m's, inverse transpose,
  /// then latitude-local inverse FFTs into the rank's rows of \p f.
  void synthesize(par::Comm& comm, const SpectralField& s, Field2Dd& f) const;

  /// The forward transpose alone (exposed for tests and the communication
  /// bench): input Fourier rows for the rank's latitudes, output this
  /// rank's m-columns over all latitudes.
  /// fm_rows is indexed [row][m] over my_lats; the result is indexed
  /// [m - m_lo][j] over all nlat latitudes.
  std::vector<std::vector<std::complex<double>>> forward_transpose(
      par::Comm& comm,
      const std::vector<std::vector<std::complex<double>>>& fm_rows) const;

 private:
  /// Exchange equal-size padded blocks with every rank (self included):
  /// pack(dst, out) fills the zero-initialized outgoing block for \p dst,
  /// unpack(src, in) consumes the block arrived from \p src. Runs the
  /// pre-posted irecv / pack-and-isend / unpack-on-completion pipeline when
  /// overlap_ is set, a plain alltoall otherwise — same data layout, same
  /// results.
  void exchange_blocks(
      par::Comm& comm, int tag, std::size_t block,
      const std::function<void(int, double*)>& pack,
      const std::function<void(int, const double*)>& unpack) const;

  const SpectralTransform& serial_;
  std::vector<int> my_lats_;
  /// Per-instance engine scratch (instances are per-rank, never shared).
  mutable SpectralWorkspace ws_;
  int nranks_;
  bool overlap_ = true;
  int m_lo_ = 0;
  int m_hi_ = 0;
  std::vector<int> lat_owner_;    // owning rank of each latitude row
  std::vector<int> m_lo_of_;      // m range per rank
  std::vector<int> m_hi_of_;
  int max_lats_per_rank_ = 0;
  int max_ms_per_rank_ = 0;
};

}  // namespace foam::numerics
