#pragma once

/// \file transpose_spectral.hpp
/// Transpose-based parallel spectral transform.
///
/// PCCM2 incorporated "parallel spectral transform algorithms developed at
/// Argonne and Oak Ridge" (Foster & Worley): the two principal strategies
/// are the *distributed* Legendre transform (partial sums completed by a
/// reduction — ParSpectralTransform in spectral.hpp) and the *transpose*
/// algorithm implemented here: after the latitude-local FFTs, an
/// all-to-all redistributes the Fourier coefficients so each rank owns a
/// subset of zonal wavenumbers over *all* latitudes, computes those m's
/// full Legendre sums locally with no further communication, and an
/// all-gather (or the inverse transpose on synthesis) restores the
/// latitude decomposition.
///
/// The two variants produce identical results; they trade collective
/// bandwidth (transpose) against reduction latency (distributed sum) — the
/// choice that mattered on the paper's SP2.

#include <vector>

#include "numerics/spectral.hpp"

namespace foam::numerics {

class TransposeSpectralTransform {
 public:
  /// \p my_lats must be the rows owned by this rank under the same
  /// decomposition on every rank of \p comm (sizes may differ by one).
  /// Wavenumbers m in [0, mmax] are block-distributed over ranks.
  TransposeSpectralTransform(const SpectralTransform& serial,
                             std::vector<int> my_lats, par::Comm& comm);

  /// Zonal wavenumbers owned by this rank, [m_lo, m_hi).
  int m_lo() const { return m_lo_; }
  int m_hi() const { return m_hi_; }

  /// Grid -> spectral with the transpose data flow; every rank returns the
  /// full spectral field (the trailing allgather; a production dycore
  /// would keep the m-decomposition, which the m-local entry points below
  /// expose).
  SpectralField analyze(par::Comm& comm, const Field2Dd& f) const;

  /// Spectral -> grid: inverse Legendre on owned m's, inverse transpose,
  /// then latitude-local inverse FFTs into the rank's rows of \p f.
  void synthesize(par::Comm& comm, const SpectralField& s, Field2Dd& f) const;

  /// The forward transpose alone (exposed for tests and the communication
  /// bench): input Fourier rows for the rank's latitudes, output this
  /// rank's m-columns over all latitudes.
  /// fm_rows is indexed [row][m] over my_lats; the result is indexed
  /// [m - m_lo][j] over all nlat latitudes.
  std::vector<std::vector<std::complex<double>>> forward_transpose(
      par::Comm& comm,
      const std::vector<std::vector<std::complex<double>>>& fm_rows) const;

 private:
  const SpectralTransform& serial_;
  std::vector<int> my_lats_;
  int nranks_;
  int m_lo_ = 0;
  int m_hi_ = 0;
  std::vector<int> lat_owner_;    // owning rank of each latitude row
  std::vector<int> m_lo_of_;      // m range per rank
  std::vector<int> m_hi_of_;
  int max_lats_per_rank_ = 0;
  int max_ms_per_rank_ = 0;
};

}  // namespace foam::numerics
