#include "numerics/legendre.hpp"

#include <cmath>
#include <vector>

#include "base/error.hpp"

namespace foam::numerics {

namespace {

/// epsilon_{n,m} = sqrt((n^2 - m^2) / (4 n^2 - 1)); the coupling constant of
/// the three-term recurrence mu*Pbar_n = eps_{n+1} Pbar_{n+1} + eps_n
/// Pbar_{n-1}.
double eps(int n, int m) {
  return std::sqrt((static_cast<double>(n) * n - static_cast<double>(m) * m) /
                   (4.0 * n * n - 1.0));
}

/// Fill column[n - m] = Pbar_n^m(mu) for n = m .. m + len - 1, with the
/// per-m constants precomputed by the caller (they are latitude
/// independent, so the table builder hoists them out of its j loop):
///   fac[k]  = sqrt((2k+1)/(2k)) for k = 1..m  (sectoral product factors)
///   sq2m3   = sqrt(2m+3)                       (first off-sectoral step)
///   epsm[i] = eps(m+i, m) for i = 0..len-1     (recurrence couplings)
void pbar_column(int m, int len, double mu, const double* fac, double sq2m3,
                 const double* epsm, double* column) {
  if (len == 0) return;
  // Sectoral start Pbar_m^m.
  double pmm = 1.0;
  const double s2 = std::max(0.0, 1.0 - mu * mu);
  const double s = std::sqrt(s2);
  for (int k = 1; k <= m; ++k) pmm *= fac[k] * s;
  column[0] = pmm;
  if (len == 1) return;
  column[1] = mu * sq2m3 * pmm;
  for (int n = m + 2; n < m + len; ++n) {
    column[n - m] =
        (mu * column[n - m - 1] - epsm[n - m - 1] * column[n - m - 2]) /
        epsm[n - m];
  }
}

}  // namespace

double legendre_pbar(int n, int m, double mu) {
  FOAM_REQUIRE(m >= 0 && n >= m, "legendre_pbar(n=" << n << ",m=" << m << ")");
  const int len = n - m + 1;
  std::vector<double> fac(m + 1, 0.0);
  for (int k = 1; k <= m; ++k) fac[k] = std::sqrt((2.0 * k + 1.0) / (2.0 * k));
  std::vector<double> epsm(len);
  for (int i = 0; i < len; ++i) epsm[i] = eps(m + i, m);
  std::vector<double> column(len);
  pbar_column(m, len, mu, fac.data(), std::sqrt(2.0 * m + 3.0), epsm.data(),
              column.data());
  return column.back();
}

LegendreTable::LegendreTable(int mmax, int kmax,
                             const std::vector<double>& mu)
    : mmax_(mmax), kmax_(kmax), mu_(mu) {
  FOAM_REQUIRE(mmax >= 0 && kmax >= 1, "LegendreTable(" << mmax << ","
                                                        << kmax << ")");
  FOAM_REQUIRE(!mu.empty(), "LegendreTable needs latitudes");
  const std::size_t total =
      mu.size() * static_cast<std::size_t>(mmax + 1) * kmax;
  p_.resize(total);
  h_.resize(total);
  // Latitude-independent constants, computed once per m instead of once per
  // (m, latitude): the sectoral product factors and every eps(n, m) the
  // recurrence and the derivative relation touch (two sqrts per recurrence
  // step in the old per-column form).
  std::vector<double> fac(mmax_ + 1, 0.0);
  for (int k = 1; k <= mmax_; ++k)
    fac[k] = std::sqrt((2.0 * k + 1.0) / (2.0 * k));
  std::vector<double> epsm(kmax_ + 2);
  std::vector<double> column(kmax_ + 1);
  for (int m = 0; m <= mmax_; ++m) {
    // eps(m+i, m) for i = 0..kmax+1: the column recurrence needs i up to
    // kmax, the derivative relation eps_{n+1,m} up to i = kmax + 1... the
    // last column entry is n = m + kmax, so eps indices reach kmax + 1.
    for (int i = 0; i <= kmax_ + 1; ++i) epsm[i] = eps(m + i, m);
    const double sq2m3 = std::sqrt(2.0 * m + 3.0);
    for (int j = 0; j < nlat(); ++j) {
      // One extra degree so the derivative relation has Pbar_{n+1}.
      pbar_column(m, kmax_ + 1, mu_[j], fac.data(), sq2m3, epsm.data(),
                  column.data());
      for (int k = 0; k < kmax_; ++k) {
        const int n = m + k;
        p_[index(m, k, j)] = column[k];
        // (1-mu^2) dPbar_n/dmu = (n+1) eps_{n,m} Pbar_{n-1}
        //                        - n eps_{n+1,m} Pbar_{n+1}
        const double below = (k > 0) ? column[k - 1] : 0.0;
        const double above = column[k + 1];
        double h = -n * epsm[k + 1] * above;
        if (n > m) h += (n + 1) * epsm[k] * below;
        h_[index(m, k, j)] = h;
      }
    }
  }
}

}  // namespace foam::numerics
