#include "numerics/legendre.hpp"

#include <cmath>
#include <vector>

#include "base/error.hpp"

namespace foam::numerics {

namespace {

/// epsilon_{n,m} = sqrt((n^2 - m^2) / (4 n^2 - 1)); the coupling constant of
/// the three-term recurrence mu*Pbar_n = eps_{n+1} Pbar_{n+1} + eps_n
/// Pbar_{n-1}.
double eps(int n, int m) {
  return std::sqrt((static_cast<double>(n) * n - static_cast<double>(m) * m) /
                   (4.0 * n * n - 1.0));
}

/// Fill column[n - m] = Pbar_n^m(mu) for n = m .. m + len - 1.
void pbar_column(int m, int len, double mu, std::vector<double>& column) {
  column.resize(len);
  if (len == 0) return;
  // Sectoral start Pbar_m^m.
  double pmm = 1.0;
  const double s2 = std::max(0.0, 1.0 - mu * mu);
  const double s = std::sqrt(s2);
  for (int k = 1; k <= m; ++k)
    pmm *= std::sqrt((2.0 * k + 1.0) / (2.0 * k)) * s;
  column[0] = pmm;
  if (len == 1) return;
  column[1] = mu * std::sqrt(2.0 * m + 3.0) * pmm;
  for (int n = m + 2; n < m + len; ++n) {
    column[n - m] =
        (mu * column[n - m - 1] - eps(n - 1, m) * column[n - m - 2]) /
        eps(n, m);
  }
}

}  // namespace

double legendre_pbar(int n, int m, double mu) {
  FOAM_REQUIRE(m >= 0 && n >= m, "legendre_pbar(n=" << n << ",m=" << m << ")");
  std::vector<double> column;
  pbar_column(m, n - m + 1, mu, column);
  return column.back();
}

LegendreTable::LegendreTable(int mmax, int kmax,
                             const std::vector<double>& mu)
    : mmax_(mmax), kmax_(kmax), mu_(mu) {
  FOAM_REQUIRE(mmax >= 0 && kmax >= 1, "LegendreTable(" << mmax << ","
                                                        << kmax << ")");
  FOAM_REQUIRE(!mu.empty(), "LegendreTable needs latitudes");
  const std::size_t total =
      mu.size() * static_cast<std::size_t>(mmax + 1) * kmax;
  p_.resize(total);
  h_.resize(total);
  std::vector<double> column;
  for (int j = 0; j < nlat(); ++j) {
    for (int m = 0; m <= mmax_; ++m) {
      // One extra degree so the derivative relation has Pbar_{n+1}.
      pbar_column(m, kmax_ + 1, mu_[j], column);
      for (int k = 0; k < kmax_; ++k) {
        const int n = m + k;
        p_[index(m, k, j)] = column[k];
        // (1-mu^2) dPbar_n/dmu = (n+1) eps_{n,m} Pbar_{n-1}
        //                        - n eps_{n+1,m} Pbar_{n+1}
        const double below = (k > 0) ? column[k - 1] : 0.0;
        const double above = column[k + 1];
        double h = -n * eps(n + 1, m) * above;
        if (n > m) h += (n + 1) * eps(n, m) * below;
        h_[index(m, k, j)] = h;
      }
    }
  }
}

}  // namespace foam::numerics
