#pragma once

/// \file spectral.hpp
/// Spherical-harmonic spectral transform with rhomboidal truncation.
///
/// The FOAM atmosphere is a spectral-transform model derived from CCM2 at
/// R15: zonal wavenumbers m = 0..15 each carry 16 total wavenumbers
/// n = m..m+15 (the rhomboidal set). A scalar grid field on the Gaussian
/// grid maps to coefficients
///   f_n^m = (1/2) sum_j w_j f_m(mu_j) Pbar_n^m(mu_j),
/// where f_m(mu_j) are the Fourier coefficients of latitude row j and w_j
/// the Gaussian weights; synthesis is the adjoint sum. Vector analysis
/// (divergence / curl of flux pairs) uses integration by parts so no grid
/// derivative is ever taken (the standard transform-method trick that also
/// shapes the parallel data flow).
///
/// Two implementations share this interface, selected by SpectralMode:
///
///  * kReference — the correctness-first scalar loops (per-row recursive
///    FFT, full (m,k,j) Legendre triple loops). Kept as the A/B baseline.
///  * kEngine (default) — the plan-based engine: allocation-free iterative
///    real FFT (FftPlan), equatorial-symmetry folding of the Legendre sums
///    (Pbar_n^m(-mu) = (-1)^{n+m} Pbar_n^m(mu), so north/south latitude
///    pairs fold into even/odd-parity contributions and the Legendre flops
///    halve), and contiguous panel kernels over the LegendreTable rows.
///    The *_batch entry points transform many fields per pass, amortizing
///    FFT plans and Legendre panel loads (and, in ParSpectralTransform,
///    fusing the per-field allreduces into one collective).
///
/// Engine results agree with the reference to <= 1e-12 relative (the
/// folding reassociates the latitude sum; the complex FFT stages are
/// bitwise identical).
///
/// Engine entry points are const and thread-safe as long as each thread
/// uses its own SpectralWorkspace (the overloads without a workspace
/// allocate a fresh one per call).
///
/// ParSpectralTransform layers the same operations over a latitude-band
/// decomposition on foam::par — FFTs are local to a rank's latitudes and the
/// Legendre stage completes partial sums with an allreduce, the
/// "distributed Legendre transform" variant studied for PCCM2.

#include <array>
#include <complex>
#include <span>
#include <vector>

#include "base/field.hpp"
#include "numerics/fft.hpp"
#include "numerics/fft_plan.hpp"
#include "numerics/grid.hpp"
#include "numerics/legendre.hpp"
#include "par/comm.hpp"

namespace foam::numerics {

/// Coefficients of a rhomboidally truncated field: index (m, k) with
/// n = m + k, m in [0, mmax], k in [0, kmax).
class SpectralField {
 public:
  SpectralField() = default;
  SpectralField(int mmax, int kmax)
      : mmax_(mmax), kmax_(kmax),
        c_(static_cast<std::size_t>(mmax + 1) * kmax) {}

  int mmax() const { return mmax_; }
  int kmax() const { return kmax_; }
  std::size_t size() const { return c_.size(); }

  std::complex<double>& at(int m, int k) { return c_[index(m, k)]; }
  const std::complex<double>& at(int m, int k) const {
    return c_[index(m, k)];
  }

  std::complex<double>* data() { return c_.data(); }
  const std::complex<double>* data() const { return c_.data(); }

  void fill(std::complex<double> v) { std::fill(c_.begin(), c_.end(), v); }

  SpectralField& operator+=(const SpectralField& o);
  SpectralField& operator-=(const SpectralField& o);
  SpectralField& operator*=(double s);
  /// this += a * o
  void axpy(double a, const SpectralField& o);

  /// Power in the field: sum over coefficients of (2 - delta_m0)|c|^2,
  /// equal to the area-weighted mean square of the grid field.
  double power() const;

  bool same_shape(const SpectralField& o) const {
    return mmax_ == o.mmax_ && kmax_ == o.kmax_;
  }

 private:
  std::size_t index(int m, int k) const {
    FOAM_ASSERT(m >= 0 && m <= mmax_ && k >= 0 && k < kmax_,
                "(" << m << "," << k << ")");
    return static_cast<std::size_t>(m) * kmax_ + k;
  }
  int mmax_ = 0;
  int kmax_ = 0;
  std::vector<std::complex<double>> c_;
};

/// Implementation selector for the transform entry points (A/B toggle).
enum class SpectralMode { kReference, kEngine };

/// Reusable scratch for the plan-based engine: FFT workspace, Fourier-row
/// and parity-fold buffers. All storage grows on first use and is reused
/// afterwards, making repeated engine transforms allocation-free. One
/// workspace per thread — workspaces must not be shared concurrently.
class SpectralWorkspace {
 public:
  SpectralWorkspace() = default;

 private:
  friend class SpectralTransform;
  friend class ParSpectralTransform;
  friend class TransposeSpectralTransform;
  std::vector<std::complex<double>> fft;    // FftPlan ping-pong workspace
  std::vector<double> row;                  // one real latitude row
  std::vector<std::complex<double>> spec;   // n/2+1 rFFT coefficients
  std::vector<std::complex<double>> fm_a, fm_b, fm_c, fm_d;  // Fourier modes
  std::vector<std::complex<double>> fold_pe, fold_po;  // P-term folds [f][m]
  std::vector<std::complex<double>> fold_he, fold_ho;  // H-term folds [f][m]
  std::vector<std::complex<double>> acc;    // per-m Legendre accumulators
  std::vector<double> reduce;               // fused-allreduce packing
};

/// Serial spectral transform bound to one Gaussian grid and truncation.
class SpectralTransform {
 public:
  /// Rhomboidal truncation R(mmax): kmax = mmax + 1 degrees per m.
  SpectralTransform(const GaussianGrid& grid, int mmax,
                    SpectralMode mode = SpectralMode::kEngine);

  int mmax() const { return mmax_; }
  int kmax() const { return kmax_; }
  const GaussianGrid& grid() const { return grid_; }

  SpectralMode mode() const { return mode_; }
  void set_mode(SpectralMode mode) { mode_ = mode; }

  /// Scalar analysis: grid -> spectral.
  SpectralField analyze(const Field2Dd& f) const;
  SpectralField analyze(const Field2Dd& f, SpectralWorkspace& ws) const;

  /// Scalar synthesis: spectral -> grid.
  Field2Dd synthesize(const SpectralField& s) const;
  Field2Dd synthesize(const SpectralField& s, SpectralWorkspace& ws) const;

  /// Vector analysis of the flux pair (A, B) = (U q, V q) with U = u cos(lat):
  ///   analyze_div  -> spectral of  (1/(a(1-mu^2))) dA/dlon + (1/a) dB/dmu
  ///   analyze_curl -> spectral of  (1/(a(1-mu^2))) dB/dlon - (1/a) dA/dmu
  /// computed by integration by parts (exact under Gaussian quadrature).
  SpectralField analyze_div(const Field2Dd& A, const Field2Dd& B) const;
  SpectralField analyze_curl(const Field2Dd& A, const Field2Dd& B) const;

  /// Winds from streamfunction and velocity potential:
  ///   U = (1/a)(dchi/dlon - (1-mu^2) dpsi/dmu)
  ///   V = (1/a)(dpsi/dlon + (1-mu^2) dchi/dmu)
  /// where (U, V) = (u, v) cos(lat).
  void uv_from_psi_chi(const SpectralField& psi, const SpectralField& chi,
                       Field2Dd& U, Field2Dd& V) const;

  /// --- Batched multi-field entry points -------------------------------
  /// Transform every field of a step in one pass: the Legendre panels are
  /// loaded once per latitude pair and reused across the batch. Under
  /// kReference these loop the single-field reference paths (A/B
  /// comparability); under kEngine they run the folded panel kernels.

  std::vector<SpectralField> analyze_batch(
      const std::vector<const Field2Dd*>& fs, SpectralWorkspace& ws) const;

  void synthesize_batch(const std::vector<const SpectralField*>& ss,
                        const std::vector<Field2Dd*>& outs,
                        SpectralWorkspace& ws) const;

  std::vector<SpectralField> analyze_div_batch(
      const std::vector<const Field2Dd*>& As,
      const std::vector<const Field2Dd*>& Bs, SpectralWorkspace& ws) const;

  std::vector<SpectralField> analyze_curl_batch(
      const std::vector<const Field2Dd*>& As,
      const std::vector<const Field2Dd*>& Bs, SpectralWorkspace& ws) const;

  /// Batched winds; U/V outputs are resized to the grid shape if needed.
  void uv_from_psi_chi_batch(const std::vector<const SpectralField*>& psis,
                             const std::vector<const SpectralField*>& chis,
                             const std::vector<Field2Dd*>& Us,
                             const std::vector<Field2Dd*>& Vs,
                             SpectralWorkspace& ws) const;

  /// Spectral Laplacian: c_n^m *= -n(n+1)/a^2.
  void laplacian(SpectralField& s) const;
  /// Inverse Laplacian; the n = 0 coefficient (undetermined) is zeroed.
  void inverse_laplacian(SpectralField& s) const;
  /// d/dlon: c_n^m *= i m.
  SpectralField d_dlon(const SpectralField& s) const;

  /// Eigenvalue of the Laplacian for total wavenumber n: -n(n+1)/a^2.
  double laplacian_eigenvalue(int n) const;

 private:
  friend class ParSpectralTransform;
  friend class TransposeSpectralTransform;

  /// Latitude rows grouped for equatorial-symmetry folding: mirror pairs
  /// (js, jn) with mu[jn] == -mu[js], plus unpaired rows (the equator row
  /// of an odd-nlat grid, or rows whose mirror another rank owns).
  struct LatPairing {
    std::vector<std::array<int, 2>> pairs;
    std::vector<int> singles;
  };
  static LatPairing make_pairing(const GaussianGrid& grid,
                                 std::span<const int> lats);

  /// Fourier analysis of one latitude row (truncated to mmax+1 modes, with
  /// the 1/nlon normalization folded in).
  void fourier_row(const Field2Dd& f, int j,
                   std::vector<std::complex<double>>& fm) const;
  /// Inverse: place mmax+1 Fourier modes into grid row j.
  void inv_fourier_row(const std::vector<std::complex<double>>& fm,
                       Field2Dd& f, int j) const;

  /// Plan-based row transforms (allocation-free given a warm workspace).
  void fourier_row_plan(const Field2Dd& f, int j, std::complex<double>* fm,
                        SpectralWorkspace& ws) const;
  void inv_fourier_row_plan(const std::complex<double>* fm, Field2Dd& f,
                            int j, SpectralWorkspace& ws) const;

  /// Engine kernels over an arbitrary row grouping (serial uses the full
  /// grid's pairing; the parallel variants pass their owned rows).
  /// Analysis kernels accumulate into zero-initialized outputs; synthesis
  /// kernels write only the rows named by the pairing.
  void engine_analyze(const LatPairing& lp,
                      const std::vector<const Field2Dd*>& fs,
                      std::vector<SpectralField>& out,
                      SpectralWorkspace& ws) const;
  void engine_synthesize(const LatPairing& lp,
                         const std::vector<const SpectralField*>& ss,
                         const std::vector<Field2Dd*>& outs,
                         SpectralWorkspace& ws) const;
  void engine_analyze_vec(const LatPairing& lp, bool curl,
                          const std::vector<const Field2Dd*>& As,
                          const std::vector<const Field2Dd*>& Bs,
                          std::vector<SpectralField>& out,
                          SpectralWorkspace& ws) const;
  void engine_uv(const LatPairing& lp,
                 const std::vector<const SpectralField*>& psis,
                 const std::vector<const SpectralField*>& chis,
                 const std::vector<Field2Dd*>& Us,
                 const std::vector<Field2Dd*>& Vs,
                 SpectralWorkspace& ws) const;

  const GaussianGrid& grid_;
  int mmax_;
  int kmax_;
  SpectralMode mode_;
  Fft fft_;        // reference recursive FFT
  FftPlan plan_;   // engine iterative plan
  LegendreTable table_;
  LatPairing pairing_;  // full-grid mirror pairs
};

/// Latitude-distributed spectral transform. Each rank owns a set of latitude
/// rows (as produced by par::paired_latitudes or any partition); analysis
/// ends with an allreduce so every rank holds the full spectral state, and
/// synthesis fills only the rank's own rows of the output field (other rows
/// are left untouched).
///
/// The instance carries its own SpectralWorkspace, so it is cheap to call
/// repeatedly but must not be shared across ranks/threads (each rank
/// constructs its own, which is the existing usage pattern). The underlying
/// serial transform may be shared freely.
class ParSpectralTransform {
 public:
  ParSpectralTransform(const SpectralTransform& serial,
                       std::vector<int> my_lats);

  const std::vector<int>& my_lats() const { return my_lats_; }

  SpectralField analyze(par::Comm& comm, const Field2Dd& f) const;
  void synthesize(const SpectralField& s, Field2Dd& f) const;
  SpectralField analyze_div(par::Comm& comm, const Field2Dd& A,
                            const Field2Dd& B) const;
  SpectralField analyze_curl(par::Comm& comm, const Field2Dd& A,
                             const Field2Dd& B) const;
  void uv_from_psi_chi(const SpectralField& psi, const SpectralField& chi,
                       Field2Dd& U, Field2Dd& V) const;

  /// Batched variants: one pass over the rank's latitudes for the whole
  /// batch, and — for the analysis entry points — the per-field spectral
  /// allreduces fused into a single collective over one packed buffer.
  std::vector<SpectralField> analyze_batch(
      par::Comm& comm, const std::vector<const Field2Dd*>& fs) const;
  void synthesize_batch(const std::vector<const SpectralField*>& ss,
                        const std::vector<Field2Dd*>& outs) const;
  std::vector<SpectralField> analyze_div_batch(
      par::Comm& comm, const std::vector<const Field2Dd*>& As,
      const std::vector<const Field2Dd*>& Bs) const;
  std::vector<SpectralField> analyze_curl_batch(
      par::Comm& comm, const std::vector<const Field2Dd*>& As,
      const std::vector<const Field2Dd*>& Bs) const;
  void uv_from_psi_chi_batch(const std::vector<const SpectralField*>& psis,
                             const std::vector<const SpectralField*>& chis,
                             const std::vector<Field2Dd*>& Us,
                             const std::vector<Field2Dd*>& Vs) const;

 private:
  void allreduce_spectral(par::Comm& comm, SpectralField& s) const;
  /// One collective for the whole batch: pack every field's partial sums
  /// into the workspace buffer, allreduce in place, unpack.
  void allreduce_fused(par::Comm& comm,
                       std::vector<SpectralField>& fields) const;
  const SpectralTransform& serial_;
  std::vector<int> my_lats_;
  SpectralTransform::LatPairing pairing_;  // folding groups within my_lats
  mutable SpectralWorkspace ws_;
};

}  // namespace foam::numerics
