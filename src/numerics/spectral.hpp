#pragma once

/// \file spectral.hpp
/// Spherical-harmonic spectral transform with rhomboidal truncation.
///
/// The FOAM atmosphere is a spectral-transform model derived from CCM2 at
/// R15: zonal wavenumbers m = 0..15 each carry 16 total wavenumbers
/// n = m..m+15 (the rhomboidal set). A scalar grid field on the Gaussian
/// grid maps to coefficients
///   f_n^m = (1/2) sum_j w_j f_m(mu_j) Pbar_n^m(mu_j),
/// where f_m(mu_j) are the Fourier coefficients of latitude row j and w_j
/// the Gaussian weights; synthesis is the adjoint sum. Vector analysis
/// (divergence / curl of flux pairs) uses integration by parts so no grid
/// derivative is ever taken (the standard transform-method trick that also
/// shapes the parallel data flow).
///
/// ParSpectralTransform layers the same operations over a latitude-band
/// decomposition on foam::par — FFTs are local to a rank's latitudes and the
/// Legendre stage completes partial sums with an allreduce, the
/// "distributed Legendre transform" variant studied for PCCM2.

#include <complex>
#include <vector>

#include "base/field.hpp"
#include "numerics/fft.hpp"
#include "numerics/grid.hpp"
#include "numerics/legendre.hpp"
#include "par/comm.hpp"

namespace foam::numerics {

/// Coefficients of a rhomboidally truncated field: index (m, k) with
/// n = m + k, m in [0, mmax], k in [0, kmax).
class SpectralField {
 public:
  SpectralField() = default;
  SpectralField(int mmax, int kmax)
      : mmax_(mmax), kmax_(kmax),
        c_(static_cast<std::size_t>(mmax + 1) * kmax) {}

  int mmax() const { return mmax_; }
  int kmax() const { return kmax_; }
  std::size_t size() const { return c_.size(); }

  std::complex<double>& at(int m, int k) { return c_[index(m, k)]; }
  const std::complex<double>& at(int m, int k) const {
    return c_[index(m, k)];
  }

  std::complex<double>* data() { return c_.data(); }
  const std::complex<double>* data() const { return c_.data(); }

  void fill(std::complex<double> v) { std::fill(c_.begin(), c_.end(), v); }

  SpectralField& operator+=(const SpectralField& o);
  SpectralField& operator-=(const SpectralField& o);
  SpectralField& operator*=(double s);
  /// this += a * o
  void axpy(double a, const SpectralField& o);

  /// Power in the field: sum over coefficients of (2 - delta_m0)|c|^2,
  /// equal to the area-weighted mean square of the grid field.
  double power() const;

  bool same_shape(const SpectralField& o) const {
    return mmax_ == o.mmax_ && kmax_ == o.kmax_;
  }

 private:
  std::size_t index(int m, int k) const {
    FOAM_ASSERT(m >= 0 && m <= mmax_ && k >= 0 && k < kmax_,
                "(" << m << "," << k << ")");
    return static_cast<std::size_t>(m) * kmax_ + k;
  }
  int mmax_ = 0;
  int kmax_ = 0;
  std::vector<std::complex<double>> c_;
};

/// Serial spectral transform bound to one Gaussian grid and truncation.
class SpectralTransform {
 public:
  /// Rhomboidal truncation R(mmax): kmax = mmax + 1 degrees per m.
  SpectralTransform(const GaussianGrid& grid, int mmax);

  int mmax() const { return mmax_; }
  int kmax() const { return kmax_; }
  const GaussianGrid& grid() const { return grid_; }

  /// Scalar analysis: grid -> spectral.
  SpectralField analyze(const Field2Dd& f) const;

  /// Scalar synthesis: spectral -> grid.
  Field2Dd synthesize(const SpectralField& s) const;

  /// Vector analysis of the flux pair (A, B) = (U q, V q) with U = u cos(lat):
  ///   analyze_div  -> spectral of  (1/(a(1-mu^2))) dA/dlon + (1/a) dB/dmu
  ///   analyze_curl -> spectral of  (1/(a(1-mu^2))) dB/dlon - (1/a) dA/dmu
  /// computed by integration by parts (exact under Gaussian quadrature).
  SpectralField analyze_div(const Field2Dd& A, const Field2Dd& B) const;
  SpectralField analyze_curl(const Field2Dd& A, const Field2Dd& B) const;

  /// Winds from streamfunction and velocity potential:
  ///   U = (1/a)(dchi/dlon - (1-mu^2) dpsi/dmu)
  ///   V = (1/a)(dpsi/dlon + (1-mu^2) dchi/dmu)
  /// where (U, V) = (u, v) cos(lat).
  void uv_from_psi_chi(const SpectralField& psi, const SpectralField& chi,
                       Field2Dd& U, Field2Dd& V) const;

  /// Spectral Laplacian: c_n^m *= -n(n+1)/a^2.
  void laplacian(SpectralField& s) const;
  /// Inverse Laplacian; the n = 0 coefficient (undetermined) is zeroed.
  void inverse_laplacian(SpectralField& s) const;
  /// d/dlon: c_n^m *= i m.
  SpectralField d_dlon(const SpectralField& s) const;

  /// Eigenvalue of the Laplacian for total wavenumber n: -n(n+1)/a^2.
  double laplacian_eigenvalue(int n) const;

 private:
  friend class ParSpectralTransform;
  friend class TransposeSpectralTransform;

  /// Fourier analysis of one latitude row (truncated to mmax+1 modes, with
  /// the 1/nlon normalization folded in).
  void fourier_row(const Field2Dd& f, int j,
                   std::vector<std::complex<double>>& fm) const;
  /// Inverse: place mmax+1 Fourier modes into grid row j.
  void inv_fourier_row(const std::vector<std::complex<double>>& fm,
                       Field2Dd& f, int j) const;

  const GaussianGrid& grid_;
  int mmax_;
  int kmax_;
  Fft fft_;
  LegendreTable table_;
};

/// Latitude-distributed spectral transform. Each rank owns a set of latitude
/// rows (as produced by par::paired_latitudes or any partition); analysis
/// ends with an allreduce so every rank holds the full spectral state, and
/// synthesis fills only the rank's own rows of the output field (other rows
/// are left untouched).
class ParSpectralTransform {
 public:
  ParSpectralTransform(const SpectralTransform& serial,
                       std::vector<int> my_lats);

  const std::vector<int>& my_lats() const { return my_lats_; }

  SpectralField analyze(par::Comm& comm, const Field2Dd& f) const;
  void synthesize(const SpectralField& s, Field2Dd& f) const;
  SpectralField analyze_div(par::Comm& comm, const Field2Dd& A,
                            const Field2Dd& B) const;
  SpectralField analyze_curl(par::Comm& comm, const Field2Dd& A,
                             const Field2Dd& B) const;
  void uv_from_psi_chi(const SpectralField& psi, const SpectralField& chi,
                       Field2Dd& U, Field2Dd& V) const;

 private:
  void allreduce_spectral(par::Comm& comm, SpectralField& s) const;
  const SpectralTransform& serial_;
  std::vector<int> my_lats_;
};

}  // namespace foam::numerics
