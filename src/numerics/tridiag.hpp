#pragma once

/// \file tridiag.hpp
/// Thomas algorithm for tridiagonal systems.
///
/// Used by the implicit vertical diffusion solves in both the atmosphere
/// (PBL, vertical mixing) and ocean (Pacanowski-Philander mixing): columns
/// are independent, so each is a small tridiagonal solve.

#include <vector>

#include "base/error.hpp"

namespace foam::numerics {

/// Solve the n x n system with sub-diagonal a (a[0] unused), diagonal b,
/// super-diagonal c (c[n-1] unused) and right-hand side d; the solution is
/// written back into d. The system must be diagonally dominant (as all
/// implicit-diffusion matrices are); this is asserted in debug builds.
inline void solve_tridiag(const std::vector<double>& a,
                          const std::vector<double>& b,
                          const std::vector<double>& c,
                          std::vector<double>& d) {
  const std::size_t n = b.size();
  FOAM_REQUIRE(n > 0 && a.size() == n && c.size() == n && d.size() == n,
               "tridiag sizes");
  std::vector<double> cp(n);
  // Forward sweep.
  FOAM_ASSERT(b[0] != 0.0, "singular tridiagonal system");
  cp[0] = c[0] / b[0];
  d[0] = d[0] / b[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double denom = b[i] - a[i] * cp[i - 1];
    FOAM_ASSERT(denom != 0.0, "singular tridiagonal system at row " << i);
    cp[i] = c[i] / denom;
    d[i] = (d[i] - a[i] * d[i - 1]) / denom;
  }
  // Back substitution.
  for (std::size_t i = n - 1; i-- > 0;) d[i] -= cp[i] * d[i + 1];
}

}  // namespace foam::numerics
