#pragma once

/// \file legendre.hpp
/// Normalized associated Legendre functions for the spectral transform.
///
/// We use the convention orthonormal under the weight dmu/2:
///   (1/2) * integral_{-1}^{1} Pbar_n^m Pbar_{n'}^m dmu = delta_{nn'}
/// so Pbar_0^0 = 1 and the grid-spectral round trip needs no extra scaling.
/// The Condon-Shortley phase is omitted (meteorological convention).

#include <vector>

namespace foam::numerics {

/// Table of Pbar_n^m(mu) and the derivative term
/// Hbar_n^m(mu) = (1 - mu^2) dPbar_n^m/dmu for all m in [0, mmax] and
/// n in [m, m + nmax_per_m - 1] (rhomboidal layout) at a set of latitudes.
class LegendreTable {
 public:
  /// Rhomboidal truncation: for each zonal wavenumber m, degrees
  /// n = m .. m+kmax-1 (kmax values). mu holds the Gaussian latitudes.
  LegendreTable(int mmax, int kmax, const std::vector<double>& mu);

  int mmax() const { return mmax_; }
  int kmax() const { return kmax_; }
  int nlat() const { return static_cast<int>(mu_.size()); }

  /// Pbar_{m+k}^m at latitude j.
  double p(int m, int k, int j) const { return p_[index(m, k, j)]; }
  /// Hbar_{m+k}^m = (1-mu^2) d/dmu Pbar_{m+k}^m at latitude j.
  double h(int m, int k, int j) const { return h_[index(m, k, j)]; }

  /// Contiguous (m, k) panel of latitude j: entry m*kmax + k. The panel
  /// kernels of the transform engine stream these rows directly.
  const double* p_row(int j) const { return p_.data() + index(0, 0, j); }
  const double* h_row(int j) const { return h_.data() + index(0, 0, j); }

 private:
  std::size_t index(int m, int k, int j) const {
    return (static_cast<std::size_t>(j) * (mmax_ + 1) + m) * kmax_ + k;
  }
  int mmax_;
  int kmax_;
  std::vector<double> mu_;
  std::vector<double> p_;
  std::vector<double> h_;
};

/// Single-point evaluation of Pbar_n^m for testing and tooling.
/// Computes the full column m..n at one mu; returns Pbar_n^m(mu).
double legendre_pbar(int n, int m, double mu);

}  // namespace foam::numerics
