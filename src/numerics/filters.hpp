#pragma once

/// \file filters.hpp
/// Horizontal filters and dissipation operators for grid-point models.
///
/// * PolarFourierFilter — the "spatial filter similar to the sort used in
///   atmospheric models" that keeps the FOAM ocean stable in the Arctic:
///   poleward of a critical latitude, zonal wavenumbers whose physical
///   wavelength falls below the critical-latitude resolution are attenuated.
/// * laplacian_masked / biharmonic_tendency — metric-aware 5-point Laplacian
///   with land masking (no-flux walls) and the del^4 dissipation built from
///   it ("spatial mode splitting on the grid is prevented through the use of
///   a del^4 numerical dissipation").

#include <vector>

#include "base/field.hpp"
#include "numerics/fft.hpp"
#include "numerics/grid.hpp"

namespace foam::numerics {

/// Zonal Fourier filter applied poleward of a critical latitude.
/// Wavenumber m at latitude phi keeps the fraction
///   f_m(phi) = min(1, m_max(phi) / m),  m_max = (nlon/2) cos(phi)/cos(phi_c)
/// so the shortest retained physical wavelength never falls below the one
/// resolved at the critical latitude. m = 0 (the zonal mean) always passes
/// unchanged, and the filter never amplifies.
class PolarFourierFilter {
 public:
  PolarFourierFilter(const MercatorGrid& grid, double crit_lat_deg = 60.0);

  /// Filter one 2-D field in place. Land cells (mask == 0) participate via
  /// zero-filled rows only when the whole row is ocean-free; mixed rows are
  /// filtered with land values left in place and restored after (the filter
  /// is a numerical-stability device, exact conservation near coasts is not
  /// required — the paper's usage).
  void apply(Field2Dd& f, const Field2D<int>& mask) const;
  void apply(Field2Dd& f) const;

  /// Attenuation factor for wavenumber m at latitude row j (1 = untouched).
  double factor(int m, int j) const;

  double crit_lat_deg() const { return crit_lat_deg_; }

 private:
  const MercatorGrid& grid_;
  double crit_lat_deg_;
  double cos_crit_;
  Fft fft_;
};

/// Masked metric Laplacian on a Mercator grid: for each ocean cell,
///   lap = (1/dx^2)(f_e - 2f + f_w) + (1/(dy^2))(f_n - 2f + f_s)
/// with one-sided closure at land (no-flux). Longitude wraps periodically.
void laplacian_masked(const MercatorGrid& grid, const Field2Dd& f,
                      const Field2D<int>& mask, Field2Dd& out);

/// Biharmonic (del^4) dissipation tendency: out = -k4 * lap(lap(f)).
/// k4 in m^4/s.
void biharmonic_tendency(const MercatorGrid& grid, const Field2Dd& f,
                         const Field2D<int>& mask, double k4, Field2Dd& out);

}  // namespace foam::numerics
