#include "numerics/transpose_spectral.hpp"

#include <algorithm>

#include "par/decomp.hpp"
#include "telemetry/telemetry.hpp"

namespace foam::numerics {

using cplx = std::complex<double>;

namespace {
// User tags for the two transpose directions. Messages are matched FIFO per
// (comm, source, tag), so distinct tags keep an analyze immediately followed
// by a synthesize from ever pairing blocks across the two exchanges.
constexpr int kTagForward = 290;
constexpr int kTagInverse = 291;
}  // namespace

TransposeSpectralTransform::TransposeSpectralTransform(
    const SpectralTransform& serial, std::vector<int> my_lats,
    par::Comm& comm, bool overlap)
    : serial_(serial), my_lats_(std::move(my_lats)), nranks_(comm.size()),
      overlap_(overlap) {
  const int nlat = serial_.grid().nlat();
  const int nm = serial_.mmax() + 1;
  FOAM_REQUIRE(nranks_ <= nm,
               "more ranks (" << nranks_ << ") than wavenumbers (" << nm
                              << ")");
  const par::Range mr = par::block_range(nm, nranks_, comm.rank());
  m_lo_ = mr.lo;
  m_hi_ = mr.hi;
  m_lo_of_.resize(nranks_);
  m_hi_of_.resize(nranks_);
  for (int r = 0; r < nranks_; ++r) {
    const par::Range rr = par::block_range(nm, nranks_, r);
    m_lo_of_[r] = rr.lo;
    m_hi_of_[r] = rr.hi;
    max_ms_per_rank_ = std::max(max_ms_per_rank_, rr.count());
  }
  // Latitude ownership: gather each rank's row count, assume the same
  // block decomposition on all ranks (validated against my_lats).
  lat_owner_.assign(nlat, -1);
  for (int r = 0; r < nranks_; ++r) {
    const par::Range lr = par::block_range(nlat, nranks_, r);
    for (int j = lr.lo; j < lr.hi; ++j) lat_owner_[j] = r;
    max_lats_per_rank_ = std::max(max_lats_per_rank_, lr.count());
  }
  const par::Range mine = par::block_range(nlat, nranks_, comm.rank());
  FOAM_REQUIRE(static_cast<int>(my_lats_.size()) == mine.count(),
               "my_lats must be the block decomposition ("
                   << my_lats_.size() << " vs " << mine.count() << ")");
  for (std::size_t n = 0; n < my_lats_.size(); ++n)
    FOAM_REQUIRE(my_lats_[n] == mine.lo + static_cast<int>(n),
                 "my_lats must be the contiguous block rows");
}

void TransposeSpectralTransform::exchange_blocks(
    par::Comm& comm, int tag, std::size_t block,
    const std::function<void(int, double*)>& pack,
    const std::function<void(int, const double*)>& unpack) const {
  FOAM_TRACE_SCOPE("spectral.transpose");
  const int me = comm.rank();
  if (!overlap_) {
    // Blocking reference path: full pack, one alltoall, full unpack.
    std::vector<double> send(block * nranks_, 0.0);
    for (int dst = 0; dst < nranks_; ++dst)
      pack(dst, send.data() + block * dst);
    std::vector<double> recv(block * nranks_, 0.0);
    comm.alltoall(send.data(), recv.data(), block);
    for (int src = 0; src < nranks_; ++src)
      unpack(src, recv.data() + block * src);
    return;
  }
  // Overlap path: post every receive up front, hand each outgoing pencil to
  // the runtime by ownership the moment it is packed (isend_move rendezvous:
  // the block crosses rank boundaries by pointer, zero memcpy, and lands in
  // rbufs via the matching irecv_vec move-out), handle the self block
  // locally, then unpack remote blocks in whatever order they complete
  // while the rest are still in flight.
  std::vector<std::vector<double>> rbufs(nranks_);
  std::vector<par::Request> rreqs(nranks_);
  for (int src = 0; src < nranks_; ++src) {
    if (src == me) continue;
    rreqs[src] = comm.irecv_vec(src, tag, rbufs[src]);
  }
  for (int dst = 0; dst < nranks_; ++dst) {
    if (dst == me) continue;
    std::vector<double> pencil(block, 0.0);
    pack(dst, pencil.data());
    comm.isend_move(dst, tag, std::move(pencil));
  }
  std::vector<double> scratch(block, 0.0);
  pack(me, scratch.data());
  unpack(me, scratch.data());
  for (int src; (src = comm.waitany(rreqs)) != -1;)
    unpack(src, rbufs[src].data());
}

std::vector<std::vector<cplx>> TransposeSpectralTransform::forward_transpose(
    par::Comm& comm,
    const std::vector<std::vector<cplx>>& fm_rows) const {
  FOAM_REQUIRE(fm_rows.size() == my_lats_.size(), "row count");
  const int nlat = serial_.grid().nlat();
  // Equal-size padded blocks: per destination rank, my rows x its m's.
  const std::size_t block =
      static_cast<std::size_t>(max_lats_per_rank_) * max_ms_per_rank_ * 2;
  std::vector<std::vector<cplx>> columns(
      m_hi_ - m_lo_, std::vector<cplx>(nlat, cplx(0.0, 0.0)));
  exchange_blocks(
      comm, kTagForward, block,
      [&](int dst, double* out) {
        for (std::size_t row = 0; row < my_lats_.size(); ++row) {
          for (int m = m_lo_of_[dst]; m < m_hi_of_[dst]; ++m) {
            const std::size_t slot =
                (row * max_ms_per_rank_ + (m - m_lo_of_[dst])) * 2;
            out[slot] = fm_rows[row][m].real();
            out[slot + 1] = fm_rows[row][m].imag();
          }
        }
      },
      [&](int src, const double* in) {
        const par::Range lr = par::block_range(nlat, nranks_, src);
        for (int j = lr.lo; j < lr.hi; ++j) {
          const std::size_t row = j - lr.lo;
          for (int m = m_lo_; m < m_hi_; ++m) {
            const std::size_t slot =
                (row * max_ms_per_rank_ + (m - m_lo_)) * 2;
            columns[m - m_lo_][j] = cplx(in[slot], in[slot + 1]);
          }
        }
      });
  return columns;
}

SpectralField TransposeSpectralTransform::analyze(par::Comm& comm,
                                                  const Field2Dd& f) const {
  const bool engine = serial_.mode() == SpectralMode::kEngine;
  const int nm = serial_.mmax() + 1;
  // Latitude-local FFTs.
  std::vector<std::vector<cplx>> fm_rows(my_lats_.size());
  for (std::size_t row = 0; row < my_lats_.size(); ++row) {
    if (engine) {
      fm_rows[row].resize(nm);
      serial_.fourier_row_plan(f, my_lats_[row], fm_rows[row].data(), ws_);
    } else {
      serial_.fourier_row(f, my_lats_[row], fm_rows[row]);
    }
  }

  // Transpose to the m decomposition, then local full Legendre sums.
  const auto columns = forward_transpose(comm, fm_rows);
  const int nlat = serial_.grid().nlat();
  const int kmax = serial_.kmax();
  std::vector<double> mine(static_cast<std::size_t>(max_ms_per_rank_) *
                               kmax * 2,
                           0.0);
  if (engine) {
    // Parity-folded sums over the full-grid mirror pairs: even-k entries
    // of the panel see the even fold, odd-k the odd fold.
    std::vector<cplx> acc(kmax);
    for (int m = m_lo_; m < m_hi_; ++m) {
      const cplx* col = columns[m - m_lo_].data();
      std::fill(acc.begin(), acc.end(), cplx(0.0, 0.0));
      for (const auto& pr : serial_.pairing_.pairs) {
        const int js = pr[0], jn = pr[1];
        const double w = 0.5 * serial_.grid().gauss_weight(js);
        const cplx fe = w * (col[js] + col[jn]);
        const cplx fo = w * (col[js] - col[jn]);
        const double* pm =
            serial_.table_.p_row(js) + static_cast<std::size_t>(m) * kmax;
        int k = 0;
        for (; k + 1 < kmax; k += 2) {
          acc[k] += fe * pm[k];
          acc[k + 1] += fo * pm[k + 1];
        }
        if (k < kmax) acc[k] += fe * pm[k];
      }
      for (const int j : serial_.pairing_.singles) {
        const cplx wf = 0.5 * serial_.grid().gauss_weight(j) * col[j];
        const double* pm =
            serial_.table_.p_row(j) + static_cast<std::size_t>(m) * kmax;
        for (int k = 0; k < kmax; ++k) acc[k] += wf * pm[k];
      }
      for (int k = 0; k < kmax; ++k) {
        const std::size_t slot =
            (static_cast<std::size_t>(m - m_lo_) * kmax + k) * 2;
        mine[slot] = acc[k].real();
        mine[slot + 1] = acc[k].imag();
      }
    }
  } else {
    for (int m = m_lo_; m < m_hi_; ++m) {
      for (int k = 0; k < kmax; ++k) {
        cplx acc(0.0, 0.0);
        for (int j = 0; j < nlat; ++j) {
          const double wj = 0.5 * serial_.grid().gauss_weight(j);
          acc += wj * columns[m - m_lo_][j] * serial_.table_.p(m, k, j);
        }
        const std::size_t slot =
            (static_cast<std::size_t>(m - m_lo_) * kmax + k) * 2;
        mine[slot] = acc.real();
        mine[slot + 1] = acc.imag();
      }
    }
  }
  // Allgather the m-blocks so every rank holds the full spectral field.
  std::vector<double> all(mine.size() * nranks_);
  comm.allgather(mine.data(), mine.size(), all.data());
  SpectralField s(serial_.mmax(), kmax);
  for (int r = 0; r < nranks_; ++r) {
    const double* in = all.data() + mine.size() * r;
    for (int m = m_lo_of_[r]; m < m_hi_of_[r]; ++m)
      for (int k = 0; k < kmax; ++k) {
        const std::size_t slot =
            (static_cast<std::size_t>(m - m_lo_of_[r]) * kmax + k) * 2;
        s.at(m, k) = cplx(in[slot], in[slot + 1]);
      }
  }
  return s;
}

void TransposeSpectralTransform::synthesize(par::Comm& comm,
                                            const SpectralField& s,
                                            Field2Dd& f) const {
  const int nlat = serial_.grid().nlat();
  const int nm = serial_.mmax() + 1;
  const int kmax = serial_.kmax();
  const bool engine = serial_.mode() == SpectralMode::kEngine;
  // Inverse Legendre on owned m's: f_m(j) for all j.
  std::vector<std::vector<cplx>> columns(
      m_hi_ - m_lo_, std::vector<cplx>(nlat, cplx(0.0, 0.0)));
  if (engine) {
    // Folded inverse sums: one even/odd accumulation per mirror pair gives
    // both rows (northern row flips the odd-parity part).
    for (int m = m_lo_; m < m_hi_; ++m) {
      cplx* col = columns[m - m_lo_].data();
      const cplx* sm = s.data() + static_cast<std::size_t>(m) * kmax;
      for (const auto& pr : serial_.pairing_.pairs) {
        const int js = pr[0], jn = pr[1];
        const double* pm =
            serial_.table_.p_row(js) + static_cast<std::size_t>(m) * kmax;
        cplx acc_e(0.0, 0.0), acc_o(0.0, 0.0);
        int k = 0;
        for (; k + 1 < kmax; k += 2) {
          acc_e += sm[k] * pm[k];
          acc_o += sm[k + 1] * pm[k + 1];
        }
        if (k < kmax) acc_e += sm[k] * pm[k];
        col[js] = acc_e + acc_o;
        col[jn] = acc_e - acc_o;
      }
      for (const int j : serial_.pairing_.singles) {
        const double* pm =
            serial_.table_.p_row(j) + static_cast<std::size_t>(m) * kmax;
        cplx acc(0.0, 0.0);
        for (int k = 0; k < kmax; ++k) acc += sm[k] * pm[k];
        col[j] = acc;
      }
    }
  } else {
    for (int m = m_lo_; m < m_hi_; ++m)
      for (int j = 0; j < nlat; ++j) {
        cplx acc(0.0, 0.0);
        for (int k = 0; k < kmax; ++k)
          acc += s.at(m, k) * serial_.table_.p(m, k, j);
        columns[m - m_lo_][j] = acc;
      }
  }
  // Inverse transpose: send to each rank its latitudes of my m-columns;
  // each arriving block fills its m-slice of the full Fourier rows.
  const std::size_t block =
      static_cast<std::size_t>(max_lats_per_rank_) * max_ms_per_rank_ * 2;
  std::vector<std::vector<cplx>> fm(my_lats_.size(),
                                    std::vector<cplx>(nm, cplx(0.0, 0.0)));
  exchange_blocks(
      comm, kTagInverse, block,
      [&](int dst, double* out) {
        const par::Range lr = par::block_range(nlat, nranks_, dst);
        for (int j = lr.lo; j < lr.hi; ++j) {
          const std::size_t row = j - lr.lo;
          for (int m = m_lo_; m < m_hi_; ++m) {
            const std::size_t slot =
                (row * max_ms_per_rank_ + (m - m_lo_)) * 2;
            out[slot] = columns[m - m_lo_][j].real();
            out[slot + 1] = columns[m - m_lo_][j].imag();
          }
        }
      },
      [&](int src, const double* in) {
        for (std::size_t row = 0; row < my_lats_.size(); ++row) {
          for (int m = m_lo_of_[src]; m < m_hi_of_[src]; ++m) {
            const std::size_t slot =
                (row * max_ms_per_rank_ + (m - m_lo_of_[src])) * 2;
            fm[row][m] = cplx(in[slot], in[slot + 1]);
          }
        }
      });
  // Latitude-local inverse FFTs into the rank's rows of f.
  for (std::size_t row = 0; row < my_lats_.size(); ++row) {
    if (engine) {
      serial_.inv_fourier_row_plan(fm[row].data(), f, my_lats_[row], ws_);
    } else {
      serial_.inv_fourier_row(fm[row], f, my_lats_[row]);
    }
  }
}

}  // namespace foam::numerics
