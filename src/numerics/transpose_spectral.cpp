#include "numerics/transpose_spectral.hpp"

#include <algorithm>

#include "par/decomp.hpp"

namespace foam::numerics {

using cplx = std::complex<double>;

TransposeSpectralTransform::TransposeSpectralTransform(
    const SpectralTransform& serial, std::vector<int> my_lats,
    par::Comm& comm)
    : serial_(serial), my_lats_(std::move(my_lats)), nranks_(comm.size()) {
  const int nlat = serial_.grid().nlat();
  const int nm = serial_.mmax() + 1;
  FOAM_REQUIRE(nranks_ <= nm,
               "more ranks (" << nranks_ << ") than wavenumbers (" << nm
                              << ")");
  const par::Range mr = par::block_range(nm, nranks_, comm.rank());
  m_lo_ = mr.lo;
  m_hi_ = mr.hi;
  m_lo_of_.resize(nranks_);
  m_hi_of_.resize(nranks_);
  for (int r = 0; r < nranks_; ++r) {
    const par::Range rr = par::block_range(nm, nranks_, r);
    m_lo_of_[r] = rr.lo;
    m_hi_of_[r] = rr.hi;
    max_ms_per_rank_ = std::max(max_ms_per_rank_, rr.count());
  }
  // Latitude ownership: gather each rank's row count, assume the same
  // block decomposition on all ranks (validated against my_lats).
  lat_owner_.assign(nlat, -1);
  for (int r = 0; r < nranks_; ++r) {
    const par::Range lr = par::block_range(nlat, nranks_, r);
    for (int j = lr.lo; j < lr.hi; ++j) lat_owner_[j] = r;
    max_lats_per_rank_ = std::max(max_lats_per_rank_, lr.count());
  }
  const par::Range mine = par::block_range(nlat, nranks_, comm.rank());
  FOAM_REQUIRE(static_cast<int>(my_lats_.size()) == mine.count(),
               "my_lats must be the block decomposition ("
                   << my_lats_.size() << " vs " << mine.count() << ")");
  for (std::size_t n = 0; n < my_lats_.size(); ++n)
    FOAM_REQUIRE(my_lats_[n] == mine.lo + static_cast<int>(n),
                 "my_lats must be the contiguous block rows");
}

std::vector<std::vector<cplx>> TransposeSpectralTransform::forward_transpose(
    par::Comm& comm,
    const std::vector<std::vector<cplx>>& fm_rows) const {
  FOAM_REQUIRE(fm_rows.size() == my_lats_.size(), "row count");
  const int nlat = serial_.grid().nlat();
  // Equal-size padded blocks: per destination rank, my rows x its m's.
  const std::size_t block =
      static_cast<std::size_t>(max_lats_per_rank_) * max_ms_per_rank_ * 2;
  std::vector<double> send(block * nranks_, 0.0);
  for (int dst = 0; dst < nranks_; ++dst) {
    double* out = send.data() + block * dst;
    for (std::size_t row = 0; row < my_lats_.size(); ++row) {
      for (int m = m_lo_of_[dst]; m < m_hi_of_[dst]; ++m) {
        const std::size_t slot =
            (row * max_ms_per_rank_ + (m - m_lo_of_[dst])) * 2;
        out[slot] = fm_rows[row][m].real();
        out[slot + 1] = fm_rows[row][m].imag();
      }
    }
  }
  std::vector<double> recv(block * nranks_, 0.0);
  comm.alltoall(send.data(), recv.data(), block);
  // Assemble owned-m columns over all latitudes.
  std::vector<std::vector<cplx>> columns(
      m_hi_ - m_lo_, std::vector<cplx>(nlat, cplx(0.0, 0.0)));
  for (int src = 0; src < nranks_; ++src) {
    const par::Range lr = par::block_range(nlat, nranks_, src);
    const double* in = recv.data() + block * src;
    for (int j = lr.lo; j < lr.hi; ++j) {
      const std::size_t row = j - lr.lo;
      for (int m = m_lo_; m < m_hi_; ++m) {
        const std::size_t slot =
            (row * max_ms_per_rank_ + (m - m_lo_)) * 2;
        columns[m - m_lo_][j] = cplx(in[slot], in[slot + 1]);
      }
    }
  }
  return columns;
}

SpectralField TransposeSpectralTransform::analyze(par::Comm& comm,
                                                  const Field2Dd& f) const {
  // Latitude-local FFTs.
  std::vector<std::vector<cplx>> fm_rows(my_lats_.size());
  for (std::size_t row = 0; row < my_lats_.size(); ++row)
    serial_.fourier_row(f, my_lats_[row], fm_rows[row]);

  // Transpose to the m decomposition, then local full Legendre sums.
  const auto columns = forward_transpose(comm, fm_rows);
  const int nlat = serial_.grid().nlat();
  const int kmax = serial_.kmax();
  std::vector<double> mine(static_cast<std::size_t>(max_ms_per_rank_) *
                               kmax * 2,
                           0.0);
  for (int m = m_lo_; m < m_hi_; ++m) {
    for (int k = 0; k < kmax; ++k) {
      cplx acc(0.0, 0.0);
      for (int j = 0; j < nlat; ++j) {
        const double wj = 0.5 * serial_.grid().gauss_weight(j);
        acc += wj * columns[m - m_lo_][j] * serial_.table_.p(m, k, j);
      }
      const std::size_t slot =
          (static_cast<std::size_t>(m - m_lo_) * kmax + k) * 2;
      mine[slot] = acc.real();
      mine[slot + 1] = acc.imag();
    }
  }
  // Allgather the m-blocks so every rank holds the full spectral field.
  std::vector<double> all(mine.size() * nranks_);
  comm.allgather(mine.data(), mine.size(), all.data());
  SpectralField s(serial_.mmax(), kmax);
  for (int r = 0; r < nranks_; ++r) {
    const double* in = all.data() + mine.size() * r;
    for (int m = m_lo_of_[r]; m < m_hi_of_[r]; ++m)
      for (int k = 0; k < kmax; ++k) {
        const std::size_t slot =
            (static_cast<std::size_t>(m - m_lo_of_[r]) * kmax + k) * 2;
        s.at(m, k) = cplx(in[slot], in[slot + 1]);
      }
  }
  return s;
}

void TransposeSpectralTransform::synthesize(par::Comm& comm,
                                            const SpectralField& s,
                                            Field2Dd& f) const {
  const int nlat = serial_.grid().nlat();
  const int nm = serial_.mmax() + 1;
  // Inverse Legendre on owned m's: f_m(j) for all j.
  std::vector<std::vector<cplx>> columns(
      m_hi_ - m_lo_, std::vector<cplx>(nlat, cplx(0.0, 0.0)));
  for (int m = m_lo_; m < m_hi_; ++m)
    for (int j = 0; j < nlat; ++j) {
      cplx acc(0.0, 0.0);
      for (int k = 0; k < serial_.kmax(); ++k)
        acc += s.at(m, k) * serial_.table_.p(m, k, j);
      columns[m - m_lo_][j] = acc;
    }
  // Inverse transpose: send to each rank its latitudes of my m-columns.
  const std::size_t block =
      static_cast<std::size_t>(max_lats_per_rank_) * max_ms_per_rank_ * 2;
  std::vector<double> send(block * nranks_, 0.0);
  for (int dst = 0; dst < nranks_; ++dst) {
    const par::Range lr = par::block_range(nlat, nranks_, dst);
    double* out = send.data() + block * dst;
    for (int j = lr.lo; j < lr.hi; ++j) {
      const std::size_t row = j - lr.lo;
      for (int m = m_lo_; m < m_hi_; ++m) {
        const std::size_t slot =
            (row * max_ms_per_rank_ + (m - m_lo_)) * 2;
        out[slot] = columns[m - m_lo_][j].real();
        out[slot + 1] = columns[m - m_lo_][j].imag();
      }
    }
  }
  std::vector<double> recv(block * nranks_, 0.0);
  comm.alltoall(send.data(), recv.data(), block);
  // Assemble full Fourier rows for my latitudes, inverse FFT into f.
  for (std::size_t row = 0; row < my_lats_.size(); ++row) {
    std::vector<cplx> fm(nm, cplx(0.0, 0.0));
    for (int src = 0; src < nranks_; ++src) {
      const double* in = recv.data() + block * src;
      for (int m = m_lo_of_[src]; m < m_hi_of_[src]; ++m) {
        const std::size_t slot =
            (row * max_ms_per_rank_ + (m - m_lo_of_[src])) * 2;
        fm[m] = cplx(in[slot], in[slot + 1]);
      }
    }
    serial_.inv_fourier_row(fm, f, my_lats_[row]);
  }
}

}  // namespace foam::numerics
