#pragma once

/// \file gauss.hpp
/// Gauss-Legendre quadrature nodes and weights.
///
/// The spectral atmosphere's Gaussian grid places latitudes at the roots of
/// the Legendre polynomial P_nlat(mu), mu = sin(lat); the same weights make
/// the forward Legendre transform exact for the truncation in use.

#include <vector>

namespace foam::numerics {

struct GaussNodes {
  std::vector<double> mu;      ///< nodes in (-1, 1), ascending
  std::vector<double> weight;  ///< weights; sum equals 2
};

/// Compute the n-point Gauss-Legendre rule by Newton iteration on P_n.
GaussNodes gauss_legendre(int n);

}  // namespace foam::numerics
