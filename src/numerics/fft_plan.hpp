#pragma once

/// \file fft_plan.hpp
/// Plan-based iterative mixed-radix FFT — the transform engine's kernel.
///
/// The reference Fft (fft.hpp) recurses with a fresh std::vector at every
/// level and runs real transforms through the full n-point complex path.
/// FftPlan is the production replacement: the constructor factorizes N,
/// builds the digit-reversal permutation and per-stage twiddle tables once,
/// and every transform afterwards runs iteratively (bottom-up over the
/// factor stages, ping-ponging between the data array and a caller-provided
/// workspace) with **no allocation**. Real-to-complex / complex-to-real
/// transforms of even N run an N/2-point complex transform plus an O(N)
/// split post-pass — half the butterflies of the reference path.
///
/// The complex transform performs the same butterfly sums in the same
/// order as the reference recursion, so forward()/inverse() agree with
/// Fft::forward()/inverse() bitwise; the real split path agrees to
/// rounding (~1e-15 relative).
///
/// Thread safety: a plan is immutable after construction and may be shared
/// freely; the workspace belongs to the caller (one per thread).
///
/// Conventions match Fft: forward is the unnormalized DFT
/// X_k = sum_j x_j exp(-2 pi i j k / N); inverse includes the 1/N factor.

#include <complex>
#include <memory>
#include <vector>

namespace foam::numerics {

class FftPlan {
 public:
  explicit FftPlan(int n);

  int size() const { return n_; }

  /// Complex workspace elements any transform of this plan may need.
  /// (2n covers the odd-length real fallback; the hot paths use <= n.)
  std::size_t workspace_size() const { return 2 * static_cast<std::size_t>(n_); }

  /// Unnormalized in-place forward DFT. \p work: >= workspace_size() elems.
  void forward(std::complex<double>* data, std::complex<double>* work) const;
  /// Normalized (1/N) in-place inverse DFT.
  void inverse(std::complex<double>* data, std::complex<double>* work) const;

  /// Real-to-complex forward: writes the n/2+1 non-redundant coefficients
  /// of the forward DFT of x[0..n) into spec.
  void forward_real(const double* x, std::complex<double>* spec,
                    std::complex<double>* work) const;

  /// Complex-to-real inverse of forward_real: reads n/2+1 coefficients
  /// (conjugate symmetry implied), reconstructs x[0..n). Includes the 1/N
  /// normalization so inverse_real(forward_real(x)) == x.
  void inverse_real(const std::complex<double>* spec, double* x,
                    std::complex<double>* work) const;

 private:
  FftPlan(int n, bool build_real_path);
  void build();
  void run(std::complex<double>* data, std::complex<double>* work,
           int sign) const;

  /// One bottom-up combine stage: radix \p p merging sub-blocks of size
  /// \p m into blocks of size \p count = p*m; twiddles at \p tw_offset
  /// (p*count forward values, layout tw[r*count + k]).
  struct Stage {
    int p;
    int m;
    int count;
    std::size_t tw_offset;
  };

  int n_;
  std::vector<int> factors_;
  std::vector<int> perm_;  // digit-reversal gather: leaf i reads perm_[i]
  std::vector<Stage> stages_;
  std::vector<std::complex<double>> stage_tw_;  // forward-sign twiddles
  // Split post-pass twiddles exp(-pi i k / (n/2)) ... actually
  // exp(-2 pi i k / n) for k = 0..n/2 (even n only).
  std::vector<std::complex<double>> real_tw_;
  std::unique_ptr<FftPlan> half_;  // n/2 complex plan for the real path
};

}  // namespace foam::numerics
