#include "numerics/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/error.hpp"

namespace foam::numerics {

EigResult jacobi_eigensolver(const std::vector<double>& matrix, int n,
                             int max_sweeps, double tol) {
  FOAM_REQUIRE(n > 0 && matrix.size() == static_cast<std::size_t>(n) * n,
               "jacobi matrix size " << matrix.size() << " for n=" << n);
  // Working copy, symmetrized.
  std::vector<double> a(matrix);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double s = 0.5 * (a[i * n + j] + a[j * n + i]);
      a[i * n + j] = s;
      a[j * n + i] = s;
    }
  // Eigenvector accumulator, starts as identity.
  std::vector<double> v(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) v[i * n + i] = 1.0;

  const double scale = std::max(
      1e-300, std::accumulate(a.begin(), a.end(), 0.0,
                              [](double s, double x) {
                                return s + std::abs(x);
                              }));
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) off += std::abs(a[i * n + j]);
    if (off / scale < tol) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) / scale < tol * 1e-2) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation to A (rows/cols p and q).
        for (int k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (int k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return a[x * n + x] > a[y * n + y];
  });

  EigResult out;
  out.values.resize(n);
  out.vectors.resize(n);
  for (int k = 0; k < n; ++k) {
    const int src = order[k];
    out.values[k] = a[src * n + src];
    out.vectors[k].resize(n);
    for (int i = 0; i < n; ++i) out.vectors[k][i] = v[i * n + src];
  }
  return out;
}

}  // namespace foam::numerics
