#include "numerics/filters.hpp"

#include <cmath>

#include "base/constants.hpp"

namespace foam::numerics {

using constants::deg2rad;

PolarFourierFilter::PolarFourierFilter(const MercatorGrid& grid,
                                       double crit_lat_deg)
    : grid_(grid), crit_lat_deg_(crit_lat_deg),
      cos_crit_(std::cos(crit_lat_deg * deg2rad)), fft_(grid.nlon()) {
  FOAM_REQUIRE(crit_lat_deg > 0.0 && crit_lat_deg < 90.0,
               "crit_lat_deg=" << crit_lat_deg);
}

double PolarFourierFilter::factor(int m, int j) const {
  if (m == 0) return 1.0;
  const double cos_lat = grid_.cos_lat(j);
  if (cos_lat >= cos_crit_) return 1.0;  // equatorward of critical latitude
  const double m_max = 0.5 * grid_.nlon() * cos_lat / cos_crit_;
  return std::min(1.0, m_max / m);
}

void PolarFourierFilter::apply(Field2Dd& f) const {
  const int nlon = grid_.nlon();
  std::vector<double> row(nlon);
  for (int j = 0; j < grid_.nlat(); ++j) {
    if (grid_.cos_lat(j) >= cos_crit_) continue;
    for (int i = 0; i < nlon; ++i) row[i] = f(i, j);
    auto spec = fft_.forward_real(row);
    for (int m = 1; m <= nlon / 2; ++m) spec[m] *= factor(m, j);
    row = fft_.inverse_real(spec);
    for (int i = 0; i < nlon; ++i) f(i, j) = row[i];
  }
}

void PolarFourierFilter::apply(Field2Dd& f, const Field2D<int>& mask) const {
  FOAM_REQUIRE(f.same_shape(Field2Dd(mask.nx(), mask.ny())),
               "mask shape mismatch");
  const int nlon = grid_.nlon();
  std::vector<double> row(nlon);
  std::vector<double> saved(nlon);
  for (int j = 0; j < grid_.nlat(); ++j) {
    if (grid_.cos_lat(j) >= cos_crit_) continue;
    bool any_ocean = false;
    double ocean_mean = 0.0;
    int n_ocean = 0;
    for (int i = 0; i < nlon; ++i) {
      saved[i] = f(i, j);
      if (mask(i, j) != 0) {
        any_ocean = true;
        ocean_mean += saved[i];
        ++n_ocean;
      }
    }
    if (!any_ocean) continue;
    ocean_mean /= n_ocean;
    // Fill land with the row's ocean mean so the filter sees no artificial
    // jumps at coastlines, then restore land values afterwards.
    for (int i = 0; i < nlon; ++i)
      row[i] = (mask(i, j) != 0) ? saved[i] : ocean_mean;
    auto spec = fft_.forward_real(row);
    for (int m = 1; m <= nlon / 2; ++m) spec[m] *= factor(m, j);
    row = fft_.inverse_real(spec);
    for (int i = 0; i < nlon; ++i)
      f(i, j) = (mask(i, j) != 0) ? row[i] : saved[i];
  }
}

void laplacian_masked(const MercatorGrid& grid, const Field2Dd& f,
                      const Field2D<int>& mask, Field2Dd& out) {
  const int nx = grid.nlon();
  const int ny = grid.nlat();
  FOAM_REQUIRE(f.nx() == nx && f.ny() == ny, "field shape");
  if (out.nx() != nx || out.ny() != ny) out = Field2Dd(nx, ny);
  for (int j = 0; j < ny; ++j) {
    const double inv_dx2 = 1.0 / (grid.dx(j) * grid.dx(j));
    const double inv_dy2 = 1.0 / (grid.dy(j) * grid.dy(j));
    for (int i = 0; i < nx; ++i) {
      if (mask(i, j) == 0) {
        out(i, j) = 0.0;
        continue;
      }
      const double fc = f(i, j);
      // No-flux closure: a land (or domain-edge) neighbour contributes the
      // center value, i.e. zero gradient across the wall.
      const double fe = (mask.wrap_x(i + 1, j) != 0) ? f.wrap_x(i + 1, j) : fc;
      const double fw = (mask.wrap_x(i - 1, j) != 0) ? f.wrap_x(i - 1, j) : fc;
      const double fn =
          (j + 1 < ny && mask(i, j + 1) != 0) ? f(i, j + 1) : fc;
      const double fs = (j - 1 >= 0 && mask(i, j - 1) != 0) ? f(i, j - 1) : fc;
      out(i, j) =
          (fe - 2.0 * fc + fw) * inv_dx2 + (fn - 2.0 * fc + fs) * inv_dy2;
    }
  }
}

void biharmonic_tendency(const MercatorGrid& grid, const Field2Dd& f,
                         const Field2D<int>& mask, double k4, Field2Dd& out) {
  FOAM_REQUIRE(k4 >= 0.0, "k4=" << k4);
  Field2Dd lap;
  laplacian_masked(grid, f, mask, lap);
  laplacian_masked(grid, lap, mask, out);
  out *= -k4;
}

}  // namespace foam::numerics
