#include "numerics/gauss.hpp"

#include <cmath>

#include "base/constants.hpp"
#include "base/error.hpp"

namespace foam::numerics {

GaussNodes gauss_legendre(int n) {
  FOAM_REQUIRE(n > 0, "gauss_legendre n=" << n);
  GaussNodes out;
  out.mu.resize(n);
  out.weight.resize(n);
  const int half = (n + 1) / 2;
  for (int i = 0; i < half; ++i) {
    // Chebyshev-based initial guess for the i-th root (descending).
    double x = std::cos(constants::pi * (i + 0.75) / (n + 0.5));
    double pp = 0.0;
    for (int it = 0; it < 100; ++it) {
      // Evaluate P_n(x) and P_{n-1}(x) by upward recurrence.
      double p0 = 1.0;
      double p1 = x;
      for (int k = 2; k <= n; ++k) {
        const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = p2;
      }
      // P'_n(x) from P_n and P_{n-1}.
      pp = n * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / pp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    // Roots are symmetric; store ascending.
    out.mu[i] = -x;
    out.mu[n - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * pp * pp);
    out.weight[i] = w;
    out.weight[n - 1 - i] = w;
  }
  return out;
}

}  // namespace foam::numerics
