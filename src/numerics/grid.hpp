#pragma once

/// \file grid.hpp
/// The two horizontal grids of FOAM.
///
/// * GaussianGrid — the atmosphere grid: uniformly spaced longitudes and
///   Gaussian latitudes (roots of P_nlat). R15 uses 48 x 40.
/// * MercatorGrid — the ocean grid: uniformly spaced longitudes and
///   latitudes equally spaced in the Mercator coordinate
///   y = ln(tan(pi/4 + lat/2)), clipped at +-lat_max. FOAM uses 128 x 128,
///   roughly 1.4 deg lat x 2.8 deg lon in the tropics.
///
/// Both expose cell centers, cell edges and true spherical cell areas; the
/// coupler's overlap grid is built from the edges, and conservation checks
/// use the areas.

#include <vector>

#include "base/error.hpp"

namespace foam::numerics {

/// Common interface data for a rectangular lat-lon-indexed global grid.
/// Longitude cells are uniform and periodic; latitude spacing varies.
/// Latitude index 0 is the southernmost row.
class LatLonGrid {
 public:
  virtual ~LatLonGrid() = default;

  int nlon() const { return nlon_; }
  int nlat() const { return static_cast<int>(lat_.size()); }

  /// Cell-center longitude [radians, in [0, 2 pi)).
  double lon(int i) const { return lon_[check_i(i)]; }
  /// Cell-center latitude [radians].
  double lat(int j) const { return lat_[check_j(j)]; }

  /// Cell edges; lon edges have nlon+1 entries (edge 0 at -dlon/2), lat
  /// edges nlat+1 entries from the south pole side upward.
  double lon_edge(int i) const { return lon_edge_[i]; }
  double lat_edge(int j) const { return lat_edge_[j]; }

  /// True spherical cell area [m^2]; depends only on j.
  double cell_area(int j) const { return area_[check_j(j)]; }

  /// Sum of all cell areas [m^2].
  double total_area() const;

  const std::vector<double>& latitudes() const { return lat_; }
  const std::vector<double>& longitudes() const { return lon_; }

 protected:
  void finalize();  // compute lon arrays + areas from lat_edge_ and nlon_

  int nlon_ = 0;
  std::vector<double> lon_;
  std::vector<double> lat_;
  std::vector<double> lon_edge_;
  std::vector<double> lat_edge_;
  std::vector<double> area_;

 private:
  int check_i(int i) const {
    FOAM_ASSERT(i >= 0 && i < nlon_, "lon index " << i);
    return i;
  }
  int check_j(int j) const {
    FOAM_ASSERT(j >= 0 && j < nlat(), "lat index " << j);
    return j;
  }
};

/// Atmosphere grid: Gaussian latitudes, uniform longitudes.
class GaussianGrid : public LatLonGrid {
 public:
  GaussianGrid(int nlon, int nlat);

  /// Gaussian quadrature weight of latitude j (sums to 2 over latitudes).
  double gauss_weight(int j) const { return weight_[j]; }
  /// mu = sin(lat_j), the Gaussian node.
  double mu(int j) const { return mu_[j]; }
  const std::vector<double>& mus() const { return mu_; }

 private:
  std::vector<double> mu_;
  std::vector<double> weight_;
};

/// Ocean grid: uniform Mercator latitudes between +-lat_max.
/// By default (lat_max_deg <= 0) the grid is *conformal*: the Mercator
/// spacing equals the longitude spacing, making cells square (dx == dy) at
/// every latitude. For 128 x 128 this spans about +-85 deg with a mean
/// latitude spacing of ~1.4 deg — the FOAM ocean grid. An explicit
/// lat_max_deg overrides the conformal extent.
class MercatorGrid : public LatLonGrid {
 public:
  MercatorGrid(int nlon, int nlat, double lat_max_deg = 0.0);

  /// Metric coefficient 1/cos(lat) used by the Mercator-space operators.
  double sec_lat(int j) const { return 1.0 / cos_lat_[j]; }
  double cos_lat(int j) const { return cos_lat_[j]; }

  /// Grid spacing in physical meters at latitude j.
  double dx(int j) const { return dx_[j]; }
  double dy(int j) const { return dy_[j]; }

 private:
  std::vector<double> cos_lat_;
  std::vector<double> dx_;
  std::vector<double> dy_;
};

}  // namespace foam::numerics
