#pragma once

/// \file fft.hpp
/// Mixed-radix fast Fourier transform.
///
/// The spectral atmosphere needs length-48 transforms (R15 Gaussian grid)
/// and the ocean polar filter needs length-128 ones, so the implementation
/// handles any length whose prime factors are small (2, 3, 5, 7); other
/// factors fall back to an O(p^2) direct step, which keeps the code correct
/// for every size used in tests.
///
/// Conventions: forward() computes X_k = sum_j x_j exp(-2*pi*i*j*k/N)
/// (unnormalized); inverse() includes the 1/N factor so
/// inverse(forward(x)) == x.

#include <complex>
#include <vector>

namespace foam::numerics {

/// Planned FFT of a fixed length. Plans are cheap; the constructor only
/// factorizes N and tabulates twiddles.
class Fft {
 public:
  explicit Fft(int n);

  int size() const { return n_; }

  /// Unnormalized forward DFT.
  void forward(std::vector<std::complex<double>>& data) const;
  /// Normalized (1/N) inverse DFT.
  void inverse(std::vector<std::complex<double>>& data) const;

  /// Real-to-complex convenience: returns the n/2+1 non-redundant
  /// coefficients of the forward DFT of a real sequence.
  std::vector<std::complex<double>> forward_real(
      const std::vector<double>& x) const;

  /// Complex-to-real inverse of forward_real: expects n/2+1 coefficients,
  /// reconstructs the length-n real sequence (conjugate symmetry implied).
  std::vector<double> inverse_real(
      const std::vector<std::complex<double>>& spec) const;

 private:
  void transform(std::vector<std::complex<double>>& data, int sign) const;
  int n_;
  std::vector<int> factors_;
  std::vector<std::complex<double>> twiddle_fwd_;  // exp(-2 pi i j / n)
};

}  // namespace foam::numerics
