#include "numerics/fft.hpp"

#include <cmath>

#include "base/constants.hpp"
#include "base/error.hpp"

namespace foam::numerics {

using cplx = std::complex<double>;

Fft::Fft(int n) : n_(n) {
  FOAM_REQUIRE(n > 0, "FFT length " << n);
  int rem = n;
  for (int p : {2, 3, 5, 7}) {
    while (rem % p == 0) {
      factors_.push_back(p);
      rem /= p;
    }
  }
  // Remaining prime factors handled by the direct O(p^2) butterfly.
  for (int p = 11; rem > 1; p += 2) {
    while (rem % p == 0) {
      factors_.push_back(p);
      rem /= p;
    }
  }
  twiddle_fwd_.resize(n);
  for (int j = 0; j < n; ++j) {
    const double ang = -constants::two_pi * j / n;
    twiddle_fwd_[j] = cplx(std::cos(ang), std::sin(ang));
  }
}

namespace {

/// Recursive mixed-radix Cooley-Tukey: data has `count` elements at stride
/// `stride` within `src`; result written densely into `dst`.
void fft_rec(const cplx* src, cplx* dst, int count, int stride,
             const std::vector<int>& factors, std::size_t fidx,
             const std::vector<cplx>& tw, int n, int sign) {
  if (count == 1) {
    dst[0] = src[0];
    return;
  }
  const int p =
      fidx < factors.size() ? factors[fidx] : count;  // direct fallback
  const int m = count / p;
  // Transform the p interleaved subsequences.
  std::vector<cplx> sub(static_cast<std::size_t>(count));
  for (int r = 0; r < p; ++r) {
    fft_rec(src + static_cast<std::ptrdiff_t>(r) * stride,
            sub.data() + static_cast<std::ptrdiff_t>(r) * m, m, stride * p,
            factors, fidx + 1, tw, n, sign);
  }
  // Combine: dst[q + s*m] = sum_r twiddle(r*(q+s*m)) * sub[r*m + q]
  const int big_stride = n / count;  // twiddle step for this level
  for (int q = 0; q < m; ++q) {
    for (int s = 0; s < p; ++s) {
      const int k = q + s * m;
      cplx acc(0.0, 0.0);
      for (int r = 0; r < p; ++r) {
        // twiddle index r*k*bigStride mod n, conjugated for inverse.
        const long long tidx =
            (static_cast<long long>(r) * k * big_stride) % n;
        cplx w = tw[static_cast<std::size_t>(tidx)];
        if (sign > 0) w = std::conj(w);
        acc += w * sub[static_cast<std::size_t>(r) * m + q];
      }
      dst[k] = acc;
    }
  }
}

}  // namespace

void Fft::transform(std::vector<cplx>& data, int sign) const {
  FOAM_REQUIRE(static_cast<int>(data.size()) == n_,
               "FFT input length " << data.size() << " != " << n_);
  std::vector<cplx> out(data.size());
  fft_rec(data.data(), out.data(), n_, 1, factors_, 0, twiddle_fwd_, n_,
          sign);
  data.swap(out);
}

void Fft::forward(std::vector<cplx>& data) const { transform(data, -1); }

void Fft::inverse(std::vector<cplx>& data) const {
  transform(data, +1);
  const double inv = 1.0 / n_;
  for (auto& v : data) v *= inv;
}

std::vector<cplx> Fft::forward_real(const std::vector<double>& x) const {
  FOAM_REQUIRE(static_cast<int>(x.size()) == n_,
               "FFT input length " << x.size() << " != " << n_);
  std::vector<cplx> data(n_);
  for (int j = 0; j < n_; ++j) data[j] = cplx(x[j], 0.0);
  forward(data);
  data.resize(n_ / 2 + 1);
  return data;
}

std::vector<double> Fft::inverse_real(const std::vector<cplx>& spec) const {
  FOAM_REQUIRE(static_cast<int>(spec.size()) == n_ / 2 + 1,
               "rFFT spectrum length " << spec.size() << " != " << n_ / 2 + 1);
  std::vector<cplx> full(n_);
  for (int k = 0; k <= n_ / 2; ++k) full[k] = spec[k];
  for (int k = n_ / 2 + 1; k < n_; ++k) full[k] = std::conj(spec[n_ - k]);
  inverse(full);
  std::vector<double> x(n_);
  for (int j = 0; j < n_; ++j) x[j] = full[j].real();
  return x;
}

}  // namespace foam::numerics
