#include "numerics/fft_plan.hpp"

#include <cmath>
#include <cstring>

#include "base/constants.hpp"
#include "base/error.hpp"

namespace foam::numerics {

using cplx = std::complex<double>;

FftPlan::FftPlan(int n) : FftPlan(n, /*build_real_path=*/true) {}

FftPlan::FftPlan(int n, bool build_real_path) : n_(n) {
  FOAM_REQUIRE(n > 0, "FFT length " << n);
  build();
  if (build_real_path && n_ % 2 == 0 && n_ >= 2) {
    half_ = std::unique_ptr<FftPlan>(new FftPlan(n_ / 2, false));
    const int n2 = n_ / 2;
    real_tw_.resize(n2 + 1);
    for (int k = 0; k <= n2; ++k) {
      const double ang = -constants::two_pi * k / n_;
      real_tw_[k] = cplx(std::cos(ang), std::sin(ang));
    }
  }
}

void FftPlan::build() {
  int rem = n_;
  for (int p : {2, 3, 5, 7}) {
    while (rem % p == 0) {
      factors_.push_back(p);
      rem /= p;
    }
  }
  // Remaining primes take the O(p^2) direct combine, same as the reference.
  for (int p = 11; rem > 1; p += 2) {
    while (rem % p == 0) {
      factors_.push_back(p);
      rem /= p;
    }
  }

  // Digit-reversal permutation: replicate the reference recursion's leaf
  // order (factor fidx splits into p subsequences of stride*p, child r's
  // output occupying the r-th chunk).
  perm_.resize(n_);
  struct Frame {
    int src_off, stride, count, out_off;
    std::size_t fidx;
  };
  std::vector<Frame> stack;
  stack.push_back({0, 1, n_, 0, 0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.count == 1) {
      perm_[f.out_off] = f.src_off;
      continue;
    }
    const int p = factors_[f.fidx];
    const int m = f.count / p;
    for (int r = 0; r < p; ++r)
      stack.push_back({f.src_off + r * f.stride, f.stride * p, m,
                       f.out_off + r * m, f.fidx + 1});
  }

  // Bottom-up combine stages (deepest factor first) with per-stage twiddle
  // tables: tw[r*count + k] = exp(-2 pi i r k (n/count) / n).
  int m = 1;
  for (std::size_t i = factors_.size(); i-- > 0;) {
    const int p = factors_[i];
    const int count = p * m;
    Stage st{p, m, count, stage_tw_.size()};
    const int big_stride = n_ / count;
    for (int r = 0; r < p; ++r) {
      for (int k = 0; k < count; ++k) {
        const long long tidx =
            (static_cast<long long>(r) * k * big_stride) % n_;
        const double ang = -constants::two_pi * static_cast<double>(tidx) / n_;
        stage_tw_.push_back(cplx(std::cos(ang), std::sin(ang)));
      }
    }
    stages_.push_back(st);
    m = count;
  }
}

void FftPlan::run(cplx* data, cplx* work, int sign) const {
  if (n_ == 1) return;
  // Gather into the workspace in leaf order, then combine stage by stage,
  // ping-ponging between work and data. Stage count == factor count, so the
  // result lands in data when the factor count is odd; one memcpy otherwise.
  for (int i = 0; i < n_; ++i) work[i] = data[perm_[i]];
  cplx* src = work;
  cplx* dst = data;
  for (const Stage& st : stages_) {
    const cplx* tw = stage_tw_.data() + st.tw_offset;
    const int p = st.p, m = st.m, count = st.count;
    if (p == 2) {
      // Radix-2 butterfly. Both outputs use their own tabulated twiddle
      // (tw(1, q+m) == -tw(1, q) only mathematically: the tables hold
      // cos/sin evaluated at each index, and bitwise identity with the
      // reference recursion requires multiplying by the same values).
      const cplx* tw1 = tw + count;
      for (int base = 0; base < n_; base += count) {
        const cplx* s0 = src + base;
        cplx* d0 = dst + base;
        for (int q = 0; q < m; ++q) {
          const cplx a = s0[q];
          const cplx b = s0[m + q];
          cplx w0 = tw1[q];
          cplx w1 = tw1[m + q];
          if (sign > 0) {
            w0 = std::conj(w0);
            w1 = std::conj(w1);
          }
          d0[q] = a + w0 * b;
          d0[m + q] = a + w1 * b;
        }
      }
    } else {
      for (int base = 0; base < n_; base += count) {
        const cplx* s0 = src + base;
        cplx* d0 = dst + base;
        for (int q = 0; q < m; ++q) {
          for (int s = 0; s < p; ++s) {
            const int k = q + s * m;
            cplx acc(0.0, 0.0);
            for (int r = 0; r < p; ++r) {
              cplx w = tw[r * count + k];
              if (sign > 0) w = std::conj(w);
              acc += w * s0[r * m + q];
            }
            d0[k] = acc;
          }
        }
      }
    }
    std::swap(src, dst);
  }
  // Result is in src after the final swap.
  if (src != data) std::memcpy(data, src, sizeof(cplx) * n_);
}

void FftPlan::forward(cplx* data, cplx* work) const { run(data, work, -1); }

void FftPlan::inverse(cplx* data, cplx* work) const {
  run(data, work, +1);
  const double inv = 1.0 / n_;
  for (int i = 0; i < n_; ++i) data[i] *= inv;
}

void FftPlan::forward_real(const double* x, cplx* spec, cplx* work) const {
  if (!half_) {
    // Odd (or length-1) fallback: full complex transform in the workspace.
    cplx* data = work;
    cplx* scratch = work + n_;
    for (int j = 0; j < n_; ++j) data[j] = cplx(x[j], 0.0);
    run(data, scratch, -1);
    for (int k = 0; k <= n_ / 2; ++k) spec[k] = data[k];
    return;
  }
  const int n2 = n_ / 2;
  // Pack pairs into a half-length complex sequence and transform.
  cplx* z = work;
  cplx* scratch = work + n2;
  for (int j = 0; j < n2; ++j) z[j] = cplx(x[2 * j], x[2 * j + 1]);
  half_->run(z, scratch, -1);
  // Split: X_k = (Z_k + conj(Z_{n2-k}))/2 - (i/2) w_k (Z_k - conj(Z_{n2-k}))
  // with w_k = exp(-2 pi i k / n) and Z_{n2} == Z_0.
  for (int k = 0; k <= n2; ++k) {
    const cplx zk = (k == n2) ? z[0] : z[k];
    const cplx zc = std::conj(k == 0 ? z[0] : z[n2 - k]);
    const cplx even = 0.5 * (zk + zc);
    const cplx odd = cplx(0.0, -0.5) * (zk - zc);
    spec[k] = even + real_tw_[k] * odd;
  }
}

void FftPlan::inverse_real(const cplx* spec, double* x, cplx* work) const {
  if (!half_) {
    cplx* data = work;
    cplx* scratch = work + n_;
    for (int k = 0; k <= n_ / 2; ++k) data[k] = spec[k];
    for (int k = n_ / 2 + 1; k < n_; ++k) data[k] = std::conj(spec[n_ - k]);
    run(data, scratch, +1);
    const double inv = 1.0 / n_;
    for (int j = 0; j < n_; ++j) x[j] = data[j].real() * inv;
    return;
  }
  const int n2 = n_ / 2;
  cplx* z = work;
  cplx* scratch = work + n2;
  // Un-split: Fe_k = (X_k + conj(X_{n2-k}))/2,
  //           Fo_k = conj(w_k) (X_k - conj(X_{n2-k}))/2,
  //           Z_k  = Fe_k + i Fo_k.
  for (int k = 0; k < n2; ++k) {
    const cplx xk = spec[k];
    const cplx xc = std::conj(spec[n2 - k]);
    const cplx fe = 0.5 * (xk + xc);
    const cplx fo = std::conj(real_tw_[k]) * (0.5 * (xk - xc));
    z[k] = fe + cplx(0.0, 1.0) * fo;
  }
  half_->run(z, scratch, +1);
  const double inv = 1.0 / n2;
  for (int j = 0; j < n2; ++j) {
    x[2 * j] = z[j].real() * inv;
    x[2 * j + 1] = z[j].imag() * inv;
  }
}

}  // namespace foam::numerics
