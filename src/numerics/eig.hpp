#pragma once

/// \file eig.hpp
/// Dense symmetric eigensolver (cyclic Jacobi).
///
/// The EOF analysis behind Figure 4 diagonalizes an SST covariance matrix;
/// at FOAM problem sizes (a few hundred retained points or time samples)
/// cyclic Jacobi is simple, robust and plenty fast.

#include <vector>

namespace foam::numerics {

struct EigResult {
  /// Eigenvalues sorted descending.
  std::vector<double> values;
  /// Column-major eigenvectors: vectors[k] is the unit eigenvector for
  /// values[k].
  std::vector<std::vector<double>> vectors;
};

/// Diagonalize the symmetric n x n matrix given in row-major order.
/// Off-diagonal asymmetry is averaged away (inputs come from covariance
/// accumulation and may carry round-off asymmetry).
EigResult jacobi_eigensolver(const std::vector<double>& matrix, int n,
                             int max_sweeps = 64, double tol = 1e-12);

}  // namespace foam::numerics
