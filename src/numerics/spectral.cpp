#include "numerics/spectral.hpp"

#include <cmath>

#include "base/constants.hpp"
#include "telemetry/telemetry.hpp"

namespace foam::numerics {

using cplx = std::complex<double>;
using constants::earth_radius;

namespace {

/// Batch-level telemetry: per-row counters at ~1.3M row transforms per
/// simulated day would cost a few percent, so sizes are accounted here,
/// once per batch call. plan_rows counts latitude rows pushed through the
/// cached FFT plan — the plan-reuse analogue of a cache-hit counter.
void note_batch(bool engine, std::size_t fields, std::size_t rows) {
  if (telemetry::current() == nullptr) return;
  telemetry::count(engine ? "spectral.engine_batches"
                          : "spectral.reference_batches");
  telemetry::observe("spectral.batch_fields", static_cast<double>(fields));
  telemetry::count("spectral.plan_rows",
                   static_cast<std::uint64_t>(rows) * fields);
}

}  // namespace

SpectralField& SpectralField::operator+=(const SpectralField& o) {
  FOAM_REQUIRE(same_shape(o), "spectral shape mismatch");
  for (std::size_t i = 0; i < c_.size(); ++i) c_[i] += o.c_[i];
  return *this;
}

SpectralField& SpectralField::operator-=(const SpectralField& o) {
  FOAM_REQUIRE(same_shape(o), "spectral shape mismatch");
  for (std::size_t i = 0; i < c_.size(); ++i) c_[i] -= o.c_[i];
  return *this;
}

SpectralField& SpectralField::operator*=(double s) {
  for (auto& v : c_) v *= s;
  return *this;
}

void SpectralField::axpy(double a, const SpectralField& o) {
  FOAM_REQUIRE(same_shape(o), "spectral shape mismatch");
  for (std::size_t i = 0; i < c_.size(); ++i) c_[i] += a * o.c_[i];
}

double SpectralField::power() const {
  double sum = 0.0;
  for (int m = 0; m <= mmax_; ++m) {
    const double fac = (m == 0) ? 1.0 : 2.0;
    for (int k = 0; k < kmax_; ++k) sum += fac * std::norm(at(m, k));
  }
  return sum;
}

SpectralTransform::SpectralTransform(const GaussianGrid& grid, int mmax,
                                     SpectralMode mode)
    : grid_(grid),
      mmax_(mmax),
      kmax_(mmax + 1),
      mode_(mode),
      fft_(grid.nlon()),
      plan_(grid.nlon()),
      table_(mmax, /*kmax=*/mmax + 1, grid.mus()) {
  FOAM_REQUIRE(mmax >= 1, "mmax=" << mmax);
  // Alias-free quadratic products need nlon >= 3*mmax + 1 and
  // nlat >= (3*mmax + 1)/2 for rhomboidal truncation.
  FOAM_REQUIRE(grid.nlon() >= 3 * mmax + 1,
               "nlon=" << grid.nlon() << " too small for R" << mmax);
  FOAM_REQUIRE(grid.nlat() >= (3 * mmax + 1) / 2,
               "nlat=" << grid.nlat() << " too small for R" << mmax);
  std::vector<int> all(grid.nlat());
  for (int j = 0; j < grid.nlat(); ++j) all[j] = j;
  pairing_ = make_pairing(grid, all);
}

SpectralTransform::LatPairing SpectralTransform::make_pairing(
    const GaussianGrid& grid, std::span<const int> lats) {
  LatPairing lp;
  const int nlat = grid.nlat();
  std::vector<char> in_set(nlat, 0), used(nlat, 0);
  for (const int j : lats) {
    FOAM_REQUIRE(j >= 0 && j < nlat, "latitude " << j);
    in_set[j] = 1;
  }
  for (const int j : lats) {
    if (used[j]) continue;
    const int jm = nlat - 1 - j;
    // Gaussian nodes are stored exactly mirror-symmetric (gauss.cpp writes
    // mu[i] = -x, mu[n-1-i] = x), so the parity fold is exact; guard it
    // anyway in case a non-Gaussian latitude set ever reaches here.
    const bool mirrored =
        jm != j && in_set[jm] &&
        std::abs(grid.mu(j) + grid.mu(jm)) <=
            1e-14 * (1.0 + std::abs(grid.mu(j))) &&
        std::abs(grid.gauss_weight(j) - grid.gauss_weight(jm)) <=
            1e-14 * grid.gauss_weight(j);
    if (mirrored) {
      used[j] = used[jm] = 1;
      lp.pairs.push_back({std::min(j, jm), std::max(j, jm)});
    } else {
      used[j] = 1;
      lp.singles.push_back(j);
    }
  }
  return lp;
}

// ---------------------------------------------------------------------------
// Reference row transforms

void SpectralTransform::fourier_row(const Field2Dd& f, int j,
                                    std::vector<cplx>& fm) const {
  const int nlon = grid_.nlon();
  std::vector<double> row(nlon);
  for (int i = 0; i < nlon; ++i) row[i] = f(i, j);
  std::vector<cplx> spec = fft_.forward_real(row);
  fm.resize(mmax_ + 1);
  const double inv_n = 1.0 / nlon;
  for (int m = 0; m <= mmax_; ++m) fm[m] = spec[m] * inv_n;
}

void SpectralTransform::inv_fourier_row(const std::vector<cplx>& fm,
                                        Field2Dd& f, int j) const {
  const int nlon = grid_.nlon();
  std::vector<cplx> spec(nlon / 2 + 1, cplx(0.0, 0.0));
  for (int m = 0; m <= mmax_; ++m)
    spec[m] = fm[m] * static_cast<double>(nlon);
  std::vector<double> row = fft_.inverse_real(spec);
  for (int i = 0; i < nlon; ++i) f(i, j) = row[i];
}

// ---------------------------------------------------------------------------
// Plan-based row transforms

void SpectralTransform::fourier_row_plan(const Field2Dd& f, int j, cplx* fm,
                                         SpectralWorkspace& ws) const {
  const int nlon = grid_.nlon();
  ws.fft.resize(plan_.workspace_size());
  ws.row.resize(nlon);
  ws.spec.resize(nlon / 2 + 1);
  for (int i = 0; i < nlon; ++i) ws.row[i] = f(i, j);
  plan_.forward_real(ws.row.data(), ws.spec.data(), ws.fft.data());
  const double inv_n = 1.0 / nlon;
  for (int m = 0; m <= mmax_; ++m) fm[m] = ws.spec[m] * inv_n;
}

void SpectralTransform::inv_fourier_row_plan(const cplx* fm, Field2Dd& f,
                                             int j,
                                             SpectralWorkspace& ws) const {
  const int nlon = grid_.nlon();
  ws.fft.resize(plan_.workspace_size());
  ws.row.resize(nlon);
  ws.spec.assign(nlon / 2 + 1, cplx(0.0, 0.0));
  for (int m = 0; m <= mmax_; ++m)
    ws.spec[m] = fm[m] * static_cast<double>(nlon);
  plan_.inverse_real(ws.spec.data(), ws.row.data(), ws.fft.data());
  for (int i = 0; i < nlon; ++i) f(i, j) = ws.row[i];
}

// ---------------------------------------------------------------------------
// Engine kernels: parity-folded, panel-blocked Legendre sums.
//
// Pbar parity about the equator: P(m, k, jn) = (-1)^k P(m, k, js) and
// H(m, k, jn) = (-1)^{k+1} H(m, k, js) for a mirror pair (js, jn). Folding
// the pair's Fourier rows into even/odd combinations therefore halves the
// Legendre work: even-k coefficients see only the even fold, odd-k only the
// odd fold. The inner loops stream the LegendreTable's contiguous (m, k)
// panels for the southern row of each pair.

void SpectralTransform::engine_analyze(const LatPairing& lp,
                                       const std::vector<const Field2Dd*>& fs,
                                       std::vector<SpectralField>& out,
                                       SpectralWorkspace& ws) const {
  const int nm = mmax_ + 1;
  const int nf = static_cast<int>(fs.size());
  ws.fm_a.resize(nm);
  ws.fm_b.resize(nm);
  ws.fold_pe.resize(static_cast<std::size_t>(nf) * nm);
  ws.fold_po.resize(static_cast<std::size_t>(nf) * nm);
  for (const auto& pr : lp.pairs) {
    const int js = pr[0], jn = pr[1];
    const double w = 0.5 * grid_.gauss_weight(js);
    for (int f = 0; f < nf; ++f) {
      fourier_row_plan(*fs[f], js, ws.fm_a.data(), ws);
      fourier_row_plan(*fs[f], jn, ws.fm_b.data(), ws);
      cplx* fe = ws.fold_pe.data() + static_cast<std::size_t>(f) * nm;
      cplx* fo = ws.fold_po.data() + static_cast<std::size_t>(f) * nm;
      for (int m = 0; m < nm; ++m) {
        fe[m] = w * (ws.fm_a[m] + ws.fm_b[m]);
        fo[m] = w * (ws.fm_a[m] - ws.fm_b[m]);
      }
    }
    const double* P = table_.p_row(js);
    for (int f = 0; f < nf; ++f) {
      cplx* s = out[f].data();
      const cplx* fe = ws.fold_pe.data() + static_cast<std::size_t>(f) * nm;
      const cplx* fo = ws.fold_po.data() + static_cast<std::size_t>(f) * nm;
      for (int m = 0; m < nm; ++m) {
        const double* pm = P + static_cast<std::size_t>(m) * kmax_;
        cplx* sm = s + static_cast<std::size_t>(m) * kmax_;
        const cplx Fe = fe[m], Fo = fo[m];
        int k = 0;
        for (; k + 1 < kmax_; k += 2) {
          sm[k] += Fe * pm[k];
          sm[k + 1] += Fo * pm[k + 1];
        }
        if (k < kmax_) sm[k] += Fe * pm[k];
      }
    }
  }
  for (const int j : lp.singles) {
    const double w = 0.5 * grid_.gauss_weight(j);
    const double* P = table_.p_row(j);
    for (int f = 0; f < nf; ++f) {
      fourier_row_plan(*fs[f], j, ws.fm_a.data(), ws);
      cplx* s = out[f].data();
      for (int m = 0; m < nm; ++m) {
        const double* pm = P + static_cast<std::size_t>(m) * kmax_;
        cplx* sm = s + static_cast<std::size_t>(m) * kmax_;
        const cplx wf = w * ws.fm_a[m];
        for (int k = 0; k < kmax_; ++k) sm[k] += wf * pm[k];
      }
    }
  }
}

void SpectralTransform::engine_synthesize(
    const LatPairing& lp, const std::vector<const SpectralField*>& ss,
    const std::vector<Field2Dd*>& outs, SpectralWorkspace& ws) const {
  const int nm = mmax_ + 1;
  const int nf = static_cast<int>(ss.size());
  ws.fm_a.resize(nm);
  ws.fm_b.resize(nm);
  for (const auto& pr : lp.pairs) {
    const int js = pr[0], jn = pr[1];
    const double* P = table_.p_row(js);
    for (int f = 0; f < nf; ++f) {
      const cplx* s = ss[f]->data();
      for (int m = 0; m < nm; ++m) {
        const double* pm = P + static_cast<std::size_t>(m) * kmax_;
        const cplx* sm = s + static_cast<std::size_t>(m) * kmax_;
        cplx acc_e(0.0, 0.0), acc_o(0.0, 0.0);
        int k = 0;
        for (; k + 1 < kmax_; k += 2) {
          acc_e += sm[k] * pm[k];
          acc_o += sm[k + 1] * pm[k + 1];
        }
        if (k < kmax_) acc_e += sm[k] * pm[k];
        ws.fm_a[m] = acc_e + acc_o;  // southern row: P as tabulated
        ws.fm_b[m] = acc_e - acc_o;  // northern mirror: (-1)^k parity
      }
      inv_fourier_row_plan(ws.fm_a.data(), *outs[f], js, ws);
      inv_fourier_row_plan(ws.fm_b.data(), *outs[f], jn, ws);
    }
  }
  for (const int j : lp.singles) {
    const double* P = table_.p_row(j);
    for (int f = 0; f < nf; ++f) {
      const cplx* s = ss[f]->data();
      for (int m = 0; m < nm; ++m) {
        const double* pm = P + static_cast<std::size_t>(m) * kmax_;
        const cplx* sm = s + static_cast<std::size_t>(m) * kmax_;
        cplx acc(0.0, 0.0);
        for (int k = 0; k < kmax_; ++k) acc += sm[k] * pm[k];
        ws.fm_a[m] = acc;
      }
      inv_fourier_row_plan(ws.fm_a.data(), *outs[f], j, ws);
    }
  }
}

void SpectralTransform::engine_analyze_vec(
    const LatPairing& lp, bool curl, const std::vector<const Field2Dd*>& As,
    const std::vector<const Field2Dd*>& Bs, std::vector<SpectralField>& out,
    SpectralWorkspace& ws) const {
  const int nm = mmax_ + 1;
  const int nf = static_cast<int>(As.size());
  ws.fm_a.resize(nm);
  ws.fm_b.resize(nm);
  ws.fm_c.resize(nm);
  ws.fm_d.resize(nm);
  ws.fold_pe.resize(static_cast<std::size_t>(nf) * nm);
  ws.fold_po.resize(static_cast<std::size_t>(nf) * nm);
  ws.fold_he.resize(static_cast<std::size_t>(nf) * nm);
  ws.fold_ho.resize(static_cast<std::size_t>(nf) * nm);
  for (const auto& pr : lp.pairs) {
    const int js = pr[0], jn = pr[1];
    const double mu = grid_.mu(js);
    const double wj = 0.5 * grid_.gauss_weight(js) /
                      (earth_radius * (1.0 - mu * mu));
    for (int f = 0; f < nf; ++f) {
      fourier_row_plan(*As[f], js, ws.fm_a.data(), ws);
      fourier_row_plan(*As[f], jn, ws.fm_b.data(), ws);
      fourier_row_plan(*Bs[f], js, ws.fm_c.data(), ws);
      fourier_row_plan(*Bs[f], jn, ws.fm_d.data(), ws);
      cplx* pe = ws.fold_pe.data() + static_cast<std::size_t>(f) * nm;
      cplx* po = ws.fold_po.data() + static_cast<std::size_t>(f) * nm;
      cplx* he = ws.fold_he.data() + static_cast<std::size_t>(f) * nm;
      cplx* ho = ws.fold_ho.data() + static_cast<std::size_t>(f) * nm;
      for (int m = 0; m < nm; ++m) {
        const cplx im(0.0, static_cast<double>(m));
        if (!curl) {
          // div: s += (i m A_m) wj P - (B_m wj) H. With H's (-1)^{k+1}
          // parity the even-k H term sees the *odd* fold and vice versa.
          const cplx iaS = im * ws.fm_a[m] * wj, iaN = im * ws.fm_b[m] * wj;
          const cplx bS = ws.fm_c[m] * wj, bN = ws.fm_d[m] * wj;
          pe[m] = iaS + iaN;
          po[m] = iaS - iaN;
          he[m] = -(bS - bN);
          ho[m] = -(bS + bN);
        } else {
          // curl: s += (i m B_m) wj P + (A_m wj) H.
          const cplx ibS = im * ws.fm_c[m] * wj, ibN = im * ws.fm_d[m] * wj;
          const cplx aS = ws.fm_a[m] * wj, aN = ws.fm_b[m] * wj;
          pe[m] = ibS + ibN;
          po[m] = ibS - ibN;
          he[m] = aS - aN;
          ho[m] = aS + aN;
        }
      }
    }
    const double* P = table_.p_row(js);
    const double* H = table_.h_row(js);
    for (int f = 0; f < nf; ++f) {
      cplx* s = out[f].data();
      const cplx* pe = ws.fold_pe.data() + static_cast<std::size_t>(f) * nm;
      const cplx* po = ws.fold_po.data() + static_cast<std::size_t>(f) * nm;
      const cplx* he = ws.fold_he.data() + static_cast<std::size_t>(f) * nm;
      const cplx* ho = ws.fold_ho.data() + static_cast<std::size_t>(f) * nm;
      for (int m = 0; m < nm; ++m) {
        const double* pm = P + static_cast<std::size_t>(m) * kmax_;
        const double* hm = H + static_cast<std::size_t>(m) * kmax_;
        cplx* sm = s + static_cast<std::size_t>(m) * kmax_;
        const cplx Pe = pe[m], Po = po[m], He = he[m], Ho = ho[m];
        int k = 0;
        for (; k + 1 < kmax_; k += 2) {
          sm[k] += Pe * pm[k] + He * hm[k];
          sm[k + 1] += Po * pm[k + 1] + Ho * hm[k + 1];
        }
        if (k < kmax_) sm[k] += Pe * pm[k] + He * hm[k];
      }
    }
  }
  for (const int j : lp.singles) {
    const double mu = grid_.mu(j);
    const double wj =
        0.5 * grid_.gauss_weight(j) / (earth_radius * (1.0 - mu * mu));
    const double* P = table_.p_row(j);
    const double* H = table_.h_row(j);
    for (int f = 0; f < nf; ++f) {
      fourier_row_plan(*As[f], j, ws.fm_a.data(), ws);
      fourier_row_plan(*Bs[f], j, ws.fm_c.data(), ws);
      cplx* s = out[f].data();
      for (int m = 0; m < nm; ++m) {
        const cplx im(0.0, static_cast<double>(m));
        cplx cp, ch;
        if (!curl) {
          cp = im * ws.fm_a[m] * wj;
          ch = -ws.fm_c[m] * wj;
        } else {
          cp = im * ws.fm_c[m] * wj;
          ch = ws.fm_a[m] * wj;
        }
        const double* pm = P + static_cast<std::size_t>(m) * kmax_;
        const double* hm = H + static_cast<std::size_t>(m) * kmax_;
        cplx* sm = s + static_cast<std::size_t>(m) * kmax_;
        for (int k = 0; k < kmax_; ++k) sm[k] += cp * pm[k] + ch * hm[k];
      }
    }
  }
}

void SpectralTransform::engine_uv(const LatPairing& lp,
                                  const std::vector<const SpectralField*>& psis,
                                  const std::vector<const SpectralField*>& chis,
                                  const std::vector<Field2Dd*>& Us,
                                  const std::vector<Field2Dd*>& Vs,
                                  SpectralWorkspace& ws) const {
  const int nm = mmax_ + 1;
  const int nf = static_cast<int>(psis.size());
  const double inv_a = 1.0 / earth_radius;
  ws.fm_a.resize(nm);  // u southern
  ws.fm_b.resize(nm);  // u northern
  ws.fm_c.resize(nm);  // v southern
  ws.fm_d.resize(nm);  // v northern
  for (const auto& pr : lp.pairs) {
    const int js = pr[0], jn = pr[1];
    const double* P = table_.p_row(js);
    const double* H = table_.h_row(js);
    for (int f = 0; f < nf; ++f) {
      const cplx* psi = psis[f]->data();
      const cplx* chi = chis[f]->data();
      for (int m = 0; m < nm; ++m) {
        const cplx im(0.0, static_cast<double>(m));
        const double* pm = P + static_cast<std::size_t>(m) * kmax_;
        const double* hm = H + static_cast<std::size_t>(m) * kmax_;
        const cplx* psm = psi + static_cast<std::size_t>(m) * kmax_;
        const cplx* csm = chi + static_cast<std::size_t>(m) * kmax_;
        // u = sum_k (i m chi_k) P_k - psi_k H_k;
        // v = sum_k (i m psi_k) P_k + chi_k H_k.
        // Split each of the four products by k parity; the northern row
        // flips the odd-parity P sums and the even-parity H sums.
        cplx Ae(0.0, 0.0), Ao(0.0, 0.0);  // (i m chi) P
        cplx Be(0.0, 0.0), Bo(0.0, 0.0);  // psi H
        cplx Ce(0.0, 0.0), Co(0.0, 0.0);  // (i m psi) P
        cplx De(0.0, 0.0), Do(0.0, 0.0);  // chi H
        int k = 0;
        for (; k + 1 < kmax_; k += 2) {
          Ae += csm[k] * pm[k];
          Be += psm[k] * hm[k];
          Ce += psm[k] * pm[k];
          De += csm[k] * hm[k];
          Ao += csm[k + 1] * pm[k + 1];
          Bo += psm[k + 1] * hm[k + 1];
          Co += psm[k + 1] * pm[k + 1];
          Do += csm[k + 1] * hm[k + 1];
        }
        if (k < kmax_) {
          Ae += csm[k] * pm[k];
          Be += psm[k] * hm[k];
          Ce += psm[k] * pm[k];
          De += csm[k] * hm[k];
        }
        Ae *= im;
        Ao *= im;
        Ce *= im;
        Co *= im;
        ws.fm_a[m] = inv_a * (Ae + Ao - Be - Bo);
        ws.fm_b[m] = inv_a * (Ae - Ao + Be - Bo);
        ws.fm_c[m] = inv_a * (Ce + Co + De + Do);
        ws.fm_d[m] = inv_a * (Ce - Co - De + Do);
      }
      inv_fourier_row_plan(ws.fm_a.data(), *Us[f], js, ws);
      inv_fourier_row_plan(ws.fm_b.data(), *Us[f], jn, ws);
      inv_fourier_row_plan(ws.fm_c.data(), *Vs[f], js, ws);
      inv_fourier_row_plan(ws.fm_d.data(), *Vs[f], jn, ws);
    }
  }
  for (const int j : lp.singles) {
    const double* P = table_.p_row(j);
    const double* H = table_.h_row(j);
    for (int f = 0; f < nf; ++f) {
      const cplx* psi = psis[f]->data();
      const cplx* chi = chis[f]->data();
      for (int m = 0; m < nm; ++m) {
        const cplx im(0.0, static_cast<double>(m));
        const double* pm = P + static_cast<std::size_t>(m) * kmax_;
        const double* hm = H + static_cast<std::size_t>(m) * kmax_;
        const cplx* psm = psi + static_cast<std::size_t>(m) * kmax_;
        const cplx* csm = chi + static_cast<std::size_t>(m) * kmax_;
        cplx u(0.0, 0.0), v(0.0, 0.0);
        for (int k = 0; k < kmax_; ++k) {
          u += im * csm[k] * pm[k] - psm[k] * hm[k];
          v += im * psm[k] * pm[k] + csm[k] * hm[k];
        }
        ws.fm_a[m] = u * inv_a;
        ws.fm_c[m] = v * inv_a;
      }
      inv_fourier_row_plan(ws.fm_a.data(), *Us[f], j, ws);
      inv_fourier_row_plan(ws.fm_c.data(), *Vs[f], j, ws);
    }
  }
}

// ---------------------------------------------------------------------------
// Serial entry points

SpectralField SpectralTransform::analyze(const Field2Dd& f) const {
  SpectralWorkspace ws;
  return analyze(f, ws);
}

SpectralField SpectralTransform::analyze(const Field2Dd& f,
                                         SpectralWorkspace& ws) const {
  FOAM_REQUIRE(f.nx() == grid_.nlon() && f.ny() == grid_.nlat(),
               "field shape " << f.nx() << "x" << f.ny());
  SpectralField s(mmax_, kmax_);
  if (mode_ == SpectralMode::kEngine) {
    std::vector<SpectralField> out(1);
    out[0] = std::move(s);
    engine_analyze(pairing_, {&f}, out, ws);
    return std::move(out[0]);
  }
  std::vector<cplx> fm;
  for (int j = 0; j < grid_.nlat(); ++j) {
    fourier_row(f, j, fm);
    const double wj = 0.5 * grid_.gauss_weight(j);
    for (int m = 0; m <= mmax_; ++m) {
      const cplx wfm = wj * fm[m];
      for (int k = 0; k < kmax_; ++k) s.at(m, k) += wfm * table_.p(m, k, j);
    }
  }
  return s;
}

Field2Dd SpectralTransform::synthesize(const SpectralField& s) const {
  SpectralWorkspace ws;
  return synthesize(s, ws);
}

Field2Dd SpectralTransform::synthesize(const SpectralField& s,
                                       SpectralWorkspace& ws) const {
  FOAM_REQUIRE(s.mmax() == mmax_ && s.kmax() == kmax_, "truncation mismatch");
  Field2Dd f(grid_.nlon(), grid_.nlat());
  if (mode_ == SpectralMode::kEngine) {
    engine_synthesize(pairing_, {&s}, {&f}, ws);
    return f;
  }
  std::vector<cplx> fm(mmax_ + 1);
  for (int j = 0; j < grid_.nlat(); ++j) {
    for (int m = 0; m <= mmax_; ++m) {
      cplx acc(0.0, 0.0);
      for (int k = 0; k < kmax_; ++k) acc += s.at(m, k) * table_.p(m, k, j);
      fm[m] = acc;
    }
    inv_fourier_row(fm, f, j);
  }
  return f;
}

SpectralField SpectralTransform::analyze_div(const Field2Dd& A,
                                             const Field2Dd& B) const {
  if (mode_ == SpectralMode::kEngine) {
    SpectralWorkspace ws;
    std::vector<SpectralField> out(1);
    out[0] = SpectralField(mmax_, kmax_);
    engine_analyze_vec(pairing_, /*curl=*/false, {&A}, {&B}, out, ws);
    return std::move(out[0]);
  }
  SpectralField s(mmax_, kmax_);
  std::vector<cplx> am, bm;
  for (int j = 0; j < grid_.nlat(); ++j) {
    fourier_row(A, j, am);
    fourier_row(B, j, bm);
    const double mu = grid_.mu(j);
    const double one_minus_mu2 = 1.0 - mu * mu;
    const double wj =
        0.5 * grid_.gauss_weight(j) / (earth_radius * one_minus_mu2);
    for (int m = 0; m <= mmax_; ++m) {
      const cplx ia = cplx(0.0, static_cast<double>(m)) * am[m] * wj;
      const cplx b = bm[m] * wj;
      for (int k = 0; k < kmax_; ++k) {
        s.at(m, k) += ia * table_.p(m, k, j) - b * table_.h(m, k, j);
      }
    }
  }
  return s;
}

SpectralField SpectralTransform::analyze_curl(const Field2Dd& A,
                                              const Field2Dd& B) const {
  if (mode_ == SpectralMode::kEngine) {
    SpectralWorkspace ws;
    std::vector<SpectralField> out(1);
    out[0] = SpectralField(mmax_, kmax_);
    engine_analyze_vec(pairing_, /*curl=*/true, {&A}, {&B}, out, ws);
    return std::move(out[0]);
  }
  SpectralField s(mmax_, kmax_);
  std::vector<cplx> am, bm;
  for (int j = 0; j < grid_.nlat(); ++j) {
    fourier_row(A, j, am);
    fourier_row(B, j, bm);
    const double mu = grid_.mu(j);
    const double one_minus_mu2 = 1.0 - mu * mu;
    const double wj =
        0.5 * grid_.gauss_weight(j) / (earth_radius * one_minus_mu2);
    for (int m = 0; m <= mmax_; ++m) {
      const cplx ib = cplx(0.0, static_cast<double>(m)) * bm[m] * wj;
      const cplx a = am[m] * wj;
      for (int k = 0; k < kmax_; ++k) {
        s.at(m, k) += ib * table_.p(m, k, j) + a * table_.h(m, k, j);
      }
    }
  }
  return s;
}

void SpectralTransform::uv_from_psi_chi(const SpectralField& psi,
                                        const SpectralField& chi,
                                        Field2Dd& U, Field2Dd& V) const {
  FOAM_REQUIRE(psi.mmax() == mmax_ && chi.mmax() == mmax_,
               "truncation mismatch");
  if (U.nx() != grid_.nlon() || U.ny() != grid_.nlat())
    U = Field2Dd(grid_.nlon(), grid_.nlat());
  if (V.nx() != grid_.nlon() || V.ny() != grid_.nlat())
    V = Field2Dd(grid_.nlon(), grid_.nlat());
  if (mode_ == SpectralMode::kEngine) {
    SpectralWorkspace ws;
    engine_uv(pairing_, {&psi}, {&chi}, {&U}, {&V}, ws);
    return;
  }
  std::vector<cplx> um(mmax_ + 1), vm(mmax_ + 1);
  const double inv_a = 1.0 / earth_radius;
  for (int j = 0; j < grid_.nlat(); ++j) {
    for (int m = 0; m <= mmax_; ++m) {
      const cplx im(0.0, static_cast<double>(m));
      cplx u(0.0, 0.0), v(0.0, 0.0);
      for (int k = 0; k < kmax_; ++k) {
        const double p = table_.p(m, k, j);
        const double h = table_.h(m, k, j);
        u += im * chi.at(m, k) * p - psi.at(m, k) * h;
        v += im * psi.at(m, k) * p + chi.at(m, k) * h;
      }
      um[m] = u * inv_a;
      vm[m] = v * inv_a;
    }
    inv_fourier_row(um, U, j);
    inv_fourier_row(vm, V, j);
  }
}

// ---------------------------------------------------------------------------
// Serial batched entry points

std::vector<SpectralField> SpectralTransform::analyze_batch(
    const std::vector<const Field2Dd*>& fs, SpectralWorkspace& ws) const {
  FOAM_TRACE_SCOPE("spectral.analyze_batch");
  note_batch(mode_ == SpectralMode::kEngine, fs.size(),
             static_cast<std::size_t>(grid_.nlat()));
  std::vector<SpectralField> out(fs.size());
  for (auto& s : out) s = SpectralField(mmax_, kmax_);
  if (mode_ == SpectralMode::kEngine) {
    engine_analyze(pairing_, fs, out, ws);
  } else {
    for (std::size_t f = 0; f < fs.size(); ++f) out[f] = analyze(*fs[f]);
  }
  return out;
}

void SpectralTransform::synthesize_batch(
    const std::vector<const SpectralField*>& ss,
    const std::vector<Field2Dd*>& outs, SpectralWorkspace& ws) const {
  FOAM_REQUIRE(ss.size() == outs.size(), "batch size mismatch");
  FOAM_TRACE_SCOPE("spectral.synthesize_batch");
  note_batch(mode_ == SpectralMode::kEngine, ss.size(),
             static_cast<std::size_t>(grid_.nlat()));
  for (auto* g : outs) {
    if (g->nx() != grid_.nlon() || g->ny() != grid_.nlat())
      *g = Field2Dd(grid_.nlon(), grid_.nlat());
  }
  if (mode_ == SpectralMode::kEngine) {
    engine_synthesize(pairing_, ss, outs, ws);
  } else {
    for (std::size_t f = 0; f < ss.size(); ++f) *outs[f] = synthesize(*ss[f]);
  }
}

std::vector<SpectralField> SpectralTransform::analyze_div_batch(
    const std::vector<const Field2Dd*>& As,
    const std::vector<const Field2Dd*>& Bs, SpectralWorkspace& ws) const {
  FOAM_REQUIRE(As.size() == Bs.size(), "batch size mismatch");
  FOAM_TRACE_SCOPE("spectral.analyze_div_batch");
  note_batch(mode_ == SpectralMode::kEngine, As.size(),
             static_cast<std::size_t>(grid_.nlat()));
  std::vector<SpectralField> out(As.size());
  for (auto& s : out) s = SpectralField(mmax_, kmax_);
  if (mode_ == SpectralMode::kEngine) {
    engine_analyze_vec(pairing_, /*curl=*/false, As, Bs, out, ws);
  } else {
    for (std::size_t f = 0; f < As.size(); ++f)
      out[f] = analyze_div(*As[f], *Bs[f]);
  }
  return out;
}

std::vector<SpectralField> SpectralTransform::analyze_curl_batch(
    const std::vector<const Field2Dd*>& As,
    const std::vector<const Field2Dd*>& Bs, SpectralWorkspace& ws) const {
  FOAM_REQUIRE(As.size() == Bs.size(), "batch size mismatch");
  FOAM_TRACE_SCOPE("spectral.analyze_curl_batch");
  note_batch(mode_ == SpectralMode::kEngine, As.size(),
             static_cast<std::size_t>(grid_.nlat()));
  std::vector<SpectralField> out(As.size());
  for (auto& s : out) s = SpectralField(mmax_, kmax_);
  if (mode_ == SpectralMode::kEngine) {
    engine_analyze_vec(pairing_, /*curl=*/true, As, Bs, out, ws);
  } else {
    for (std::size_t f = 0; f < As.size(); ++f)
      out[f] = analyze_curl(*As[f], *Bs[f]);
  }
  return out;
}

void SpectralTransform::uv_from_psi_chi_batch(
    const std::vector<const SpectralField*>& psis,
    const std::vector<const SpectralField*>& chis,
    const std::vector<Field2Dd*>& Us, const std::vector<Field2Dd*>& Vs,
    SpectralWorkspace& ws) const {
  FOAM_REQUIRE(psis.size() == chis.size() && psis.size() == Us.size() &&
                   psis.size() == Vs.size(),
               "batch size mismatch");
  FOAM_TRACE_SCOPE("spectral.uv_batch");
  note_batch(mode_ == SpectralMode::kEngine, psis.size(),
             static_cast<std::size_t>(grid_.nlat()));
  for (std::size_t f = 0; f < Us.size(); ++f) {
    if (Us[f]->nx() != grid_.nlon() || Us[f]->ny() != grid_.nlat())
      *Us[f] = Field2Dd(grid_.nlon(), grid_.nlat());
    if (Vs[f]->nx() != grid_.nlon() || Vs[f]->ny() != grid_.nlat())
      *Vs[f] = Field2Dd(grid_.nlon(), grid_.nlat());
  }
  if (mode_ == SpectralMode::kEngine) {
    engine_uv(pairing_, psis, chis, Us, Vs, ws);
  } else {
    for (std::size_t f = 0; f < psis.size(); ++f)
      uv_from_psi_chi(*psis[f], *chis[f], *Us[f], *Vs[f]);
  }
}

double SpectralTransform::laplacian_eigenvalue(int n) const {
  return -static_cast<double>(n) * (n + 1) / (earth_radius * earth_radius);
}

void SpectralTransform::laplacian(SpectralField& s) const {
  for (int m = 0; m <= mmax_; ++m)
    for (int k = 0; k < kmax_; ++k) s.at(m, k) *= laplacian_eigenvalue(m + k);
}

void SpectralTransform::inverse_laplacian(SpectralField& s) const {
  for (int m = 0; m <= mmax_; ++m) {
    for (int k = 0; k < kmax_; ++k) {
      const int n = m + k;
      if (n == 0) {
        s.at(m, k) = cplx(0.0, 0.0);
      } else {
        s.at(m, k) /= laplacian_eigenvalue(n);
      }
    }
  }
}

SpectralField SpectralTransform::d_dlon(const SpectralField& s) const {
  SpectralField out(s);
  for (int m = 0; m <= mmax_; ++m) {
    const cplx im(0.0, static_cast<double>(m));
    for (int k = 0; k < kmax_; ++k) out.at(m, k) = im * s.at(m, k);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Distributed (latitude-band) transform

ParSpectralTransform::ParSpectralTransform(const SpectralTransform& serial,
                                           std::vector<int> my_lats)
    : serial_(serial), my_lats_(std::move(my_lats)) {
  for (const int j : my_lats_)
    FOAM_REQUIRE(j >= 0 && j < serial_.grid().nlat(), "latitude " << j);
  pairing_ = SpectralTransform::make_pairing(serial_.grid(), my_lats_);
}

void ParSpectralTransform::allreduce_spectral(par::Comm& comm,
                                              SpectralField& s) const {
  FOAM_TRACE_SCOPE("spectral.allreduce");
  // Reduce directly over the coefficient storage viewed as doubles — the
  // rank-ordered reduction writes into the same span, no staging copies.
  const std::size_t n = s.size() * 2;  // complex -> 2 doubles
  double* raw = reinterpret_cast<double*>(s.data());
  comm.allreduce(std::span<const double>(raw, n), std::span<double>(raw, n),
                 par::ReduceOp::kSum);
}

void ParSpectralTransform::allreduce_fused(
    par::Comm& comm, std::vector<SpectralField>& fields) const {
  if (fields.empty()) return;
  FOAM_TRACE_SCOPE("spectral.allreduce");
  const std::size_t per = fields[0].size() * 2;
  ws_.reduce.resize(per * fields.size());
  for (std::size_t f = 0; f < fields.size(); ++f) {
    const double* raw = reinterpret_cast<const double*>(fields[f].data());
    std::copy(raw, raw + per, ws_.reduce.begin() + f * per);
  }
  comm.allreduce(
      std::span<const double>(ws_.reduce.data(), ws_.reduce.size()),
      std::span<double>(ws_.reduce.data(), ws_.reduce.size()),
      par::ReduceOp::kSum);
  for (std::size_t f = 0; f < fields.size(); ++f) {
    double* raw = reinterpret_cast<double*>(fields[f].data());
    std::copy(ws_.reduce.begin() + f * per,
              ws_.reduce.begin() + (f + 1) * per, raw);
  }
}

SpectralField ParSpectralTransform::analyze(par::Comm& comm,
                                            const Field2Dd& f) const {
  SpectralField s(serial_.mmax(), serial_.kmax());
  if (serial_.mode() == SpectralMode::kEngine) {
    std::vector<SpectralField> out(1);
    out[0] = std::move(s);
    serial_.engine_analyze(pairing_, {&f}, out, ws_);
    allreduce_spectral(comm, out[0]);
    return std::move(out[0]);
  }
  std::vector<cplx> fm;
  for (const int j : my_lats_) {
    serial_.fourier_row(f, j, fm);
    const double wj = 0.5 * serial_.grid().gauss_weight(j);
    for (int m = 0; m <= serial_.mmax(); ++m) {
      const cplx wfm = wj * fm[m];
      for (int k = 0; k < serial_.kmax(); ++k)
        s.at(m, k) += wfm * serial_.table_.p(m, k, j);
    }
  }
  allreduce_spectral(comm, s);
  return s;
}

void ParSpectralTransform::synthesize(const SpectralField& s,
                                      Field2Dd& f) const {
  if (serial_.mode() == SpectralMode::kEngine) {
    serial_.engine_synthesize(pairing_, {&s}, {&f}, ws_);
    return;
  }
  std::vector<cplx> fm(serial_.mmax() + 1);
  for (const int j : my_lats_) {
    for (int m = 0; m <= serial_.mmax(); ++m) {
      cplx acc(0.0, 0.0);
      for (int k = 0; k < serial_.kmax(); ++k)
        acc += s.at(m, k) * serial_.table_.p(m, k, j);
      fm[m] = acc;
    }
    serial_.inv_fourier_row(fm, f, j);
  }
}

SpectralField ParSpectralTransform::analyze_div(par::Comm& comm,
                                                const Field2Dd& A,
                                                const Field2Dd& B) const {
  SpectralField s(serial_.mmax(), serial_.kmax());
  if (serial_.mode() == SpectralMode::kEngine) {
    std::vector<SpectralField> out(1);
    out[0] = std::move(s);
    serial_.engine_analyze_vec(pairing_, /*curl=*/false, {&A}, {&B}, out,
                               ws_);
    allreduce_spectral(comm, out[0]);
    return std::move(out[0]);
  }
  std::vector<cplx> am, bm;
  for (const int j : my_lats_) {
    serial_.fourier_row(A, j, am);
    serial_.fourier_row(B, j, bm);
    const double mu = serial_.grid().mu(j);
    const double wj = 0.5 * serial_.grid().gauss_weight(j) /
                      (earth_radius * (1.0 - mu * mu));
    for (int m = 0; m <= serial_.mmax(); ++m) {
      const cplx ia = cplx(0.0, static_cast<double>(m)) * am[m] * wj;
      const cplx b = bm[m] * wj;
      for (int k = 0; k < serial_.kmax(); ++k)
        s.at(m, k) +=
            ia * serial_.table_.p(m, k, j) - b * serial_.table_.h(m, k, j);
    }
  }
  allreduce_spectral(comm, s);
  return s;
}

SpectralField ParSpectralTransform::analyze_curl(par::Comm& comm,
                                                 const Field2Dd& A,
                                                 const Field2Dd& B) const {
  SpectralField s(serial_.mmax(), serial_.kmax());
  if (serial_.mode() == SpectralMode::kEngine) {
    std::vector<SpectralField> out(1);
    out[0] = std::move(s);
    serial_.engine_analyze_vec(pairing_, /*curl=*/true, {&A}, {&B}, out, ws_);
    allreduce_spectral(comm, out[0]);
    return std::move(out[0]);
  }
  std::vector<cplx> am, bm;
  for (const int j : my_lats_) {
    serial_.fourier_row(A, j, am);
    serial_.fourier_row(B, j, bm);
    const double mu = serial_.grid().mu(j);
    const double wj = 0.5 * serial_.grid().gauss_weight(j) /
                      (earth_radius * (1.0 - mu * mu));
    for (int m = 0; m <= serial_.mmax(); ++m) {
      const cplx ib = cplx(0.0, static_cast<double>(m)) * bm[m] * wj;
      const cplx a = am[m] * wj;
      for (int k = 0; k < serial_.kmax(); ++k)
        s.at(m, k) +=
            ib * serial_.table_.p(m, k, j) + a * serial_.table_.h(m, k, j);
    }
  }
  allreduce_spectral(comm, s);
  return s;
}

void ParSpectralTransform::uv_from_psi_chi(const SpectralField& psi,
                                           const SpectralField& chi,
                                           Field2Dd& U, Field2Dd& V) const {
  if (serial_.mode() == SpectralMode::kEngine) {
    serial_.engine_uv(pairing_, {&psi}, {&chi}, {&U}, {&V}, ws_);
    return;
  }
  std::vector<cplx> um(serial_.mmax() + 1), vm(serial_.mmax() + 1);
  const double inv_a = 1.0 / earth_radius;
  for (const int j : my_lats_) {
    for (int m = 0; m <= serial_.mmax(); ++m) {
      const cplx im(0.0, static_cast<double>(m));
      cplx u(0.0, 0.0), v(0.0, 0.0);
      for (int k = 0; k < serial_.kmax(); ++k) {
        const double p = serial_.table_.p(m, k, j);
        const double h = serial_.table_.h(m, k, j);
        u += im * chi.at(m, k) * p - psi.at(m, k) * h;
        v += im * psi.at(m, k) * p + chi.at(m, k) * h;
      }
      um[m] = u * inv_a;
      vm[m] = v * inv_a;
    }
    serial_.inv_fourier_row(um, U, j);
    serial_.inv_fourier_row(vm, V, j);
  }
}

// ---------------------------------------------------------------------------
// Distributed batched entry points

std::vector<SpectralField> ParSpectralTransform::analyze_batch(
    par::Comm& comm, const std::vector<const Field2Dd*>& fs) const {
  FOAM_TRACE_SCOPE("spectral.analyze_batch");
  note_batch(serial_.mode() == SpectralMode::kEngine, fs.size(),
             my_lats_.size());
  std::vector<SpectralField> out(fs.size());
  for (auto& s : out) s = SpectralField(serial_.mmax(), serial_.kmax());
  if (serial_.mode() == SpectralMode::kEngine) {
    serial_.engine_analyze(pairing_, fs, out, ws_);
    allreduce_fused(comm, out);
  } else {
    for (std::size_t f = 0; f < fs.size(); ++f) out[f] = analyze(comm, *fs[f]);
  }
  return out;
}

void ParSpectralTransform::synthesize_batch(
    const std::vector<const SpectralField*>& ss,
    const std::vector<Field2Dd*>& outs) const {
  FOAM_REQUIRE(ss.size() == outs.size(), "batch size mismatch");
  FOAM_TRACE_SCOPE("spectral.synthesize_batch");
  note_batch(serial_.mode() == SpectralMode::kEngine, ss.size(),
             my_lats_.size());
  if (serial_.mode() == SpectralMode::kEngine) {
    serial_.engine_synthesize(pairing_, ss, outs, ws_);
  } else {
    for (std::size_t f = 0; f < ss.size(); ++f) synthesize(*ss[f], *outs[f]);
  }
}

std::vector<SpectralField> ParSpectralTransform::analyze_div_batch(
    par::Comm& comm, const std::vector<const Field2Dd*>& As,
    const std::vector<const Field2Dd*>& Bs) const {
  FOAM_REQUIRE(As.size() == Bs.size(), "batch size mismatch");
  FOAM_TRACE_SCOPE("spectral.analyze_div_batch");
  note_batch(serial_.mode() == SpectralMode::kEngine, As.size(),
             my_lats_.size());
  std::vector<SpectralField> out(As.size());
  for (auto& s : out) s = SpectralField(serial_.mmax(), serial_.kmax());
  if (serial_.mode() == SpectralMode::kEngine) {
    serial_.engine_analyze_vec(pairing_, /*curl=*/false, As, Bs, out, ws_);
    allreduce_fused(comm, out);
  } else {
    for (std::size_t f = 0; f < As.size(); ++f)
      out[f] = analyze_div(comm, *As[f], *Bs[f]);
  }
  return out;
}

std::vector<SpectralField> ParSpectralTransform::analyze_curl_batch(
    par::Comm& comm, const std::vector<const Field2Dd*>& As,
    const std::vector<const Field2Dd*>& Bs) const {
  FOAM_REQUIRE(As.size() == Bs.size(), "batch size mismatch");
  FOAM_TRACE_SCOPE("spectral.analyze_curl_batch");
  note_batch(serial_.mode() == SpectralMode::kEngine, As.size(),
             my_lats_.size());
  std::vector<SpectralField> out(As.size());
  for (auto& s : out) s = SpectralField(serial_.mmax(), serial_.kmax());
  if (serial_.mode() == SpectralMode::kEngine) {
    serial_.engine_analyze_vec(pairing_, /*curl=*/true, As, Bs, out, ws_);
    allreduce_fused(comm, out);
  } else {
    for (std::size_t f = 0; f < As.size(); ++f)
      out[f] = analyze_curl(comm, *As[f], *Bs[f]);
  }
  return out;
}

void ParSpectralTransform::uv_from_psi_chi_batch(
    const std::vector<const SpectralField*>& psis,
    const std::vector<const SpectralField*>& chis,
    const std::vector<Field2Dd*>& Us, const std::vector<Field2Dd*>& Vs) const {
  FOAM_REQUIRE(psis.size() == chis.size() && psis.size() == Us.size() &&
                   psis.size() == Vs.size(),
               "batch size mismatch");
  FOAM_TRACE_SCOPE("spectral.uv_batch");
  note_batch(serial_.mode() == SpectralMode::kEngine, psis.size(),
             my_lats_.size());
  if (serial_.mode() == SpectralMode::kEngine) {
    serial_.engine_uv(pairing_, psis, chis, Us, Vs, ws_);
  } else {
    for (std::size_t f = 0; f < psis.size(); ++f)
      uv_from_psi_chi(*psis[f], *chis[f], *Us[f], *Vs[f]);
  }
}

}  // namespace foam::numerics
