#include "numerics/spectral.hpp"

#include <cmath>

#include "base/constants.hpp"

namespace foam::numerics {

using cplx = std::complex<double>;
using constants::earth_radius;

SpectralField& SpectralField::operator+=(const SpectralField& o) {
  FOAM_REQUIRE(same_shape(o), "spectral shape mismatch");
  for (std::size_t i = 0; i < c_.size(); ++i) c_[i] += o.c_[i];
  return *this;
}

SpectralField& SpectralField::operator-=(const SpectralField& o) {
  FOAM_REQUIRE(same_shape(o), "spectral shape mismatch");
  for (std::size_t i = 0; i < c_.size(); ++i) c_[i] -= o.c_[i];
  return *this;
}

SpectralField& SpectralField::operator*=(double s) {
  for (auto& v : c_) v *= s;
  return *this;
}

void SpectralField::axpy(double a, const SpectralField& o) {
  FOAM_REQUIRE(same_shape(o), "spectral shape mismatch");
  for (std::size_t i = 0; i < c_.size(); ++i) c_[i] += a * o.c_[i];
}

double SpectralField::power() const {
  double sum = 0.0;
  for (int m = 0; m <= mmax_; ++m) {
    const double fac = (m == 0) ? 1.0 : 2.0;
    for (int k = 0; k < kmax_; ++k) sum += fac * std::norm(at(m, k));
  }
  return sum;
}

SpectralTransform::SpectralTransform(const GaussianGrid& grid, int mmax)
    : grid_(grid),
      mmax_(mmax),
      kmax_(mmax + 1),
      fft_(grid.nlon()),
      table_(mmax, /*kmax=*/mmax + 1, grid.mus()) {
  FOAM_REQUIRE(mmax >= 1, "mmax=" << mmax);
  // Alias-free quadratic products need nlon >= 3*mmax + 1 and
  // nlat >= (3*mmax + 1)/2 for rhomboidal truncation.
  FOAM_REQUIRE(grid.nlon() >= 3 * mmax + 1,
               "nlon=" << grid.nlon() << " too small for R" << mmax);
  FOAM_REQUIRE(grid.nlat() >= (3 * mmax + 1) / 2,
               "nlat=" << grid.nlat() << " too small for R" << mmax);
}

void SpectralTransform::fourier_row(const Field2Dd& f, int j,
                                    std::vector<cplx>& fm) const {
  const int nlon = grid_.nlon();
  std::vector<double> row(nlon);
  for (int i = 0; i < nlon; ++i) row[i] = f(i, j);
  std::vector<cplx> spec = fft_.forward_real(row);
  fm.resize(mmax_ + 1);
  const double inv_n = 1.0 / nlon;
  for (int m = 0; m <= mmax_; ++m) fm[m] = spec[m] * inv_n;
}

void SpectralTransform::inv_fourier_row(const std::vector<cplx>& fm,
                                        Field2Dd& f, int j) const {
  const int nlon = grid_.nlon();
  std::vector<cplx> spec(nlon / 2 + 1, cplx(0.0, 0.0));
  for (int m = 0; m <= mmax_; ++m)
    spec[m] = fm[m] * static_cast<double>(nlon);
  std::vector<double> row = fft_.inverse_real(spec);
  for (int i = 0; i < nlon; ++i) f(i, j) = row[i];
}

SpectralField SpectralTransform::analyze(const Field2Dd& f) const {
  FOAM_REQUIRE(f.nx() == grid_.nlon() && f.ny() == grid_.nlat(),
               "field shape " << f.nx() << "x" << f.ny());
  SpectralField s(mmax_, kmax_);
  std::vector<cplx> fm;
  for (int j = 0; j < grid_.nlat(); ++j) {
    fourier_row(f, j, fm);
    const double wj = 0.5 * grid_.gauss_weight(j);
    for (int m = 0; m <= mmax_; ++m) {
      const cplx wfm = wj * fm[m];
      for (int k = 0; k < kmax_; ++k) s.at(m, k) += wfm * table_.p(m, k, j);
    }
  }
  return s;
}

Field2Dd SpectralTransform::synthesize(const SpectralField& s) const {
  FOAM_REQUIRE(s.mmax() == mmax_ && s.kmax() == kmax_, "truncation mismatch");
  Field2Dd f(grid_.nlon(), grid_.nlat());
  std::vector<cplx> fm(mmax_ + 1);
  for (int j = 0; j < grid_.nlat(); ++j) {
    for (int m = 0; m <= mmax_; ++m) {
      cplx acc(0.0, 0.0);
      for (int k = 0; k < kmax_; ++k) acc += s.at(m, k) * table_.p(m, k, j);
      fm[m] = acc;
    }
    inv_fourier_row(fm, f, j);
  }
  return f;
}

SpectralField SpectralTransform::analyze_div(const Field2Dd& A,
                                             const Field2Dd& B) const {
  SpectralField s(mmax_, kmax_);
  std::vector<cplx> am, bm;
  for (int j = 0; j < grid_.nlat(); ++j) {
    fourier_row(A, j, am);
    fourier_row(B, j, bm);
    const double mu = grid_.mu(j);
    const double one_minus_mu2 = 1.0 - mu * mu;
    const double wj =
        0.5 * grid_.gauss_weight(j) / (earth_radius * one_minus_mu2);
    for (int m = 0; m <= mmax_; ++m) {
      const cplx ia = cplx(0.0, static_cast<double>(m)) * am[m] * wj;
      const cplx b = bm[m] * wj;
      for (int k = 0; k < kmax_; ++k) {
        s.at(m, k) += ia * table_.p(m, k, j) - b * table_.h(m, k, j);
      }
    }
  }
  return s;
}

SpectralField SpectralTransform::analyze_curl(const Field2Dd& A,
                                              const Field2Dd& B) const {
  SpectralField s(mmax_, kmax_);
  std::vector<cplx> am, bm;
  for (int j = 0; j < grid_.nlat(); ++j) {
    fourier_row(A, j, am);
    fourier_row(B, j, bm);
    const double mu = grid_.mu(j);
    const double one_minus_mu2 = 1.0 - mu * mu;
    const double wj =
        0.5 * grid_.gauss_weight(j) / (earth_radius * one_minus_mu2);
    for (int m = 0; m <= mmax_; ++m) {
      const cplx ib = cplx(0.0, static_cast<double>(m)) * bm[m] * wj;
      const cplx a = am[m] * wj;
      for (int k = 0; k < kmax_; ++k) {
        s.at(m, k) += ib * table_.p(m, k, j) + a * table_.h(m, k, j);
      }
    }
  }
  return s;
}

void SpectralTransform::uv_from_psi_chi(const SpectralField& psi,
                                        const SpectralField& chi,
                                        Field2Dd& U, Field2Dd& V) const {
  FOAM_REQUIRE(psi.mmax() == mmax_ && chi.mmax() == mmax_,
               "truncation mismatch");
  if (U.nx() != grid_.nlon() || U.ny() != grid_.nlat())
    U = Field2Dd(grid_.nlon(), grid_.nlat());
  if (V.nx() != grid_.nlon() || V.ny() != grid_.nlat())
    V = Field2Dd(grid_.nlon(), grid_.nlat());
  std::vector<cplx> um(mmax_ + 1), vm(mmax_ + 1);
  const double inv_a = 1.0 / earth_radius;
  for (int j = 0; j < grid_.nlat(); ++j) {
    for (int m = 0; m <= mmax_; ++m) {
      const cplx im(0.0, static_cast<double>(m));
      cplx u(0.0, 0.0), v(0.0, 0.0);
      for (int k = 0; k < kmax_; ++k) {
        const double p = table_.p(m, k, j);
        const double h = table_.h(m, k, j);
        u += im * chi.at(m, k) * p - psi.at(m, k) * h;
        v += im * psi.at(m, k) * p + chi.at(m, k) * h;
      }
      um[m] = u * inv_a;
      vm[m] = v * inv_a;
    }
    inv_fourier_row(um, U, j);
    inv_fourier_row(vm, V, j);
  }
}

double SpectralTransform::laplacian_eigenvalue(int n) const {
  return -static_cast<double>(n) * (n + 1) / (earth_radius * earth_radius);
}

void SpectralTransform::laplacian(SpectralField& s) const {
  for (int m = 0; m <= mmax_; ++m)
    for (int k = 0; k < kmax_; ++k) s.at(m, k) *= laplacian_eigenvalue(m + k);
}

void SpectralTransform::inverse_laplacian(SpectralField& s) const {
  for (int m = 0; m <= mmax_; ++m) {
    for (int k = 0; k < kmax_; ++k) {
      const int n = m + k;
      if (n == 0) {
        s.at(m, k) = cplx(0.0, 0.0);
      } else {
        s.at(m, k) /= laplacian_eigenvalue(n);
      }
    }
  }
}

SpectralField SpectralTransform::d_dlon(const SpectralField& s) const {
  SpectralField out(s);
  for (int m = 0; m <= mmax_; ++m) {
    const cplx im(0.0, static_cast<double>(m));
    for (int k = 0; k < kmax_; ++k) out.at(m, k) = im * s.at(m, k);
  }
  return out;
}

ParSpectralTransform::ParSpectralTransform(const SpectralTransform& serial,
                                           std::vector<int> my_lats)
    : serial_(serial), my_lats_(std::move(my_lats)) {
  for (const int j : my_lats_)
    FOAM_REQUIRE(j >= 0 && j < serial_.grid().nlat(), "latitude " << j);
}

void ParSpectralTransform::allreduce_spectral(par::Comm& comm,
                                              SpectralField& s) const {
  const std::size_t n = s.size() * 2;  // complex -> 2 doubles
  std::vector<double> buf(n);
  const double* raw = reinterpret_cast<const double*>(s.data());
  std::copy(raw, raw + n, buf.begin());
  std::vector<double> out(n);
  comm.allreduce(std::span<const double>(buf), std::span<double>(out),
                 par::ReduceOp::kSum);
  double* dst = reinterpret_cast<double*>(s.data());
  std::copy(out.begin(), out.end(), dst);
}

SpectralField ParSpectralTransform::analyze(par::Comm& comm,
                                            const Field2Dd& f) const {
  SpectralField s(serial_.mmax(), serial_.kmax());
  std::vector<cplx> fm;
  for (const int j : my_lats_) {
    serial_.fourier_row(f, j, fm);
    const double wj = 0.5 * serial_.grid().gauss_weight(j);
    for (int m = 0; m <= serial_.mmax(); ++m) {
      const cplx wfm = wj * fm[m];
      for (int k = 0; k < serial_.kmax(); ++k)
        s.at(m, k) += wfm * serial_.table_.p(m, k, j);
    }
  }
  allreduce_spectral(comm, s);
  return s;
}

void ParSpectralTransform::synthesize(const SpectralField& s,
                                      Field2Dd& f) const {
  std::vector<cplx> fm(serial_.mmax() + 1);
  for (const int j : my_lats_) {
    for (int m = 0; m <= serial_.mmax(); ++m) {
      cplx acc(0.0, 0.0);
      for (int k = 0; k < serial_.kmax(); ++k)
        acc += s.at(m, k) * serial_.table_.p(m, k, j);
      fm[m] = acc;
    }
    serial_.inv_fourier_row(fm, f, j);
  }
}

SpectralField ParSpectralTransform::analyze_div(par::Comm& comm,
                                                const Field2Dd& A,
                                                const Field2Dd& B) const {
  SpectralField s(serial_.mmax(), serial_.kmax());
  std::vector<cplx> am, bm;
  for (const int j : my_lats_) {
    serial_.fourier_row(A, j, am);
    serial_.fourier_row(B, j, bm);
    const double mu = serial_.grid().mu(j);
    const double wj = 0.5 * serial_.grid().gauss_weight(j) /
                      (earth_radius * (1.0 - mu * mu));
    for (int m = 0; m <= serial_.mmax(); ++m) {
      const cplx ia = cplx(0.0, static_cast<double>(m)) * am[m] * wj;
      const cplx b = bm[m] * wj;
      for (int k = 0; k < serial_.kmax(); ++k)
        s.at(m, k) +=
            ia * serial_.table_.p(m, k, j) - b * serial_.table_.h(m, k, j);
    }
  }
  allreduce_spectral(comm, s);
  return s;
}

SpectralField ParSpectralTransform::analyze_curl(par::Comm& comm,
                                                 const Field2Dd& A,
                                                 const Field2Dd& B) const {
  SpectralField s(serial_.mmax(), serial_.kmax());
  std::vector<cplx> am, bm;
  for (const int j : my_lats_) {
    serial_.fourier_row(A, j, am);
    serial_.fourier_row(B, j, bm);
    const double mu = serial_.grid().mu(j);
    const double wj = 0.5 * serial_.grid().gauss_weight(j) /
                      (earth_radius * (1.0 - mu * mu));
    for (int m = 0; m <= serial_.mmax(); ++m) {
      const cplx ib = cplx(0.0, static_cast<double>(m)) * bm[m] * wj;
      const cplx a = am[m] * wj;
      for (int k = 0; k < serial_.kmax(); ++k)
        s.at(m, k) +=
            ib * serial_.table_.p(m, k, j) + a * serial_.table_.h(m, k, j);
    }
  }
  allreduce_spectral(comm, s);
  return s;
}

void ParSpectralTransform::uv_from_psi_chi(const SpectralField& psi,
                                           const SpectralField& chi,
                                           Field2Dd& U, Field2Dd& V) const {
  std::vector<cplx> um(serial_.mmax() + 1), vm(serial_.mmax() + 1);
  const double inv_a = 1.0 / earth_radius;
  for (const int j : my_lats_) {
    for (int m = 0; m <= serial_.mmax(); ++m) {
      const cplx im(0.0, static_cast<double>(m));
      cplx u(0.0, 0.0), v(0.0, 0.0);
      for (int k = 0; k < serial_.kmax(); ++k) {
        const double p = serial_.table_.p(m, k, j);
        const double h = serial_.table_.h(m, k, j);
        u += im * chi.at(m, k) * p - psi.at(m, k) * h;
        v += im * psi.at(m, k) * p + chi.at(m, k) * h;
      }
      um[m] = u * inv_a;
      vm[m] = v * inv_a;
    }
    serial_.inv_fourier_row(um, U, j);
    serial_.inv_fourier_row(vm, V, j);
  }
}

}  // namespace foam::numerics
