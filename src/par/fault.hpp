#pragma once

/// \file fault.hpp
/// Deterministic fault injection for resilience drills.
///
/// A FaultPlan names one rank and one simulated day; at that day boundary
/// the chosen rank either dies (throws, which aborts the whole run with a
/// diagnostic naming the rank — the analogue of a node loss) or stalls
/// (blocks in a wait that can never complete, so the PR-4 deadlock detector
/// times out and reports it). Drivers arm a plan through their options or
/// the FOAM_FAULT environment variable:
///
///   FOAM_FAULT="kill:rank=3,day=2"
///   FOAM_FAULT="stall:rank=1,day=2,seconds=30"
///
/// and call maybe_inject_fault(world, plan, day) at each simulated-day
/// boundary. Plans are one-shot: firing disarms them.

#include <string>

namespace foam::par {

class Comm;

struct FaultPlan {
  enum class Action { kNone, kKill, kStall };

  Action action = Action::kNone;
  int rank = -1;          ///< world rank that fails
  double at_day = -1.0;   ///< simulated-day boundary at which it fails
  double stall_seconds = 600.0;  ///< how long a kStall rank stays wedged

  bool armed() const {
    return action != Action::kNone && rank >= 0 && at_day >= 0.0;
  }

  /// True when the fault should fire: \p world_rank is the planned rank and
  /// the run has reached simulated day \p day (boundaries are compared with
  /// a tolerance so cadence arithmetic in doubles cannot skip the trigger).
  bool due(int world_rank, double day) const {
    return armed() && world_rank == rank && day + 1e-9 >= at_day;
  }

  /// Parse a "kill:rank=R,day=D" / "stall:rank=R,day=D,seconds=S" spec.
  /// Throws foam::Error on malformed input.
  static FaultPlan parse(const std::string& spec);

  /// Plan from $FOAM_FAULT, or a disarmed plan when unset. A malformed
  /// value logs an error and disarms (an env typo must not crash a run
  /// that never asked for faults).
  static FaultPlan from_env();
};

/// Fire \p plan on this rank if it is due at simulated day \p day, then
/// disarm it (one-shot). kKill throws foam::Error with a diagnostic naming
/// the rank and day; par::run releases the other ranks and rethrows it as
/// the root cause. kStall parks this rank in an unreleasable wait for up to
/// stall_seconds (the deadlock detector on the other ranks reports it and
/// aborts the run), then returns if the run somehow survived.
void maybe_inject_fault(Comm& world, FaultPlan& plan, double day);

}  // namespace foam::par
