#pragma once

/// \file comm.hpp
/// Message-passing runtime with MPI-1 style semantics.
///
/// FOAM was written against MPI on IBM SP distributed-memory systems. This
/// runtime reproduces the programming model — SPMD ranks, tagged
/// point-to-point messages, communicators and the collective operations the
/// model uses — with each rank hosted on an OS thread and messages copied
/// between per-rank mailboxes. Model code sees only the interface, exactly
/// as it would see MPI: no component shares mutable state with another
/// except through Comm.
///
/// Semantics:
///  * send() is buffered (always completes locally, like MPI_Bsend).
///  * recv() blocks until a matching message arrives. Matching is by
///    (communicator, source, tag) with kAnySource / kAnyTag wildcards, FIFO
///    within a match class.
///  * Collectives must be entered by every rank of the communicator in the
///    same order.
///
/// User tags must be in [0, kMaxUserTag]; the runtime reserves higher tags
/// for collectives.

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "base/error.hpp"

namespace foam::par {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;
inline constexpr int kMaxUserTag = (1 << 28) - 1;

/// Reduction operators for reduce/allreduce.
enum class ReduceOp { kSum, kMin, kMax };

namespace detail {

struct Message {
  int comm_id = 0;
  int src_global = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
};

struct Context {
  explicit Context(int nranks) : boxes(nranks) {}
  std::vector<Mailbox> boxes;
  std::mutex comm_id_mutex;
  int next_comm_id = 1;
};

}  // namespace detail

/// Status of a completed receive.
struct RecvStatus {
  int source = 0;  ///< rank (within the communicator) of the sender
  int tag = 0;
  std::size_t bytes = 0;
};

/// A communicator: an ordered group of ranks with a private message space.
/// Each rank owns one Comm object per communicator it belongs to.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }

  // --- point-to-point ---------------------------------------------------

  /// Buffered send of raw bytes.
  void send_bytes(int dst, int tag, const void* data, std::size_t bytes);

  /// Blocking receive. Returns the matched message's payload size; the
  /// payload is copied into \p data (capacity \p max_bytes). Throws if the
  /// message is larger than the buffer (truncation is always a bug here).
  RecvStatus recv_bytes(int src, int tag, void* data, std::size_t max_bytes);

  /// Typed send/recv for trivially copyable values.
  template <typename T>
  void send(int dst, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag, &value, sizeof(T));
  }
  template <typename T>
  RecvStatus recv(int src, int tag, T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return recv_bytes(src, tag, &value, sizeof(T));
  }

  /// Vector send/recv; the receive resizes to the incoming length.
  template <typename T>
  void send_vec(int dst, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag, v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  RecvStatus recv_vec(int src, int tag, std::vector<T>& v);

  // --- collectives ------------------------------------------------------

  void barrier();

  /// Broadcast \p bytes from \p root to all ranks.
  void bcast_bytes(void* data, std::size_t bytes, int root);
  template <typename T>
  void bcast(T& value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_bytes(&value, sizeof(T), root);
  }
  template <typename T>
  void bcast_vec(std::vector<T>& v, int root);

  /// Element-wise reduction of \p count doubles to \p root.
  void reduce(const double* in, double* out, std::size_t count, ReduceOp op,
              int root);
  void allreduce(const double* in, double* out, std::size_t count,
                 ReduceOp op);
  double allreduce_scalar(double v, ReduceOp op);
  std::int64_t allreduce_scalar(std::int64_t v, ReduceOp op);

  /// Gather equal-size blocks to root: root receives size()*count values.
  void gather(const double* in, std::size_t count, double* out, int root);
  /// Scatter equal-size blocks from root: rank r receives block r of
  /// root's size()*count values.
  void scatter(const double* in, std::size_t count, double* out, int root);
  void allgather(const double* in, std::size_t count, double* out);

  /// Variable-size gather of doubles; only root's \p out is filled, blocks
  /// concatenated in rank order. counts must agree across ranks.
  void gatherv(const std::vector<double>& in, std::vector<double>& out,
               const std::vector<int>& counts, int root);

  /// All-to-all of equal blocks: rank r's block s (count values each) goes
  /// to rank s's slot r. This is the transpose primitive of the parallel
  /// spectral transform.
  void alltoall(const double* in, double* out, std::size_t count_per_rank);

  /// Split into sub-communicators by color (ranks with equal color join the
  /// same new communicator, ordered by key then by parent rank). Every rank
  /// of this communicator must call split. Color < 0 returns nullptr (the
  /// rank joins no sub-communicator).
  std::unique_ptr<Comm> split(int color, int key);

  /// Global (world) rank hosting communicator rank \p r; used by the
  /// instrumentation to label timeline rows consistently across splits.
  int global_rank_of(int r) const {
    FOAM_REQUIRE(r >= 0 && r < size(), "rank " << r);
    return members_[r];
  }

 private:
  friend void run(int, const std::function<void(Comm&)>&);
  Comm(detail::Context* ctx, int comm_id, std::vector<int> members, int rank)
      : ctx_(ctx), comm_id_(comm_id), members_(std::move(members)),
        rank_(rank) {}

  int local_rank_of_global(int g) const;
  void send_internal(int dst, int tag, const void* data, std::size_t bytes);
  detail::Message recv_internal(int src, int tag);

  detail::Context* ctx_ = nullptr;
  int comm_id_ = 0;
  std::vector<int> members_;  // global rank of each communicator rank
  int rank_ = 0;              // this rank within the communicator
};

/// Launch an SPMD computation with \p nranks ranks. Each rank runs \p fn on
/// its own thread with its world communicator. Exceptions thrown by any rank
/// are collected; the first (by rank) is rethrown after all threads join.
void run(int nranks, const std::function<void(Comm&)>& fn);

// --- template bodies ----------------------------------------------------

template <typename T>
RecvStatus Comm::recv_vec(int src, int tag, std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::Message msg = recv_internal(src, tag);
  FOAM_REQUIRE(msg.payload.size() % sizeof(T) == 0,
               "recv_vec size " << msg.payload.size() << " not multiple of "
                                << sizeof(T));
  v.resize(msg.payload.size() / sizeof(T));
  if (!v.empty())
    std::memcpy(v.data(), msg.payload.data(), msg.payload.size());
  RecvStatus st;
  st.source = local_rank_of_global(msg.src_global);
  st.tag = msg.tag;
  st.bytes = msg.payload.size();
  return st;
}

template <typename T>
void Comm::bcast_vec(std::vector<T>& v, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::size_t n = v.size();
  bcast_bytes(&n, sizeof(n), root);
  v.resize(n);
  if (n > 0) bcast_bytes(v.data(), n * sizeof(T), root);
}

}  // namespace foam::par
