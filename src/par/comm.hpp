#pragma once

/// \file comm.hpp
/// Message-passing runtime with MPI-1 style semantics.
///
/// FOAM was written against MPI on IBM SP distributed-memory systems. This
/// runtime reproduces the programming model — SPMD ranks, tagged
/// point-to-point messages, communicators and the collective operations the
/// model uses — with each rank hosted on an OS thread. Model code sees only
/// the interface, exactly as it would see MPI: no component shares mutable
/// state with another except through Comm.
///
/// Two interchangeable transports carry the messages (CommTransport):
///  * kSpsc (default) — one lock-free SPSC channel per directed rank pair:
///    a bounded cache-line-padded ring whose slots inline payloads up to
///    Payload::kInlineBytes (no heap allocation on the small-message fast
///    path), spilling to an unbounded lock-free overflow queue when a burst
///    outruns the ring, with per-channel sequence numbers merging the two
///    lanes back into exact FIFO. Blocked receives spin briefly, then
///    yield, then sleep in short slices — no mutex or condition variable
///    anywhere on the message path.
///  * kMutex — the historic per-rank mutex/condition-variable mailbox,
///    kept as the A/B baseline for one release (FOAM_PAR_TRANSPORT=mutex).
///
/// Because ranks share one address space, large transfers can skip the
/// copy-in/copy-out entirely: isend_move hands the sender's vector to the
/// runtime by pointer ownership (rendezvous handoff), and recv_vec /
/// irecv_vec move that buffer straight into the receiving vector when the
/// element types match — zero payload memcpy end to end. Ownership rule:
/// after isend_move the buffer belongs to the runtime (the sender's vector
/// is left empty and must not be aliased); after a move-out delivery it
/// belongs to the receiver, which frees it naturally. Mismatched receives
/// (recv_bytes, different element type) fall back to one copy-out.
///
/// Semantics (identical on both transports):
///  * send() / isend() are buffered (always complete locally, like
///    MPI_Bsend): the payload is published to the destination's channel at
///    post time, so the source buffer may be reused immediately and a send
///    Request is born complete. isend_move completes locally too — the
///    handoff transfers ownership instead of copying.
///  * recv() blocks until a matching message arrives; irecv() posts a
///    pending receive completed by wait/test/waitall/waitany. Matching is by
///    (communicator, source, tag) with kAnySource / kAnyTag wildcards, FIFO
///    within a match class. Pending receives are matched in the order they
///    were posted (MPI posting-order semantics); a blocking recv is simply a
///    pending receive posted last and waited immediately, so blocking and
///    nonblocking receives order consistently against each other.
///  * kAnyTag matches user tags only — runtime-internal traffic (collective
///    rounds, split bookkeeping) can never be stolen by a wildcard receive.
///  * Requests are completed only by the posting rank's own thread (receiver
///    -driven matching): no request state is ever shared between threads.
///  * A pending receive must be completed (or the run aborted) before its
///    communicator is destroyed; buffers handed to irecv must stay alive
///    until completion.
///  * Collectives must be entered by every rank of the communicator in the
///    same order.
///
/// User tags must be in [0, kMaxUserTag]; the runtime reserves higher tags
/// for collectives.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "base/error.hpp"
#include "par/spsc.hpp"
#include "par/verify/verify.hpp"

namespace foam::par {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;
inline constexpr int kMaxUserTag = (1 << 28) - 1;

/// Reduction operators for reduce/allreduce.
enum class ReduceOp { kSum, kMin, kMax };

/// Which point-to-point substrate a parallel run uses (see file comment).
enum class CommTransport : int { kSpsc = 0, kMutex = 1 };

const char* comm_transport_name(CommTransport t);

/// Process-global transport for subsequent par::run launches. Precedence:
/// the last explicit set_comm_transport wins, else FOAM_PAR_TRANSPORT
/// (spsc|mutex), else kSpsc.
void set_comm_transport(CommTransport t);

/// The transport the next par::run will use under the precedence above.
CommTransport comm_transport();

/// Status of a completed receive.
struct RecvStatus {
  int source = 0;  ///< rank (within the communicator) of the sender
  int tag = 0;
  std::size_t bytes = 0;
};

namespace detail {

/// Unique runtime code per element type, for typed buffer handoff (a
/// moved-out vector must be reinterpreted only as its original type).
template <typename T>
struct TypeTag {
  static constexpr char tag = 0;
};
template <typename T>
inline std::uintptr_t type_code_of() {
  return reinterpret_cast<std::uintptr_t>(&TypeTag<T>::tag);
}

/// A message payload: small payloads live inline (no heap allocation — the
/// slot of a lock-free channel carries the bytes), large copied payloads
/// live in a heap buffer, and moved payloads (isend_move) keep the sender's
/// own vector alive through a type-erased owner so the receiving side can
/// move it out again without ever copying the bytes.
class Payload {
 public:
  /// Largest payload carried inline in a channel slot.
  static constexpr std::size_t kInlineBytes = 256;

  Payload() = default;
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;
  Payload(Payload&& o) noexcept { steal(o); }
  Payload& operator=(Payload&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }
  ~Payload() { reset(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::byte* data() const {
    return ext_ != nullptr ? static_cast<const std::byte*>(ext_) : inline_;
  }
  /// True when the bytes ride inline in the containing slot (fast path).
  bool inlined() const { return owner_ == nullptr; }
  /// True when the payload owns a handed-off buffer (rendezvous path).
  bool owned() const { return owner_ != nullptr; }

  /// Copy \p bytes in: inline when small, one heap buffer otherwise.
  void assign(const void* src, std::size_t bytes) {
    reset();
    size_ = bytes;
    if (bytes == 0) return;
    if (bytes <= kInlineBytes) {
      std::memcpy(inline_, src, bytes);
      return;
    }
    auto* h = new std::vector<std::byte>(bytes);
    std::memcpy(h->data(), src, bytes);
    ext_ = h->data();
    owner_ = OwnerPtr(h, [](void* p) {
      delete static_cast<std::vector<std::byte>*>(p);
    });
  }

  /// Adopt \p v without copying: the vector's heap buffer becomes the
  /// payload and travels by pointer. \p v is left empty.
  template <typename T>
  void adopt(std::vector<T>&& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    reset();
    auto* h = new std::vector<T>(std::move(v));
    size_ = h->size() * sizeof(T);
    ext_ = h->data();
    owner_ = OwnerPtr(h, [](void* p) { delete static_cast<std::vector<T>*>(p); });
    type_code_ = type_code_of<T>();
  }

  /// Move an adopted buffer of matching element type out into \p dst (the
  /// zero-copy completion of a rendezvous handoff). False when the payload
  /// was not handed off as a vector<T> — the caller copies instead.
  template <typename T>
  bool try_move_out(std::vector<T>& dst) {
    if (owner_ == nullptr || type_code_ != type_code_of<T>()) return false;
    dst = std::move(*static_cast<std::vector<T>*>(owner_.get()));
    reset();
    return true;
  }

 private:
  using OwnerPtr = std::unique_ptr<void, void (*)(void*)>;

  void reset() {
    owner_.reset();
    ext_ = nullptr;
    size_ = 0;
    type_code_ = 0;
  }
  void steal(Payload& o) {
    size_ = o.size_;
    type_code_ = o.type_code_;
    ext_ = o.ext_;
    owner_ = std::move(o.owner_);
    if (ext_ == nullptr && size_ > 0) std::memcpy(inline_, o.inline_, size_);
    o.ext_ = nullptr;
    o.size_ = 0;
    o.type_code_ = 0;
  }

  std::size_t size_ = 0;
  std::uintptr_t type_code_ = 0;  ///< nonzero iff owner_ is a vector<T>
  void* ext_ = nullptr;           ///< heap bytes, or nullptr for inline
  OwnerPtr owner_{nullptr, [](void*) {}};
  alignas(std::max_align_t) std::byte inline_[kInlineBytes];
};

struct Message {
  int comm_id = 0;
  int src_global = 0;
  int tag = 0;
  Payload payload;
  /// Per-channel FIFO sequence (spsc transport: merges ring + spill lanes).
  std::uint64_t channel_seq = 0;
  // --- verify piggyback (filled only when the verifier is enabled) ---
  /// Sender's vector clock at send time (wildcard-race detection).
  std::vector<std::uint32_t> vclock;
  /// Global send serial (exactly-once audit reporting); 0 = unstamped.
  std::uint64_t verify_seq = 0;
  /// Collective-entry signature hash; 0 = not a checked collective round.
  std::uint64_t coll_hash = 0;
  /// Decoded signature behind coll_hash, for the mismatch diagnostic.
  verify::CollDesc coll;
};

/// Ring capacity (messages) of one directed channel; bursts beyond it take
/// the unbounded spill lane, so senders never block (buffered semantics).
inline constexpr std::size_t kChannelRingSlots = 64;

/// One directed rank pair's lock-free lane (spsc transport). The producer
/// stamps every message with a running sequence number; the consumer merges
/// the bounded ring and the overflow queue back into exact send order by
/// popping whichever lane holds the next sequence.
struct Channel {
  SpscRing<Message, kChannelRingSlots> ring;
  SpscQueue<Message> spill;
  std::uint64_t send_seq = 0;  ///< producer-owned
  std::uint64_t next_seq = 0;  ///< consumer-owned
  /// Consumer's progress, published for the producer's depth estimate.
  std::atomic<std::uint64_t> consumed{0};

  /// Producer: always completes locally (ring first, spill on overflow).
  void push(Message&& m) {
    m.channel_seq = send_seq++;
    if (!ring.try_push(std::move(m))) spill.push(std::move(m));
  }

  /// Consumer: pop the next message in send order, if one has arrived.
  bool pop_next(Message& out) {
    Message* rf = ring.front();
    if (rf != nullptr && rf->channel_seq == next_seq) {
      out = std::move(*rf);
      ring.pop();
    } else {
      Message* sf = spill.front();
      if (sf == nullptr || sf->channel_seq != next_seq) return false;
      out = std::move(*sf);
      spill.pop();
    }
    ++next_seq;
    consumed.store(next_seq, std::memory_order_relaxed);
    return true;
  }

  /// Producer-side estimate of undelivered messages in this channel.
  std::size_t depth_estimate() const {
    return static_cast<std::size_t>(
        send_seq - consumed.load(std::memory_order_relaxed));
  }
};

/// Per-rank arrival state (spsc transport). Owner-thread-only: messages are
/// drained from the rank's inbound channels into this queue, where the
/// matching engine consumes them — no lock anywhere.
struct Inbox {
  std::deque<Message> arrivals;
};

/// Per-rank shared mailbox (mutex transport — the A/B baseline).
struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
};

/// State behind a Request handle. Owned (via shared_ptr) by the handle and,
/// while pending, by the posting rank's pending-receive list. All access is
/// from the posting rank's thread only.
struct RequestState {
  bool done = false;
  // --- matching (receives only) ---
  int comm_id = 0;
  int want_src_global = -1;  ///< global rank, or -1 for kAnySource
  int tag = kAnyTag;
  const std::vector<int>* members = nullptr;  ///< posting comm's rank map
  // --- delivery: either a raw destination buffer or a sink callback ---
  void* buffer = nullptr;
  std::size_t max_bytes = 0;
  std::function<void(Message&)> sink;  ///< used by vector/internal receives
  RecvStatus status;                   ///< filled at completion
  // --- verify bookkeeping ---
  int owner_global = -1;               ///< global rank that posted this
  bool verify_reported = false;        ///< audit already flagged this state
  /// Run verifier, for ~Request abandonment detection. Valid only while the
  /// run's Context is alive (requests must not outlive par::run, as with
  /// MPI_Finalize).
  verify::Verifier* verifier = nullptr;
};

struct Context {
  Context(int nranks, CommTransport t)
      : transport(t), nranks(nranks), pending(nranks), verifier(nranks) {
    if (t == CommTransport::kSpsc) {
      channels = std::vector<Channel>(
          static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks));
      inboxes = std::vector<Inbox>(static_cast<std::size_t>(nranks));
    } else {
      boxes = std::vector<Mailbox>(static_cast<std::size_t>(nranks));
    }
  }

  Channel& channel(int src_global, int dst_global) {
    return channels[static_cast<std::size_t>(dst_global) *
                        static_cast<std::size_t>(nranks) +
                    static_cast<std::size_t>(src_global)];
  }

  const CommTransport transport;
  const int nranks;
  /// Directed channels, dst-major so one rank's inbound lanes are adjacent
  /// (spsc transport only).
  std::vector<Channel> channels;
  std::vector<Inbox> inboxes;  ///< per-rank arrivals (spsc transport only)
  std::vector<Mailbox> boxes;  ///< per-rank mailboxes (mutex transport only)
  /// Pending nonblocking receives per global rank, in posting order.
  /// Touched only by the owning rank's thread.
  std::vector<std::vector<std::shared_ptr<RequestState>>> pending;
  std::mutex comm_id_mutex;
  int next_comm_id = 1;
  /// Shared MPI-semantics checker (kOff by default: one branch per hook).
  verify::Verifier verifier;
};

/// Element-wise combine for the typed reduction collectives.
template <typename T>
void combine(void* acc_v, const void* in_v, std::size_t count, ReduceOp op) {
  T* acc = static_cast<T*>(acc_v);
  const T* in = static_cast<const T*>(in_v);
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < count; ++i) acc[i] += in[i];
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < count; ++i)
        acc[i] = in[i] < acc[i] ? in[i] : acc[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < count; ++i)
        acc[i] = acc[i] < in[i] ? in[i] : acc[i];
      break;
  }
}

using CombineFn = void (*)(void*, const void*, std::size_t, ReduceOp);

// Telemetry hooks for the payload path (defined in comm.cpp so templated
// delivery code in this header stays free of the telemetry dependency).
void note_payload_copy(std::size_t bytes);
void note_zero_copy_recv();

/// Deliver \p p into \p v: move the buffer out when the sender handed it
/// off as the same element type (zero-copy), else resize-and-copy.
template <typename T>
void payload_to_vec(Payload& p, std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (p.try_move_out(v)) {
    note_zero_copy_recv();
    return;
  }
  FOAM_REQUIRE(p.size() % sizeof(T) == 0,
               "recv_vec size " << p.size() << " not multiple of "
                                << sizeof(T));
  v.resize(p.size() / sizeof(T));
  if (!v.empty()) {
    std::memcpy(v.data(), p.data(), p.size());
    note_payload_copy(p.size());
  }
}

}  // namespace detail

/// Handle for an in-flight nonblocking operation (MPI_Request analogue).
/// Value-semantic; a default-constructed Request is null (wait/test on it
/// are no-ops). Completion via Comm::wait/test/waitall/waitany releases the
/// handle back to null.
class Request {
 public:
  Request() = default;
  Request(const Request&) = default;
  Request(Request&&) = default;
  Request& operator=(const Request&) = default;
  Request& operator=(Request&&) = default;
  /// Flags dropping the last user handle of a still-pending receive to the
  /// verifier (the irecv buffer can no longer be completed or safely
  /// released); out of line so the hook sees the shared state.
  ~Request();
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<detail::RequestState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
};

/// A communicator: an ordered group of ranks with a private message space.
/// Each rank owns one Comm object per communicator it belongs to.
class Comm {
 public:
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;
  /// Runs the teardown message audit when verification is on (unmatched
  /// inbound messages and never-completed pending receives of this
  /// communicator on this rank); never throws.
  ~Comm();

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }

  /// The transport this run was launched with.
  CommTransport transport() const { return ctx_->transport; }

  // --- semantics verification -------------------------------------------

  /// Install verification options for the whole run (collective: every
  /// rank of this communicator calls with identical values; returns after
  /// a barrier, so the new mode is in force on every rank).
  void set_verify(const CommVerifyOptions& opts);

  /// Collective quiescence audit: barrier, then each rank drains its
  /// inbound channels and checks that they hold no unmatched user messages
  /// and that it has no pending incomplete receives (with buffered sends,
  /// everything ever sent before the barrier has already been published to
  /// its destination, so leftovers are real). Returns the global number of
  /// new findings (allreduce). In strict mode throws on every rank when
  /// that number is non-zero. No-op returning 0 when verification is off.
  std::size_t verify_quiescent();

  /// The run's shared checker (finding counts for drivers and tests).
  const verify::Verifier& verifier() const { return ctx_->verifier; }

  /// Park this rank in a wait that can never complete, for up to
  /// \p max_seconds (fault injection: a wedged node). The wait registers in
  /// the deadlock detector's wait-for table with no releasable specs, so
  /// once the stall outlives the detector's timeout the run aborts with a
  /// diagnostic naming this rank. Wakes early (and throws the sympathetic
  /// AbortError) when another rank aborts the run; simply returns after
  /// \p max_seconds when nothing noticed (verification off).
  void stall(double max_seconds, const char* what = "injected stall");

  // --- point-to-point ---------------------------------------------------

  /// Buffered send of raw bytes.
  void send_bytes(int dst, int tag, const void* data, std::size_t bytes);

  /// Blocking receive. Returns the matched message's payload size; the
  /// payload is copied into \p data (capacity \p max_bytes). Throws if the
  /// message is larger than the buffer (truncation is always a bug here).
  RecvStatus recv_bytes(int src, int tag, void* data, std::size_t max_bytes);

  /// Typed send/recv for trivially copyable values.
  template <typename T>
  void send(int dst, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag, &value, sizeof(T));
  }
  template <typename T>
  RecvStatus recv(int src, int tag, T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return recv_bytes(src, tag, &value, sizeof(T));
  }

  /// Vector send/recv; the receive resizes to the incoming length. When
  /// the sender used isend_move with the same element type, the receive is
  /// a zero-copy buffer move-out.
  template <typename T>
  void send_vec(int dst, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag, v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  RecvStatus recv_vec(int src, int tag, std::vector<T>& v);

  // --- nonblocking point-to-point ---------------------------------------

  /// Nonblocking buffered send: the payload is copied out at post time, so
  /// the request is born complete and \p data may be reused immediately.
  /// Returned for API symmetry with irecv (wait/waitall accept it).
  Request isend_bytes(int dst, int tag, const void* data, std::size_t bytes);

  /// Zero-copy send (rendezvous handoff): the vector's heap buffer is
  /// handed to the runtime by pointer — no payload memcpy — and \p v is
  /// left empty. The buffer now belongs to the runtime and then to the
  /// receiver; the sender must hold no aliases into it. Completes locally
  /// like isend (the request is born complete). Pair with recv_vec /
  /// irecv_vec of the same element type for a fully zero-copy transfer.
  template <typename T>
  Request isend_move(int dst, int tag, std::vector<T>&& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    detail::Message msg;
    msg.payload.adopt(std::move(v));
    return isend_adopted(dst, tag, std::move(msg));
  }

  /// Post a receive into \p data (capacity \p max_bytes); \p src may be
  /// kAnySource and \p tag kAnyTag. The buffer must stay alive until the
  /// request completes. Overflow throws from wait/test, as with recv_bytes.
  Request irecv_bytes(int src, int tag, void* data, std::size_t max_bytes);

  template <typename T>
  Request isend(int dst, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return isend_bytes(dst, tag, &value, sizeof(T));
  }
  template <typename T>
  Request irecv(int src, int tag, T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return irecv_bytes(src, tag, &value, sizeof(T));
  }

  template <typename T>
  Request isend_vec(int dst, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return isend_bytes(dst, tag, v.data(), v.size() * sizeof(T));
  }
  /// Post a receive that resizes \p v to the incoming length at completion
  /// (or moves the sender's buffer in, when it was handed off with
  /// isend_move of the same element type). The vector must stay alive (and
  /// must not be resized by the caller) until the request completes.
  template <typename T>
  Request irecv_vec(int src, int tag, std::vector<T>& v);

  /// Block until \p r completes; returns the receive status (zeros for a
  /// send request) and nulls the handle. A null request returns zeros.
  RecvStatus wait(Request& r);

  /// Nonblocking completion check: true (and the handle is nulled, status
  /// stored if \p st) if complete. A null request tests true.
  bool test(Request& r, RecvStatus* st = nullptr);

  /// Wait for every request; completion is by message arrival order, so
  /// out-of-order arrivals complete fine. Null entries are skipped.
  void waitall(std::span<Request> rs);

  /// Wait until any request completes; returns its index (the handle is
  /// nulled, status stored if \p st), or -1 if every entry is null.
  int waitany(std::span<Request> rs, RecvStatus* st = nullptr);

  // --- collectives ------------------------------------------------------

  void barrier();

  /// Broadcast \p bytes from \p root to all ranks.
  void bcast_bytes(void* data, std::size_t bytes, int root);
  template <typename T>
  void bcast(T& value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_bytes(&value, sizeof(T), root);
  }
  template <typename T>
  void bcast_vec(std::vector<T>& v, int root);

  /// Element-wise typed reduction of equal-length spans to \p root (rank
  /// order combination: deterministic, bitwise-reproducible sums).
  template <typename T>
    requires std::is_arithmetic_v<T>
  void reduce(std::span<const T> in, std::span<T> out, ReduceOp op,
              int root) {
    FOAM_REQUIRE(in.size() == out.size(), "reduce span sizes "
                                              << in.size() << " vs "
                                              << out.size());
    reduce_impl(in.data(), out.data(), sizeof(T), in.size(),
                &detail::combine<T>, op, root);
  }
  template <typename T>
    requires std::is_arithmetic_v<T>
  void allreduce(std::span<const T> in, std::span<T> out, ReduceOp op) {
    reduce(in, out, op, 0);
    bcast_bytes(out.data(), out.size() * sizeof(T), 0);
  }
  /// Scalar allreduce over any arithmetic type (exact for integers).
  template <typename T>
    requires std::is_arithmetic_v<T>
  T allreduce_scalar(T v, ReduceOp op) {
    T out{};
    allreduce(std::span<const T>(&v, 1), std::span<T>(&out, 1), op);
    return out;
  }

  /// Raw-pointer legacy spellings of the double reductions.
  void reduce(const double* in, double* out, std::size_t count, ReduceOp op,
              int root) {
    reduce(std::span<const double>(in, count), std::span<double>(out, count),
           op, root);
  }
  void allreduce(const double* in, double* out, std::size_t count,
                 ReduceOp op) {
    allreduce(std::span<const double>(in, count),
              std::span<double>(out, count), op);
  }

  /// Gather equal-size blocks to root: root receives size()*count values.
  void gather(const double* in, std::size_t count, double* out, int root);
  /// Scatter equal-size blocks from root: rank r receives block r of
  /// root's size()*count values.
  void scatter(const double* in, std::size_t count, double* out, int root);
  void allgather(const double* in, std::size_t count, double* out);

  /// Variable-size gather of doubles; only root's \p out is filled, blocks
  /// concatenated in rank order. counts must agree across ranks.
  void gatherv(const std::vector<double>& in, std::vector<double>& out,
               const std::vector<int>& counts, int root);

  /// All-to-all of equal blocks: rank r's block s (count values each) goes
  /// to rank s's slot r. This is the transpose primitive of the parallel
  /// spectral transform.
  void alltoall(const double* in, double* out, std::size_t count_per_rank);

  /// Split into sub-communicators by color (ranks with equal color join the
  /// same new communicator, ordered by key then by parent rank). Every rank
  /// of this communicator must call split. Color < 0 returns nullptr (the
  /// rank joins no sub-communicator).
  std::unique_ptr<Comm> split(int color, int key);

  /// Global (world) rank hosting communicator rank \p r; used by the
  /// instrumentation to label timeline rows consistently across splits.
  int global_rank_of(int r) const {
    FOAM_REQUIRE(r >= 0 && r < size(), "rank " << r);
    return members_[r];
  }

 private:
  friend void run(int, const std::function<void(Comm&)>&);
  Comm(detail::Context* ctx, int comm_id, std::vector<int> members, int rank)
      : ctx_(ctx), comm_id_(comm_id), members_(std::move(members)),
        rank_(rank) {}

  int local_rank_of_global(int g) const;
  void send_internal(int dst, int tag, const void* data, std::size_t bytes);
  detail::Message recv_internal(int src, int tag);

  /// Stamp, verify-annotate and publish \p msg to \p dst's channel or
  /// mailbox. The one funnel every send takes, on either transport.
  void post_message(int dst, int tag, detail::Message&& msg);
  /// isend_move back half (transport + telemetry, out of the template).
  Request isend_adopted(int dst, int tag, detail::Message&& msg);

  /// Receive one collective-round message from \p src and require its
  /// payload to be exactly \p bytes long (\p what labels the diagnostic).
  /// The shared front half of every collective's gather/scatter loop.
  detail::Message recv_coll_sized(int src, std::size_t bytes,
                                  const char* what);
  /// recv_coll_sized plus the copy-out into \p dst — the shared back half
  /// of the gather/scatter/bcast/alltoall delivery loops.
  void recv_coll_into(int src, void* dst, std::size_t bytes,
                      const char* what);

  /// Build a pending-receive state (matching fields validated/translated).
  std::shared_ptr<detail::RequestState> make_recv_state(int src, int tag);
  /// Append to this rank's pending list (posting order = matching order).
  void post_recv_state(const std::shared_ptr<detail::RequestState>& rs);
  /// Block until \p rs completes (drives matching against the inbox).
  /// \p what labels the wait in deadlock diagnostics.
  void wait_state(detail::RequestState& rs, const char* what = "wait");

  void reduce_impl(const void* in, void* out, std::size_t elem_bytes,
                   std::size_t count, detail::CombineFn combine, ReduceOp op,
                   int root);

  /// RAII collective-entry scope: assigns the entry its per-communicator
  /// sequence number and, while in scope, makes send_internal stamp the
  /// collective's internal messages with the signature and recv_internal
  /// check received signatures against it.
  struct CollScope {
    CollScope(Comm& comm, verify::CollKind kind, int root,
              std::uint64_t count, std::uint32_t elem, int op = -1);
    ~CollScope();
    CollScope(const CollScope&) = delete;
    CollScope& operator=(const CollScope&) = delete;

    Comm& comm;
    verify::CollDesc desc;
    const verify::CollDesc* prev;
  };

  detail::Context* ctx_ = nullptr;
  int comm_id_ = 0;
  std::vector<int> members_;  // global rank of each communicator rank
  int rank_ = 0;              // this rank within the communicator
  /// Collective entries made through this communicator object (every rank
  /// counts its own; the counts agree exactly when entry is consistent —
  /// that agreement is what the collective check verifies).
  std::uint64_t coll_seq_ = 0;
  const verify::CollDesc* active_coll_ = nullptr;  // set by CollScope
};

/// Launch an SPMD computation with \p nranks ranks. Each rank runs \p fn on
/// its own thread with its world communicator. Exceptions thrown by any rank
/// are collected; the first (by rank) is rethrown after all threads join.
void run(int nranks, const std::function<void(Comm&)>& fn);

// --- template bodies ----------------------------------------------------

template <typename T>
RecvStatus Comm::recv_vec(int src, int tag, std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::Message msg = recv_internal(src, tag);
  RecvStatus st;
  st.source = local_rank_of_global(msg.src_global);
  st.tag = msg.tag;
  st.bytes = msg.payload.size();
  detail::payload_to_vec(msg.payload, v);
  return st;
}

template <typename T>
Request Comm::irecv_vec(int src, int tag, std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  FOAM_REQUIRE(tag == kAnyTag || (tag >= 0 && tag <= kMaxUserTag),
               "user tag " << tag);
  auto rs = make_recv_state(src, tag);
  std::vector<T>* dst = &v;
  rs->sink = [dst](detail::Message& msg) {
    detail::payload_to_vec(msg.payload, *dst);
  };
  post_recv_state(rs);
  return Request(std::move(rs));
}

template <typename T>
void Comm::bcast_vec(std::vector<T>& v, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::size_t n = v.size();
  bcast_bytes(&n, sizeof(n), root);
  v.resize(n);
  if (n > 0) bcast_bytes(v.data(), n * sizeof(T), root);
}

}  // namespace foam::par
