#pragma once

/// \file decomp.hpp
/// Domain decomposition helpers.
///
/// FOAM decomposes both component grids by latitude bands (the PCCM2
/// decomposition); the spectral transform additionally redistributes by
/// zonal wavenumber. These helpers compute balanced contiguous ranges and
/// the paired-latitude assignment that balances the Legendre transform
/// (latitude j and its mirror ny-1-j carry equal work).

#include <vector>

#include "base/error.hpp"

namespace foam::par {

/// Half-open index range [lo, hi).
struct Range {
  int lo = 0;
  int hi = 0;
  int count() const { return hi - lo; }
  bool contains(int i) const { return i >= lo && i < hi; }
};

/// Balanced contiguous block of n items for rank r of nranks; remainders go
/// to the lowest ranks so no rank differs by more than one item.
Range block_range(int n, int nranks, int r);

/// Rank owning item i under block_range decomposition.
int block_owner(int n, int nranks, int i);

/// Counts per rank under block_range.
std::vector<int> block_counts(int n, int nranks);

/// Cartesian 2-D block decomposition of an nx * ny grid over a px * py rank
/// grid. Ranks are numbered x-major: rank r sits at (pi, pj) with
/// r = pj * px + pi, so a 1 x N grid reproduces the historic row
/// decomposition rank-for-rank. Each axis is split with block_range, giving
/// contiguous owned boxes balanced within one row/column.
///
/// Neighbor queries encode FOAM's ocean topology: x wraps periodically
/// (Mercator longitude), y has closed walls. A query returns -1 where no
/// exchange partner exists (single rank along x; domain wall along y).
class Decomp2D {
 public:
  Decomp2D(int nx, int ny, int px, int py);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int px() const { return px_; }
  int py() const { return py_; }
  int size() const { return px_ * py_; }

  // --- rank <-> coordinates ----------------------------------------------
  int pi_of(int rank) const;
  int pj_of(int rank) const;
  int rank_of(int pi, int pj) const;

  // --- owned ranges -------------------------------------------------------
  /// Owned x (column) range of process column pi.
  Range x_range(int pi) const;
  /// Owned y (row) range of process row pj.
  Range y_range(int pj) const;
  /// Owned box of a rank, as (x_range, y_range).
  Range x_range_of_rank(int rank) const { return x_range(pi_of(rank)); }
  Range y_range_of_rank(int rank) const { return y_range(pj_of(rank)); }

  // --- halo neighbors (-1 = no exchange needed) ---------------------------
  /// Periodic-x neighbors. With px == 1 a rank is its own x-neighbor and no
  /// message is needed: both return -1.
  int west_of(int rank) const;
  int east_of(int rank) const;
  /// Closed-wall y neighbors: -1 at the south/north domain edge.
  int south_of(int rank) const;
  int north_of(int rank) const;

 private:
  void check_rank(int rank) const;
  int nx_, ny_, px_, py_;
};

/// Paired-latitude assignment: latitudes are assigned to ranks as
/// north/south mirror pairs (j, ny-1-j) so each rank's Gaussian weights sum
/// equally — the load-balancing trick used for the parallel Legendre
/// transform. Returns, for each rank, the sorted list of latitudes it owns.
/// ny must be even; pairs are distributed in balanced blocks (counts differ
/// by at most one pair), so any nranks <= ny/2 works — FOAM's 8/16/32
/// atmosphere ranks on 40 latitudes included.
std::vector<std::vector<int>> paired_latitudes(int ny, int nranks);

}  // namespace foam::par
