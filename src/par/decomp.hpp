#pragma once

/// \file decomp.hpp
/// Domain decomposition helpers.
///
/// FOAM decomposes both component grids by latitude bands (the PCCM2
/// decomposition); the spectral transform additionally redistributes by
/// zonal wavenumber. These helpers compute balanced contiguous ranges and
/// the paired-latitude assignment that balances the Legendre transform
/// (latitude j and its mirror ny-1-j carry equal work).

#include <vector>

#include "base/error.hpp"

namespace foam::par {

/// Half-open index range [lo, hi).
struct Range {
  int lo = 0;
  int hi = 0;
  int count() const { return hi - lo; }
  bool contains(int i) const { return i >= lo && i < hi; }
};

/// Balanced contiguous block of n items for rank r of nranks; remainders go
/// to the lowest ranks so no rank differs by more than one item.
Range block_range(int n, int nranks, int r);

/// Rank owning item i under block_range decomposition.
int block_owner(int n, int nranks, int i);

/// Counts per rank under block_range.
std::vector<int> block_counts(int n, int nranks);

/// Paired-latitude assignment: latitudes are assigned to ranks as
/// north/south mirror pairs (j, ny-1-j) so each rank's Gaussian weights sum
/// equally — the load-balancing trick used for the parallel Legendre
/// transform. Returns, for each rank, the sorted list of latitudes it owns.
/// ny must be even; pairs are distributed in balanced blocks (counts differ
/// by at most one pair), so any nranks <= ny/2 works — FOAM's 8/16/32
/// atmosphere ranks on 40 latitudes included.
std::vector<std::vector<int>> paired_latitudes(int ny, int nranks);

}  // namespace foam::par
