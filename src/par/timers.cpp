#include "par/timers.hpp"

namespace foam::par {

const char* region_name(Region r) {
  switch (r) {
    case Region::kAtmosphere:
      return "atmosphere";
    case Region::kCoupler:
      return "coupler";
    case Region::kOcean:
      return "ocean";
    case Region::kIdle:
      return "idle";
    case Region::kOther:
      return "other";
    case Region::kCommWait:
      return "comm-wait";
  }
  return "?";
}

ActivityRecorder::ActivityRecorder() { reset(); }

void ActivityRecorder::reset() {
  epoch_ = std::chrono::steady_clock::now();
  open_ = false;
  segments_.clear();
}

double ActivityRecorder::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void ActivityRecorder::begin(Region r) {
  const double t = now();
  if (open_) segments_.push_back({open_region_, open_t0_, t});
  open_ = true;
  open_region_ = r;
  open_t0_ = t;
}

void ActivityRecorder::end() {
  if (!open_) return;
  const double t = now();
  segments_.push_back({open_region_, open_t0_, t});
  open_ = false;
}

double ActivityRecorder::total(Region r) const {
  double sum = 0.0;
  for (const Segment& s : segments_)
    if (s.region == r) sum += s.t1 - s.t0;
  return sum;
}

double ActivityRecorder::total_recorded() const {
  double sum = 0.0;
  for (const Segment& s : segments_) sum += s.t1 - s.t0;
  return sum;
}

std::vector<double> ActivityRecorder::serialize() const {
  std::vector<double> out;
  out.reserve(segments_.size() * 3);
  for (const Segment& s : segments_) {
    out.push_back(static_cast<double>(static_cast<int>(s.region)));
    out.push_back(s.t0);
    out.push_back(s.t1);
  }
  return out;
}

std::vector<Segment> ActivityRecorder::deserialize(const double* data,
                                                   std::size_t count) {
  FOAM_REQUIRE(count % 3 == 0, "segment stream length " << count);
  std::vector<Segment> out;
  out.reserve(count / 3);
  for (std::size_t i = 0; i < count; i += 3) {
    Segment s;
    s.region = static_cast<Region>(static_cast<int>(data[i]));
    s.t0 = data[i + 1];
    s.t1 = data[i + 2];
    out.push_back(s);
  }
  return out;
}

}  // namespace foam::par
