#include "par/fault.hpp"

#include <cstdlib>
#include <sstream>

#include "base/error.hpp"
#include "base/logging.hpp"
#include "par/comm.hpp"
#include "telemetry/observe.hpp"

namespace foam::par {

namespace {

double parse_number(const std::string& key, const std::string& text) {
  std::size_t end = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &end);
  } catch (const std::exception&) {
    end = 0;
  }
  FOAM_REQUIRE(end == text.size() && !text.empty(),
               "fault spec: bad value '" << text << "' for '" << key << "'");
  return v;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  const std::size_t colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  if (head == "kill") {
    plan.action = Action::kKill;
  } else if (head == "stall") {
    plan.action = Action::kStall;
  } else {
    FOAM_REQUIRE(false, "fault spec '"
                            << spec
                            << "': expected 'kill:...' or 'stall:...'");
  }
  std::istringstream rest(colon == std::string::npos ? ""
                                                     : spec.substr(colon + 1));
  std::string field;
  while (std::getline(rest, field, ',')) {
    const std::size_t eq = field.find('=');
    FOAM_REQUIRE(eq != std::string::npos,
                 "fault spec: expected key=value, got '" << field << "'");
    const std::string key = field.substr(0, eq);
    const std::string val = field.substr(eq + 1);
    if (key == "rank") {
      plan.rank = static_cast<int>(parse_number(key, val));
    } else if (key == "day") {
      plan.at_day = parse_number(key, val);
    } else if (key == "seconds") {
      plan.stall_seconds = parse_number(key, val);
    } else {
      FOAM_REQUIRE(false, "fault spec: unknown key '" << key << "'");
    }
  }
  FOAM_REQUIRE(plan.rank >= 0, "fault spec '" << spec << "': missing rank=");
  FOAM_REQUIRE(plan.at_day >= 0.0, "fault spec '" << spec
                                                  << "': missing day=");
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* env = std::getenv("FOAM_FAULT");
  if (env == nullptr || *env == '\0') return {};
  try {
    return parse(env);
  } catch (const Error& e) {
    FOAM_LOG_ERROR << "ignoring FOAM_FAULT: " << e.what();
    return {};
  }
}

void maybe_inject_fault(Comm& world, FaultPlan& plan, double day) {
  if (!plan.due(world.rank(), day)) return;
  const FaultPlan fired = plan;
  plan = {};  // one-shot: never re-fire on a later boundary
  if (fired.action == FaultPlan::Action::kKill) {
    FOAM_LOG_ERROR << "fault injection: killing rank " << fired.rank
                   << " at simulated day " << day;
    std::ostringstream msg;
    msg << "fault injection: rank " << fired.rank
        << " killed at simulated day " << day;
    // Leave the injected fault as this rank's open span (faults fire at
    // day boundaries where nothing else is open) and dump *with the kill
    // as the recorded reason* before the exception starts unwinding.
    if (telemetry::Telemetry* tel = telemetry::current())
      tel->tracer().begin_span("fault.kill (injected)");
    telemetry::observe_abort(msg.str());
    throw Error(msg.str());
  }
  FOAM_LOG_ERROR << "fault injection: stalling rank " << fired.rank
                 << " at simulated day " << day << " for up to "
                 << fired.stall_seconds << "s";
  telemetry::Telemetry* tel = telemetry::current();
  if (tel != nullptr) tel->tracer().begin_span("fault.stall (injected)");
  // Publish the stall span before parking so the watchdog/flight-recorder
  // postmortem names it even though this rank never runs again.
  telemetry::observe_comm_op("stall");
  telemetry::observe_publish();
  world.stall(fired.stall_seconds, "fault.stall (injected)");
  if (tel != nullptr) tel->tracer().end_span();
}

}  // namespace foam::par
