#pragma once

/// \file spsc.hpp
/// Lock-free single-producer / single-consumer queues for the foam::par
/// messaging runtime.
///
/// FOAM ranks are threads in one address space, and every directed pair of
/// ranks has exactly one producer (the sender's thread) and one consumer
/// (the receiver's thread). That makes the classic wait-free SPSC shapes
/// sufficient for the whole point-to-point substrate — no CAS loops, no
/// mutexes, one release store per push and one acquire load per pop:
///
///  * SpscRing<T, N> — a bounded power-of-two ring (Lamport queue) with
///    cache-line-padded head/tail so producer and consumer never false-share
///    their hot indices. Slots are plain T; the producer writes the slot
///    *before* publishing it with a release store of the tail, the consumer
///    acquires the tail before reading, so slot contents are fully ordered
///    without slot-level atomics (and ThreadSanitizer agrees).
///  * SpscQueue<T> — an unbounded linked SPSC queue (stub-node design):
///    the producer appends at the tail with a release store of `next`, the
///    consumer walks `next` pointers with acquire loads. Used as the
///    overflow lane when a ring fills: pushes always complete locally, so
///    the MPI_Bsend-style "buffered send" contract of foam::par survives
///    bursts larger than the ring without blocking the sender.
///
/// Index caching: both shapes keep a producer-local cache of the consumer
/// index (and vice versa), refreshed only when the cached view would refuse
/// the operation. An uncontended push/pop therefore touches a single shared
/// cache line.

#include <atomic>
#include <cstddef>
#include <utility>

namespace foam::par {

/// Destructive-interference granularity for the padding below. A fixed 64
/// rather than std::hardware_destructive_interference_size: the constant is
/// part of the layout, and GCC warns (-Winterference-size, fatal under
/// FOAM_WERROR) that the library value shifts with -mtune. 64 is right for
/// x86-64 and current ARM server cores; a wrong guess costs padding, not
/// correctness.
inline constexpr std::size_t kCacheLine = 64;

/// Bounded lock-free SPSC ring over value type T. Capacity must be a power
/// of two. Exactly one thread may push, exactly one may pop/peek.
template <typename T, std::size_t Capacity>
class SpscRing {
  static_assert(Capacity >= 2 && (Capacity & (Capacity - 1)) == 0,
                "SpscRing capacity must be a power of two");

 public:
  SpscRing() = default;
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  static constexpr std::size_t capacity() { return Capacity; }

  /// Producer: publish \p v if a slot is free. On false, \p v is untouched
  /// (the caller re-routes it, e.g. to an overflow queue).
  bool try_push(T&& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= Capacity) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= Capacity) return false;
    }
    slots_[tail & kMask] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: the oldest unconsumed slot, or nullptr when empty. The
  /// pointer stays valid until the matching pop().
  T* front() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return nullptr;
    }
    return &slots_[head & kMask];
  }

  /// Consumer: release the slot returned by front(). The slot's value is
  /// left moved-from (the caller consumed it through the front pointer).
  void pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    slots_[head & kMask] = T{};  // drop payloads eagerly, not a ring later
    head_.store(head + 1, std::memory_order_release);
  }

  /// Either side: racy size estimate (monitoring / backpressure hints).
  std::size_t size_estimate() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  static constexpr std::size_t kMask = Capacity - 1;

  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // consumer-owned
  alignas(kCacheLine) std::size_t head_cache_ = 0;        // producer-local
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // producer-owned
  alignas(kCacheLine) std::size_t tail_cache_ = 0;        // consumer-local
  alignas(kCacheLine) T slots_[Capacity];
};

/// Unbounded lock-free SPSC queue (stub-node linked list). push() always
/// succeeds; one heap allocation per element, so it is the overflow lane,
/// not the fast path.
template <typename T>
class SpscQueue {
 public:
  SpscQueue() : head_(new Node), tail_(head_) {}
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;
  ~SpscQueue() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Producer: append (always succeeds; allocates).
  void push(T&& v) {
    Node* n = new Node;
    n->value = std::move(v);
    tail_->next.store(n, std::memory_order_release);
    tail_ = n;
  }

  /// Consumer: the oldest unconsumed value, or nullptr when empty. Valid
  /// until the matching pop().
  T* front() {
    Node* next = head_->next.load(std::memory_order_acquire);
    return next != nullptr ? &next->value : nullptr;
  }

  /// Consumer: release the value returned by front().
  void pop() {
    Node* next = head_->next.load(std::memory_order_acquire);
    delete head_;
    head_ = next;
  }

 private:
  struct Node {
    T value{};
    std::atomic<Node*> next{nullptr};
  };

  alignas(kCacheLine) Node* head_;  // consumer-owned (stub node)
  alignas(kCacheLine) Node* tail_;  // producer-owned
};

}  // namespace foam::par
