#pragma once

/// \file verify.hpp
/// MPI-semantics correctness checking for the foam::par runtime.
///
/// FOAM's communication pattern is exercised exactly as with MPI, and the
/// classes of bug that dominate coupled-model debugging are MPI-semantics
/// bugs: deadlocked wait cycles, orphaned messages, wildcard receives whose
/// outcome depends on timing, and collectives entered inconsistently across
/// ranks. This layer is a built-in MUST/Marmot-style checker: every rank of
/// a parallel run can enable it (CommVerifyOptions, or the FOAM_PAR_VERIFY
/// environment variable) and the runtime then proves, as the run executes,
/// that it was deadlock-free, leak-free and deterministic.
///
/// Four detectors:
///  * Deadlock — every blocking wait (recv / wait / waitany / a collective
///    round) registers what it is blocked on in a cross-rank wait-for
///    table. When a wait stalls past CommVerifyOptions::
///    stall_timeout_seconds, the stalled rank computes the definitely-
///    deadlocked set: the largest set of blocked ranks in which every rank
///    that could release a member is itself a member (wildcard receives
///    contribute edges to every possible sender, waitany to every pending
///    request's senders). A non-empty set is a proven deadlock — no member
///    can ever run again — and is reported as a cycle walk plus each
///    member's pending (comm, src, tag) set, then aborts the run (in audit
///    mode too: there is nothing left to audit).
///  * Message audit — at communicator teardown and at explicit
///    Comm::verify_quiescent() barriers, each rank reports messages still
///    sitting in its mailbox (unmatched sends), posted receives that never
///    completed, and receives whose last Request handle was dropped while
///    still pending (the buffer handed to irecv can no longer be completed
///    or safely released). Each problem is reported exactly once.
///  * Wildcard races — when the verifier is on, every message carries the
///    sender's vector clock. When a kAnySource / kAnyTag receive matches a
///    message while another queued message was also eligible, and the two
///    sends are concurrent under the clocks (neither happens-before the
///    other), the match was timing-dependent: a different sender could
///    have matched. Reported with both candidates. (The check window is
///    the receive queue at match time — races whose alternative message
///    has not yet arrived are not observable in one run.)
///  * Collective consistency — every collective entry computes a signature
///    (operation, root, element count/width, ReduceOp, per-communicator
///    entry sequence number) that rides on the collective's own internal
///    messages; each receiving side compares against its local signature,
///    turning silent mismatches (different lengths, different operations,
///    skipped collectives) into immediate diagnostics naming both ranks.
///
/// Modes: kOff (no work beyond one branch per hook), kAudit (findings are
/// logged, counted and fed to telemetry; the run continues), kStrict
/// (findings throw foam::Error at the detecting rank; verify_quiescent
/// throws on every rank when the global finding count is non-zero).
/// Deadlocks always abort. Overhead in audit mode is gated < 5% of busy
/// time by bench_time_allocation.
///
/// The verifier object is shared by all ranks of a parallel run (one per
/// par::run Context). Vector clocks are per-rank and touched only by the
/// owning rank's thread; the wait-for table and findings list are guarded
/// by one mutex that is taken on blocking waits and findings, never on the
/// per-message fast path.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace foam::par {

namespace detail {
struct Message;
struct RequestState;
}  // namespace detail

/// How much semantics checking the runtime performs (see the file comment).
enum class VerifyMode : int { kOff = 0, kAudit = 1, kStrict = 2 };

const char* verify_mode_name(VerifyMode m);

/// Options for the correctness layer; Comm::set_verify installs them for
/// the whole run (collective call, identical values on every rank).
struct CommVerifyOptions {
  VerifyMode mode = VerifyMode::kOff;
  /// Age of a blocked wait after which the deadlock probe runs [s].
  double stall_timeout_seconds = 10.0;
  /// Log each finding as it is recorded (kWarn); findings are always
  /// counted and kept regardless.
  bool log_findings = true;

  /// Defaults from the environment: FOAM_PAR_VERIFY=off|audit|strict and
  /// FOAM_PAR_VERIFY_TIMEOUT=<seconds>. Unset or unrecognized means kOff.
  static CommVerifyOptions from_env();
};

namespace verify {

enum class FindingKind : int {
  kDeadlock = 0,
  kUnmatchedSend = 1,      ///< message delivered to a mailbox, never received
  kPendingReceive = 2,     ///< posted receive never completed
  kAbandonedRequest = 3,   ///< last Request handle dropped while pending
  kWildcardRace = 4,       ///< nondeterministic wildcard match
  kCollectiveMismatch = 5, ///< inconsistent collective entry across ranks
};
inline constexpr int kFindingKindCount = 6;

const char* finding_kind_name(FindingKind k);

struct Finding {
  FindingKind kind = FindingKind::kDeadlock;
  int rank = -1;  ///< world rank that detected (and usually owns) the problem
  std::string detail;
};

/// Collective operations carrying a consistency signature.
enum class CollKind : int {
  kBarrier = 0,
  kBcast = 1,
  kReduce = 2,
  kGather = 3,
  kScatter = 4,
  kGatherv = 5,
  kAlltoall = 6,
  kSplit = 7,
};

const char* coll_kind_name(CollKind k);

/// Signature of one collective entry, compared across ranks. Equal entries
/// hash equal; the decoded fields drive the mismatch diagnostic.
struct CollDesc {
  std::int32_t kind = 0;   ///< CollKind
  std::int32_t root = 0;
  std::uint64_t count = 0; ///< elements (or a content hash, e.g. gatherv counts)
  std::uint32_t elem = 0;  ///< element width [bytes]
  std::int32_t op = -1;    ///< ReduceOp for reductions, -1 otherwise
  std::uint64_t seq = 0;   ///< per-communicator collective entry number
  std::int32_t comm_id = 0;

  std::uint64_t hash() const;
  std::string describe() const;
};

/// One blocked wait's matching spec, registered in the wait-for table.
struct WaitSpec {
  int comm_id = 0;
  int want_src_global = -1;  ///< global rank, or -1 for kAnySource
  int tag = 0;               ///< kAnyTag allowed
  /// Global ranks of the waited communicator (for wildcard candidate
  /// expansion). Points at the blocked rank's Comm::members_, which is
  /// immutable after construction and outlives the wait; reads happen
  /// under the verifier mutex that also ordered the registration.
  const std::vector<int>* members = nullptr;
};

/// The shared correctness checker for one parallel run. See file comment
/// for the threading contract.
class Verifier {
 public:
  explicit Verifier(int nranks);

  /// Install options (any rank may call; callers pass identical values).
  void configure(const CommVerifyOptions& opts);
  CommVerifyOptions options() const;

  VerifyMode mode() const {
    return static_cast<VerifyMode>(mode_.load(std::memory_order_relaxed));
  }
  bool enabled() const { return mode() != VerifyMode::kOff; }

  /// Abort path: stop recording (stack unwinding drops requests and tears
  /// down communicators; none of that is evidence once a rank has failed).
  void suppress() { suppressed_.store(true, std::memory_order_relaxed); }
  bool suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

  // --- message path (owner-thread only; no locks) ------------------------

  /// Stamp an outgoing message with the sender's vector clock and serial.
  void on_send(int me_global, detail::Message& msg);
  /// Merge a delivered message's clock into the receiver's clock.
  void on_deliver(int me_global, const detail::Message& msg);

  /// A wildcard receive matched \p matched while \p other (also queued,
  /// also eligible) differs in source or tag. Records a race finding if
  /// the two sends are concurrent under the vector clocks. Returns true
  /// if a finding was recorded. Called with the mailbox lock held.
  bool check_wildcard_pair(int me_global, const detail::RequestState& rs,
                           const detail::Message& matched,
                           const detail::Message& other);

  // --- collective consistency -------------------------------------------

  /// Compare a received collective-round message's signature against the
  /// receiving rank's own entry. Throws in strict mode on mismatch.
  void check_collective(int me_global, const CollDesc& expect,
                        const detail::Message& msg);

  // --- wait-for graph / deadlock ----------------------------------------

  /// Register that \p me_global is blocked (\p what names the operation;
  /// specs are everything whose completion releases the wait).
  void enter_wait(int me_global, const char* what,
                  std::vector<WaitSpec> specs);
  void leave_wait(int me_global);
  /// Run the deadlock probe if this rank's wait has stalled past the
  /// configured timeout. Throws foam::Error (aborting the run) when a
  /// definitely-deadlocked set is found.
  void poll_deadlock(int me_global);

  // --- audits ------------------------------------------------------------

  /// Report unmatched mailbox messages and never-completed pending
  /// receives, each exactly once across repeated audits. When
  /// \p comm_id_filter >= 0 only that communicator's state is audited
  /// (teardown); \p where labels the diagnostic. Returns the number of
  /// new findings. Never throws (strict escalation is the caller's call).
  std::size_t audit(int me_global, const char* where, int comm_id_filter,
                    const std::deque<detail::Message>& queue,
                    const std::vector<std::shared_ptr<detail::RequestState>>&
                        pending);

  /// The last user handle of a still-pending receive was destroyed.
  void on_abandoned_request(detail::RequestState& rs);

  // --- findings -----------------------------------------------------------

  /// Record a finding: log, count into telemetry (counter + trace instant
  /// event), keep. In strict mode, throws foam::Error(detail) when
  /// \p allow_throw (detectors in destructors / audits pass false).
  void record(FindingKind kind, int rank, const std::string& detail,
              bool allow_throw);

  std::vector<Finding> findings() const;
  std::size_t finding_count() const;
  std::size_t finding_count(FindingKind kind) const;

 private:
  struct RankWait {
    bool blocked = false;
    const char* what = "";
    std::vector<WaitSpec> specs;
    std::chrono::steady_clock::time_point since{};
  };

  void record_locked(FindingKind kind, int rank, const std::string& detail,
                     bool allow_throw);
  /// Largest set of blocked ranks closed under "every possible releaser is
  /// in the set"; members must have been blocked at least \p min_age.
  std::vector<int> deadlocked_set_locked(double min_age_seconds) const;

  const int nranks_;
  std::atomic<int> mode_{static_cast<int>(VerifyMode::kOff)};
  std::atomic<bool> suppressed_{false};
  std::atomic<std::uint64_t> send_seq_{0};

  /// clocks_[r] is written only by rank r's thread; messages carry copies.
  std::vector<std::vector<std::uint32_t>> clocks_;

  mutable std::mutex mutex_;
  CommVerifyOptions opts_;               // guarded by mutex_
  std::vector<RankWait> waits_;          // guarded by mutex_
  std::vector<Finding> findings_;        // guarded by mutex_
  std::size_t kind_counts_[kFindingKindCount] = {};  // guarded by mutex_
  std::set<std::uint64_t> reported_msgs_;            // guarded by mutex_
  bool deadlock_reported_ = false;                   // guarded by mutex_
};

}  // namespace verify
}  // namespace foam::par
