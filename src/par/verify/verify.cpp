#include "par/verify/verify.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "base/logging.hpp"
#include "par/comm.hpp"
#include "telemetry/observe.hpp"
#include "telemetry/telemetry.hpp"

namespace foam::par {

const char* verify_mode_name(VerifyMode m) {
  switch (m) {
    case VerifyMode::kOff:
      return "off";
    case VerifyMode::kAudit:
      return "audit";
    case VerifyMode::kStrict:
      return "strict";
  }
  return "?";
}

CommVerifyOptions CommVerifyOptions::from_env() {
  CommVerifyOptions o;
  if (const char* mode = std::getenv("FOAM_PAR_VERIFY")) {
    const std::string m(mode);
    if (m == "audit") {
      o.mode = VerifyMode::kAudit;
    } else if (m == "strict") {
      o.mode = VerifyMode::kStrict;
    }
  }
  if (const char* t = std::getenv("FOAM_PAR_VERIFY_TIMEOUT")) {
    char* end = nullptr;
    const double v = std::strtod(t, &end);
    if (end != t && v > 0.0) o.stall_timeout_seconds = v;
  }
  return o;
}

namespace verify {

namespace {

/// True iff clock a happens-before-or-equals clock b (component-wise <=).
bool clock_leq(const std::vector<std::uint32_t>& a,
               const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] > b[i]) return false;
  return true;
}

std::string tag_name(int tag) {
  return tag == kAnyTag ? std::string("any") : std::to_string(tag);
}

std::string src_name(int src_global) {
  return src_global < 0 ? std::string("any") : std::to_string(src_global);
}

}  // namespace

const char* finding_kind_name(FindingKind k) {
  switch (k) {
    case FindingKind::kDeadlock:
      return "deadlock";
    case FindingKind::kUnmatchedSend:
      return "unmatched-send";
    case FindingKind::kPendingReceive:
      return "pending-receive";
    case FindingKind::kAbandonedRequest:
      return "abandoned-request";
    case FindingKind::kWildcardRace:
      return "wildcard-race";
    case FindingKind::kCollectiveMismatch:
      return "collective-mismatch";
  }
  return "?";
}

const char* coll_kind_name(CollKind k) {
  switch (k) {
    case CollKind::kBarrier:
      return "barrier";
    case CollKind::kBcast:
      return "bcast";
    case CollKind::kReduce:
      return "reduce";
    case CollKind::kGather:
      return "gather";
    case CollKind::kScatter:
      return "scatter";
    case CollKind::kGatherv:
      return "gatherv";
    case CollKind::kAlltoall:
      return "alltoall";
    case CollKind::kSplit:
      return "split";
  }
  return "?";
}

std::uint64_t CollDesc::hash() const {
  // FNV-1a over the signature fields; never returns 0 (0 marks "absent").
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<std::uint64_t>(kind));
  mix(static_cast<std::uint64_t>(root));
  mix(count);
  mix(elem);
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(op)));
  mix(seq);
  mix(static_cast<std::uint64_t>(comm_id));
  return h == 0 ? 1 : h;
}

std::string CollDesc::describe() const {
  std::ostringstream os;
  os << coll_kind_name(static_cast<CollKind>(kind)) << "(comm " << comm_id
     << ", seq " << seq << ", root " << root << ", count " << count
     << ", elem " << elem << "B";
  if (op >= 0) {
    static const char* const kOps[] = {"sum", "min", "max"};
    os << ", op ";
    if (op < 3)
      os << kOps[op];
    else
      os << op;
  }
  os << ")";
  return os.str();
}

Verifier::Verifier(int nranks)
    : nranks_(nranks),
      clocks_(static_cast<std::size_t>(nranks),
              std::vector<std::uint32_t>(static_cast<std::size_t>(nranks),
                                         0)),
      waits_(static_cast<std::size_t>(nranks)) {}

void Verifier::configure(const CommVerifyOptions& opts) {
  std::lock_guard<std::mutex> lock(mutex_);
  opts_ = opts;
  mode_.store(static_cast<int>(opts.mode), std::memory_order_relaxed);
}

CommVerifyOptions Verifier::options() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return opts_;
}

void Verifier::on_send(int me_global, detail::Message& msg) {
  auto& clock = clocks_[static_cast<std::size_t>(me_global)];
  ++clock[static_cast<std::size_t>(me_global)];
  msg.vclock = clock;
  msg.verify_seq = 1 + send_seq_.fetch_add(1, std::memory_order_relaxed);
}

void Verifier::on_deliver(int me_global, const detail::Message& msg) {
  auto& clock = clocks_[static_cast<std::size_t>(me_global)];
  if (msg.vclock.size() == clock.size())
    for (std::size_t i = 0; i < clock.size(); ++i)
      clock[i] = std::max(clock[i], msg.vclock[i]);
  ++clock[static_cast<std::size_t>(me_global)];
}

bool Verifier::check_wildcard_pair(int me_global,
                                   const detail::RequestState& rs,
                                   const detail::Message& matched,
                                   const detail::Message& other) {
  if (matched.vclock.empty() || other.vclock.empty()) return false;
  // Ordered sends (one happens-before the other) make the match
  // deterministic: posting-order matching always pairs them the same way.
  if (clock_leq(matched.vclock, other.vclock) ||
      clock_leq(other.vclock, matched.vclock))
    return false;
  std::ostringstream os;
  os << "wildcard race on rank " << me_global << ": recv(comm "
     << rs.comm_id << ", src " << src_name(rs.want_src_global) << ", tag "
     << tag_name(rs.tag) << ") matched the message from rank "
     << matched.src_global << " (tag " << matched.tag << ", "
     << matched.payload.size() << " bytes) but the concurrent message from "
     << "rank " << other.src_global << " (tag " << other.tag << ", "
     << other.payload.size()
     << " bytes) was also eligible; the outcome is timing-dependent";
  record(FindingKind::kWildcardRace, me_global, os.str(),
         /*allow_throw=*/true);
  return true;
}

void Verifier::check_collective(int me_global, const CollDesc& expect,
                                const detail::Message& msg) {
  if (msg.coll_hash == 0) return;  // sender had verification off
  if (msg.coll_hash == expect.hash()) return;
  std::ostringstream os;
  os << "collective mismatch: rank " << me_global << " entered "
     << expect.describe() << " but rank " << msg.src_global << " entered "
     << msg.coll.describe();
  record(FindingKind::kCollectiveMismatch, me_global, os.str(),
         /*allow_throw=*/true);
}

void Verifier::enter_wait(int me_global, const char* what,
                          std::vector<WaitSpec> specs) {
  std::lock_guard<std::mutex> lock(mutex_);
  RankWait& w = waits_[static_cast<std::size_t>(me_global)];
  w.blocked = true;
  w.what = what;
  w.specs = std::move(specs);
  w.since = std::chrono::steady_clock::now();
}

void Verifier::leave_wait(int me_global) {
  std::lock_guard<std::mutex> lock(mutex_);
  RankWait& w = waits_[static_cast<std::size_t>(me_global)];
  w.blocked = false;
  w.specs.clear();
}

std::vector<int> Verifier::deadlocked_set_locked(
    double min_age_seconds) const {
  const auto now = std::chrono::steady_clock::now();
  std::vector<bool> in_set(static_cast<std::size_t>(nranks_), false);
  for (int r = 0; r < nranks_; ++r) {
    const RankWait& w = waits_[static_cast<std::size_t>(r)];
    in_set[static_cast<std::size_t>(r)] =
        w.blocked &&
        std::chrono::duration<double>(now - w.since).count() >=
            min_age_seconds;
  }
  // Remove any rank that could be released by a rank outside the set
  // (a running rank, or one already removed) until the set is stable.
  // What remains is closed: every possible releaser is itself stuck.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int r = 0; r < nranks_; ++r) {
      if (!in_set[static_cast<std::size_t>(r)]) continue;
      bool releasable = false;
      for (const WaitSpec& s : waits_[static_cast<std::size_t>(r)].specs) {
        if (s.want_src_global >= 0) {
          if (!in_set[static_cast<std::size_t>(s.want_src_global)])
            releasable = true;
        } else if (s.members != nullptr) {
          for (const int g : *s.members)
            if (g != r && !in_set[static_cast<std::size_t>(g)])
              releasable = true;
        } else {
          releasable = true;  // unknown candidates: assume releasable
        }
        if (releasable) break;
      }
      if (releasable) {
        in_set[static_cast<std::size_t>(r)] = false;
        changed = true;
      }
    }
  }
  std::vector<int> out;
  for (int r = 0; r < nranks_; ++r)
    if (in_set[static_cast<std::size_t>(r)]) out.push_back(r);
  return out;
}

void Verifier::poll_deadlock(int me_global) {
  double timeout = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const RankWait& w = waits_[static_cast<std::size_t>(me_global)];
    if (!w.blocked) return;
    timeout = opts_.stall_timeout_seconds;
    const double age = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - w.since)
                           .count();
    if (age < timeout) return;
  }
  // A blocked rank re-runs its matching engine every 50 ms, so a rank that
  // has been blocked longer than kMinAge with a matching message in its
  // mailbox is impossible — requiring that age for every member rules out
  // the in-flight-message race without a second probe pass.
  constexpr double kMinAge = 0.25;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<int> dead = deadlocked_set_locked(kMinAge);
  if (dead.empty()) return;
  if (deadlock_reported_) return;
  deadlock_reported_ = true;
  // Walk specific-source edges inside the set for a readable cycle, then
  // dump every member's pending (comm, src, tag) set.
  std::ostringstream os;
  os << "deadlock detected: ";
  {
    std::vector<int> path;
    std::vector<bool> seen(static_cast<std::size_t>(nranks_), false);
    int cur = dead.front();
    while (!seen[static_cast<std::size_t>(cur)]) {
      seen[static_cast<std::size_t>(cur)] = true;
      path.push_back(cur);
      int next = -1;
      for (const WaitSpec& s :
           waits_[static_cast<std::size_t>(cur)].specs) {
        const int cand = s.want_src_global;
        if (cand >= 0 &&
            std::find(dead.begin(), dead.end(), cand) != dead.end()) {
          next = cand;
          break;
        }
      }
      if (next < 0) break;
      cur = next;
    }
    os << "cycle";
    for (const int r : path) os << " rank " << r << " ->";
    os << " rank " << cur << ";";
  }
  for (const int r : dead) {
    const RankWait& w = waits_[static_cast<std::size_t>(r)];
    os << " rank " << r << " blocked in " << w.what << " for "
       << std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        w.since)
              .count()
       << "s on {";
    bool first = true;
    for (const WaitSpec& s : w.specs) {
      if (!first) os << ", ";
      first = false;
      os << "(comm " << s.comm_id << ", src " << src_name(s.want_src_global)
         << ", tag " << tag_name(s.tag) << ")";
    }
    os << "};";
  }
  os << " aborting the run";
  // A proven deadlock is fatal in audit mode too: every member is stuck
  // forever, so the only useful outcome is the diagnostic plus an abort.
  record_locked(FindingKind::kDeadlock, me_global, os.str(),
                /*allow_throw=*/false);
  // The abort unwinds every rank through half-finished operations; stop
  // recording so that teardown noise doesn't bury the real diagnostic.
  suppressed_.store(true, std::memory_order_relaxed);
  // Land the flight-recorder postmortem while every stuck rank's last
  // published snapshot is still reachable, before the unwind starts.
  telemetry::observe_abort(os.str());
  throw Error(os.str());
}

std::size_t Verifier::audit(
    int me_global, const char* where, int comm_id_filter,
    const std::deque<detail::Message>& queue,
    const std::vector<std::shared_ptr<detail::RequestState>>& pending) {
  if (!enabled() || suppressed()) return 0;
  std::size_t fresh = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const detail::Message& m : queue) {
    // Runtime-internal traffic (collective rounds of a collective another
    // rank has already entered, e.g. the allreduce that follows a quiescent
    // audit) is never an orphaned user send; inconsistencies there are the
    // collective checker's job.
    if (m.tag > kMaxUserTag) continue;
    if (comm_id_filter >= 0 && m.comm_id != comm_id_filter) continue;
    if (m.verify_seq != 0 && !reported_msgs_.insert(m.verify_seq).second)
      continue;
    std::ostringstream os;
    os << "unmatched send: message from rank " << m.src_global << " (comm "
       << m.comm_id << ", tag " << m.tag << ", " << m.payload.size()
       << " bytes) was never received by rank " << me_global
       << " (detected at " << where << ")";
    record_locked(FindingKind::kUnmatchedSend, me_global, os.str(),
                  /*allow_throw=*/false);
    ++fresh;
  }
  for (const auto& rs : pending) {
    if (rs == nullptr || rs->done || rs->verify_reported) continue;
    if (comm_id_filter >= 0 && rs->comm_id != comm_id_filter) continue;
    rs->verify_reported = true;
    std::ostringstream os;
    os << "pending receive never completed: rank " << me_global
       << " posted recv(comm " << rs->comm_id << ", src "
       << src_name(rs->want_src_global) << ", tag " << tag_name(rs->tag)
       << ") and no matching message ever arrived (detected at " << where
       << ")";
    record_locked(FindingKind::kPendingReceive, me_global, os.str(),
                  /*allow_throw=*/false);
    ++fresh;
  }
  return fresh;
}

void Verifier::on_abandoned_request(detail::RequestState& rs) {
  if (!enabled() || suppressed()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (rs.verify_reported) return;
  rs.verify_reported = true;
  std::ostringstream os;
  os << "abandoned request: rank " << rs.owner_global
     << " dropped the last handle of a pending recv(comm " << rs.comm_id
     << ", src " << src_name(rs.want_src_global) << ", tag "
     << tag_name(rs.tag)
     << "); its buffer was released before completion";
  record_locked(FindingKind::kAbandonedRequest, rs.owner_global, os.str(),
                /*allow_throw=*/false);
}

void Verifier::record(FindingKind kind, int rank, const std::string& detail,
                      bool allow_throw) {
  std::lock_guard<std::mutex> lock(mutex_);
  record_locked(kind, rank, detail, allow_throw);
}

void Verifier::record_locked(FindingKind kind, int rank,
                             const std::string& detail, bool allow_throw) {
  if (suppressed()) return;
  findings_.push_back(Finding{kind, rank, detail});
  ++kind_counts_[static_cast<int>(kind)];
  if (opts_.log_findings)
    FOAM_LOG_WARN << "par-verify [" << finding_kind_name(kind) << "] "
                  << detail;
  if (telemetry::Telemetry* tel = telemetry::current()) {
    tel->metrics().counter("verify.findings").add();
    tel->metrics()
        .counter(std::string("verify.finding.") + finding_kind_name(kind))
        .add();
    tel->tracer().instant(
        (std::string("verify:") + finding_kind_name(kind)).c_str());
  }
  if (allow_throw && mode() == VerifyMode::kStrict) {
    suppressed_.store(true, std::memory_order_relaxed);
    throw Error("par-verify [strict]: " + detail);
  }
}

std::vector<Finding> Verifier::findings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return findings_;
}

std::size_t Verifier::finding_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return findings_.size();
}

std::size_t Verifier::finding_count(FindingKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return kind_counts_[static_cast<int>(kind)];
}

}  // namespace verify
}  // namespace foam::par
