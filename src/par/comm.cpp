#include "par/comm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <tuple>

#include "telemetry/observe.hpp"
#include "telemetry/telemetry.hpp"

namespace foam::par {

namespace {

/// Reserved tags for runtime-internal traffic.
constexpr int kCollTag = kMaxUserTag + 1;   // collectives
constexpr int kSplitTag = kMaxUserTag + 2;  // communicator split bookkeeping

/// Set when any rank throws; blocked receives abort instead of deadlocking.
std::atomic<bool> g_abort{false};

/// Explicit transport choice (set_comm_transport); -1 = defer to env/default.
std::atomic<int> g_transport{-1};

/// Thrown by ranks released because *another* rank failed. run() prefers
/// rethrowing the root-cause exception over these sympathetic aborts.
struct AbortError : Error {
  using Error::Error;
};

CommTransport transport_for_run() {
  const int explicit_choice = g_transport.load(std::memory_order_relaxed);
  if (explicit_choice >= 0)
    return static_cast<CommTransport>(explicit_choice);
  if (const char* env = std::getenv("FOAM_PAR_TRANSPORT")) {
    if (std::strcmp(env, "mutex") == 0) return CommTransport::kMutex;
    FOAM_REQUIRE(env[0] == '\0' || std::strcmp(env, "spsc") == 0,
                 "FOAM_PAR_TRANSPORT must be 'spsc' or 'mutex', got '"
                     << env << "'");
  }
  return CommTransport::kSpsc;
}

/// One PAUSE-class instruction: tells the core this is a spin-wait (saves
/// power, yields pipeline slots to the sibling hyperthread).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Backoff policy between matching attempts of a lock-free blocking wait:
/// spin briefly (latency-critical window), then yield (oversubscribed
/// hosts), then sleep in slices that double up to 1 ms — bounded so abort
/// propagation and the deadlock detector stay responsive — polling the
/// detector at roughly the historic 50 ms mailbox cadence.
class SpinWaiter {
 public:
  void step(verify::Verifier* v, int me_global) {
    ++iter_;
    if (iter_ <= kSpins) {
      // Pausing only helps when the producer can run concurrently; on a
      // single-CPU host it just burns the timeslice the sender needs, so
      // skip straight to yielding there.
      if (!single_cpu()) {
        cpu_relax();
        return;
      }
      std::this_thread::yield();
      return;
    }
    if (iter_ <= kSpins + kYields) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    if (v != nullptr) {
      slept_us_ += sleep_us_;
      if (slept_us_ >= kPollEveryUs) {
        slept_us_ = 0;
        v->poll_deadlock(me_global);
      }
    }
    sleep_us_ = std::min(sleep_us_ * 2, kMaxSleepUs);
  }

 private:
  static bool single_cpu() {
    static const bool s = std::thread::hardware_concurrency() <= 1;
    return s;
  }

  static constexpr unsigned kSpins = 64;
  static constexpr unsigned kYields = 192;
  static constexpr int kMaxSleepUs = 1000;
  static constexpr long kPollEveryUs = 50 * 1000;

  unsigned iter_ = 0;
  int sleep_us_ = 50;
  long slept_us_ = 0;
};

/// The run's checker when it should observe events, else nullptr. One
/// relaxed atomic load on the kOff fast path.
verify::Verifier* active_verifier(detail::Context* ctx) {
  verify::Verifier& v = ctx->verifier;
  return v.enabled() && !v.suppressed() ? &v : nullptr;
}

void check_abort(detail::Context* ctx) {
  if (g_abort.load(std::memory_order_relaxed)) {
    // Stack unwinding on this rank now tears down comms and requests in
    // arbitrary mid-operation states; none of that is evidence.
    ctx->verifier.suppress();
    throw AbortError("parallel run aborted by failure on another rank");
  }
}

int local_of(const std::vector<int>& members, int g) {
  for (std::size_t r = 0; r < members.size(); ++r)
    if (members[r] == g) return static_cast<int>(r);
  FOAM_REQUIRE(false, "global rank " << g << " not in communicator");
  return -1;
}

/// Move everything the peers have published into this rank's arrival queue
/// (spsc transport). Called only by the owning rank's thread; after it
/// returns, every message sent (with release ordering) before the caller's
/// last synchronization point is visible in the queue.
void drain_inbox(detail::Context* ctx, int me_global) {
  auto& arrivals = ctx->inboxes[me_global].arrivals;
  for (int src = 0; src < ctx->nranks; ++src) {
    detail::Channel& ch = ctx->channel(src, me_global);
    detail::Message m;
    while (ch.pop_next(m)) arrivals.push_back(std::move(m));
  }
}

bool matches(const detail::RequestState& rs, const detail::Message& m) {
  if (m.comm_id != rs.comm_id) return false;
  if (rs.want_src_global != -1 && m.src_global != rs.want_src_global)
    return false;
  // A wildcard tag matches user traffic only: runtime-internal messages
  // (collective rounds, split bookkeeping) are never up for grabs.
  if (rs.tag == kAnyTag) return m.tag <= kMaxUserTag;
  return m.tag == rs.tag;
}

/// Complete \p rs with \p msg. Runs on the posting rank's thread. \p v (may
/// be null) merges the message's vector clock into rank \p me_global's.
void deliver(detail::RequestState& rs, detail::Message& msg,
             verify::Verifier* v, int me_global) {
  if (telemetry::Telemetry* tel = telemetry::current())
    tel->comm().on_recv(msg.src_global, msg.tag > kMaxUserTag,
                        msg.payload.size());
  if (v != nullptr) v->on_deliver(me_global, msg);
  if (rs.sink) {
    rs.sink(msg);
  } else {
    FOAM_REQUIRE(msg.payload.size() <= rs.max_bytes,
                 "message of " << msg.payload.size()
                               << " bytes overflows buffer of "
                               << rs.max_bytes);
    if (!msg.payload.empty()) {
      std::memcpy(rs.buffer, msg.payload.data(), msg.payload.size());
      detail::note_payload_copy(msg.payload.size());
    }
  }
  rs.status.source = local_of(*rs.members, msg.src_global);
  rs.status.tag = msg.tag;
  rs.status.bytes = msg.payload.size();
  rs.done = true;
}

/// The matching engine: walk pending receives in posting order; each takes
/// the earliest queued message of its match class (MPI matching semantics —
/// FIFO within a class, posting order across overlapping wildcard classes).
/// \p queue is the owning rank's arrival queue: the mutex transport calls
/// this under the mailbox lock, the spsc transport needs none (the queue is
/// owner-thread-only once drained). The pending list is owner-thread-only
/// on both.
void progress(std::deque<detail::Message>& queue,
              std::vector<std::shared_ptr<detail::RequestState>>& pend,
              verify::Verifier* v, int me_global) {
  for (auto pit = pend.begin(); pit != pend.end();) {
    detail::RequestState& rs = **pit;
    auto mit = std::find_if(
        queue.begin(), queue.end(),
        [&rs](const detail::Message& m) { return matches(rs, m); });
    if (mit == queue.end()) {
      ++pit;
      continue;
    }
    // Wildcard-race check: if another queued message was also eligible for
    // this wildcard receive, the match is an arbitration; the verifier
    // flags it unless the vector clocks order the two sends.
    if (v != nullptr && (rs.want_src_global == -1 || rs.tag == kAnyTag)) {
      for (auto oit = queue.begin(); oit != queue.end(); ++oit) {
        if (oit == mit || !matches(rs, *oit)) continue;
        if (v->check_wildcard_pair(me_global, rs, *mit, *oit)) break;
      }
    }
    deliver(rs, *mit, v, me_global);
    queue.erase(mit);
    pit = pend.erase(pit);
  }
}

/// RAII wait-for-graph registration around a blocking wait.
class WaitGuard {
 public:
  WaitGuard(verify::Verifier* v, int me_global, const char* what,
            std::vector<verify::WaitSpec> specs)
      : v_(v), me_(me_global) {
    if (v_ != nullptr) v_->enter_wait(me_, what, std::move(specs));
  }
  ~WaitGuard() {
    if (v_ != nullptr) v_->leave_wait(me_);
  }
  WaitGuard(const WaitGuard&) = delete;
  WaitGuard& operator=(const WaitGuard&) = delete;

 private:
  verify::Verifier* v_;
  int me_;
};

verify::WaitSpec spec_of(const detail::RequestState& rs) {
  return {rs.comm_id, rs.want_src_global, rs.tag, rs.members};
}

}  // namespace

const char* comm_transport_name(CommTransport t) {
  return t == CommTransport::kSpsc ? "spsc" : "mutex";
}

void set_comm_transport(CommTransport t) {
  g_transport.store(static_cast<int>(t), std::memory_order_relaxed);
}

CommTransport comm_transport() { return transport_for_run(); }

namespace detail {

void note_payload_copy(std::size_t bytes) {
  if (telemetry::Telemetry* tel = telemetry::current())
    tel->comm().payload_memcpy_bytes += bytes;
}

void note_zero_copy_recv() {
  if (telemetry::Telemetry* tel = telemetry::current())
    ++tel->comm().zero_copy_recvs;
}

}  // namespace detail

Request::~Request() {
  // use_count == 2 means this handle plus the pending list: the user is
  // dropping the only way to ever complete (or safely release the buffer
  // of) a still-pending receive. Copies of the handle keep the count above
  // 2 until the last one goes.
  if (state_ != nullptr && !state_->done && state_->verifier != nullptr &&
      state_.use_count() == 2)
    state_->verifier->on_abandoned_request(*state_);
}

Comm::~Comm() {
  if (ctx_ == nullptr) return;
  verify::Verifier* v = active_verifier(ctx_);
  if (v == nullptr) return;
  // Teardown audit of this communicator's state on this rank. Never
  // throws: findings recorded while unwinding or in scope exit must not
  // terminate the process (strict escalation happened at detection time).
  try {
    const int me = members_[rank_];
    auto& pend = ctx_->pending[me];
    if (ctx_->transport == CommTransport::kSpsc) {
      drain_inbox(ctx_, me);
      auto& arrivals = ctx_->inboxes[me].arrivals;
      progress(arrivals, pend, v, me);
      v->audit(me, "communicator teardown", comm_id_, arrivals, pend);
    } else {
      detail::Mailbox& box = ctx_->boxes[me];
      std::lock_guard<std::mutex> lock(box.mutex);
      progress(box.queue, pend, v, me);
      v->audit(me, "communicator teardown", comm_id_, box.queue, pend);
    }
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void Comm::set_verify(const CommVerifyOptions& opts) {
  ctx_->verifier.configure(opts);
  barrier();  // nobody proceeds until every rank observes the new mode
}

std::size_t Comm::verify_quiescent() {
  verify::Verifier& v = ctx_->verifier;
  if (!v.enabled()) return 0;
  barrier();
  // Sends are buffered (published to the destination at post), so after the
  // barrier every message any rank will ever have sent before this point is
  // already in its destination's channels or mailbox: whatever progress()
  // cannot match after a drain is a genuine leftover.
  const int me = members_[rank_];
  auto& pend = ctx_->pending[me];
  std::size_t fresh = 0;
  if (ctx_->transport == CommTransport::kSpsc) {
    drain_inbox(ctx_, me);
    auto& arrivals = ctx_->inboxes[me].arrivals;
    progress(arrivals, pend, active_verifier(ctx_), me);
    fresh = v.audit(me, "verify_quiescent", /*comm_id_filter=*/-1, arrivals,
                    pend);
  } else {
    detail::Mailbox& box = ctx_->boxes[me];
    std::lock_guard<std::mutex> lock(box.mutex);
    progress(box.queue, pend, active_verifier(ctx_), me);
    fresh = v.audit(me, "verify_quiescent", /*comm_id_filter=*/-1, box.queue,
                    pend);
  }
  const auto total = allreduce_scalar<long long>(
      static_cast<long long>(fresh), ReduceOp::kSum);
  if (total > 0 && v.mode() == VerifyMode::kStrict)
    throw Error("verify_quiescent: " + std::to_string(total) +
                " finding(s) across the run (see the per-rank diagnostics)");
  return static_cast<std::size_t>(total);
}

void Comm::stall(double max_seconds, const char* what) {
  const int me = members_[rank_];
  telemetry::observe_comm_op(what);
  verify::Verifier* v = active_verifier(ctx_);
  // Empty spec list: the deadlock detector treats this rank as blocked in a
  // wait nothing can release, so it anchors a definitely-deadlocked set as
  // soon as the stall outlives the detector's timeout. Messages meanwhile
  // pile up unread in this rank's channels/mailbox — exactly a wedged node.
  WaitGuard guard(v, me, what, {});
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    check_abort(ctx_);
    if (v != nullptr) v->poll_deadlock(me);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (waited >= max_seconds) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

Comm::CollScope::CollScope(Comm& c, verify::CollKind kind, int root,
                           std::uint64_t count, std::uint32_t elem, int op)
    : comm(c), prev(c.active_coll_) {
  desc.kind = static_cast<std::int32_t>(kind);
  desc.root = root;
  desc.count = count;
  desc.elem = elem;
  desc.op = op;
  desc.seq = ++c.coll_seq_;  // counted even when off: toggle-consistent
  desc.comm_id = c.comm_id_;
  c.active_coll_ = &desc;
}

Comm::CollScope::~CollScope() { comm.active_coll_ = prev; }

int Comm::local_rank_of_global(int g) const {
  return local_of(members_, g);
}

void Comm::post_message(int dst, int tag, detail::Message&& msg) {
  FOAM_REQUIRE(dst >= 0 && dst < size(), "send to rank " << dst << " of "
                                                         << size());
  check_abort(ctx_);
  msg.comm_id = comm_id_;
  msg.src_global = members_[rank_];
  msg.tag = tag;
  const std::size_t bytes = msg.payload.size();
  if (verify::Verifier* v = active_verifier(ctx_)) {
    if (active_coll_ != nullptr && tag > kMaxUserTag) {
      msg.coll = *active_coll_;
      msg.coll_hash = msg.coll.hash();
    }
    v->on_send(members_[rank_], msg);
  }
  const int dst_global = members_[dst];
  std::size_t depth = 0;
  if (ctx_->transport == CommTransport::kSpsc) {
    detail::Channel& ch = ctx_->channel(members_[rank_], dst_global);
    ch.push(std::move(msg));
    depth = ch.depth_estimate();
  } else {
    detail::Mailbox& box = ctx_->boxes[dst_global];
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.queue.push_back(std::move(msg));
      depth = box.queue.size();
    }
    box.cv.notify_all();
  }
  if (telemetry::Telemetry* tel = telemetry::current())
    tel->comm().on_send(dst_global, tag > kMaxUserTag, bytes, depth);
}

void Comm::send_internal(int dst, int tag, const void* data,
                         std::size_t bytes) {
  detail::Message msg;
  msg.payload.assign(data, bytes);
  if (telemetry::Telemetry* tel = telemetry::current()) {
    if (msg.payload.inlined())
      ++tel->comm().fastpath_msgs;
    else
      tel->comm().payload_memcpy_bytes += bytes;
  }
  post_message(dst, tag, std::move(msg));
}

Request Comm::isend_adopted(int dst, int tag, detail::Message&& msg) {
  FOAM_REQUIRE(tag >= 0 && tag <= kMaxUserTag, "user tag " << tag);
  const std::size_t bytes = msg.payload.size();
  if (telemetry::Telemetry* tel = telemetry::current())
    ++tel->comm().zero_copy_handoffs;
  post_message(dst, tag, std::move(msg));
  // Ownership handoff completes locally just like a buffered send.
  auto rs = std::make_shared<detail::RequestState>();
  rs->done = true;
  rs->status.tag = tag;
  rs->status.bytes = bytes;
  return Request(std::move(rs));
}

std::shared_ptr<detail::RequestState> Comm::make_recv_state(int src,
                                                            int tag) {
  FOAM_REQUIRE(src == kAnySource || (src >= 0 && src < size()),
               "recv from rank " << src);
  auto rs = std::make_shared<detail::RequestState>();
  rs->comm_id = comm_id_;
  rs->want_src_global = (src == kAnySource) ? -1 : members_[src];
  rs->tag = tag;
  rs->members = &members_;
  rs->owner_global = members_[rank_];
  rs->verifier = &ctx_->verifier;
  return rs;
}

void Comm::post_recv_state(
    const std::shared_ptr<detail::RequestState>& rs) {
  // Posting order is matching priority; the list is owner-thread-only.
  ctx_->pending[members_[rank_]].push_back(rs);
}

void Comm::wait_state(detail::RequestState& rs, const char* what) {
  const int me = members_[rank_];
  auto& pend = ctx_->pending[me];
  // RAII wait marker: while this frame is live the rank is parked in a
  // tracked wait, so the watchdog blames whoever it is waiting for.
  const telemetry::ScopedCommWait obs_wait(what);
  telemetry::Telemetry* tel = telemetry::current();
  std::chrono::steady_clock::time_point t0;
  if (tel != nullptr) t0 = std::chrono::steady_clock::now();
  verify::Verifier* v = rs.done ? nullptr : active_verifier(ctx_);
  WaitGuard guard(v, me, what, v != nullptr
                                   ? std::vector<verify::WaitSpec>{spec_of(rs)}
                                   : std::vector<verify::WaitSpec>{});
  if (ctx_->transport == CommTransport::kSpsc) {
    auto& arrivals = ctx_->inboxes[me].arrivals;
    SpinWaiter spin;
    for (;;) {
      check_abort(ctx_);
      drain_inbox(ctx_, me);
      if (tel != nullptr) tel->comm().on_mailbox_depth(arrivals.size());
      progress(arrivals, pend, active_verifier(ctx_), me);
      if (rs.done) break;
      spin.step(v, me);
    }
  } else {
    detail::Mailbox& box = ctx_->boxes[me];
    std::unique_lock<std::mutex> lock(box.mutex);
    for (;;) {
      check_abort(ctx_);
      if (tel != nullptr) tel->comm().on_mailbox_depth(box.queue.size());
      progress(box.queue, pend, active_verifier(ctx_), me);
      if (rs.done) break;
      if (v != nullptr) v->poll_deadlock(me);
      box.cv.wait_for(lock, std::chrono::milliseconds(50));
    }
  }
  if (tel != nullptr) {
    tel->comm().wait_seconds.record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    ++tel->comm().requests_waited;
  }
}

detail::Message Comm::recv_internal(int src, int tag) {
  auto rs = make_recv_state(src, tag);
  detail::Message out;
  rs->sink = [&out](detail::Message& m) { out = std::move(m); };
  post_recv_state(rs);
  wait_state(*rs, active_coll_ != nullptr
                      ? verify::coll_kind_name(
                            static_cast<verify::CollKind>(active_coll_->kind))
                      : "recv");
  if (active_coll_ != nullptr && out.tag > kMaxUserTag)
    if (verify::Verifier* v = active_verifier(ctx_))
      v->check_collective(members_[rank_], *active_coll_, out);
  return out;
}

detail::Message Comm::recv_coll_sized(int src, std::size_t bytes,
                                      const char* what) {
  detail::Message msg = recv_internal(src, kCollTag);
  FOAM_REQUIRE(msg.payload.size() == bytes,
               what << " size mismatch from rank " << src << ": "
                    << msg.payload.size() << " vs " << bytes);
  return msg;
}

void Comm::recv_coll_into(int src, void* dst, std::size_t bytes,
                          const char* what) {
  detail::Message msg = recv_coll_sized(src, bytes, what);
  // The payload is exclusively ours here (the Message just came off the
  // wire), so this is the transfer's only copy; adopting raw destination
  // pointers is impossible, which is why collectives stop at one memcpy
  // while vector rendezvous (isend_move → recv_vec) reaches zero.
  if (bytes > 0) {
    std::memcpy(dst, msg.payload.data(), bytes);
    detail::note_payload_copy(bytes);
  }
}

void Comm::send_bytes(int dst, int tag, const void* data, std::size_t bytes) {
  FOAM_REQUIRE(tag >= 0 && tag <= kMaxUserTag, "user tag " << tag);
  send_internal(dst, tag, data, bytes);
}

RecvStatus Comm::recv_bytes(int src, int tag, void* data,
                            std::size_t max_bytes) {
  FOAM_REQUIRE(tag == kAnyTag || (tag >= 0 && tag <= kMaxUserTag),
               "user tag " << tag);
  auto rs = make_recv_state(src, tag);
  rs->buffer = data;
  rs->max_bytes = max_bytes;
  post_recv_state(rs);
  wait_state(*rs, "recv");
  return rs->status;
}

Request Comm::isend_bytes(int dst, int tag, const void* data,
                          std::size_t bytes) {
  FOAM_REQUIRE(tag >= 0 && tag <= kMaxUserTag, "user tag " << tag);
  // Buffered: the payload is published to the destination now, so the
  // request is born complete and the source buffer is immediately free.
  send_internal(dst, tag, data, bytes);
  auto rs = std::make_shared<detail::RequestState>();
  rs->done = true;
  rs->status.tag = tag;
  rs->status.bytes = bytes;
  return Request(std::move(rs));
}

Request Comm::irecv_bytes(int src, int tag, void* data,
                          std::size_t max_bytes) {
  FOAM_REQUIRE(tag == kAnyTag || (tag >= 0 && tag <= kMaxUserTag),
               "user tag " << tag);
  auto rs = make_recv_state(src, tag);
  rs->buffer = data;
  rs->max_bytes = max_bytes;
  post_recv_state(rs);
  return Request(std::move(rs));
}

RecvStatus Comm::wait(Request& r) {
  if (!r.state_) return RecvStatus{};
  wait_state(*r.state_);
  const RecvStatus st = r.state_->status;
  r.state_.reset();
  return st;
}

bool Comm::test(Request& r, RecvStatus* st) {
  if (!r.state_) return true;
  if (!r.state_->done) {
    const int me = members_[rank_];
    auto& pend = ctx_->pending[me];
    if (ctx_->transport == CommTransport::kSpsc) {
      check_abort(ctx_);
      drain_inbox(ctx_, me);
      progress(ctx_->inboxes[me].arrivals, pend, active_verifier(ctx_), me);
    } else {
      detail::Mailbox& box = ctx_->boxes[me];
      std::lock_guard<std::mutex> lock(box.mutex);
      check_abort(ctx_);
      progress(box.queue, pend, active_verifier(ctx_), me);
    }
  }
  if (!r.state_->done) return false;
  if (st) *st = r.state_->status;
  r.state_.reset();
  return true;
}

void Comm::waitall(std::span<Request> rs) {
  for (Request& r : rs) wait(r);
}

int Comm::waitany(std::span<Request> rs, RecvStatus* st) {
  bool any = false;
  for (const Request& r : rs) any = any || r.valid();
  if (!any) return -1;
  const int me = members_[rank_];
  auto& pend = ctx_->pending[me];
  telemetry::Telemetry* tel = telemetry::current();
  std::chrono::steady_clock::time_point t0;
  if (tel != nullptr) t0 = std::chrono::steady_clock::now();
  verify::Verifier* v = active_verifier(ctx_);
  std::vector<verify::WaitSpec> specs;
  if (v != nullptr)
    for (const Request& r : rs)
      if (r.valid() && !r.state_->done) specs.push_back(spec_of(*r.state_));
  WaitGuard guard(v, me, "waitany", std::move(specs));
  const auto scan = [&]() -> int {
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (!rs[i].valid() || !rs[i].state_->done) continue;
      if (st) *st = rs[i].state_->status;
      rs[i].state_.reset();
      if (tel != nullptr) {
        tel->comm().wait_seconds.record(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count());
        ++tel->comm().requests_waited;
      }
      return static_cast<int>(i);
    }
    return -1;
  };
  if (ctx_->transport == CommTransport::kSpsc) {
    auto& arrivals = ctx_->inboxes[me].arrivals;
    SpinWaiter spin;
    for (;;) {
      check_abort(ctx_);
      drain_inbox(ctx_, me);
      if (tel != nullptr) tel->comm().on_mailbox_depth(arrivals.size());
      progress(arrivals, pend, active_verifier(ctx_), me);
      const int i = scan();
      if (i >= 0) return i;
      spin.step(v, me);
    }
  }
  detail::Mailbox& box = ctx_->boxes[me];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    check_abort(ctx_);
    if (tel != nullptr) tel->comm().on_mailbox_depth(box.queue.size());
    progress(box.queue, pend, active_verifier(ctx_), me);
    const int i = scan();
    if (i >= 0) return i;
    if (v != nullptr) v->poll_deadlock(me);
    box.cv.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void Comm::barrier() {
  if (size() == 1) return;
  CollScope scope(*this, verify::CollKind::kBarrier, 0, 0, 0);
  const char token = 0;
  if (rank_ == 0) {
    // Receive from each rank specifically: per-source FIFO keeps successive
    // collective rounds from stealing each other's messages.
    telemetry::Telemetry* tel = telemetry::current();
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 1; r < size(); ++r) recv_internal(r, kCollTag);
    if (tel != nullptr)
      tel->comm().collective_skew_seconds.record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    for (int r = 1; r < size(); ++r) send_internal(r, kCollTag, &token, 0);
  } else {
    send_internal(0, kCollTag, &token, 0);
    recv_internal(0, kCollTag);
  }
}

void Comm::bcast_bytes(void* data, std::size_t bytes, int root) {
  FOAM_REQUIRE(root >= 0 && root < size(), "root " << root);
  if (size() == 1) return;
  CollScope scope(*this, verify::CollKind::kBcast, root, bytes, 1);
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send_internal(r, kCollTag, data, bytes);
  } else {
    recv_coll_into(root, data, bytes, "bcast");
  }
}

void Comm::reduce_impl(const void* in, void* out, std::size_t elem_bytes,
                       std::size_t count, detail::CombineFn combine,
                       ReduceOp op, int root) {
  FOAM_REQUIRE(root >= 0 && root < size(), "root " << root);
  CollScope scope(*this, verify::CollKind::kReduce, root, count,
                  static_cast<std::uint32_t>(elem_bytes),
                  static_cast<int>(op));
  const std::size_t bytes = elem_bytes * count;
  if (rank_ == root) {
    // in == out is allowed (in-place reduction over the caller's storage).
    if (bytes > 0 && out != in) std::memcpy(out, in, bytes);
    // Receive in rank order: deterministic combination (bitwise-reproducible
    // sums) and no cross-round message mixing.
    telemetry::Telemetry* tel = telemetry::current();
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      detail::Message msg = recv_coll_sized(r, bytes, "reduce");
      combine(out, msg.payload.data(), count, op);
    }
    if (tel != nullptr)
      tel->comm().collective_skew_seconds.record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
  } else {
    send_internal(root, kCollTag, in, bytes);
  }
}

void Comm::gather(const double* in, std::size_t count, double* out,
                  int root) {
  CollScope scope(*this, verify::CollKind::kGather, root, count,
                  sizeof(double));
  if (rank_ == root) {
    std::copy(in, in + count, out + static_cast<std::size_t>(root) * count);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv_coll_into(r, out + static_cast<std::size_t>(r) * count,
                     count * sizeof(double), "gather");
    }
  } else {
    send_internal(root, kCollTag, in, count * sizeof(double));
  }
}

void Comm::scatter(const double* in, std::size_t count, double* out,
                   int root) {
  FOAM_REQUIRE(root >= 0 && root < size(), "root " << root);
  CollScope scope(*this, verify::CollKind::kScatter, root, count,
                  sizeof(double));
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) {
        std::copy(in + static_cast<std::size_t>(r) * count,
                  in + static_cast<std::size_t>(r + 1) * count, out);
      } else {
        send_internal(r, kCollTag, in + static_cast<std::size_t>(r) * count,
                      count * sizeof(double));
      }
    }
  } else {
    recv_coll_into(root, out, count * sizeof(double), "scatter");
  }
}

void Comm::allgather(const double* in, std::size_t count, double* out) {
  gather(in, count, out, 0);
  bcast_bytes(out, static_cast<std::size_t>(size()) * count * sizeof(double),
              0);
}

void Comm::gatherv(const std::vector<double>& in, std::vector<double>& out,
                   const std::vector<int>& counts, int root) {
  FOAM_REQUIRE(static_cast<int>(counts.size()) == size(),
               "gatherv counts size " << counts.size());
  FOAM_REQUIRE(static_cast<int>(in.size()) == counts[rank_],
               "gatherv local size " << in.size() << " vs declared "
                                     << counts[rank_]);
  // The per-rank counts must agree across ranks; fold them into the
  // signature's count field so a disagreement shows up as a mismatch.
  std::uint64_t counts_hash = 1469598103934665603ULL;
  for (const int c : counts) {
    counts_hash ^= static_cast<std::uint64_t>(static_cast<std::int64_t>(c));
    counts_hash *= 1099511628211ULL;
  }
  CollScope scope(*this, verify::CollKind::kGatherv, root, counts_hash,
                  sizeof(double));
  if (rank_ == root) {
    std::size_t total = 0;
    std::vector<std::size_t> offsets(size());
    for (int r = 0; r < size(); ++r) {
      offsets[r] = total;
      total += static_cast<std::size_t>(counts[r]);
    }
    out.resize(total);
    std::copy(in.begin(), in.end(), out.begin() + offsets[root]);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv_coll_into(r, out.data() + offsets[r],
                     static_cast<std::size_t>(counts[r]) * sizeof(double),
                     "gatherv");
    }
  } else {
    send_internal(root, kCollTag, in.data(), in.size() * sizeof(double));
  }
}

void Comm::alltoall(const double* in, double* out,
                    std::size_t count_per_rank) {
  CollScope scope(*this, verify::CollKind::kAlltoall, 0, count_per_rank,
                  sizeof(double));
  const std::size_t c = count_per_rank;
  // Local block first, then exchange with every peer.
  std::copy(in + static_cast<std::size_t>(rank_) * c,
            in + static_cast<std::size_t>(rank_ + 1) * c,
            out + static_cast<std::size_t>(rank_) * c);
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    send_internal(r, kCollTag, in + static_cast<std::size_t>(r) * c,
                  c * sizeof(double));
  }
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    recv_coll_into(r, out + static_cast<std::size_t>(r) * c,
                   c * sizeof(double), "alltoall");
  }
}

std::unique_ptr<Comm> Comm::split(int color, int key) {
  // color/key legitimately differ per rank, so the signature carries only
  // the entry itself (kind + sequence + communicator).
  CollScope scope(*this, verify::CollKind::kSplit, 0, 0, 0);
  struct Entry {
    int color;
    int key;
    int parent_rank;
  };
  Entry mine{color, key, rank_};
  if (rank_ == 0) {
    std::vector<Entry> all(size());
    all[0] = mine;
    for (int r = 1; r < size(); ++r) {
      detail::Message msg = recv_internal(r, kSplitTag);
      FOAM_REQUIRE(msg.payload.size() == sizeof(Entry), "split size");
      Entry e;
      std::memcpy(&e, msg.payload.data(), sizeof(Entry));
      all[r] = e;
    }
    // Group by color; order within a group by (key, parent_rank).
    std::map<int, std::vector<Entry>> groups;
    for (const Entry& e : all)
      if (e.color >= 0) groups[e.color].push_back(e);
    std::map<int, std::pair<int, std::vector<int>>> by_color;  // id, members
    for (auto& [c, es] : groups) {
      std::sort(es.begin(), es.end(), [](const Entry& a, const Entry& b) {
        return std::tie(a.key, a.parent_rank) < std::tie(b.key, b.parent_rank);
      });
      int new_id = 0;
      {
        std::lock_guard<std::mutex> lock(ctx_->comm_id_mutex);
        new_id = ctx_->next_comm_id++;
      }
      std::vector<int> members;
      for (const Entry& e : es) members.push_back(members_[e.parent_rank]);
      by_color[c] = {new_id, std::move(members)};
    }
    // Reply to each rank with (new_id, nmembers, members...[global], my_rank)
    // encoded as int32s; new_id = -1 means "no sub-communicator".
    std::unique_ptr<Comm> result;
    for (int r = 0; r < size(); ++r) {
      const Entry& e = all[r];
      std::vector<int> reply;
      if (e.color < 0) {
        reply = {-1};
      } else {
        const auto& [id, members] = by_color[e.color];
        int my_new_rank = -1;
        for (std::size_t m = 0; m < members.size(); ++m)
          if (members[m] == members_[r]) my_new_rank = static_cast<int>(m);
        reply.push_back(id);
        reply.push_back(static_cast<int>(members.size()));
        reply.insert(reply.end(), members.begin(), members.end());
        reply.push_back(my_new_rank);
      }
      if (r == 0) {
        if (reply[0] >= 0) {
          std::vector<int> members(reply.begin() + 2,
                                   reply.begin() + 2 + reply[1]);
          result.reset(new Comm(ctx_, reply[0], members, reply.back()));
        }
      } else {
        send_internal(r, kSplitTag, reply.data(),
                      reply.size() * sizeof(int));
      }
    }
    return result;
  }
  send_internal(0, kSplitTag, &mine, sizeof(Entry));
  detail::Message msg = recv_internal(0, kSplitTag);
  std::vector<int> reply(msg.payload.size() / sizeof(int));
  std::memcpy(reply.data(), msg.payload.data(), msg.payload.size());
  if (reply[0] < 0) return nullptr;
  std::vector<int> members(reply.begin() + 2, reply.begin() + 2 + reply[1]);
  return std::unique_ptr<Comm>(
      new Comm(ctx_, reply[0], members, reply.back()));
}

void run(int nranks, const std::function<void(Comm&)>& fn) {
  FOAM_REQUIRE(nranks > 0, "nranks=" << nranks);
  g_abort.store(false, std::memory_order_relaxed);
  detail::Context ctx(nranks, transport_for_run());
  // Every run honors FOAM_PAR_VERIFY out of the box; drivers may override
  // through Comm::set_verify.
  ctx.verifier.configure(CommVerifyOptions::from_env());
  std::vector<int> world(nranks);
  for (int r = 0; r < nranks; ++r) world[r] = r;

  std::vector<std::exception_ptr> errors(nranks);
  std::vector<std::thread> threads;
  threads.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r]() {
      Comm comm(&ctx, /*comm_id=*/0, world, r);
      try {
        fn(comm);
      } catch (...) {
        ctx.verifier.suppress();
        errors[r] = std::current_exception();
        // Flight-recorder backstop for failures that escape without an
        // observer-attached frame; AbortError is sympathetic, not a cause.
        try {
          std::rethrow_exception(errors[r]);
        } catch (const AbortError&) {  // NOLINT(bugprone-empty-catch)
        } catch (const std::exception& e) {
          telemetry::observe_abort(e.what());
        } catch (...) {
          telemetry::observe_abort("unknown exception in rank " +
                                   std::to_string(r));
        }
        g_abort.store(true, std::memory_order_relaxed);
        // Mutex transport blocks in cv waits; wake everyone. (The spsc
        // transport needs nothing: its waits poll g_abort.)
        for (auto& box : ctx.boxes) box.cv.notify_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  const bool aborted = g_abort.load(std::memory_order_relaxed);
  g_abort.store(false, std::memory_order_relaxed);
  if (aborted) {
    // Prefer the root cause: ranks released by another rank's failure
    // throw AbortError, which only wins when no rank has anything better.
    const auto is_sympathetic = [](const std::exception_ptr& e) {
      try {
        std::rethrow_exception(e);
      } catch (const AbortError&) {
        return true;
      } catch (...) {
        return false;
      }
    };
    std::exception_ptr chosen;
    for (int r = 0; r < nranks; ++r) {
      if (!errors[r]) continue;
      if (!chosen) chosen = errors[r];
      if (!is_sympathetic(errors[r])) {
        chosen = errors[r];
        break;
      }
    }
    if (chosen) std::rethrow_exception(chosen);
  }
}

}  // namespace foam::par
