#pragma once

/// \file timers.hpp
/// Per-rank activity instrumentation.
///
/// Figure 2 of the paper shows, for every SP processor, how one simulated
/// day divides into atmosphere (green), coupler (red), ocean (blue) and idle
/// (purple) time. ActivityRecorder captures exactly that: each rank records
/// a sequence of (region, start, end) segments against a common wall clock;
/// the Fig. 2 bench gathers them and renders/aggregates the timeline.

#include <chrono>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace foam::par {

/// Activity classes matching the paper's colour key, plus an explicit
/// communication-wait class: time a rank spends blocked on an in-flight
/// message (Comm::wait / a blocking exchange receive), as opposed to kIdle
/// time spent waiting inside collectives for slower peers. Separating the
/// two makes the comm/compute-overlap win directly visible in the Fig. 2
/// and scaling benches.
enum class Region : int {
  kAtmosphere = 0,  // green
  kCoupler = 1,     // red
  kOcean = 2,       // blue
  kIdle = 3,        // purple
  kOther = 4,
  kCommWait = 5,    // grey: blocked on message completion
};

inline constexpr int kRegionCount = 6;

const char* region_name(Region r);

struct Segment {
  Region region;
  double t0;  ///< seconds since recorder epoch
  double t1;
};

/// Records activity segments for one rank. Not thread-safe: one recorder per
/// rank, used only from that rank's thread.
class ActivityRecorder {
 public:
  ActivityRecorder();

  /// Reset the epoch; subsequent segments are relative to now.
  void reset();

  /// Begin a region; regions do not nest (ending implicitly when the next
  /// begins or end_region is called).
  void begin(Region r);
  void end();

  /// Seconds since the epoch.
  double now() const;

  const std::vector<Segment>& segments() const { return segments_; }

  /// Total time attributed to \p r.
  double total(Region r) const;

  /// Sum over all recorded segments.
  double total_recorded() const;

  /// Serialize to a flat double vector (triples of region,t0,t1) for
  /// gathering across ranks with Comm::gatherv.
  std::vector<double> serialize() const;
  static std::vector<Segment> deserialize(const double* data,
                                          std::size_t count);

 private:
  std::chrono::steady_clock::time_point epoch_;
  bool open_ = false;
  Region open_region_ = Region::kOther;
  double open_t0_ = 0.0;
  std::vector<Segment> segments_;
};

/// RAII helper: begins \p r on construction, ends on destruction.
class ScopedRegion {
 public:
  ScopedRegion(ActivityRecorder& rec, Region r) : rec_(rec) { rec_.begin(r); }
  ~ScopedRegion() { rec_.end(); }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  ActivityRecorder& rec_;
};

/// Simple wall-clock stopwatch for throughput measurement.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace foam::par
