#pragma once

/// \file timers.hpp
/// Per-rank activity instrumentation (the flat Fig. 2 view).
///
/// Figure 2 of the paper shows, for every SP processor, how one simulated
/// day divides into atmosphere (green), coupler (red), ocean (blue) and idle
/// (purple) time. ActivityRecorder captures exactly that: each rank records
/// a sequence of (region, start, end) segments against a common wall clock;
/// the Fig. 2 bench gathers them and renders/aggregates the timeline.
///
/// This is the *flat* layer: one region active at a time, no nesting. The
/// hierarchical tracer in telemetry/telemetry.hpp generalizes it to named,
/// nesting-aware spans and embeds an ActivityRecorder as its lossless
/// downgrade, which is why everything here is header-only (the telemetry
/// library builds on it without a link cycle through foam_par).

#include <ctime>

#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace foam::par {

/// Per-thread CPU seconds (CLOCK_THREAD_CPUTIME_ID). Unlike the wall
/// clocks below, this only advances while the calling thread executes —
/// not while it sleeps on a condition variable or loses the core to
/// another rank — so busy-time measurements taken with it stay meaningful
/// on hosts with fewer cores than ranks.
inline double thread_cpu_now() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Activity classes matching the paper's colour key, plus an explicit
/// communication-wait class: time a rank spends blocked on an in-flight
/// message (Comm::wait / a blocking exchange receive), as opposed to kIdle
/// time spent waiting inside collectives for slower peers. Separating the
/// two makes the comm/compute-overlap win directly visible in the Fig. 2
/// and scaling benches.
enum class Region : int {
  kAtmosphere = 0,  // green
  kCoupler = 1,     // red
  kOcean = 2,       // blue
  kIdle = 3,        // purple
  kOther = 4,
  kCommWait = 5,    // grey: blocked on message completion
};

inline constexpr int kRegionCount = 6;

inline const char* region_name(Region r) {
  switch (r) {
    case Region::kAtmosphere:
      return "atmosphere";
    case Region::kCoupler:
      return "coupler";
    case Region::kOcean:
      return "ocean";
    case Region::kIdle:
      return "idle";
    case Region::kOther:
      return "other";
    case Region::kCommWait:
      return "comm-wait";
  }
  return "?";
}

struct Segment {
  Region region;
  double t0;  ///< seconds since recorder epoch
  double t1;
};

/// Records activity segments for one rank. Not thread-safe: one recorder per
/// rank, used only from that rank's thread.
class ActivityRecorder {
 public:
  ActivityRecorder() { reset(); }

  /// Reset the epoch; subsequent segments are relative to now.
  void reset() {
    epoch_ = std::chrono::steady_clock::now();
    open_ = false;
    segments_.clear();
  }

  /// Begin a region; regions do not nest (ending implicitly when the next
  /// begins or end_region is called).
  void begin(Region r) {
    const double t = now();
    if (open_) segments_.push_back({open_region_, open_t0_, t});
    open_ = true;
    open_region_ = r;
    open_t0_ = t;
  }

  void end() {
    if (!open_) return;
    segments_.push_back({open_region_, open_t0_, now()});
    open_ = false;
  }

  /// Seconds since the epoch.
  double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  const std::vector<Segment>& segments() const { return segments_; }

  /// Total time attributed to \p r.
  double total(Region r) const {
    double sum = 0.0;
    for (const Segment& s : segments_)
      if (s.region == r) sum += s.t1 - s.t0;
    return sum;
  }

  /// Sum over all recorded segments.
  double total_recorded() const {
    double sum = 0.0;
    for (const Segment& s : segments_) sum += s.t1 - s.t0;
    return sum;
  }

  /// Serialize to a flat double vector (triples of region,t0,t1) for
  /// gathering across ranks with Comm::gatherv.
  std::vector<double> serialize() const {
    std::vector<double> out;
    out.reserve(segments_.size() * 3);
    for (const Segment& s : segments_) {
      out.push_back(static_cast<double>(static_cast<int>(s.region)));
      out.push_back(s.t0);
      out.push_back(s.t1);
    }
    return out;
  }

  /// Decode a gathered segment stream. The bytes crossed rank boundaries,
  /// so nothing is trusted: throws foam::Error on a length that is not a
  /// whole number of triples, a region value that is not one of the Region
  /// enumerators, or non-finite / reversed segment times.
  static std::vector<Segment> deserialize(const double* data,
                                          std::size_t count) {
    FOAM_REQUIRE(count % 3 == 0, "segment stream length "
                                     << count
                                     << " is not a multiple of 3");
    std::vector<Segment> out;
    out.reserve(count / 3);
    for (std::size_t i = 0; i < count; i += 3) {
      const double rv = data[i];
      const int ri = static_cast<int>(rv);
      FOAM_REQUIRE(std::isfinite(rv) && rv == static_cast<double>(ri) &&
                       ri >= 0 && ri < kRegionCount,
                   "segment stream: invalid region value "
                       << rv << " in triple " << i / 3);
      Segment s;
      s.region = static_cast<Region>(ri);
      s.t0 = data[i + 1];
      s.t1 = data[i + 2];
      FOAM_REQUIRE(std::isfinite(s.t0) && std::isfinite(s.t1) &&
                       s.t1 >= s.t0,
                   "segment stream: invalid times [" << s.t0 << ", " << s.t1
                                                     << ") in triple "
                                                     << i / 3);
      out.push_back(s);
    }
    return out;
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  bool open_ = false;
  Region open_region_ = Region::kOther;
  double open_t0_ = 0.0;
  std::vector<Segment> segments_;
};

/// RAII helper: begins \p r on construction, ends on destruction.
class ScopedRegion {
 public:
  ScopedRegion(ActivityRecorder& rec, Region r) : rec_(rec) { rec_.begin(r); }
  ~ScopedRegion() { rec_.end(); }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  ActivityRecorder& rec_;
};

/// Simple wall-clock stopwatch for throughput measurement.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace foam::par
