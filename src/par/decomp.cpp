#include "par/decomp.hpp"

#include <algorithm>

namespace foam::par {

Range block_range(int n, int nranks, int r) {
  FOAM_REQUIRE(n >= 0 && nranks > 0 && r >= 0 && r < nranks,
               "block_range(" << n << "," << nranks << "," << r << ")");
  const int base = n / nranks;
  const int extra = n % nranks;
  const int lo = r * base + std::min(r, extra);
  const int count = base + (r < extra ? 1 : 0);
  return {lo, lo + count};
}

int block_owner(int n, int nranks, int i) {
  FOAM_REQUIRE(i >= 0 && i < n, "block_owner item " << i << " of " << n);
  // Invert the block_range formula by scanning; nranks is small in FOAM.
  for (int r = 0; r < nranks; ++r)
    if (block_range(n, nranks, r).contains(i)) return r;
  FOAM_REQUIRE(false, "unreachable");
  return -1;
}

std::vector<int> block_counts(int n, int nranks) {
  std::vector<int> counts(nranks);
  for (int r = 0; r < nranks; ++r) counts[r] = block_range(n, nranks, r).count();
  return counts;
}

std::vector<std::vector<int>> paired_latitudes(int ny, int nranks) {
  FOAM_REQUIRE(ny % 2 == 0, "ny=" << ny << " must be even");
  FOAM_REQUIRE(nranks >= 1 && nranks <= ny / 2,
               "nranks=" << nranks << " for ny=" << ny);
  // Distribute the ny/2 mirror pairs in balanced contiguous blocks; a rank
  // owns both members of each of its pairs, so Gaussian-weight load is
  // symmetric about the equator on every rank.
  std::vector<std::vector<int>> owned(nranks);
  for (int r = 0; r < nranks; ++r) {
    const Range pairs = block_range(ny / 2, nranks, r);
    for (int j = pairs.lo; j < pairs.hi; ++j) {
      owned[r].push_back(j);
      owned[r].push_back(ny - 1 - j);
    }
    std::sort(owned[r].begin(), owned[r].end());
  }
  return owned;
}

}  // namespace foam::par
