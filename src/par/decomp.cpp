#include "par/decomp.hpp"

#include <algorithm>

namespace foam::par {

Range block_range(int n, int nranks, int r) {
  FOAM_REQUIRE(n >= 0 && nranks > 0 && r >= 0 && r < nranks,
               "block_range(" << n << "," << nranks << "," << r << ")");
  const int base = n / nranks;
  const int extra = n % nranks;
  const int lo = r * base + std::min(r, extra);
  const int count = base + (r < extra ? 1 : 0);
  return {lo, lo + count};
}

int block_owner(int n, int nranks, int i) {
  FOAM_REQUIRE(i >= 0 && i < n, "block_owner item " << i << " of " << n);
  // Invert the block_range formula by scanning; nranks is small in FOAM.
  for (int r = 0; r < nranks; ++r)
    if (block_range(n, nranks, r).contains(i)) return r;
  FOAM_REQUIRE(false, "unreachable");
  return -1;
}

std::vector<int> block_counts(int n, int nranks) {
  std::vector<int> counts(nranks);
  for (int r = 0; r < nranks; ++r) counts[r] = block_range(n, nranks, r).count();
  return counts;
}

Decomp2D::Decomp2D(int nx, int ny, int px, int py)
    : nx_(nx), ny_(ny), px_(px), py_(py) {
  FOAM_REQUIRE(nx >= 1 && ny >= 1, "Decomp2D grid " << nx << "x" << ny);
  FOAM_REQUIRE(px >= 1 && py >= 1 && px <= nx && py <= ny,
               "Decomp2D rank grid " << px << "x" << py << " on a " << nx
                                     << "x" << ny << " domain");
}

void Decomp2D::check_rank(int rank) const {
  FOAM_REQUIRE(rank >= 0 && rank < size(),
               "Decomp2D rank " << rank << " of " << size());
}

int Decomp2D::pi_of(int rank) const {
  check_rank(rank);
  return rank % px_;
}

int Decomp2D::pj_of(int rank) const {
  check_rank(rank);
  return rank / px_;
}

int Decomp2D::rank_of(int pi, int pj) const {
  FOAM_REQUIRE(pi >= 0 && pi < px_ && pj >= 0 && pj < py_,
               "Decomp2D coords (" << pi << "," << pj << ") on a " << px_
                                   << "x" << py_ << " rank grid");
  return pj * px_ + pi;
}

Range Decomp2D::x_range(int pi) const { return block_range(nx_, px_, pi); }

Range Decomp2D::y_range(int pj) const { return block_range(ny_, py_, pj); }

int Decomp2D::west_of(int rank) const {
  if (px_ == 1) return -1;
  const int pi = pi_of(rank);
  return rank_of((pi + px_ - 1) % px_, pj_of(rank));
}

int Decomp2D::east_of(int rank) const {
  if (px_ == 1) return -1;
  const int pi = pi_of(rank);
  return rank_of((pi + 1) % px_, pj_of(rank));
}

int Decomp2D::south_of(int rank) const {
  const int pj = pj_of(rank);
  return pj == 0 ? -1 : rank_of(pi_of(rank), pj - 1);
}

int Decomp2D::north_of(int rank) const {
  const int pj = pj_of(rank);
  return pj == py_ - 1 ? -1 : rank_of(pi_of(rank), pj + 1);
}

std::vector<std::vector<int>> paired_latitudes(int ny, int nranks) {
  FOAM_REQUIRE(ny % 2 == 0, "ny=" << ny << " must be even");
  FOAM_REQUIRE(nranks >= 1 && nranks <= ny / 2,
               "nranks=" << nranks << " for ny=" << ny);
  // Distribute the ny/2 mirror pairs in balanced contiguous blocks; a rank
  // owns both members of each of its pairs, so Gaussian-weight load is
  // symmetric about the equator on every rank.
  std::vector<std::vector<int>> owned(nranks);
  for (int r = 0; r < nranks; ++r) {
    const Range pairs = block_range(ny / 2, nranks, r);
    for (int j = pairs.lo; j < pairs.hi; ++j) {
      owned[r].push_back(j);
      owned[r].push_back(ny - 1 - j);
    }
    std::sort(owned[r].begin(), owned[r].end());
  }
  return owned;
}

}  // namespace foam::par
