#pragma once

/// \file soil.hpp
/// The FOAM land surface: four-layer soil heat diffusion plus the
/// Manabe/Budyko bucket hydrology (paper §4.3).
///
/// "The land surface in FOAM (and in CCM2) is represented by a four-layer
/// diffusion model with heat capacities, thicknesses and thermal
/// conductivities specified for each layer. Soil types vary in the
/// horizontal direction, with 5 distinct types... Precipitation is added
/// to a 15 cm soil moisture box or to the snow cover... Evaporation
/// removes water from the box and any excess over 15 cm is designated as
/// runoff and sent to the river model. ... Snow depths greater than 1 m
/// liquid water equivalent are also sent to the river model."

#include "base/field.hpp"
#include "base/history.hpp"
#include "data/earth.hpp"
#include "numerics/grid.hpp"

namespace foam::land {

/// Thermal and radiative properties of one soil type.
struct SoilProperties {
  double conductivity;   ///< [W/(m K)]
  double heat_capacity;  ///< volumetric [J/(m^3 K)]
  double albedo;         ///< snow-free broadband albedo
  double roughness;      ///< [m]
};

/// Properties of the five FOAM soil types.
const SoilProperties& soil_properties(data::SoilType type);

class LandModel {
 public:
  /// Grid is the atmosphere's Gaussian grid; mask is 1 over land.
  LandModel(const numerics::GaussianGrid& grid, const Field2D<int>& land_mask,
            const Field2D<int>& soil_types);

  /// One step of the land surface given the atmosphere's surface fluxes
  /// (per-step means on the atmosphere grid). Updates soil temperatures,
  /// the moisture bucket and the snow pack; accumulates runoff.
  struct Forcing {
    const Field2Dd& sw_absorbed;   ///< [W/m^2]
    const Field2Dd& lw_down;       ///< [W/m^2]
    const Field2Dd& sensible;      ///< positive upward [W/m^2]
    const Field2Dd& latent;        ///< positive upward [W/m^2]
    const Field2Dd& evaporation;   ///< [kg/m^2/s]
    const Field2Dd& rain;          ///< [kg/m^2/s]
    const Field2Dd& snow;          ///< [kg/m^2/s]
  };
  void step(const Forcing& f, double dt);

  // --- state the coupler hands to the atmosphere --------------------------
  /// Skin (top-layer) temperature [K].
  const Field2Dd& tsurf() const { return tsoil_top_; }
  /// Evaporation wetness factor D_w: bucket fraction, 1 for snow/ice.
  Field2Dd wetness() const;
  /// Albedo including snow masking.
  Field2Dd albedo() const;
  /// Roughness length [m].
  const Field2Dd& roughness() const { return roughness_; }

  // --- hydrology -----------------------------------------------------------
  /// Runoff generated since the last drain [m of liquid water per cell].
  const Field2Dd& pending_runoff() const { return runoff_; }
  /// Hand the accumulated runoff to the river model and reset it.
  Field2Dd drain_runoff();

  const Field2Dd& snow_depth() const { return snow_; }      ///< [m lwe]
  const Field2Dd& bucket() const { return bucket_; }        ///< [m]
  double soil_temperature(int i, int j, int layer) const;

  static constexpr int kLayers = 4;

  /// Checkpoint support.
  void save_state(HistoryWriter& out, const std::string& prefix) const;
  void load_state(const HistoryReader& in, const std::string& prefix);

 private:
  const numerics::GaussianGrid& grid_;
  Field2D<int> mask_;
  Field2D<int> types_;
  Field2Dd tsoil_top_;                    // layer 0 [K]
  std::vector<Field2Dd> tsoil_;           // all layers [K]
  Field2Dd bucket_;                       // soil moisture [m]
  Field2Dd snow_;                         // snow pack [m lwe]
  Field2Dd runoff_;                       // accumulated [m]
  Field2Dd roughness_;
};

}  // namespace foam::land
