#include "land/soil.hpp"

#include <algorithm>
#include <cmath>

#include "base/constants.hpp"

namespace foam::land {

namespace c = foam::constants;

const SoilProperties& soil_properties(data::SoilType type) {
  // conductivity, volumetric heat capacity, albedo, roughness.
  static const SoilProperties kIce{2.2, 1.9e6, 0.70, 1.0e-3};
  static const SoilProperties kTundra{0.8, 2.2e6, 0.22, 5.0e-3};
  static const SoilProperties kGrass{1.0, 2.5e6, 0.20, 3.0e-2};
  static const SoilProperties kForest{1.2, 2.8e6, 0.13, 5.0e-1};
  static const SoilProperties kDesert{0.6, 1.6e6, 0.32, 5.0e-3};
  switch (type) {
    case data::SoilType::kIceSheet:
      return kIce;
    case data::SoilType::kTundra:
      return kTundra;
    case data::SoilType::kGrassland:
      return kGrass;
    case data::SoilType::kForest:
      return kForest;
    case data::SoilType::kDesert:
      return kDesert;
  }
  return kGrass;
}

namespace {
/// Layer thicknesses [m], thin at the surface (diurnal skin) to thick at
/// depth (annual memory).
constexpr double kThickness[LandModel::kLayers] = {0.1, 0.3, 1.0, 3.0};
}  // namespace

LandModel::LandModel(const numerics::GaussianGrid& grid,
                     const Field2D<int>& land_mask,
                     const Field2D<int>& soil_types)
    : grid_(grid),
      mask_(land_mask),
      types_(soil_types),
      tsoil_top_(grid.nlon(), grid.nlat(), 280.0),
      bucket_(grid.nlon(), grid.nlat(), 0.075),
      snow_(grid.nlon(), grid.nlat(), 0.0),
      runoff_(grid.nlon(), grid.nlat(), 0.0),
      roughness_(grid.nlon(), grid.nlat(), 1e-2) {
  FOAM_REQUIRE(land_mask.nx() == grid.nlon() && land_mask.ny() == grid.nlat(),
               "land mask shape");
  tsoil_.assign(kLayers, Field2Dd(grid.nlon(), grid.nlat(), 280.0));
  for (int j = 0; j < grid.nlat(); ++j) {
    // Initialize toward a plausible zonal climatology.
    const double lat = grid.lat(j);
    const double t0 =
        262.0 + 36.0 * std::exp(-std::pow(lat / (35.0 * c::deg2rad), 2.0));
    for (int i = 0; i < grid.nlon(); ++i) {
      if (mask_(i, j) == 0) continue;
      const auto type = static_cast<data::SoilType>(types_(i, j));
      for (int l = 0; l < kLayers; ++l) tsoil_[l](i, j) = t0;
      roughness_(i, j) = soil_properties(type).roughness;
      if (type == data::SoilType::kIceSheet) snow_(i, j) = 0.5;
    }
  }
  tsoil_top_ = tsoil_[0];
}

double LandModel::soil_temperature(int i, int j, int layer) const {
  FOAM_REQUIRE(layer >= 0 && layer < kLayers, "layer " << layer);
  return tsoil_[layer](i, j);
}

void LandModel::step(const Forcing& f, double dt) {
  for (int j = 0; j < grid_.nlat(); ++j) {
    for (int i = 0; i < grid_.nlon(); ++i) {
      if (mask_(i, j) == 0) continue;
      const auto type = static_cast<data::SoilType>(types_(i, j));
      const SoilProperties& prop = soil_properties(type);

      // --- surface energy balance on the top layer ----------------------
      const double lw_up =
          c::stefan_boltzmann * std::pow(tsoil_[0](i, j), 4.0);
      const double net = f.sw_absorbed(i, j) + f.lw_down(i, j) - lw_up -
                         f.sensible(i, j) - f.latent(i, j);
      // Snow modifies the effective heat capacity of the top layer.
      const double snow_cap =
          std::min(snow_(i, j), 0.5) * c::rho_fresh_water * 2100.0;
      const double cap0 = prop.heat_capacity * kThickness[0] + snow_cap;
      tsoil_[0](i, j) =
          std::clamp(tsoil_[0](i, j) + net * dt / cap0, 200.0, 340.0);

      // --- diffusion between layers -------------------------------------
      for (int l = 0; l < kLayers - 1; ++l) {
        const double dz = 0.5 * (kThickness[l] + kThickness[l + 1]);
        const double flux =
            prop.conductivity * (tsoil_[l](i, j) - tsoil_[l + 1](i, j)) / dz;
        tsoil_[l](i, j) -= flux * dt / (prop.heat_capacity * kThickness[l]);
        tsoil_[l + 1](i, j) +=
            flux * dt / (prop.heat_capacity * kThickness[l + 1]);
      }
      // Deep layer relaxes very slowly toward its own mean (no geothermal).

      // --- hydrology ------------------------------------------------------
      const double rain_m = f.rain(i, j) * dt / c::rho_fresh_water;
      const double snow_m = f.snow(i, j) * dt / c::rho_fresh_water;
      const double evap_m = f.evaporation(i, j) * dt / c::rho_fresh_water;
      snow_(i, j) += snow_m;
      // Snow melt when the surface is above freezing: energy-limited.
      if (tsoil_[0](i, j) > c::t_melt && snow_(i, j) > 0.0) {
        const double melt_energy =
            (tsoil_[0](i, j) - c::t_melt) * prop.heat_capacity *
            kThickness[0];
        const double melt_m = std::min(
            snow_(i, j),
            melt_energy / (c::rho_fresh_water * c::latent_fus));
        snow_(i, j) -= melt_m;
        bucket_(i, j) += melt_m;
        tsoil_[0](i, j) -= melt_m * c::rho_fresh_water * c::latent_fus /
                           (prop.heat_capacity * kThickness[0]);
      }
      // Evaporation first empties snow, then the bucket.
      double evap_left = evap_m;
      const double from_snow = std::min(snow_(i, j), evap_left);
      snow_(i, j) -= from_snow;
      evap_left -= from_snow;
      bucket_(i, j) = std::max(0.0, bucket_(i, j) - evap_left);
      // Rain into the bucket; overflow above 15 cm is runoff (paper).
      bucket_(i, j) += rain_m;
      if (bucket_(i, j) > c::bucket_capacity_m) {
        runoff_(i, j) += bucket_(i, j) - c::bucket_capacity_m;
        bucket_(i, j) = c::bucket_capacity_m;
      }
      // Snow above 1 m liquid equivalent drains to the river model,
      // mimicking ice-sheet near-equilibrium (paper).
      if (snow_(i, j) > c::snow_cap_lwe_m) {
        runoff_(i, j) += snow_(i, j) - c::snow_cap_lwe_m;
        snow_(i, j) = c::snow_cap_lwe_m;
      }
    }
  }
  tsoil_top_ = tsoil_[0];
}

Field2Dd LandModel::wetness() const {
  Field2Dd w(grid_.nlon(), grid_.nlat(), 1.0);
  for (int j = 0; j < grid_.nlat(); ++j)
    for (int i = 0; i < grid_.nlon(); ++i) {
      if (mask_(i, j) == 0) continue;  // ocean/ice handled by the coupler
      const auto type = static_cast<data::SoilType>(types_(i, j));
      if (type == data::SoilType::kIceSheet || snow_(i, j) > 0.01) {
        w(i, j) = 1.0;  // D_w = 1 for land ice and snow cover (paper)
      } else {
        w(i, j) = bucket_(i, j) / c::bucket_capacity_m;
      }
    }
  return w;
}

Field2Dd LandModel::albedo() const {
  Field2Dd a(grid_.nlon(), grid_.nlat(), 0.1);
  for (int j = 0; j < grid_.nlat(); ++j)
    for (int i = 0; i < grid_.nlon(); ++i) {
      if (mask_(i, j) == 0) continue;
      const auto type = static_cast<data::SoilType>(types_(i, j));
      const double base = soil_properties(type).albedo;
      // Snow masking: approach the snow albedo as depth builds.
      const double cover = std::min(1.0, snow_(i, j) / 0.05);
      a(i, j) = base * (1.0 - cover) + 0.75 * cover;
    }
  return a;
}

void LandModel::save_state(HistoryWriter& out,
                           const std::string& prefix) const {
  for (int l = 0; l < kLayers; ++l)
    out.write(prefix + ".tsoil" + std::to_string(l), tsoil_[l]);
  out.write(prefix + ".bucket", bucket_);
  out.write(prefix + ".snow", snow_);
  out.write(prefix + ".runoff", runoff_);
}

void LandModel::load_state(const HistoryReader& in,
                           const std::string& prefix) {
  auto load = [&](const std::string& name, Field2Dd& f) {
    const auto& rec = in.find(name);
    FOAM_REQUIRE(rec.data.size() == f.size(), "checkpoint size " << name);
    std::copy(rec.data.begin(), rec.data.end(), f.vec().begin());
  };
  for (int l = 0; l < kLayers; ++l)
    load(prefix + ".tsoil" + std::to_string(l), tsoil_[l]);
  load(prefix + ".bucket", bucket_);
  load(prefix + ".snow", snow_);
  load(prefix + ".runoff", runoff_);
  tsoil_top_ = tsoil_[0];
}

Field2Dd LandModel::drain_runoff() {
  Field2Dd out = runoff_;
  runoff_.fill(0.0);
  return out;
}

}  // namespace foam::land
