#pragma once

/// \file field.hpp
/// Dense 2-D and 3-D field containers used throughout FOAM.
///
/// Layout conventions:
///   Field2D(nx, ny)      — x (longitude) fastest, index (i, j)
///   Field3D(nx, ny, nz)  — x fastest, then y, then z, index (i, j, k)
///
/// Fields are value types with contiguous storage; they are cheap to move and
/// deliberately expensive-looking to copy (explicit copy is allowed — fields
/// are small at FOAM resolutions).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "base/error.hpp"

namespace foam {

namespace detail {
/// Validate dimensions before any allocation happens.
inline std::size_t checked_size(int nx, int ny, int nz) {
  FOAM_REQUIRE(nx > 0 && ny > 0 && nz > 0,
               "field dims " << nx << "x" << ny << "x" << nz);
  return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
         static_cast<std::size_t>(nz);
}
}  // namespace detail

using detail::checked_size;

/// Dense 2-D field with x-fastest layout.
template <typename T>
class Field2D {
 public:
  Field2D() = default;
  Field2D(int nx, int ny, T init = T{})
      : nx_(nx), ny_(ny), data_(checked_size(nx, ny, 1), init) {}

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(int i, int j) {
    FOAM_ASSERT(in_range(i, j), "(" << i << "," << j << ")");
    return data_[idx(i, j)];
  }
  const T& operator()(int i, int j) const {
    FOAM_ASSERT(in_range(i, j), "(" << i << "," << j << ")");
    return data_[idx(i, j)];
  }

  /// Periodic-in-x access: i is wrapped modulo nx. j must be in range.
  T& wrap_x(int i, int j) { return data_[idx(mod_x(i), j)]; }
  const T& wrap_x(int i, int j) const { return data_[idx(mod_x(i), j)]; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::vector<T>& vec() { return data_; }
  const std::vector<T>& vec() const { return data_; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  bool same_shape(const Field2D& o) const {
    return nx_ == o.nx_ && ny_ == o.ny_;
  }

  Field2D& operator+=(const Field2D& o) {
    FOAM_REQUIRE(same_shape(o), "shape mismatch");
    for (std::size_t n = 0; n < data_.size(); ++n) data_[n] += o.data_[n];
    return *this;
  }
  Field2D& operator-=(const Field2D& o) {
    FOAM_REQUIRE(same_shape(o), "shape mismatch");
    for (std::size_t n = 0; n < data_.size(); ++n) data_[n] -= o.data_[n];
    return *this;
  }
  Field2D& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  T min() const { return *std::min_element(data_.begin(), data_.end()); }
  T max() const { return *std::max_element(data_.begin(), data_.end()); }
  T sum() const { return std::accumulate(data_.begin(), data_.end(), T{}); }
  T mean() const { return sum() / static_cast<T>(data_.size()); }

  /// Maximum absolute value; useful for stability diagnostics.
  T max_abs() const {
    T m{};
    for (const auto& v : data_) m = std::max(m, static_cast<T>(std::abs(v)));
    return m;
  }

 private:
  std::size_t idx(int i, int j) const {
    return static_cast<std::size_t>(j) * nx_ + i;
  }
  int mod_x(int i) const {
    int m = i % nx_;
    return m < 0 ? m + nx_ : m;
  }
  bool in_range(int i, int j) const {
    return i >= 0 && i < nx_ && j >= 0 && j < ny_;
  }

  int nx_ = 0;
  int ny_ = 0;
  std::vector<T> data_;
};

/// Dense 3-D field with x-fastest layout; k is the vertical index with
/// k = 0 at the top (atmosphere) or surface (ocean) as documented by each
/// component.
template <typename T>
class Field3D {
 public:
  Field3D() = default;
  Field3D(int nx, int ny, int nz, T init = T{})
      : nx_(nx), ny_(ny), nz_(nz), data_(checked_size(nx, ny, nz), init) {}

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(int i, int j, int k) {
    FOAM_ASSERT(in_range(i, j, k), "(" << i << "," << j << "," << k << ")");
    return data_[idx(i, j, k)];
  }
  const T& operator()(int i, int j, int k) const {
    FOAM_ASSERT(in_range(i, j, k), "(" << i << "," << j << "," << k << ")");
    return data_[idx(i, j, k)];
  }

  /// Periodic-in-x access.
  T& wrap_x(int i, int j, int k) { return data_[idx(mod_x(i), j, k)]; }
  const T& wrap_x(int i, int j, int k) const {
    return data_[idx(mod_x(i), j, k)];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::vector<T>& vec() { return data_; }
  const std::vector<T>& vec() const { return data_; }

  /// Pointer to the start of horizontal level k (contiguous nx*ny values).
  T* level(int k) { return data_.data() + idx(0, 0, k); }
  const T* level(int k) const { return data_.data() + idx(0, 0, k); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  bool same_shape(const Field3D& o) const {
    return nx_ == o.nx_ && ny_ == o.ny_ && nz_ == o.nz_;
  }

  Field3D& operator+=(const Field3D& o) {
    FOAM_REQUIRE(same_shape(o), "shape mismatch");
    for (std::size_t n = 0; n < data_.size(); ++n) data_[n] += o.data_[n];
    return *this;
  }
  Field3D& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  T min() const { return *std::min_element(data_.begin(), data_.end()); }
  T max() const { return *std::max_element(data_.begin(), data_.end()); }
  T max_abs() const {
    T m{};
    for (const auto& v : data_) m = std::max(m, static_cast<T>(std::abs(v)));
    return m;
  }

 private:
  std::size_t idx(int i, int j, int k) const {
    return (static_cast<std::size_t>(k) * ny_ + j) * nx_ + i;
  }
  int mod_x(int i) const {
    int m = i % nx_;
    return m < 0 ? m + nx_ : m;
  }
  bool in_range(int i, int j, int k) const {
    return i >= 0 && i < nx_ && j >= 0 && j < ny_ && k >= 0 && k < nz_;
  }

  int nx_ = 0;
  int ny_ = 0;
  int nz_ = 0;
  std::vector<T> data_;
};

using Field2Dd = Field2D<double>;
using Field3Dd = Field3D<double>;

/// True if any element is NaN or infinite.
template <typename F>
bool has_non_finite(const F& f) {
  for (std::size_t n = 0; n < f.size(); ++n)
    if (!std::isfinite(f.data()[n])) return true;
  return false;
}

}  // namespace foam
