#pragma once

/// \file constants.hpp
/// Physical and model constants shared by all FOAM components.
///
/// Values follow the CCM2/CCM3 technical notes where the paper references
/// them; purely numerical tuning constants live with the component that owns
/// them.

namespace foam::constants {

inline constexpr double pi = 3.14159265358979323846;
inline constexpr double two_pi = 2.0 * pi;
inline constexpr double deg2rad = pi / 180.0;
inline constexpr double rad2deg = 180.0 / pi;

/// Radius of the earth [m].
inline constexpr double earth_radius = 6.371e6;
/// Rotation rate of the earth [1/s].
inline constexpr double earth_omega = 7.292e-5;
/// Gravitational acceleration [m/s^2].
inline constexpr double gravity = 9.80616;

/// Gas constant for dry air [J/(kg K)].
inline constexpr double r_dry = 287.04;
/// Gas constant for water vapour [J/(kg K)].
inline constexpr double r_vapor = 461.5;
/// Specific heat of dry air at constant pressure [J/(kg K)].
inline constexpr double cp_dry = 1004.64;
/// kappa = R/cp for dry air.
inline constexpr double kappa = r_dry / cp_dry;
/// Latent heat of vaporization [J/kg].
inline constexpr double latent_vap = 2.501e6;
/// Latent heat of fusion [J/kg].
inline constexpr double latent_fus = 3.336e5;
/// Latent heat of sublimation [J/kg].
inline constexpr double latent_sub = latent_vap + latent_fus;

/// Stefan-Boltzmann constant [W/(m^2 K^4)].
inline constexpr double stefan_boltzmann = 5.67e-8;
/// Solar constant [W/m^2].
inline constexpr double solar_constant = 1367.0;
/// Von Karman constant.
inline constexpr double von_karman = 0.4;

/// Density of sea water [kg/m^3].
inline constexpr double rho_sea_water = 1025.0;
/// Density of fresh water [kg/m^3].
inline constexpr double rho_fresh_water = 1000.0;
/// Specific heat of sea water [J/(kg K)].
inline constexpr double cp_sea_water = 3996.0;
/// Freezing point of sea water, the ocean-model temperature clamp used when
/// sea ice is present (paper section 4.3) [deg C].
inline constexpr double sea_ice_freeze_c = -1.92;
/// Melting point of fresh ice [K].
inline constexpr double t_melt = 273.15;

/// Reference surface pressure [Pa].
inline constexpr double p_ref = 1.0e5;

/// Effective river flow velocity u of the Miller et al. routing scheme
/// adopted by the FOAM coupler [m/s].
inline constexpr double river_flow_velocity = 0.35;
/// Soil-moisture bucket capacity of the FOAM hydrology box model [m].
inline constexpr double bucket_capacity_m = 0.15;
/// Snow depth (liquid-water equivalent) above which excess snow is routed to
/// the river model to mimic ice-sheet near-equilibrium [m].
inline constexpr double snow_cap_lwe_m = 1.0;
/// Divisor applied to ice-atmosphere stress before it is passed to the
/// ocean model (paper section 4.3).
inline constexpr double ice_stress_divisor = 15.0;
/// Freshwater flux extracted from the ocean when sea ice forms [m].
inline constexpr double ice_formation_flux_m = 2.0;

/// Seconds per (model) day; FOAM uses a 365-day no-leap calendar.
inline constexpr double seconds_per_day = 86400.0;
inline constexpr int days_per_year = 365;

}  // namespace foam::constants
