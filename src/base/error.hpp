#pragma once

/// \file error.hpp
/// Error handling for the FOAM library.
///
/// All recoverable errors are reported by throwing foam::Error. The
/// FOAM_REQUIRE macro is used for precondition checks on public API
/// boundaries; FOAM_ASSERT is used for internal invariants and compiles to
/// nothing in NDEBUG builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace foam {

/// Exception type thrown by every FOAM component on failure.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace foam

/// Precondition check that is always active. \p msg may use stream syntax:
///   FOAM_REQUIRE(n > 0, "n=" << n);
#define FOAM_REQUIRE(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream foam_require_os;                               \
      foam_require_os << msg;                                           \
      ::foam::detail::throw_error(#cond, __FILE__, __LINE__,            \
                                  foam_require_os.str());               \
    }                                                                   \
  } while (0)

/// Internal invariant check; disabled in release (NDEBUG) builds.
#ifdef NDEBUG
#define FOAM_ASSERT(cond, msg) ((void)0)
#else
#define FOAM_ASSERT(cond, msg) FOAM_REQUIRE(cond, msg)
#endif
