#include "base/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "base/error.hpp"

namespace foam {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

Config Config::from_string(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const auto eq = stripped.find('=');
    FOAM_REQUIRE(eq != std::string::npos,
                 "config line " << lineno << " has no '=': " << stripped);
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    FOAM_REQUIRE(!key.empty(), "config line " << lineno << " has empty key");
    cfg.entries_[key] = value;
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  FOAM_REQUIRE(in.good(), "cannot open config file '" << path << "'");
  std::ostringstream os;
  os << in.rdbuf();
  return from_string(os.str());
}

void Config::set(const std::string& key, const std::string& value) {
  entries_[key] = value;
}

void Config::set(const std::string& key, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  entries_[key] = os.str();
}

void Config::set(const std::string& key, int value) {
  entries_[key] = std::to_string(value);
}

void Config::set(const std::string& key, bool value) {
  entries_[key] = value ? "true" : "false";
}

bool Config::has(const std::string& key) const {
  return entries_.count(key) != 0;
}

std::optional<std::string> Config::lookup(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key) const {
  const auto v = lookup(key);
  FOAM_REQUIRE(v.has_value(), "missing config key '" << key << "'");
  return *v;
}

double Config::get_double(const std::string& key) const {
  const std::string s = get_string(key);
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  FOAM_REQUIRE(pos == s.size() && !s.empty(),
               "config key '" << key << "' = '" << s << "' is not a double");
  return v;
}

int Config::get_int(const std::string& key) const {
  const std::string s = get_string(key);
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  FOAM_REQUIRE(pos == s.size() && !s.empty(),
               "config key '" << key << "' = '" << s << "' is not an int");
  return v;
}

bool Config::get_bool(const std::string& key) const {
  std::string s = get_string(key);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  FOAM_REQUIRE(false, "config key '" << key << "' = '" << s
                                     << "' is not a bool");
  return false;
}

std::string Config::get_string(const std::string& key,
                               const std::string& def) const {
  return has(key) ? get_string(key) : def;
}
double Config::get_double(const std::string& key, double def) const {
  return has(key) ? get_double(key) : def;
}
int Config::get_int(const std::string& key, int def) const {
  return has(key) ? get_int(key) : def;
}
bool Config::get_bool(const std::string& key, bool def) const {
  return has(key) ? get_bool(key) : def;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.entries_) entries_[k] = v;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

}  // namespace foam
