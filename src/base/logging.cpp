#include "base/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace foam {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::once_flag g_level_init;
std::mutex g_mutex;
thread_local int t_rank = -1;

/// First caller wins: either an explicit set_log_level or the environment
/// default. Later explicit calls still override via the atomic store.
void init_level_from_env() {
  std::call_once(g_level_init, [] {
    const char* env = std::getenv("FOAM_LOG_LEVEL");
    if (env != nullptr)
      g_level.store(static_cast<int>(parse_log_level(env, LogLevel::kInfo)),
                    std::memory_order_relaxed);
  });
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

bool iequals(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b)
    if (std::tolower(static_cast<unsigned char>(*a)) !=
        std::tolower(static_cast<unsigned char>(*b)))
      return false;
  return *a == '\0' && *b == '\0';
}

}  // namespace

LogLevel parse_log_level(const char* text, LogLevel fallback) {
  if (text == nullptr) return fallback;
  if (iequals(text, "debug") || std::strcmp(text, "0") == 0)
    return LogLevel::kDebug;
  if (iequals(text, "info") || std::strcmp(text, "1") == 0)
    return LogLevel::kInfo;
  if (iequals(text, "warn") || iequals(text, "warning") ||
      std::strcmp(text, "2") == 0)
    return LogLevel::kWarn;
  if (iequals(text, "error") || std::strcmp(text, "3") == 0)
    return LogLevel::kError;
  return fallback;
}

void set_log_level(LogLevel level) {
  // Claim the once_flag so a racing first log call cannot clobber an
  // explicit choice with the environment default.
  std::call_once(g_level_init, [] {});
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  init_level_from_env();
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_rank(int rank) { t_rank = rank; }

int log_rank() { return t_rank; }

void log_message(LogLevel level, const std::string& msg) {
  init_level_from_env();
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed))
    return;

  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);

  char stamp[16];
  std::snprintf(stamp, sizeof(stamp), "%02d:%02d:%02d.%03d", tm_utc.tm_hour,
                tm_utc.tm_min, tm_utc.tm_sec, millis);

  char rank_tag[16] = "";
  if (t_rank >= 0) std::snprintf(rank_tag, sizeof(rank_tag), " r%d", t_rank);

  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[foam %s %s%s] %s\n", stamp, level_tag(level),
               rank_tag, msg.c_str());
}

}  // namespace foam
