#include "base/calendar.hpp"

#include <cstdio>

namespace foam {

ModelTime ModelTime::from_ymd(int year, int month, int day,
                              double second_of_day) {
  FOAM_REQUIRE(year >= 0, "year=" << year);
  FOAM_REQUIRE(month >= 0 && month < 12, "month=" << month);
  FOAM_REQUIRE(day >= 0 && day < kMonthDays[month], "day=" << day);
  FOAM_REQUIRE(second_of_day >= 0.0 && second_of_day < 86400.0,
               "second_of_day=" << second_of_day);
  std::int64_t doy = 0;
  for (int m = 0; m < month; ++m) doy += kMonthDays[m];
  doy += day;
  return ModelTime(static_cast<std::int64_t>(year) * kSecondsPerYear +
                   doy * 86400 + static_cast<std::int64_t>(second_of_day));
}

int ModelTime::month() const {
  int doy = day_of_year();
  for (int m = 0; m < 12; ++m) {
    if (doy < kMonthDays[m]) return m;
    doy -= kMonthDays[m];
  }
  return 11;  // unreachable for valid day_of_year
}

int ModelTime::day_of_month() const {
  int doy = day_of_year();
  for (int m = 0; m < 12; ++m) {
    if (doy < kMonthDays[m]) return doy;
    doy -= kMonthDays[m];
  }
  return doy;
}

std::string ModelTime::to_string() const {
  const int sod = second_of_day();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Y%04d-%02d-%02d %02d:%02d:%02d", year(),
                month() + 1, day_of_month() + 1, sod / 3600, (sod / 60) % 60,
                sod % 60);
  return buf;
}

}  // namespace foam
