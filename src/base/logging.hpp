#pragma once

/// \file logging.hpp
/// Leveled, thread-safe logging. FOAM components log through this sink so
/// that parallel runs interleave whole lines rather than characters.

#include <sstream>
#include <string>

namespace foam {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line (thread-safe).
void log_message(LogLevel level, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace foam

#define FOAM_LOG_DEBUG ::foam::detail::LogLine(::foam::LogLevel::kDebug)
#define FOAM_LOG_INFO ::foam::detail::LogLine(::foam::LogLevel::kInfo)
#define FOAM_LOG_WARN ::foam::detail::LogLine(::foam::LogLevel::kWarn)
#define FOAM_LOG_ERROR ::foam::detail::LogLine(::foam::LogLevel::kError)
