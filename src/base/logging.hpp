#pragma once

/// \file logging.hpp
/// Leveled, thread-safe logging. FOAM components log through this sink so
/// that parallel runs interleave whole lines rather than characters.
///
/// Each line carries a wall-clock timestamp and, when the calling thread has
/// declared a rank via set_log_rank, an `rN` prefix — ranks are threads in
/// one process, so the rank tag is thread-local. The initial minimum level
/// comes from the FOAM_LOG_LEVEL environment variable (name or digit),
/// parsed once at first use; an explicit set_log_level always wins.

#include <sstream>
#include <string>

namespace foam {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo,
/// or to FOAM_LOG_LEVEL from the environment if set.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse a level name ("debug", "info", "warn", "error", case-insensitive)
/// or digit ("0".."3"). Returns \p fallback for null/unrecognized input.
LogLevel parse_log_level(const char* text, LogLevel fallback);

/// Rank tag for the calling thread; lines it logs are prefixed with `rN`.
/// Negative (the default) means no prefix.
void set_log_rank(int rank);
int log_rank();

/// Emit one line (thread-safe).
void log_message(LogLevel level, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace foam

#define FOAM_LOG_DEBUG ::foam::detail::LogLine(::foam::LogLevel::kDebug)
#define FOAM_LOG_INFO ::foam::detail::LogLine(::foam::LogLevel::kInfo)
#define FOAM_LOG_WARN ::foam::detail::LogLine(::foam::LogLevel::kWarn)
#define FOAM_LOG_ERROR ::foam::detail::LogLine(::foam::LogLevel::kError)
