#include "base/history.hpp"

#include <cstdio>
#include <cstring>

#include "base/error.hpp"

namespace foam {

namespace {
constexpr char kMagic[8] = {'F', 'O', 'A', 'M', 'H', 'I', 'S', 'T'};
}

HistoryWriter::HistoryWriter(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "wb");
  FOAM_REQUIRE(f != nullptr, "cannot open history file '" << path << "'");
  file_ = f;
  FOAM_REQUIRE(std::fwrite(kMagic, 1, sizeof(kMagic), f) == sizeof(kMagic),
               "short write of history magic");
}

HistoryWriter::~HistoryWriter() { close(); }

void HistoryWriter::close() {
  if (file_ != nullptr) {
    std::fclose(static_cast<FILE*>(file_));
    file_ = nullptr;
  }
}

void HistoryWriter::write_record(const std::string& name,
                                 const std::vector<int>& dims,
                                 const double* data, std::size_t count) {
  FOAM_REQUIRE(file_ != nullptr, "history file already closed");
  FILE* f = static_cast<FILE*>(file_);
  const std::uint32_t name_len = static_cast<std::uint32_t>(name.size());
  const std::uint32_t ndims = static_cast<std::uint32_t>(dims.size());
  bool ok = std::fwrite(&name_len, sizeof(name_len), 1, f) == 1;
  ok = ok && std::fwrite(name.data(), 1, name.size(), f) == name.size();
  ok = ok && std::fwrite(&ndims, sizeof(ndims), 1, f) == 1;
  for (const int d : dims) {
    const std::int64_t d64 = d;
    ok = ok && std::fwrite(&d64, sizeof(d64), 1, f) == 1;
  }
  ok = ok && std::fwrite(data, sizeof(double), count, f) == count;
  FOAM_REQUIRE(ok, "short write to history file");
}

void HistoryWriter::write(const std::string& name, const Field2Dd& field) {
  write_record(name, {field.nx(), field.ny()}, field.data(), field.size());
}

void HistoryWriter::write(const std::string& name, const Field3Dd& field) {
  write_record(name, {field.nx(), field.ny(), field.nz()}, field.data(),
               field.size());
}

void HistoryWriter::write_scalar(const std::string& name, double value) {
  write_record(name, {}, &value, 1);
}

void HistoryWriter::write_series(const std::string& name,
                                 const std::vector<double>& v) {
  write_record(name, {static_cast<int>(v.size())}, v.data(), v.size());
}

HistoryReader::HistoryReader(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  FOAM_REQUIRE(f != nullptr, "cannot open history file '" << path << "'");
  char magic[8];
  FOAM_REQUIRE(std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
                   std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               "'" << path << "' is not a FOAM history file");
  for (;;) {
    std::uint32_t name_len = 0;
    if (std::fread(&name_len, sizeof(name_len), 1, f) != 1) break;  // EOF
    FOAM_REQUIRE(name_len < 4096, "corrupt history record name length");
    HistoryRecord rec;
    rec.name.resize(name_len);
    bool ok = std::fread(rec.name.data(), 1, name_len, f) == name_len;
    std::uint32_t ndims = 0;
    ok = ok && std::fread(&ndims, sizeof(ndims), 1, f) == 1;
    FOAM_REQUIRE(ok && ndims <= 8, "corrupt history record header");
    std::size_t count = 1;
    for (std::uint32_t d = 0; d < ndims; ++d) {
      std::int64_t dim = 0;
      ok = ok && std::fread(&dim, sizeof(dim), 1, f) == 1;
      FOAM_REQUIRE(ok && dim > 0, "corrupt history record dims");
      rec.dims.push_back(static_cast<int>(dim));
      count *= static_cast<std::size_t>(dim);
    }
    rec.data.resize(count);
    ok = ok && std::fread(rec.data.data(), sizeof(double), count, f) == count;
    FOAM_REQUIRE(ok, "truncated history record '" << rec.name << "'");
    records_.push_back(std::move(rec));
  }
  std::fclose(f);
}

const HistoryRecord& HistoryReader::find(const std::string& name) const {
  for (const auto& r : records_)
    if (r.name == name) return r;
  FOAM_REQUIRE(false, "history record '" << name << "' not found");
  return records_.front();  // unreachable
}

bool HistoryReader::has(const std::string& name) const {
  for (const auto& r : records_)
    if (r.name == name) return true;
  return false;
}

}  // namespace foam
