#include "base/history.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "base/error.hpp"
#include "base/logging.hpp"

namespace foam {

namespace {
constexpr char kMagic[8] = {'F', 'O', 'A', 'M', 'H', 'I', 'S', 'T'};
/// Footer marker: deliberately far above the 4096-byte record-name limit so
/// it can never be confused with a record header.
constexpr std::uint32_t kFooterMarker = 0xF00AE0Fu;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
/// Record names must stay below this so the reader's corruption heuristic
/// (a plausible name length) keeps its teeth.
constexpr std::uint32_t kMaxNameLen = 4096;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

HistoryWriter::HistoryWriter(const std::string& path) : path_(path) {
  const std::string tmp = path_ + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  FOAM_REQUIRE(f != nullptr, "cannot open history file '" << tmp << "'");
  file_ = f;
  FOAM_REQUIRE(std::fwrite(kMagic, 1, sizeof(kMagic), f) == sizeof(kMagic),
               "short write of history magic");
}

HistoryWriter::~HistoryWriter() {
  std::string err;
  if (!close_impl(&err) && !err.empty())
    FOAM_LOG_ERROR << "history file '" << path_
                   << "' lost in destructor: " << err;
}

void HistoryWriter::close() {
  std::string err;
  FOAM_REQUIRE(close_impl(&err), "closing history file '" << path_
                                                          << "': " << err);
}

bool HistoryWriter::close_impl(std::string* error) {
  if (file_ == nullptr) return true;  // already closed (or given up on)
  FILE* f = static_cast<FILE*>(file_);
  file_ = nullptr;
  const std::string tmp = path_ + ".tmp";
  bool ok = std::fwrite(&kFooterMarker, sizeof(kFooterMarker), 1, f) == 1;
  ok = ok && std::fwrite(&n_records_, sizeof(n_records_), 1, f) == 1;
  ok = ok && std::fwrite(&hash_, sizeof(hash_), 1, f) == 1;
  if (!ok) {
    if (error) *error = "short write of footer";
    std::fclose(f);
    std::remove(tmp.c_str());
    return false;
  }
  // The checkpoint contract is durability at rename time: flush the stdio
  // buffer, push the data to the device, and only then check fclose — a
  // deferred ENOSPC surfaces in one of these three, never silently.
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
    if (error) *error = std::strerror(errno);
    std::fclose(f);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::fclose(f) != 0) {
    if (error) *error = std::strerror(errno);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    if (error) *error = std::string("rename: ") + std::strerror(errno);
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void HistoryWriter::put(const void* data, std::size_t bytes) {
  FILE* f = static_cast<FILE*>(file_);
  FOAM_REQUIRE(bytes == 0 || std::fwrite(data, 1, bytes, f) == bytes,
               "short write to history file '" << path_ << "'");
  hash_ = fnv1a(hash_, data, bytes);
  bytes_written_ += bytes;
}

void HistoryWriter::write_record(const std::string& name,
                                 const std::vector<int>& dims,
                                 const double* data, std::size_t count) {
  FOAM_REQUIRE(file_ != nullptr, "history file already closed");
  FOAM_REQUIRE(name.size() < kMaxNameLen,
               "history record name of " << name.size()
                                         << " bytes exceeds the format's "
                                         << kMaxNameLen - 1 << "-byte limit");
  const std::uint32_t name_len = static_cast<std::uint32_t>(name.size());
  const std::uint32_t ndims = static_cast<std::uint32_t>(dims.size());
  put(&name_len, sizeof(name_len));
  put(name.data(), name.size());
  put(&ndims, sizeof(ndims));
  for (const int d : dims) {
    FOAM_REQUIRE(d >= 0, "negative dim " << d << " in record '" << name
                                         << "'");
    const std::int64_t d64 = d;
    put(&d64, sizeof(d64));
  }
  put(data, sizeof(double) * count);
  ++n_records_;
}

void HistoryWriter::write(const std::string& name, const Field2Dd& field) {
  write_record(name, {field.nx(), field.ny()}, field.data(), field.size());
}

void HistoryWriter::write(const std::string& name, const Field3Dd& field) {
  write_record(name, {field.nx(), field.ny(), field.nz()}, field.data(),
               field.size());
}

void HistoryWriter::write_scalar(const std::string& name, double value) {
  write_record(name, {}, &value, 1);
}

void HistoryWriter::write_series(const std::string& name,
                                 const std::vector<double>& v) {
  write_record(name, {static_cast<int>(v.size())}, v.data(), v.size());
}

HistoryReader::HistoryReader(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  FOAM_REQUIRE(f != nullptr, "cannot open history file '" << path << "'");
  char magic[8];
  FOAM_REQUIRE(std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
                   std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               "'" << path << "' is not a FOAM history file");
  std::uint64_t hash = 14695981039346656037ULL;
  bool footer_seen = false;
  for (;;) {
    std::uint32_t name_len = 0;
    if (std::fread(&name_len, sizeof(name_len), 1, f) != 1) break;  // EOF
    if (name_len == kFooterMarker) {
      std::uint64_t n_records = 0, want_hash = 0;
      FOAM_REQUIRE(std::fread(&n_records, sizeof(n_records), 1, f) == 1 &&
                       std::fread(&want_hash, sizeof(want_hash), 1, f) == 1,
                   "'" << path << "': truncated history footer");
      FOAM_REQUIRE(n_records == records_.size(),
                   "'" << path << "': footer declares " << n_records
                       << " record(s) but " << records_.size()
                       << " were read — file corrupt");
      FOAM_REQUIRE(want_hash == hash,
                   "'" << path << "': record checksum mismatch — file "
                                  "corrupt");
      char extra = 0;
      FOAM_REQUIRE(std::fread(&extra, 1, 1, f) == 0,
                   "'" << path << "': trailing bytes after history footer");
      footer_seen = true;
      break;
    }
    FOAM_REQUIRE(name_len < kMaxNameLen,
                 "corrupt history record name length");
    hash = fnv1a(hash, &name_len, sizeof(name_len));
    HistoryRecord rec;
    rec.name.resize(name_len);
    bool ok = std::fread(rec.name.data(), 1, name_len, f) == name_len;
    hash = fnv1a(hash, rec.name.data(), name_len);
    std::uint32_t ndims = 0;
    ok = ok && std::fread(&ndims, sizeof(ndims), 1, f) == 1;
    FOAM_REQUIRE(ok && ndims <= 8, "corrupt history record header");
    hash = fnv1a(hash, &ndims, sizeof(ndims));
    std::size_t count = 1;
    for (std::uint32_t d = 0; d < ndims; ++d) {
      std::int64_t dim = 0;
      ok = ok && std::fread(&dim, sizeof(dim), 1, f) == 1;
      // Zero-length records (empty series) are legitimate; only negative
      // dims are corruption.
      FOAM_REQUIRE(ok && dim >= 0, "corrupt history record dims");
      hash = fnv1a(hash, &dim, sizeof(dim));
      rec.dims.push_back(static_cast<int>(dim));
      count *= static_cast<std::size_t>(dim);
    }
    rec.data.resize(count);
    ok = ok && (count == 0 ||
                std::fread(rec.data.data(), sizeof(double), count, f) ==
                    count);
    FOAM_REQUIRE(ok, "truncated history record '" << rec.name << "'");
    hash = fnv1a(hash, rec.data.data(), sizeof(double) * count);
    records_.push_back(std::move(rec));
  }
  std::fclose(f);
  FOAM_REQUIRE(footer_seen,
               "'" << path << "': history footer missing — file truncated "
                              "or written by an interrupted process");
}

const HistoryRecord& HistoryReader::find(const std::string& name) const {
  for (const auto& r : records_)
    if (r.name == name) return r;
  FOAM_REQUIRE(false, "history record '" << name << "' not found");
  return records_.front();  // unreachable
}

bool HistoryReader::has(const std::string& name) const {
  for (const auto& r : records_)
    if (r.name == name) return true;
  return false;
}

}  // namespace foam
