#pragma once

/// \file calendar.hpp
/// 365-day (no-leap) model calendar and elapsed-time bookkeeping.
///
/// FOAM integrates for centuries; the calendar therefore works in whole
/// seconds held in a 64-bit counter and provides the day-of-year / month
/// decompositions needed by the solar geometry and climatology codes.

#include <cstdint>
#include <string>

#include "base/error.hpp"

namespace foam {

/// Lengths of the months in the no-leap calendar.
inline constexpr int kMonthDays[12] = {31, 28, 31, 30, 31, 30,
                                       31, 31, 30, 31, 30, 31};

/// A point in model time, measured in seconds since year 0, day 0, 00:00.
class ModelTime {
 public:
  ModelTime() = default;
  explicit ModelTime(std::int64_t seconds) : seconds_(seconds) {
    FOAM_REQUIRE(seconds >= 0, "negative model time");
  }

  static ModelTime from_ymd(int year, int month, int day,
                            double second_of_day = 0.0);

  std::int64_t seconds() const { return seconds_; }
  double days() const { return static_cast<double>(seconds_) / 86400.0; }
  double years() const { return days() / 365.0; }

  int year() const { return static_cast<int>(seconds_ / kSecondsPerYear); }
  /// Day within the year, in [0, 365).
  int day_of_year() const {
    return static_cast<int>((seconds_ % kSecondsPerYear) / 86400);
  }
  /// Month within the year, in [0, 12).
  int month() const;
  /// Day within the month, in [0, kMonthDays[month()]).
  int day_of_month() const;
  /// Seconds elapsed within the current day, in [0, 86400).
  int second_of_day() const { return static_cast<int>(seconds_ % 86400); }
  /// Fractional day of year in [0, 365); used for solar declination.
  double fractional_day_of_year() const {
    return static_cast<double>(seconds_ % kSecondsPerYear) / 86400.0;
  }

  ModelTime& advance(std::int64_t dt_seconds) {
    FOAM_REQUIRE(seconds_ + dt_seconds >= 0, "time underflow");
    seconds_ += dt_seconds;
    return *this;
  }

  friend bool operator==(ModelTime a, ModelTime b) {
    return a.seconds_ == b.seconds_;
  }
  friend bool operator<(ModelTime a, ModelTime b) {
    return a.seconds_ < b.seconds_;
  }
  friend bool operator<=(ModelTime a, ModelTime b) {
    return a.seconds_ <= b.seconds_;
  }

  /// "Y0003-07-15 06:00:00" style string for logs.
  std::string to_string() const;

  static constexpr std::int64_t kSecondsPerYear =
      static_cast<std::int64_t>(365) * 86400;

 private:
  std::int64_t seconds_ = 0;
};

/// Fixed-step clock that drives a component's time loop. Guards against the
/// classic coupled-model bug of components drifting out of step: steps are
/// counted, never accumulated in floating point.
class SteppedClock {
 public:
  SteppedClock(ModelTime start, std::int64_t dt_seconds)
      : start_(start), dt_(dt_seconds) {
    FOAM_REQUIRE(dt_seconds > 0, "dt=" << dt_seconds);
  }

  std::int64_t dt_seconds() const { return dt_; }
  std::int64_t step_count() const { return steps_; }
  ModelTime now() const { return ModelTime(start_.seconds() + steps_ * dt_); }
  void tick() { ++steps_; }

  /// True when this clock's current time is an exact multiple of \p
  /// period_seconds from the start (e.g. "is it time to call the ocean?").
  bool aligned(std::int64_t period_seconds) const {
    FOAM_REQUIRE(period_seconds > 0, "period=" << period_seconds);
    return (steps_ * dt_) % period_seconds == 0;
  }

 private:
  ModelTime start_;
  std::int64_t dt_ = 0;
  std::int64_t steps_ = 0;
};

}  // namespace foam
