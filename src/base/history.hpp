#pragma once

/// \file history.hpp
/// Self-describing, crash-safe binary history format for model output and
/// checkpoints.
///
/// A history file is a sequence of records:
///   magic "FOAMHIST"  (file header, once)
///   [record]*  where record = name-length, name bytes, ndims, dims[ndims],
///              then nx*ny*... float64 values, x fastest (a record may be
///              zero-length: ndims >= 1 with a 0 dim, or a 0-d scalar)
///   footer     marker, record count, FNV-1a hash of every record byte.
///
/// Crash safety: the writer streams into `<path>.tmp` and only on a clean
/// close() — footer written, fflush + fsync succeeded, fclose checked —
/// renames the file onto `<path>`. A crash mid-write therefore never leaves
/// a partial file at the final path, and the reader refuses any file whose
/// footer is missing or disagrees with the records actually read, so
/// silent truncation (power loss after a rename of a corrupt file, manual
/// copy gone wrong, garbage appended) is detected instead of loading
/// partial state. This is what makes the format usable for restart
/// checkpoints, not just history tapes.

#include <cstdint>
#include <string>
#include <vector>

#include "base/field.hpp"

namespace foam {

class HistoryWriter {
 public:
  explicit HistoryWriter(const std::string& path);
  ~HistoryWriter();
  HistoryWriter(const HistoryWriter&) = delete;
  HistoryWriter& operator=(const HistoryWriter&) = delete;

  void write(const std::string& name, const Field2Dd& field);
  void write(const std::string& name, const Field3Dd& field);
  void write_scalar(const std::string& name, double value);
  /// A zero-length series is legal and round-trips as dims {0}.
  void write_series(const std::string& name, const std::vector<double>& v);

  /// Finish the file: write the footer, fflush + fsync, close, and
  /// atomically rename `<path>.tmp` onto `<path>`. Throws foam::Error if
  /// any step fails (ENOSPC and friends must not produce a checkpoint that
  /// reports success). The destructor calls the same sequence but logs and
  /// continues on failure — never call close() from an unwinding path.
  void close();

  /// Payload bytes written so far (records only, excluding file framing).
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  void write_record(const std::string& name, const std::vector<int>& dims,
                    const double* data, std::size_t count);
  void put(const void* data, std::size_t bytes);
  /// Shared body of close(); returns false instead of throwing.
  bool close_impl(std::string* error);

  void* file_ = nullptr;  // FILE*
  std::string path_;      // final path; the stream writes to path_ + ".tmp"
  std::uint64_t n_records_ = 0;
  std::uint64_t hash_ = 14695981039346656037ULL;  // FNV-1a over record bytes
  std::uint64_t bytes_written_ = 0;
};

/// One record read back from a history file.
struct HistoryRecord {
  std::string name;
  std::vector<int> dims;
  std::vector<double> data;
};

class HistoryReader {
 public:
  explicit HistoryReader(const std::string& path);

  const std::vector<HistoryRecord>& records() const { return records_; }

  /// First record with the given name; throws if absent.
  const HistoryRecord& find(const std::string& name) const;
  bool has(const std::string& name) const;

 private:
  std::vector<HistoryRecord> records_;
};

}  // namespace foam
