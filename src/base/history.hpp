#pragma once

/// \file history.hpp
/// Simple self-describing binary history format for model output.
///
/// A history file is a sequence of records:
///   magic "FOAMHIST"  (file header, once)
///   [record]*  where record = name-length, name bytes, ndims, dims[ndims],
///              then nx*ny*... float64 values, x fastest.
///
/// The paper produced "large output files"; this format is the stand-in for
/// the model's history tapes and is what the Vis5D-style browsing example
/// reads back.

#include <cstdint>
#include <string>
#include <vector>

#include "base/field.hpp"

namespace foam {

class HistoryWriter {
 public:
  explicit HistoryWriter(const std::string& path);
  ~HistoryWriter();
  HistoryWriter(const HistoryWriter&) = delete;
  HistoryWriter& operator=(const HistoryWriter&) = delete;

  void write(const std::string& name, const Field2Dd& field);
  void write(const std::string& name, const Field3Dd& field);
  void write_scalar(const std::string& name, double value);
  void write_series(const std::string& name, const std::vector<double>& v);

  /// Flush and close; called by the destructor if not called explicitly.
  void close();

 private:
  void write_record(const std::string& name, const std::vector<int>& dims,
                    const double* data, std::size_t count);
  void* file_ = nullptr;  // FILE*
};

/// One record read back from a history file.
struct HistoryRecord {
  std::string name;
  std::vector<int> dims;
  std::vector<double> data;
};

class HistoryReader {
 public:
  explicit HistoryReader(const std::string& path);

  const std::vector<HistoryRecord>& records() const { return records_; }

  /// First record with the given name; throws if absent.
  const HistoryRecord& find(const std::string& name) const;
  bool has(const std::string& name) const;

 private:
  std::vector<HistoryRecord> records_;
};

}  // namespace foam
