#pragma once

/// \file config.hpp
/// Minimal typed key/value configuration used to parameterize model runs.
///
/// Syntax (one entry per line):
///   key = value        # comment
/// Values are stored as strings and converted on access; unknown keys are an
/// error on read, duplicate keys overwrite (last wins), so defaults can be
/// layered under experiment-specific overrides.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace foam {

class Config {
 public:
  Config() = default;

  /// Parse from the text of a config file; throws foam::Error on bad syntax.
  static Config from_string(const std::string& text);
  static Config from_file(const std::string& path);

  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, double value);
  void set(const std::string& key, int value);
  void set(const std::string& key, bool value);

  bool has(const std::string& key) const;

  /// Typed getters; throw foam::Error when the key is missing or does not
  /// convert to the requested type.
  std::string get_string(const std::string& key) const;
  double get_double(const std::string& key) const;
  int get_int(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  /// Defaulted getters.
  std::string get_string(const std::string& key, const std::string& def) const;
  double get_double(const std::string& key, double def) const;
  int get_int(const std::string& key, int def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Merge \p other on top of this config (other's entries win).
  void merge(const Config& other);

  /// Keys in lexicographic order (for logging reproducibility).
  std::vector<std::string> keys() const;

 private:
  std::optional<std::string> lookup(const std::string& key) const;
  std::map<std::string, std::string> entries_;
};

}  // namespace foam
