#include "coupler/overlap.hpp"

#include <algorithm>
#include <cmath>

#include "base/constants.hpp"
#include "telemetry/telemetry.hpp"

namespace foam::coupler {

namespace c = foam::constants;

OverlapGrid::OverlapGrid(const numerics::GaussianGrid& atm,
                         const numerics::MercatorGrid& ocn)
    : na_lon_(atm.nlon()),
      na_lat_(atm.nlat()),
      no_lon_(ocn.nlon()),
      no_lat_(ocn.nlat()) {
  atm_area_.resize(na_lat_);
  for (int j = 0; j < na_lat_; ++j) atm_area_[j] = atm.cell_area(j);
  ocn_area_.resize(no_lat_);
  for (int j = 0; j < no_lat_; ++j) ocn_area_[j] = ocn.cell_area(j);

  // Latitude interval intersections.
  struct LatOverlap {
    int ja, jo;
    double sin_lo, sin_hi;
  };
  std::vector<LatOverlap> lat_pairs;
  for (int ja = 0; ja < na_lat_; ++ja) {
    const double a_lo = atm.lat_edge(ja);
    const double a_hi = atm.lat_edge(ja + 1);
    for (int jo = 0; jo < no_lat_; ++jo) {
      const double o_lo = ocn.lat_edge(jo);
      const double o_hi = ocn.lat_edge(jo + 1);
      const double lo = std::max(a_lo, o_lo);
      const double hi = std::min(a_hi, o_hi);
      if (hi > lo)
        lat_pairs.push_back({ja, jo, std::sin(lo), std::sin(hi)});
    }
  }

  // Longitude interval intersections with wraparound: compare each
  // atmosphere interval against the ocean intervals shifted by -360, 0,
  // +360 degrees.
  struct LonOverlap {
    int ia, io;
    double dlon;  // [radians]
  };
  std::vector<LonOverlap> lon_pairs;
  for (int ia = 0; ia < na_lon_; ++ia) {
    const double a_lo = atm.lon_edge(ia);
    const double a_hi = atm.lon_edge(ia + 1);
    for (int io = 0; io < no_lon_; ++io) {
      for (int shift = -1; shift <= 1; ++shift) {
        const double off = shift * c::two_pi;
        const double o_lo = ocn.lon_edge(io) + off;
        const double o_hi = ocn.lon_edge(io + 1) + off;
        const double lo = std::max(a_lo, o_lo);
        const double hi = std::min(a_hi, o_hi);
        if (hi > lo) lon_pairs.push_back({ia, io, hi - lo});
      }
    }
  }

  const double r2 = c::earth_radius * c::earth_radius;
  cells_.reserve(lat_pairs.size() * 3);
  for (const auto& lp : lat_pairs) {
    const double band = lp.sin_hi - lp.sin_lo;
    for (const auto& lo : lon_pairs) {
      const double area = r2 * lo.dlon * band;
      cells_.push_back({lo.ia, lp.ja, lo.io, lp.jo, area});
      total_area_ += area;
    }
  }
}

Field2Dd OverlapGrid::to_ocean(const Field2Dd& atm_field) const {
  FOAM_REQUIRE(atm_field.nx() == na_lon_ && atm_field.ny() == na_lat_,
               "atm field shape");
  telemetry::count("coupler.overlap_cells_averaged", cells_.size());
  Field2Dd num(no_lon_, no_lat_, 0.0);
  Field2Dd den(no_lon_, no_lat_, 0.0);
  for (const Cell& cell : cells_) {
    num(cell.io, cell.jo) += cell.area * atm_field(cell.ia, cell.ja);
    den(cell.io, cell.jo) += cell.area;
  }
  Field2Dd out(no_lon_, no_lat_, 0.0);
  for (int j = 0; j < no_lat_; ++j)
    for (int i = 0; i < no_lon_; ++i)
      if (den(i, j) > 0.0) out(i, j) = num(i, j) / den(i, j);
  return out;
}

Field2Dd OverlapGrid::to_atm(const Field2Dd& ocn_field,
                             const Field2D<int>& valid, double fill,
                             Field2Dd* coverage) const {
  FOAM_REQUIRE(ocn_field.nx() == no_lon_ && ocn_field.ny() == no_lat_,
               "ocean field shape");
  FOAM_REQUIRE(valid.nx() == no_lon_ && valid.ny() == no_lat_, "valid mask");
  telemetry::count("coupler.overlap_cells_averaged", cells_.size());
  Field2Dd num(na_lon_, na_lat_, 0.0);
  Field2Dd den(na_lon_, na_lat_, 0.0);
  for (const Cell& cell : cells_) {
    if (valid(cell.io, cell.jo) == 0) continue;
    num(cell.ia, cell.ja) += cell.area * ocn_field(cell.io, cell.jo);
    den(cell.ia, cell.ja) += cell.area;
  }
  Field2Dd out(na_lon_, na_lat_, fill);
  for (int j = 0; j < na_lat_; ++j)
    for (int i = 0; i < na_lon_; ++i)
      if (den(i, j) > 0.0) out(i, j) = num(i, j) / den(i, j);
  if (coverage != nullptr) {
    *coverage = Field2Dd(na_lon_, na_lat_, 0.0);
    for (int j = 0; j < na_lat_; ++j)
      for (int i = 0; i < na_lon_; ++i)
        (*coverage)(i, j) =
            den(i, j) / (atm_area_[j] > 0.0 ? atm_area_[j] : 1.0);
  }
  return out;
}

}  // namespace foam::coupler
