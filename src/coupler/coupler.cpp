#include "coupler/coupler.hpp"

#include <algorithm>
#include <cmath>

#include "base/constants.hpp"
#include "data/earth.hpp"
#include "telemetry/telemetry.hpp"

namespace foam::coupler {

namespace c = foam::constants;

Coupler::Coupler(const numerics::GaussianGrid& agrid,
                 const numerics::MercatorGrid& ogrid,
                 const Field2D<int>& ocean_mask_o)
    : agrid_(agrid),
      ogrid_(ogrid),
      overlap_(agrid, ogrid),
      ocean_mask_o_(ocean_mask_o),
      land_mask_a_(data::land_mask(agrid)),
      land_frac_a_(agrid.nlon(), agrid.nlat(), 0.0),
      ocean_cov_a_(agrid.nlon(), agrid.nlat(), 0.0) {
  // Valid-ocean coverage of each atmosphere cell from the overlap grid.
  Field2Dd ones(ogrid.nlon(), ogrid.nlat(), 1.0);
  Field2Dd cov;
  overlap_.to_atm(ones, ocean_mask_o_, 0.0, &cov);
  ocean_cov_a_ = cov;
  // Land fraction is geographic (the atmosphere mask); watery cells with
  // no modelled ocean underneath (poleward of the ocean grid) become
  // prescribed ice in make_atm_surface.
  for (int j = 0; j < agrid.nlat(); ++j)
    for (int i = 0; i < agrid.nlon(); ++i)
      land_frac_a_(i, j) = land_mask_a_(i, j) != 0 ? 1.0 : 0.0;

  land_ = std::make_unique<land::LandModel>(agrid, land_mask_a_,
                                            data::soil_types(agrid));
  river_ = std::make_unique<river::RiverModel>(agrid, land_mask_a_,
                                               data::orography(agrid));
  ice_ = std::make_unique<ice::SeaIceModel>(ogrid, ocean_mask_o_);
}

void Coupler::step_land(const atm::FluxFields& f, double dt) {
  FOAM_TRACE_SCOPE("coupler.land");
  const land::LandModel::Forcing forcing{f.sw_sfc, f.lw_down,  f.sensible,
                                         f.latent, f.evaporation, f.rain,
                                         f.snow};
  land_->step(forcing, dt);
}

Coupler::OceanForcing Coupler::make_ocean_forcing(
    const atm::FluxFields& mean_fluxes, const Field2Dd& sst_o,
    const Field2Dd& frazil_o, double interval) {
  FOAM_TRACE_SCOPE("coupler.forcing");
  telemetry::count("coupler.fields_to_ocean", 8);
  OceanForcing out;
  out.taux = overlap_.to_ocean(mean_fluxes.taux);
  out.tauy = overlap_.to_ocean(mean_fluxes.tauy);

  // Net heat into the ocean: absorbed solar + downward longwave -
  // upwelling longwave from the actual SST - turbulent fluxes.
  const Field2Dd sw_o = overlap_.to_ocean(mean_fluxes.sw_sfc);
  const Field2Dd lwd_o = overlap_.to_ocean(mean_fluxes.lw_down);
  const Field2Dd sens_o = overlap_.to_ocean(mean_fluxes.sensible);
  const Field2Dd lat_o = overlap_.to_ocean(mean_fluxes.latent);
  out.qnet = Field2Dd(ogrid_.nlon(), ogrid_.nlat(), 0.0);
  for (int j = 0; j < ogrid_.nlat(); ++j) {
    for (int i = 0; i < ogrid_.nlon(); ++i) {
      if (ocean_mask_o_(i, j) == 0) continue;
      const double ts_k = sst_o(i, j) + c::t_melt;
      const double lw_up = 0.97 * c::stefan_boltzmann * std::pow(ts_k, 4.0);
      out.qnet(i, j) =
          sw_o(i, j) + lwd_o(i, j) - lw_up - sens_o(i, j) - lat_o(i, j);
    }
  }

  // Sea ice: grows from the ocean's freeze-clamp heat and melts/insulates
  // under the remapped surface flux.
  ice_->step(sst_o, frazil_o, out.qnet, interval);
  // Under ice, the ocean's effective heat flux is the conductive flux
  // (small); damp qnet by the ice fraction.
  for (int j = 0; j < ogrid_.nlat(); ++j)
    for (int i = 0; i < ogrid_.nlon(); ++i)
      out.qnet(i, j) *= 1.0 - 0.9 * ice_->fraction()(i, j);

  // Freshwater: P - E remapped, plus river mouths, plus ice melt/growth —
  // the closed hydrological cycle of paper §4.3.
  Field2Dd pme_a(agrid_.nlon(), agrid_.nlat(), 0.0);
  for (int j = 0; j < agrid_.nlat(); ++j)
    for (int i = 0; i < agrid_.nlon(); ++i)
      pme_a(i, j) = (mean_fluxes.rain(i, j) + mean_fluxes.snow(i, j) -
                     mean_fluxes.evaporation(i, j)) /
                    c::rho_fresh_water;
  out.fw = overlap_.to_ocean(pme_a);

  // River routing: drain the land's accumulated runoff, route it, and
  // discharge at the mouths.
  river_->add_runoff(land_->drain_runoff());
  river_->step(interval);
  Field2Dd discharge_a = river_->drain_discharge(interval);  // [m^3/s]
  for (int j = 0; j < agrid_.nlat(); ++j)
    for (int i = 0; i < agrid_.nlon(); ++i)
      discharge_a(i, j) /= agrid_.cell_area(j);  // -> [m/s]
  const Field2Dd discharge_o = overlap_.to_ocean(discharge_a);
  Field2Dd ice_fw = ice_->drain_freshwater_flux();  // [m over interval]
  for (int j = 0; j < ogrid_.nlat(); ++j)
    for (int i = 0; i < ogrid_.nlon(); ++i) {
      if (ocean_mask_o_(i, j) == 0) continue;
      out.fw(i, j) += discharge_o(i, j) + ice_fw(i, j) / interval;
    }
  return out;
}

void Coupler::save_state(HistoryWriter& out,
                         const std::string& prefix) const {
  land_->save_state(out, prefix + ".land");
  river_->save_state(out, prefix + ".river");
  ice_->save_state(out, prefix + ".ice");
}

void Coupler::load_state(const HistoryReader& in,
                         const std::string& prefix) {
  land_->load_state(in, prefix + ".land");
  river_->load_state(in, prefix + ".river");
  ice_->load_state(in, prefix + ".ice");
}

atm::SurfaceFields Coupler::make_atm_surface(const Field2Dd& sst_o) const {
  FOAM_TRACE_SCOPE("coupler.surface");
  telemetry::count("coupler.surfaces_built");
  atm::SurfaceFields sfc(agrid_.nlon(), agrid_.nlat());
  // Remap ocean state to the atmosphere grid.
  Field2Dd sst_a = overlap_.to_atm(sst_o, ocean_mask_o_, 0.0);
  Field2Dd ice_a = overlap_.to_atm(ice_->fraction(), ocean_mask_o_, 0.0);
  const Field2Dd wet_land = land_->wetness();
  const Field2Dd alb_land = land_->albedo();
  const auto& tsfc_land = land_->tsurf();
  const auto& rough_land = land_->roughness();

  for (int j = 0; j < agrid_.nlat(); ++j) {
    const double lat_deg = agrid_.lat(j) * c::rad2deg;
    for (int i = 0; i < agrid_.nlon(); ++i) {
      const double fl = land_frac_a_(i, j);
      const double cov = ocean_cov_a_(i, j);
      double fo = std::max(0.0, 1.0 - fl);  // watery part
      double fi = fo * ice_a(i, j);         // modelled sea ice
      double fw = fo - fi;                  // open modelled ocean
      // Watery area without modelled ocean below (poleward of the ocean
      // grid): prescribed polar ice.
      // Prescribed polar ice only where there is essentially no modelled
      // ocean underneath; coastal cells with partial coverage use the
      // covered part's averaged SST for their whole watery fraction.
      if (land_mask_a_(i, j) == 0 && cov < 0.05 &&
          std::abs(lat_deg) > 55.0) {
        fi = fo;
        fw = 0.0;
      }
      const double t_ocean_k = sst_a(i, j) + c::t_melt;
      const double t_ice_k = std::min(c::t_melt, 260.0 + 0.0 * lat_deg);
      double tsurf = fl * tsfc_land(i, j) + fw * t_ocean_k + fi * t_ice_k;
      double albedo = fl * alb_land(i, j) + fw * 0.07 + fi * 0.65;
      double rough = fl * rough_land(i, j) + fw * 1e-4 + fi * 5e-4;
      double wet = fl * wet_land(i, j) + fw + fi;  // D_w = 1 on water/ice
      const double total = fl + fw + fi;
      if (total > 0.0) {
        tsurf /= total;
        albedo /= total;
        rough /= total;
        wet /= total;
      }
      sfc.tsurf(i, j) = std::clamp(tsurf, 200.0, 330.0);
      sfc.albedo(i, j) = albedo;
      sfc.roughness(i, j) = std::max(1e-5, rough);
      sfc.wetness(i, j) = std::clamp(wet, 0.0, 1.0);
      sfc.is_ocean(i, j) = (fw + fi) > fl ? 1 : 0;
      sfc.is_ice(i, j) = fi > 0.5 * (fw + fl + fi) ? 1 : 0;
    }
  }
  return sfc;
}

}  // namespace foam::coupler
