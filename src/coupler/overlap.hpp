#pragma once

/// \file overlap.hpp
/// The FOAM overlap grid (paper §4.3, Figure 1).
///
/// "The model represents the globe as being divided into two grids, one for
/// the atmosphere and another for the ocean. A third decomposition of the
/// surface is constructed by laying one grid on top of the other...
/// exchanges... are calculated for each piece of this overlap grid and are
/// then averaged for passing back to the ocean and atmosphere... No effort
/// is made to interpolate all state variables to a single grid."
///
/// OverlapGrid enumerates the exact intersection cells of the Gaussian
/// (atmosphere) and Mercator (ocean) grids with true spherical areas, and
/// provides the two area-weighted averaging operators. Conservation of
/// area-integrated fluxes holds to round-off by construction — the Fig. 1
/// bench demonstrates it.

#include <vector>

#include "base/field.hpp"
#include "numerics/grid.hpp"

namespace foam::coupler {

class OverlapGrid {
 public:
  struct Cell {
    int ia, ja;   ///< atmosphere cell indices
    int io, jo;   ///< ocean cell indices
    double area;  ///< true spherical area of the intersection [m^2]
  };

  OverlapGrid(const numerics::GaussianGrid& atm,
              const numerics::MercatorGrid& ocn);

  const std::vector<Cell>& cells() const { return cells_; }
  double total_area() const { return total_area_; }

  /// Average an atmosphere-grid field onto the ocean grid (area-weighted
  /// over each ocean cell). Ocean cells outside the atmosphere grid's
  /// latitude range cannot occur (the Gaussian grid spans pole to pole).
  Field2Dd to_ocean(const Field2Dd& atm_field) const;

  /// Average an ocean-grid field onto the atmosphere grid, counting only
  /// ocean cells with valid != 0. Where an atmosphere cell has no valid
  /// ocean underneath, the output keeps \p fill and, if \p coverage is
  /// non-null, its coverage is 0. Coverage is the valid-ocean area
  /// fraction of each atmosphere cell.
  Field2Dd to_atm(const Field2Dd& ocn_field, const Field2D<int>& valid,
                  double fill = 0.0, Field2Dd* coverage = nullptr) const;

  int n_atm_lon() const { return na_lon_; }
  int n_atm_lat() const { return na_lat_; }
  int n_ocn_lon() const { return no_lon_; }
  int n_ocn_lat() const { return no_lat_; }

 private:
  int na_lon_, na_lat_, no_lon_, no_lat_;
  std::vector<Cell> cells_;
  std::vector<double> atm_area_;  // per atmosphere cell row (ja)
  std::vector<double> ocn_area_;  // per ocean cell row (jo)
  double total_area_ = 0.0;
};

}  // namespace foam::coupler
