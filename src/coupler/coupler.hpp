#pragma once

/// \file coupler.hpp
/// The FOAM coupler: "essentially a model of the land surface and
/// atmosphere-ocean interface" (paper §4.3).
///
/// Owns the overlap grid, the land model (four-layer soil + bucket
/// hydrology), the river routing and the sea ice, computes the exchange
/// fields in both directions and closes the hydrological cycle
/// (precipitation - evaporation + river discharge + ice freshwater).

#include <memory>

#include "atm/model.hpp"
#include "base/field.hpp"
#include "coupler/overlap.hpp"
#include "ice/sea_ice.hpp"
#include "land/soil.hpp"
#include "numerics/grid.hpp"
#include "river/river.hpp"

namespace foam::coupler {

class Coupler {
 public:
  /// Builds the land/river/ice substrates from the procedural geography.
  Coupler(const numerics::GaussianGrid& agrid,
          const numerics::MercatorGrid& ogrid,
          const Field2D<int>& ocean_mask_o);

  /// Land surface update, called every atmosphere step with that step's
  /// fluxes.
  void step_land(const atm::FluxFields& step_fluxes, double dt);

  /// Forcing for the ocean at an exchange point. \p mean_fluxes are the
  /// atmosphere's accumulated fluxes divided by steps; \p sst_o the current
  /// ocean SST [C]; \p frazil_o the ocean's accumulated freeze-clamp heat
  /// per cell [J/m^2] (may be a zero field). Steps the river routing and
  /// the sea ice internally over \p interval seconds.
  struct OceanForcing {
    Field2Dd taux, tauy;  ///< [N/m^2]
    Field2Dd qnet;        ///< net heat into the ocean [W/m^2]
    Field2Dd fw;          ///< net freshwater into the ocean [m/s]
  };
  OceanForcing make_ocean_forcing(const atm::FluxFields& mean_fluxes,
                                  const Field2Dd& sst_o,
                                  const Field2Dd& frazil_o, double interval);

  /// Surface boundary condition for the atmosphere, blending land, open
  /// ocean, sea ice and the prescribed polar caps by their area fractions
  /// within each atmosphere cell.
  atm::SurfaceFields make_atm_surface(const Field2Dd& sst_o) const;

  /// Sea-ice fraction on the ocean grid (for OceanModel::set_ice_fraction).
  const Field2Dd& ice_fraction_o() const { return ice_->fraction(); }

  const land::LandModel& land() const { return *land_; }
  land::LandModel& land() { return *land_; }
  const river::RiverModel& river() const { return *river_; }
  const ice::SeaIceModel& ice() const { return *ice_; }
  const OverlapGrid& overlap() const { return overlap_; }
  /// Land fraction of each atmosphere cell (static).
  const Field2Dd& land_fraction_a() const { return land_frac_a_; }

  /// Checkpoint support (delegates to land/river/ice).
  void save_state(HistoryWriter& out, const std::string& prefix) const;
  void load_state(const HistoryReader& in, const std::string& prefix);

 private:
  const numerics::GaussianGrid& agrid_;
  const numerics::MercatorGrid& ogrid_;
  OverlapGrid overlap_;
  Field2D<int> ocean_mask_o_;
  Field2D<int> land_mask_a_;
  Field2Dd land_frac_a_;   // from the overlap coverage
  Field2Dd ocean_cov_a_;   // valid-ocean coverage of each atm cell
  std::unique_ptr<land::LandModel> land_;
  std::unique_ptr<river::RiverModel> river_;
  std::unique_ptr<ice::SeaIceModel> ice_;
};

}  // namespace foam::coupler
