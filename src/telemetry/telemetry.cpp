#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>

namespace foam::telemetry {

namespace {

thread_local Telemetry* t_current = nullptr;

}  // namespace

const char* trace_level_name(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff:
      return "off";
    case TraceLevel::kRegions:
      return "regions";
    case TraceLevel::kFull:
      return "full";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// RankTrace
// ---------------------------------------------------------------------------

double RankTrace::region_total(par::Region r) const {
  double sum = 0.0;
  for (const SpanRec& s : spans)
    if (s.depth == 0 && s.region == r) sum += s.t1 - s.t0;
  return sum;
}

bool RankTrace::has_nested() const {
  return std::any_of(spans.begin(), spans.end(),
                     [](const SpanRec& s) { return s.depth > 0; });
}

std::vector<double> serialize_trace(const RankTrace& t) {
  std::vector<double> out;
  std::size_t chars = 0;
  for (const std::string& n : t.names) chars += n.size();
  out.reserve(3 + t.names.size() + chars + t.spans.size() * 5);
  out.push_back(static_cast<double>(t.names.size()));
  for (const std::string& n : t.names) {
    out.push_back(static_cast<double>(n.size()));
    for (const char ch : n)
      out.push_back(static_cast<double>(static_cast<unsigned char>(ch)));
  }
  out.push_back(static_cast<double>(t.dropped));
  out.push_back(static_cast<double>(t.spans.size()));
  for (const SpanRec& s : t.spans) {
    out.push_back(static_cast<double>(s.name_id));
    out.push_back(static_cast<double>(static_cast<int>(s.region)));
    out.push_back(static_cast<double>(s.depth));
    out.push_back(s.t0);
    out.push_back(s.t1);
  }
  return out;
}

namespace {

/// Cursor over a gathered double stream with validated reads.
struct Reader {
  const double* d;
  std::size_t n;
  std::size_t pos = 0;

  double next(const char* what) {
    FOAM_REQUIRE(pos < n, "telemetry stream truncated reading " << what
                                                                << " at "
                                                                << pos);
    return d[pos++];
  }
  std::int64_t next_count(const char* what, std::int64_t max) {
    const double v = next(what);
    const auto i = static_cast<std::int64_t>(v);
    FOAM_REQUIRE(std::isfinite(v) && v == static_cast<double>(i) && i >= 0 &&
                     i <= max,
                 "telemetry stream: bad " << what << " value " << v);
    return i;
  }
  std::string next_string(const char* what) {
    const auto len = next_count(what, 4096);
    std::string s;
    s.reserve(static_cast<std::size_t>(len));
    for (std::int64_t i = 0; i < len; ++i) {
      const auto c = next_count("string char", 255);
      s.push_back(static_cast<char>(c));
    }
    return s;
  }
};

}  // namespace

RankTrace deserialize_trace(const double* data, std::size_t count) {
  Reader r{data, count};
  RankTrace t;
  const auto n_names = r.next_count("name count", 1 << 20);
  t.names.reserve(static_cast<std::size_t>(n_names));
  for (std::int64_t i = 0; i < n_names; ++i)
    t.names.push_back(r.next_string("name length"));
  t.dropped = static_cast<std::uint64_t>(
      r.next_count("dropped count", std::int64_t{1} << 62));
  const auto n_spans = r.next_count("span count", 1 << 28);
  t.spans.reserve(static_cast<std::size_t>(n_spans));
  for (std::int64_t i = 0; i < n_spans; ++i) {
    SpanRec s;
    s.name_id = static_cast<std::int32_t>(
        r.next_count("span name id", n_names - 1));
    s.region = static_cast<par::Region>(
        r.next_count("span region", par::kRegionCount - 1));
    s.depth = static_cast<std::int32_t>(r.next_count("span depth", 1 << 20));
    s.t0 = r.next("span t0");
    s.t1 = r.next("span t1");
    FOAM_REQUIRE(std::isfinite(s.t0) && std::isfinite(s.t1) && s.t1 >= s.t0,
                 "telemetry stream: bad span times [" << s.t0 << ", " << s.t1
                                                      << ")");
    t.spans.push_back(s);
  }
  FOAM_REQUIRE(r.pos == count,
               "telemetry stream: " << count - r.pos << " trailing values");
  return t;
}

std::vector<double> serialize_samples(
    const std::vector<std::pair<std::string, double>>& samples) {
  std::vector<double> out;
  out.push_back(static_cast<double>(samples.size()));
  for (const auto& [name, value] : samples) {
    out.push_back(static_cast<double>(name.size()));
    for (const char ch : name)
      out.push_back(static_cast<double>(static_cast<unsigned char>(ch)));
    out.push_back(value);
  }
  return out;
}

std::vector<std::pair<std::string, double>> deserialize_samples(
    const double* data, std::size_t count) {
  Reader r{data, count};
  std::vector<std::pair<std::string, double>> out;
  const auto n = r.next_count("sample count", 1 << 24);
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    std::string name = r.next_string("sample name length");
    const double v = r.next("sample value");
    out.emplace_back(std::move(name), v);
  }
  FOAM_REQUIRE(r.pos == count,
               "metric stream: " << count - r.pos << " trailing values");
  return out;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer::Tracer(const TelemetryOptions& opts)
    : level_(opts.level),
      cap_(std::max<std::size_t>(opts.max_spans, 16)),
      record_flat_(opts.record_flat) {
  reset();
}

void Tracer::reset() {
  epoch_ = std::chrono::steady_clock::now();
  stack_.clear();
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  flat_.reset();
  update_leaf();
}

void Tracer::update_leaf() {
  // Relaxed suffices: the profiler only needs an eventually-current view
  // of "what is this rank doing", never ordering with other state.
  leaf_.store(stack_.empty()
                  ? 0
                  : pack_leaf(stack_.back().name_id, stack_.back().region),
              std::memory_order_relaxed);
}

double Tracer::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::int32_t Tracer::intern(const char* name) {
  const std::string_view sv(name);
  const auto it = name_ids_.find(sv);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::int32_t>(names_.size());
  names_.emplace_back(sv);
  name_ids_.emplace(names_.back(), id);
  return id;
}

void Tracer::push_completed(const SpanRec& s) {
  if (ring_.size() < cap_) {
    ring_.push_back(s);
    return;
  }
  ring_[head_] = s;
  head_ = (head_ + 1) % cap_;
  ++dropped_;
}

par::Region Tracer::current_region() const {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it)
    if (it->is_region) return it->region;
  return par::Region::kOther;
}

void Tracer::begin_region(par::Region r) {
  stack_.push_back({intern(par::region_name(r)), r, true, now()});
  if (record_flat_) flat_.begin(r);
  update_leaf();
}

void Tracer::end_region() { finish_top(/*expect_region=*/true); }

void Tracer::begin_span(const char* name) {
  stack_.push_back({intern(name), current_region(), false, now()});
  update_leaf();
}

void Tracer::end_span() { finish_top(/*expect_region=*/false); }

void Tracer::instant(const char* name) {
  if (level_ == TraceLevel::kOff) return;
  const double t = now();
  push_completed({intern(name), current_region(),
                  static_cast<std::int32_t>(stack_.size()), t, t});
}

void Tracer::finish_top(bool expect_region) {
  if (stack_.empty()) return;
  FOAM_ASSERT(stack_.back().is_region == expect_region,
              "span begin/end kind mismatch (misnested instrumentation)");
  (void)expect_region;
  const Open e = stack_.back();
  stack_.pop_back();
  const double t = now();
  const bool record = e.is_region ? level_ >= TraceLevel::kRegions
                                  : level_ == TraceLevel::kFull;
  if (record)
    push_completed({e.name_id, e.region,
                    static_cast<std::int32_t>(stack_.size()), e.t0, t});
  if (e.is_region && record_flat_) {
    // Lossless downgrade: the flat view resumes the enclosing region (the
    // recorder's begin() closes the current segment), or closes out.
    bool resumed = false;
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (!it->is_region) continue;
      flat_.begin(it->region);
      resumed = true;
      break;
    }
    if (!resumed) flat_.end();
  }
  update_leaf();
}

std::vector<SpanRec> Tracer::spans() const {
  std::vector<SpanRec> out;
  out.reserve(ring_.size());
  if (ring_.size() < cap_ || head_ == 0) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

RankTrace Tracer::trace(bool include_open) const {
  RankTrace t;
  t.names = names_;
  t.spans = spans();
  t.dropped = dropped_;
  if (include_open && !stack_.empty()) {
    // Open spans become as-if-ended-now records so a postmortem timeline
    // shows the work in flight at the moment of the dump.
    const double t1 = now();
    for (std::size_t i = 0; i < stack_.size(); ++i) {
      const Open& e = stack_[i];
      t.spans.push_back({e.name_id, e.region, static_cast<std::int32_t>(i),
                         e.t0, std::max(e.t0, t1)});
    }
  }
  return t;
}

std::vector<std::string> Tracer::open_span_names() const {
  std::vector<std::string> out;
  out.reserve(stack_.size());
  for (const Open& e : stack_)
    out.push_back(e.name_id >= 0 &&
                          e.name_id < static_cast<std::int32_t>(names_.size())
                      ? names_[static_cast<std::size_t>(e.name_id)]
                      : std::string("?"));
  return out;
}

// ---------------------------------------------------------------------------
// Session plumbing
// ---------------------------------------------------------------------------

Telemetry::Telemetry(const TelemetryOptions& opts) : tracer_(opts) {}

std::vector<std::pair<std::string, double>> Telemetry::snapshot() const {
  std::vector<std::pair<std::string, double>> out;
  metrics_.snapshot(out);
  comm_.snapshot(out);
  out.emplace_back("trace.spans_dropped",
                   static_cast<double>(tracer_.dropped()));
  return out;
}

Telemetry* current() { return t_current; }

ScopedSession::ScopedSession(Telemetry& t) : prev_(t_current) {
  t_current = &t;
}

ScopedSession::~ScopedSession() { t_current = prev_; }

ScopedRegion::ScopedRegion(par::Region r) {
  if (Telemetry* t = t_current) {
    tracer_ = &t->tracer();
    tracer_->begin_region(r);
  }
}

ScopedRegion::~ScopedRegion() {
  if (tracer_) tracer_->end_region();
}

ScopedSpan::ScopedSpan(const char* name) {
  Telemetry* t = t_current;
  if (t == nullptr) return;
  Tracer& tr = t->tracer();
  // Liveness pulse at every level — below kFull this is the span's only
  // side effect, and the only sub-region progress signal the watchdog has.
  tr.pulse();
  if (tr.level() == TraceLevel::kFull) {
    tracer_ = &tr;
    tr.begin_span(name);
  }
}

ScopedSpan::~ScopedSpan() {
  if (tracer_) tracer_->end_span();
}

void count(const char* name, std::uint64_t v) {
  if (Telemetry* t = t_current) t->metrics().counter(name).add(v);
}

void observe(const char* name, double v) {
  if (Telemetry* t = t_current) t->metrics().histogram(name).record(v);
}

void gauge_max(const char* name, double v) {
  if (Telemetry* t = t_current) t->metrics().gauge(name).record_max(v);
}

}  // namespace foam::telemetry
