#pragma once

/// \file observe.hpp
/// Live run observability: flight recorder, per-rank heartbeat/watchdog,
/// sampling profiler, and the machine-readable run status feed.
///
/// Ranks are threads in one process (foam::par), so the whole layer is one
/// process-global RunObserver shared by every rank of the active run:
///
///  * **Heartbeat** — each rank publishes a monotonic beat (simulated day,
///    beat count, timestamp, last comm op) into a per-rank slot using plain
///    relaxed atomics: one or two stores per coupling exchange, no locks on
///    the rank's hot path.
///  * **Flight recorder** — once per day boundary each rank also publishes
///    a snapshot of its tracer ring + metrics under the slot's mutex. On
///    abort (FaultPlan kill, deadlock detector, uncaught exception, fatal
///    signal) observe_abort() merges every reachable rank's snapshot — plus
///    the aborting rank's *live* trace including open spans — into a single
///    Perfetto-loadable `postmortem.<ts>.trace.json` with a
///    `foamPostmortem` metadata block, a sibling counters file, and a final
///    "aborted" status.json. All writes are tmp → fsync → atomic rename.
///  * **Watchdog** — a monitor thread checks heartbeat ages against a
///    configurable deadline; a stalled rank gets a diagnostic naming the
///    stuck region + last comm op, and the flight recorder dumps *before*
///    the verifier's deadlock abort tears the run down.
///  * **Sampling profiler** — the monitor samples each rank's packed
///    innermost-open-span word (Tracer::profile_leaf) at a fixed interval;
///    profile_snapshot() resolves the samples to a span-attributed
///    histogram. Time attribution multiplies sample counts by the
///    *effective* interval (measured from real tick timestamps, not the
///    nominal one) so sleep overshoot does not bias the totals.
///  * **Status feed** — the monitor periodically rewrites `status.json`
///    (atomic rename): state, simulated day, days/hour, ETA, per-rank
///    heartbeat ages, top counters. This is the artifact the planned
///    foam_serve daemon will stream per request.
///
/// Everything is off by default; ObservabilityOptions::from_env() maps
/// FOAM_OBSERVE / FOAM_OBSERVE_WATCHDOG / FOAM_TELEMETRY=profile onto it.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "par/timers.hpp"
#include "telemetry/telemetry.hpp"

namespace foam::telemetry {

/// Which observability pieces a run enables (ParallelRunOptions carries
/// one; everything defaults off so plain runs pay nothing).
struct ObservabilityOptions {
  /// Arm the flight recorder: abort hooks + fatal-signal handlers write a
  /// merged postmortem trace + counters into `dir`.
  bool flight_recorder = false;
  /// Publish per-rank heartbeats (implied by watchdog/status).
  bool heartbeat = false;
  /// Stall deadline in seconds; > 0 enables the watchdog (implies
  /// heartbeat). Should be shorter than the verifier's audit timeout so
  /// the dump lands before the deadlock abort.
  double watchdog_seconds = 0.0;
  /// Periodically rewrite `status.json` in `dir`.
  bool status = false;
  double status_interval_seconds = 0.25;
  /// Sampling profiler (FOAM_TELEMETRY=profile).
  bool profile = false;
  double profile_interval_seconds = 1e-3;
  /// Directory receiving status.json and postmortem artifacts.
  std::string dir = ".";

  bool any() const {
    return flight_recorder || heartbeat || watchdog_seconds > 0.0 || status ||
           profile;
  }

  /// Environment mapping: FOAM_OBSERVE=<dir|1> enables flight recorder +
  /// heartbeat + status feed (value "1" or empty keeps dir "."),
  /// FOAM_OBSERVE_WATCHDOG=<seconds> arms the watchdog, and
  /// FOAM_TELEMETRY=profile turns on the sampling profiler.
  static ObservabilityOptions from_env();
};

/// One row of the profiler histogram: samples observed with \p name as the
/// innermost open span on \p rank (name is a region name for region spans).
struct ProfileEntry {
  int rank = 0;
  std::string name;
  par::Region region = par::Region::kOther;
  std::uint64_t samples = 0;
};

/// The shared per-run observer. Created by the first ScopedRankObserver,
/// destroyed by the last; rank threads talk to their slot, the monitor
/// thread multiplexes profiler/status/watchdog duties.
class RunObserver {
 public:
  RunObserver(const ObservabilityOptions& opts, int nranks,
              std::string run_desc, double total_days);
  ~RunObserver();
  RunObserver(const RunObserver&) = delete;
  RunObserver& operator=(const RunObserver&) = delete;

  /// Heartbeat from the calling rank: lock-free, call once per exchange.
  void beat(double day);

  /// Publish the calling rank's trace + metrics snapshot into its slot
  /// (slot mutex; call at day boundaries, not per exchange).
  void publish_self();

  /// The calling rank finished its loop cleanly: final publish + mark the
  /// slot done so the watchdog ignores teardown skew.
  void finish_rank();

  /// Stop the profiler and resolve its samples (idempotent; joins the
  /// monitor). Sorted by rank, then descending samples.
  std::vector<ProfileEntry> profile_snapshot();
  /// Measured seconds between profiler ticks (use for time attribution).
  double profile_effective_interval() const;

  /// Rank 0 declares the run complete; writes the final "finished"
  /// status.json.
  void finish_run(double final_day);

  /// Flight-recorder dump (first call wins; later calls no-op and return
  /// false). Returns true when the postmortem artifacts were written.
  bool dump(const std::string& reason);

  const ObservabilityOptions& options() const { return opts_; }
  std::string status_path() const;

  /// Path of the most recent postmortem trace written by any observer in
  /// this process (empty if none) — a test/driver convenience.
  static std::string last_postmortem_path();

 private:
  friend class ScopedRankObserver;
  friend class ScopedCommWait;
  friend void observe_comm_op(const char* what);
  struct Impl;
  void attach_rank(int rank);
  void detach_rank(int rank);
  void set_comm_op(const char* what);
  void comm_wait(int delta);
  void join_monitor();
  void monitor_loop();
  void check_watchdog();
  /// Rewrite status.json; \p final_day < 0 means "derive from heartbeats".
  void write_status(double final_day);

  ObservabilityOptions opts_;
  std::unique_ptr<Impl> impl_;
};

/// Per-rank RAII attachment: the first rank in creates the process-global
/// RunObserver, the last one out destroys it. Construct *after* the rank's
/// ScopedSession so the observer can reach the tracer; the destructor fires
/// a flight-recorder dump when it runs during exception unwind (the
/// "aborted by exception" hook — it still has the live tracer in scope).
class ScopedRankObserver {
 public:
  ScopedRankObserver(const ObservabilityOptions& opts, int rank, int nranks,
                     const std::string& run_desc, double total_days);
  ~ScopedRankObserver();
  ScopedRankObserver(const ScopedRankObserver&) = delete;
  ScopedRankObserver& operator=(const ScopedRankObserver&) = delete;

  explicit operator bool() const { return obs_ != nullptr; }
  RunObserver* operator->() const { return obs_.get(); }
  RunObserver* get() const { return obs_.get(); }

 private:
  std::shared_ptr<RunObserver> obs_;
  int rank_ = -1;
};

/// Record the calling rank's current comm operation in its heartbeat slot
/// (string literal only — stored as a raw pointer). No-op when the rank is
/// not attached to an observer.
void observe_comm_op(const char* what);

/// RAII marker for a tracked blocking comm wait (Comm::wait_state wraps
/// each one). The watchdog uses it to tell a wedged rank (stuck *outside*
/// any wait) from the peers blocked waiting on it, and blames the former.
class ScopedCommWait {
 public:
  explicit ScopedCommWait(const char* what);
  ~ScopedCommWait();
  ScopedCommWait(const ScopedCommWait&) = delete;
  ScopedCommWait& operator=(const ScopedCommWait&) = delete;
};

/// Publish the calling rank's snapshot if attached (fault hooks use this
/// right before parking a rank).
void observe_publish();

/// Abort hook: trigger the flight-recorder dump on the active observer, if
/// any. Safe to call from any thread, including ones never attached.
/// Returns true if a dump was written by this call.
bool observe_abort(const std::string& reason);

}  // namespace foam::telemetry
