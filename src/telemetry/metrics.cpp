#include "telemetry/metrics.hpp"

#include <cmath>

namespace foam::telemetry {

int Histogram::bucket_of(double v) {
  if (!(v > 0.0)) return 0;                 // zero, negative, NaN
  if (std::isinf(v)) return kBuckets - 1;   // overflow, like any huge value
  int e = 0;
  std::frexp(v, &e);  // v = m * 2^e with m in [0.5, 1)  =>  v in [2^(e-1), 2^e)
  const int b = e + kOffset - 1;
  if (b < 1) return 0;
  if (b > kBuckets - 1) return kBuckets - 1;
  return b;
}

double Histogram::bucket_lower(int b) {
  if (b <= 0) return 0.0;
  return std::ldexp(1.0, b - kOffset);
}

void Histogram::record(double v) {
  ++buckets_[static_cast<std::size_t>(bucket_of(v))];
  ++count_;
  sum_ += v;
  if (v > max_) max_ = v;
}

void Histogram::reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

void MetricsRegistry::snapshot(
    std::vector<std::pair<std::string, double>>& out) const {
  for (const auto& [name, c] : counters_)
    out.emplace_back(name, static_cast<double>(c.value()));
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.value());
  for (const auto& [name, h] : hists_) {
    out.emplace_back(name + ".count", static_cast<double>(h.count()));
    out.emplace_back(name + ".sum", h.sum());
    out.emplace_back(name + ".max", h.max());
  }
}

CommStats::Peer& CommStats::peer_slot(int cls, int peer_global) {
  auto& v = peers[static_cast<std::size_t>(cls)];
  if (peer_global >= static_cast<int>(v.size()))
    v.resize(static_cast<std::size_t>(peer_global) + 1);
  return v[static_cast<std::size_t>(peer_global)];
}

void CommStats::on_send(int peer_global, bool internal, std::size_t bytes,
                        std::size_t dest_depth) {
  if (peer_global < 0) return;
  Peer& p = peer_slot(internal ? 1 : 0, peer_global);
  ++p.msgs_sent;
  p.bytes_sent += bytes;
  if (dest_depth > dest_mailbox_hwm) dest_mailbox_hwm = dest_depth;
}

void CommStats::on_recv(int peer_global, bool internal, std::size_t bytes) {
  if (peer_global < 0) return;
  Peer& p = peer_slot(internal ? 1 : 0, peer_global);
  ++p.msgs_recv;
  p.bytes_recv += bytes;
}

void CommStats::snapshot(
    std::vector<std::pair<std::string, double>>& out) const {
  static const char* const kClass[2] = {"user", "internal"};
  for (int cls = 0; cls < 2; ++cls) {
    const auto& v = peers[static_cast<std::size_t>(cls)];
    for (std::size_t g = 0; g < v.size(); ++g) {
      const Peer& p = v[g];
      if (p.msgs_sent == 0 && p.msgs_recv == 0) continue;
      const std::string suffix =
          std::string(".") + kClass[cls] + ".peer" + std::to_string(g);
      out.emplace_back("comm.sent.msgs" + suffix,
                       static_cast<double>(p.msgs_sent));
      out.emplace_back("comm.sent.bytes" + suffix,
                       static_cast<double>(p.bytes_sent));
      out.emplace_back("comm.recv.msgs" + suffix,
                       static_cast<double>(p.msgs_recv));
      out.emplace_back("comm.recv.bytes" + suffix,
                       static_cast<double>(p.bytes_recv));
    }
  }
  out.emplace_back("comm.mailbox_hwm", static_cast<double>(mailbox_hwm));
  out.emplace_back("comm.dest_mailbox_hwm",
                   static_cast<double>(dest_mailbox_hwm));
  out.emplace_back("comm.requests_waited",
                   static_cast<double>(requests_waited));
  out.emplace_back("comm.fastpath_msgs", static_cast<double>(fastpath_msgs));
  out.emplace_back("comm.zero_copy_handoffs",
                   static_cast<double>(zero_copy_handoffs));
  out.emplace_back("comm.zero_copy_recvs",
                   static_cast<double>(zero_copy_recvs));
  out.emplace_back("comm.payload_memcpy_bytes",
                   static_cast<double>(payload_memcpy_bytes));
  out.emplace_back("comm.wait_seconds.count",
                   static_cast<double>(wait_seconds.count()));
  out.emplace_back("comm.wait_seconds.sum", wait_seconds.sum());
  out.emplace_back("comm.wait_seconds.max", wait_seconds.max());
  out.emplace_back("comm.collective_skew_seconds.count",
                   static_cast<double>(collective_skew_seconds.count()));
  out.emplace_back("comm.collective_skew_seconds.sum",
                   collective_skew_seconds.sum());
  out.emplace_back("comm.collective_skew_seconds.max",
                   collective_skew_seconds.max());
}

}  // namespace foam::telemetry
