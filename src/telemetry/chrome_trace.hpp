#pragma once

/// \file chrome_trace.hpp
/// Chrome trace-event exporter: merges per-rank span traces onto one
/// timeline loadable by chrome://tracing and Perfetto (ui.perfetto.dev).
///
/// The emitted document is the JSON object format:
///   { "traceEvents": [ ... ], "displayTimeUnit": "ms" }
/// with one complete ("ph": "X") event per span — microsecond timestamps,
/// pid 0, tid = world rank — plus a thread_name metadata event per rank so
/// the UI labels rows "rank N". Nested spans render as nested slices
/// because their [ts, ts+dur] intervals nest on the same tid.
///
/// json_validate is a dependency-free JSON well-formedness checker used by
/// the tests and the bench self-gate ("the trace loads back").

#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace foam::telemetry {

/// Render the gathered traces (index = world rank / tid) as a Chrome
/// trace-event JSON document.
std::string chrome_trace_json(const std::vector<RankTrace>& ranks);

/// Write chrome_trace_json to \p path. Returns false if the file cannot
/// be opened (benches must not fail on a read-only directory).
bool write_chrome_trace(const std::string& path,
                        const std::vector<RankTrace>& ranks);

/// Strict JSON well-formedness check (RFC 8259 grammar, no extensions).
/// On failure returns false and, if \p error is non-null, a message with
/// the byte offset of the problem.
bool json_validate(const std::string& text, std::string* error = nullptr);

}  // namespace foam::telemetry
