#pragma once

/// \file chrome_trace.hpp
/// Chrome trace-event exporter: merges per-rank span traces onto one
/// timeline loadable by chrome://tracing and Perfetto (ui.perfetto.dev).
///
/// The emitted document is the JSON object format:
///   { "traceEvents": [ ... ], "displayTimeUnit": "ms" }
/// with one complete ("ph": "X") event per span — microsecond timestamps,
/// pid 0, tid = world rank — plus a thread_name metadata event per rank so
/// the UI labels rows "rank N". Nested spans render as nested slices
/// because their [ts, ts+dur] intervals nest on the same tid.
///
/// The writer streams through a std::ostream (no whole-document string is
/// ever assembled) and write_chrome_trace lands its output crash-safely:
/// stream to `<path>.tmp`, fsync, then atomically rename — the same
/// contract as the history/checkpoint files, so a reader never observes a
/// torn trace. chrome_trace_events exposes the bare event stream for
/// embedding in larger documents (the flight recorder's postmortem dump).
///
/// json_validate is a dependency-free JSON well-formedness checker used by
/// the tests and the bench self-gate ("the trace loads back").

#include <cstdio>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace foam::telemetry {

/// Write \p s to \p os as a JSON string (quoted, escaped).
void json_quote(std::ostream& os, std::string_view s);

/// Stream the contents of the "traceEvents" array — the events themselves,
/// separated by commas, without the enclosing brackets — so callers can
/// embed the same merged timeline in a larger JSON document.
void chrome_trace_events(std::ostream& os,
                         const std::vector<RankTrace>& ranks);

/// Stream the gathered traces (index = world rank / tid) as a complete
/// Chrome trace-event JSON document.
void chrome_trace_stream(std::ostream& os,
                         const std::vector<RankTrace>& ranks);

/// chrome_trace_stream into a string (tests and the bench self-gate; the
/// file writer below streams instead of building this).
std::string chrome_trace_json(const std::vector<RankTrace>& ranks);

/// Crash-safe JSON artifact writer: stream() writes to `<path>.tmp`;
/// commit() flushes, fsyncs and atomically renames over \p path. An
/// uncommitted writer removes its temporary on destruction, so failures
/// never leave a torn document where a reader could pick it up.
class AtomicJsonFile {
 public:
  explicit AtomicJsonFile(std::string path);
  ~AtomicJsonFile();
  AtomicJsonFile(const AtomicJsonFile&) = delete;
  AtomicJsonFile& operator=(const AtomicJsonFile&) = delete;

  /// False when the temporary could not be opened (callers on read-only
  /// directories skip writing instead of failing the run).
  bool ok() const { return f_ != nullptr; }
  std::ostream& stream() { return os_; }

  /// Flush + fsync + rename. Returns false (with \p error filled when
  /// non-null) on any failure; the temporary is removed either way.
  bool commit(std::string* error = nullptr);

 private:
  class CFileBuf final : public std::streambuf {
   public:
    explicit CFileBuf(std::FILE* f) : f_(f) {}

   protected:
    int_type overflow(int_type ch) override;
    std::streamsize xsputn(const char* s, std::streamsize n) override;

   private:
    std::FILE* f_;
  };

  std::string path_;
  std::string tmp_;
  std::FILE* f_ = nullptr;
  std::unique_ptr<CFileBuf> buf_;
  std::ostream os_;
};

/// Write the merged Chrome trace to \p path crash-safely (tmp -> fsync ->
/// atomic rename). Returns false if the file cannot be opened or committed
/// (benches must not fail on a read-only directory).
bool write_chrome_trace(const std::string& path,
                        const std::vector<RankTrace>& ranks);

/// Strict JSON well-formedness check (RFC 8259 grammar, no extensions).
/// On failure returns false and, if \p error is non-null, a message with
/// the byte offset of the problem.
bool json_validate(const std::string& text, std::string* error = nullptr);

}  // namespace foam::telemetry
