#pragma once

/// \file metrics.hpp
/// Counters, gauges and fixed-bucket log-scale histograms for the FOAM
/// telemetry layer, plus the per-rank communication statistics the
/// foam::par runtime feeds (messages/bytes per peer and tag class, request
/// wait time, mailbox pressure, collective entry skew).
///
/// All metric objects are plain per-rank state: every rank (thread) owns
/// its own registry inside its telemetry::Telemetry session, so no metric
/// update ever takes a lock. Cross-rank aggregation happens by snapshotting
/// each rank's registry into flat (name, value) samples and gathering those
/// through Comm, exactly like the activity timelines.

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace foam::telemetry {

/// Monotonic counter (events, bytes, cells, ...).
class Counter {
 public:
  void add(std::uint64_t v = 1) { v_ += v; }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

/// Last-value gauge with a high-water helper.
class Gauge {
 public:
  void set(double v) { v_ = v; }
  void record_max(double v) {
    if (v > v_) v_ = v;
  }
  double value() const { return v_; }
  void reset() { v_ = 0.0; }

 private:
  double v_ = 0.0;
};

/// Histogram over fixed base-2 log-scale buckets.
///
/// Bucket b (1 <= b < kBuckets-1) covers the half-open value range
/// [2^(b-kOffset), 2^(b-kOffset+1)); bucket 0 collects zero/negative and
/// underflow values, the last bucket overflow. With kOffset = 32 the
/// resolvable range is [2^-31, 2^31) — nanoseconds to decades for
/// durations in seconds, bytes to gigabytes for sizes.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kOffset = 32;

  /// Bucket index a value lands in (see the class comment).
  static int bucket_of(double v);
  /// Inclusive lower bound of bucket \p b (b in [1, kBuckets)); bucket 0
  /// has no finite lower bound and returns 0.
  static double bucket_lower(int b);

  void record(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double max() const { return max_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }
  void reset();

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Named metrics, one registry per rank. Lookups create on first use;
/// iteration (snapshot) is name-ordered for deterministic output.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return hists_[name]; }

  /// Append flattened (name, value) samples: counters and gauges one row
  /// each; histograms as <name>.count / <name>.sum / <name>.max.
  void snapshot(std::vector<std::pair<std::string, double>>& out) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> hists_;
};

/// Communication statistics fed by foam::par::Comm. Separate from the
/// generic registry so the per-message hooks are branch-plus-increment
/// (no string lookups on the message path).
struct CommStats {
  struct Peer {
    std::uint64_t msgs_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t msgs_recv = 0;
    std::uint64_t bytes_recv = 0;
  };

  /// Indexed by peer *global* (world) rank; [0] = user-tag traffic,
  /// [1] = runtime-internal traffic (collective rounds, split bookkeeping).
  std::array<std::vector<Peer>, 2> peers;
  /// Time blocked in wait/waitany/blocking receives [s].
  Histogram wait_seconds;
  /// Root-observed spread of collective entry: time the root spends
  /// collecting the other ranks' contributions (barrier, reduce).
  Histogram collective_skew_seconds;
  /// High-water mark of this rank's own mailbox depth, observed whenever
  /// the rank drains it.
  std::uint64_t mailbox_hwm = 0;
  /// High-water mark of any destination mailbox depth observed at send.
  std::uint64_t dest_mailbox_hwm = 0;
  /// Requests (and blocking receives) this rank waited on.
  std::uint64_t requests_waited = 0;
  /// Messages sent on the small-message fast path (payload inlined in the
  /// channel slot, no heap allocation).
  std::uint64_t fastpath_msgs = 0;
  /// isend_move rendezvous handoffs posted (buffer ownership transferred
  /// by pointer, no send-side copy).
  std::uint64_t zero_copy_handoffs = 0;
  /// Receives completed by moving a handed-off buffer out (no recv copy).
  std::uint64_t zero_copy_recvs = 0;
  /// Payload bytes that crossed a memcpy anywhere on the message path
  /// (send-side staging of large copies, recv-side copy-out). The
  /// rendezvous path is gated on contributing nothing here.
  std::uint64_t payload_memcpy_bytes = 0;

  void on_send(int peer_global, bool internal, std::size_t bytes,
               std::size_t dest_depth);
  void on_recv(int peer_global, bool internal, std::size_t bytes);
  void on_mailbox_depth(std::size_t depth) {
    if (depth > mailbox_hwm) mailbox_hwm = depth;
  }

  /// Append flattened samples ("comm.sent.bytes.user.peer3", ...); peers
  /// with no traffic are skipped.
  void snapshot(std::vector<std::pair<std::string, double>>& out) const;

 private:
  Peer& peer_slot(int cls, int peer_global);
};

}  // namespace foam::telemetry
