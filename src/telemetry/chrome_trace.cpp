#include "telemetry/chrome_trace.hpp"

#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

namespace foam::telemetry {

void json_quote(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    if (static_cast<unsigned char>(ch) >= 0x20) {
      os << ch;
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(ch)));
      os << buf;
    }
  }
  os << '"';
}

namespace {

void put_num(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  os << buf;
}

}  // namespace

void chrome_trace_events(std::ostream& os,
                         const std::vector<RankTrace>& ranks) {
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
    os << '\n';
  };
  for (std::size_t rank = 0; rank < ranks.size(); ++rank) {
    sep();
    os << R"({"name": "thread_name", "ph": "M", "pid": 0, "tid": )" << rank
       << R"(, "args": {"name": "rank )" << rank << "\"}}";
  }
  for (std::size_t rank = 0; rank < ranks.size(); ++rank) {
    const RankTrace& t = ranks[rank];
    for (const SpanRec& s : t.spans) {
      sep();
      os << R"({"name": )";
      const bool known =
          s.name_id >= 0 && s.name_id < static_cast<int>(t.names.size());
      json_quote(os, known ? t.names[static_cast<std::size_t>(s.name_id)]
                           : std::string("?"));
      os << R"(, "cat": )";
      json_quote(os, par::region_name(s.region));
      if (s.t1 == s.t0) {
        // Zero-duration spans are point events (Tracer::instant); Chrome's
        // "i" phase renders them as thread-scoped markers.
        os << R"(, "ph": "i", "s": "t", "ts": )";
        put_num(os, s.t0 * 1e6);
      } else {
        os << R"(, "ph": "X", "ts": )";
        put_num(os, s.t0 * 1e6);
        os << R"(, "dur": )";
        put_num(os, (s.t1 - s.t0) * 1e6);
      }
      os << R"(, "pid": 0, "tid": )" << rank << '}';
    }
  }
}

void chrome_trace_stream(std::ostream& os,
                         const std::vector<RankTrace>& ranks) {
  os << "{\n\"traceEvents\": [";
  chrome_trace_events(os, ranks);
  os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

std::string chrome_trace_json(const std::vector<RankTrace>& ranks) {
  std::ostringstream os;
  chrome_trace_stream(os, ranks);
  return os.str();
}

// ---------------------------------------------------------------------------
// AtomicJsonFile
// ---------------------------------------------------------------------------

AtomicJsonFile::CFileBuf::int_type AtomicJsonFile::CFileBuf::overflow(
    int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) return 0;
  return std::fputc(traits_type::to_char_type(ch), f_) == EOF
             ? traits_type::eof()
             : ch;
}

std::streamsize AtomicJsonFile::CFileBuf::xsputn(const char* s,
                                                 std::streamsize n) {
  return static_cast<std::streamsize>(
      std::fwrite(s, 1, static_cast<std::size_t>(n), f_));
}

AtomicJsonFile::AtomicJsonFile(std::string path)
    : path_(std::move(path)), tmp_(path_ + ".tmp"), os_(nullptr) {
  f_ = std::fopen(tmp_.c_str(), "w");
  if (f_ != nullptr) {
    buf_ = std::make_unique<CFileBuf>(f_);
    os_.rdbuf(buf_.get());
  }
}

AtomicJsonFile::~AtomicJsonFile() {
  if (f_ != nullptr) {
    std::fclose(f_);
    std::remove(tmp_.c_str());
  }
}

bool AtomicJsonFile::commit(std::string* error) {
  if (f_ == nullptr) {
    if (error != nullptr) *error = "cannot open " + tmp_;
    return false;
  }
  std::FILE* f = f_;
  f_ = nullptr;
  // The crash-safety contract is durability at rename time: the data must
  // be on disk before the name points at it (same pattern as the history
  // and checkpoint writers).
  bool ok = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (ok && std::rename(tmp_.c_str(), path_.c_str()) != 0) ok = false;
  if (!ok) {
    if (error != nullptr)
      *error = "writing " + path_ + ": " + std::strerror(errno);
    std::remove(tmp_.c_str());
  }
  return ok;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<RankTrace>& ranks) {
  AtomicJsonFile out(path);
  if (!out.ok()) return false;
  chrome_trace_stream(out.stream(), ranks);
  return out.commit();
}

// ---------------------------------------------------------------------------
// Minimal strict JSON validator
// ---------------------------------------------------------------------------

namespace {

struct JsonCursor {
  const char* p;
  const char* end;
  std::string err;

  bool fail(const std::string& msg, const char* at) {
    err = msg + " at byte " + std::to_string(at - begin);
    return false;
  }
  const char* begin = nullptr;

  void skip_ws() {
    while (p < end &&
           (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool value(int depth);

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (static_cast<std::size_t>(end - p) < len ||
        std::strncmp(p, word, len) != 0)
      return fail("invalid literal", p);
    p += len;
    return true;
  }

  bool string() {
    const char* at = p;
    if (p >= end || *p != '"') return fail("expected string", at);
    ++p;
    while (p < end) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c < 0x20) return fail("control character in string", p);
      if (c == '\\') {
        ++p;
        if (p >= end) break;
        const char e = *p;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p;
            if (p >= end || !std::isxdigit(static_cast<unsigned char>(*p)))
              return fail("bad \\u escape", p);
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return fail("bad escape", p);
        }
      }
      ++p;
    }
    return fail("unterminated string", at);
  }

  bool number() {
    const char* at = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || !std::isdigit(static_cast<unsigned char>(*p)))
      return fail("bad number", at);
    if (*p == '0') {
      ++p;
    } else {
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p)))
        return fail("bad fraction", at);
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p)))
        return fail("bad exponent", at);
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    return true;
  }

  bool object(int depth) {
    ++p;  // past '{'
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (p >= end || *p != ':') return fail("expected ':'", p);
      ++p;
      if (!value(depth)) return false;
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return fail("expected ',' or '}'", p);
    }
  }

  bool array(int depth) {
    ++p;  // past '['
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    for (;;) {
      if (!value(depth)) return false;
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return fail("expected ',' or ']'", p);
    }
  }
};

bool JsonCursor::value(int depth) {
  if (depth > 512) return fail("nesting too deep", p);
  skip_ws();
  if (p >= end) return fail("unexpected end of input", p);
  switch (*p) {
    case '{':
      return object(depth + 1);
    case '[':
      return array(depth + 1);
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
  }
}

}  // namespace

bool json_validate(const std::string& text, std::string* error) {
  JsonCursor c{text.data(), text.data() + text.size(), {}};
  c.begin = text.data();
  bool ok = c.value(0);
  if (ok) {
    c.skip_ws();
    if (c.p != c.end) ok = c.fail("trailing content", c.p);
  }
  if (!ok && error != nullptr) *error = c.err;
  return ok;
}

}  // namespace foam::telemetry
