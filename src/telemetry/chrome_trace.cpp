#include "telemetry/chrome_trace.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace foam::telemetry {

namespace {

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    if (static_cast<unsigned char>(ch) >= 0x20) {
      out += ch;
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
      out += buf;
    }
  }
  out += '"';
}

void append_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const std::vector<RankTrace>& ranks) {
  std::string out = "{\n\"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ',';
    first = false;
    out += "\n";
  };
  for (std::size_t rank = 0; rank < ranks.size(); ++rank) {
    sep();
    out += R"({"name": "thread_name", "ph": "M", "pid": 0, "tid": )";
    out += std::to_string(rank);
    out += R"(, "args": {"name": "rank )" + std::to_string(rank) + "\"}}";
  }
  for (std::size_t rank = 0; rank < ranks.size(); ++rank) {
    const RankTrace& t = ranks[rank];
    for (const SpanRec& s : t.spans) {
      sep();
      out += R"({"name": )";
      const bool known =
          s.name_id >= 0 && s.name_id < static_cast<int>(t.names.size());
      append_quoted(out, known ? t.names[static_cast<std::size_t>(s.name_id)]
                               : std::string("?"));
      out += R"(, "cat": )";
      append_quoted(out, par::region_name(s.region));
      if (s.t1 == s.t0) {
        // Zero-duration spans are point events (Tracer::instant); Chrome's
        // "i" phase renders them as thread-scoped markers.
        out += R"(, "ph": "i", "s": "t", "ts": )";
        append_num(out, s.t0 * 1e6);
      } else {
        out += R"(, "ph": "X", "ts": )";
        append_num(out, s.t0 * 1e6);
        out += R"(, "dur": )";
        append_num(out, (s.t1 - s.t0) * 1e6);
      }
      out += R"(, "pid": 0, "tid": )";
      out += std::to_string(rank);
      out += '}';
    }
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<RankTrace>& ranks) {
  const std::string doc = chrome_trace_json(ranks);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  return true;
}

// ---------------------------------------------------------------------------
// Minimal strict JSON validator
// ---------------------------------------------------------------------------

namespace {

struct JsonCursor {
  const char* p;
  const char* end;
  std::string err;

  bool fail(const std::string& msg, const char* at) {
    err = msg + " at byte " + std::to_string(at - begin);
    return false;
  }
  const char* begin = nullptr;

  void skip_ws() {
    while (p < end &&
           (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool value(int depth);

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (static_cast<std::size_t>(end - p) < len ||
        std::strncmp(p, word, len) != 0)
      return fail("invalid literal", p);
    p += len;
    return true;
  }

  bool string() {
    const char* at = p;
    if (p >= end || *p != '"') return fail("expected string", at);
    ++p;
    while (p < end) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c < 0x20) return fail("control character in string", p);
      if (c == '\\') {
        ++p;
        if (p >= end) break;
        const char e = *p;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p;
            if (p >= end || !std::isxdigit(static_cast<unsigned char>(*p)))
              return fail("bad \\u escape", p);
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return fail("bad escape", p);
        }
      }
      ++p;
    }
    return fail("unterminated string", at);
  }

  bool number() {
    const char* at = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || !std::isdigit(static_cast<unsigned char>(*p)))
      return fail("bad number", at);
    if (*p == '0') {
      ++p;
    } else {
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p)))
        return fail("bad fraction", at);
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p)))
        return fail("bad exponent", at);
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    return true;
  }

  bool object(int depth) {
    ++p;  // past '{'
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (p >= end || *p != ':') return fail("expected ':'", p);
      ++p;
      if (!value(depth)) return false;
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return fail("expected ',' or '}'", p);
    }
  }

  bool array(int depth) {
    ++p;  // past '['
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    for (;;) {
      if (!value(depth)) return false;
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return fail("expected ',' or ']'", p);
    }
  }
};

bool JsonCursor::value(int depth) {
  if (depth > 512) return fail("nesting too deep", p);
  skip_ws();
  if (p >= end) return fail("unexpected end of input", p);
  switch (*p) {
    case '{':
      return object(depth + 1);
    case '[':
      return array(depth + 1);
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
  }
}

}  // namespace

bool json_validate(const std::string& text, std::string* error) {
  JsonCursor c{text.data(), text.data() + text.size(), {}};
  c.begin = text.data();
  bool ok = c.value(0);
  if (ok) {
    c.skip_ws();
    if (c.p != c.end) ok = c.fail("trailing content", c.p);
  }
  if (!ok && error != nullptr) *error = c.err;
  return ok;
}

}  // namespace foam::telemetry
