#pragma once

/// \file telemetry.hpp
/// Unified per-rank telemetry: hierarchical tracing + metrics session.
///
/// The flat par::ActivityRecorder reproduces the paper's Fig. 2 — one
/// region (atmosphere/coupler/ocean/idle/comm-wait) active at a time. After
/// the comm-overlap and batched-spectral work, the interesting costs live
/// *inside* those regions: per-stage transform time, per-message wait time,
/// mailbox pressure. The Tracer generalizes the recorder to named,
/// nesting-aware spans while keeping a lossless downgrade to the flat
/// Fig. 2 view, so ParallelRunResult::timelines and the Fig. 2 bench keep
/// working unchanged.
///
/// Model of operation:
///  * a Telemetry session (tracer + metrics registry + comm stats) is
///    installed per rank thread via ScopedSession; components reach it
///    through telemetry::current() and no-op when none is installed;
///  * region spans (begin_region/end_region) carry a par::Region class and
///    are recorded at TraceLevel::kRegions and above — they also drive the
///    embedded flat ActivityRecorder, which *is* the legacy downgrade;
///  * named spans (FOAM_TRACE_SCOPE("legendre_fold")) nest inside region
///    spans, inherit the innermost region class, and are recorded only at
///    TraceLevel::kFull;
///  * completed spans land in a bounded ring buffer (oldest overwritten,
///    drop count kept), so memory is fixed no matter how long the run is;
///  * a rank's trace serializes to a flat double stream (name table +
///    spans) for gathering with Comm::gatherv; chrome_trace.hpp merges the
///    gathered traces into one Perfetto-loadable timeline.
///
/// Tracer and session are strictly per-thread (one rank = one thread in
/// foam::par); nothing here takes a lock. The two concessions to cross-
/// thread observation are single relaxed atomics the observability
/// monitor thread reads while the owning rank keeps them current: the
/// packed "innermost open span" word (profile_leaf, one store per span
/// begin/end) and the liveness pulse (activity, one increment per
/// FOAM_TRACE_SCOPE entry at *every* trace level — so the watchdog sees
/// progress even when the production kRegions level records nothing
/// finer than one long region span).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/error.hpp"
#include "par/timers.hpp"
#include "telemetry/metrics.hpp"

namespace foam::telemetry {

/// How much the tracer records. kRegions is the production default: the
/// flat Fig. 2 regions as spans, nothing finer (< 2% overhead on the
/// coupled bench, gated by bench_time_allocation). kFull additionally
/// records every FOAM_TRACE_SCOPE span.
enum class TraceLevel : int { kOff = 0, kRegions = 1, kFull = 2 };

const char* trace_level_name(TraceLevel level);

/// Options for a telemetry session (ParallelRunOptions carries one).
struct TelemetryOptions {
  TraceLevel level = TraceLevel::kRegions;
  /// Ring capacity: completed spans kept per rank (oldest dropped first).
  std::size_t max_spans = 1 << 16;
  /// Maintain the legacy flat region view (ParallelRunResult::timelines).
  /// Drivers force this on when timeline capture is requested.
  bool record_flat = true;
};

/// One completed span. Times are seconds since the tracer epoch; depth is
/// the number of enclosing open spans when this one was recorded (0 =
/// top-level region span).
struct SpanRec {
  std::int32_t name_id = 0;
  par::Region region = par::Region::kOther;
  std::int32_t depth = 0;
  double t0 = 0.0;
  double t1 = 0.0;
};

/// A rank's trace in portable form: name table plus spans (completion
/// order), as produced by Tracer::trace() / deserialize().
struct RankTrace {
  std::vector<std::string> names;
  std::vector<SpanRec> spans;
  std::uint64_t dropped = 0;

  /// Total time in depth-0 spans of region class \p r — the span-derived
  /// counterpart of ActivityRecorder::total for cross-checking.
  double region_total(par::Region r) const;
  /// True if any recorded span is nested (depth > 0).
  bool has_nested() const;
};

/// Packed "innermost open span" word for the sampling profiler: zero when
/// no span is open, else pack_leaf(name_id, region) of the top of the span
/// stack. The low bit marks a valid word so name_id 0 / kAtmosphere packs
/// to a non-zero value.
inline std::uint64_t pack_leaf(std::int32_t name_id, par::Region region) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(name_id))
          << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
              static_cast<int>(region)))
          << 1) |
         1U;
}
inline bool leaf_open(std::uint64_t leaf) { return (leaf & 1U) != 0; }
inline std::int32_t leaf_name_id(std::uint64_t leaf) {
  return static_cast<std::int32_t>(leaf >> 32);
}
inline par::Region leaf_region(std::uint64_t leaf) {
  return static_cast<par::Region>((leaf >> 1) & 0x7FU);
}

/// Flat double-stream encoding of a RankTrace for Comm::gatherv, mirroring
/// ActivityRecorder::serialize. deserialize validates the stream and
/// throws foam::Error on malformed input.
std::vector<double> serialize_trace(const RankTrace& t);
RankTrace deserialize_trace(const double* data, std::size_t count);

/// Same idea for flattened metric samples ((name, value) pairs).
std::vector<double> serialize_samples(
    const std::vector<std::pair<std::string, double>>& samples);
std::vector<std::pair<std::string, double>> deserialize_samples(
    const double* data, std::size_t count);

/// Hierarchical span recorder for one rank. Not thread-safe: one tracer
/// per rank, used only from that rank's thread.
class Tracer {
 public:
  explicit Tracer(const TelemetryOptions& opts = {});

  TraceLevel level() const { return level_; }
  bool record_flat() const { return record_flat_; }

  /// Reset the epoch and drop all recorded state.
  void reset();
  /// Seconds since the epoch.
  double now() const;

  /// Begin/end a region span (see the file comment). Regions may nest;
  /// the flat view shows the innermost one, and ending a nested region
  /// resumes its parent in the flat view — lossless downgrade.
  void begin_region(par::Region r);
  void end_region();

  /// Begin/end a named span (callers normally use FOAM_TRACE_SCOPE, which
  /// checks the level once at entry). Recorded only at kFull.
  void begin_span(const char* name);
  void end_span();

  /// Record a zero-duration marker (Chrome trace instant event) at the
  /// current time. Markers flag rare point events — verify findings, abort
  /// propagation — so they record at every level except kOff.
  void instant(const char* name);

  /// Region class of the innermost open region span (kOther outside any).
  par::Region current_region() const;
  /// Open (unfinished) spans, region and named.
  int open_depth() const { return static_cast<int>(stack_.size()); }

  /// The legacy flat view (drives ParallelRunResult::timelines).
  const par::ActivityRecorder& flat() const { return flat_; }

  /// Completed spans in chronological (completion) order.
  std::vector<SpanRec> spans() const;
  const std::vector<std::string>& names() const { return names_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Snapshot the recorded spans as a portable RankTrace. With
  /// \p include_open the currently open (unfinished) spans are appended
  /// as if they ended now — the flight recorder uses this so a postmortem
  /// names what each rank was doing when the run died.
  RankTrace trace(bool include_open = false) const;

  /// Names of the open spans, outermost first (postmortem diagnostics).
  std::vector<std::string> open_span_names() const;

  /// Packed innermost-open-span word for the sampling profiler (see
  /// pack_leaf). Safe to read from another thread.
  const std::atomic<std::uint64_t>& profile_leaf() const { return leaf_; }

  /// Liveness pulse: bumped by ScopedSpan entry at every trace level (one
  /// relaxed increment — no interning, no clock read, no recording), so a
  /// rank computing inside one long region span still advances a signal
  /// the watchdog can fold into its progress signature. Safe to read from
  /// another thread.
  void pulse() { activity_.fetch_add(1, std::memory_order_relaxed); }
  const std::atomic<std::uint64_t>& activity() const { return activity_; }

 private:
  struct Open {
    std::int32_t name_id;
    par::Region region;
    bool is_region;
    double t0;
  };

  std::int32_t intern(const char* name);
  void finish_top(bool expect_region);
  void push_completed(const SpanRec& s);
  void update_leaf();

  TraceLevel level_;
  std::size_t cap_;
  bool record_flat_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Open> stack_;
  std::vector<SpanRec> ring_;
  std::size_t head_ = 0;  // next overwrite slot once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<std::string> names_;
  std::map<std::string, std::int32_t, std::less<>> name_ids_;
  par::ActivityRecorder flat_;
  std::atomic<std::uint64_t> leaf_{0};
  std::atomic<std::uint64_t> activity_{0};
};

/// The per-rank telemetry context: tracer + metrics + comm stats.
class Telemetry {
 public:
  explicit Telemetry(const TelemetryOptions& opts = {});

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  CommStats& comm() { return comm_; }
  const CommStats& comm() const { return comm_; }

  /// Flattened (name, value) samples of every metric in the session.
  std::vector<std::pair<std::string, double>> snapshot() const;

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
  CommStats comm_;
};

/// The calling thread's installed session, or nullptr (instrumentation
/// no-ops without one).
Telemetry* current();

/// Installs \p t as the calling thread's session for the scope's lifetime;
/// restores the previous session (usually none) on exit.
class ScopedSession {
 public:
  explicit ScopedSession(Telemetry& t);
  ~ScopedSession();
  ScopedSession(const ScopedSession&) = delete;
  ScopedSession& operator=(const ScopedSession&) = delete;

 private:
  Telemetry* prev_;
};

/// RAII region span against the current session (no-op without one).
class ScopedRegion {
 public:
  explicit ScopedRegion(par::Region r);
  ~ScopedRegion();
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  Tracer* tracer_ = nullptr;
};

/// RAII named span; records only when a session is installed at kFull
/// (one thread-local read and a branch otherwise).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
};

/// Convenience metric helpers; no-ops without a session.
void count(const char* name, std::uint64_t v = 1);
void observe(const char* name, double v);
void gauge_max(const char* name, double v);

}  // namespace foam::telemetry

#define FOAM_TELEMETRY_CONCAT2(a, b) a##b
#define FOAM_TELEMETRY_CONCAT(a, b) FOAM_TELEMETRY_CONCAT2(a, b)

/// Hierarchical trace span covering the enclosing scope:
///   FOAM_TRACE_SCOPE("legendre_fold");
#define FOAM_TRACE_SCOPE(name)                                    \
  ::foam::telemetry::ScopedSpan FOAM_TELEMETRY_CONCAT(            \
      foam_trace_scope_, __LINE__)(name)
