#include "telemetry/observe.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <mutex>
#include <sstream>
#include <string_view>
#include <thread>
#include <utility>

#include "base/logging.hpp"
#include "telemetry/chrome_trace.hpp"

namespace foam::telemetry {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// The active run's observer. Ranks are threads in one process, so there
/// is at most one observed run at a time; the first ScopedRankObserver in
/// creates it, the last out releases it.
std::mutex g_mu;
std::shared_ptr<RunObserver> g_run;  // NOLINT(cert-err58-cpp)
int g_attached = 0;

/// The calling thread's attachment (set by attach_rank).
thread_local RunObserver* t_obs = nullptr;
thread_local int t_rank = -1;

/// Most recent postmortem trace path, for tests and drivers.
std::mutex g_last_mu;
std::string g_last_postmortem;  // NOLINT(cert-err58-cpp)
std::atomic<std::uint64_t> g_postmortem_seq{0};

/// Run state for the status feed.
enum : int { kRunning = 0, kFinished = 1, kAborted = 2 };

const char* state_name(int s) {
  switch (s) {
    case kFinished:
      return "finished";
    case kAborted:
      return "aborted";
    default:
      return "running";
  }
}

/// JSON number that never emits NaN/Inf (RFC 8259 has no spelling for
/// them; a stuck ETA reads as 0, not an invalid document).
void put_num(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// ObservabilityOptions
// ---------------------------------------------------------------------------

ObservabilityOptions ObservabilityOptions::from_env() {
  ObservabilityOptions o;
  if (const char* v = std::getenv("FOAM_OBSERVE"); v != nullptr && *v != 0) {
    o.flight_recorder = true;
    o.heartbeat = true;
    o.status = true;
    if (std::string_view(v) != "1") o.dir = v;
  }
  if (const char* v = std::getenv("FOAM_OBSERVE_WATCHDOG");
      v != nullptr && *v != 0) {
    o.watchdog_seconds = std::strtod(v, nullptr);
    if (o.watchdog_seconds > 0.0) o.heartbeat = true;
  }
  if (const char* v = std::getenv("FOAM_TELEMETRY");
      v != nullptr && std::string_view(v) == "profile")
    o.profile = true;
  return o;
}

// ---------------------------------------------------------------------------
// RunObserver::Impl
// ---------------------------------------------------------------------------

struct RunObserver::Impl {
  /// Per-rank slot. The heartbeat half is plain relaxed atomics (rank hot
  /// path, monitor reads); the snapshot half — including the pointer into
  /// the rank's live Tracer — is guarded by mu, and the dump path only
  /// try-locks it so a rank wedged mid-publish can never wedge the dump.
  struct Slot {
    std::atomic<std::uint64_t> beats{0};
    std::atomic<double> day{0.0};
    std::atomic<std::int64_t> beat_ns{0};
    std::atomic<const char*> op{nullptr};  // string literals only
    /// Nesting depth of tracked blocking comm waits (Comm::wait_state).
    /// The watchdog blames stuck ranks *outside* waits over peers parked
    /// inside them waiting for the stuck rank to show up.
    std::atomic<int> wait_depth{0};
    std::atomic<bool> done{false};

    std::mutex mu;
    // Pointers into the rank's live Tracer — valid only while attached.
    const std::atomic<std::uint64_t>* leaf = nullptr;
    const std::atomic<std::uint64_t>* activity = nullptr;
    bool has_published = false;
    RankTrace published;
    std::vector<std::string> open;
    std::vector<std::pair<std::string, double>> samples;
    /// Profiler accumulation: packed leaf word -> sample count. Written by
    /// the monitor under mu, read after the monitor is joined.
    std::map<std::uint64_t, std::uint64_t> prof;
  };

  ObservabilityOptions opts;
  int nranks = 0;
  std::string run_desc;
  double total_days = 0.0;
  Clock::time_point start = Clock::now();
  std::vector<std::unique_ptr<Slot>> slots;

  std::atomic<int> state{kRunning};
  std::mutex reason_mu;
  std::string reason;

  std::atomic<bool> dumped{false};
  std::atomic<bool> watchdog_fired{false};

  std::thread monitor;
  std::atomic<bool> stop{false};
  std::mutex join_mu;

  // Profiler tick bookkeeping for the effective sampling interval.
  std::atomic<std::uint64_t> ticks{0};
  std::atomic<std::int64_t> first_tick_ns{0};
  std::atomic<std::int64_t> last_tick_ns{0};

  /// Watchdog progress signatures (monitor-thread-only). A rank's
  /// signature folds everything its hot path mutates — beat count, leaf
  /// word, comm op, wait depth; a live rank churns it constantly, a
  /// wedged one goes static.
  struct WatchSig {
    std::uint64_t beats = 0;
    std::uint64_t leaf = 0;
    std::uint64_t pulses = 0;
    const char* op = nullptr;
    int wait_depth = 0;
    bool operator==(const WatchSig&) const = default;
  };
  std::vector<WatchSig> watch_sig;
  std::vector<std::int64_t> watch_change_ns;

  // Previously installed fatal-signal handlers (flight recorder only).
  std::vector<std::pair<int, void (*)(int)>> old_handlers;
};

namespace {

/// Fatal-signal hook: best-effort flight-recorder dump, then re-raise with
/// the default disposition so the process still dies with the right
/// status. Calling into the dump machinery (locks, allocation, stdio) is
/// not async-signal-safe; this path only runs when the process is already
/// doomed and the flight recorder was explicitly armed, where a torn dump
/// attempt is strictly better than no postmortem at all.
void fatal_signal_handler(int sig) {  // NOLINT(bugprone-signal-handler)
  const char* name = "fatal signal";
  switch (sig) {
    case SIGSEGV:
      name = "fatal signal SIGSEGV";
      break;
    case SIGBUS:
      name = "fatal signal SIGBUS";
      break;
    case SIGFPE:
      name = "fatal signal SIGFPE";
      break;
    case SIGILL:
      name = "fatal signal SIGILL";
      break;
    case SIGABRT:
      name = "fatal signal SIGABRT";
      break;
    default:
      break;
  }
  observe_abort(name);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

}  // namespace

// ---------------------------------------------------------------------------
// RunObserver
// ---------------------------------------------------------------------------

RunObserver::RunObserver(const ObservabilityOptions& opts, int nranks,
                         std::string run_desc, double total_days)
    : opts_(opts), impl_(std::make_unique<Impl>()) {
  // Watchdog and status feed both consume heartbeats.
  if (opts_.watchdog_seconds > 0.0 || opts_.status) opts_.heartbeat = true;
  impl_->opts = opts_;
  impl_->nranks = std::max(nranks, 1);
  impl_->run_desc = std::move(run_desc);
  impl_->total_days = total_days;
  impl_->slots.reserve(static_cast<std::size_t>(impl_->nranks));
  for (int r = 0; r < impl_->nranks; ++r)
    impl_->slots.push_back(std::make_unique<Impl::Slot>());

  if (opts_.flight_recorder) {
    for (const int sig : kFatalSignals) {
      void (*prev)(int) = std::signal(sig, fatal_signal_handler);
      if (prev != SIG_ERR) impl_->old_handlers.emplace_back(sig, prev);
    }
  }

  if (opts_.profile || opts_.status || opts_.watchdog_seconds > 0.0)
    impl_->monitor = std::thread([this] { monitor_loop(); });
}

RunObserver::~RunObserver() {
  join_monitor();
  for (const auto& [sig, prev] : impl_->old_handlers) std::signal(sig, prev);
}

void RunObserver::join_monitor() {
  const std::lock_guard<std::mutex> lk(impl_->join_mu);
  if (impl_->monitor.joinable()) {
    impl_->stop.store(true, std::memory_order_release);
    impl_->monitor.join();
  }
}

std::string RunObserver::status_path() const {
  return opts_.dir + "/status.json";
}

std::string RunObserver::last_postmortem_path() {
  const std::lock_guard<std::mutex> lk(g_last_mu);
  return g_last_postmortem;
}

void RunObserver::attach_rank(int rank) {
  if (rank < 0 || rank >= impl_->nranks) return;
  t_obs = this;
  t_rank = rank;
  Impl::Slot& s = *impl_->slots[static_cast<std::size_t>(rank)];
  const std::lock_guard<std::mutex> lk(s.mu);
  if (Telemetry* tel = current()) {
    s.leaf = &tel->tracer().profile_leaf();
    s.activity = &tel->tracer().activity();
  }
}

void RunObserver::detach_rank(int rank) {
  if (rank >= 0 && rank < impl_->nranks) {
    // The leaf pointer aims into the rank's Tracer, which dies with the
    // rank's stack frame — clear it under the slot mutex so the monitor
    // can never dereference a dangling pointer.
    Impl::Slot& s = *impl_->slots[static_cast<std::size_t>(rank)];
    const std::lock_guard<std::mutex> lk(s.mu);
    s.leaf = nullptr;
    s.activity = nullptr;
  }
  if (t_obs == this) {
    t_obs = nullptr;
    t_rank = -1;
  }
}

void RunObserver::beat(double day) {
  if (t_obs != this || t_rank < 0) return;
  Impl::Slot& s = *impl_->slots[static_cast<std::size_t>(t_rank)];
  s.day.store(day, std::memory_order_relaxed);
  s.beat_ns.store(now_ns(), std::memory_order_relaxed);
  s.beats.fetch_add(1, std::memory_order_relaxed);
}

void RunObserver::set_comm_op(const char* what) {
  if (t_obs != this || t_rank < 0) return;
  impl_->slots[static_cast<std::size_t>(t_rank)]->op.store(
      what, std::memory_order_relaxed);
}

void RunObserver::comm_wait(int delta) {
  if (t_obs != this || t_rank < 0) return;
  impl_->slots[static_cast<std::size_t>(t_rank)]->wait_depth.fetch_add(
      delta, std::memory_order_relaxed);
}

void RunObserver::publish_self() {
  if (t_obs != this || t_rank < 0) return;
  Telemetry* tel = current();
  if (tel == nullptr) return;
  // Build outside the lock: publish contends only with brief monitor
  // try-locks, never with trace assembly.
  RankTrace trace = tel->tracer().trace(/*include_open=*/true);
  std::vector<std::string> open = tel->tracer().open_span_names();
  std::vector<std::pair<std::string, double>> samples = tel->snapshot();
  Impl::Slot& s = *impl_->slots[static_cast<std::size_t>(t_rank)];
  const std::lock_guard<std::mutex> lk(s.mu);
  s.published = std::move(trace);
  s.open = std::move(open);
  s.samples = std::move(samples);
  s.has_published = true;
}

void RunObserver::finish_rank() {
  if (t_obs != this || t_rank < 0) return;
  publish_self();
  impl_->slots[static_cast<std::size_t>(t_rank)]->done.store(
      true, std::memory_order_release);
}

void RunObserver::finish_run(double final_day) {
  int expect = kRunning;
  impl_->state.compare_exchange_strong(expect, kFinished);
  if (opts_.status) write_status(final_day);
}

double RunObserver::profile_effective_interval() const {
  const std::uint64_t n = impl_->ticks.load(std::memory_order_acquire);
  if (n < 2) return opts_.profile_interval_seconds;
  const double span =
      static_cast<double>(impl_->last_tick_ns.load(std::memory_order_acquire) -
                          impl_->first_tick_ns.load(
                              std::memory_order_acquire)) *
      1e-9;
  return span / static_cast<double>(n - 1);
}

std::vector<ProfileEntry> RunObserver::profile_snapshot() {
  join_monitor();
  std::vector<ProfileEntry> out;
  for (int r = 0; r < impl_->nranks; ++r) {
    Impl::Slot& s = *impl_->slots[static_cast<std::size_t>(r)];
    const std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& [word, count] : s.prof) {
      ProfileEntry e;
      e.rank = r;
      e.region = leaf_region(word);
      const auto id = leaf_name_id(word);
      if (id >= 0 &&
          id < static_cast<std::int32_t>(s.published.names.size()))
        e.name = s.published.names[static_cast<std::size_t>(id)];
      else
        e.name = par::region_name(e.region);
      e.samples = count;
      out.push_back(std::move(e));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.name < b.name;
            });
  return out;
}

// ---------------------------------------------------------------------------
// Status feed
// ---------------------------------------------------------------------------

void RunObserver::write_status(double final_day) {
  Impl& im = *impl_;
  AtomicJsonFile out(status_path());
  if (!out.ok()) return;
  std::ostream& os = out.stream();

  const int state = im.state.load(std::memory_order_acquire);
  const double wall =
      std::chrono::duration<double>(Clock::now() - im.start).count();
  const std::int64_t now = now_ns();

  struct RankRow {
    std::uint64_t beats = 0;
    double day = 0.0;
    double age = 0.0;
    const char* op = nullptr;
    bool done = false;
    std::string region = "?";
    std::vector<std::string> open;
  };
  std::vector<RankRow> rows(static_cast<std::size_t>(im.nranks));
  std::map<std::string, double> counters;
  double min_day = -1.0;
  for (int r = 0; r < im.nranks; ++r) {
    Impl::Slot& s = *im.slots[static_cast<std::size_t>(r)];
    RankRow& row = rows[static_cast<std::size_t>(r)];
    row.beats = s.beats.load(std::memory_order_relaxed);
    row.day = s.day.load(std::memory_order_relaxed);
    row.op = s.op.load(std::memory_order_relaxed);
    row.done = s.done.load(std::memory_order_acquire);
    if (row.beats > 0) {
      row.age = static_cast<double>(
                    now - s.beat_ns.load(std::memory_order_relaxed)) *
                1e-9;
      if (min_day < 0.0 || row.day < min_day) min_day = row.day;
    }
    // try-lock: a rank mid-publish (or wedged there after a crash) only
    // costs this status tick its extras, never blocks the feed.
    const std::unique_lock<std::mutex> lk(s.mu, std::try_to_lock);
    if (lk.owns_lock()) {
      if (s.leaf != nullptr) {
        const std::uint64_t v = s.leaf->load(std::memory_order_relaxed);
        if (leaf_open(v)) row.region = par::region_name(leaf_region(v));
      }
      row.open = s.open;
      for (const auto& [name, value] : s.samples) {
        // Skip the per-peer breakdowns; the feed wants run-level totals.
        if (name.find(".peer") != std::string::npos) continue;
        counters[name] += value;
      }
    }
  }
  double day = final_day >= 0.0 ? final_day : std::max(min_day, 0.0);
  if (state == kFinished && final_day < 0.0) day = im.total_days;
  const double days_per_hour = wall > 0.0 ? day / wall * 3600.0 : 0.0;
  const double eta = (state == kRunning && day > 0.0 && im.total_days > day)
                         ? (im.total_days - day) * wall / day
                         : 0.0;

  os << "{\"kind\": \"foam.status\", \"schema\": 1, \"state\": \""
     << state_name(state) << "\",\n\"reason\": ";
  {
    const std::lock_guard<std::mutex> lk(im.reason_mu);
    if (im.reason.empty())
      os << "null";
    else
      json_quote(os, im.reason);
  }
  os << ",\n\"run\": ";
  json_quote(os, im.run_desc);
  os << ", \"world_size\": " << im.nranks << ", \"total_days\": ";
  put_num(os, im.total_days);
  os << ",\n\"simulated_day\": ";
  put_num(os, day);
  os << ", \"wall_seconds\": ";
  put_num(os, wall);
  os << ", \"days_per_hour\": ";
  put_num(os, days_per_hour);
  os << ", \"eta_seconds\": ";
  put_num(os, eta);
  os << ",\n\"ranks\": [";
  for (int r = 0; r < im.nranks; ++r) {
    const RankRow& row = rows[static_cast<std::size_t>(r)];
    os << (r == 0 ? "\n" : ",\n") << "{\"rank\": " << r
       << ", \"beats\": " << row.beats << ", \"day\": ";
    put_num(os, row.day);
    os << ", \"age_seconds\": ";
    put_num(os, row.age);
    os << ", \"done\": " << (row.done ? "true" : "false")
       << ", \"region\": ";
    json_quote(os, row.region);
    os << ", \"op\": ";
    if (row.op != nullptr)
      json_quote(os, row.op);
    else
      os << "null";
    os << ", \"open_spans\": [";
    for (std::size_t i = 0; i < row.open.size(); ++i) {
      if (i > 0) os << ", ";
      json_quote(os, row.open[i]);
    }
    os << "]}";
  }
  os << "\n],\n\"counters\": {";
  // Top counters by magnitude keep the feed small and scannable.
  std::vector<std::pair<std::string, double>> top(counters.begin(),
                                                  counters.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    return std::abs(a.second) > std::abs(b.second);
  });
  if (top.size() > 12) top.resize(12);
  std::sort(top.begin(), top.end());
  for (std::size_t i = 0; i < top.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    json_quote(os, top[i].first);
    os << ": ";
    put_num(os, top[i].second);
  }
  os << "\n}\n}\n";
  out.commit();
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

bool RunObserver::dump(const std::string& reason) {
  Impl& im = *impl_;
  bool expected = false;
  if (!im.dumped.compare_exchange_strong(expected, true)) return false;

  // The aborting rank's own trace — including its open spans — goes in
  // live; everyone else contributes their last published snapshot.
  publish_self();
  {
    const std::lock_guard<std::mutex> lk(im.reason_mu);
    im.reason = reason;
  }
  im.state.store(kAborted, std::memory_order_release);

  bool wrote = false;
  if (opts_.flight_recorder) {
    struct RankMeta {
      bool published = false;
      double day = 0.0;
      std::uint64_t beats = 0;
      double age = 0.0;
      const char* op = nullptr;
      std::vector<std::string> open;
      std::uint64_t dropped = 0;
      std::vector<std::pair<std::string, double>> samples;
    };
    std::vector<RankTrace> ranks(static_cast<std::size_t>(im.nranks));
    std::vector<RankMeta> meta(static_cast<std::size_t>(im.nranks));
    const std::int64_t now = now_ns();
    for (int r = 0; r < im.nranks; ++r) {
      Impl::Slot& s = *im.slots[static_cast<std::size_t>(r)];
      RankMeta& m = meta[static_cast<std::size_t>(r)];
      m.day = s.day.load(std::memory_order_relaxed);
      m.beats = s.beats.load(std::memory_order_relaxed);
      m.op = s.op.load(std::memory_order_relaxed);
      if (m.beats > 0)
        m.age = static_cast<double>(
                    now - s.beat_ns.load(std::memory_order_relaxed)) *
                1e-9;
      // try-lock with a short grace: a rank wedged mid-publish (crash
      // inside the slot lock) must not wedge the postmortem.
      std::unique_lock<std::mutex> lk(s.mu, std::try_to_lock);
      for (int attempt = 0; !lk.owns_lock() && attempt < 50; ++attempt) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        (void)lk.try_lock();
      }
      if (lk.owns_lock() && s.has_published) {
        m.published = true;
        ranks[static_cast<std::size_t>(r)] = s.published;
        m.open = s.open;
        m.dropped = s.published.dropped;
        m.samples = s.samples;
      }
    }

    const std::uint64_t seq =
        g_postmortem_seq.fetch_add(1, std::memory_order_relaxed);
    const std::string base =
        opts_.dir + "/postmortem." +
        std::to_string(static_cast<long long>(std::time(nullptr))) + "." +
        std::to_string(seq);
    const std::string trace_path = base + ".trace.json";

    // The postmortem is itself a Chrome trace document (Perfetto loads it
    // directly); the extra foamPostmortem key carries the diagnosis.
    AtomicJsonFile out(trace_path);
    if (out.ok()) {
      std::ostream& os = out.stream();
      os << "{\n\"foamPostmortem\": {\"schema\": 1, \"reason\": ";
      json_quote(os, reason);
      os << ",\n\"run\": ";
      json_quote(os, im.run_desc);
      os << ", \"world_size\": " << im.nranks << ",\n\"ranks\": [";
      for (int r = 0; r < im.nranks; ++r) {
        const RankMeta& m = meta[static_cast<std::size_t>(r)];
        os << (r == 0 ? "\n" : ",\n") << "{\"rank\": " << r
           << ", \"published\": " << (m.published ? "true" : "false")
           << ", \"day\": ";
        put_num(os, m.day);
        os << ", \"beats\": " << m.beats << ", \"heartbeat_age_seconds\": ";
        put_num(os, m.age);
        os << ", \"last_comm_op\": ";
        if (m.op != nullptr)
          json_quote(os, m.op);
        else
          os << "null";
        os << ", \"dropped_spans\": " << m.dropped << ", \"open_spans\": [";
        for (std::size_t i = 0; i < m.open.size(); ++i) {
          if (i > 0) os << ", ";
          json_quote(os, m.open[i]);
        }
        os << "]}";
      }
      os << "\n]},\n\"traceEvents\": [";
      chrome_trace_events(os, ranks);
      os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
      wrote = out.commit();
    }

    if (wrote) {
      AtomicJsonFile counters(base + ".counters.json");
      if (counters.ok()) {
        std::ostream& os = counters.stream();
        os << "{\"kind\": \"foam.postmortem.counters\", \"schema\": 1, "
              "\"reason\": ";
        json_quote(os, reason);
        os << ",\n\"ranks\": [";
        for (int r = 0; r < im.nranks; ++r) {
          const RankMeta& m = meta[static_cast<std::size_t>(r)];
          os << (r == 0 ? "\n" : ",\n") << "{\"rank\": " << r
             << ", \"counters\": {";
          for (std::size_t i = 0; i < m.samples.size(); ++i) {
            os << (i == 0 ? "" : ", ");
            json_quote(os, m.samples[i].first);
            os << ": ";
            put_num(os, m.samples[i].second);
          }
          os << "}}";
        }
        os << "\n]}\n";
        counters.commit();
      }
      {
        const std::lock_guard<std::mutex> lk(g_last_mu);
        g_last_postmortem = trace_path;
      }
      FOAM_LOG_ERROR << "flight recorder: wrote " << trace_path << " ("
                     << reason << ")";
    } else {
      FOAM_LOG_ERROR << "flight recorder: failed to write " << trace_path;
    }
  }

  if (opts_.status) write_status(-1.0);
  return wrote;
}

// ---------------------------------------------------------------------------
// Monitor thread: profiler sampling + status feed + watchdog
// ---------------------------------------------------------------------------

void RunObserver::monitor_loop() {
  Impl& im = *impl_;
  const bool profiling = opts_.profile;
  const bool status = opts_.status;
  const double watchdog = opts_.watchdog_seconds;

  double base_s = 0.05;
  if (status) base_s = std::min(base_s, opts_.status_interval_seconds);
  if (watchdog > 0.0) base_s = std::min(base_s, watchdog / 4.0);
  if (profiling) base_s = opts_.profile_interval_seconds;
  base_s = std::max(base_s, 1e-5);
  const auto period = std::chrono::nanoseconds(
      static_cast<std::int64_t>(base_s * 1e9));
  const auto status_iv = std::chrono::nanoseconds(
      static_cast<std::int64_t>(
          std::max(opts_.status_interval_seconds, 1e-3) * 1e9));
  const auto watch_iv = std::chrono::nanoseconds(static_cast<std::int64_t>(
      std::max(watchdog / 4.0, 1e-3) * 1e9));

  auto next = Clock::now() + period;
  auto next_status = Clock::now() + status_iv;
  auto next_watch = Clock::now() + watch_iv;
  while (!im.stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_until(next);
    const auto now = Clock::now();
    next += period;
    if (next < now) next = now + period;

    if (profiling) {
      // Real tick timestamps drive the effective sampling interval:
      // sleep_until overshoot would otherwise bias time attribution low.
      const std::int64_t ns = now.time_since_epoch().count();
      if (im.ticks.fetch_add(1, std::memory_order_relaxed) == 0)
        im.first_tick_ns.store(ns, std::memory_order_release);
      im.last_tick_ns.store(ns, std::memory_order_release);
      for (const auto& slot : im.slots) {
        const std::unique_lock<std::mutex> lk(slot->mu, std::try_to_lock);
        if (!lk.owns_lock() || slot->leaf == nullptr) continue;
        const std::uint64_t v = slot->leaf->load(std::memory_order_relaxed);
        if (leaf_open(v)) ++slot->prof[v];
      }
    }

    if (status && now >= next_status) {
      if (im.state.load(std::memory_order_acquire) == kRunning)
        write_status(-1.0);
      next_status = now + status_iv;
    }

    if (watchdog > 0.0 && now >= next_watch) {
      check_watchdog();
      next_watch = now + watch_iv;
    }
  }
}

void RunObserver::check_watchdog() {
  Impl& im = *impl_;
  if (im.watchdog_fired.load(std::memory_order_acquire)) return;
  if (im.state.load(std::memory_order_acquire) != kRunning) return;
  const std::int64_t now = now_ns();
  if (im.watch_sig.empty()) {
    im.watch_sig.resize(static_cast<std::size_t>(im.nranks));
    im.watch_change_ns.assign(static_cast<std::size_t>(im.nranks), now);
  }
  // Heartbeat age alone cannot name a stalled rank: beats land once per
  // exchange, so a rank slowly *computing* its way through an interval is
  // indistinguishable from a wedged one, and a wedged rank drags its
  // peers into blocked waits on the same timescale. Two semantic signals
  // fix both failure modes: (a) progress — a live rank constantly churns
  // its tracer leaf word (region/span begin-end) and its liveness pulse
  // (every FOAM_TRACE_SCOPE entry at every trace level, so a rank deep in
  // compute inside one long region still advances it), and only a rank
  // whose whole signature has been static past the deadline counts;
  // (b) blame — the victims are parked *inside* tracked comm waits
  // (wait_depth > 0, Comm::wait_state) waiting for the culprit, which is
  // stuck outside any wait (Comm::stall deliberately does not mark one).
  int worst = -1;
  double worst_age = 0.0;
  for (int r = 0; r < im.nranks; ++r) {
    Impl::Slot& s = *im.slots[static_cast<std::size_t>(r)];
    Impl::WatchSig sig;
    sig.beats = s.beats.load(std::memory_order_relaxed);
    sig.op = s.op.load(std::memory_order_relaxed);
    sig.wait_depth = s.wait_depth.load(std::memory_order_relaxed);
    bool alive = false;
    {
      const std::unique_lock<std::mutex> lk(s.mu, std::try_to_lock);
      if (lk.owns_lock()) {
        if (s.leaf != nullptr)
          sig.leaf = s.leaf->load(std::memory_order_relaxed);
        if (s.activity != nullptr)
          sig.pulses = s.activity->load(std::memory_order_relaxed);
      } else {
        // Mid-publish: the rank is alive by definition.
        alive = true;
      }
    }
    if (alive || !(sig == im.watch_sig[static_cast<std::size_t>(r)])) {
      im.watch_sig[static_cast<std::size_t>(r)] = sig;
      im.watch_change_ns[static_cast<std::size_t>(r)] = now;
      continue;
    }
    // No beat yet (still starting) or already done (teardown skew): the
    // deadline only applies to ranks mid-run; a static rank parked in a
    // tracked wait is a victim, never the wedge.
    if (sig.beats == 0) continue;
    if (s.done.load(std::memory_order_acquire)) continue;
    if (sig.wait_depth > 0) continue;
    const double age =
        static_cast<double>(
            now - im.watch_change_ns[static_cast<std::size_t>(r)]) *
        1e-9;
    if (age > opts_.watchdog_seconds && age > worst_age) {
      worst = r;
      worst_age = age;
    }
  }
  if (worst >= 0) {
    const int r = worst;
    const double age = worst_age;
    Impl::Slot& s = *im.slots[static_cast<std::size_t>(r)];

    std::string region = "?";
    std::string open;
    {
      const std::unique_lock<std::mutex> lk(s.mu, std::try_to_lock);
      if (lk.owns_lock()) {
        if (s.leaf != nullptr) {
          const std::uint64_t v = s.leaf->load(std::memory_order_relaxed);
          if (leaf_open(v)) region = par::region_name(leaf_region(v));
        }
        if (!s.open.empty()) open = s.open.back();
      }
    }
    const char* op = s.op.load(std::memory_order_relaxed);
    std::ostringstream msg;
    msg << "watchdog: rank " << r << " stalled " << age << "s (deadline "
        << opts_.watchdog_seconds << "s) at day "
        << s.day.load(std::memory_order_relaxed) << ", region " << region;
    if (!open.empty()) msg << ", span \"" << open << '"';
    if (op != nullptr) msg << ", last comm op " << op;
    im.watchdog_fired.store(true, std::memory_order_release);
    FOAM_LOG_ERROR << msg.str();
    // The whole point: land the postmortem before the deadlock detector's
    // abort tears the ranks down.
    dump(msg.str());
    return;
  }
}

// ---------------------------------------------------------------------------
// ScopedRankObserver + free hooks
// ---------------------------------------------------------------------------

ScopedRankObserver::ScopedRankObserver(const ObservabilityOptions& opts,
                                       int rank, int nranks,
                                       const std::string& run_desc,
                                       double total_days) {
  if (!opts.any()) return;
  {
    const std::lock_guard<std::mutex> lk(g_mu);
    if (!g_run)
      g_run = std::make_shared<RunObserver>(opts, nranks, run_desc,
                                            total_days);
    ++g_attached;
    obs_ = g_run;
  }
  rank_ = rank;
  obs_->attach_rank(rank);
}

ScopedRankObserver::~ScopedRankObserver() {
  if (!obs_) return;
  // Running during exception unwind means this rank is dying with the
  // telemetry session still installed — the last chance to capture its
  // live trace (open spans included) before the stack frame goes away.
  if (std::uncaught_exceptions() > 0)
    obs_->dump("rank " + std::to_string(rank_) + " aborted by exception");
  obs_->detach_rank(rank_);
  {
    const std::lock_guard<std::mutex> lk(g_mu);
    // obs_ still holds a reference, so the observer (and its monitor
    // join) is never destroyed while g_mu is held.
    if (--g_attached == 0) g_run.reset();
  }
  obs_.reset();
}

void observe_comm_op(const char* what) {
  if (t_obs != nullptr) t_obs->set_comm_op(what);
}

ScopedCommWait::ScopedCommWait(const char* what) {
  if (t_obs == nullptr) return;
  t_obs->set_comm_op(what);
  t_obs->comm_wait(+1);
}

ScopedCommWait::~ScopedCommWait() {
  if (t_obs != nullptr) t_obs->comm_wait(-1);
}

void observe_publish() {
  if (t_obs != nullptr) t_obs->publish_self();
}

bool observe_abort(const std::string& reason) {
  std::shared_ptr<RunObserver> run;
  {
    const std::lock_guard<std::mutex> lk(g_mu);
    run = g_run;
  }
  if (!run) return false;
  return run->dump(reason);
}

}  // namespace foam::telemetry
