#pragma once

/// \file model.hpp
/// The FOAM parallel ocean model (and, by configuration, its conventional
/// baseline).
///
/// A z-level primitive-equation ocean on an unstaggered (A-grid) Mercator
/// grid, following the description in paper §4.2:
///  * linear (non-advective) momentum dynamics with leapfrog time stepping
///    (Robert-Asselin filtered), explicit Coriolis, hydrostatic baroclinic
///    pressure gradients, wind stress, implicit Pacanowski-Philander
///    vertical mixing with a steepened Richardson dependency, Laplacian
///    lateral viscosity and del^4 dissipation against A-grid mode splitting;
///  * an explicitly represented free surface whose dynamics are
///    artificially *slowed* (continuity scaled by 1/slow_factor, reducing
///    the external wave speed by sqrt(slow_factor) while leaving steady
///    circulation unchanged);
///  * the fast 2-D barotropic subsystem *split* from the internal mode and
///    subcycled forward-backward with a short step while the internal ocean
///    takes a long one;
///  * an even longer leapfrog step for the advective/diffusive (tracer)
///    processes, with centered advection so the internal-wave coupling
///    between momentum and buoyancy stays neutral.
///
/// Parallelization: the domain is distributed in balanced contiguous boxes
/// over a px * py Cartesian rank grid (par::Decomp2D; px = 1 reproduces the
/// historic latitude-row decomposition rank-for-rank). Each rank computes
/// its box and keeps a one-cell halo ring current through nonblocking
/// message passing (rows first, then periodic columns over the extended row
/// range, so corners arrive consistent). Zonal operations that need whole
/// rows — the polar Fourier filter — gather the polar rows across the
/// process row, filter them cooperatively (a balanced share per rank), and
/// write back the owned segments. With comm == nullptr the model runs
/// serially.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/field.hpp"
#include "base/history.hpp"
#include "numerics/filters.hpp"
#include "numerics/grid.hpp"
#include "ocean/config.hpp"
#include "ocean/vgrid.hpp"
#include "par/comm.hpp"
#include "par/decomp.hpp"

namespace foam::ocean {

/// Diagnostics snapshot returned by OceanModel::diagnostics().
struct OceanDiagnostics {
  double mean_sst = 0.0;      ///< area-weighted mean SST [deg C]
  double mean_kinetic = 0.0;  ///< mean kinetic energy density [m^2/s^2]
  double max_speed = 0.0;     ///< max |u| over the full state [m/s]
  double max_eta = 0.0;       ///< max |eta| [m]
  double mean_temp_3d = 0.0;  ///< volume-mean temperature [deg C]
  double frazil_heat = 0.0;   ///< accumulated freeze-clamp heat [J/m^2]
};

/// One coupling interval's surface forcing, applied atomically through
/// OceanModel::set_forcing. Null members keep the previously set field;
/// wind components must be supplied together. Every supplied field is
/// shape-checked before any is copied, so a malformed bundle can never
/// leave the model with a half-updated forcing state.
struct OceanForcing {
  const Field2Dd* wind_x = nullptr;      ///< zonal wind stress [N/m^2]
  const Field2Dd* wind_y = nullptr;      ///< meridional wind stress [N/m^2]
  const Field2Dd* heat = nullptr;        ///< net heat flux [W/m^2, into ocean]
  const Field2Dd* freshwater = nullptr;  ///< freshwater flux [m/s liquid]
  const Field2Dd* ice = nullptr;         ///< sea-ice cell fraction [0..1]
};

class OceanModel {
 public:
  /// The grid and bathymetry must outlive the model. \p comm may be null
  /// (serial); otherwise the domain is decomposed over a px * (size/px)
  /// rank grid (px must divide the communicator size) and every rank must
  /// construct the model with the same arguments. px = 1 is the historic
  /// row decomposition.
  OceanModel(const OceanConfig& cfg, const numerics::MercatorGrid& grid,
             const Field2Dd& bathymetry, par::Comm* comm = nullptr,
             int px = 1);

  /// Initialize T/S to an analytic stratified climatology and the
  /// velocities to thermal-wind balance.
  void init_climatology();

  // --- forcing (set on full-size fields; only owned cells are read) ------
  /// Apply one coupling interval's forcing bundle atomically.
  void set_forcing(const OceanForcing& f);
  [[deprecated("use set_forcing(OceanForcing)")]] void set_wind_stress(
      const Field2Dd& taux, const Field2Dd& tauy);
  /// Net surface heat flux [W/m^2, positive into the ocean].
  [[deprecated("use set_forcing(OceanForcing)")]] void set_heat_flux(
      const Field2Dd& qnet);
  /// Net freshwater flux [m/s of liquid water, positive into the ocean].
  [[deprecated("use set_forcing(OceanForcing)")]] void set_freshwater_flux(
      const Field2Dd& fw);
  /// Fraction of each cell covered by sea ice (clamps SST; scales stress by
  /// 1/ice_stress_divisor per the paper).
  [[deprecated("use set_forcing(OceanForcing)")]] void set_ice_fraction(
      const Field2Dd& ice);

  /// Advance one internal (momentum) step dt_mom, subcycling the barotropic
  /// system and taking a tracer step when due.
  void step();
  /// Advance a whole number of days.
  void run_days(double days);

  double time_seconds() const {
    return static_cast<double>(steps_) * cfg_.dt_mom;
  }
  std::int64_t step_count() const { return steps_; }
  const OceanConfig& config() const { return cfg_; }
  const VerticalGrid& vgrid() const { return vgrid_; }
  const Field2D<int>& levels() const { return levels_; }

  // --- state access -------------------------------------------------------
  /// SST [deg C]: valid on owned cells (serial: everywhere).
  Field2Dd sst() const;
  /// Full-field gather of any 2-D box-decomposed field (collective).
  Field2Dd gather(const Field2Dd& f) const;
  const Field2Dd& eta() const { return eta_; }
  const Field3Dd& temperature() const { return t_; }
  const Field3Dd& salinity() const { return s_; }
  /// Full velocities (baroclinic + barotropic) [m/s].
  double u_total(int i, int j, int k) const {
    return up_(i, j, k) + ub_(i, j);
  }
  double v_total(int i, int j, int k) const {
    return vp_(i, j, k) + vb_(i, j);
  }

  /// Collective diagnostics over the whole domain.
  OceanDiagnostics diagnostics() const;

  /// Per-cell freeze-clamp heat accumulated since the last drain [J/m^2]
  /// (the coupler turns it into sea-ice growth); draining resets it.
  Field2Dd drain_frazil();

  /// Checkpoint the full prognostic state (serial use; records are written
  /// under \p prefix). Restart with load_state on a freshly constructed
  /// model with identical configuration.
  void save_state(HistoryWriter& out, const std::string& prefix) const;
  void load_state(const HistoryReader& in, const std::string& prefix);

  /// Abstract cost: grid-point updates performed so far, the paper's
  /// "number of computations required per unit of simulated time" metric
  /// behind the ~10x formulation claim.
  double work_points() const { return work_points_; }

  /// Owned row range [row_lo, row_hi).
  int row_lo() const { return j0_; }
  int row_hi() const { return j1_; }
  /// Owned column range [col_lo, col_hi).
  int col_lo() const { return i0_; }
  int col_hi() const { return i1_; }
  /// The rank grid this model was decomposed on (1x1 when serial).
  const par::Decomp2D& decomp() const { return decomp_; }

 private:
  bool wet(int i, int j, int k) const { return levels_(i, j) > k; }
  double dx(int j) const { return grid_.dx(j); }
  double dy(int j) const { return grid_.dy(j); }

  void exchange_halo(Field2Dd& f);
  void exchange_halo(Field3Dd& f);
  /// Gather full x-rows across the process row: \p mine holds this rank's
  /// owned segment of each of \p nslots rows, slot-major; returns
  /// nslots * nx values, each slot a complete zonal row (replicated on
  /// every rank of the row communicator).
  std::vector<double> row_gather_full(const std::vector<double>& mine,
                                      int nslots) const;
  /// Filter \p nslots gathered full rows cooperatively across the process
  /// row: row-comm rank r filters slots r, r+P, ... in place (each slot's
  /// grid row given by \p j_of, wet mask filled by \p fill_mask), then the
  /// filtered rows are re-shared so every rank returns with all slots
  /// filtered. The filter is deterministic, so the result is bitwise
  /// independent of which rank filtered which slot.
  void filter_rows_distributed(
      std::vector<double>& full, int nslots,
      const std::function<int(int)>& j_of,
      const std::function<void(int, int*)>& fill_mask);
  void density();
  void baroclinic_pressure();
  void pressure_forces();  // fills gx_, gy_, fbar_x_, fbar_y_ from pbc_
  void internal_momentum_step();
  void barotropic_subcycle();
  void tracer_step();
  void vertical_mixing_coefficients();
  void convective_adjustment();
  void apply_polar_filter_row(double* row, int j, const int* rowmask);
  void apply_polar_filter_2d(Field2Dd& f);
  void apply_polar_filter_3d(Field3Dd& f);
  void enforce_zero_depth_mean();
  void index_biharmonic_filter(Field2Dd& f, double eps);
  void init_thermal_wind();
  /// Vertical velocity at layer-top interfaces from the baroclinic
  /// deviation velocities (positive up); fills wtop_.
  void diagnose_w();
  /// Implicit vertical diffusion solve of one 3-D field with the given
  /// interface coefficient field over time dt.
  void implicit_vertical(Field3Dd& f, const Field3Dd& coeff, double dt);

  OceanConfig cfg_;
  const numerics::MercatorGrid& grid_;
  par::Comm* comm_;
  VerticalGrid vgrid_;
  Field2D<int> levels_;
  Field2D<int> mask2d_;
  Field2Dd depth_;  // actual wet column depth [m]
  numerics::PolarFourierFilter filter_;

  par::Decomp2D decomp_;
  int pi_ = 0, pj_ = 0;  // this rank's coordinates on the rank grid
  int j0_ = 0;  // owned rows [j0, j1)
  int j1_ = 0;
  int i0_ = 0;  // owned columns [i0, i1)
  int i1_ = 0;
  /// Columns visited by extended-range loops: owned columns plus (when
  /// px > 1) the wrapped halo column on each side.
  std::vector<int> xext_;
  /// Communicator over the ranks sharing this process row (key = pi), used
  /// by the polar-filter row gather; null when px == 1.
  std::unique_ptr<par::Comm> row_comm_;

  // State (leapfrog: current and previous levels).
  Field3Dd up_, vp_;            // baroclinic deviation velocity [m/s]
  Field3Dd up_prev_, vp_prev_;  // previous time level
  Field3Dd t_, s_;              // temperature [C], salinity [psu]
  Field3Dd t_prev_, s_prev_;    // previous tracer time level
  Field2Dd eta_;                // free surface [m]
  Field2Dd ub_, vb_;            // barotropic velocity [m/s]
  bool have_mom_prev_ = false;
  bool have_tracer_prev_ = false;

  // Work arrays.
  Field3Dd rho_, pbc_, nu_, kappa_, gx_, gy_, wtop_;
  Field2Dd fbar_x_, fbar_y_;

  // Forcing.
  Field2Dd taux_, tauy_, qnet_, fw_, ice_;

  std::int64_t steps_ = 0;
  double work_points_ = 0.0;
  double frazil_heat_ = 0.0;
  Field2Dd frazil_cell_;
};

/// Analytic wind stress for ocean-only experiments: tropical easterlies,
/// mid-latitude westerlies, polar decay [N/m^2].
double analytic_zonal_stress(double lat_rad);

/// Restoring heat flux toward the SST climatology [W/m^2]:
/// q = lambda * (T_clim - sst).
Field2Dd restoring_heat_flux(const numerics::MercatorGrid& grid,
                             const Field2Dd& sst, int month,
                             double lambda_w_m2_k = 40.0);

}  // namespace foam::ocean
