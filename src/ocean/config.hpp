#pragma once

/// \file config.hpp
/// Configuration of the ocean model.
///
/// The same OceanModel implements both the FOAM ocean and the conventional
/// baseline; the config selects the three speed techniques of paper §4.2:
///   1. slowed barotropic dynamics  (slow_factor > 1),
///   2. split free surface subcycled against the internal step
///      (split_barotropic),
///   3. a longer tracer (advective/diffusive) step (tracer_every > 1).

namespace foam::ocean {

struct OceanConfig {
  int nx = 128;
  int ny = 128;
  int nz = 16;

  double total_depth = 4800.0;  ///< [m]
  double dz_top = 25.0;         ///< surface layer thickness [m]

  /// Internal (baroclinic momentum) time step [s].
  double dt_mom = 3600.0;
  /// Barotropic subcycles per internal step (split mode).
  int nsub_baro = 8;
  /// Tracer step = tracer_every * dt_mom.
  int tracer_every = 2;
  /// External gravity-wave slowing: continuity is scaled by 1/slow_factor,
  /// i.e. the wave speed is reduced by sqrt(slow_factor). 1 = true gravity.
  double slow_factor = 100.0;
  /// Split the free surface into a subcycled 2-D subsystem. When false the
  /// barotropic terms are advanced inside the internal step (conventional
  /// explicit free-surface formulation) and dt_mom must satisfy the
  /// external-wave CFL.
  bool split_barotropic = true;

  /// Robert-Asselin filter coefficient for the leapfrog steps.
  double asselin = 0.08;
  /// Clamp on the diagnosed vertical velocity [m/s] (~70 m/day); larger
  /// values at this resolution are cliff-column artifacts.
  double w_clamp = 1.5e-5;

  /// Laplacian lateral viscosity [m^2/s]; the Munk-layer-scale friction
  /// every coarse z-level ocean of this era carried.
  double visc_h = 2.0e5;
  /// Divergence damping on the baroclinic velocities [m^2/s], capped per
  /// row at 0.1*dx^2/dt: damps the divergent (internal-gravity-wave) part
  /// of the flow, leaving the rotational circulation untouched.
  double div_damp = 2.0e6;
  /// Rayleigh drag on the baroclinic deviation velocities [1/s].
  double rayleigh = 4.0e-5;
  /// Hard safety clamps [m/s]; currents beyond these are numerical.
  double max_baroclinic = 0.8;
  double max_barotropic = 0.5;
  /// Per-step retention factor applied to the wall-normal velocity
  /// component of wall-adjacent cells (a staggered grid would carry that
  /// component on the wall and zero it).
  double wall_normal_retain = 0.7;
  /// Biharmonic momentum dissipation [m^4/s] ("del^4 numerical dissipation"
  /// preventing A-grid mode splitting), capped per row for stability.
  double visc4 = 8.0e15;
  /// Laplacian tracer diffusivity [m^2/s].
  double kappa_h = 2.0e3;
  /// Background vertical viscosity / diffusivity [m^2/s].
  double nu_b = 1.0e-4;
  double kappa_b = 1.0e-5;
  /// Pacanowski-Philander surface mixing scale [m^2/s].
  double nu0 = 1.0e-2;
  /// Richardson-number exponent: 2 = PP81, 3 = the steeper dependency
  /// consistent with Peters, Gregg & Toole that the paper adopted.
  double ri_exponent = 3.0;
  /// Linear bottom drag on the barotropic mode [1/s].
  double bottom_drag = 4.0e-5;
  /// Linear drag on the deepest layer's deviation velocity [1/s];
  /// stands in for an unresolved bottom boundary layer.
  double deep_drag = 1.0e-5;
  /// Strength of the index-space del^4 filter on the barotropic fields.
  double baro_filter_eps = 0.4;

  /// Polar Fourier filter critical latitude [deg].
  double filter_lat = 60.0;

  /// Linear equation of state.
  double rho0 = 1025.0;
  double alpha_t = 2.0e-4;  ///< 1/K
  double beta_s = 8.0e-4;   ///< 1/psu
  double t_ref = 10.0;      ///< deg C
  double s_ref = 35.0;      ///< psu

  // --- process switches (ablation/debug; all on for production) ----------
  bool enable_baroclinic_pg = true;
  bool enable_vert_adv = true;
  bool enable_horiz_adv = true;
  bool enable_vmix = true;
  bool enable_convect = true;
  bool enable_ts_filter = true;

  /// FOAM production configuration (paper §4.2).
  static OceanConfig foam_default() { return OceanConfig{}; }

  /// Conventional explicit free-surface ocean: no splitting, no slowing,
  /// tracers every step, dt limited by the external wave CFL.
  static OceanConfig conventional() {
    OceanConfig c;
    c.split_barotropic = false;
    c.slow_factor = 1.0;
    c.tracer_every = 1;
    c.dt_mom = 45.0;  // sqrt(g*H) ~ 217 m/s at dx_min ~ 20 km
    return c;
  }

  /// Latitude extent of the standard FOAM ocean grid [deg]. The ice-
  /// covered polar caps beyond ~70 degrees are not represented as ocean
  /// (the coupler treats them as prescribed ice; the paper's own polar
  /// ocean treatment was crude and flagged for replacement).
  static constexpr double kStandardLatMax = 70.0;

  /// Reduced-size configuration for tests: same physics, small grid.
  static OceanConfig testing(int nx = 36, int ny = 36, int nz = 6) {
    OceanConfig c;
    c.nx = nx;
    c.ny = ny;
    c.nz = nz;
    c.dt_mom = 3600.0;
    c.nsub_baro = 8;
    return c;
  }
};

}  // namespace foam::ocean
