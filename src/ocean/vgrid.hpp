#pragma once

/// \file vgrid.hpp
/// Stretched vertical grid and 3-D land/sea mask for the ocean model.
///
/// "The vertical discretization is with height, with a stretched vertical
/// coordinate maximizing resolution in the upper layers. For the runs
/// reported here, a sixteen layer version was used."

#include <vector>

#include "base/field.hpp"
#include "numerics/grid.hpp"

namespace foam::ocean {

/// Vertical grid: nz layers, thickness growing geometrically with depth.
class VerticalGrid {
 public:
  /// Build nz layers whose thicknesses grow by a constant ratio from
  /// dz_top at the surface down to total_depth.
  VerticalGrid(int nz, double dz_top, double total_depth);

  int nz() const { return static_cast<int>(dz_.size()); }
  /// Thickness of layer k [m]; k = 0 is the surface layer.
  double dz(int k) const { return dz_[k]; }
  /// Depth of the center of layer k [m, positive down].
  double z_center(int k) const { return zc_[k]; }
  /// Depth of the bottom interface of layer k [m].
  double z_bottom(int k) const { return zb_[k]; }
  double total_depth() const { return zb_.back(); }

  /// Number of wet layers for a water column of the given depth (columns
  /// shallower than the first layer still get one layer so every ocean
  /// point has an SST).
  int wet_layers(double depth) const;

 private:
  std::vector<double> dz_;
  std::vector<double> zc_;
  std::vector<double> zb_;
};

/// Column mask: number of wet layers at each horizontal point (0 = land).
Field2D<int> column_levels(const VerticalGrid& vgrid,
                           const Field2Dd& bathymetry);

}  // namespace foam::ocean
