#include "ocean/vgrid.hpp"

#include <cmath>

namespace foam::ocean {

VerticalGrid::VerticalGrid(int nz, double dz_top, double total_depth) {
  FOAM_REQUIRE(nz >= 1, "nz=" << nz);
  FOAM_REQUIRE(dz_top > 0.0 && total_depth > dz_top * nz * 0.999,
               "vertical grid: dz_top=" << dz_top
                                        << " total=" << total_depth);
  // Find the geometric stretch ratio r with dz_top * (r^nz - 1)/(r - 1) =
  // total_depth by bisection.
  double lo = 1.0 + 1e-9;
  double hi = 3.0;
  auto total = [&](double r) {
    return dz_top * (std::pow(r, nz) - 1.0) / (r - 1.0);
  };
  while (total(hi) < total_depth) hi *= 1.5;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (total(mid) < total_depth) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double r = 0.5 * (lo + hi);
  dz_.resize(nz);
  zb_.resize(nz);
  zc_.resize(nz);
  double z = 0.0;
  double dz = dz_top;
  for (int k = 0; k < nz; ++k) {
    dz_[k] = dz;
    zc_[k] = z + 0.5 * dz;
    z += dz;
    zb_[k] = z;
    dz *= r;
  }
  // Absorb the bisection residual into the bottom layer.
  const double excess = total_depth - zb_.back();
  dz_.back() += excess;
  zb_.back() += excess;
  zc_.back() += 0.5 * excess;
}

int VerticalGrid::wet_layers(double depth) const {
  if (depth <= 0.0) return 0;
  int n = 1;  // any positive depth gets at least the surface layer
  for (int k = 1; k < nz(); ++k)
    if (depth >= zb_[k - 1] + 0.5 * dz_[k]) n = k + 1;
  return n;
}

Field2D<int> column_levels(const VerticalGrid& vgrid,
                           const Field2Dd& bathymetry) {
  Field2D<int> levels(bathymetry.nx(), bathymetry.ny());
  for (int j = 0; j < bathymetry.ny(); ++j)
    for (int i = 0; i < bathymetry.nx(); ++i)
      levels(i, j) = vgrid.wet_layers(bathymetry(i, j));
  return levels;
}

}  // namespace foam::ocean
