#include "ocean/model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>

#include "base/constants.hpp"
#include "data/earth.hpp"
#include "numerics/tridiag.hpp"
#include "par/decomp.hpp"
#include "telemetry/telemetry.hpp"

namespace foam::ocean {

using constants::cp_sea_water;
using constants::deg2rad;
using constants::earth_omega;
using constants::gravity;
using constants::ice_stress_divisor;
using constants::sea_ice_freeze_c;

namespace {
constexpr int kTagSouth = 100;  // halo row travelling southward
constexpr int kTagNorth = 101;  // halo row travelling northward
constexpr int kTagWest = 102;   // halo column travelling westward
constexpr int kTagEast = 103;   // halo column travelling eastward

par::Decomp2D make_ocean_decomp(const OceanConfig& cfg, par::Comm* comm,
                                int px) {
  FOAM_REQUIRE(px >= 1, "ocean decomposition px=" << px);
  if (comm == nullptr) {
    FOAM_REQUIRE(px == 1, "serial ocean cannot use px=" << px);
    return par::Decomp2D(cfg.nx, cfg.ny, 1, 1);
  }
  FOAM_REQUIRE(comm->size() % px == 0,
               "ocean rank count " << comm->size()
                                   << " not divisible by px=" << px);
  return par::Decomp2D(cfg.nx, cfg.ny, px, comm->size() / px);
}

}  // namespace

OceanModel::OceanModel(const OceanConfig& cfg,
                       const numerics::MercatorGrid& grid,
                       const Field2Dd& bathymetry, par::Comm* comm, int px)
    : cfg_(cfg),
      grid_(grid),
      comm_(comm),
      vgrid_(cfg.nz, cfg.dz_top, cfg.total_depth),
      levels_(column_levels(vgrid_, bathymetry)),
      mask2d_(cfg.nx, cfg.ny, 0),
      depth_(cfg.nx, cfg.ny, 0.0),
      filter_(grid, cfg.filter_lat),
      decomp_(make_ocean_decomp(cfg, comm, px)),
      up_(cfg.nx, cfg.ny, cfg.nz, 0.0),
      vp_(cfg.nx, cfg.ny, cfg.nz, 0.0),
      up_prev_(cfg.nx, cfg.ny, cfg.nz, 0.0),
      vp_prev_(cfg.nx, cfg.ny, cfg.nz, 0.0),
      t_(cfg.nx, cfg.ny, cfg.nz, 0.0),
      s_(cfg.nx, cfg.ny, cfg.nz, cfg.s_ref),
      t_prev_(cfg.nx, cfg.ny, cfg.nz, 0.0),
      s_prev_(cfg.nx, cfg.ny, cfg.nz, cfg.s_ref),
      eta_(cfg.nx, cfg.ny, 0.0),
      ub_(cfg.nx, cfg.ny, 0.0),
      vb_(cfg.nx, cfg.ny, 0.0),
      rho_(cfg.nx, cfg.ny, cfg.nz, cfg.rho0),
      pbc_(cfg.nx, cfg.ny, cfg.nz, 0.0),
      nu_(cfg.nx, cfg.ny, cfg.nz, cfg.nu_b),
      kappa_(cfg.nx, cfg.ny, cfg.nz, cfg.kappa_b),
      gx_(cfg.nx, cfg.ny, cfg.nz, 0.0),
      gy_(cfg.nx, cfg.ny, cfg.nz, 0.0),
      wtop_(cfg.nx, cfg.ny, cfg.nz, 0.0),
      fbar_x_(cfg.nx, cfg.ny, 0.0),
      fbar_y_(cfg.nx, cfg.ny, 0.0),
      taux_(cfg.nx, cfg.ny, 0.0),
      tauy_(cfg.nx, cfg.ny, 0.0),
      qnet_(cfg.nx, cfg.ny, 0.0),
      fw_(cfg.nx, cfg.ny, 0.0),
      ice_(cfg.nx, cfg.ny, 0.0),
      frazil_cell_(cfg.nx, cfg.ny, 0.0) {
  FOAM_REQUIRE(grid.nlon() == cfg.nx && grid.nlat() == cfg.ny,
               "grid " << grid.nlon() << "x" << grid.nlat() << " vs config "
                       << cfg.nx << "x" << cfg.ny);
  FOAM_REQUIRE(bathymetry.nx() == cfg.nx && bathymetry.ny() == cfg.ny,
               "bathymetry shape");
  FOAM_REQUIRE(
      cfg.dt_mom > 0.0 && cfg.nsub_baro >= 1 && cfg.tracer_every >= 1,
      "ocean time stepping config");
  // Bury the artificial north/south domain walls in land: wall-adjacent
  // open water develops spurious wall-trapped modes on the A-grid (the
  // paper's hand-tuned topography closes its grid boundaries too).
  for (int i = 0; i < cfg_.nx; ++i) {
    levels_(i, 0) = 0;
    levels_(i, 1) = 0;
    levels_(i, cfg_.ny - 1) = 0;
    levels_(i, cfg_.ny - 2) = 0;
  }
  for (int j = 0; j < cfg_.ny; ++j) {
    for (int i = 0; i < cfg_.nx; ++i) {
      const int lev = levels_(i, j);
      mask2d_(i, j) = lev > 0 ? 1 : 0;
      double h = 0.0;
      for (int k = 0; k < lev; ++k) h += vgrid_.dz(k);
      depth_(i, j) = h;
    }
  }
  const int rank = comm_ != nullptr ? comm_->rank() : 0;
  pi_ = decomp_.pi_of(rank);
  pj_ = decomp_.pj_of(rank);
  const par::Range yr = decomp_.y_range(pj_);
  const par::Range xr = decomp_.x_range(pi_);
  j0_ = yr.lo;
  j1_ = yr.hi;
  i0_ = xr.lo;
  i1_ = xr.hi;
  // Columns visited by extended-range loops. With px == 1 every column is
  // owned and the list is 0..nx-1, reproducing the row-decomposed loops
  // bitwise; otherwise the wrapped halo column on each side joins in.
  if (decomp_.px() > 1) {
    xext_.push_back((i0_ - 1 + cfg_.nx) % cfg_.nx);
    for (int i = i0_; i < i1_; ++i) xext_.push_back(i);
    xext_.push_back(i1_ % cfg_.nx);
  } else {
    for (int i = 0; i < cfg_.nx; ++i) xext_.push_back(i);
  }
  // The polar filter needs whole zonal rows: build a communicator over the
  // ranks sharing this process row (collective over comm_, so every rank
  // takes this branch or none do).
  if (comm_ != nullptr && decomp_.px() > 1)
    row_comm_ = comm_->split(pj_, pi_);
  // External gravity-wave CFL sanity check.
  const double c_ext =
      std::sqrt(gravity * cfg_.total_depth / cfg_.slow_factor);
  double dx_min = grid_.dx(0);
  for (int j = 0; j < cfg_.ny; ++j) dx_min = std::min(dx_min, grid_.dx(j));
  const double dt_wave =
      cfg_.split_barotropic ? cfg_.dt_mom / cfg_.nsub_baro : cfg_.dt_mom;
  FOAM_REQUIRE(dt_wave * c_ext * 1.5 < dx_min,
               "external wave CFL violated: dt_wave="
                   << dt_wave << "s, c=" << c_ext << " m/s, dx_min="
                   << dx_min << " m");
}

void OceanModel::init_climatology() {
  for (int j = 0; j < cfg_.ny; ++j) {
    const double lat_deg = grid_.lat(j) / deg2rad;
    const double tsurf =
        std::max(sea_ice_freeze_c,
                 -2.0 + 30.0 * std::exp(-std::pow(lat_deg / 32.0, 2.0)));
    for (int i = 0; i < cfg_.nx; ++i) {
      for (int k = 0; k < cfg_.nz; ++k) {
        const double z = vgrid_.z_center(k);
        // Deep water near 0.5 C with a weak stable abyssal gradient (an
        // exactly neutral abyss lets advection noise churn unopposed);
        // surface-intensified thermocline. The salinity term keeps polar
        // columns (cold fresh over warmer salty) statically stable.
        t_(i, j, k) = 0.5 + 0.6 * (1.0 - z / cfg_.total_depth) +
                      (tsurf - 1.1) * std::exp(-z / 900.0);
        s_(i, j, k) = cfg_.s_ref + 1.2 * std::exp(-z / 500.0) *
                                       std::cos(2.0 * grid_.lat(j));
      }
    }
  }
  up_.fill(0.0);
  vp_.fill(0.0);
  ub_.fill(0.0);
  vb_.fill(0.0);
  eta_.fill(0.0);
  steps_ = 0;
  init_thermal_wind();
  up_prev_ = up_;
  vp_prev_ = vp_;
  t_prev_ = t_;
  s_prev_ = s_;
  have_mom_prev_ = false;
  have_tracer_prev_ = false;
}

void OceanModel::init_thermal_wind() {
  // Start the baroclinic velocities in geostrophic balance with the initial
  // density field so the model does not open with a basin-scale adjustment
  // shock. The Coriolis parameter is floored at its 5-degree value; the
  // equatorial strip starts slightly unbalanced but bounded.
  const int save_lo = j0_, save_hi = j1_;
  const int save_ilo = i0_, save_ihi = i1_;
  std::vector<int> save_xext;
  save_xext.swap(xext_);
  j0_ = 0;
  j1_ = cfg_.ny;  // initialization is rank-replicated over the full domain
  i0_ = 0;
  i1_ = cfg_.nx;
  for (int i = 0; i < cfg_.nx; ++i) xext_.push_back(i);
  density();
  baroclinic_pressure();
  pressure_forces();
  const double f_floor = 2.0 * earth_omega * std::sin(5.0 * deg2rad);
  for (int j = 0; j < cfg_.ny; ++j) {
    double f = 2.0 * earth_omega * std::sin(grid_.lat(j));
    if (std::abs(f) < f_floor) f = (f >= 0.0 ? f_floor : -f_floor);
    for (int i = 0; i < cfg_.nx; ++i) {
      const int lev = levels_(i, j);
      if (lev == 0) continue;
      for (int k = 0; k < lev; ++k) {
        up_(i, j, k) = (gy_(i, j, k) - fbar_y_(i, j)) / f;
        vp_(i, j, k) = -(gx_(i, j, k) - fbar_x_(i, j)) / f;
      }
    }
  }
  enforce_zero_depth_mean();
  j0_ = save_lo;
  j1_ = save_hi;
  i0_ = save_ilo;
  i1_ = save_ihi;
  xext_.swap(save_xext);
}

void OceanModel::set_forcing(const OceanForcing& f) {
  // Validate every supplied field before copying any: a malformed bundle
  // must not leave the model half-updated.
  FOAM_REQUIRE((f.wind_x == nullptr) == (f.wind_y == nullptr),
               "wind stress components must be supplied together");
  auto check = [&](const Field2Dd* p, const char* what) {
    if (p != nullptr)
      FOAM_REQUIRE(p->nx() == cfg_.nx && p->ny() == cfg_.ny,
                   what << " shape " << p->nx() << "x" << p->ny() << " vs "
                        << cfg_.nx << "x" << cfg_.ny);
  };
  check(f.wind_x, "wind_x");
  check(f.wind_y, "wind_y");
  check(f.heat, "heat");
  check(f.freshwater, "freshwater");
  check(f.ice, "ice");
  if (f.wind_x != nullptr) taux_ = *f.wind_x;
  if (f.wind_y != nullptr) tauy_ = *f.wind_y;
  if (f.heat != nullptr) qnet_ = *f.heat;
  if (f.freshwater != nullptr) fw_ = *f.freshwater;
  if (f.ice != nullptr) ice_ = *f.ice;
}

// Deprecated per-field shims: each forwards to the atomic bundle setter.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
void OceanModel::set_wind_stress(const Field2Dd& taux, const Field2Dd& tauy) {
  OceanForcing f;
  f.wind_x = &taux;
  f.wind_y = &tauy;
  set_forcing(f);
}

void OceanModel::set_heat_flux(const Field2Dd& qnet) {
  OceanForcing f;
  f.heat = &qnet;
  set_forcing(f);
}

void OceanModel::set_freshwater_flux(const Field2Dd& fw) {
  OceanForcing f;
  f.freshwater = &fw;
  set_forcing(f);
}

void OceanModel::set_ice_fraction(const Field2Dd& ice) {
  OceanForcing f;
  f.ice = &ice;
  set_forcing(f);
}
#pragma GCC diagnostic pop

// Two-phase halo exchange: rows first (open walls, owned columns), then
// periodic columns over the *extended* row range. Because x-neighbours
// share a process row (identical j-range), their extended ranges line up,
// and the column phase forwards values received in the row phase — so the
// four corner cells of the halo ring arrive consistent without dedicated
// diagonal messages. All transfers use nonblocking isend/irecv with a
// waitall barrier between the phases.
namespace {

/// Runs one exchange phase: posts the irecvs, packs and posts the isends,
/// waits, then unpacks. lo/hi are the two neighbour ranks (-1 = absent);
/// tag_to_lo/tag_to_hi name the tags of the messages travelling toward
/// them. pack/unpack copy `count` doubles for one side (side 0 = lo-ward
/// boundary, side 1 = hi-ward boundary).
template <typename Pack, typename Unpack>
void exchange_phase(par::Comm& comm, int lo, int hi, int tag_to_lo,
                    int tag_to_hi, std::size_t count, Pack&& pack,
                    Unpack&& unpack) {
  // The freshly packed boundary strips are handed to the runtime by
  // ownership (isend_move): the neighbour's irecv_vec moves the same buffer
  // in, so a halo strip never crosses a memcpy.
  std::vector<double> send_lo, send_hi, recv_lo, recv_hi;
  std::array<par::Request, 4> reqs;
  std::size_t nreq = 0;
  if (lo >= 0) reqs[nreq++] = comm.irecv_vec(lo, tag_to_hi, recv_lo);
  if (hi >= 0) reqs[nreq++] = comm.irecv_vec(hi, tag_to_lo, recv_hi);
  if (lo >= 0) {
    send_lo.resize(count);
    pack(0, send_lo);
    reqs[nreq++] = comm.isend_move(lo, tag_to_lo, std::move(send_lo));
  }
  if (hi >= 0) {
    send_hi.resize(count);
    pack(1, send_hi);
    reqs[nreq++] = comm.isend_move(hi, tag_to_hi, std::move(send_hi));
  }
  comm.waitall(std::span<par::Request>(reqs.data(), nreq));
  if (lo >= 0) unpack(0, recv_lo);
  if (hi >= 0) unpack(1, recv_hi);
}

}  // namespace

void OceanModel::exchange_halo(Field2Dd& f) {
  if (comm_ == nullptr || comm_->size() == 1) return;
  const int rank = comm_->rank();
  const int nx = cfg_.nx;
  // Phase 1: rows, over owned columns.
  exchange_phase(
      *comm_, decomp_.south_of(rank), decomp_.north_of(rank), kTagSouth,
      kTagNorth, static_cast<std::size_t>(i1_ - i0_),
      [&](int side, std::vector<double>& buf) {
        const int j = side == 0 ? j0_ : j1_ - 1;
        for (int i = i0_; i < i1_; ++i) buf[i - i0_] = f(i, j);
      },
      [&](int side, const std::vector<double>& buf) {
        const int j = side == 0 ? j0_ - 1 : j1_;
        for (int i = i0_; i < i1_; ++i) f(i, j) = buf[i - i0_];
      });
  if (decomp_.px() == 1) return;
  // Phase 2: periodic columns, over the extended row range (the halo rows
  // just received are forwarded, making the corners consistent).
  const int jlo = std::max(0, j0_ - 1);
  const int jhi = std::min(cfg_.ny, j1_ + 1);
  const int iw = (i0_ - 1 + nx) % nx;
  const int ie = i1_ % nx;
  exchange_phase(
      *comm_, decomp_.west_of(rank), decomp_.east_of(rank), kTagWest,
      kTagEast, static_cast<std::size_t>(jhi - jlo),
      [&](int side, std::vector<double>& buf) {
        const int i = side == 0 ? i0_ : i1_ - 1;
        for (int j = jlo; j < jhi; ++j) buf[j - jlo] = f(i, j);
      },
      [&](int side, const std::vector<double>& buf) {
        const int i = side == 0 ? iw : ie;
        for (int j = jlo; j < jhi; ++j) f(i, j) = buf[j - jlo];
      });
}

void OceanModel::exchange_halo(Field3Dd& f) {
  if (comm_ == nullptr || comm_->size() == 1) return;
  const int rank = comm_->rank();
  const int nx = cfg_.nx;
  const int nz = cfg_.nz;
  const std::size_t xcnt = static_cast<std::size_t>(i1_ - i0_);
  exchange_phase(
      *comm_, decomp_.south_of(rank), decomp_.north_of(rank), kTagSouth,
      kTagNorth, xcnt * nz,
      [&](int side, std::vector<double>& buf) {
        const int j = side == 0 ? j0_ : j1_ - 1;
        for (int k = 0; k < nz; ++k)
          for (int i = i0_; i < i1_; ++i)
            buf[static_cast<std::size_t>(k) * xcnt + (i - i0_)] = f(i, j, k);
      },
      [&](int side, const std::vector<double>& buf) {
        const int j = side == 0 ? j0_ - 1 : j1_;
        for (int k = 0; k < nz; ++k)
          for (int i = i0_; i < i1_; ++i)
            f(i, j, k) = buf[static_cast<std::size_t>(k) * xcnt + (i - i0_)];
      });
  if (decomp_.px() == 1) return;
  const int jlo = std::max(0, j0_ - 1);
  const int jhi = std::min(cfg_.ny, j1_ + 1);
  const std::size_t ycnt = static_cast<std::size_t>(jhi - jlo);
  const int iw = (i0_ - 1 + nx) % nx;
  const int ie = i1_ % nx;
  exchange_phase(
      *comm_, decomp_.west_of(rank), decomp_.east_of(rank), kTagWest,
      kTagEast, ycnt * nz,
      [&](int side, std::vector<double>& buf) {
        const int i = side == 0 ? i0_ : i1_ - 1;
        for (int k = 0; k < nz; ++k)
          for (int j = jlo; j < jhi; ++j)
            buf[static_cast<std::size_t>(k) * ycnt + (j - jlo)] = f(i, j, k);
      },
      [&](int side, const std::vector<double>& buf) {
        const int i = side == 0 ? iw : ie;
        for (int k = 0; k < nz; ++k)
          for (int j = jlo; j < jhi; ++j)
            f(i, j, k) = buf[static_cast<std::size_t>(k) * ycnt + (j - jlo)];
      });
}

void OceanModel::density() {
  const int lo = std::max(0, j0_ - 1);
  const int hi = std::min(cfg_.ny, j1_ + 1);
  for (int j = lo; j < hi; ++j)
    for (const int i : xext_)
      for (int k = 0; k < levels_(i, j); ++k)
        rho_(i, j, k) =
            cfg_.rho0 * (1.0 - cfg_.alpha_t * (t_(i, j, k) - cfg_.t_ref) +
                         cfg_.beta_s * (s_(i, j, k) - cfg_.s_ref));
}

void OceanModel::baroclinic_pressure() {
  const int lo = std::max(0, j0_ - 1);
  const int hi = std::min(cfg_.ny, j1_ + 1);
  for (int j = lo; j < hi; ++j) {
    for (const int i : xext_) {
      const int lev = levels_(i, j);
      double p = 0.0;
      double rho_above = 0.0;
      for (int k = 0; k < lev; ++k) {
        const double rp = rho_(i, j, k) - cfg_.rho0;
        if (k == 0) {
          p = gravity * rp * 0.5 * vgrid_.dz(0);
        } else {
          p += gravity * 0.5 *
               (rho_above * vgrid_.dz(k - 1) + rp * vgrid_.dz(k));
        }
        pbc_(i, j, k) = p;
        rho_above = rp;
      }
    }
  }
}

void OceanModel::pressure_forces() {
  const int nx = cfg_.nx;
  for (int j = j0_; j < j1_; ++j) {
    const double inv2dx = 1.0 / (2.0 * dx(j));
    const double inv2dy = 1.0 / (2.0 * dy(j));
    for (int i = i0_; i < i1_; ++i) {
      const int lev = levels_(i, j);
      double sx = 0.0, sy = 0.0, h = 0.0;
      for (int k = 0; k < lev; ++k) {
        double fx = 0.0, fy = 0.0;
        if (cfg_.enable_baroclinic_pg) {
          // Ghost-mirror closure at walls (a dry neighbour mirrors the
          // centre pressure): wall columns still feel pressure restoring,
          // at half the centred magnitude.
          const double pc = pbc_(i, j, k);
          const double pe =
              wet((i + 1) % nx, j, k) ? pbc_.wrap_x(i + 1, j, k) : pc;
          const double pw =
              wet((i + nx - 1) % nx, j, k) ? pbc_.wrap_x(i - 1, j, k) : pc;
          fx = -(pe - pw) * inv2dx / cfg_.rho0;
          const double pn =
              (j + 1 < cfg_.ny && wet(i, j + 1, k)) ? pbc_(i, j + 1, k) : pc;
          const double ps =
              (j - 1 >= 0 && wet(i, j - 1, k)) ? pbc_(i, j - 1, k) : pc;
          fy = -(pn - ps) * inv2dy / cfg_.rho0;
        }
        gx_(i, j, k) = fx;
        gy_(i, j, k) = fy;
        sx += fx * vgrid_.dz(k);
        sy += fy * vgrid_.dz(k);
        h += vgrid_.dz(k);
      }
      fbar_x_(i, j) = h > 0.0 ? sx / h : 0.0;
      fbar_y_(i, j) = h > 0.0 ? sy / h : 0.0;
    }
  }
}

void OceanModel::implicit_vertical(Field3Dd& f, const Field3Dd& coeff,
                                   double dt) {
  std::vector<double> la(cfg_.nz), lb(cfg_.nz), lc(cfg_.nz), ld(cfg_.nz);
  for (int j = j0_; j < j1_; ++j) {
    for (int i = i0_; i < i1_; ++i) {
      const int lev = levels_(i, j);
      if (lev < 2) continue;
      la.assign(lev, 0.0);
      lb.assign(lev, 1.0);
      lc.assign(lev, 0.0);
      ld.assign(lev, 0.0);
      for (int k = 0; k < lev; ++k) {
        const double dzk = vgrid_.dz(k);
        if (k > 0) {
          const double dzi = 0.5 * (vgrid_.dz(k - 1) + vgrid_.dz(k));
          const double r = dt * coeff(i, j, k) / (dzk * dzi);
          la[k] = -r;
          lb[k] += r;
        }
        if (k < lev - 1) {
          const double dzi = 0.5 * (vgrid_.dz(k) + vgrid_.dz(k + 1));
          const double r = dt * coeff(i, j, k + 1) / (dzk * dzi);
          lc[k] = -r;
          lb[k] += r;
        }
        ld[k] = f(i, j, k);
      }
      numerics::solve_tridiag(la, lb, lc, ld);
      for (int k = 0; k < lev; ++k) f(i, j, k) = ld[k];
    }
  }
}

void OceanModel::internal_momentum_step() {
  const double dt = cfg_.dt_mom;
  const double dt2 = have_mom_prev_ ? 2.0 * dt : dt;  // leapfrog / bootstrap
  const int nx = cfg_.nx;

  density();
  baroclinic_pressure();
  pressure_forces();  // gx_, gy_ at time n

  // Lateral friction (Laplacian, no-slip walls) and del^4 dissipation,
  // evaluated at the previous time level (lagged friction keeps leapfrog
  // stable). Divergence damping likewise.
  Field2Dd lvl(nx, cfg_.ny, 0.0), lap1(nx, cfg_.ny, 0.0),
      lap2(nx, cfg_.ny, 0.0), divf(nx, cfg_.ny, 0.0);
  Field2D<int> kmask(nx, cfg_.ny, 0);
  for (int pass = 0; pass < 2; ++pass) {
    const Field3Dd& vel_prev = (pass == 0) ? up_prev_ : vp_prev_;
    Field3Dd& tend = (pass == 0) ? gx_ : gy_;
    for (int k = 0; k < cfg_.nz; ++k) {
      for (int j = 0; j < cfg_.ny; ++j)
        for (int i = 0; i < nx; ++i) kmask(i, j) = wet(i, j, k) ? 1 : 0;
      const int lo = std::max(0, j0_ - 1);
      const int hi = std::min(cfg_.ny, j1_ + 1);
      for (int j = lo; j < hi; ++j)
        for (const int i : xext_) lvl(i, j) = vel_prev(i, j, k);
      // No-slip Laplacian: a land neighbour contributes zero velocity so
      // boundary currents feel sidewall friction. Computed on the owned
      // box; the halo ring arrives by exchange below.
      for (int j = j0_; j < j1_; ++j) {
        const double ix2 = 1.0 / (dx(j) * dx(j));
        const double iy2 = 1.0 / (dy(j) * dy(j));
        for (int i = i0_; i < i1_; ++i) {
          if (kmask(i, j) == 0) {
            lap1(i, j) = 0.0;
            continue;
          }
          const double c = lvl(i, j);
          const double e =
              kmask.wrap_x(i + 1, j) ? lvl.wrap_x(i + 1, j) : 0.0;
          const double w2 =
              kmask.wrap_x(i - 1, j) ? lvl.wrap_x(i - 1, j) : 0.0;
          const double n2 =
              (j + 1 < cfg_.ny && kmask(i, j + 1)) ? lvl(i, j + 1) : 0.0;
          const double s2 =
              (j > 0 && kmask(i, j - 1)) ? lvl(i, j - 1) : 0.0;
          lap1(i, j) =
              (e - 2.0 * c + w2) * ix2 + (n2 - 2.0 * c + s2) * iy2;
        }
      }
      exchange_halo(lap1);
      numerics::laplacian_masked(grid_, lap1, kmask, lap2);
      for (int j = j0_; j < j1_; ++j) {
        const double d = dx(j);
        // Caps keep the explicit (lagged, effective step 2dt) updates
        // monotone on the shrinking polar cells.
        const double cap4 = 0.0025 * d * d * d * d / dt;
        const double a4 = std::min(cfg_.visc4, cap4);
        for (int i = i0_; i < i1_; ++i)
          if (wet(i, j, k))
            tend(i, j, k) += cfg_.visc_h * lap1(i, j) - a4 * lap2(i, j);
      }
    }
  }

  // Divergence damping from the previous level.
  if (cfg_.div_damp > 0.0) {
    for (int k = 0; k < cfg_.nz; ++k) {
      // Computed on the owned box; the halo ring arrives by exchange.
      for (int j = j0_; j < j1_; ++j) {
        const double invdx = 1.0 / dx(j);
        const double invdy = 1.0 / dy(j);
        for (int i = i0_; i < i1_; ++i) {
          if (!wet(i, j, k)) {
            divf(i, j) = 0.0;
            continue;
          }
          const int ie = (i + 1) % nx;
          const int iw = (i + nx - 1) % nx;
          const double ue =
              wet(ie, j, k)
                  ? 0.5 * (up_prev_(i, j, k) + up_prev_(ie, j, k))
                  : 0.0;
          const double uw =
              wet(iw, j, k)
                  ? 0.5 * (up_prev_(iw, j, k) + up_prev_(i, j, k))
                  : 0.0;
          const double vn =
              (j + 1 < cfg_.ny && wet(i, j + 1, k))
                  ? 0.5 * (vp_prev_(i, j, k) + vp_prev_(i, j + 1, k))
                  : 0.0;
          const double vs =
              (j - 1 >= 0 && wet(i, j - 1, k))
                  ? 0.5 * (vp_prev_(i, j - 1, k) + vp_prev_(i, j, k))
                  : 0.0;
          divf(i, j) = (ue - uw) * invdx + (vn - vs) * invdy;
        }
      }
      exchange_halo(divf);
      for (int j = j0_; j < j1_; ++j) {
        const double inv2dx = 1.0 / (2.0 * dx(j));
        const double inv2dy = 1.0 / (2.0 * dy(j));
        const double cap = 0.05 * dx(j) * dx(j) / dt;
        const double cdd = std::min(cfg_.div_damp, cap);
        for (int i = i0_; i < i1_; ++i) {
          if (!wet(i, j, k)) continue;
          const int ie = (i + 1) % nx;
          const int iw = (i + nx - 1) % nx;
          const double de = wet(ie, j, k) ? divf(ie, j) : divf(i, j);
          const double dw = wet(iw, j, k) ? divf(iw, j) : divf(i, j);
          gx_(i, j, k) += cdd * (de - dw) * inv2dx;
          const double dn =
              (j + 1 < cfg_.ny && wet(i, j + 1, k)) ? divf(i, j + 1)
                                                    : divf(i, j);
          const double ds =
              (j - 1 >= 0 && wet(i, j - 1, k)) ? divf(i, j - 1)
                                               : divf(i, j);
          gy_(i, j, k) += cdd * (dn - ds) * inv2dy;
        }
      }
    }
  }

  // Leapfrog update: new = prev + 2dt * (PG deviation + Coriolis(n) +
  // wind deviation + friction(prev)).
  Field3Dd u_new(up_prev_);
  Field3Dd v_new(vp_prev_);
  for (int j = j0_; j < j1_; ++j) {
    const double f = 2.0 * earth_omega * std::sin(grid_.lat(j));
    for (int i = i0_; i < i1_; ++i) {
      const int lev = levels_(i, j);
      if (lev == 0) continue;
      const double ice_scale =
          1.0 - ice_(i, j) + ice_(i, j) / ice_stress_divisor;
      const double ax = taux_(i, j) * ice_scale / cfg_.rho0;
      const double ay = tauy_(i, j) * ice_scale / cfg_.rho0;
      const double h = depth_(i, j);
      for (int k = 0; k < lev; ++k) {
        const double wind_x = (k == 0 ? ax / vgrid_.dz(0) : 0.0) - ax / h;
        const double wind_y = (k == 0 ? ay / vgrid_.dz(0) : 0.0) - ay / h;
        const double tx = gx_(i, j, k) - fbar_x_(i, j) + wind_x +
                          f * vp_(i, j, k) -
                          cfg_.rayleigh * up_prev_(i, j, k);
        const double ty = gy_(i, j, k) - fbar_y_(i, j) + wind_y -
                          f * up_(i, j, k) -
                          cfg_.rayleigh * vp_prev_(i, j, k);
        u_new(i, j, k) = up_prev_(i, j, k) + dt2 * tx;
        v_new(i, j, k) = vp_prev_(i, j, k) + dt2 * ty;
      }
    }
  }

  // Implicit vertical viscosity on the new level.
  if (cfg_.enable_vmix) {
    implicit_vertical(u_new, nu_, dt2);
    implicit_vertical(v_new, nu_, dt2);
  }

  // Wall-normal damping, deep/bottom drag and the hard safety clamp.
  const double keep = cfg_.wall_normal_retain;
  for (int j = j0_; j < j1_; ++j) {
    for (int i = i0_; i < i1_; ++i) {
      const int lev = levels_(i, j);
      if (lev == 0) continue;
      if (keep < 1.0) {
        for (int k = 0; k < lev; ++k) {
          if (!wet((i + 1) % nx, j, k) || !wet((i + nx - 1) % nx, j, k))
            u_new(i, j, k) *= keep;
          if (j + 1 >= cfg_.ny || j - 1 < 0 || !wet(i, j + 1, k) ||
              !wet(i, j - 1, k))
            v_new(i, j, k) *= keep;
        }
      }
      // Frictional abyss: the two deepest layers of the *deviation* flow
      // are strongly damped (bottom boundary layer + unresolved topographic
      // form drag); cliff-trapped bottom modes otherwise survive every
      // interior dissipation mechanism. The barotropic mode has its own
      // bottom drag — coupling the two through this term would let a noisy
      // ub manufacture deviation velocity.
      for (int kb = std::max(0, lev - 2); kb < lev; ++kb) {
        const double speed =
            std::sqrt(u_new(i, j, kb) * u_new(i, j, kb) +
                      v_new(i, j, kb) * v_new(i, j, kb));
        const double fac =
            1.0 / (1.0 + dt2 * (cfg_.deep_drag +
                                2.5e-3 * speed / vgrid_.dz(kb)));
        u_new(i, j, kb) *= fac;
        v_new(i, j, kb) *= fac;
      }
      for (int k = 0; k < lev; ++k) {
        u_new(i, j, k) =
            std::clamp(u_new(i, j, k), -cfg_.max_baroclinic, cfg_.max_baroclinic);
        v_new(i, j, k) =
            std::clamp(v_new(i, j, k), -cfg_.max_baroclinic, cfg_.max_baroclinic);
      }
    }
  }

  // Robert-Asselin filter on the centre level, then rotate time levels.
  const double eps = cfg_.asselin;
  for (int j = j0_; j < j1_; ++j) {
    for (int i = i0_; i < i1_; ++i) {
      for (int k = 0; k < levels_(i, j); ++k) {
        up_prev_(i, j, k) =
            up_(i, j, k) +
            eps * (u_new(i, j, k) - 2.0 * up_(i, j, k) + up_prev_(i, j, k));
        vp_prev_(i, j, k) =
            vp_(i, j, k) +
            eps * (v_new(i, j, k) - 2.0 * vp_(i, j, k) + vp_prev_(i, j, k));
        up_(i, j, k) = u_new(i, j, k);
        vp_(i, j, k) = v_new(i, j, k);
      }
    }
  }
  have_mom_prev_ = true;

  enforce_zero_depth_mean();
  // enforce_zero_depth_mean modified ub_/vb_ on owned rows only; refresh
  // their halos before the barotropic subcycle's stencils read them.
  exchange_halo(ub_);
  exchange_halo(vb_);
  apply_polar_filter_3d(up_);
  apply_polar_filter_3d(vp_);
  apply_polar_filter_3d(up_prev_);
  apply_polar_filter_3d(vp_prev_);
  exchange_halo(up_);
  exchange_halo(vp_);
  exchange_halo(up_prev_);
  exchange_halo(vp_prev_);

  double wet_cells = 0.0;
  for (int j = j0_; j < j1_; ++j)
    for (int i = i0_; i < i1_; ++i) wet_cells += levels_(i, j);
  work_points_ += 4.0 * wet_cells;
}

void OceanModel::enforce_zero_depth_mean() {
  // Fold the depth-mean of the *current* deviation velocities into the
  // barotropic mode so the split stays exact. The previous time level must
  // be de-meaned as well (without a second transfer): a mean left in
  // up_prev_ would be re-injected by the next leapfrog update and pump ub
  // without bound.
  for (int j = j0_; j < j1_; ++j) {
    for (int i = i0_; i < i1_; ++i) {
      const int lev = levels_(i, j);
      if (lev == 0) continue;
      double su = 0.0, sv = 0.0, spu = 0.0, spv = 0.0;
      for (int k = 0; k < lev; ++k) {
        su += up_(i, j, k) * vgrid_.dz(k);
        sv += vp_(i, j, k) * vgrid_.dz(k);
        spu += up_prev_(i, j, k) * vgrid_.dz(k);
        spv += vp_prev_(i, j, k) * vgrid_.dz(k);
      }
      const double mu = su / depth_(i, j);
      const double mv = sv / depth_(i, j);
      const double mpu = spu / depth_(i, j);
      const double mpv = spv / depth_(i, j);
      for (int k = 0; k < lev; ++k) {
        up_(i, j, k) -= mu;
        vp_(i, j, k) -= mv;
        up_prev_(i, j, k) -= mpu;
        vp_prev_(i, j, k) -= mpv;
      }
      ub_(i, j) += mu;
      vb_(i, j) += mv;
    }
  }
}

void OceanModel::index_biharmonic_filter(Field2Dd& f, double eps) {
  const int nx = cfg_.nx;
  auto index_laplacian = [&](const Field2Dd& src, Field2Dd& dst) {
    for (int j = j0_; j < j1_; ++j) {
      for (int i = i0_; i < i1_; ++i) {
        if (mask2d_(i, j) == 0) {
          dst(i, j) = 0.0;
          continue;
        }
        const double c = src(i, j);
        double acc = 0.0;
        if (mask2d_.wrap_x(i + 1, j) != 0) acc += src.wrap_x(i + 1, j) - c;
        if (mask2d_.wrap_x(i - 1, j) != 0) acc += src.wrap_x(i - 1, j) - c;
        if (j + 1 < cfg_.ny && mask2d_(i, j + 1) != 0)
          acc += src(i, j + 1) - c;
        if (j - 1 >= 0 && mask2d_(i, j - 1) != 0) acc += src(i, j - 1) - c;
        dst(i, j) = acc;
      }
    }
  };
  Field2Dd lap(nx, cfg_.ny, 0.0), lap2(nx, cfg_.ny, 0.0);
  index_laplacian(f, lap);
  exchange_halo(lap);
  index_laplacian(lap, lap2);
  const double scale = eps / 64.0;
  for (int j = j0_; j < j1_; ++j)
    for (int i = i0_; i < i1_; ++i)
      if (mask2d_(i, j) != 0) f(i, j) -= scale * lap2(i, j);
  exchange_halo(f);
}

void OceanModel::barotropic_subcycle() {
  const int nsub = cfg_.split_barotropic ? cfg_.nsub_baro : 1;
  const double dtb = cfg_.dt_mom / nsub;
  for (int sub = 0; sub < nsub; ++sub) {
    // Momentum: symmetric Coriolis rotation around the forcing update.
    for (int j = j0_; j < j1_; ++j) {
      const double f = 2.0 * earth_omega * std::sin(grid_.lat(j));
      const double cs = std::cos(0.5 * f * dtb);
      const double sn = std::sin(0.5 * f * dtb);
      const double inv2dx = 1.0 / (2.0 * dx(j));
      const double inv2dy = 1.0 / (2.0 * dy(j));
      for (int i = i0_; i < i1_; ++i) {
        if (mask2d_(i, j) == 0) continue;
        // Ghost-mirror closure at walls for the surface PG.
        const bool we = mask2d_.wrap_x(i + 1, j) != 0;
        const bool ww = mask2d_.wrap_x(i - 1, j) != 0;
        const double ee = we ? eta_.wrap_x(i + 1, j) : eta_(i, j);
        const double ew = ww ? eta_.wrap_x(i - 1, j) : eta_(i, j);
        const double detadx = (ee - ew) * inv2dx;
        const bool wn = j + 1 < cfg_.ny && mask2d_(i, j + 1) != 0;
        const bool ws = j - 1 >= 0 && mask2d_(i, j - 1) != 0;
        const double en = wn ? eta_(i, j + 1) : eta_(i, j);
        const double es = ws ? eta_(i, j - 1) : eta_(i, j);
        const double detady = (en - es) * inv2dy;
        const double ice_scale =
            1.0 - ice_(i, j) + ice_(i, j) / ice_stress_divisor;
        const double h = depth_(i, j);
        const double gxb = fbar_x_(i, j) +
                           taux_(i, j) * ice_scale / (cfg_.rho0 * h) -
                           gravity * detadx;
        const double gyb = fbar_y_(i, j) +
                           tauy_(i, j) * ice_scale / (cfg_.rho0 * h) -
                           gravity * detady;
        const double u_old = ub_(i, j);
        const double v_old = vb_(i, j);
        double u1 = cs * u_old + sn * v_old;
        double v1 = -sn * u_old + cs * v_old;
        u1 += dtb * (gxb - cfg_.bottom_drag * u_old);
        v1 += dtb * (gyb - cfg_.bottom_drag * v_old);
        ub_(i, j) =
            std::clamp(cs * u1 + sn * v1, -cfg_.max_barotropic, cfg_.max_barotropic);
        vb_(i, j) =
            std::clamp(-sn * u1 + cs * v1, -cfg_.max_barotropic, cfg_.max_barotropic);
      }
    }
    // The momentum update touched owned rows only; refresh halos before
    // any stencil (the index filter, continuity) reads neighbours.
    exchange_halo(ub_);
    exchange_halo(vb_);
    // Wall-normal damping for the barotropic velocities (their wall flux is
    // already zero; the velocity itself must not ring).
    if (cfg_.wall_normal_retain < 1.0) {
      const double keep = cfg_.wall_normal_retain;
      for (int j = j0_; j < j1_; ++j) {
        for (int i = i0_; i < i1_; ++i) {
          if (mask2d_(i, j) == 0) continue;
          if (mask2d_.wrap_x(i + 1, j) == 0 || mask2d_.wrap_x(i - 1, j) == 0)
            ub_(i, j) *= keep;
          if (j + 1 >= cfg_.ny || j - 1 < 0 || mask2d_(i, j + 1) == 0 ||
              mask2d_(i, j - 1) == 0)
            vb_(i, j) *= keep;
        }
      }
    }
    exchange_halo(ub_);
    exchange_halo(vb_);
    if (cfg_.baro_filter_eps > 0.0) {
      index_biharmonic_filter(ub_, cfg_.baro_filter_eps);
      index_biharmonic_filter(vb_, cfg_.baro_filter_eps);
    }
    // Continuity, slowed by 1/slow_factor: the external wave speed drops by
    // sqrt(slow_factor) while steady circulation is untouched (the Tobis
    // slowed-barotropic scheme).
    for (int j = j0_; j < j1_; ++j) {
      const double invdx = 1.0 / dx(j);
      const double invdy = 1.0 / dy(j);
      for (int i = i0_; i < i1_; ++i) {
        if (mask2d_(i, j) == 0) continue;
        auto flux_x = [&](int ia, int ib) {
          if (mask2d_.wrap_x(ia, j) == 0 || mask2d_.wrap_x(ib, j) == 0)
            return 0.0;
          const double hf =
              std::min(depth_.wrap_x(ia, j), depth_.wrap_x(ib, j));
          return hf * 0.5 * (ub_.wrap_x(ia, j) + ub_.wrap_x(ib, j));
        };
        const double fe = flux_x(i, i + 1);
        const double fwst = flux_x(i - 1, i);
        double fn = 0.0, fs = 0.0;
        if (j + 1 < cfg_.ny && mask2d_(i, j + 1) != 0) {
          const double hf = std::min(depth_(i, j), depth_(i, j + 1));
          fn = hf * 0.5 * (vb_(i, j) + vb_(i, j + 1));
        }
        if (j - 1 >= 0 && mask2d_(i, j - 1) != 0) {
          const double hf = std::min(depth_(i, j), depth_(i, j - 1));
          fs = hf * 0.5 * (vb_(i, j) + vb_(i, j - 1));
        }
        const double div = (fe - fwst) * invdx + (fn - fs) * invdy;
        eta_(i, j) += dtb * (-div / cfg_.slow_factor + fw_(i, j));
      }
    }
    apply_polar_filter_2d(eta_);
    exchange_halo(eta_);
    if (cfg_.baro_filter_eps > 0.0)
      index_biharmonic_filter(eta_, 0.5 * cfg_.baro_filter_eps);
    double cells = 0.0;
    for (int j = j0_; j < j1_; ++j)
      for (int i = i0_; i < i1_; ++i) cells += mask2d_(i, j);
    work_points_ += 2.0 * cells;
  }
}

void OceanModel::vertical_mixing_coefficients() {
  // Pacanowski-Philander (1981) Richardson-dependent mixing with the
  // steeper exponent of Peters, Gregg & Toole that improved the model's
  // west-equatorial-Pacific cold bias (paper §4.2).
  for (int j = j0_; j < j1_; ++j) {
    for (int i = i0_; i < i1_; ++i) {
      const int lev = levels_(i, j);
      for (int k = 1; k < lev; ++k) {
        const double dzi = 0.5 * (vgrid_.dz(k - 1) + vgrid_.dz(k));
        const double du = up_(i, j, k - 1) - up_(i, j, k);
        const double dv = vp_(i, j, k - 1) - vp_(i, j, k);
        const double shear2 = (du * du + dv * dv) / (dzi * dzi) + 1.0e-10;
        const double n2 = -gravity * (rho_(i, j, k - 1) - rho_(i, j, k)) /
                          (cfg_.rho0 * dzi);
        const double ri = std::max(0.0, n2 / shear2);
        const double denom = std::pow(1.0 + 5.0 * ri, cfg_.ri_exponent);
        nu_(i, j, k) = cfg_.nu0 / denom + cfg_.nu_b;
        kappa_(i, j, k) =
            (cfg_.nu0 / denom) / (1.0 + 5.0 * ri) + cfg_.kappa_b;
      }
    }
  }
}

void OceanModel::convective_adjustment() {
  if (!cfg_.enable_convect) return;
  // Full-column pairwise mixing sweep on both leapfrog time levels:
  // statically unstable neighbours are homogenized (volume-weighted),
  // repeated until stable.
  for (int lvl = 0; lvl < 2; ++lvl) {
    Field3Dd& tt = (lvl == 0) ? t_ : t_prev_;
    Field3Dd& ss = (lvl == 0) ? s_ : s_prev_;
    for (int j = j0_; j < j1_; ++j) {
      for (int i = i0_; i < i1_; ++i) {
        const int lev = levels_(i, j);
        if (lev < 2) continue;
        for (int pass = 0; pass < lev; ++pass) {
          bool mixed = false;
          for (int k = 0; k < lev - 1; ++k) {
            const double r_up =
                -cfg_.alpha_t * tt(i, j, k) + cfg_.beta_s * ss(i, j, k);
            const double r_dn = -cfg_.alpha_t * tt(i, j, k + 1) +
                                cfg_.beta_s * ss(i, j, k + 1);
            if (r_up > r_dn + 1e-12) {  // denser above lighter: mix
              const double w1 = vgrid_.dz(k);
              const double w2 = vgrid_.dz(k + 1);
              const double tm =
                  (tt(i, j, k) * w1 + tt(i, j, k + 1) * w2) / (w1 + w2);
              const double sm =
                  (ss(i, j, k) * w1 + ss(i, j, k + 1) * w2) / (w1 + w2);
              tt(i, j, k) = tm;
              tt(i, j, k + 1) = tm;
              ss(i, j, k) = sm;
              ss(i, j, k + 1) = sm;
              mixed = true;
            }
          }
          if (!mixed) break;
        }
      }
    }
  }
}

void OceanModel::diagnose_w() {
  const int nx = cfg_.nx;
  for (int j = j0_; j < j1_; ++j) {
    const double invdx = 1.0 / dx(j);
    const double invdy = 1.0 / dy(j);
    for (int i = i0_; i < i1_; ++i) {
      const int lev = levels_(i, j);
      double w = 0.0;
      for (int k = lev - 1; k >= 0; --k) {
        // From the baroclinic deviation velocities: their depth integral
        // vanishes, so w closes at the surface; the barotropic divergence
        // belongs to the (slowed) free surface, not interior upwelling.
        const int ie = (i + 1) % nx;
        const int iw = (i + nx - 1) % nx;
        const double ue =
            wet(ie, j, k) ? 0.5 * (up_(i, j, k) + up_(ie, j, k)) : 0.0;
        const double uw =
            wet(iw, j, k) ? 0.5 * (up_(iw, j, k) + up_(i, j, k)) : 0.0;
        const double vn = (j + 1 < cfg_.ny && wet(i, j + 1, k))
                              ? 0.5 * (vp_(i, j, k) + vp_(i, j + 1, k))
                              : 0.0;
        const double vs = (j - 1 >= 0 && wet(i, j - 1, k))
                              ? 0.5 * (vp_(i, j - 1, k) + vp_(i, j, k))
                              : 0.0;
        const double div = (ue - uw) * invdx + (vn - vs) * invdy;
        w += div * vgrid_.dz(k);
        wtop_(i, j, k) = std::clamp(w, -cfg_.w_clamp, cfg_.w_clamp);
      }
    }
  }
}

void OceanModel::tracer_step() {
  const double dtt = cfg_.dt_mom * cfg_.tracer_every;
  const int nx = cfg_.nx;

  vertical_mixing_coefficients();
  diagnose_w();

  // Forward-in-time, upwind-in-space transport: monotone, so tracer values
  // stay within physical bounds even where the masked/clamped velocity
  // field is discretely divergent (cliff columns). Diffusion is explicit
  // forward Laplacian.
  for (int pass = 0; pass < 2; ++pass) {
    Field3Dd& q = (pass == 0) ? t_ : s_;
    Field3Dd q_new(q);
    for (int j = j0_; j < j1_; ++j) {
      const double invdx = 1.0 / dx(j);
      const double invdy = 1.0 / dy(j);
      for (int i = i0_; i < i1_; ++i) {
        const int lev = levels_(i, j);
        for (int k = 0; k < lev; ++k) {
          const int ie = (i + 1) % nx;
          const int iw = (i + nx - 1) % nx;
          double tend = 0.0;
          if (cfg_.enable_horiz_adv) {
            if (wet(ie, j, k)) {
              const double uf = 0.5 * (u_total(i, j, k) + u_total(ie, j, k));
              tend -= uf * (uf > 0.0 ? q(i, j, k) : q(ie, j, k)) * invdx;
            }
            if (wet(iw, j, k)) {
              const double uf = 0.5 * (u_total(iw, j, k) + u_total(i, j, k));
              tend += uf * (uf > 0.0 ? q(iw, j, k) : q(i, j, k)) * invdx;
            }
            if (j + 1 < cfg_.ny && wet(i, j + 1, k)) {
              const double vf =
                  0.5 * (v_total(i, j, k) + v_total(i, j + 1, k));
              tend -= vf * (vf > 0.0 ? q(i, j, k) : q(i, j + 1, k)) * invdy;
            }
            if (j - 1 >= 0 && wet(i, j - 1, k)) {
              const double vf =
                  0.5 * (v_total(i, j - 1, k) + v_total(i, j, k));
              tend += vf * (vf > 0.0 ? q(i, j - 1, k) : q(i, j, k)) * invdy;
            }
          }
          if (cfg_.enable_vert_adv) {
            const double dzk = vgrid_.dz(k);
            if (k > 0) {
              const double w = wtop_(i, j, k);
              tend -= w * (w > 0.0 ? q(i, j, k) : q(i, j, k - 1)) / dzk;
            }
            if (k + 1 < lev) {
              const double w = wtop_(i, j, k + 1);
              tend += w * (w > 0.0 ? q(i, j, k + 1) : q(i, j, k)) / dzk;
            }
          }
          // Surface forcing in the tendency.
          if (k == 0 && pass == 0)
            tend +=
                qnet_(i, j) / (cfg_.rho0 * cp_sea_water * vgrid_.dz(0));
          if (k == 0 && pass == 1)
            tend -= fw_(i, j) * cfg_.s_ref / vgrid_.dz(0);
          // Laplacian diffusion (no-flux at land).
          const double qc = q(i, j, k);
          const double qe = wet(ie, j, k) ? q(ie, j, k) : qc;
          const double qw = wet(iw, j, k) ? q(iw, j, k) : qc;
          const double qn2 = (j + 1 < cfg_.ny && wet(i, j + 1, k))
                                 ? q(i, j + 1, k)
                                 : qc;
          const double qs =
              (j - 1 >= 0 && wet(i, j - 1, k)) ? q(i, j - 1, k) : qc;
          tend += cfg_.kappa_h * ((qe - 2.0 * qc + qw) * invdx * invdx +
                                  (qn2 - 2.0 * qc + qs) * invdy * invdy);
          q_new(i, j, k) = q(i, j, k) + dtt * tend;
        }
      }
    }
    q = std::move(q_new);
  }
  // Keep the (unused) previous tracer level coherent for diagnostics.
  t_prev_ = t_;
  s_prev_ = s_;
  have_tracer_prev_ = true;

  // Implicit vertical diffusion of the new level.
  if (cfg_.enable_vmix) {
    implicit_vertical(t_, kappa_, dtt);
    implicit_vertical(s_, kappa_, dtt);
  }

  // Sea-ice freeze clamp on both time levels (paper: clamp at -1.92 C);
  // the deficit becomes frazil-ice heat the coupler turns into ice growth.
  const double dz0 = vgrid_.dz(0);
  for (int j = j0_; j < j1_; ++j) {
    for (int i = i0_; i < i1_; ++i) {
      if (mask2d_(i, j) == 0) continue;
      if (t_(i, j, 0) < sea_ice_freeze_c) {
        const double deficit = (sea_ice_freeze_c - t_(i, j, 0)) * cfg_.rho0 *
                               cp_sea_water * dz0;
        frazil_heat_ += deficit;
        frazil_cell_(i, j) += deficit;
        t_(i, j, 0) = sea_ice_freeze_c;
      }
    }
  }

  convective_adjustment();
  if (cfg_.enable_ts_filter) {
    apply_polar_filter_3d(t_);
    apply_polar_filter_3d(s_);
    apply_polar_filter_3d(t_prev_);
    apply_polar_filter_3d(s_prev_);
  }
  exchange_halo(t_);
  exchange_halo(s_);
  exchange_halo(t_prev_);
  exchange_halo(s_prev_);

  double wet_cells = 0.0;
  for (int j = j0_; j < j1_; ++j)
    for (int i = i0_; i < i1_; ++i) wet_cells += levels_(i, j);
  work_points_ += 6.0 * wet_cells;
}

void OceanModel::apply_polar_filter_row(double* row, int j,
                                        const int* rowmask) {
  // Fill non-wet cells with the wet mean, filter zonally, restore.
  static thread_local numerics::Fft* fft = nullptr;
  static thread_local int fft_n = 0;
  if (fft == nullptr || fft_n != cfg_.nx) {
    delete fft;
    fft = new numerics::Fft(cfg_.nx);
    fft_n = cfg_.nx;
  }
  double mean = 0.0;
  int n = 0;
  for (int i = 0; i < cfg_.nx; ++i)
    if (rowmask[i] != 0) {
      mean += row[i];
      ++n;
    }
  if (n == 0) return;
  mean /= n;
  std::vector<double> vals(cfg_.nx);
  for (int i = 0; i < cfg_.nx; ++i)
    vals[i] = rowmask[i] != 0 ? row[i] : mean;
  auto spec = fft->forward_real(vals);
  for (int m = 1; m <= cfg_.nx / 2; ++m) spec[m] *= filter_.factor(m, j);
  vals = fft->inverse_real(spec);
  for (int i = 0; i < cfg_.nx; ++i)
    if (rowmask[i] != 0) row[i] = vals[i];
}

std::vector<double> OceanModel::row_gather_full(
    const std::vector<double>& mine, int nslots) const {
  // One gatherv + bcast for the whole batch: the filter is called inside
  // every barotropic substep, so per-row messages would dominate.
  std::vector<int> counts(row_comm_->size());
  for (int r = 0; r < row_comm_->size(); ++r)
    counts[r] = decomp_.x_range(r).count() * nslots;  // row-comm rank == pi
  std::vector<double> all;
  row_comm_->gatherv(mine, all, counts, 0);
  row_comm_->bcast_vec(all, 0);
  std::vector<double> full(static_cast<std::size_t>(nslots) * cfg_.nx);
  std::size_t off = 0;
  for (int r = 0; r < row_comm_->size(); ++r) {
    const par::Range xr = decomp_.x_range(r);
    for (int slot = 0; slot < nslots; ++slot)
      for (int i = xr.lo; i < xr.hi; ++i)
        full[static_cast<std::size_t>(slot) * cfg_.nx + i] = all[off++];
  }
  return full;
}

void OceanModel::filter_rows_distributed(
    std::vector<double>& full, int nslots,
    const std::function<int(int)>& j_of,
    const std::function<void(int, int*)>& fill_mask) {
  const int P = row_comm_->size();
  const int rr = row_comm_->rank();
  // Round-robin slot ownership balances the filter work across the
  // process row — this is the whole point of decomposing in x: the polar
  // ranks' filter load, which caps the row decomposition's scaling,
  // divides by px instead of being repeated on every rank.
  std::vector<int> rowmask(cfg_.nx);
  for (int s = rr; s < nslots; s += P) {
    fill_mask(s, rowmask.data());
    apply_polar_filter_row(full.data() + static_cast<std::size_t>(s) * cfg_.nx,
                           j_of(s), rowmask.data());
  }
  // Re-share the filtered rows (one gatherv + bcast for the batch): rank
  // r's contribution is its slots r, r+P, ... in increasing slot order.
  std::vector<int> counts(P);
  for (int r = 0; r < P; ++r)
    counts[r] = cfg_.nx * ((nslots - r + P - 1) / P);
  std::vector<double> contrib;
  contrib.reserve(static_cast<std::size_t>(counts[rr]));
  for (int s = rr; s < nslots; s += P)
    contrib.insert(contrib.end(),
                   full.begin() + static_cast<std::ptrdiff_t>(s) * cfg_.nx,
                   full.begin() + static_cast<std::ptrdiff_t>(s + 1) * cfg_.nx);
  std::vector<double> all;
  row_comm_->gatherv(contrib, all, counts, 0);
  row_comm_->bcast_vec(all, 0);
  std::size_t off = 0;
  for (int r = 0; r < P; ++r)
    for (int s = r; s < nslots; s += P, off += cfg_.nx)
      std::copy(all.begin() + static_cast<std::ptrdiff_t>(off),
                all.begin() + static_cast<std::ptrdiff_t>(off + cfg_.nx),
                full.begin() + static_cast<std::ptrdiff_t>(s) * cfg_.nx);
}

void OceanModel::apply_polar_filter_2d(Field2Dd& f) {
  const double cos_crit = std::cos(cfg_.filter_lat * deg2rad);
  std::vector<int> rows;
  for (int j = j0_; j < j1_; ++j)
    if (grid_.cos_lat(j) < cos_crit) rows.push_back(j);
  // Ranks sharing a process row share the j-range, so this early return
  // (and the collective gather below) stays aligned across the row comm.
  if (rows.empty()) return;
  std::vector<double> row(cfg_.nx);
  std::vector<int> rowmask(cfg_.nx);
  if (row_comm_ == nullptr) {  // full rows are local (px == 1 or serial)
    for (const int j : rows) {
      for (int i = 0; i < cfg_.nx; ++i) {
        row[i] = f(i, j);
        rowmask[i] = mask2d_(i, j);
      }
      apply_polar_filter_row(row.data(), j, rowmask.data());
      for (int i = 0; i < cfg_.nx; ++i)
        if (rowmask[i] != 0) f(i, j) = row[i];
    }
    return;
  }
  // 2-D path: gather the owned segments of every polar row across the
  // process row, filter the reconstructed rows cooperatively (each rank a
  // balanced share), write back only the owned segment.
  const int xcnt = i1_ - i0_;
  std::vector<double> mine(rows.size() * static_cast<std::size_t>(xcnt));
  for (std::size_t s = 0; s < rows.size(); ++s)
    for (int i = i0_; i < i1_; ++i)
      mine[s * xcnt + (i - i0_)] = f(i, rows[s]);
  std::vector<double> full =
      row_gather_full(mine, static_cast<int>(rows.size()));
  filter_rows_distributed(
      full, static_cast<int>(rows.size()),
      [&](int s) { return rows[static_cast<std::size_t>(s)]; },
      [&](int s, int* m) {
        const int j = rows[static_cast<std::size_t>(s)];
        for (int i = 0; i < cfg_.nx; ++i) m[i] = mask2d_(i, j);
      });
  for (std::size_t s = 0; s < rows.size(); ++s) {
    const int j = rows[s];
    for (int i = i0_; i < i1_; ++i)
      if (mask2d_(i, j) != 0) f(i, j) = full[s * cfg_.nx + i];
  }
}

void OceanModel::apply_polar_filter_3d(Field3Dd& f) {
  const double cos_crit = std::cos(cfg_.filter_lat * deg2rad);
  std::vector<int> rows;
  for (int j = j0_; j < j1_; ++j)
    if (grid_.cos_lat(j) < cos_crit) rows.push_back(j);
  if (rows.empty()) return;  // no polar rows owned by this process row
  std::vector<double> row(cfg_.nx);
  std::vector<int> rowmask(cfg_.nx);
  if (row_comm_ == nullptr) {  // full rows are local (px == 1 or serial)
    for (int k = 0; k < cfg_.nz; ++k) {
      for (const int j : rows) {
        // Per-level wet mask: columns dry at this depth are treated as land
        // so their placeholder values never contaminate wet cells.
        for (int i = 0; i < cfg_.nx; ++i) {
          row[i] = f(i, j, k);
          rowmask[i] = wet(i, j, k) ? 1 : 0;
        }
        apply_polar_filter_row(row.data(), j, rowmask.data());
        for (int i = 0; i < cfg_.nx; ++i)
          if (rowmask[i] != 0) f(i, j, k) = row[i];
      }
    }
    return;
  }
  // 2-D path: one batched gather for all (level, polar-row) slots.
  const int xcnt = i1_ - i0_;
  const std::size_t nslots =
      rows.size() * static_cast<std::size_t>(cfg_.nz);
  std::vector<double> mine(nslots * static_cast<std::size_t>(xcnt));
  std::size_t s = 0;
  for (int k = 0; k < cfg_.nz; ++k) {
    for (const int j : rows) {
      for (int i = i0_; i < i1_; ++i)
        mine[s * xcnt + (i - i0_)] = f(i, j, k);
      ++s;
    }
  }
  std::vector<double> full = row_gather_full(mine, static_cast<int>(nslots));
  // Slot order matches the pack above: level-major, owned polar rows inner.
  const int nrows = static_cast<int>(rows.size());
  filter_rows_distributed(
      full, static_cast<int>(nslots),
      [&](int slot) { return rows[static_cast<std::size_t>(slot % nrows)]; },
      [&](int slot, int* m) {
        const int j = rows[static_cast<std::size_t>(slot % nrows)];
        const int k = slot / nrows;
        for (int i = 0; i < cfg_.nx; ++i) m[i] = wet(i, j, k) ? 1 : 0;
      });
  s = 0;
  for (int k = 0; k < cfg_.nz; ++k) {
    for (const int j : rows) {
      for (int i = i0_; i < i1_; ++i)
        if (wet(i, j, k)) f(i, j, k) = full[s * cfg_.nx + i];
      ++s;
    }
  }
}

void OceanModel::step() {
  {
    FOAM_TRACE_SCOPE("ocean.baroclinic");
    internal_momentum_step();
  }
  {
    FOAM_TRACE_SCOPE("ocean.barotropic");
    barotropic_subcycle();
  }
  ++steps_;
  if (steps_ % cfg_.tracer_every == 0) {
    FOAM_TRACE_SCOPE("ocean.tracer");
    tracer_step();
  }
}

void OceanModel::run_days(double days) {
  const std::int64_t n =
      static_cast<std::int64_t>(std::llround(days * 86400.0 / cfg_.dt_mom));
  for (std::int64_t i = 0; i < n; ++i) step();
}

Field2Dd OceanModel::drain_frazil() {
  Field2Dd out = frazil_cell_;
  frazil_cell_.fill(0.0);
  return out;
}

Field2Dd OceanModel::sst() const {
  Field2Dd out(cfg_.nx, cfg_.ny, 0.0);
  for (int j = j0_; j < j1_; ++j)
    for (int i = i0_; i < i1_; ++i)
      out(i, j) = mask2d_(i, j) != 0 ? t_(i, j, 0) : 0.0;
  return out;
}

Field2Dd OceanModel::gather(const Field2Dd& f) const {
  FOAM_TRACE_SCOPE("ocean.gather");
  Field2Dd out(f);
  if (comm_ == nullptr || comm_->size() == 1) return out;
  // Every rank contributes its owned box, packed row-major; blocks are
  // concatenated in rank order, so reassembly walks each rank's box.
  std::vector<int> counts(comm_->size());
  for (int r = 0; r < comm_->size(); ++r)
    counts[r] =
        decomp_.x_range_of_rank(r).count() * decomp_.y_range_of_rank(r).count();
  std::vector<double> mine(
      static_cast<std::size_t>(j1_ - j0_) * (i1_ - i0_));
  std::size_t off = 0;
  for (int j = j0_; j < j1_; ++j)
    for (int i = i0_; i < i1_; ++i) mine[off++] = f(i, j);
  std::vector<double> all;
  comm_->gatherv(mine, all, counts, 0);
  comm_->bcast_vec(all, 0);
  off = 0;
  for (int r = 0; r < comm_->size(); ++r) {
    const par::Range xr = decomp_.x_range_of_rank(r);
    const par::Range yr = decomp_.y_range_of_rank(r);
    for (int j = yr.lo; j < yr.hi; ++j)
      for (int i = xr.lo; i < xr.hi; ++i) out(i, j) = all[off++];
  }
  return out;
}

OceanDiagnostics OceanModel::diagnostics() const {
  double sum_sst_a = 0.0, sum_a = 0.0, sum_ke = 0.0, sum_vol = 0.0;
  double max_speed = 0.0, max_eta = 0.0, sum_t_vol = 0.0;
  for (int j = j0_; j < j1_; ++j) {
    const double area = grid_.cell_area(j);
    for (int i = i0_; i < i1_; ++i) {
      const int lev = levels_(i, j);
      if (lev == 0) continue;
      sum_sst_a += t_(i, j, 0) * area;
      sum_a += area;
      max_eta = std::max(max_eta, std::abs(eta_(i, j)));
      for (int k = 0; k < lev; ++k) {
        const double u = u_total(i, j, k);
        const double v = v_total(i, j, k);
        const double vol = area * vgrid_.dz(k);
        sum_ke += 0.5 * (u * u + v * v) * vol;
        sum_t_vol += t_(i, j, k) * vol;
        sum_vol += vol;
        max_speed = std::max(max_speed, std::sqrt(u * u + v * v));
      }
    }
  }
  OceanDiagnostics d;
  if (comm_ != nullptr && comm_->size() > 1) {
    sum_sst_a = comm_->allreduce_scalar(sum_sst_a, par::ReduceOp::kSum);
    sum_a = comm_->allreduce_scalar(sum_a, par::ReduceOp::kSum);
    sum_ke = comm_->allreduce_scalar(sum_ke, par::ReduceOp::kSum);
    sum_vol = comm_->allreduce_scalar(sum_vol, par::ReduceOp::kSum);
    sum_t_vol = comm_->allreduce_scalar(sum_t_vol, par::ReduceOp::kSum);
    max_speed = comm_->allreduce_scalar(max_speed, par::ReduceOp::kMax);
    max_eta = comm_->allreduce_scalar(max_eta, par::ReduceOp::kMax);
  }
  d.mean_sst = sum_a > 0.0 ? sum_sst_a / sum_a : 0.0;
  d.mean_kinetic = sum_vol > 0.0 ? sum_ke / sum_vol : 0.0;
  d.max_speed = max_speed;
  d.max_eta = max_eta;
  d.mean_temp_3d = sum_vol > 0.0 ? sum_t_vol / sum_vol : 0.0;
  d.frazil_heat = frazil_heat_;
  return d;
}

namespace {

void copy_into(const HistoryRecord& rec, Field3Dd& f) {
  FOAM_REQUIRE(rec.data.size() == f.size(), "checkpoint record size");
  std::copy(rec.data.begin(), rec.data.end(), f.vec().begin());
}

void copy_into(const HistoryRecord& rec, Field2Dd& f) {
  FOAM_REQUIRE(rec.data.size() == f.size(), "checkpoint record size");
  std::copy(rec.data.begin(), rec.data.end(), f.vec().begin());
}

}  // namespace

void OceanModel::save_state(HistoryWriter& out,
                            const std::string& prefix) const {
  out.write(prefix + ".t", t_);
  out.write(prefix + ".s", s_);
  out.write(prefix + ".t_prev", t_prev_);
  out.write(prefix + ".s_prev", s_prev_);
  out.write(prefix + ".up", up_);
  out.write(prefix + ".vp", vp_);
  out.write(prefix + ".up_prev", up_prev_);
  out.write(prefix + ".vp_prev", vp_prev_);
  out.write(prefix + ".eta", eta_);
  out.write(prefix + ".ub", ub_);
  out.write(prefix + ".vb", vb_);
  out.write(prefix + ".frazil", frazil_cell_);
  // The Pacanowski-Philander coefficients persist between tracer steps and
  // feed the momentum solve, so they are prognostic for restart purposes.
  out.write(prefix + ".nu", nu_);
  out.write(prefix + ".kappa", kappa_);
  out.write_scalar(prefix + ".steps", static_cast<double>(steps_));
  out.write_scalar(prefix + ".have_mom_prev", have_mom_prev_ ? 1.0 : 0.0);
  out.write_scalar(prefix + ".have_tracer_prev",
                   have_tracer_prev_ ? 1.0 : 0.0);
  out.write_scalar(prefix + ".frazil_heat", frazil_heat_);
}

void OceanModel::load_state(const HistoryReader& in,
                            const std::string& prefix) {
  copy_into(in.find(prefix + ".t"), t_);
  copy_into(in.find(prefix + ".s"), s_);
  copy_into(in.find(prefix + ".t_prev"), t_prev_);
  copy_into(in.find(prefix + ".s_prev"), s_prev_);
  copy_into(in.find(prefix + ".up"), up_);
  copy_into(in.find(prefix + ".vp"), vp_);
  copy_into(in.find(prefix + ".up_prev"), up_prev_);
  copy_into(in.find(prefix + ".vp_prev"), vp_prev_);
  copy_into(in.find(prefix + ".eta"), eta_);
  copy_into(in.find(prefix + ".ub"), ub_);
  copy_into(in.find(prefix + ".vb"), vb_);
  copy_into(in.find(prefix + ".frazil"), frazil_cell_);
  copy_into(in.find(prefix + ".nu"), nu_);
  copy_into(in.find(prefix + ".kappa"), kappa_);
  steps_ =
      static_cast<std::int64_t>(in.find(prefix + ".steps").data[0]);
  have_mom_prev_ = in.find(prefix + ".have_mom_prev").data[0] != 0.0;
  have_tracer_prev_ =
      in.find(prefix + ".have_tracer_prev").data[0] != 0.0;
  frazil_heat_ = in.find(prefix + ".frazil_heat").data[0];
}

double analytic_zonal_stress(double lat_rad) {
  const double lat_deg = lat_rad / deg2rad;
  const double envelope = std::exp(-std::pow(lat_deg / 70.0, 8.0));
  return -0.08 * std::cos(3.0 * lat_rad) * envelope;
}

Field2Dd restoring_heat_flux(const numerics::MercatorGrid& grid,
                             const Field2Dd& sst, int month,
                             double lambda_w_m2_k) {
  Field2Dd q(grid.nlon(), grid.nlat());
  for (int j = 0; j < grid.nlat(); ++j) {
    const double lat = grid.lat(j) / deg2rad;
    for (int i = 0; i < grid.nlon(); ++i) {
      const double t_star =
          data::sst_climatology(lat, grid.lon(i) / deg2rad, month);
      q(i, j) = lambda_w_m2_k * (t_star - sst(i, j));
    }
  }
  return q;
}

}  // namespace foam::ocean
