#pragma once

/// \file diagnostics.hpp
/// Scientific diagnostics computed from model state.
///
/// The quantities climate modelers watch over long runs (and that the
/// paper's analyses build on): the meridional overturning circulation of
/// the ocean, the poleward ocean heat transport, and zonal means.

#include <vector>

#include "base/field.hpp"
#include "ocean/model.hpp"

namespace foam::diag {

/// Meridional overturning streamfunction psi(j, k) [Sv]: the zonally and
/// vertically cumulated northward transport above the bottom interface of
/// layer k at latitude row j. psi > 0 = clockwise (northward near the
/// surface) in the latitude-depth plane.
Field2Dd meridional_overturning_sv(const ocean::OceanModel& ocean,
                                   const numerics::MercatorGrid& grid);

/// Northward ocean heat transport per latitude row [PW], measured against
/// the configuration's reference temperature (a constant offset is
/// arbitrary when the net mass transport through a section is nonzero):
///   sum_i sum_k rho cp v (T - t_ref) dx dz.
std::vector<double> poleward_heat_transport_pw(
    const ocean::OceanModel& ocean, const numerics::MercatorGrid& grid);

/// Zonal-mean SST per latitude row [C] over wet cells (NaN-free: rows with
/// no ocean report the fill value).
std::vector<double> zonal_mean_sst(const ocean::OceanModel& ocean,
                                   double fill = 0.0);

}  // namespace foam::diag
