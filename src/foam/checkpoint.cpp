#include "foam/checkpoint.hpp"

#include <array>
#include <cmath>
#include <sstream>

#include "base/error.hpp"
#include "foam/coupled.hpp"

namespace foam {

namespace {

constexpr const char* kFingerprintRecord = "foam.fingerprint";
constexpr const char* kLayoutRecord = "foam.rank_layout";

/// Name/value view of everything that must agree between the writing and
/// the restoring configuration for a bitwise restart to be meaningful.
std::array<std::pair<const char*, double>, 12> fingerprint_entries(
    const FoamConfig& cfg) {
  return {{{"atm.nlon", static_cast<double>(cfg.atm.nlon)},
           {"atm.nlat", static_cast<double>(cfg.atm.nlat)},
           {"atm.mmax", static_cast<double>(cfg.atm.mmax)},
           {"atm.nlev", static_cast<double>(cfg.atm.nlev)},
           {"atm.ndyn", static_cast<double>(cfg.atm.ndyn)},
           {"atm.dt", cfg.atm.dt},
           {"ocean.nx", static_cast<double>(cfg.ocean.nx)},
           {"ocean.ny", static_cast<double>(cfg.ocean.ny)},
           {"ocean.nz", static_cast<double>(cfg.ocean.nz)},
           {"ocean.dt_mom", cfg.ocean.dt_mom},
           {"exchange_seconds", cfg.exchange_seconds},
           {"ocean_accel", cfg.ocean_accel}}};
}

}  // namespace

std::string ckpt_serial_path(const std::string& prefix, std::int64_t day) {
  return prefix + ".day" + std::to_string(day) + ".foam";
}

std::string ckpt_shard_path(const std::string& prefix, std::int64_t day,
                            int rank) {
  return prefix + ".day" + std::to_string(day) + ".rank" +
         std::to_string(rank) + ".foam";
}

std::string ckpt_manifest_path(const std::string& prefix, std::int64_t day) {
  return prefix + ".day" + std::to_string(day) + ".manifest.foam";
}

std::string ckpt_latest_path(const std::string& prefix) {
  return prefix + ".latest.foam";
}

std::int64_t ckpt_latest_day(const std::string& prefix) {
  const HistoryReader in(ckpt_latest_path(prefix));
  return static_cast<std::int64_t>(in.find("ckpt.latest_day").data[0]);
}

void ckpt_write_latest(const std::string& prefix, std::int64_t day) {
  HistoryWriter out(ckpt_latest_path(prefix));
  out.write_scalar("ckpt.latest_day", static_cast<double>(day));
  out.close();
}

void write_config_fingerprint(HistoryWriter& out, const FoamConfig& cfg) {
  std::vector<double> values;
  for (const auto& [name, value] : fingerprint_entries(cfg))
    values.push_back(value);
  out.write_series(kFingerprintRecord, values);
}

void check_config_fingerprint(const HistoryReader& in, const FoamConfig& cfg,
                              const std::string& what) {
  FOAM_REQUIRE(in.has(kFingerprintRecord),
               what << " carries no config fingerprint — not a FOAM "
                       "checkpoint (or one from a pre-fingerprint version); "
                       "refusing to load state of unknown provenance");
  const auto& rec = in.find(kFingerprintRecord);
  const auto want = fingerprint_entries(cfg);
  FOAM_REQUIRE(rec.data.size() == want.size(),
               what << ": fingerprint has " << rec.data.size()
                    << " entries, this build expects " << want.size());
  std::ostringstream diff;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (rec.data[i] == want[i].second) continue;
    diff << "\n  " << want[i].first << ": checkpoint " << rec.data[i]
         << " vs config " << want[i].second;
  }
  FOAM_REQUIRE(diff.str().empty(),
               what << " was written under a different configuration:"
                    << diff.str());
}

void write_layout_record(HistoryWriter& out, const RankLayout& layout) {
  out.write_series(kLayoutRecord,
                   std::vector<double>{
                       static_cast<double>(layout.atm_ranks),
                       static_cast<double>(layout.ocean_px),
                       static_cast<double>(layout.ocean_py)});
}

void check_layout_record(const HistoryReader& in, const RankLayout& layout,
                         const std::string& what) {
  FOAM_REQUIRE(in.has(kLayoutRecord),
               what << " carries no rank-layout record — it predates the "
                       "2-D ocean decomposition; refusing to restore a "
                       "shard whose decomposition cannot be checked");
  const auto& rec = in.find(kLayoutRecord);
  FOAM_REQUIRE(rec.data.size() == 3,
               what << ": malformed rank-layout record ("
                    << rec.data.size() << " entries)");
  const RankLayout stored = RankLayout::grid(static_cast<int>(rec.data[0]),
                                             static_cast<int>(rec.data[1]),
                                             static_cast<int>(rec.data[2]));
  FOAM_REQUIRE(stored == layout,
               what << " was written by a " << stored.describe()
                    << "-rank run; this run is " << layout.describe());
}

}  // namespace foam
