#include "foam/diagnostics.hpp"

#include "base/constants.hpp"

namespace foam::diag {

namespace c = foam::constants;

Field2Dd meridional_overturning_sv(const ocean::OceanModel& ocean,
                                   const numerics::MercatorGrid& grid) {
  const auto& cfg = ocean.config();
  const auto& vg = ocean.vgrid();
  Field2Dd psi(grid.nlat(), cfg.nz, 0.0);  // (j, k)
  for (int j = 0; j < grid.nlat(); ++j) {
    const double dx = grid.dx(j);
    double cum = 0.0;
    for (int k = 0; k < cfg.nz; ++k) {
      double transport = 0.0;  // m^3/s northward in layer k at row j
      for (int i = 0; i < cfg.nx; ++i)
        if (ocean.levels()(i, j) > k)
          transport += ocean.v_total(i, j, k) * dx * vg.dz(k);
      cum += transport;
      psi(j, k) = cum * 1.0e-6;  // Sverdrups
    }
  }
  return psi;
}

std::vector<double> poleward_heat_transport_pw(
    const ocean::OceanModel& ocean, const numerics::MercatorGrid& grid) {
  const auto& cfg = ocean.config();
  const auto& vg = ocean.vgrid();
  const auto& t = ocean.temperature();
  std::vector<double> pht(grid.nlat(), 0.0);
  for (int j = 0; j < grid.nlat(); ++j) {
    const double dx = grid.dx(j);
    double sum = 0.0;
    for (int k = 0; k < cfg.nz; ++k)
      for (int i = 0; i < cfg.nx; ++i)
        if (ocean.levels()(i, j) > k)
          sum += cfg.rho0 * c::cp_sea_water * ocean.v_total(i, j, k) *
                 (t(i, j, k) - cfg.t_ref) * dx * vg.dz(k);
    pht[j] = sum * 1.0e-15;  // petawatts
  }
  return pht;
}

std::vector<double> zonal_mean_sst(const ocean::OceanModel& ocean,
                                   double fill) {
  const auto& cfg = ocean.config();
  const Field2Dd sst = ocean.sst();
  std::vector<double> out(cfg.ny, fill);
  for (int j = 0; j < cfg.ny; ++j) {
    double sum = 0.0;
    int n = 0;
    for (int i = 0; i < cfg.nx; ++i)
      if (ocean.levels()(i, j) > 0) {
        sum += sst(i, j);
        ++n;
      }
    if (n > 0) out[j] = sum / n;
  }
  return out;
}

}  // namespace foam::diag
