#pragma once

/// \file run_config.hpp
/// Text-configuration binding for model runs.
///
/// Production climate models are driven by namelist files; this is FOAM's
/// equivalent: a flat key=value file (base/config.hpp) mapped onto
/// FoamConfig. Unknown keys are rejected so typos fail loudly.
///
/// Recognized keys (defaults in parentheses = the paper configuration):
///   atm.nlon (48) atm.nlat (40) atm.mmax (15) atm.nlev (18)
///   atm.dt_seconds (1800) atm.physics (ccm3|ccm2)
///   atm.co2_factor (1.0) atm.emulate_full_core_cost (false)
///   ocean.nx (128) ocean.ny (128) ocean.nz (16)
///   ocean.dt_seconds (3600) ocean.nsub_baro (8) ocean.tracer_every (2)
///   ocean.slow_factor (100) ocean.split_barotropic (true)
///   ocean.ri_exponent (3)
///   coupling.exchange_seconds (21600) coupling.ocean_accel (1)
///   run.days run.history_path run.restart_path
///   run.checkpoint_prefix ("" = off) run.checkpoint_every_days (1)
///   run.checkpoint_resume (false)
///   run.observe_dir ("" = off; enables status.json + flight recorder)

#include <string>

#include "base/config.hpp"
#include "foam/coupled.hpp"

namespace foam {

/// Translate a parsed Config into a FoamConfig; throws foam::Error on
/// unknown keys or invalid values.
FoamConfig foam_config_from(const Config& cfg);

/// Run description beyond the model configuration.
struct RunPlan {
  FoamConfig model;
  double days = 1.0;
  std::string history_path;  ///< empty = no history output
  std::string restart_path;  ///< empty = cold start
  /// Periodic checkpointing + resume-from-latest (run.checkpoint_* keys);
  /// the serial driver writes `<prefix>.day<D>.foam` crash-safe files and
  /// maintains the same `<prefix>.latest.foam` pointer as the parallel
  /// shards, so "resume from the newest complete checkpoint" is one flag.
  CheckpointOptions checkpoint;
  /// Live observability (status feed / flight recorder): defaults to the
  /// FOAM_OBSERVE* environment; run.observe_dir overrides and enables.
  telemetry::ObservabilityOptions observe =
      telemetry::ObservabilityOptions::from_env();
};

RunPlan run_plan_from(const Config& cfg);

}  // namespace foam
