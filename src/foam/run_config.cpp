#include "foam/run_config.hpp"

#include <set>

#include "base/error.hpp"

namespace foam {

namespace {

const std::set<std::string>& known_keys() {
  static const std::set<std::string> keys = {
      "atm.nlon",          "atm.nlat",
      "atm.mmax",          "atm.nlev",
      "atm.dt_seconds",    "atm.physics",
      "atm.co2_factor",    "atm.emulate_full_core_cost",
      "ocean.nx",          "ocean.ny",
      "ocean.nz",          "ocean.dt_seconds",
      "ocean.nsub_baro",   "ocean.tracer_every",
      "ocean.slow_factor", "ocean.split_barotropic",
      "ocean.ri_exponent", "coupling.exchange_seconds",
      "coupling.ocean_accel", "run.days",
      "run.history_path",  "run.restart_path",
      "run.checkpoint_prefix", "run.checkpoint_every_days",
      "run.checkpoint_resume", "run.observe_dir",
  };
  return keys;
}

}  // namespace

FoamConfig foam_config_from(const Config& cfg) {
  for (const auto& key : cfg.keys())
    FOAM_REQUIRE(known_keys().count(key) != 0,
                 "unknown configuration key '" << key << "'");
  FoamConfig out;
  out.atm.nlon = cfg.get_int("atm.nlon", out.atm.nlon);
  out.atm.nlat = cfg.get_int("atm.nlat", out.atm.nlat);
  out.atm.mmax = cfg.get_int("atm.mmax", out.atm.mmax);
  out.atm.nlev = cfg.get_int("atm.nlev", out.atm.nlev);
  out.atm.dt = cfg.get_double("atm.dt_seconds", out.atm.dt);
  const std::string phys = cfg.get_string("atm.physics", "ccm3");
  if (phys == "ccm2") {
    out.atm.physics = atm::PhysicsVersion::kCcm2;
  } else if (phys == "ccm3") {
    out.atm.physics = atm::PhysicsVersion::kCcm3;
  } else {
    FOAM_REQUIRE(false, "atm.physics must be ccm2 or ccm3, got '" << phys
                                                                  << "'");
  }
  out.atm.co2_factor = cfg.get_double("atm.co2_factor", out.atm.co2_factor);
  out.atm.emulate_full_core_cost =
      cfg.get_bool("atm.emulate_full_core_cost",
                   out.atm.emulate_full_core_cost);
  out.ocean.nx = cfg.get_int("ocean.nx", out.ocean.nx);
  out.ocean.ny = cfg.get_int("ocean.ny", out.ocean.ny);
  out.ocean.nz = cfg.get_int("ocean.nz", out.ocean.nz);
  out.ocean.dt_mom = cfg.get_double("ocean.dt_seconds", out.ocean.dt_mom);
  out.ocean.nsub_baro = cfg.get_int("ocean.nsub_baro", out.ocean.nsub_baro);
  out.ocean.tracer_every =
      cfg.get_int("ocean.tracer_every", out.ocean.tracer_every);
  out.ocean.slow_factor =
      cfg.get_double("ocean.slow_factor", out.ocean.slow_factor);
  out.ocean.split_barotropic =
      cfg.get_bool("ocean.split_barotropic", out.ocean.split_barotropic);
  out.ocean.ri_exponent =
      cfg.get_double("ocean.ri_exponent", out.ocean.ri_exponent);
  out.exchange_seconds =
      cfg.get_double("coupling.exchange_seconds", out.exchange_seconds);
  out.ocean_accel = cfg.get_double("coupling.ocean_accel", out.ocean_accel);
  FOAM_REQUIRE(out.exchange_seconds >= out.atm.dt,
               "coupling.exchange_seconds must be >= atm.dt_seconds");
  return out;
}

RunPlan run_plan_from(const Config& cfg) {
  RunPlan plan;
  plan.model = foam_config_from(cfg);
  plan.days = cfg.get_double("run.days", 1.0);
  FOAM_REQUIRE(plan.days > 0.0, "run.days must be positive");
  plan.history_path = cfg.get_string("run.history_path", "");
  plan.restart_path = cfg.get_string("run.restart_path", "");
  plan.checkpoint.path_prefix = cfg.get_string("run.checkpoint_prefix", "");
  plan.checkpoint.every_days =
      cfg.get_double("run.checkpoint_every_days", 1.0);
  plan.checkpoint.resume = cfg.get_bool("run.checkpoint_resume", false);
  FOAM_REQUIRE(plan.checkpoint.every_days > 0.0,
               "run.checkpoint_every_days must be positive");
  FOAM_REQUIRE(!plan.checkpoint.resume || plan.checkpoint.enabled(),
               "run.checkpoint_resume requires run.checkpoint_prefix");
  // run.observe_dir turns on the full live-observability trio (status
  // feed, heartbeat, flight recorder) into the given directory, on top of
  // whatever the FOAM_OBSERVE* environment already requested.
  if (const std::string dir = cfg.get_string("run.observe_dir", "");
      !dir.empty()) {
    plan.observe.flight_recorder = true;
    plan.observe.heartbeat = true;
    plan.observe.status = true;
    plan.observe.dir = dir;
  }
  return plan;
}

}  // namespace foam
